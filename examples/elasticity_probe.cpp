// elasticity_probe: run the paper's proposed active measurement (§3.2)
// against a cross-traffic type of your choice and watch the probe classify
// it in (simulated) real time.
//
// Usage: elasticity_probe [reno|bbr|cubic|video|short|cbr|none]
#include <iostream>
#include <memory>
#include <string>

#include "app/abr_video.hpp"
#include "app/bulk.hpp"
#include "core/cca_registry.hpp"
#include "core/dumbbell.hpp"
#include "nimbus/nimbus.hpp"
#include "telemetry/sampler.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccc;
  const std::string kind = argc > 1 ? argv[1] : "reno";

  core::DumbbellConfig cfg;  // the paper's 48 Mbit/s, 100 ms link
  cfg.bottleneck_rate = Rate::mbps(48);
  cfg.one_way_delay = Time::ms(50);
  cfg.reverse_delay = Time::ms(50);
  cfg.buffer_bdp_multiple = 1.5;  // the fig3 measurement configuration
  core::DumbbellScenario net{cfg};

  // The probe: Nimbus with mode switching disabled (the §3.2 methodology),
  // given the emulated link's capacity as in the paper's testbed.
  nimbus::NimbusConfig ncfg;
  ncfg.capacity_hint = cfg.bottleneck_rate;
  auto nim = std::make_unique<nimbus::NimbusCca>(net.scheduler(), ncfg);
  auto* probe = nim.get();
  net.add_flow(std::move(nim), std::make_unique<app::BulkApp>(), 1);

  // The cross traffic under test, starting at t=5 s.
  const Time start = Time::sec(5.0);
  const Time end = Time::sec(45.0);
  if (kind == "reno" || kind == "bbr" || kind == "cubic") {
    net.add_flow(core::make_cca_factory(kind)(), std::make_unique<app::BulkApp>(), 2, start);
  } else if (kind == "video") {
    // An HD stream with server-paced chunk delivery, as in the fig3 bench.
    app::AbrConfig vcfg;
    vcfg.ladder = {Rate::mbps(0.35), Rate::mbps(0.75), Rate::mbps(1.75), Rate::mbps(3.0),
                   Rate::mbps(5.8)};
    vcfg.supply_rate_multiple = 2.0;
    net.add_flow(core::make_cca_factory("cubic")(),
                 std::make_unique<app::AbrVideoApp>(net.scheduler(), vcfg), 2, start);
  } else if (kind == "short") {
    flow::ShortFlowConfig sf;
    sf.user = 2;
    sf.start_at = start;
    sf.stop_at = end;
    sf.mean_interarrival = Time::ms(300);
    net.add_short_flows(sf, core::make_cca_factory("cubic"));
  } else if (kind == "cbr") {
    net.add_cbr(Rate::mbps(12), start, end, 2);
  } else if (kind != "none") {
    std::cerr << "unknown cross-traffic kind: " << kind << "\n";
    return 2;
  }

  std::cout << "probing a " << cfg.bottleneck_rate.to_mbps()
            << " Mbit/s path; cross traffic: " << kind << " (starts t=5s)\n\n";
  TextTable t{{"t(s)", "elasticity", "probe rate (Mbit/s)", "classification"}};
  std::vector<double> etas;  // steady-state samples for the final verdict
  telemetry::PeriodicSampler sampler{
      net.scheduler(), Time::sec(2.0), Time::sec(2.0), end, [&](Time now) {
        const double eta = probe->elasticity();
        if (now >= Time::sec(15.0)) etas.push_back(eta);
        t.add_row({TextTable::num(now.to_sec(), 0), TextTable::num(eta, 2),
                   TextTable::num(probe->base_rate().to_mbps(), 1),
                   eta >= nimbus::kElasticThreshold ? "ELASTIC - something is contending"
                                                    : "inelastic"});
      }};
  net.run_until(end);
  t.print(std::cout);

  // Judge on the steady-state median, as the fig3 bench does — single
  // samples flutter (BBR's own gain cycling beats against the pulses).
  const double verdict_eta = etas.empty() ? probe->elasticity() : median(etas);
  std::cout << "\nfinal verdict (median of samples from t=15s): cross traffic is "
            << (verdict_eta >= nimbus::kElasticThreshold ? "ELASTIC (CCA contention present)"
                                                         : "inelastic (no CCA contention)")
            << " at elasticity " << TextTable::num(verdict_eta, 2) << "\n";
  return 0;
}
