// Quickstart: simulate two TCP flows sharing a bottleneck and print their
// bandwidth shares. Five minutes with the public API:
//
//   1. describe the dumbbell (rate, delay, qdisc),
//   2. add flows (CCA + application model),
//   3. run, 4. measure.
//
// Try changing the CCA names or swapping in a fair queue (see
// isolation_study.cpp) and watch the allocation change — or stop changing.
#include <iostream>
#include <memory>

#include "app/bulk.hpp"
#include "core/cca_registry.hpp"
#include "core/dumbbell.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccc;

  // CCAs can be picked from the command line: quickstart [ccaA] [ccaB]
  const std::string cca_a = argc > 1 ? argv[1] : "cubic";
  const std::string cca_b = argc > 2 ? argv[2] : "bbr";

  // 1. A 20 Mbit/s, 40 ms-RTT access link with a DropTail buffer of 1 BDP.
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(20);
  cfg.one_way_delay = Time::ms(10);
  cfg.reverse_delay = Time::ms(10);
  core::DumbbellScenario net{cfg};

  // 2. Two persistently backlogged flows with the chosen CCAs.
  net.add_flow(core::make_cca_factory(cca_a)(), std::make_unique<app::BulkApp>());
  net.add_flow(core::make_cca_factory(cca_b)(), std::make_unique<app::BulkApp>());

  // 3. Warm up 5 s, then measure 25 s.
  net.run_until(Time::sec(5.0));
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(30.0));
  const auto goodputs = net.goodputs_mbps_since(snap, Time::sec(25.0));

  // 4. Report.
  std::cout << "Two flows on a " << cfg.bottleneck_rate.to_mbps() << " Mbit/s bottleneck:\n\n";
  TextTable t{{"flow", "cca", "goodput (Mbit/s)", "share"}};
  const double total = goodputs[0] + goodputs[1];
  t.add_row({"1", cca_a, TextTable::num(goodputs[0], 2),
             TextTable::num(goodputs[0] / total, 2)});
  t.add_row({"2", cca_b, TextTable::num(goodputs[1], 2),
             TextTable::num(goodputs[1] / total, 2)});
  t.print(std::cout);
  std::cout << "\n(Contention under DropTail lets the CCA pairing decide this split —\n"
               "the very dynamic the paper argues rarely matters on today's Internet.)\n";
  return 0;
}
