// mlab_passive_study: run the §3.1 passive pipeline over a synthetic NDT
// dataset and print per-category results — a compact version of the
// fig2_mlab_passive bench that you can point at your own mix.
//
// Usage: mlab_passive_study [n_flows] [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/passive_study.hpp"
#include "mlab/synthetic.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ccc;

  mlab::SyntheticConfig scfg;
  scfg.n_flows = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 2000;
  Rng rng{argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1u};

  std::cout << "generating " << scfg.n_flows << " synthetic NDT flow records...\n";
  const auto dataset = mlab::generate_dataset(scfg, rng);
  const auto report = analysis::run_passive_study(dataset);

  TextTable t{{"verdict", "flows", "fraction"}};
  for (const auto& [v, c] : report.verdict_counts) {
    t.add_row({std::string{analysis::to_string(v)}, std::to_string(c),
               TextTable::num(static_cast<double>(c) / report.total(), 3)});
  }
  t.print(std::cout);

  std::cout << "\npipeline scoring vs ground truth:\n"
            << "  precision " << TextTable::num(report.precision(), 3) << ", recall "
            << TextTable::num(report.recall(), 3) << "\n"
            << "  " << report.false_positives
            << " false positives — mostly policed flows whose token-bucket step\n"
            << "  is indistinguishable from a competing flow arriving. This is the\n"
            << "  paper's point: passive analysis cannot settle the question, which\n"
            << "  is why it proposes the active elasticity probe (see\n"
            << "  examples/elasticity_probe.cpp).\n";
  return 0;
}
