// isolation_study: the paper's §2.1 argument in one program.
//
// Runs the same mismatched-CCA workload under DropTail and under per-flow
// fair queueing, and prints both allocations side by side: with FQ, the CCA
// column stops mattering.
//
// Usage: isolation_study [ccaA ccaB ccaC]
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/fairness.hpp"
#include "app/bulk.hpp"
#include "core/cca_registry.hpp"
#include "core/dumbbell.hpp"
#include "queue/drr_fair_queue.hpp"
#include "util/table.hpp"

namespace {

using namespace ccc;

std::vector<double> run(const std::vector<std::string>& ccas, bool fq) {
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(30);
  cfg.one_way_delay = Time::ms(15);
  cfg.reverse_delay = Time::ms(15);
  cfg.buffer_bdp_multiple = 2.0;
  std::unique_ptr<sim::Qdisc> qdisc;
  if (fq) {
    qdisc = std::make_unique<queue::DrrFairQueue>(core::dumbbell_buffer_bytes(cfg),
                                                  queue::FairnessKey::kPerFlow);
  }
  core::DumbbellScenario net{cfg, std::move(qdisc)};
  for (const auto& name : ccas) {
    net.add_flow(core::make_cca_factory(name)(), std::make_unique<app::BulkApp>());
  }
  net.run_until(Time::sec(8.0));
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(38.0));
  return net.goodputs_mbps_since(snap, Time::sec(30.0));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccc;
  std::vector<std::string> ccas{"bbr", "cubic", "vegas"};
  if (argc == 4) ccas = {argv[1], argv[2], argv[3]};

  const auto droptail = run(ccas, /*fq=*/false);
  const auto fq = run(ccas, /*fq=*/true);

  std::cout << "three backlogged flows, 30 Mbit/s bottleneck\n\n";
  TextTable t{{"cca", "droptail (Mbit/s)", "fq (Mbit/s)"}};
  for (std::size_t i = 0; i < ccas.size(); ++i) {
    t.add_row({ccas[i], TextTable::num(droptail[i], 2), TextTable::num(fq[i], 2)});
  }
  t.print(std::cout);

  std::cout << "\nJain fairness: droptail "
            << TextTable::num(analysis::summarize_allocation(droptail).jain, 3) << " -> fq "
            << TextTable::num(analysis::summarize_allocation(fq).jain, 3) << "\n"
            << "\nUnder fair queueing the allocation is decided by the scheduler, not\n"
               "the CCAs — §2.1's claim that \"a universal deployment of fair queueing\n"
               "would entirely eliminate the role of CCA dynamics\".\n";
  return 0;
}
