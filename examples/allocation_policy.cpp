// allocation_policy: the paper's endgame (§2.1 + §5.3) in one program.
//
// If bandwidth division is a POLICY decision rather than an emergent CCA
// property, here are the two mechanisms the paper points to, side by side:
//   1. in-network recursive shares (a hierarchical weighted fair queue
//      encoding ISP -> customer -> service weights), and
//   2. host-based central allocation (a BwE-style allocator granting
//      demand-aware weighted shares, enforced as pacing caps).
// Both pin the same 2:1:1 / (3:1 inside gold) policy onto flows whose CCAs
// would otherwise decide very differently.
//
// Usage: allocation_policy [rcs|bwe]
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "app/bulk.hpp"
#include "bwe/allocator.hpp"
#include "bwe/capped_cca.hpp"
#include "bwe/enforcer.hpp"
#include "core/cca_registry.hpp"
#include "core/dumbbell.hpp"
#include "queue/hierarchical_fq.hpp"
#include "util/table.hpp"

namespace {

using namespace ccc;

core::DumbbellConfig link100() {
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(100);
  cfg.one_way_delay = Time::ms(15);
  cfg.reverse_delay = Time::ms(15);
  return cfg;
}

struct Row {
  std::string name;
  std::string cca;
  double expected;
  double measured_mbps;
};

void print(const std::string& title, std::vector<Row> rows) {
  std::cout << "\n" << title << "\n";
  double total = 0.0;
  for (const auto& r : rows) total += r.measured_mbps;
  TextTable t{{"service", "cca", "policy share", "measured share", "Mbit/s"}};
  for (const auto& r : rows) {
    t.add_row({r.name, r.cca, TextTable::num(r.expected, 3),
               TextTable::num(r.measured_mbps / total, 3),
               TextTable::num(r.measured_mbps, 1)});
  }
  t.print(std::cout);
}

void run_rcs() {
  auto f2c = std::make_shared<std::map<sim::FlowId, queue::ClassId>>();
  auto qd = std::make_unique<queue::HierarchicalFairQueue>(
      core::dumbbell_buffer_bytes(link100()) * 2,
      [f2c](const sim::Packet& p) -> queue::ClassId {
        const auto it = f2c->find(p.flow);
        return it == f2c->end() ? queue::kRootClass : it->second;
      });
  const auto gold = qd->add_class(queue::kRootClass, 2.0, "gold");
  const auto video = qd->add_class(gold, 3.0, "gold.video");
  const auto backup = qd->add_class(gold, 1.0, "gold.backup");
  const auto silver = qd->add_class(queue::kRootClass, 1.0, "silver");
  const auto bronze = qd->add_class(queue::kRootClass, 1.0, "bronze");

  core::DumbbellScenario net{link100(), std::move(qd)};
  struct S {
    queue::ClassId cls;
    const char* cca;
    double share;
  };
  const std::vector<S> services{{video, "cubic", 0.375},
                                {backup, "bbr", 0.125},
                                {silver, "reno", 0.25},
                                {bronze, "bbr", 0.25}};
  for (const auto& s : services) {
    const auto idx = net.add_flow(core::make_cca_factory(s.cca)(),
                                  std::make_unique<app::BulkApp>());
    (*f2c)[static_cast<sim::FlowId>(idx + core::DumbbellScenario::kFirstFlowId)] = s.cls;
  }
  net.run_until(Time::sec(10.0));
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(40.0));
  const auto g = net.goodputs_mbps_since(snap, Time::sec(30.0));
  std::vector<Row> rows;
  const char* names[] = {"gold.video", "gold.backup", "silver", "bronze"};
  for (std::size_t i = 0; i < services.size(); ++i) {
    rows.push_back({names[i], services[i].cca, services[i].share, g[i]});
  }
  print("Recursive Congestion Shares (in-network hierarchical FQ):", std::move(rows));
}

void run_bwe() {
  core::DumbbellScenario net{link100()};
  bwe::Allocator alloc;
  const auto gold = alloc.add_entity(bwe::kRootEntity, 2.0, "gold");
  const bwe::EntityId leaves[4] = {
      alloc.add_entity(gold, 3.0, "gold.video"), alloc.add_entity(gold, 1.0, "gold.backup"),
      alloc.add_entity(bwe::kRootEntity, 1.0, "silver"),
      alloc.add_entity(bwe::kRootEntity, 1.0, "bronze")};
  const char* ccas[4] = {"cubic", "bbr", "reno", "bbr"};
  const double shares[4] = {0.375, 0.125, 0.25, 0.25};

  bwe::Enforcer enforcer{net.scheduler(), alloc, link100().bottleneck_rate};
  for (int i = 0; i < 4; ++i) {
    auto cc = std::make_unique<bwe::CappedCca>(core::make_cca_factory(ccas[i])());
    auto* cap = cc.get();
    net.add_flow(std::move(cc), std::make_unique<app::BulkApp>(),
                 static_cast<sim::UserId>(i + 1));
    enforcer.bind(leaves[i], *cap, [] { return Rate::mbps(1000); });
  }
  enforcer.start(Time::zero());

  net.run_until(Time::sec(10.0));
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(40.0));
  const auto g = net.goodputs_mbps_since(snap, Time::sec(30.0));
  std::vector<Row> rows;
  const char* names[] = {"gold.video", "gold.backup", "silver", "bronze"};
  for (int i = 0; i < 4; ++i) rows.push_back({names[i], ccas[i], shares[i], g[i]});
  print("BwE-style host-based allocation (central water-filling + caps):",
        std::move(rows));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "both";
  std::cout << "policy: gold pays 2x (video 3x backup inside), silver == bronze\n"
               "flows run deliberately mismatched CCAs (cubic/bbr/reno/bbr)\n";
  if (mode == "rcs" || mode == "both") run_rcs();
  if (mode == "bwe" || mode == "both") run_bwe();
  std::cout << "\nEither mechanism pins the policy; under plain DropTail the same four\n"
               "flows would split by CCA aggression instead (try quickstart).\n";
  return 0;
}
