#!/usr/bin/env bash
# Builds and runs the two sanitizer jobs the repo's labels are cut for:
#
#   tsan   -DCCC_SANITIZE=thread             ctest -L sanitize
#          (the concurrency tests: runner pool, telemetry merge, the
#          jobs-1-vs-jobs-8 pipeline determinism pin)
#
#   asan   -DCCC_SANITIZE=address,undefined  ctest -L "robustness|store|pipeline|ingest|sweep|elastic"
#          (the corrupt-input suites: the corruption matrix, faultfs drills,
#          the store/pipeline tests, and the sweep checkpoint/journal suite —
#          where a validation bug shows up as an OOB read/write or UB before
#          it shows up as a wrong answer)
#
# Usage: scripts/run_sanitizers.sh [tsan|asan|all]   (default: all)
# Build trees land in build-tsan/ and build-asan/ next to build/.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
which=${1:-all}

run_job() {
  local name=$1 sanitize=$2 label=$3
  local dir="build-${name}"
  echo "=== ${name}: CCC_SANITIZE=${sanitize}, ctest -L '${label}' ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCCC_SANITIZE="${sanitize}"
  cmake --build "${dir}" -j "${jobs}"
  ctest --test-dir "${dir}" -L "${label}" --output-on-failure -j "${jobs}"
}

case "${which}" in
  tsan) run_job tsan thread sanitize ;;
  asan) run_job asan address,undefined "robustness|store|pipeline|ingest|sweep|elastic" ;;
  all)
    run_job tsan thread sanitize
    run_job asan address,undefined "robustness|store|pipeline|ingest|sweep|elastic"
    ;;
  *)
    echo "usage: $0 [tsan|asan|all]" >&2
    exit 2
    ;;
esac
