#!/usr/bin/env bash
# Perf smoke: re-runs the headline micro benches (micro_sim, micro_store, ...)
# and fails if any committed *_per_sec baseline regresses by more than 20%.
#
# Baselines are the repo-root BENCH_sim.json / BENCH_store.json report files
# (ccc.report.v1 JSONL). Scopes prefixed "pre." are historical pre-change
# records kept for the speedup table in EXPERIMENTS.md; they are not gates.
#
# Usage: scripts/run_perf_smoke.sh [build-dir]     (default: build)
#   CCC_PERF_THRESHOLD=0.80   pass ratio (current/baseline) below which we fail
#   CCC_PERF_RUNS=3           samples per bench; the best is compared, so a
#                             one-off scheduling hiccup does not flake CI.
#                             micro_sim/micro_store take this as --repeat N
#                             (best-of-N inside one process, no re-setup);
#                             the others still loop at the shell level.
#
# Exit codes: 0 ok, 1 regression, 2 usage/build problem.
set -euo pipefail
cd "$(dirname "$0")/.."

build=${1:-build}
thresh=${CCC_PERF_THRESHOLD:-0.80}
runs=${CCC_PERF_RUNS:-3}
tmp=$(mktemp -d)
trap 'rm -rf "${tmp}"' EXIT

for bin in micro_sim micro_store micro_ingest micro_sweep micro_fft micro_elastic; do
  [ -x "${build}/bench/${bin}" ] || {
    echo "run_perf_smoke: ${build}/bench/${bin} not built (cmake --build ${build})" >&2
    exit 2
  }
done

# check <bench> <baseline.json> <current.jsonl...>: compare every
# "*_per_sec" scalar present in the baseline against the best current run.
check() {
  local bench=$1 base=$2
  shift 2
  awk -v thresh="${thresh}" -v bench="${bench}" -v base_file="${base}" '
    function field(line, key,   s) {
      if (!match(line, "\"" key "\":\"?")) return ""
      s = substr(line, RSTART + RLENGTH)
      sub(/[",}].*/, "", s)
      return s
    }
    {
      scope = field($0, "scope"); name = field($0, "name")
      if (scope == "" || name !~ /_per_sec$/) next
      # Key on scope/name: a scope may publish several rates (e.g.
      # elastic_sessions has fleet_updates_per_sec AND sessions_per_sec).
      key = scope "/" name
      v = field($0, "value") + 0
      if (FILENAME == base_file) {
        if (scope !~ /^pre\./) base[key] = v
      } else if (v > cur[key]) {
        cur[key] = v
      }
    }
    END {
      fail = 0
      for (s in base) {
        if (!(s in cur)) { printf "FAIL %s/%s: missing from current run\n", bench, s; fail = 1; continue }
        ratio = cur[s] / base[s]
        printf "%-11s %-40s %14.0f -> %14.0f   %.2fx\n", bench, s, base[s], cur[s], ratio
        if (ratio < thresh) {
          printf "FAIL %s/%s regressed: %.2fx < %.2fx floor\n", bench, s, ratio, thresh
          fail = 1
        }
      }
      exit fail
    }' "${base}" "$@"
}

status=0
for bench in micro_sim micro_store micro_ingest micro_sweep; do
  reports=()
  case "${bench}" in
    micro_sim | micro_store)
      # These benches do best-of-N themselves (--repeat): one process, one
      # fixture setup, N timed passes per scope — tighter than re-execing.
      "${build}/bench/${bench}" --repeat "${runs}" \
        --report "${tmp}/${bench}_1.jsonl" >/dev/null
      reports+=("${tmp}/${bench}_1.jsonl")
      ;;
    *)
      for ((i = 1; i <= runs; ++i)); do
        "${build}/bench/${bench}" \
          --report "${tmp}/${bench}_${i}.jsonl" >/dev/null
        reports+=("${tmp}/${bench}_${i}.jsonl")
      done
      ;;
  esac
  base="BENCH_${bench#micro_}.json"
  check "${bench}" "${base}" "${reports[@]}" || status=1
done

# micro_fft and micro_elastic share one baseline file (BENCH_fft.json): the
# elastic service's headline rates are gated next to the full-FFT rates they
# are quoted against in EXPERIMENTS.md. Both binaries do best-of-N via
# --repeat; --benchmark_filter=^$ skips the google-benchmark cases so only
# the headline report loops run.
spectrum_reports=()
for bench in micro_fft micro_elastic; do
  "${build}/bench/${bench}" --repeat "${runs}" --benchmark_filter=^$ \
    --report "${tmp}/${bench}.jsonl" >/dev/null
  spectrum_reports+=("${tmp}/${bench}.jsonl")
done
check "spectrum" BENCH_fft.json "${spectrum_reports[@]}" || status=1

# The service PR's headline claim, gated absolutely (not vs a baseline):
# streaming verdict updates must beat the full-FFT 1024-window rate by 10x.
awk '
  function field(line, key,   s) {
    if (!match(line, "\"" key "\":\"?")) return ""
    s = substr(line, RSTART + RLENGTH)
    sub(/[",}].*/, "", s)
    return s
  }
  field($0, "scope") == "elastic_incremental" &&
    field($0, "name") == "verdict_updates_per_sec" { inc = field($0, "value") + 0 }
  field($0, "scope") == "elastic_fullfft_1024" &&
    field($0, "name") == "windows_per_sec" { full = field($0, "value") + 0 }
  END {
    if (inc <= 0 || full <= 0) { print "FAIL elastic 10x gate: rates missing"; exit 1 }
    printf "%-11s %-22s %14.0f vs %11.0f   %.1fx (>= 10x required)\n",
           "elastic", "verdict_updates", inc, full, inc / full
    if (inc < 10 * full) { printf "FAIL elastic: %.1fx < 10x full-FFT floor\n", inc / full; exit 1 }
  }' "${tmp}/micro_elastic.jsonl" || status=1

if [ "${status}" -ne 0 ]; then
  echo "run_perf_smoke: regression beyond $(awk -v t="${thresh}" 'BEGIN{printf "%.0f", (1-t)*100}')% detected" >&2
else
  echo "run_perf_smoke: all headline rates within ${thresh}x of committed baselines"
fi
exit "${status}"
