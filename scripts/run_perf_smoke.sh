#!/usr/bin/env bash
# Perf smoke: re-runs the headline micro benches (micro_sim, micro_store, ...)
# and fails if any committed *_per_sec baseline regresses by more than 20%.
#
# Baselines are the repo-root BENCH_sim.json / BENCH_store.json report files
# (ccc.report.v1 JSONL). Scopes prefixed "pre." are historical pre-change
# records kept for the speedup table in EXPERIMENTS.md; they are not gates.
#
# Usage: scripts/run_perf_smoke.sh [build-dir]     (default: build)
#   CCC_PERF_THRESHOLD=0.80   pass ratio (current/baseline) below which we fail
#   CCC_PERF_RUNS=3           samples per bench; the best is compared, so a
#                             one-off scheduling hiccup does not flake CI.
#                             micro_sim/micro_store take this as --repeat N
#                             (best-of-N inside one process, no re-setup);
#                             the others still loop at the shell level.
#
# Exit codes: 0 ok, 1 regression, 2 usage/build problem.
set -euo pipefail
cd "$(dirname "$0")/.."

build=${1:-build}
thresh=${CCC_PERF_THRESHOLD:-0.80}
runs=${CCC_PERF_RUNS:-3}
tmp=$(mktemp -d)
trap 'rm -rf "${tmp}"' EXIT

for bin in micro_sim micro_store micro_ingest micro_sweep; do
  [ -x "${build}/bench/${bin}" ] || {
    echo "run_perf_smoke: ${build}/bench/${bin} not built (cmake --build ${build})" >&2
    exit 2
  }
done

# check <bench> <baseline.json> <current.jsonl...>: compare every
# "*_per_sec" scalar present in the baseline against the best current run.
check() {
  local bench=$1 base=$2
  shift 2
  awk -v thresh="${thresh}" -v bench="${bench}" -v base_file="${base}" '
    function field(line, key,   s) {
      if (!match(line, "\"" key "\":\"?")) return ""
      s = substr(line, RSTART + RLENGTH)
      sub(/[",}].*/, "", s)
      return s
    }
    {
      scope = field($0, "scope"); name = field($0, "name")
      if (scope == "" || name !~ /_per_sec$/) next
      v = field($0, "value") + 0
      if (FILENAME == base_file) {
        if (scope !~ /^pre\./) base[scope] = v
      } else if (v > cur[scope]) {
        cur[scope] = v
      }
    }
    END {
      fail = 0
      for (s in base) {
        if (!(s in cur)) { printf "FAIL %s/%s: missing from current run\n", bench, s; fail = 1; continue }
        ratio = cur[s] / base[s]
        printf "%-11s %-22s %14.0f -> %14.0f   %.2fx\n", bench, s, base[s], cur[s], ratio
        if (ratio < thresh) {
          printf "FAIL %s/%s regressed: %.2fx < %.2fx floor\n", bench, s, ratio, thresh
          fail = 1
        }
      }
      exit fail
    }' "${base}" "$@"
}

status=0
for bench in micro_sim micro_store micro_ingest micro_sweep; do
  reports=()
  case "${bench}" in
    micro_sim | micro_store)
      # These benches do best-of-N themselves (--repeat): one process, one
      # fixture setup, N timed passes per scope — tighter than re-execing.
      "${build}/bench/${bench}" --repeat "${runs}" \
        --report "${tmp}/${bench}_1.jsonl" >/dev/null
      reports+=("${tmp}/${bench}_1.jsonl")
      ;;
    *)
      for ((i = 1; i <= runs; ++i)); do
        "${build}/bench/${bench}" \
          --report "${tmp}/${bench}_${i}.jsonl" >/dev/null
        reports+=("${tmp}/${bench}_${i}.jsonl")
      done
      ;;
  esac
  base="BENCH_${bench#micro_}.json"
  check "${bench}" "${base}" "${reports[@]}" || status=1
done

if [ "${status}" -ne 0 ]; then
  echo "run_perf_smoke: regression beyond $(awk -v t="${thresh}" 'BEGIN{printf "%.0f", (1-t)*100}')% detected" >&2
else
  echo "run_perf_smoke: all headline rates within ${thresh}x of committed baselines"
fi
exit "${status}"
