#include "ingest/report.hpp"

#include <ostream>
#include <string>

#include "util/table.hpp"

namespace ccc::ingest {

PassiveSummary print_passive_aggregates(std::ostream& os, const pipeline::PipelineResult& res) {
  const auto total = static_cast<double>(res.flows);

  TextTable verdicts{{"pipeline verdict", "flows", "fraction"}};
  for (const auto& [v, c] : res.verdict_map()) {
    verdicts.add_row({std::string{pipeline::to_string(v)}, std::to_string(c),
                      TextTable::num(static_cast<double>(c) / total, 3)});
  }
  verdicts.print(os);

  os << "\nfiltered before change-point stage: "
     << TextTable::num(res.filtered_fraction() * 100, 1) << "%\n";

  print_banner(os, "Ground-truth breakdown (synthetic labels)");
  TextTable conf{{"truth", "flows", "filtered", "no-shift", "contention-suspect"}};
  for (std::size_t a = 0; a < res.confusion.size(); ++a) {
    const auto& row = res.confusion[a];
    std::uint64_t flows = 0;
    std::uint64_t filtered = 0;
    for (std::size_t v = 0; v < pipeline::kVerdictCount; ++v) {
      flows += row[v];
      if (v < static_cast<std::size_t>(pipeline::Verdict::kNoLevelShift)) filtered += row[v];
    }
    if (flows == 0) continue;  // CSV inputs may lack some archetypes
    conf.add_row(
        {std::string{mlab::to_string(static_cast<mlab::FlowArchetype>(a))},
         std::to_string(flows), std::to_string(filtered),
         std::to_string(row[static_cast<std::size_t>(pipeline::Verdict::kNoLevelShift)]),
         std::to_string(row[static_cast<std::size_t>(pipeline::Verdict::kContentionSuspect)])});
  }
  conf.print(os);

  print_banner(os, "Pipeline scoring (impossible with real M-Lab data)");
  os << "precision of 'contention-suspect': " << TextTable::num(res.precision(), 3)
     << "\nrecall of true contention:          " << TextTable::num(res.recall(), 3)
     << "\nfalse positives (mostly policing/ABR aliasing): " << res.false_positives << "\n";

  // CDF of detected shift magnitudes, from the merged shard histogram (the
  // at-scale paths never keep per-flow findings).
  const auto hist_it = res.metrics.histograms().find("pipeline.shift_magnitude");
  if (hist_it != res.metrics.histograms().end() && hist_it->second.count() > 0) {
    print_banner(os, "CDF of detected level-shift magnitudes");
    TextTable cdf{{"shift fraction", "cumulative fraction"}};
    const auto& h = hist_it->second;
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < h.bounds().size(); ++b) {
      cum += h.counts()[b];
      cdf.add_row({TextTable::num(h.bounds()[b], 2),
                   TextTable::num(static_cast<double>(cum) / static_cast<double>(h.count()), 2)});
    }
    cdf.print(os);
  }

  PassiveSummary s;
  s.suspect_fraction =
      static_cast<double>(
          res.verdicts[static_cast<std::size_t>(pipeline::Verdict::kContentionSuspect)]) /
      total;
  s.reproduced = res.filtered_fraction() > 0.5 && s.suspect_fraction < 0.2;
  os << "\nshape check: filtered=" << TextTable::num(res.filtered_fraction(), 2)
     << " suspect=" << TextTable::num(s.suspect_fraction, 3) << " -> "
     << (s.reproduced ? "REPRODUCED" : "NOT reproduced") << "\n";
  return s;
}

void add_passive_scalars(telemetry::RunReport& rr, const pipeline::PipelineResult& res,
                         double suspect_fraction) {
  for (const auto& [v, c] : res.verdict_map()) {
    rr.add_scalar("verdicts", std::string{pipeline::to_string(v)}, static_cast<double>(c));
  }
  rr.add_scalar("pipeline", "filtered_fraction", res.filtered_fraction());
  rr.add_scalar("pipeline", "precision", res.precision());
  rr.add_scalar("pipeline", "recall", res.recall());
  rr.add_scalar("pipeline", "false_positives", static_cast<double>(res.false_positives));
  rr.add_scalar("pipeline", "suspect_fraction", suspect_fraction);
}

}  // namespace ccc::ingest
