// IngestDaemon — the long-running analysis loop behind ccc_ingestd.
//
// The daemon is a thin driver over the shared stage API: it pulls batches
// from any PullSource (spool / stdin / socket), pushes every flow through
// one AnalyzeStage (§3.1 classify + bounded-memory changepoint search), and
// optionally re-writes the stream as log-structured ccfs shards. All state
// that grows does so per *epoch*, not per flow:
//
//   every epoch_flows flows ->  stage.flush(epoch)   counter deltas exported
//                               writer.rotate()      open shard sealed (CRC
//                                                    valid; a crash can now
//                                                    only tear the next one)
//                               epoch row emitted    rolling aggregates to
//                                                    the report sink
//
// Memory bounds (DESIGN.md "Streaming ingest"): the stage keeps tallies +
// one reused ChangepointWorkspace (findings stay off), the writer buffers
// one open shard's scalar columns, and the sources hold one shard mapping
// or one batch of records. Nothing scales with stream length, which is what
// the 10x-replay RSS soak pins.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "pipeline/stage.hpp"
#include "store/flow_store.hpp"
#include "telemetry/sink.hpp"

namespace ccc::ingest {

struct IngestConfig {
  /// Stage knobs: classify config (early-exit policy included), changepoint
  /// window, strictness, validation. keep_findings MUST stay false for an
  /// unbounded stream; run() enforces it.
  pipeline::StageOptions stage{};
  /// Epoch length in flows — the flush / rotate / report cadence. 0 means
  /// "one epoch": settle everything only at stream end.
  std::uint64_t epoch_flows{65536};
  /// Base path for re-written ccfs shards ("" = analyze only). Shards seal
  /// at epoch boundaries and at out_shard_flows, whichever comes first.
  std::string out_store;
  std::uint64_t out_shard_flows{65536};
  /// Stop after this many flows (0 = run until the source ends). The replay
  /// and socket modes' exit condition.
  std::uint64_t max_flows{0};
  /// Flows per pull.
  std::size_t batch_flows{256};
  /// Sleep when the source reports kBlocked with nothing delivered.
  std::chrono::milliseconds idle_wait{20};
  /// Polled between batches; return true to stop (signal handlers hook in
  /// here). Optional.
  std::function<bool()> should_stop;
  /// Receives one row group per epoch (scope "epoch<N>": flows, suspects,
  /// changepoints, early exits, samples scanned, corrupt records — the
  /// rolling Figure-2 aggregates). Optional; rows are cumulative so a tail
  /// of the file always has current totals.
  telemetry::Sink* epoch_sink{nullptr};
};

struct IngestResult {
  std::uint64_t flows{0};   ///< flows pushed through the stage
  std::uint64_t epochs{0};  ///< epoch boundaries settled (final one included)
  std::vector<std::string> out_shards;  ///< sealed output shards, append order
  bool source_ended{false};  ///< true: kEnd; false: max_flows / should_stop
};

class IngestDaemon {
 public:
  explicit IngestDaemon(IngestConfig cfg);

  /// Drives `src` until it ends, max_flows is reached, or should_stop says
  /// so. May be called once per daemon.
  IngestResult run(pipeline::PullSource& src);

  [[nodiscard]] const pipeline::AnalyzeStage& stage() const { return stage_; }

  /// The accumulated aggregates in PipelineResult shape — what the shared
  /// Figure-2 printer (ingest::print_passive_aggregates) consumes, so a
  /// daemon replay and offline fig2 print through identical code.
  [[nodiscard]] pipeline::PipelineResult result() const;

 private:
  void settle_epoch(IngestResult& res);

  IngestConfig cfg_;
  pipeline::AnalyzeStage stage_;
  std::unique_ptr<store::ShardedFlowStoreWriter> writer_;
  std::uint64_t epoch_{0};
};

}  // namespace ccc::ingest
