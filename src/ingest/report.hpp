// The Figure-2 aggregate block — verdict table, ground-truth confusion,
// precision/recall scoring, shift-magnitude CDF, shape check — as one
// shared printer.
//
// Both presentation paths of the §3.1 analysis end in this exact block:
// fig2_mlab_passive's at-scale run prints it after run_pipeline, and
// ccc_ingestd prints it when a replay finishes. Byte-identity between
// "offline fig2 over a corpus" and "the daemon replaying the same corpus"
// is an acceptance criterion of the streaming-ingest work, and sharing the
// printer makes it structural: if the aggregates match, the text matches.
#pragma once

#include <iosfwd>

#include "pipeline/pipeline.hpp"
#include "telemetry/run_report.hpp"

namespace ccc::ingest {

struct PassiveSummary {
  double suspect_fraction{0.0};
  /// The paper-shape check: most flows filtered, suspects a small minority.
  bool reproduced{false};
};

/// Prints the aggregate block (everything between the dataset banner and
/// the RunReport emission in fig2's original at-scale path) and returns the
/// shape-check summary. Uses only aggregate state — verdict counts,
/// confusion matrix, scoring, and the merged shift-magnitude histogram —
/// never per-flow findings, so bounded-memory producers can call it too.
PassiveSummary print_passive_aggregates(std::ostream& os, const pipeline::PipelineResult& res);

/// The matching machine-readable scalars ("verdicts.*", "pipeline.*"),
/// exactly as fig2 at scale has always emitted them.
void add_passive_scalars(telemetry::RunReport& rr, const pipeline::PipelineResult& res,
                         double suspect_fraction);

}  // namespace ccc::ingest
