// Unbounded PullSource implementations for the ingest daemon: where a
// long-running service's flows actually come from.
//
// The offline pipeline's RangePull walks a finite index space. A service
// has three different input shapes, none of which has a size():
//
//   SpoolSource      a watched directory of ccfs shards — the handoff
//                    convention between a collector that seals shards and
//                    an analyzer that consumes them. One reader open at a
//                    time, so RSS is bounded by the largest single shard,
//                    never by the corpus.
//   CsvStreamSource  newline-delimited NDT CSV rows on an istream (stdin) —
//                    `bq extract | ccc_ingestd --stdin` territory.
//   SocketSource     the same row protocol over a unix domain socket, for
//                    local producers that outlive any one pipe.
//
// All three return views that stay valid until the next pull on the same
// source (spans into the open shard's mapping, or into records the source
// owns until it refills), which is exactly the lifetime pipeline::drain
// needs to push a batch through a stage.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "mlab/ndt_record.hpp"
#include "pipeline/stage.hpp"
#include "store/flow_store.hpp"

namespace ccc::ingest {

struct SpoolOptions {
  /// Keep watching for shards that appear after the initial scan. A shard
  /// that fails to open in follow mode is retried on later pulls (it is
  /// usually a collector mid-write, not damage); the source reports
  /// kBlocked in the meantime and never kEnd.
  bool follow{false};
  /// Sweep the (oneshot) shard list this many times — the replay multiplier
  /// the bounded-RSS soak test uses to run 10x the corpus through the
  /// daemon without 10x the disk.
  std::size_t replay{1};
  /// Oneshot mode only: throw on an unreadable shard instead of the default
  /// skip-count-and-continue.
  bool strict{false};
  /// Per-shard readahead window in flows (FlowStoreReader::willneed), same
  /// semantics as the pipeline's --readahead. 0 = off.
  std::size_t readahead_flows{0};
};

struct SpoolStats {
  std::uint64_t shards_opened{0};
  std::uint64_t shards_skipped{0};  ///< unreadable, oneshot degrade mode
  std::uint64_t passes_done{0};     ///< completed sweeps of the shard list
};

/// Presents a spool directory of sealed ccfs shards (lexicographic filename
/// order — writers name them base.00000.ccfs, base.00001.ccfs, ...) as one
/// unbounded flow stream. Exactly one FlowStoreReader is open at any time;
/// a shard's mapping is dropped before the next one is opened, so memory is
/// O(largest shard), not O(corpus).
class SpoolSource final : public pipeline::PullSource {
 public:
  SpoolSource(std::string dir, SpoolOptions opts = {});

  pipeline::PullResult pull(std::vector<store::FlowView>& out, std::size_t max) override;

  [[nodiscard]] const SpoolStats& stats() const { return stats_; }

 private:
  enum class Advance : std::uint8_t { kOpened, kBlocked, kEnd };
  /// Closes the current reader and opens the next shard (rescanning the
  /// directory in follow mode, restarting the sweep in replay mode).
  Advance advance();
  void scan();

  std::string dir_;
  SpoolOptions opts_;
  SpoolStats stats_;
  std::vector<std::string> queue_;            // shard paths, sorted
  std::unordered_set<std::string> enqueued_;  // ever queued (follow rescans)
  std::size_t queue_index_{0};
  bool scanned_{false};
  std::unique_ptr<store::FlowStoreReader> reader_;
  std::size_t pos_{0};  // next flow index within reader_
};

struct StreamStats {
  std::uint64_t rows_parsed{0};
  std::uint64_t rows_malformed{0};  ///< counted and dropped, never pushed
};

/// Newline-delimited NDT CSV rows from an istream. A leading header row
/// (exactly mlab::csv_header()) is skipped, so piping a write_csv file works
/// unchanged; blank lines are ignored; malformed rows are counted and
/// dropped (the same judgment as the batch CSV loader). Pulls block on the
/// underlying stream — this is the stdin mode, where blocking in read IS
/// the idle wait.
class CsvStreamSource final : public pipeline::PullSource {
 public:
  explicit CsvStreamSource(std::istream& in) : in_{in} {}

  pipeline::PullResult pull(std::vector<store::FlowView>& out, std::size_t max) override;

  [[nodiscard]] const StreamStats& stats() const { return stats_; }

 private:
  std::istream& in_;
  bool first_line_{true};
  StreamStats stats_;
  std::vector<mlab::NdtRecord> batch_;  // owns the records behind the views
};

struct SocketStats : StreamStats {
  std::uint64_t connections{0};
};

/// The CSV row protocol over a unix domain stream socket: the source
/// listens, producers connect and write rows (optionally starting with the
/// header line), and close when done. Non-blocking throughout — a pull with
/// no pending data returns kBlocked immediately, and the daemon owns the
/// idle wait. The stream never reports kEnd (a socket has no natural end);
/// services stop via their own flow limit or stop hook.
class SocketSource final : public pipeline::PullSource {
 public:
  /// Binds and listens on `path` (an existing socket file is replaced).
  /// Throws ccc::Error{kIo} if the socket cannot be set up.
  explicit SocketSource(std::string path);
  ~SocketSource();

  SocketSource(const SocketSource&) = delete;
  SocketSource& operator=(const SocketSource&) = delete;

  pipeline::PullResult pull(std::vector<store::FlowView>& out, std::size_t max) override;

  [[nodiscard]] const SocketStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct Client {
    int fd{-1};
    std::string buf;  // bytes received but not yet newline-terminated
  };
  void ingest_line(std::string line, std::size_t max);

  std::string path_;
  int listen_fd_{-1};
  std::vector<Client> clients_;
  SocketStats stats_;
  std::vector<mlab::NdtRecord> batch_;
};

}  // namespace ccc::ingest
