#include "ingest/sources.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <istream>
#include <string_view>
#include <utility>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "mlab/csv_io.hpp"
#include "util/error.hpp"

namespace ccc::ingest {

namespace fs = std::filesystem;

// ---------- SpoolSource ----------

SpoolSource::SpoolSource(std::string dir, SpoolOptions opts)
    : dir_{std::move(dir)}, opts_{opts} {
  if (opts_.replay == 0) opts_.replay = 1;
}

void SpoolSource::scan() {
  std::vector<std::string> fresh;
  std::error_code ec;
  for (fs::directory_iterator it{dir_, ec}, end; !ec && it != end; it.increment(ec)) {
    const auto& p = it->path();
    if (p.extension() != ".ccfs") continue;
    auto s = p.string();
    if (enqueued_.insert(s).second) fresh.push_back(std::move(s));
  }
  if (ec) throw Error::io(dir_, "spool: cannot scan directory: " + ec.message(), errno);
  // New arrivals sort among themselves; already-queued shards keep their
  // position (a sweep in progress must not reshuffle under the cursor).
  std::sort(fresh.begin(), fresh.end());
  queue_.insert(queue_.end(), fresh.begin(), fresh.end());
  scanned_ = true;
}

SpoolSource::Advance SpoolSource::advance() {
  reader_.reset();  // drop the finished shard's mapping before opening more
  if (!scanned_) scan();
  for (;;) {
    if (queue_index_ < queue_.size()) {
      const std::string& path = queue_[queue_index_];
      try {
        store::ReaderOptions ropts;
        ropts.sequential = opts_.readahead_flows > 0;
        auto r = std::make_unique<store::FlowStoreReader>(path, ropts);
        reader_ = std::move(r);
        pos_ = 0;
        ++queue_index_;
        ++stats_.shards_opened;
        if (opts_.readahead_flows > 0) reader_->willneed(0, opts_.readahead_flows);
        return Advance::kOpened;
      } catch (const Error&) {
        if (opts_.follow) {
          // Probably a collector mid-write: leave the cursor on it and let
          // a later pull retry once the shard is sealed.
          return Advance::kBlocked;
        }
        if (opts_.strict) throw;
        ++stats_.shards_skipped;
        ++queue_index_;
        continue;
      }
    }
    if (opts_.follow) {
      const std::size_t before = queue_.size();
      scan();
      if (queue_.size() > before) continue;
      return Advance::kBlocked;
    }
    if (stats_.passes_done + 1 < opts_.replay) {
      ++stats_.passes_done;
      queue_index_ = 0;  // replay the same sweep list
      continue;
    }
    ++stats_.passes_done;
    return Advance::kEnd;
  }
}

pipeline::PullResult SpoolSource::pull(std::vector<store::FlowView>& out, std::size_t max) {
  std::size_t produced = 0;
  while (produced < max) {
    if (!reader_ || pos_ >= reader_->size()) {
      if (produced > 0 && reader_ && pos_ >= reader_->size()) {
        // Views into this shard are already in `out`; keep its mapping
        // alive until the next pull and advance then.
        return {produced, pipeline::StreamState::kReady};
      }
      switch (advance()) {
        case Advance::kOpened:
          break;
        case Advance::kBlocked:
          return {produced,
                  produced > 0 ? pipeline::StreamState::kReady : pipeline::StreamState::kBlocked};
        case Advance::kEnd:
          return {produced, pipeline::StreamState::kEnd};
      }
    }
    const std::size_t take = std::min(max - produced, reader_->size() - pos_);
    for (std::size_t i = 0; i < take; ++i) {
      const std::size_t ra = opts_.readahead_flows;
      if (ra > 0 && pos_ % ra == 0 && pos_ + ra < reader_->size()) {
        reader_->willneed(pos_ + ra, ra);
      }
      out.push_back(reader_->at(pos_++));
    }
    produced += take;
  }
  return {produced, pipeline::StreamState::kReady};
}

// ---------- CsvStreamSource ----------

namespace {

/// Normalizes one wire line in place (strip CRLF tail) and classifies it:
/// returns true if it should be parsed as a data row, false for the lines a
/// stream legitimately carries that aren't rows (blank, the CSV header).
bool is_data_line(std::string& line, bool allow_header) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line.empty()) return false;
  if (allow_header && line == mlab::csv_header()) return false;
  return true;
}

}  // namespace

pipeline::PullResult CsvStreamSource::pull(std::vector<store::FlowView>& out, std::size_t max) {
  batch_.clear();
  std::string line;
  bool eof = false;
  while (batch_.size() < max) {
    if (!std::getline(in_, line)) {
      eof = true;
      break;
    }
    const bool first = first_line_;
    first_line_ = false;
    if (!is_data_line(line, first)) continue;
    mlab::NdtRecord rec;
    if (mlab::parse_csv_row(line, rec)) {
      ++stats_.rows_parsed;
      batch_.push_back(std::move(rec));
    } else {
      ++stats_.rows_malformed;
    }
  }
  for (const auto& rec : batch_) out.push_back(store::FlowView::from_record(rec));
  return {batch_.size(),
          eof ? pipeline::StreamState::kEnd : pipeline::StreamState::kReady};
}

// ---------- SocketSource ----------

namespace {

void set_nonblocking(int fd, const std::string& path) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw Error::io(path, std::string{"socket: fcntl O_NONBLOCK: "} + std::strerror(errno),
                    errno);
  }
}

}  // namespace

SocketSource::SocketSource(std::string path) : path_{std::move(path)} {
  sockaddr_un addr{};
  if (path_.size() >= sizeof(addr.sun_path)) {
    throw Error::io(path_, "socket: path too long for sockaddr_un");
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error::io(path_, std::string{"socket: socket(): "} + std::strerror(errno), errno);
  }
  ::unlink(path_.c_str());  // replace a stale socket file from a dead daemon
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 8) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error::io(path_, std::string{"socket: bind/listen: "} + std::strerror(err), err);
  }
  set_nonblocking(listen_fd_, path_);
}

SocketSource::~SocketSource() {
  for (const auto& c : clients_) ::close(c.fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
}

void SocketSource::ingest_line(std::string line, std::size_t max) {
  // Every connection may lead with the header line, so `cat file.csv | nc
  // -U` works per producer, not just for the first.
  if (!is_data_line(line, /*allow_header=*/true)) return;
  mlab::NdtRecord rec;
  if (mlab::parse_csv_row(line, rec)) {
    ++stats_.rows_parsed;
    if (batch_.size() < max) batch_.push_back(std::move(rec));
    // A full batch drops nothing: lines are only extracted from a client's
    // buffer while the batch has room (see pull), so this branch is belt
    // and suspenders for the final flush of a closing client.
  } else {
    ++stats_.rows_malformed;
  }
}

pipeline::PullResult SocketSource::pull(std::vector<store::FlowView>& out, std::size_t max) {
  batch_.clear();

  // Admit any producers waiting on the listen queue.
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // EAGAIN (or a transient error — retried next pull)
    set_nonblocking(fd, path_);
    clients_.push_back(Client{fd, {}});
    ++stats_.connections;
  }

  // Drain each client: buffered complete lines first, then whatever the
  // kernel has pending. Stop reading once the batch is full — unread bytes
  // stay in the socket buffer, which is the backpressure path all the way
  // back to the producer's write().
  for (auto& c : clients_) {
    while (batch_.size() < max) {
      const auto nl = c.buf.find('\n');
      if (nl != std::string::npos) {
        std::string line = c.buf.substr(0, nl);
        c.buf.erase(0, nl + 1);
        ingest_line(std::move(line), max);
        continue;
      }
      char tmp[4096];
      const ssize_t n = ::read(c.fd, tmp, sizeof tmp);
      if (n > 0) {
        c.buf.append(tmp, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {  // producer closed; an unterminated tail is still a row
        if (!c.buf.empty()) ingest_line(std::exchange(c.buf, {}), max);
        ::close(c.fd);
        c.fd = -1;
      }
      break;  // EOF handled, or EAGAIN: nothing more right now
    }
  }
  clients_.erase(
      std::remove_if(clients_.begin(), clients_.end(), [](const Client& c) { return c.fd < 0; }),
      clients_.end());

  for (const auto& rec : batch_) out.push_back(store::FlowView::from_record(rec));
  return {batch_.size(), batch_.empty() ? pipeline::StreamState::kBlocked
                                        : pipeline::StreamState::kReady};
}

}  // namespace ccc::ingest
