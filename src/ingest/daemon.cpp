#include "ingest/daemon.hpp"

#include <algorithm>
#include <thread>

namespace ccc::ingest {

namespace {

pipeline::StageOptions bounded(pipeline::StageOptions opts) {
  // A daemon's stream has no end to reserve for: per-flow findings are the
  // one unbounded tally, so the daemon refuses to keep them.
  opts.keep_findings = false;
  return opts;
}

}  // namespace

IngestDaemon::IngestDaemon(IngestConfig cfg)
    : cfg_{std::move(cfg)}, stage_{bounded(cfg_.stage)} {
  if (!cfg_.out_store.empty()) {
    const auto per_shard = cfg_.out_shard_flows > 0 ? cfg_.out_shard_flows : 65536;
    writer_ = std::make_unique<store::ShardedFlowStoreWriter>(cfg_.out_store, per_shard);
  }
}

void IngestDaemon::settle_epoch(IngestResult& res) {
  ++epoch_;
  stage_.flush(epoch_);
  if (writer_ && writer_->open_flows() > 0) writer_->rotate();
  if (cfg_.epoch_sink != nullptr) {
    const auto& t = stage_.tallies();
    const auto at = static_cast<double>(epoch_);
    const auto emit = [&](const char* name, std::uint64_t v) {
      cfg_.epoch_sink->row({"epoch", name, "gauge", at, static_cast<double>(v)});
    };
    // Cumulative, so tailing the file always shows current totals and the
    // per-epoch delta is one subtraction away.
    emit("flows", t.flows_seen);
    emit("contention_suspects",
         t.verdicts[static_cast<std::size_t>(pipeline::Verdict::kContentionSuspect)]);
    emit("changepoints", t.changepoints);
    emit("early_exits", t.early_exits);
    emit("samples_scanned", t.samples_scanned);
    emit("records_corrupt", t.records_corrupt);
  }
  ++res.epochs;
}

IngestResult IngestDaemon::run(pipeline::PullSource& src) {
  IngestResult res;
  std::vector<store::FlowView> batch;
  std::uint64_t since_epoch = 0;
  for (;;) {
    if (cfg_.should_stop && cfg_.should_stop()) break;
    // Clamp each pull to the next epoch / flow-limit boundary so epochs
    // settle at exact flow counts (flush placement never changes tallies,
    // but exact boundaries make shard rotation sizes deterministic).
    std::size_t want = cfg_.batch_flows > 0 ? cfg_.batch_flows : 256;
    if (cfg_.epoch_flows > 0) {
      want = std::min<std::uint64_t>(want, cfg_.epoch_flows - since_epoch);
    }
    if (cfg_.max_flows > 0) {
      want = std::min<std::uint64_t>(want, cfg_.max_flows - res.flows);
    }
    batch.clear();
    const auto pr = src.pull(batch, want);
    for (const auto& flow : batch) {
      // The writer sees the raw stream (log-structured capture keeps even
      // records the validator would drop — reprocessing with better code
      // later is the point of keeping the bytes); the stage applies its own
      // validation policy.
      if (writer_) writer_->append(flow);
      stage_.push(flow);
    }
    res.flows += pr.n;
    since_epoch += pr.n;
    if (cfg_.epoch_flows > 0 && since_epoch >= cfg_.epoch_flows) {
      settle_epoch(res);
      since_epoch = 0;
    }
    if (cfg_.max_flows > 0 && res.flows >= cfg_.max_flows) break;
    if (pr.state == pipeline::StreamState::kEnd) {
      res.source_ended = true;
      break;
    }
    if (pr.state == pipeline::StreamState::kBlocked && pr.n == 0) {
      std::this_thread::sleep_for(cfg_.idle_wait);
    }
  }
  // Settle the tail epoch: any un-flushed flows, or the whole stream when
  // epochs were off / the stream was shorter than one epoch.
  if (since_epoch > 0 || epoch_ == 0) settle_epoch(res);
  if (writer_) res.out_shards = writer_->finish();
  return res;
}

pipeline::PipelineResult IngestDaemon::result() const {
  const auto& t = stage_.tallies();
  pipeline::PipelineResult r;
  r.flows = t.flows_seen;
  r.shards = 1;
  r.jobs = 1;
  r.verdicts = t.verdicts;
  r.confusion = t.confusion;
  r.true_positives = t.tp;
  r.false_positives = t.fp;
  r.false_negatives = t.fn;
  r.true_negatives = t.tn;
  r.changepoints_total = t.changepoints;
  r.early_exits = t.early_exits;
  r.samples_scanned = t.samples_scanned;
  r.records_corrupt = t.records_corrupt;
  r.metrics.merge_from(stage_.metrics());
  return r;
}

}  // namespace ccc::ingest
