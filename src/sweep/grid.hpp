// Scenario grid for the grand-matrix sweep (DESIGN.md "Sweep engine &
// scenario axes").
//
// The paper's figures each fix four of the five experimental variables and
// sweep one; the sweep engine instead enumerates the full cross product
//
//   CCA  x  cross-traffic  x  qdisc  x  link model  x  buffer depth
//
// as a flat, row-major cell-id space. The id <-> coordinate mapping is the
// load-bearing contract: checkpoints journal *ids*, the output store is
// written in *id* order, and a resumed sweep must agree with the original
// about what cell 731 means. GridSpec::signature() captures the whole grid
// (axes + scenario constants) as one string, stamped into the checkpoint
// header so a journal can never be replayed against a different grid.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace ccc::sweep {

/// Cross-traffic mix sharing the bottleneck with the CCA under test (the
/// same five archetypes as the elasticity PoC phases, plus "none" for the
/// solo baseline column).
enum class CrossTraffic : std::uint8_t {
  kNone,
  kRenoBulk,
  kBbrBulk,
  kAbrVideo,
  kPoissonShort,
  kCbrUdp,
};

/// Bottleneck queueing discipline (the deployed-AQM spectrum of §2.1).
enum class QdiscKind : std::uint8_t {
  kDropTail,
  kCoDel,
  kFqCoDel,
  kPie,
  kFq,  ///< ideal per-flow DRR (the operator-isolation endpoint)
};

/// Bottleneck link model (src/sim/variable_rate_link.hpp).
enum class LinkModel : std::uint8_t {
  kWired,   ///< fixed-rate link, the paper's Mahimahi baseline
  kMarkov,  ///< two-state Gilbert-Elliott rate process
  kWifi,    ///< Markov + MAC frame-aggregation burst/gap gating
};

[[nodiscard]] std::string_view to_string(CrossTraffic c);
[[nodiscard]] std::string_view to_string(QdiscKind q);
[[nodiscard]] std::string_view to_string(LinkModel l);

/// One grid coordinate, fully decoded.
struct CellSpec {
  std::uint64_t cell_id{0};
  std::string cca;
  CrossTraffic cross{CrossTraffic::kNone};
  QdiscKind qdisc{QdiscKind::kDropTail};
  LinkModel link{LinkModel::kWired};
  double buffer_bdp{1.0};

  /// Human-readable coordinate, e.g. "cubic/bbr-bulk/fq_codel/wifi/x1.0".
  [[nodiscard]] std::string label() const;
};

/// The grid: axis value lists plus the scenario constants every cell shares.
/// Axis order (and hence cell-id layout) is fixed: cca is the slowest-
/// varying coordinate, buffer the fastest.
struct GridSpec {
  std::vector<std::string> ccas;
  std::vector<CrossTraffic> cross;
  std::vector<QdiscKind> qdiscs;
  std::vector<LinkModel> links;
  std::vector<double> buffers_bdp;

  // Scenario constants (part of the signature: changing them re-keys every
  // cell).
  Rate link_rate{Rate::mbps(48)};
  Time one_way_delay{Time::ms(25)};
  Time duration{Time::sec(10.0)};

  /// The full default matrix: 5 CCAs x 6 cross mixes x 5 qdiscs x 3 links
  /// x 3 buffer depths = 1350 cells.
  [[nodiscard]] static GridSpec defaults();

  /// Parses a grid override string of ';'-separated axes:
  ///
  ///   "cca=reno,cubic;cross=none,cbr-udp;qdisc=droptail,fq_codel;
  ///    link=wired,wifi;buf=0.5,1;dur=4;rate=24"
  ///
  /// Omitted axes keep their defaults. Unknown axes, unknown values, empty
  /// value lists, and malformed numbers throw ccc::Error (kConfig) — the
  /// bench's guarded_main turns that into exit 2 per the usage contract.
  [[nodiscard]] static GridSpec parse(const std::string& spec);

  /// Total cell count (product of the axis sizes).
  [[nodiscard]] std::uint64_t size() const;

  /// Decodes a row-major cell id. Precondition: id < size().
  [[nodiscard]] CellSpec cell(std::uint64_t id) const;

  /// Canonical one-line description of the whole grid — axes, order, and
  /// scenario constants. Stamped into checkpoint headers: equal signatures
  /// mean equal cell-id meaning.
  [[nodiscard]] std::string signature() const;

  /// Throws ccc::Error (kConfig) when any axis is empty or a value is out
  /// of range. parse() and the engine call this; defaults() passes.
  void validate() const;
};

}  // namespace ccc::sweep
