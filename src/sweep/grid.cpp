#include "sweep/grid.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "core/cca_registry.hpp"
#include "util/error.hpp"

namespace ccc::sweep {

namespace {

[[noreturn]] void bad_grid(const std::string& detail) {
  throw Error::config("--grid", detail);
}

CrossTraffic cross_from(const std::string& s) {
  if (s == "none") return CrossTraffic::kNone;
  if (s == "reno-bulk") return CrossTraffic::kRenoBulk;
  if (s == "bbr-bulk") return CrossTraffic::kBbrBulk;
  if (s == "abr-video") return CrossTraffic::kAbrVideo;
  if (s == "poisson-short") return CrossTraffic::kPoissonShort;
  if (s == "cbr-udp") return CrossTraffic::kCbrUdp;
  bad_grid("unknown cross-traffic '" + s +
           "' (want none|reno-bulk|bbr-bulk|abr-video|poisson-short|cbr-udp)");
}

QdiscKind qdisc_from(const std::string& s) {
  if (s == "droptail") return QdiscKind::kDropTail;
  if (s == "codel") return QdiscKind::kCoDel;
  if (s == "fq_codel") return QdiscKind::kFqCoDel;
  if (s == "pie") return QdiscKind::kPie;
  if (s == "fq") return QdiscKind::kFq;
  bad_grid("unknown qdisc '" + s + "' (want droptail|codel|fq_codel|pie|fq)");
}

LinkModel link_from(const std::string& s) {
  if (s == "wired") return LinkModel::kWired;
  if (s == "markov") return LinkModel::kMarkov;
  if (s == "wifi") return LinkModel::kWifi;
  bad_grid("unknown link model '" + s + "' (want wired|markov|wifi)");
}

/// Strictly parses a positive double ("0.5", "2"); garbage and non-positive
/// values are rejected, matching the bench::Cli count contract.
double positive_double(const std::string& axis, const std::string& s) {
  if (s.empty()) bad_grid(axis + " has an empty value");
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || errno == ERANGE || !(v > 0.0)) {
    bad_grid("invalid " + axis + " value '" + s + "' (want a number > 0)");
  }
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  std::istringstream is{s};
  while (std::getline(is, cur, sep)) out.push_back(cur);
  return out;
}

/// Formats a double axis value the way signature()/label() need: no
/// trailing zeros, so "1" and "1.0" in a --grid string mean the same cell.
std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string_view to_string(CrossTraffic c) {
  switch (c) {
    case CrossTraffic::kNone: return "none";
    case CrossTraffic::kRenoBulk: return "reno-bulk";
    case CrossTraffic::kBbrBulk: return "bbr-bulk";
    case CrossTraffic::kAbrVideo: return "abr-video";
    case CrossTraffic::kPoissonShort: return "poisson-short";
    case CrossTraffic::kCbrUdp: return "cbr-udp";
  }
  return "unknown";
}

std::string_view to_string(QdiscKind q) {
  switch (q) {
    case QdiscKind::kDropTail: return "droptail";
    case QdiscKind::kCoDel: return "codel";
    case QdiscKind::kFqCoDel: return "fq_codel";
    case QdiscKind::kPie: return "pie";
    case QdiscKind::kFq: return "fq";
  }
  return "unknown";
}

std::string_view to_string(LinkModel l) {
  switch (l) {
    case LinkModel::kWired: return "wired";
    case LinkModel::kMarkov: return "markov";
    case LinkModel::kWifi: return "wifi";
  }
  return "unknown";
}

std::string CellSpec::label() const {
  std::string out = cca;
  out += '/';
  out += to_string(cross);
  out += '/';
  out += to_string(qdisc);
  out += '/';
  out += to_string(link);
  out += "/x";
  out += fmt(buffer_bdp);
  return out;
}

GridSpec GridSpec::defaults() {
  GridSpec g;
  g.ccas = {"reno", "cubic", "bbr", "vegas", "copa"};
  g.cross = {CrossTraffic::kNone,     CrossTraffic::kRenoBulk,
             CrossTraffic::kBbrBulk,  CrossTraffic::kAbrVideo,
             CrossTraffic::kPoissonShort, CrossTraffic::kCbrUdp};
  g.qdiscs = {QdiscKind::kDropTail, QdiscKind::kCoDel, QdiscKind::kFqCoDel, QdiscKind::kPie,
              QdiscKind::kFq};
  g.links = {LinkModel::kWired, LinkModel::kMarkov, LinkModel::kWifi};
  g.buffers_bdp = {0.5, 1.0, 2.0};
  return g;
}

GridSpec GridSpec::parse(const std::string& spec) {
  GridSpec g = defaults();
  if (spec.empty()) return g;
  for (const std::string& clause : split(spec, ';')) {
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      bad_grid("malformed clause '" + clause + "' (want axis=v1,v2,...)");
    }
    const std::string axis = clause.substr(0, eq);
    const std::vector<std::string> vals = split(clause.substr(eq + 1), ',');
    if (vals.empty()) bad_grid(axis + " has no values");
    if (axis == "cca") {
      g.ccas.clear();
      for (const auto& v : vals) {
        // Fail at parse time, not mid-sweep: an unknown CCA name would
        // otherwise surface as a throw from cell 0's factory lookup.
        try {
          (void)core::make_cca_factory(v);
        } catch (const std::invalid_argument&) {
          bad_grid("unknown cca '" + v + "'");
        }
        g.ccas.push_back(v);
      }
    } else if (axis == "cross") {
      g.cross.clear();
      for (const auto& v : vals) g.cross.push_back(cross_from(v));
    } else if (axis == "qdisc") {
      g.qdiscs.clear();
      for (const auto& v : vals) g.qdiscs.push_back(qdisc_from(v));
    } else if (axis == "link") {
      g.links.clear();
      for (const auto& v : vals) g.links.push_back(link_from(v));
    } else if (axis == "buf") {
      g.buffers_bdp.clear();
      for (const auto& v : vals) g.buffers_bdp.push_back(positive_double("buf", v));
    } else if (axis == "dur") {
      if (vals.size() != 1) bad_grid("dur takes one value");
      g.duration = Time::sec(positive_double("dur", vals[0]));
    } else if (axis == "rate") {
      if (vals.size() != 1) bad_grid("rate takes one value");
      g.link_rate = Rate::mbps(positive_double("rate", vals[0]));
    } else if (axis == "owd") {
      if (vals.size() != 1) bad_grid("owd takes one value");
      g.one_way_delay = Time::ms(positive_double("owd", vals[0]));
    } else {
      bad_grid("unknown axis '" + axis + "' (want cca|cross|qdisc|link|buf|dur|rate|owd)");
    }
  }
  g.validate();
  return g;
}

void GridSpec::validate() const {
  if (ccas.empty()) bad_grid("cca axis is empty");
  if (cross.empty()) bad_grid("cross axis is empty");
  if (qdiscs.empty()) bad_grid("qdisc axis is empty");
  if (links.empty()) bad_grid("link axis is empty");
  if (buffers_bdp.empty()) bad_grid("buf axis is empty");
  for (const double b : buffers_bdp) {
    if (!(b > 0.0)) bad_grid("buffer depth must be > 0");
  }
  if (!(duration > Time::zero())) bad_grid("duration must be > 0");
  if (!(link_rate.to_bps() > 0.0)) bad_grid("link rate must be > 0");
}

std::uint64_t GridSpec::size() const {
  return static_cast<std::uint64_t>(ccas.size()) * cross.size() * qdiscs.size() * links.size() *
         buffers_bdp.size();
}

CellSpec GridSpec::cell(std::uint64_t id) const {
  CellSpec c;
  c.cell_id = id;
  // Row-major decode, fastest axis last (the inverse of
  //   id = (((cca*C + cross)*Q + qdisc)*L + link)*B + buf).
  c.buffer_bdp = buffers_bdp[id % buffers_bdp.size()];
  id /= buffers_bdp.size();
  c.link = links[id % links.size()];
  id /= links.size();
  c.qdisc = qdiscs[id % qdiscs.size()];
  id /= qdiscs.size();
  c.cross = cross[id % cross.size()];
  id /= cross.size();
  c.cca = ccas[id];
  return c;
}

std::string GridSpec::signature() const {
  std::string s = "ccsweep-grid-v1|cca=";
  for (std::size_t i = 0; i < ccas.size(); ++i) s += (i ? "," : "") + ccas[i];
  s += "|cross=";
  for (std::size_t i = 0; i < cross.size(); ++i) {
    s += i ? "," : "";
    s += to_string(cross[i]);
  }
  s += "|qdisc=";
  for (std::size_t i = 0; i < qdiscs.size(); ++i) {
    s += i ? "," : "";
    s += to_string(qdiscs[i]);
  }
  s += "|link=";
  for (std::size_t i = 0; i < links.size(); ++i) {
    s += i ? "," : "";
    s += to_string(links[i]);
  }
  s += "|buf=";
  for (std::size_t i = 0; i < buffers_bdp.size(); ++i) {
    s += i ? "," : "";
    s += fmt(buffers_bdp[i]);
  }
  s += "|rate=" + fmt(link_rate.to_bps() / 1e6) + "Mbps";
  s += "|owd=" + fmt(one_way_delay.to_ms()) + "ms";
  s += "|dur=" + fmt(duration.to_sec()) + "s";
  return s;
}

}  // namespace ccc::sweep
