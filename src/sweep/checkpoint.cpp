#include "sweep/checkpoint.hpp"

#include <cstring>

#include "store/format.hpp"
#include "util/error.hpp"

namespace ccc::sweep {

namespace {

constexpr char kMagic[8] = {'C', 'C', 'S', 'W', 'P', 'J', '1', '\n'};
constexpr std::size_t kMagicLen = sizeof kMagic;

// The CellResult wire image: every field, in declaration order, fixed
// width. Bumping the record shape means bumping the magic — old journals
// must not half-parse.
constexpr std::size_t kPayloadLen = 8 + 11 * 8 + 2 * 8;

void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  buf.insert(buf.end(), {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
                         static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)});
}

void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& buf, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(buf, bits);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

double get_f64(const std::uint8_t* p) {
  const std::uint64_t bits = get_u64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::vector<std::uint8_t> encode(const CellResult& r) {
  std::vector<std::uint8_t> buf;
  buf.reserve(kPayloadLen);
  put_u64(buf, r.cell_id);
  put_f64(buf, r.victim_goodput_mbps);
  put_f64(buf, r.cross_goodput_mbps);
  put_f64(buf, r.total_goodput_mbps);
  put_f64(buf, r.solo_goodput_mbps);
  put_f64(buf, r.share);
  put_f64(buf, r.jain);
  put_f64(buf, r.harm_frac);
  put_f64(buf, r.utilization);
  put_f64(buf, r.mean_queue_ms);
  put_f64(buf, r.p95_queue_ms);
  put_f64(buf, r.min_rtt_ms);
  put_u64(buf, r.drops);
  put_u64(buf, r.ecn_marks);
  return buf;
}

CellResult decode(const std::uint8_t* p) {
  CellResult r;
  r.cell_id = get_u64(p);
  p += 8;
  double* fields[] = {&r.victim_goodput_mbps, &r.cross_goodput_mbps, &r.total_goodput_mbps,
                      &r.solo_goodput_mbps,   &r.share,              &r.jain,
                      &r.harm_frac,           &r.utilization,        &r.mean_queue_ms,
                      &r.p95_queue_ms,        &r.min_rtt_ms};
  for (double* f : fields) {
    *f = get_f64(p);
    p += 8;
  }
  r.drops = get_u64(p);
  r.ecn_marks = get_u64(p + 8);
  return r;
}

void write_header(faultfs::File& file, const std::string& signature) {
  std::vector<std::uint8_t> buf;
  buf.insert(buf.end(), kMagic, kMagic + kMagicLen);
  put_u32(buf, static_cast<std::uint32_t>(signature.size()));
  buf.insert(buf.end(), signature.begin(), signature.end());
  put_u32(buf, store::crc32(signature.data(), signature.size()));
  file.write(buf.data(), buf.size());
}

}  // namespace

CheckpointJournal::Recovered CheckpointJournal::load(const std::string& path,
                                                     const std::string& signature) {
  faultfs::File file = faultfs::File::open_read(path);
  const std::uint64_t file_size = file.size();

  // Header: magic + signature, both fully validated — a bad header is an
  // error, never a silently-empty journal.
  std::uint8_t fixed[kMagicLen + 4];
  if (file_size < sizeof fixed) {
    throw Error::corruption(path, "checkpoint header truncated");
  }
  file.read_exact_at(0, fixed, sizeof fixed);
  if (std::memcmp(fixed, kMagic, kMagicLen) != 0) {
    throw Error::format(path, "not a sweep checkpoint (bad magic)");
  }
  const std::uint32_t sig_len = get_u32(fixed + kMagicLen);
  std::uint64_t off = sizeof fixed;
  if (sig_len > file_size || file_size - off < sig_len + 4) {
    throw Error::corruption(path, "checkpoint header truncated", off);
  }
  std::string sig(sig_len, '\0');
  file.read_exact_at(off, sig.data(), sig_len);
  off += sig_len;
  std::uint8_t crc_buf[4];
  file.read_exact_at(off, crc_buf, 4);
  off += 4;
  if (get_u32(crc_buf) != store::crc32(sig.data(), sig.size())) {
    throw Error::corruption(path, "checkpoint signature CRC mismatch", off - 4);
  }
  if (sig != signature) {
    throw Error::config(path, "checkpoint was written for a different grid (journal: '" + sig +
                                  "', this run: '" + signature + "'); delete it or drop --resume");
  }

  // Records until the bytes run out. Anything that does not parse cleanly —
  // short length word, short payload, CRC mismatch — is the torn tail of a
  // killed run: stop, report the valid prefix, re-run those cells.
  Recovered out;
  out.valid_bytes = off;
  while (file_size - off >= 4) {
    file.read_exact_at(off, crc_buf, 4);
    const std::uint32_t len = get_u32(crc_buf);
    if (len != kPayloadLen || file_size - off < 4ull + len + 4) break;
    std::vector<std::uint8_t> payload(len);
    file.read_exact_at(off + 4, payload.data(), len);
    std::uint8_t rec_crc[4];
    file.read_exact_at(off + 4 + len, rec_crc, 4);
    if (get_u32(rec_crc) != store::crc32(payload.data(), payload.size())) break;
    out.cells.push_back(decode(payload.data()));
    off += 4ull + len + 4;
    out.valid_bytes = off;
  }
  file.close_checked();
  return out;
}

CheckpointJournal CheckpointJournal::create(const std::string& path,
                                            const std::string& signature) {
  CheckpointJournal j;
  j.file_ = faultfs::File::open_trunc(path);
  write_header(j.file_, signature);
  return j;
}

CheckpointJournal CheckpointJournal::resume(const std::string& path,
                                            const std::string& signature,
                                            const Recovered& recovered) {
  {
    faultfs::File probe = faultfs::File::open_append(path);
    if (probe.size() == recovered.valid_bytes) {
      // Clean tail: append in place after the surviving records.
      CheckpointJournal j;
      j.file_ = std::move(probe);
      return j;
    }
  }
  // Torn tail: rewrite header + survivors so appends land inside the
  // loadable prefix. A crash mid-rewrite leaves a shorter-but-valid journal
  // (truncate-then-append), costing only re-runs, never correctness.
  CheckpointJournal j = create(path, signature);
  for (const CellResult& r : recovered.cells) j.append(r);
  return j;
}

void CheckpointJournal::append(const CellResult& r) {
  const std::vector<std::uint8_t> payload = encode(r);
  std::vector<std::uint8_t> buf;
  buf.reserve(4 + payload.size() + 4);
  put_u32(buf, static_cast<std::uint32_t>(payload.size()));
  buf.insert(buf.end(), payload.begin(), payload.end());
  put_u32(buf, store::crc32(payload.data(), payload.size()));
  // One write per record: a kill can tear at most the tail record, which
  // load() drops.
  file_.write(buf.data(), buf.size());
}

void CheckpointJournal::close() { file_.close_checked(); }

}  // namespace ccc::sweep
