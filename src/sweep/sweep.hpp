// SweepEngine: the resumable, checkpointed scenario-grid runner.
//
// run() fans the grid's pending cells out over an ExperimentRunner (per-
// cell seeds from derive_seed(base, cell_id), so results are bit-identical
// at any job count), journals each completed cell into the checkpoint the
// moment it finishes, and — once the grid is complete — rebuilds the ccfs
// output store from scratch in cell-id order. Rebuilding (rather than
// appending as cells finish) is what makes the final store byte-identical
// across --jobs values and across kill-and-resume: the store's bytes depend
// only on the per-cell results and the grid order, never on which run or
// thread produced them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/experiment_runner.hpp"
#include "store/flow_store.hpp"
#include "sweep/cell.hpp"
#include "sweep/grid.hpp"

namespace ccc::sweep {

struct SweepOptions {
  unsigned jobs{0};  ///< 0 = CCC_JOBS / hardware concurrency
  std::uint64_t base_seed{0x5eed'9f1d};  // "seed grid"
  /// Journal path; "" disables checkpointing (every run starts cold).
  std::string checkpoint_path;
  /// Load the journal and skip its completed cells. Without this an
  /// existing journal is truncated and the sweep starts over.
  bool resume{false};
  /// ccfs output shard base path ("sweep.ccfs" -> sweep.00000.ccfs, ...);
  /// "" disables store output.
  std::string out_store_base;
  std::uint64_t flows_per_shard{512};
  /// Test hook: run at most this many *pending* cells, journal them, then
  /// return without writing the store — the in-process stand-in for a
  /// killed run. 0 = run everything.
  std::uint64_t stop_after_cells{0};
  runner::ProgressFn on_progress;
};

struct SweepSummary {
  std::uint64_t total_cells{0};
  std::uint64_t resumed_cells{0};  ///< skipped: already in the journal
  std::uint64_t ran_cells{0};      ///< simulated by this run
  bool complete{false};            ///< false only when stop_after_cells cut it short
  /// Every cell's result, in cell-id order (empty unless complete).
  std::vector<CellResult> results;
  /// Sealed output shards, in order (empty when out_store_base is "").
  std::vector<std::string> shard_paths;
};

/// Maps a completed cell onto the ccfs FlowView schema (DESIGN.md "Sweep
/// engine & scenario axes" documents the field mapping). Exposed for tests.
[[nodiscard]] store::FlowView cell_flow_view(const GridSpec& grid, const CellResult& r,
                                             std::vector<double>& series_storage);

class SweepEngine {
 public:
  /// Validates the grid eagerly (throws ccc::Error kConfig).
  SweepEngine(GridSpec grid, SweepOptions opts);

  [[nodiscard]] SweepSummary run();

  [[nodiscard]] const GridSpec& grid() const { return grid_; }

 private:
  GridSpec grid_;
  SweepOptions opts_;
};

}  // namespace ccc::sweep
