#include "sweep/sweep.hpp"

#include <algorithm>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "sweep/checkpoint.hpp"
#include "util/error.hpp"

namespace ccc::sweep {

namespace {

/// Does `path` exist as a readable file? (resume of a first run must not
/// fail on the journal not being there yet).
bool file_exists(const std::string& path) {
  try {
    (void)faultfs::File::open_read(path);
    return true;
  } catch (const Error&) {
    return false;
  }
}

mlab::AccessType access_of(LinkModel l) {
  switch (l) {
    case LinkModel::kWired: return mlab::AccessType::kCable;
    case LinkModel::kMarkov: return mlab::AccessType::kCellular;
    case LinkModel::kWifi: return mlab::AccessType::kSatellite;
  }
  return mlab::AccessType::kCable;
}

}  // namespace

store::FlowView cell_flow_view(const GridSpec& grid, const CellResult& r,
                               std::vector<double>& series_storage) {
  const CellSpec spec = grid.cell(r.cell_id);
  // Fixed-layout metric vector in the series slot; the scalar columns carry
  // the identity. Layout documented in DESIGN.md — consumers index it, so
  // append-only evolution.
  series_storage = {r.share,
                    r.jain,
                    r.harm_frac,
                    r.solo_goodput_mbps,
                    r.victim_goodput_mbps,
                    r.cross_goodput_mbps,
                    r.total_goodput_mbps,
                    r.utilization,
                    r.mean_queue_ms,
                    r.p95_queue_ms,
                    static_cast<double>(r.drops),
                    static_cast<double>(r.ecn_marks)};
  store::FlowView v;
  v.id = r.cell_id;
  v.access = access_of(spec.link);
  v.truth = spec.cross == CrossTraffic::kNone ? mlab::FlowArchetype::kBulkClean
                                              : mlab::FlowArchetype::kBulkContended;
  v.duration_sec = grid.duration.to_sec();
  v.mean_throughput_mbps = r.victim_goodput_mbps;
  v.min_rtt_ms = r.min_rtt_ms;
  v.snapshot_interval_sec = 1.0;
  v.throughput_mbps = series_storage;
  return v;
}

SweepEngine::SweepEngine(GridSpec grid, SweepOptions opts)
    : grid_{std::move(grid)}, opts_{std::move(opts)} {
  grid_.validate();
}

SweepSummary SweepEngine::run() {
  const std::uint64_t total = grid_.size();
  const std::string signature = grid_.signature();

  // Phase 1: recover completed cells from the journal (resume only).
  std::unordered_map<std::uint64_t, CellResult> done;
  std::optional<CheckpointJournal> journal;
  if (!opts_.checkpoint_path.empty()) {
    if (opts_.resume && file_exists(opts_.checkpoint_path)) {
      const auto recovered = CheckpointJournal::load(opts_.checkpoint_path, signature);
      for (const CellResult& r : recovered.cells) {
        // A journal can outlive a grid shrink only via signature mismatch
        // (load throws), so ids are always in range; duplicates (a cell
        // re-run after a torn tail) keep the last record.
        done[r.cell_id] = r;
      }
      journal = CheckpointJournal::resume(opts_.checkpoint_path, signature, recovered);
    } else {
      journal = CheckpointJournal::create(opts_.checkpoint_path, signature);
    }
  }

  SweepSummary summary;
  summary.total_cells = total;
  summary.resumed_cells = done.size();

  // Phase 2: enumerate pending ids and fan out. Each task appends its
  // record to the journal the moment it finishes (mutex-serialized; the
  // journal's record order is completion order and deliberately does not
  // matter).
  std::vector<std::uint64_t> pending;
  pending.reserve(total - done.size());
  for (std::uint64_t id = 0; id < total; ++id) {
    if (done.find(id) == done.end()) pending.push_back(id);
  }
  const bool truncated =
      opts_.stop_after_cells != 0 && opts_.stop_after_cells < pending.size();
  if (truncated) pending.resize(opts_.stop_after_cells);

  std::mutex journal_mu;
  runner::ExperimentRunner pool{{.jobs = opts_.jobs, .on_progress = opts_.on_progress}};
  const auto results = pool.map<CellResult>(pending.size(), [&](std::size_t i) {
    const std::uint64_t id = pending[i];
    const CellResult r =
        run_cell(grid_, grid_.cell(id), runner::derive_seed(opts_.base_seed, id));
    if (journal) {
      const std::lock_guard lk{journal_mu};
      journal->append(r);
    }
    return r;
  });
  for (const CellResult& r : results) done[r.cell_id] = r;
  summary.ran_cells = results.size();
  if (journal) journal->close();

  summary.complete = done.size() == total;
  if (!summary.complete) return summary;  // the simulated-crash early exit

  // Phase 3: assemble results in cell-id order and (re)build the output
  // store from scratch — never append to a previous run's shards. Identical
  // cell results in identical order give identical bytes, whatever the job
  // count was and however many resumes it took.
  summary.results.reserve(total);
  for (std::uint64_t id = 0; id < total; ++id) summary.results.push_back(done.at(id));

  if (!opts_.out_store_base.empty()) {
    store::ShardedFlowStoreWriter writer{opts_.out_store_base, opts_.flows_per_shard};
    std::vector<double> series;
    for (const CellResult& r : summary.results) {
      writer.append(cell_flow_view(grid_, r, series));
    }
    summary.shard_paths = writer.finish();
  }
  return summary;
}

}  // namespace ccc::sweep
