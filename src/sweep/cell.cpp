#include "sweep/cell.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "app/abr_video.hpp"
#include "app/bulk.hpp"
#include "core/cca_registry.hpp"
#include "core/dumbbell.hpp"
#include "queue/codel.hpp"
#include "queue/drop_tail.hpp"
#include "queue/drr_fair_queue.hpp"
#include "queue/fq_codel.hpp"
#include "queue/pie.hpp"
#include "runner/experiment_runner.hpp"
#include "sim/variable_rate_link.hpp"
#include "telemetry/sampler.hpp"
#include "util/stats.hpp"

namespace ccc::sweep {

namespace {

// Sub-seed lanes carved out of the cell seed: each stochastic component
// gets a decorrelated stream so e.g. adding aggregation to the link cannot
// shift PIE's drop dice.
constexpr std::uint64_t kQdiscLane = 1;
constexpr std::uint64_t kLinkLane = 2;

std::unique_ptr<sim::Qdisc> make_qdisc(const CellSpec& spec, ByteCount capacity,
                                       std::uint64_t cell_seed) {
  const std::uint64_t seed = runner::derive_seed(cell_seed, kQdiscLane);
  switch (spec.qdisc) {
    case QdiscKind::kDropTail:
      return std::make_unique<queue::DropTailQueue>(capacity);
    case QdiscKind::kCoDel:
      return std::make_unique<queue::CoDelQueue>(capacity);
    case QdiscKind::kFqCoDel: {
      queue::FqCoDelConfig qc;
      qc.capacity_bytes = capacity;
      qc.hash_seed = seed;
      return std::make_unique<queue::FqCoDelQueue>(qc);
    }
    case QdiscKind::kPie: {
      queue::PieConfig qc;
      qc.capacity_bytes = capacity;
      qc.seed = seed;
      return std::make_unique<queue::PieQueue>(qc);
    }
    case QdiscKind::kFq:
      return std::make_unique<queue::DrrFairQueue>(capacity, queue::FairnessKey::kPerFlow);
  }
  return std::make_unique<queue::DropTailQueue>(capacity);
}

/// Adds the cell's cross-traffic mix (all user 2), active for the whole
/// run. The five non-empty mixes mirror the elasticity-PoC phase traffic.
void add_cross_traffic(core::DumbbellScenario& net, const GridSpec& grid, CrossTraffic cross) {
  switch (cross) {
    case CrossTraffic::kNone:
      break;
    case CrossTraffic::kRenoBulk:
      net.add_flow(core::make_cca_factory("reno")(), std::make_unique<app::BulkApp>(),
                   /*user=*/2);
      break;
    case CrossTraffic::kBbrBulk:
      net.add_flow(core::make_cca_factory("bbr")(), std::make_unique<app::BulkApp>(),
                   /*user=*/2);
      break;
    case CrossTraffic::kAbrVideo: {
      // HD-topped ladder over Cubic with server-paced chunks, as in the
      // elasticity study: bounded demand well below the link.
      app::AbrConfig video;
      video.ladder = {Rate::mbps(0.35), Rate::mbps(0.75), Rate::mbps(1.75), Rate::mbps(3.0),
                      Rate::mbps(5.8)};
      video.supply_rate_multiple = 2.0;
      net.add_flow(core::make_cca_factory("cubic")(),
                   std::make_unique<app::AbrVideoApp>(net.scheduler(), video), /*user=*/2);
      break;
    }
    case CrossTraffic::kPoissonShort: {
      flow::ShortFlowConfig sf;
      sf.user = 2;
      sf.stop_at = grid.duration;
      net.add_short_flows(sf, core::make_cca_factory("cubic"));
      break;
    }
    case CrossTraffic::kCbrUdp:
      // A quarter of nominal capacity of unresponsive UDP.
      net.add_cbr(grid.link_rate * 0.25, Time::zero(), grid.duration, /*user=*/2);
      break;
  }
}

struct RunOutcome {
  std::vector<double> goodputs_mbps;  // long-lived TCP flows, victim first
  double wire_mbps{0.0};              // bottleneck bytes_sent over the window
  double mean_queue_ms{0.0};
  double p95_queue_ms{0.0};
  double min_rtt_ms{0.0};
  std::uint64_t drops{0};
  std::uint64_t ecn_marks{0};
};

RunOutcome run_one(const GridSpec& grid, const CellSpec& spec, std::uint64_t cell_seed,
                   bool with_cross) {
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = grid.link_rate;
  cfg.one_way_delay = grid.one_way_delay;
  cfg.reverse_delay = grid.one_way_delay;
  cfg.buffer_bdp_multiple = spec.buffer_bdp;
  cfg.seed = cell_seed;

  const ByteCount capacity = core::dumbbell_buffer_bytes(cfg);
  core::DumbbellScenario net{cfg, make_qdisc(spec, capacity, cell_seed)};

  // Victim first (index 0), then the mix — index order is part of the
  // determinism contract (goodputs_mbps[0] is always the CCA under test).
  net.add_flow(core::make_cca_factory(spec.cca)(), std::make_unique<app::BulkApp>(),
               /*user=*/1);
  if (with_cross) add_cross_traffic(net, grid, spec.cross);

  // The wireless models drive the link for the whole run; the object must
  // outlive the simulation, hence the optional on the stack.
  std::unique_ptr<sim::VariableRateLink> vlink;
  if (spec.link != LinkModel::kWired) {
    sim::VariableRateLinkConfig vc;
    vc.markov.good = grid.link_rate;
    vc.markov.bad = grid.link_rate * 0.25;
    vc.aggregation.enabled = spec.link == LinkModel::kWifi;
    vc.seed = runner::derive_seed(cell_seed, kLinkLane);
    vlink = std::make_unique<sim::VariableRateLink>(net.scheduler(), net.bottleneck(), vc);
    vlink->start(grid.duration);
  }

  // Measure after a 20% warmup so slow-start transients and the first
  // Markov dwell don't dominate short cells.
  const Time warmup = grid.duration * 0.2;
  std::vector<double> queue_ms;
  telemetry::PeriodicSampler sampler{
      net.scheduler(), Time::ms(100), warmup, grid.duration, [&](Time) {
        const auto& s = net.flow(0).sender();
        if (s.min_rtt() != Time::never() && s.srtt() > Time::zero()) {
          queue_ms.push_back((s.srtt() - s.min_rtt()).to_ms());
        }
      }};

  net.run_until(warmup);
  const auto snap = net.snapshot_delivered();
  const ByteCount wire_snap = net.bottleneck().stats().bytes_sent;
  net.run_until(grid.duration);

  RunOutcome out;
  out.goodputs_mbps = net.goodputs_mbps_since(snap, grid.duration - warmup);
  // Wire throughput through the bottleneck: the only counter that sees
  // every cross archetype (CBR and short flows are not long-lived TcpFlows,
  // so per-flow goodput accounting misses them).
  out.wire_mbps = static_cast<double>(net.bottleneck().stats().bytes_sent - wire_snap) * 8.0 /
                  (grid.duration - warmup).to_sec() / 1e6;
  if (!queue_ms.empty()) {
    RunningStats st;
    for (const double q : queue_ms) st.add(q);
    out.mean_queue_ms = st.mean();
    out.p95_queue_ms = quantile(queue_ms, 0.95);
  }
  const Time mrtt = net.flow(0).sender().min_rtt();
  out.min_rtt_ms = mrtt == Time::never() ? 0.0 : mrtt.to_ms();
  out.drops = net.bottleneck().qdisc().stats().dropped_packets;
  out.ecn_marks = net.bottleneck().qdisc().stats().ecn_marked_packets;
  return out;
}

}  // namespace

CellResult run_cell(const GridSpec& grid, const CellSpec& spec, std::uint64_t cell_seed) {
  const RunOutcome contended = run_one(grid, spec, cell_seed, /*with_cross=*/true);

  CellResult r;
  r.cell_id = spec.cell_id;
  r.victim_goodput_mbps = contended.goodputs_mbps.empty() ? 0.0 : contended.goodputs_mbps[0];
  if (spec.cross == CrossTraffic::kNone) {
    // Solo: exact by construction (wire throughput would charge the
    // victim's own headers as phantom cross traffic).
    r.total_goodput_mbps = r.victim_goodput_mbps;
    r.share = 1.0;
  } else {
    // Cross goodput at the wire: total bottleneck throughput minus the
    // victim's goodput. This is the one accounting that sees CBR and
    // Poisson short flows too, at the cost of counting every flow's
    // headers and retransmits (~4%) as cross bytes.
    r.total_goodput_mbps = contended.wire_mbps;
    r.cross_goodput_mbps = std::max(0.0, contended.wire_mbps - r.victim_goodput_mbps);
    r.share = r.total_goodput_mbps > 0.0 ? r.victim_goodput_mbps / r.total_goodput_mbps : 0.0;
  }
  r.jain = jain_fairness_index(contended.goodputs_mbps);
  // A fully starved cell (every long-lived flow at zero) makes Jain 0/0;
  // all-equal-at-zero is the degenerate fair split, so pin it to 1 rather
  // than let one NaN poison every aggregate it touches.
  if (!std::isfinite(r.jain)) r.jain = 1.0;
  r.utilization = contended.wire_mbps / grid.link_rate.to_mbps();
  r.mean_queue_ms = contended.mean_queue_ms;
  r.p95_queue_ms = contended.p95_queue_ms;
  r.min_rtt_ms = contended.min_rtt_ms;
  r.drops = contended.drops;
  r.ecn_marks = contended.ecn_marks;

  if (spec.cross == CrossTraffic::kNone) {
    // The contended run *is* the solo run; harm is zero by construction and
    // a second simulation would reproduce the first bit for bit.
    r.solo_goodput_mbps = r.victim_goodput_mbps;
    r.harm_frac = 0.0;
  } else {
    const RunOutcome solo = run_one(grid, spec, cell_seed, /*with_cross=*/false);
    r.solo_goodput_mbps = solo.goodputs_mbps.empty() ? 0.0 : solo.goodputs_mbps[0];
    r.harm_frac = r.solo_goodput_mbps > 0.0
                      ? harm(r.solo_goodput_mbps, r.victim_goodput_mbps)
                      : 0.0;
  }
  return r;
}

}  // namespace ccc::sweep
