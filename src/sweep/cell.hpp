// One sweep cell = one (or two) dumbbell simulations.
//
// The contended run puts the CCA under test (the "victim", user 1, one
// backlogged bulk flow) behind the cell's qdisc/link/buffer with the cell's
// cross-traffic mix (user 2). When the mix is non-empty a second, solo run
// of the identical scenario minus the cross traffic provides the baseline
// for Ware et al.'s harm metric — computed inline so every cell stays an
// independent, resumable unit of work (no cross-cell data dependencies to
// order a restart around).
//
// Determinism contract: run_cell(grid, spec, seed) is a pure function of
// its arguments. All randomness (short-flow arrivals, Markov dwells, PIE
// drop decisions, FQ-CoDel hash salt) derives from `cell_seed`, so equal
// seeds give bit-identical CellResults at any job count.
#pragma once

#include <cstdint>

#include "sweep/grid.hpp"

namespace ccc::sweep {

/// The per-cell metric row. POD on purpose: the checkpoint journal
/// serializes it field by field and the store maps it onto a FlowView.
struct CellResult {
  std::uint64_t cell_id{0};
  double victim_goodput_mbps{0.0};  ///< CCA under test, measure window
  double cross_goodput_mbps{0.0};   ///< long-lived cross flows only
  double total_goodput_mbps{0.0};   ///< victim + cross (long-lived flows)
  double solo_goodput_mbps{0.0};    ///< victim alone on the same scenario
  double share{0.0};                ///< victim / total
  double jain{1.0};                 ///< Jain index over long-lived flows
  double harm_frac{0.0};            ///< harm(solo, contended)
  double utilization{0.0};          ///< total / nominal link rate
  double mean_queue_ms{0.0};        ///< victim srtt - min_rtt, mean
  double p95_queue_ms{0.0};         ///< victim srtt - min_rtt, p95
  double min_rtt_ms{0.0};           ///< victim's measured min RTT
  std::uint64_t drops{0};           ///< bottleneck qdisc drops, whole run
  std::uint64_t ecn_marks{0};       ///< bottleneck qdisc CE marks, whole run
};

/// Runs cell `spec` of `grid` with all RNG streams derived from
/// `cell_seed`. Deterministic; thread-safe (no shared state).
[[nodiscard]] CellResult run_cell(const GridSpec& grid, const CellSpec& spec,
                                  std::uint64_t cell_seed);

}  // namespace ccc::sweep
