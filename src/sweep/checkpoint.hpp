// Crash-safe checkpoint journal for sweep runs.
//
// Layout (all integers little-endian, as the host writes them):
//
//   header:  magic "CCSWPJ1\n" | u32 sig_len | sig bytes | u32 crc(sig)
//   records: u32 payload_len   | payload     | u32 crc(payload)   (repeated)
//
// One record per completed cell, appended (under the engine's mutex) the
// moment the cell finishes, in completion order — which is nondeterministic
// under a parallel runner and deliberately irrelevant: load() returns the
// surviving cells, and the engine rebuilds its outputs in cell-id order.
//
// Crash model: the process dies (SIGKILL) mid-append. The tail record is
// then short or CRC-broken; load() treats any such tail as "not completed"
// and stops there — the resumed sweep simply re-runs that cell. resume()
// must not append *after* a torn tail (records beyond it would be invisible
// to the next load), so it reopens at the end of the valid prefix when the
// file is clean and rewrites header + surviving records when it is not.
// A header that is short or corrupt, or whose grid signature differs from
// the resuming run's grid, is an error: replaying a journal against a
// different grid would silently mislabel every cell.
//
// No fsync: the crash being defended against is a process kill, and
// pwritten bytes survive process death in the page cache. (Power-loss
// durability would need fdatasync per record; same trade-off note as
// faultfs::File::close_checked.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/cell.hpp"
#include "util/faultfs.hpp"

namespace ccc::sweep {

class CheckpointJournal {
 public:
  /// What load() salvaged: the completed cells, and how many leading bytes
  /// of the file they occupy (header included). valid_bytes < file size
  /// means a torn tail was dropped.
  struct Recovered {
    std::vector<CellResult> cells;
    std::uint64_t valid_bytes{0};
  };

  /// Reads the completed-cell records of `path`. Throws ccc::Error when the
  /// file is unreadable, not a journal, or stamped with a different grid
  /// signature; a torn tail record is silently dropped (see above).
  [[nodiscard]] static Recovered load(const std::string& path, const std::string& signature);

  /// Creates (truncating) a fresh journal stamped with `signature`.
  [[nodiscard]] static CheckpointJournal create(const std::string& path,
                                                const std::string& signature);

  /// Reopens `path` for appending after `recovered` (load()'s result for
  /// the same path). Clean tail: appends in place. Torn tail: rewrites the
  /// header and surviving records first, so every future append stays
  /// inside the loadable prefix.
  [[nodiscard]] static CheckpointJournal resume(const std::string& path,
                                                const std::string& signature,
                                                const Recovered& recovered);

  /// Appends one completed cell. Not thread-safe; callers serialize.
  void append(const CellResult& r);

  void close();

  [[nodiscard]] const std::string& path() const { return file_.path(); }

 private:
  CheckpointJournal() = default;
  faultfs::File file_;
};

}  // namespace ccc::sweep
