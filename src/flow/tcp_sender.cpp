#include "flow/tcp_sender.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "telemetry/metrics.hpp"

namespace ccc::flow {

TcpSender::TcpSender(sim::Scheduler& sched, SenderConfig cfg,
                     std::unique_ptr<cca::CongestionControl> cc, app::App& source,
                     sim::PacketSink& out)
    : sched_{sched},
      cfg_{cfg},
      cc_{std::move(cc)},
      app_{source},
      out_{out},
      rto_{cfg.initial_rto} {
  assert(cc_ != nullptr);
  app_.set_data_ready_hook([this] {
    if (started_ && !completed_) try_send();
  });
}

void TcpSender::bind_metrics(telemetry::MetricRegistry& reg, const std::string& prefix) {
  metric_prefix_ = prefix;
  // 0.05 ms .. ~1.6 s, the span between datacenter RTTs and a bufferbloated
  // last mile.
  rtt_hist_ =
      &reg.histogram(prefix + ".rtt_ms", telemetry::Histogram::geometric_bounds(0.05, 2.0, 16));
  // Per-ACK recording would grow with flow length; 10 ms of sim time between
  // points is ample for cwnd dynamics and keeps traces bounded.
  cwnd_trace_ = &reg.trace(prefix + ".cwnd_bytes", Time::ms(10));
  cc_->bind_metrics(reg, prefix + ".cca");
}

void TcpSender::export_metrics(telemetry::MetricRegistry& reg) const {
  const std::string& p = metric_prefix_;
  reg.counter(p + ".packets_sent").set(stats_.packets_sent);
  reg.counter(p + ".bytes_sent").set(static_cast<std::uint64_t>(stats_.bytes_sent));
  reg.counter(p + ".bytes_acked").set(static_cast<std::uint64_t>(stats_.bytes_acked));
  reg.counter(p + ".bytes_retransmitted")
      .set(static_cast<std::uint64_t>(stats_.bytes_retransmitted));
  reg.counter(p + ".retransmissions").set(stats_.retransmissions);
  reg.counter(p + ".rto_events").set(stats_.rto_events);
  reg.counter(p + ".tail_probes").set(stats_.tail_probes);
  reg.counter(p + ".recovery_episodes").set(stats_.recovery_episodes);
  reg.counter(p + ".rtt_samples").set(stats_.rtt_samples);
  reg.gauge(p + ".srtt_ms").set(srtt_.to_ms());
  reg.gauge(p + ".cwnd_bytes").set(static_cast<double>(cc_->cwnd_bytes()));
}

void TcpSender::start(Time at) {
  assert(!started_);
  sched_.schedule_member_fire_at<&TcpSender::on_start_fire>(at, this);
}

void TcpSender::on_start_fire() {
  started_ = true;
  app_.on_start(sched_.now());
  try_send();
}

ByteCount TcpSender::send_window() const { return std::min(cc_->cwnd_bytes(), rwnd_); }

void TcpSender::try_send() {
  if (completed_) return;
  if (segments_.empty()) {
    // No outstanding data: the SACK/loss ledgers must be empty too. (Defends
    // liveness — a ledger leak would otherwise inflate pipe_bytes() forever.)
    assert(sacked_bytes_ == 0 && lost_bytes_ == 0);
    sacked_bytes_ = 0;
    lost_bytes_ = 0;
    // RFC 2861 cwnd validation: an idle connection (nothing in flight and no
    // sends for an RTO) must not blast a stale window into the network.
    if (last_transmit_ != Time::never() && sched_.now() - last_transmit_ > rto_ &&
        app_.bytes_available(sched_.now()) > 0) {
      cc_->on_idle_restart(sched_.now());
    }
  }
  const ByteCount wnd = send_window();
  while (true) {
    const Time now = sched_.now();
    const ByteCount pipe = pipe_bytes();
    const ByteCount app_avail = app_.bytes_available(now);
    if (app_avail <= 0) {
      limit_ = app_.finished(now) ? SendLimit::kDone : SendLimit::kApp;
      maybe_complete();
      return;
    }
    // Silly-window-syndrome avoidance: transmit only full-MSS segments (or
    // the final short one); never slice a segment to fit a fractionally-open
    // window, which would flood the path with tiny packets.
    const ByteCount len = std::min(cfg_.mss, app_avail);
    if (pipe + len > wnd) {
      limit_ = cc_->cwnd_bytes() <= rwnd_ ? SendLimit::kCca : SendLimit::kRwnd;
      return;
    }
    // Pacing: honor the CCA's rate if it supplies one.
    const Rate pace = cc_->pacing_rate();
    if (!pace.is_zero() && now < next_send_time_) {
      if (!pacing_wake_armed_) {
        pacing_wake_armed_ = true;
        pacing_event_ =
            sched_.schedule_member_at<&TcpSender::on_pacing_fire>(next_send_time_, this);
      }
      limit_ = SendLimit::kNone;  // limited only by pacing spacing
      return;
    }

    Segment seg;
    seg.seq = snd_nxt_;
    seg.len = len;
    seg.delivered_at_send = snd_una_;
    seg.app_limited = app_avail <= len;  // queue empties with this packet
    app_.consume(len, now);
    snd_nxt_ += len;
    segments_.push_back(seg);
    transmit(segments_.back(), /*is_retx=*/false);

    if (!pace.is_zero()) {
      const Time gap = pace.transmit_time(len + sim::kHeaderBytes);
      next_send_time_ = std::max(next_send_time_, now) + gap;
    }
  }
}

void TcpSender::transmit(Segment& seg, bool is_retx) {
  const Time now = sched_.now();
  last_transmit_ = now;
  seg.sent_at = now;
  if (is_retx) {
    ++seg.transmissions;
    seg.delivered_at_send = snd_una_;
    ++stats_.retransmissions;
    stats_.bytes_retransmitted += seg.len;
  } else {
    stats_.bytes_sent += seg.len;
  }
  ++stats_.packets_sent;

  sim::Packet pkt;
  pkt.flow = cfg_.flow_id;
  pkt.user = cfg_.user;
  pkt.size_bytes = seg.len + sim::kHeaderBytes;
  pkt.seq = seg.seq;
  pkt.payload_bytes = seg.len;
  pkt.sent_at = now;
  pkt.is_retransmission = is_retx;
  pkt.ecn_capable = cc_->wants_ecn();
  out_.deliver(pkt);

  // RFC 6298 5.1: start the timer only if it is not already running — the
  // pending timeout still guards the oldest outstanding data. (Re-arming on
  // every transmission would let a continuously-sending flow starve its own
  // timeout while a lost retransmission pins snd_una forever.)
  if (rto_event_ == 0) arm_rto();
}

void TcpSender::retransmit_head() {
  if (segments_.empty()) return;
  transmit(segments_.front(), /*is_retx=*/true);
}

ByteCount TcpSender::apply_sack(const sim::Packet& ack) {
  if (ack.n_sack == 0) return 0;
  ByteCount newly = 0;
  for (auto& seg : segments_) {
    if (seg.sacked) continue;
    for (int i = 0; i < ack.n_sack; ++i) {
      if (seg.seq >= ack.sack[i].start && seg.seq + seg.len <= ack.sack[i].end) {
        seg.sacked = true;
        newly += seg.len;
        high_sacked_ = std::max(high_sacked_, seg.seq + seg.len);
        if (seg.lost) {
          // It arrived after all (or its repair did): not lost.
          seg.lost = false;
          if (!seg.retx_queued) lost_bytes_ -= seg.len;
        }
        break;
      }
    }
  }
  sacked_bytes_ += newly;

  // RFC 6675-style loss inference: an unsacked segment with at least
  // (dupthresh) segments' worth of SACKed data above it is lost.
  const std::int64_t lost_edge =
      high_sacked_ - static_cast<std::int64_t>(cfg_.dupack_threshold - 1) * cfg_.mss;
  for (auto& seg : segments_) {
    if (seg.seq + seg.len > lost_edge) break;
    if (seg.sacked || seg.lost) continue;
    seg.lost = true;
    if (!seg.retx_queued) lost_bytes_ += seg.len;
    // A loss among segments sent AFTER the current recovery began is a new
    // congestion event: the post-reduction window is itself too big. Without
    // this, one long recovery absorbs unlimited fresh loss windows with a
    // single multiplicative decrease and the window balloons.
    if (in_recovery_ && seg.seq >= recovery_start_nxt_) fresh_loss_pending_ = true;
  }
  return newly;
}

void TcpSender::maybe_retransmit_holes() {
  if (!in_recovery_) return;
  const ByteCount wnd = send_window();
  for (auto& seg : segments_) {
    const bool is_head = seg.seq == snd_una_;
    if (seg.seq + seg.len > high_sacked_ && !is_head) break;  // holes live below high_sacked
    if (seg.sacked || seg.retx_queued) continue;
    if (!seg.lost && !is_head) continue;
    // Window-gate the repairs. The head is exempt — it is the segment whose
    // absence pins snd_una, so recovery must always be able to resend it
    // even when the pipe estimate exceeds the shrunken window (everything
    // else waits; the RTO backstops a lost head repair).
    if (!is_head && pipe_bytes() + seg.len > wnd) break;
    if (seg.lost) lost_bytes_ -= seg.len;  // repair goes back into the pipe
    seg.retx_queued = true;
    transmit(seg, /*is_retx=*/true);
  }
}

void TcpSender::deliver(const sim::Packet& pkt) {
  if (!pkt.is_ack || completed_) return;
  rwnd_ = pkt.receiver_window;
  if (pkt.ack_seq > snd_una_) {
    process_new_ack(pkt);
  } else if (inflight_bytes() > 0) {
    process_dupack(pkt);
  }
  if (fresh_loss_pending_ && in_recovery_ && !completed_) {
    // Apply one further multiplicative decrease for the fresh loss window
    // and extend the episode to cover everything sent so far.
    fresh_loss_pending_ = false;
    ++stats_.recovery_episodes;
    cca::LossEvent ev;
    ev.now = sched_.now();
    ev.lost_bytes = cfg_.mss;
    ev.inflight_bytes = pipe_bytes();
    cc_->on_loss(ev);
    recovery_start_nxt_ = snd_nxt_;
  }
  app_.on_delivered(pkt.delivered_bytes, sched_.now());
  try_send();
}

void TcpSender::process_new_ack(const sim::Packet& ack) {
  const Time now = sched_.now();
  const ByteCount newly = ack.ack_seq - snd_una_;
  snd_una_ = ack.ack_seq;
  stats_.bytes_acked += newly;
  dupacks_ = 0;
  rto_backoff_ = 0;
  apply_sack(ack);

  // Pop fully-ACKed segments; remember the first for rate/app-limited info.
  bool have_sample_seg = false;
  Segment sample_seg;
  while (!segments_.empty() && segments_.front().seq + segments_.front().len <= snd_una_) {
    const Segment& head = segments_.front();
    if (head.sacked) {
      sacked_bytes_ -= head.len;
    } else if (head.lost && !head.retx_queued) {
      lost_bytes_ -= head.len;
    }
    if (!have_sample_seg) {
      sample_seg = head;
      have_sample_seg = true;
    }
    segments_.pop_front();
  }
  high_sacked_ = std::max(high_sacked_, snd_una_);

  // RTT from the echoed transmit timestamp of the packet that generated this
  // ACK (timestamp echo sidesteps Karn's retransmission ambiguity).
  Time rtt = now - ack.echo_sent_at;
  if (rtt > Time::zero()) {
    update_rtt(rtt);
    ++stats_.rtt_samples;
    min_rtt_ = std::min(min_rtt_, rtt);
    if (rtt_hist_ != nullptr) rtt_hist_->observe(rtt.to_ms());
  } else {
    rtt = Time::zero();
  }

  // Delivery-rate sample from ACK arrival spacing of the receiver's
  // distinct-bytes-arrived counter.
  record_delivery_point(now, ack.received_total);
  const Rate delivery = sample_delivery_rate();
  const bool app_limited_sample = have_sample_seg && sample_seg.app_limited;

  // Recovery bookkeeping: partial ACKs keep repairing holes (SACK-guided).
  if (in_recovery_) {
    if (snd_una_ >= recovery_point_) {
      in_recovery_ = false;
      rto_epoch_ = false;
      // Re-arm repairs for the next episode. Invariant: lost_bytes_ counts
      // exactly the segments with (lost && !retx_queued), so segments whose
      // repair is being un-queued must be counted back in.
      for (auto& seg : segments_) {
        if (seg.lost && seg.retx_queued) lost_bytes_ += seg.len;
        seg.retx_queued = false;
      }
    } else {
      maybe_retransmit_holes();
    }
  }

  cca::AckEvent ev;
  ev.now = now;
  ev.newly_acked_bytes = newly;
  ev.rtt_sample = rtt;
  ev.acked_sent_at = have_sample_seg ? sample_seg.sent_at : Time::zero();
  ev.delivery_rate = delivery;
  ev.inflight_bytes = pipe_bytes();
  ev.in_recovery = in_recovery_ && !rto_epoch_;
  ev.app_limited = app_limited_sample;
  ev.ecn_echo = ack.ece;
  cc_->on_ack(ev);
  if (cwnd_trace_ != nullptr) {
    cwnd_trace_->record(now, static_cast<double>(cc_->cwnd_bytes()));
  }

  if (inflight_bytes() > 0) {
    arm_rto();
  } else {
    sched_.cancel(rto_event_);
    rto_event_ = 0;
  }
  maybe_complete();
}

void TcpSender::record_delivery_point(Time now, ByteCount received_total) {
  if (!delivery_hist_.empty() && received_total <= delivery_hist_.back().second) return;
  delivery_hist_.emplace_back(now, received_total);
  // Keep roughly half an RTT of history (at least 10 ms, at most 64 acks).
  // Drop the front only while the *second* entry is also past the window, so
  // the measured span never collapses below the window — two compressed ACKs
  // a few microseconds apart must not masquerade as a line-rate sample.
  const Time window = std::max(srtt_ / 2, Time::ms(10));
  while (delivery_hist_.size() > 64 ||
         (delivery_hist_.size() > 2 && now - delivery_hist_[1].first > window)) {
    delivery_hist_.pop_front();
  }
}

Rate TcpSender::sample_delivery_rate() const {
  if (delivery_hist_.size() < 2) return Rate::zero();
  const auto& [t0, d0] = delivery_hist_.front();
  const auto& [t1, d1] = delivery_hist_.back();
  if (d1 <= d0) return Rate::zero();
  if (t1 - t0 < Time::ms(5)) return Rate::zero();  // span too short to trust
  return Rate::bytes_per(d1 - d0, t1 - t0);
}

void TcpSender::process_dupack(const sim::Packet& ack) {
  ++dupacks_;
  apply_sack(ack);
  record_delivery_point(sched_.now(), ack.received_total);
  if (!in_recovery_ &&
      (dupacks_ >= cfg_.dupack_threshold ||
       high_sacked_ - snd_una_ >= cfg_.dupack_threshold * cfg_.mss + cfg_.mss)) {
    enter_recovery(sched_.now());
  } else if (in_recovery_) {
    maybe_retransmit_holes();
  }
}

void TcpSender::enter_recovery(Time now) {
  in_recovery_ = true;
  recovery_point_ = snd_nxt_;
  recovery_start_nxt_ = snd_nxt_;
  fresh_loss_pending_ = false;
  ++stats_.recovery_episodes;
  cca::LossEvent ev;
  ev.now = now;
  ev.lost_bytes = segments_.empty() ? cfg_.mss : segments_.front().len;
  ev.inflight_bytes = pipe_bytes();
  cc_->on_loss(ev);
  maybe_retransmit_holes();  // the head is always eligible, SACKs or not
}

void TcpSender::update_rtt(Time sample) {
  if (srtt_ == Time::zero()) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const auto diff = std::abs((srtt_ - sample).count_ns());
    rttvar_ = Time::ns((3 * rttvar_.count_ns() + diff) / 4);
    srtt_ = Time::ns((7 * srtt_.count_ns() + sample.count_ns()) / 8);
  }
  const Time base = srtt_ + std::max(4 * rttvar_, Time::ms(1));
  rto_ = std::clamp(base, cfg_.min_rto, cfg_.max_rto);
}

void TcpSender::arm_rto() {
  sched_.cancel(rto_event_);
  Time timeout = rto_;
  for (int i = 0; i < rto_backoff_; ++i) timeout = std::min(timeout * 2, cfg_.max_rto);
  rto_event_ = sched_.schedule_member_after<&TcpSender::on_rto_fire>(timeout, this);
}

void TcpSender::on_pacing_fire() {
  pacing_wake_armed_ = false;
  try_send();
}

void TcpSender::on_rto_fire() {
  rto_event_ = 0;
  if (inflight_bytes() <= 0 || completed_) return;

  // Tail-loss probe (RACK-TLP in spirit): on the first expiry since ACK
  // progress, resend the newest unacked segment instead of declaring a full
  // timeout. If only the tail of the flight was lost, the probe's SACK
  // feedback triggers ordinary fast recovery — no CCA collapse needed.
  if (rto_backoff_ == 0 && !segments_.empty()) {
    ++stats_.tail_probes;
    rto_backoff_ = 1;  // a second expiry is a genuine RTO
    transmit(segments_.back(), /*is_retx=*/true);
    arm_rto();
    return;
  }

  ++stats_.rto_events;
  ++rto_backoff_;
  dupacks_ = 0;
  // Timeout epoch: everything unsacked is presumed lost and eligible for
  // retransmission again; repairs proceed window-gated from cwnd = 1 MSS,
  // with the CCA slow-starting as repairs are ACKed.
  in_recovery_ = true;
  rto_epoch_ = true;
  recovery_point_ = snd_nxt_;
  recovery_start_nxt_ = snd_nxt_;
  fresh_loss_pending_ = false;
  lost_bytes_ = 0;
  for (auto& seg : segments_) {
    seg.retx_queued = false;
    if (!seg.sacked) {
      seg.lost = true;
      lost_bytes_ += seg.len;
    }
  }
  cc_->on_rto(sched_.now());
  maybe_retransmit_holes();  // re-arms the (backed-off) timer via transmit()
}

void TcpSender::maybe_complete() {
  if (completed_) return;
  if (!app_.finished(sched_.now()) || inflight_bytes() > 0) return;
  completed_ = true;
  limit_ = SendLimit::kDone;
  sched_.cancel(rto_event_);
  sched_.cancel(pacing_event_);
  if (on_complete_) on_complete_(sched_.now());
}

}  // namespace ccc::flow
