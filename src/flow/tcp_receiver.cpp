#include "flow/tcp_receiver.hpp"

#include <algorithm>

namespace ccc::flow {

TcpReceiver::TcpReceiver(sim::Scheduler& sched, ReceiverConfig cfg, sim::PacketSink& ack_out)
    : sched_{sched}, cfg_{cfg}, ack_out_{ack_out} {}

TcpReceiver::TcpReceiver(sim::Scheduler& sched, sim::FlowId flow, sim::UserId user,
                         sim::PacketSink& ack_out, ByteCount advertised_window)
    : TcpReceiver{sched,
                  ReceiverConfig{flow, user, advertised_window, Time::zero()},
                  ack_out} {}

void TcpReceiver::deliver(const sim::Packet& pkt) {
  if (pkt.is_ack) return;  // not our direction
  ++packets_received_;

  const std::int64_t start = pkt.seq;
  const std::int64_t end = pkt.seq + pkt.payload_bytes;
  const bool in_order = start <= rcv_nxt_ && end > rcv_nxt_;

  if (end <= rcv_nxt_) {
    ++duplicate_packets_;  // spurious retransmission
  } else if (in_order) {
    rcv_nxt_ = end;
    // Pull any buffered ranges that are now contiguous.
    for (auto it = ooo_.begin(); it != ooo_.end() && it->first <= rcv_nxt_;) {
      rcv_nxt_ = std::max(rcv_nxt_, it->second);
      it = ooo_.erase(it);
    }
  } else {
    // Out of order: buffer [start, end), merging overlaps.
    auto [it, inserted] = ooo_.try_emplace(start, end);
    if (!inserted) it->second = std::max(it->second, end);
    auto next = std::next(it);
    while (next != ooo_.end() && next->first <= it->second) {
      it->second = std::max(it->second, next->second);
      next = ooo_.erase(next);
    }
  }

  // Delayed-ACK policy applies only to clean in-order arrivals; anything
  // out of order, duplicate, or ECN-marked is ACKed immediately so loss
  // recovery and ECN feedback stay prompt (RFC 5681 §4.2).
  if (cfg_.delayed_ack > Time::zero() && in_order && ooo_.empty() && !pkt.ecn_marked) {
    arm_delayed_ack(pkt);
  } else {
    emit_ack(pkt);
  }
}

void TcpReceiver::arm_delayed_ack(const sim::Packet& data) {
  pending_echo_ = data;
  if (++unacked_data_packets_ >= 2) {
    emit_ack(data);
    return;
  }
  if (!delayed_armed_) {
    delayed_armed_ = true;
    delayed_event_ =
        sched_.schedule_member_after<&TcpReceiver::on_delayed_ack_fire>(cfg_.delayed_ack, this);
  }
}

void TcpReceiver::on_delayed_ack_fire() {
  delayed_armed_ = false;
  if (unacked_data_packets_ > 0) emit_ack(pending_echo_);
}

void TcpReceiver::emit_ack(const sim::Packet& data) {
  unacked_data_packets_ = 0;
  if (delayed_armed_) {
    sched_.cancel(delayed_event_);
    delayed_armed_ = false;
  }

  // Coverage: every distinct byte that has arrived so far.
  std::int64_t coverage = rcv_nxt_;
  for (const auto& [start, end] : ooo_) coverage += end - start;

  sim::Packet ack;
  ack.flow = cfg_.flow_id;
  ack.user = cfg_.user;
  ack.is_ack = true;
  ack.size_bytes = sim::kAckBytes;
  ack.ack_seq = rcv_nxt_;
  ack.echo_sent_at = data.sent_at;
  ack.delivered_bytes = rcv_nxt_;
  ack.received_total = coverage;
  ack.receiver_window = cfg_.advertised_window;
  ack.ece = data.ecn_marked;
  ack.sent_at = sched_.now();
  // SACK blocks: advertise up to kMaxSack out-of-order ranges (RFC 2018).
  // Report the *highest* ranges: they pin down high_sacked at the sender,
  // which then infers every unsacked segment below it as lost — the
  // information that makes one-RTT burst-loss repair possible.
  for (auto it = ooo_.rbegin(); it != ooo_.rend(); ++it) {
    if (ack.n_sack >= sim::Packet::kMaxSack) break;
    ack.sack[ack.n_sack++] = {it->first, it->second};
  }
  ++acks_sent_;
  ack_out_.deliver(ack);
}

}  // namespace ccc::flow
