// TCP-like receiver: cumulative ACKs with out-of-order reassembly, SACK
// generation, optional delayed ACKs, and a configurable advertised window
// (the RWndLimited lever of §3.1's analysis).
#pragma once

#include <cstdint>
#include <map>

#include "sim/packet.hpp"
#include "sim/scheduler.hpp"

namespace ccc::flow {

struct ReceiverConfig {
  sim::FlowId flow_id{1};
  sim::UserId user{1};
  /// Advertised flow-control window. Small values make the flow
  /// receiver-limited, reproducing the RWndLimited population of M-Lab data.
  ByteCount advertised_window{1 << 30};
  /// If > zero, in-order data packets are ACKed lazily: every second packet
  /// immediately (RFC 5681's 1-per-2), otherwise after this delay. Zero =
  /// quickack (every packet), the default for crisp rate estimation.
  Time delayed_ack{Time::zero()};
};

class TcpReceiver : public sim::PacketSink {
 public:
  /// ACKs are emitted into `ack_out` (the reverse path).
  TcpReceiver(sim::Scheduler& sched, ReceiverConfig cfg, sim::PacketSink& ack_out);

  /// Back-compat convenience constructor.
  TcpReceiver(sim::Scheduler& sched, sim::FlowId flow, sim::UserId user,
              sim::PacketSink& ack_out, ByteCount advertised_window = 1 << 30);

  /// Data ingress.
  void deliver(const sim::Packet& pkt) override;

  /// Cumulative in-order bytes received.
  [[nodiscard]] ByteCount delivered_bytes() const { return rcv_nxt_; }
  [[nodiscard]] std::uint64_t packets_received() const { return packets_received_; }
  [[nodiscard]] std::uint64_t duplicate_packets() const { return duplicate_packets_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }

 private:
  void emit_ack(const sim::Packet& data);
  void arm_delayed_ack(const sim::Packet& data);
  void on_delayed_ack_fire();

  sim::Scheduler& sched_;
  ReceiverConfig cfg_;
  sim::PacketSink& ack_out_;

  std::int64_t rcv_nxt_{0};
  std::map<std::int64_t, std::int64_t> ooo_;  ///< out-of-order ranges: start -> end
  std::uint64_t packets_received_{0};
  std::uint64_t duplicate_packets_{0};
  std::uint64_t acks_sent_{0};

  // Delayed-ACK state.
  int unacked_data_packets_{0};
  bool delayed_armed_{false};
  sim::EventId delayed_event_{0};
  sim::Packet pending_echo_{};  ///< the packet whose timestamp we will echo
};

}  // namespace ccc::flow
