#include "flow/short_flow_workload.hpp"

#include <algorithm>

#include "app/bulk.hpp"

namespace ccc::flow {

ShortFlowWorkload::ShortFlowWorkload(sim::Scheduler& sched, Rng& rng, ShortFlowConfig cfg,
                                     cca::CcaFactory cca_factory, sim::PacketSink& forward,
                                     sim::FlowDemux& demux)
    : sched_{sched},
      rng_{rng},
      cfg_{cfg},
      cca_factory_{std::move(cca_factory)},
      forward_{forward},
      demux_{demux},
      next_id_{cfg.first_flow_id} {
  sched_.schedule_member_fire_at<&ShortFlowWorkload::schedule_next_arrival>(cfg_.start_at, this);
}

void ShortFlowWorkload::schedule_next_arrival() {
  if (sched_.now() >= cfg_.stop_at) return;
  const Time gap = Time::sec(rng_.exponential(cfg_.mean_interarrival.to_sec()));
  sched_.schedule_member_fire_after<&ShortFlowWorkload::on_arrival>(gap, this);
}

void ShortFlowWorkload::on_arrival() {
  if (sched_.now() >= cfg_.stop_at) return;
  spawn_flow();
  schedule_next_arrival();
}

ByteCount ShortFlowWorkload::bytes_delivered() const {
  ByteCount total = 0;
  for (const auto& f : flows_) total += f->delivered_bytes();
  return total;
}

void ShortFlowWorkload::spawn_flow() {
  const auto size = static_cast<ByteCount>(rng_.bounded_pareto(
      cfg_.size_shape, static_cast<double>(cfg_.size_min), static_cast<double>(cfg_.size_max)));

  TcpFlowConfig fc;
  fc.flow_id = next_id_++;
  fc.user = cfg_.user;
  fc.start_at = sched_.now();
  fc.reverse_delay = cfg_.reverse_delay;
  fc.receiver_window = cfg_.receiver_window;

  auto flow = std::make_unique<TcpFlow>(sched_, fc, cca_factory_(),
                                        std::make_unique<app::BulkApp>(size), forward_, demux_);
  const std::size_t idx = flows_.size();
  flow_started_at_.push_back(sched_.now());
  flow->sender().set_on_complete([this, idx, id = fc.flow_id](Time done) {
    ++completed_;
    fct_sec_.push_back((done - flow_started_at_[idx]).to_sec());
    demux_.deregister_flow(id);
  });
  flows_.push_back(std::move(flow));
}

}  // namespace ccc::flow
