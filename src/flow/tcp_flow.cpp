#include "flow/tcp_flow.hpp"

#include <cassert>

namespace ccc::flow {

namespace {
SenderConfig stamp_ids(SenderConfig cfg, sim::FlowId flow, sim::UserId user) {
  cfg.flow_id = flow;
  cfg.user = user;
  return cfg;
}
}  // namespace

TcpFlow::TcpFlow(sim::Scheduler& sched, TcpFlowConfig cfg,
                 std::unique_ptr<cca::CongestionControl> cc, std::unique_ptr<app::App> source,
                 sim::PacketSink& forward, sim::FlowDemux& demux)
    : cfg_{cfg},
      app_{std::move(source)},
      // The reverse line's destination is patched to the sender right below;
      // it needs *a* sink at construction, so point it at the demux
      // temporarily (never used before set_dst).
      reverse_{sched, cfg.reverse_delay, demux},
      sender_{sched, stamp_ids(cfg.sender, cfg.flow_id, cfg.user), std::move(cc), *app_, forward},
      receiver_{sched,
                ReceiverConfig{cfg.flow_id, cfg.user, cfg.receiver_window, cfg.delayed_ack},
                reverse_} {
  assert(app_ != nullptr);
  reverse_.set_dst(sender_);
  demux.register_flow(cfg_.flow_id, receiver_);
  sender_.start(cfg_.start_at);
}

}  // namespace ccc::flow
