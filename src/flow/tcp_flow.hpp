// One end-to-end TCP flow: app + CCA + sender + receiver + reverse path,
// wired into a scenario's shared forward path.
//
// Topology per flow (the standard dumbbell used throughout the paper's
// experiments):
//
//   sender --> [shared forward path: qdisc+link] --> demux --> receiver
//      ^                                                          |
//      +------------------ DelayLine (reverse) --------------–----+
#pragma once

#include <memory>

#include "app/app.hpp"
#include "cca/cca.hpp"
#include "flow/tcp_receiver.hpp"
#include "flow/tcp_sender.hpp"
#include "sim/demux.hpp"
#include "sim/link.hpp"

namespace ccc::flow {

struct TcpFlowConfig {
  sim::FlowId flow_id{1};
  sim::UserId user{1};
  Time start_at{Time::zero()};
  /// One-way reverse-path delay (ACK return). Forward delay comes from the
  /// shared link; base RTT = forward prop + reverse delay.
  Time reverse_delay{Time::ms(50)};
  ByteCount receiver_window{1 << 30};
  /// Delayed-ACK interval for the receiver (zero = ACK every packet).
  Time delayed_ack{Time::zero()};
  SenderConfig sender;  ///< flow_id/user fields are overwritten from above
};

/// Owns all per-flow objects and registers the receiver with the scenario's
/// demux. Immovable (components hold references to each other).
class TcpFlow {
 public:
  /// `forward` is the entry of the shared data path (usually the bottleneck
  /// link); `demux` is the far-end packet router. Both must outlive us.
  TcpFlow(sim::Scheduler& sched, TcpFlowConfig cfg, std::unique_ptr<cca::CongestionControl> cc,
          std::unique_ptr<app::App> source, sim::PacketSink& forward, sim::FlowDemux& demux);

  TcpFlow(const TcpFlow&) = delete;
  TcpFlow& operator=(const TcpFlow&) = delete;

  [[nodiscard]] TcpSender& sender() { return sender_; }
  [[nodiscard]] const TcpSender& sender() const { return sender_; }
  [[nodiscard]] TcpReceiver& receiver() { return receiver_; }
  [[nodiscard]] const TcpReceiver& receiver() const { return receiver_; }
  [[nodiscard]] app::App& source() { return *app_; }
  [[nodiscard]] sim::FlowId id() const { return cfg_.flow_id; }

  /// Mean goodput between two absolute times, from receiver-delivered bytes.
  /// (Caller supplies byte counts snapshotted at the interval edges.)
  [[nodiscard]] ByteCount delivered_bytes() const { return receiver_.delivered_bytes(); }

 private:
  TcpFlowConfig cfg_;
  std::unique_ptr<app::App> app_;
  sim::DelayLine reverse_;   // receiver -> sender (constructed before endpoints)
  TcpSender sender_;
  TcpReceiver receiver_;
};

}  // namespace ccc::flow
