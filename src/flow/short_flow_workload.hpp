// Poisson short-flow workload: web-style traffic (Figure 3's fourth
// cross-traffic type, and §2.2's "most flows are short" population).
//
// New TCP connections arrive as a Poisson process; each carries a
// heavy-tailed (bounded-Pareto) number of bytes and terminates when
// delivered. Most such flows fit in the initial window, so no CCA dynamics
// ever engage — exactly the property the paper leans on.
#pragma once

#include <memory>
#include <vector>

#include "cca/cca.hpp"
#include "flow/tcp_flow.hpp"
#include "util/rng.hpp"

namespace ccc::flow {

struct ShortFlowConfig {
  sim::UserId user{1};
  sim::FlowId first_flow_id{1000};
  Time start_at{Time::zero()};
  Time stop_at{Time::sec(60.0)};
  /// Mean inter-arrival time of new connections.
  Time mean_interarrival{Time::ms(500)};
  /// Bounded-Pareto flow sizes (bytes): shape, min, max.
  double size_shape{1.2};
  ByteCount size_min{4 * 1024};
  ByteCount size_max{2 * 1024 * 1024};
  Time reverse_delay{Time::ms(50)};
  ByteCount receiver_window{1 << 30};
};

class ShortFlowWorkload {
 public:
  /// Arrivals are scheduled immediately; flows are wired like any TcpFlow.
  /// `cca_factory` stamps a CCA per connection. All references must outlive
  /// the workload.
  ShortFlowWorkload(sim::Scheduler& sched, Rng& rng, ShortFlowConfig cfg,
                    cca::CcaFactory cca_factory, sim::PacketSink& forward,
                    sim::FlowDemux& demux);

  ShortFlowWorkload(const ShortFlowWorkload&) = delete;
  ShortFlowWorkload& operator=(const ShortFlowWorkload&) = delete;

  [[nodiscard]] std::size_t flows_started() const { return flows_.size(); }
  [[nodiscard]] std::size_t flows_completed() const { return completed_; }
  /// Flow completion times (seconds) of finished connections.
  [[nodiscard]] const std::vector<double>& completion_times_sec() const { return fct_sec_; }
  [[nodiscard]] ByteCount bytes_delivered() const;

 private:
  void schedule_next_arrival();
  void on_arrival();
  void spawn_flow();

  sim::Scheduler& sched_;
  Rng& rng_;
  ShortFlowConfig cfg_;
  cca::CcaFactory cca_factory_;
  sim::PacketSink& forward_;
  sim::FlowDemux& demux_;

  sim::FlowId next_id_;
  std::vector<std::unique_ptr<TcpFlow>> flows_;
  std::vector<Time> flow_started_at_;
  std::size_t completed_{0};
  std::vector<double> fct_sec_;
};

}  // namespace ccc::flow
