// Constant-bitrate UDP source: Figure 3's fifth cross-traffic type.
//
// No congestion control, no ACKs: packets are emitted on a fixed cadence
// regardless of network state — the archetypal *inelastic* traffic that a
// contention probe must classify as non-contending even though it occupies
// bandwidth.
#pragma once

#include <cstdint>

#include "sim/packet.hpp"
#include "sim/scheduler.hpp"

namespace ccc::flow {

class UdpCbrSource {
 public:
  /// Emits `packet_bytes`-sized packets into `out` at `rate` between
  /// `start_at` and `stop_at`. Preconditions: rate > 0, start < stop.
  UdpCbrSource(sim::Scheduler& sched, sim::FlowId flow, sim::UserId user, Rate rate,
               Time start_at, Time stop_at, sim::PacketSink& out,
               ByteCount packet_bytes = sim::kFullPacket);

  UdpCbrSource(const UdpCbrSource&) = delete;
  UdpCbrSource& operator=(const UdpCbrSource&) = delete;

  [[nodiscard]] std::uint64_t packets_emitted() const { return packets_; }

 private:
  void emit();

  sim::Scheduler& sched_;
  sim::FlowId flow_;
  sim::UserId user_;
  Time stop_at_;
  sim::PacketSink& out_;
  ByteCount packet_bytes_;
  Time interval_;
  std::int64_t next_seq_{0};
  std::uint64_t packets_{0};
};

}  // namespace ccc::flow
