#include "flow/udp_source.hpp"

#include <cassert>

namespace ccc::flow {

UdpCbrSource::UdpCbrSource(sim::Scheduler& sched, sim::FlowId flow, sim::UserId user, Rate rate,
                           Time start_at, Time stop_at, sim::PacketSink& out,
                           ByteCount packet_bytes)
    : sched_{sched},
      flow_{flow},
      user_{user},
      stop_at_{stop_at},
      out_{out},
      packet_bytes_{packet_bytes},
      interval_{rate.transmit_time(packet_bytes)} {
  assert(rate.to_bps() > 0.0);
  assert(start_at < stop_at);
  sched_.schedule_member_fire_at<&UdpCbrSource::emit>(start_at, this);
}

void UdpCbrSource::emit() {
  const Time now = sched_.now();
  if (now >= stop_at_) return;
  sim::Packet pkt;
  pkt.flow = flow_;
  pkt.user = user_;
  pkt.size_bytes = packet_bytes_;
  pkt.seq = next_seq_;
  pkt.payload_bytes = packet_bytes_ - sim::kHeaderBytes;
  pkt.sent_at = now;
  next_seq_ += pkt.payload_bytes;
  ++packets_;
  out_.deliver(pkt);
  sched_.schedule_member_fire_after<&UdpCbrSource::emit>(interval_, this);
}

}  // namespace ccc::flow
