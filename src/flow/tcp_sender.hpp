// TCP-like sender: sequencing, loss detection, retransmission, pacing.
//
// This is the transport half that turns a CCA's window/rate into packets.
// It implements the mechanisms every experiment relies on:
//   - cumulative ACKs with dupack-based fast retransmit (NewReno-style
//     recovery including partial-ACK retransmission),
//   - RFC 6298 RTO estimation with exponential backoff (the timeout
//     mechanism whose starvation effects E6 reproduces),
//   - optional pacing when the CCA supplies a rate (BBR, Copa, Nimbus),
//   - app-limited tracking (the sender knows *why* it is not sending, which
//     is exactly the TCPInfo signal the paper's §3.1 M-Lab analysis keys on).
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "app/app.hpp"
#include "cca/cca.hpp"
#include "sim/packet.hpp"
#include "sim/scheduler.hpp"

namespace ccc::telemetry {
class Histogram;
class MetricRegistry;
class Trace;
}  // namespace ccc::telemetry

namespace ccc::flow {

/// Why the sender was not transmitting at a given instant.
enum class SendLimit {
  kNone,  ///< actively sending / window not yet filled
  kCca,   ///< congestion window full
  kRwnd,  ///< receiver window full
  kApp,   ///< application had no data (AppLimited in TCPInfo terms)
  kDone,  ///< flow finished
};

struct SenderConfig {
  sim::FlowId flow_id{1};
  sim::UserId user{1};
  ByteCount mss{sim::kMss};
  Time min_rto{Time::ms(200)};
  Time max_rto{Time::sec(60.0)};
  Time initial_rto{Time::sec(1.0)};
  int dupack_threshold{3};
};

/// Counters exposed for telemetry (TCPInfo-style) and test assertions.
struct SenderStats {
  ByteCount bytes_sent{0};          ///< first transmissions only
  ByteCount bytes_retransmitted{0};
  ByteCount bytes_acked{0};
  std::uint64_t packets_sent{0};
  std::uint64_t retransmissions{0};
  std::uint64_t rto_events{0};
  std::uint64_t tail_probes{0};  ///< TLP-style probes sent instead of a full RTO
  std::uint64_t recovery_episodes{0};
  std::uint64_t rtt_samples{0};
};

class TcpSender : public sim::PacketSink {
 public:
  /// `out` is the first hop of the data path; `source` supplies bytes; the
  /// sender takes ownership of `cc`. All references must outlive the sender.
  TcpSender(sim::Scheduler& sched, SenderConfig cfg, std::unique_ptr<cca::CongestionControl> cc,
            app::App& source, sim::PacketSink& out);

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  /// Begins transmitting at absolute time `at`.
  void start(Time at);

  /// ACK ingress (the reverse path delivers here).
  void deliver(const sim::Packet& pkt) override;

  // --- observability ---
  [[nodiscard]] const SenderStats& stats() const { return stats_; }
  [[nodiscard]] ByteCount delivered_bytes() const { return snd_una_; }
  /// Unacknowledged sequence range (includes SACKed bytes).
  [[nodiscard]] ByteCount inflight_bytes() const { return snd_nxt_ - snd_una_; }
  /// Bytes believed to actually be in the network (excludes SACKed bytes and
  /// inferred-lost, not-yet-repaired bytes); the quantity the congestion
  /// window gates (RFC 6675's "pipe").
  [[nodiscard]] ByteCount pipe_bytes() const {
    return snd_nxt_ - snd_una_ - sacked_bytes_ - lost_bytes_;
  }
  [[nodiscard]] Time srtt() const { return srtt_; }
  [[nodiscard]] Time min_rtt() const { return min_rtt_; }
  [[nodiscard]] const cca::CongestionControl& cc() const { return *cc_; }
  [[nodiscard]] cca::CongestionControl& cc() { return *cc_; }
  [[nodiscard]] SendLimit current_limit() const { return limit_; }
  [[nodiscard]] bool completed() const { return completed_; }
  [[nodiscard]] sim::FlowId flow_id() const { return cfg_.flow_id; }

  /// Invoked once, when the app finishes and all its bytes are ACKed.
  void set_on_complete(std::function<void(Time)> fn) { on_complete_ = std::move(fn); }

  /// Hooks this sender into a per-scenario registry under `prefix` (e.g.
  /// "flow3"): live RTT histogram `<prefix>.rtt_ms`, interval-sampled cwnd
  /// trace `<prefix>.cwnd_bytes`, plus the CCA's own instruments under
  /// `<prefix>.cca`. Unbound senders pay nothing on the ACK path.
  void bind_metrics(telemetry::MetricRegistry& reg, const std::string& prefix);
  /// Mirrors SenderStats into `reg` as `<prefix>.*` counters (snapshot-style;
  /// call at collection points, costs nothing in between).
  void export_metrics(telemetry::MetricRegistry& reg) const;

 private:
  struct Segment {
    std::int64_t seq{0};
    ByteCount len{0};
    Time sent_at{Time::zero()};
    ByteCount delivered_at_send{0};
    bool app_limited{false};
    bool sacked{false};       ///< covered by a received SACK block
    bool lost{false};         ///< inferred lost (unsacked well below high_sacked)
    bool retx_queued{false};  ///< already retransmitted in this recovery
    int transmissions{1};
  };

  void try_send();
  void on_start_fire();
  void on_pacing_fire();
  void transmit(Segment& seg, bool is_retx);
  void retransmit_head();
  /// Marks segments covered by the ACK's SACK blocks. Returns bytes newly
  /// SACKed (0 if none).
  ByteCount apply_sack(const sim::Packet& ack);
  /// SACK-based recovery: retransmits unsacked holes below the highest
  /// SACKed byte, gated by the congestion window.
  void maybe_retransmit_holes();
  void process_new_ack(const sim::Packet& ack);
  void process_dupack(const sim::Packet& ack);
  void enter_recovery(Time now);
  void update_rtt(Time sample);
  void arm_rto();
  void on_rto_fire();
  void maybe_complete();
  [[nodiscard]] ByteCount send_window() const;

  sim::Scheduler& sched_;
  SenderConfig cfg_;
  std::unique_ptr<cca::CongestionControl> cc_;
  app::App& app_;
  sim::PacketSink& out_;

  std::int64_t snd_una_{0};
  std::int64_t snd_nxt_{0};
  std::deque<Segment> segments_;  ///< unacked segments, ascending seq
  ByteCount rwnd_{1 << 30};       ///< peer-advertised window (updated by ACKs)

  int dupacks_{0};
  bool in_recovery_{false};
  /// True when the current recovery began with a timeout: the CCA is in
  /// slow start and must keep growing (only dupack-triggered fast recovery
  /// freezes the window until it completes).
  bool rto_epoch_{false};
  std::int64_t recovery_point_{0};
  /// snd_nxt when the latest congestion response was applied; losses at or
  /// beyond it are fresh congestion events deserving their own decrease.
  std::int64_t recovery_start_nxt_{0};
  bool fresh_loss_pending_{false};
  ByteCount sacked_bytes_{0};
  ByteCount lost_bytes_{0};  ///< lost and not yet retransmitted
  std::int64_t high_sacked_{0};

  /// (ack arrival, receiver bytes-arrived counter) samples for delivery-rate
  /// estimation. The counter is arrival-paced at the receiver, so rate
  /// samples stay truthful through loss recovery instead of spiking when a
  /// repaired hole releases a cumulative-ACK jump.
  std::deque<std::pair<Time, ByteCount>> delivery_hist_;
  void record_delivery_point(Time now, ByteCount received_total);
  [[nodiscard]] Rate sample_delivery_rate() const;

  Time srtt_{Time::zero()};
  Time rttvar_{Time::zero()};
  Time rto_;
  Time min_rtt_{Time::never()};
  int rto_backoff_{0};
  sim::EventId rto_event_{0};

  Time next_send_time_{Time::zero()};  // pacing release time
  Time last_transmit_{Time::never()};  // for idle-restart detection
  sim::EventId pacing_event_{0};
  bool pacing_wake_armed_{false};

  SendLimit limit_{SendLimit::kNone};
  bool started_{false};
  bool completed_{false};
  SenderStats stats_;
  std::function<void(Time)> on_complete_;

  // Telemetry (null unless bind_metrics was called; hot paths gate on that).
  std::string metric_prefix_;
  telemetry::Histogram* rtt_hist_{nullptr};
  telemetry::Trace* cwnd_trace_{nullptr};
};

}  // namespace ccc::flow
