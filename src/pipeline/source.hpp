// Source stage of the passive-analysis pipeline: where flows come from.
//
// A FlowSource hands out store::FlowView's by index. Shard workers pull
// disjoint contiguous index ranges, so a source must be safe for concurrent
// const access — trivially true for both implementations (a span over an
// immutable dataset; mmap'd read-only columns).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "mlab/ndt_record.hpp"
#include "store/flow_store.hpp"

namespace ccc::pipeline {

class FlowSource {
 public:
  virtual ~FlowSource() = default;
  [[nodiscard]] virtual std::size_t size() const = 0;
  /// Precondition: i < size(). Must be thread-safe (const, no caching).
  [[nodiscard]] virtual store::FlowView flow(std::size_t i) const = 0;
  /// Hint that flows [begin, end) will be read soon, so a backing store can
  /// stage their pages ahead of the faults (see FlowStoreReader::willneed).
  /// Thread-safe like flow(); the default is a no-op (in-memory sources are
  /// already resident). Out-of-range indices are clamped, not errors.
  virtual void prefetch(std::size_t begin, std::size_t end) const {
    (void)begin;
    (void)end;
  }
};

/// The in-memory path: wraps an existing std::vector<NdtRecord> dataset
/// (synthetic or CSV-loaded). Keeps the legacy analysis API alive on top of
/// the pipeline.
class MemorySource final : public FlowSource {
 public:
  explicit MemorySource(std::span<const mlab::NdtRecord> dataset) : dataset_{dataset} {}

  [[nodiscard]] std::size_t size() const override { return dataset_.size(); }
  [[nodiscard]] store::FlowView flow(std::size_t i) const override {
    return store::FlowView::from_record(dataset_[i]);
  }

 private:
  std::span<const mlab::NdtRecord> dataset_;
};

/// The at-scale path: one or more ccfs shards presented as a single
/// concatenated index space (shard k's flows follow shard k-1's). Readers
/// are borrowed — the caller keeps them alive for the source's lifetime.
class StoreSource final : public FlowSource {
 public:
  StoreSource() = default;
  explicit StoreSource(const store::FlowStoreReader& reader) { add(reader); }

  void add(const store::FlowStoreReader& reader) {
    readers_.push_back(&reader);
    prefix_.push_back(prefix_.back() + reader.size());
  }

  [[nodiscard]] std::size_t size() const override { return prefix_.back(); }
  [[nodiscard]] store::FlowView flow(std::size_t i) const override {
    // Find the shard holding global index i: first prefix entry > i.
    const auto it = std::upper_bound(prefix_.begin() + 1, prefix_.end(), i);
    const auto shard = static_cast<std::size_t>(it - prefix_.begin() - 1);
    return readers_[shard]->at(i - prefix_[shard]);
  }
  void prefetch(std::size_t begin, std::size_t end) const override {
    end = std::min(end, prefix_.back());
    while (begin < end) {
      // Forward each shard its slice of the global [begin, end) range.
      const auto it = std::upper_bound(prefix_.begin() + 1, prefix_.end(), begin);
      const auto shard = static_cast<std::size_t>(it - prefix_.begin() - 1);
      const std::size_t local = begin - prefix_[shard];
      const std::size_t take = std::min(end, prefix_[shard + 1]) - begin;
      readers_[shard]->willneed(local, take);
      begin += take;
    }
  }

 private:
  std::vector<const store::FlowStoreReader*> readers_;
  std::vector<std::size_t> prefix_{0};
};

}  // namespace ccc::pipeline
