#include "pipeline/shard_set.hpp"

#include <utility>

namespace ccc::pipeline {

ShardSet ShardSet::open(const std::vector<std::string>& paths, const ShardOpenOptions& opts,
                        telemetry::MetricRegistry* metrics) {
  ShardSet set;
  for (const auto& path : paths) {
    try {
      set.readers_.emplace_back(path,
                                store::ReaderOptions{opts.verify_crc, opts.sequential});
    } catch (const Error& e) {
      if (opts.strict) throw;
      set.failures_.push_back({path, e.category(), e.what()});
      if (metrics != nullptr) metrics->counter("pipeline.shards_failed").inc();
      continue;
    }
    set.source_.add(set.readers_.back());
    if (metrics != nullptr) metrics->counter("store.shards_opened").inc();
  }
  return set;
}

}  // namespace ccc::pipeline
