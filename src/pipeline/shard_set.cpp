#include "pipeline/shard_set.hpp"

#include <algorithm>
#include <utility>

#include "pipeline/stage.hpp"

namespace ccc::pipeline {

ShardSet ShardSet::open(const std::vector<std::string>& paths, const ShardOpenOptions& opts,
                        telemetry::MetricRegistry* metrics) {
  ShardSet set;
  for (const auto& path : paths) {
    try {
      store::ReaderOptions ropts;
      ropts.verify_crc = opts.verify_crc;
      ropts.sequential = opts.sequential;
      // Clamp the window to drain()'s batch: the pipeline holds up to a
      // batch of FlowViews in flight, and the reader's double-buffered
      // window only keeps spans valid across one slide. A window at least
      // one batch wide makes an ascending batch slide at most once.
      ropts.readahead_flows =
          opts.readahead_flows == 0 ? 0 : std::max(opts.readahead_flows, kDrainBatchFlows);
      set.readers_.emplace_back(path, ropts);
    } catch (const Error& e) {
      if (opts.strict) throw;
      set.failures_.push_back({path, e.category(), e.what()});
      if (metrics != nullptr) metrics->counter("pipeline.shards_failed").inc();
      continue;
    }
    set.source_.add(set.readers_.back());
    if (metrics != nullptr) metrics->counter("store.shards_opened").inc();
  }
  return set;
}

}  // namespace ccc::pipeline
