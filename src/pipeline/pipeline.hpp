// run_pipeline — the sharded Source → Classify → Changepoint → Sink driver
// that takes the §3.1 passive study from the paper's 10^4 flows to 10^6+.
//
// The flow index space is cut into contiguous shards of `shard_flows`;
// shards fan out over the existing runner::ThreadPool. Each shard owns its
// Sink (counters + its own telemetry::MetricRegistry), so workers share
// nothing; the merge folds shard sinks *in shard index order*, which makes
// every aggregate — verdict counts, confusion matrix, change-point totals,
// histograms, and the findings list — byte-identical for any `--jobs`
// count (the same argument as the experiment sweeps; see DESIGN.md
// "Flow store & passive pipeline").
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "pipeline/classify.hpp"
#include "pipeline/source.hpp"
#include "runner/experiment_runner.hpp"
#include "telemetry/metrics.hpp"

namespace ccc::pipeline {

struct PipelineConfig {
  ClassifyConfig classify{};
  /// Worker threads; 0 resolves via CCC_JOBS / hardware concurrency.
  unsigned jobs{0};
  /// Flows per shard (the unit of fan-out). Small enough to balance load,
  /// large enough that per-shard overhead vanishes.
  std::size_t shard_flows{8192};
  /// Keep the per-flow findings list (dataset order). At millions of flows
  /// this is the dominant memory cost, so it is opt-in; aggregates are
  /// always produced.
  bool keep_findings{false};
  /// Per-shard MetricRegistry instrumentation, merged into the result.
  bool enable_telemetry{true};
  /// Batched readahead window, in flows. When nonzero, each shard worker
  /// hints the source (FlowSource::prefetch → madvise WILLNEED) one window
  /// ahead of the flow it is crunching, so cold-cache page faults overlap
  /// with analysis instead of serializing with it. 0 disables the hints.
  /// Purely a performance knob: results are identical either way.
  std::size_t readahead_flows{0};
  /// Sanity-check every record before the stages see it (finite scalars,
  /// in-range enums — see record_is_sane in pipeline.cpp). A record that
  /// fails is counted ("store.records_corrupt") and skipped — it must not
  /// poison aggregates or index the confusion matrix out of bounds. The
  /// check is a handful of compares per flow, noise next to the stages.
  bool validate_records{true};
  /// Fail fast instead of degrading: a corrupt record throws
  /// ccc::Error{kCorruption} rather than being counted and skipped. (Shard
  /// -level strictness lives in ShardOpenOptions — by the time flows reach
  /// the pipeline the shards are already open.)
  bool strict{false};
  /// Invoked (serialized) after each *shard* completes: (done, total).
  runner::ProgressFn on_progress{};
};

struct PipelineResult {
  std::uint64_t flows{0};
  std::size_t shards{0};
  unsigned jobs{1};

  /// Indexed by Verdict.
  std::array<std::uint64_t, kVerdictCount> verdicts{};
  /// confusion[archetype][verdict] — ground-truth breakdown.
  std::array<std::array<std::uint64_t, kVerdictCount>, 7> confusion{};

  // Scoring of "contention-suspect" against synthetic ground truth.
  std::uint64_t true_positives{0};
  std::uint64_t false_positives{0};
  std::uint64_t false_negatives{0};
  std::uint64_t true_negatives{0};

  std::uint64_t changepoints_total{0};  ///< accepted shifts across all flows
  std::uint64_t early_exits{0};
  std::uint64_t samples_scanned{0};  ///< series samples the changepoint stage read
  /// Records dropped by validate_records (not in verdicts/confusion).
  std::uint64_t records_corrupt{0};

  /// Per-flow findings in dataset order; empty unless cfg.keep_findings.
  std::vector<FlowFinding> findings;
  /// Shard registries merged in shard order (counters + shift-magnitude
  /// histogram); empty unless cfg.enable_telemetry.
  telemetry::MetricRegistry metrics;

  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
  /// Fraction of flows the filters removed before the change-point stage.
  [[nodiscard]] double filtered_fraction() const;
  /// Verdict counts as a map, zero-count verdicts omitted (the shape the
  /// legacy StudyReport and the fig2 table code expect).
  [[nodiscard]] std::map<Verdict, std::size_t> verdict_map() const;
};

[[nodiscard]] PipelineResult run_pipeline(const FlowSource& src, const PipelineConfig& cfg = {});

}  // namespace ccc::pipeline
