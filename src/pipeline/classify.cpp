#include "pipeline/classify.hpp"

#include <algorithm>
#include <cmath>

#include "changepoint/cost.hpp"
#include "changepoint/detectors.hpp"

namespace ccc::pipeline {

std::string_view to_string(Verdict v) {
  switch (v) {
    case Verdict::kFilteredAppLimited: return "filtered-app-limited";
    case Verdict::kFilteredRwndLimited: return "filtered-rwnd-limited";
    case Verdict::kFilteredCellular: return "filtered-cellular";
    case Verdict::kFilteredShort: return "filtered-short";
    case Verdict::kNoLevelShift: return "no-level-shift";
    case Verdict::kContentionSuspect: return "contention-suspect";
  }
  return "unknown";
}

std::string_view to_string(EarlyExitPolicy p) {
  switch (p) {
    case EarlyExitPolicy::kOff: return "off";
    case EarlyExitPolicy::kFixed: return "fixed";
    case EarlyExitPolicy::kAdaptive: return "adaptive";
  }
  return "unknown";
}

bool early_exit_policy_from_string(std::string_view s, EarlyExitPolicy& out) {
  if (s == "off") {
    out = EarlyExitPolicy::kOff;
  } else if (s == "fixed") {
    out = EarlyExitPolicy::kFixed;
  } else if (s == "adaptive") {
    out = EarlyExitPolicy::kAdaptive;
  } else {
    return false;
  }
  return true;
}

Verdict classify_filters(const store::FlowView& flow, const ClassifyConfig& cfg) {
  if (flow.app_limited_sec > cfg.app_limited_threshold_sec) {
    return Verdict::kFilteredAppLimited;
  }
  if (flow.rwnd_limited_sec > cfg.rwnd_limited_threshold_sec) {
    return Verdict::kFilteredRwndLimited;
  }
  if (cfg.exclude_cellular && (flow.access == mlab::AccessType::kCellular ||
                               flow.access == mlab::AccessType::kSatellite)) {
    return Verdict::kFilteredCellular;
  }
  if (flow.duration_sec < cfg.min_duration_sec ||
      flow.throughput_mbps.size() < static_cast<std::size_t>(4)) {
    return Verdict::kFilteredShort;
  }
  return Verdict::kNoLevelShift;  // residual: proceed to the changepoint stage
}

namespace {

/// Appends log(max(x, 1e-3)) over [begin, end) of the series to `out` — the
/// transform under which multiplicative rate noise has stable variance (see
/// below). Append-only so the early-exit prefix extends into the full series
/// without recomputing.
void log_series_into(std::span<const double> series, std::size_t begin, std::size_t end,
                     std::vector<double>& out) {
  for (std::size_t i = begin; i < end; ++i) {
    out.push_back(std::log(std::max(series[i], 1e-3)));
  }
}

/// The TURBOTEST-style screen shared by the offline and streamed detectors.
/// Reads a prefix of `series` (appending its log-samples to `log_tput`, so a
/// fall-through search extends instead of recomputing) and decides whether
/// the flow can be declared shift-free without the full PELT search:
///
///   kOff       never (the caller runs the full search)
///   kFixed     exactly the first `early_exit_window_sec`: quiet -> exit
///   kAdaptive  the fixed window, extended window-by-window while the CUSUM
///              statistic sits in the uncertain band (margin * h, h); an
///              alarm — or reaching the series end still uncertain — falls
///              through to the full search
///
/// Returns true when the flow exits early, with `samples_read` set to the
/// samples actually consumed.
bool early_exit_screen(std::span<const double> series, const ClassifyConfig& cfg, double dt,
                       std::size_t min_seg, std::vector<double>& log_tput,
                       changepoint::ChangepointWorkspace& ws, std::uint32_t& samples_read) {
  if (cfg.early_exit == EarlyExitPolicy::kOff) return false;
  const std::size_t n = series.size();
  const auto w = static_cast<std::size_t>(std::ceil(cfg.early_exit_window_sec / dt));
  if (w < 4 || w >= n) return false;
  log_series_into(series, 0, w, log_tput);
  const std::span<const double> prefix{log_tput.data(), w};
  double sigma = changepoint::estimate_noise_sigma(prefix, ws.diffs);
  if (sigma <= 1e-12) sigma = 1e-6;  // same noise-free convention as the full path
  const std::size_t ref_n = std::max<std::size_t>(1, std::min(min_seg, w));
  double ref = 0.0;
  for (std::size_t i = 0; i < ref_n; ++i) ref += prefix[i];
  ref /= static_cast<double>(ref_n);
  const double h = 5.0 * sigma;
  changepoint::Cusum screen{ref, 0.5 * sigma, h};
  for (std::size_t i = 0; i < w; ++i) {
    if (screen.add(prefix[i])) return false;  // drift in the prefix: full search
  }
  if (cfg.early_exit == EarlyExitPolicy::kFixed) {
    samples_read = static_cast<std::uint32_t>(w);
    return true;  // quiet prefix: trust it, skip the rest of the series
  }
  // kAdaptive: the prefix never alarmed, but how quiet was it? Below the
  // quiet bar the exit is confident; in the band we pay for more samples
  // until the statistic either decays (exit) or crosses h (full search).
  const double quiet = cfg.early_exit_margin * h;
  const auto stat = [&screen] {
    return std::max(screen.positive_stat(), screen.negative_stat());
  };
  if (stat() <= quiet) {
    samples_read = static_cast<std::uint32_t>(w);
    return true;
  }
  std::size_t i = w;
  while (i < n) {
    const std::size_t next = std::min(n, i + w);
    for (; i < next; ++i) {
      const double v = std::log(std::max(series[i], 1e-3));
      log_tput.push_back(v);
      if (screen.add(v)) return false;  // drift confirmed: full search
    }
    if (i < n && stat() <= quiet) {
      samples_read = static_cast<std::uint32_t>(i);
      return true;
    }
  }
  return false;  // read everything still uncertain: the full search is free now
}

}  // namespace

FlowFinding detect_changepoints(const store::FlowView& flow, const ClassifyConfig& cfg,
                                changepoint::ChangepointWorkspace& ws) {
  FlowFinding f;
  f.id = flow.id;
  f.truth = flow.truth;

  const std::span<const double> series = flow.throughput_mbps;
  const std::size_t n = series.size();
  const double dt = flow.snapshot_interval_sec;
  const auto min_seg = static_cast<std::size_t>(std::ceil(cfg.min_segment_sec / dt));

  auto& log_tput = ws.log_series;
  log_tput.clear();

  std::uint32_t screened = 0;
  if (early_exit_screen(series, cfg, dt, min_seg, log_tput, ws, screened)) {
    f.verdict = Verdict::kNoLevelShift;
    f.early_exited = true;
    f.samples_scanned = screened;
    return f;
  }

  // Change-point search on the *log* throughput series: rate noise is
  // multiplicative (a fixed coefficient of variation), so the log transform
  // stabilizes the variance and a single penalty suits high and low levels
  // alike; level shifts stay steps under the transform. The early-exit
  // prefix (if we took that path) is already in place; extend to n.
  log_series_into(series, log_tput.size(), n, log_tput);
  // The persistence requirement goes into the search itself: PELT then finds
  // the best segmentation at the granularity we care about instead of
  // shattering gradual transitions into sub-threshold fragments.
  changepoint::detect_mean_shifts_into(log_tput, cfg.sensitivity, min_seg, ws, ws.cps);
  const auto& cps = ws.cps;

  // Evaluate each change point: segment boundaries are [0, cps..., n).
  auto& bounds = ws.bounds;
  bounds.clear();
  bounds.push_back(0);
  bounds.insert(bounds.end(), cps.begin(), cps.end());
  bounds.push_back(n);

  auto seg_mean = [&](std::size_t a, std::size_t b) {
    double s = 0.0;
    for (std::size_t i = a; i < b; ++i) s += series[i];
    return s / static_cast<double>(b - a);
  };

  for (std::size_t k = 1; k + 1 < bounds.size(); ++k) {
    const std::size_t a = bounds[k - 1];
    const std::size_t b = bounds[k];
    const std::size_t c = bounds[k + 1];
    if (b - a < min_seg || c - b < min_seg) continue;  // transient, not a level
    const double before = seg_mean(a, b);
    const double after = seg_mean(b, c);
    const double larger = std::max(before, after);
    if (larger <= 0.0) continue;
    const double shift = std::abs(after - before) / larger;
    if (shift >= cfg.min_shift_fraction) {
      f.shift_times_sec.push_back(static_cast<double>(b) * dt);
      f.shift_magnitudes.push_back(shift);
    }
  }

  f.verdict = f.shift_times_sec.empty() ? Verdict::kNoLevelShift : Verdict::kContentionSuspect;
  f.samples_scanned = static_cast<std::uint32_t>(n);
  return f;
}

FlowFinding detect_changepoints_streamed(const store::FlowView& flow, const ClassifyConfig& cfg,
                                         changepoint::ChangepointWorkspace& ws,
                                         std::size_t window_samples) {
  const std::span<const double> series = flow.throughput_mbps;
  const std::size_t n = series.size();
  // A window covering the whole series IS the offline search — delegate, so
  // the daemon's replay-with-wide-window mode is byte-identical to fig2.
  if (window_samples == 0 || window_samples >= n) return detect_changepoints(flow, cfg, ws);

  FlowFinding f;
  f.id = flow.id;
  f.truth = flow.truth;

  const double dt = flow.snapshot_interval_sec;
  const auto min_seg = static_cast<std::size_t>(std::ceil(cfg.min_segment_sec / dt));

  auto& log_tput = ws.log_series;
  log_tput.clear();

  std::uint32_t screened = 0;
  if (early_exit_screen(series, cfg, dt, min_seg, log_tput, ws, screened)) {
    f.verdict = Verdict::kNoLevelShift;
    f.early_exited = true;
    f.samples_scanned = screened;
    return f;
  }

  // Windowed PELT over a ring of the most recent W log-samples. The floor
  // keeps the search meaningful: two persistent segments must fit in one
  // window or no shift could ever be accepted. Consecutive windows overlap
  // by up to 2*min_seg samples so a shift landing near a window edge is
  // seen with full persistence context on both sides by some window.
  const std::size_t W =
      std::max(window_samples, std::max<std::size_t>(2 * min_seg + 2, 8));
  const std::size_t hop = W - std::min(W / 2, 2 * min_seg);
  std::size_t last_accepted = 0;  // global index of the last accepted shift

  auto seg_mean = [&series](std::size_t a, std::size_t b) {
    double s = 0.0;
    for (std::size_t i = a; i < b; ++i) s += series[i];
    return s / static_cast<double>(b - a);
  };

  for (std::size_t a = 0;; a += hop) {
    const std::size_t b = std::min(a + W, n);
    log_tput.clear();  // the ring: at most W log-samples live at once
    log_series_into(series, a, b, log_tput);
    changepoint::detect_mean_shifts_into(log_tput, cfg.sensitivity, min_seg, ws, ws.cps);

    auto& bounds = ws.bounds;
    bounds.clear();
    bounds.push_back(0);
    bounds.insert(bounds.end(), ws.cps.begin(), ws.cps.end());
    bounds.push_back(b - a);

    for (std::size_t k = 1; k + 1 < bounds.size(); ++k) {
      const std::size_t la = bounds[k - 1];
      const std::size_t lb = bounds[k];
      const std::size_t lc = bounds[k + 1];
      if (lb - la < min_seg || lc - lb < min_seg) continue;  // transient
      const std::size_t g = a + lb;
      // Overlapping windows rediscover the same level change at nearby
      // indices; anything within min_seg of an accepted shift is a dupe.
      if (!f.shift_times_sec.empty() && g < last_accepted + min_seg) continue;
      const double before = seg_mean(a + la, a + lb);
      const double after = seg_mean(a + lb, a + lc);
      const double larger = std::max(before, after);
      if (larger <= 0.0) continue;
      const double shift = std::abs(after - before) / larger;
      if (shift >= cfg.min_shift_fraction) {
        f.shift_times_sec.push_back(static_cast<double>(g) * dt);
        f.shift_magnitudes.push_back(shift);
        last_accepted = g;
      }
    }
    if (b == n) break;
  }

  f.verdict = f.shift_times_sec.empty() ? Verdict::kNoLevelShift : Verdict::kContentionSuspect;
  f.samples_scanned = static_cast<std::uint32_t>(n);
  return f;
}

FlowFinding classify_flow(const store::FlowView& flow, const ClassifyConfig& cfg) {
  const Verdict filter = classify_filters(flow, cfg);
  if (filter != Verdict::kNoLevelShift) {
    FlowFinding f;
    f.id = flow.id;
    f.truth = flow.truth;
    f.verdict = filter;
    return f;
  }
  changepoint::ChangepointWorkspace ws;
  return detect_changepoints(flow, cfg, ws);
}

FlowFinding classify_flow(const mlab::NdtRecord& rec, const ClassifyConfig& cfg) {
  return classify_flow(store::FlowView::from_record(rec), cfg);
}

}  // namespace ccc::pipeline
