#include "pipeline/classify.hpp"

#include <algorithm>
#include <cmath>

#include "changepoint/cost.hpp"
#include "changepoint/detectors.hpp"

namespace ccc::pipeline {

std::string_view to_string(Verdict v) {
  switch (v) {
    case Verdict::kFilteredAppLimited: return "filtered-app-limited";
    case Verdict::kFilteredRwndLimited: return "filtered-rwnd-limited";
    case Verdict::kFilteredCellular: return "filtered-cellular";
    case Verdict::kFilteredShort: return "filtered-short";
    case Verdict::kNoLevelShift: return "no-level-shift";
    case Verdict::kContentionSuspect: return "contention-suspect";
  }
  return "unknown";
}

Verdict classify_filters(const store::FlowView& flow, const ClassifyConfig& cfg) {
  if (flow.app_limited_sec > cfg.app_limited_threshold_sec) {
    return Verdict::kFilteredAppLimited;
  }
  if (flow.rwnd_limited_sec > cfg.rwnd_limited_threshold_sec) {
    return Verdict::kFilteredRwndLimited;
  }
  if (cfg.exclude_cellular && (flow.access == mlab::AccessType::kCellular ||
                               flow.access == mlab::AccessType::kSatellite)) {
    return Verdict::kFilteredCellular;
  }
  if (flow.duration_sec < cfg.min_duration_sec ||
      flow.throughput_mbps.size() < static_cast<std::size_t>(4)) {
    return Verdict::kFilteredShort;
  }
  return Verdict::kNoLevelShift;  // residual: proceed to the changepoint stage
}

namespace {

/// Appends log(max(x, 1e-3)) over [begin, end) of the series to `out` — the
/// transform under which multiplicative rate noise has stable variance (see
/// below). Append-only so the early-exit prefix extends into the full series
/// without recomputing.
void log_series_into(std::span<const double> series, std::size_t begin, std::size_t end,
                     std::vector<double>& out) {
  for (std::size_t i = begin; i < end; ++i) {
    out.push_back(std::log(std::max(series[i], 1e-3)));
  }
}

}  // namespace

FlowFinding detect_changepoints(const store::FlowView& flow, const ClassifyConfig& cfg,
                                changepoint::ChangepointWorkspace& ws) {
  FlowFinding f;
  f.id = flow.id;
  f.truth = flow.truth;

  const std::span<const double> series = flow.throughput_mbps;
  const std::size_t n = series.size();
  const double dt = flow.snapshot_interval_sec;
  const auto min_seg = static_cast<std::size_t>(std::ceil(cfg.min_segment_sec / dt));

  auto& log_tput = ws.log_series;
  log_tput.clear();

  // TURBOTEST-style screen: read only the first window; if a CUSUM over the
  // log-prefix never drifts, trust the prefix and skip the full search (and
  // the unread tail pages of a columnar store).
  if (cfg.early_exit) {
    const auto w = static_cast<std::size_t>(std::ceil(cfg.early_exit_window_sec / dt));
    if (w >= 4 && w < n) {
      log_series_into(series, 0, w, log_tput);
      const std::span<const double> prefix{log_tput};
      double sigma = changepoint::estimate_noise_sigma(prefix, ws.diffs);
      if (sigma <= 1e-12) sigma = 1e-6;  // same noise-free convention as the full path
      const std::size_t ref_n = std::max<std::size_t>(1, std::min(min_seg, w));
      double ref = 0.0;
      for (std::size_t i = 0; i < ref_n; ++i) ref += prefix[i];
      ref /= static_cast<double>(ref_n);
      changepoint::Cusum screen{ref, 0.5 * sigma, 5.0 * sigma};
      bool alarm = false;
      for (const double v : prefix) {
        if (screen.add(v)) {
          alarm = true;
          break;
        }
      }
      if (!alarm) {
        f.verdict = Verdict::kNoLevelShift;
        f.early_exited = true;
        f.samples_scanned = static_cast<std::uint32_t>(w);
        return f;
      }
    }
  }

  // Change-point search on the *log* throughput series: rate noise is
  // multiplicative (a fixed coefficient of variation), so the log transform
  // stabilizes the variance and a single penalty suits high and low levels
  // alike; level shifts stay steps under the transform. The early-exit
  // prefix (if we took that path) is already in place; extend to n.
  log_series_into(series, log_tput.size(), n, log_tput);
  // The persistence requirement goes into the search itself: PELT then finds
  // the best segmentation at the granularity we care about instead of
  // shattering gradual transitions into sub-threshold fragments.
  changepoint::detect_mean_shifts_into(log_tput, cfg.sensitivity, min_seg, ws, ws.cps);
  const auto& cps = ws.cps;

  // Evaluate each change point: segment boundaries are [0, cps..., n).
  auto& bounds = ws.bounds;
  bounds.clear();
  bounds.push_back(0);
  bounds.insert(bounds.end(), cps.begin(), cps.end());
  bounds.push_back(n);

  auto seg_mean = [&](std::size_t a, std::size_t b) {
    double s = 0.0;
    for (std::size_t i = a; i < b; ++i) s += series[i];
    return s / static_cast<double>(b - a);
  };

  for (std::size_t k = 1; k + 1 < bounds.size(); ++k) {
    const std::size_t a = bounds[k - 1];
    const std::size_t b = bounds[k];
    const std::size_t c = bounds[k + 1];
    if (b - a < min_seg || c - b < min_seg) continue;  // transient, not a level
    const double before = seg_mean(a, b);
    const double after = seg_mean(b, c);
    const double larger = std::max(before, after);
    if (larger <= 0.0) continue;
    const double shift = std::abs(after - before) / larger;
    if (shift >= cfg.min_shift_fraction) {
      f.shift_times_sec.push_back(static_cast<double>(b) * dt);
      f.shift_magnitudes.push_back(shift);
    }
  }

  f.verdict = f.shift_times_sec.empty() ? Verdict::kNoLevelShift : Verdict::kContentionSuspect;
  f.samples_scanned = static_cast<std::uint32_t>(n);
  return f;
}

FlowFinding detect_changepoints(const store::FlowView& flow, const ClassifyConfig& cfg) {
  changepoint::ChangepointWorkspace ws;
  return detect_changepoints(flow, cfg, ws);
}

FlowFinding classify_flow(const store::FlowView& flow, const ClassifyConfig& cfg) {
  const Verdict filter = classify_filters(flow, cfg);
  if (filter != Verdict::kNoLevelShift) {
    FlowFinding f;
    f.id = flow.id;
    f.truth = flow.truth;
    f.verdict = filter;
    return f;
  }
  return detect_changepoints(flow, cfg);
}

FlowFinding classify_flow(const mlab::NdtRecord& rec, const ClassifyConfig& cfg) {
  return classify_flow(store::FlowView::from_record(rec), cfg);
}

}  // namespace ccc::pipeline
