#include "pipeline/stage.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.hpp"

namespace ccc::pipeline {

namespace {

/// Gatekeeper for StageOptions::validate_records: is this FlowView safe to
/// hand to the stages? Two classes of damage get through the shard-level
/// checks (CRC off, an in-memory source fed by a hostile CSV): non-finite
/// scalars that would poison every mean downstream, and out-of-range enum
/// bytes — `truth` indexes the confusion matrix, so an unchecked byte of
/// 200 is an out-of-bounds write, not just a wrong answer.
bool record_is_sane(const store::FlowView& f) {
  if (static_cast<std::uint8_t>(f.access) > static_cast<std::uint8_t>(mlab::AccessType::kSatellite))
    return false;
  if (static_cast<std::uint8_t>(f.truth) > static_cast<std::uint8_t>(mlab::FlowArchetype::kPoliced))
    return false;
  if (!std::isfinite(f.duration_sec) || f.duration_sec < 0.0) return false;
  if (!std::isfinite(f.app_limited_sec) || !std::isfinite(f.rwnd_limited_sec)) return false;
  if (!std::isfinite(f.mean_throughput_mbps) || !std::isfinite(f.min_rtt_ms)) return false;
  if (!std::isfinite(f.snapshot_interval_sec) || f.snapshot_interval_sec <= 0.0) return false;
  return true;
}

/// Bounds for the shift-magnitude histogram. Fixed at registration (and
/// identical across stages) so merges are exact and two runs always bucket
/// identically. Magnitudes live in (min_shift_fraction, 1].
const std::vector<double>& magnitude_bounds() {
  static const std::vector<double> bounds = {0.25, 0.35, 0.45, 0.55, 0.65,
                                             0.75, 0.85, 0.95, 1.0};
  return bounds;
}

}  // namespace

PullResult RangePull::pull(std::vector<store::FlowView>& out, std::size_t max) {
  // Stage the first readahead window lazily on the first pull, then keep
  // exactly one window in flight: every window boundary crossed below hints
  // the next one while this one is being analyzed.
  const std::size_t window = readahead_;
  if (!primed_) {
    primed_ = true;
    if (window > 0) src_.prefetch(begin_, std::min(end_, begin_ + window));
  }
  PullResult r;
  const std::size_t take = std::min(max, end_ - next_);
  for (std::size_t k = 0; k < take; ++k, ++next_) {
    if (window > 0 && (next_ - begin_) % window == 0 && next_ + window < end_) {
      src_.prefetch(next_ + window, std::min(end_, next_ + 2 * window));
    }
    out.push_back(src_.flow(next_));
  }
  r.n = take;
  r.state = next_ < end_ ? StreamState::kReady : StreamState::kEnd;
  return r;
}

void AnalyzeStage::push(const store::FlowView& flow) {
  ++tallies_.flows_seen;
  if (opts_.validate_records && !record_is_sane(flow)) {
    if (opts_.strict) {
      throw Error::corruption(
          "", "pipeline: corrupt record at flow index " +
                  std::to_string(opts_.index_offset + tallies_.flows_seen - 1) + " (id " +
                  std::to_string(flow.id) + ")");
    }
    ++tallies_.records_corrupt;
    return;
  }
  const Verdict filter = classify_filters(flow, opts_.classify);  // Classify
  FlowFinding f;
  if (filter != Verdict::kNoLevelShift) {
    f.id = flow.id;
    f.truth = flow.truth;
    f.verdict = filter;
  } else if (opts_.window_samples == 0) {
    f = detect_changepoints(flow, opts_.classify, ws_);  // Changepoint
  } else {
    f = detect_changepoints_streamed(flow, opts_.classify, ws_, opts_.window_samples);
  }

  // Sink: tally. Plain integer adds; metrics settle at flush().
  auto& t = tallies_;
  const auto v = static_cast<std::size_t>(f.verdict);
  ++t.verdicts[v];
  ++t.confusion[static_cast<std::size_t>(f.truth)][v];
  const bool truly = flow.truth == mlab::FlowArchetype::kBulkContended;
  const bool flagged = f.verdict == Verdict::kContentionSuspect;
  t.tp += static_cast<std::uint64_t>(flagged && truly);
  t.fp += static_cast<std::uint64_t>(flagged && !truly);
  t.fn += static_cast<std::uint64_t>(!flagged && truly);
  t.tn += static_cast<std::uint64_t>(!flagged && !truly);
  t.changepoints += f.shift_times_sec.size();
  t.early_exits += static_cast<std::uint64_t>(f.early_exited);
  t.samples_scanned += f.samples_scanned;
  t.magnitudes.insert(t.magnitudes.end(), f.shift_magnitudes.begin(), f.shift_magnitudes.end());
  if (opts_.keep_findings) t.findings.push_back(std::move(f));
}

void AnalyzeStage::flush(std::uint64_t /*epoch*/) {
  if (!opts_.enable_telemetry) return;
  const AnalysisTallies& t = tallies_;
  AnalysisTallies& e = exported_;
  auto& reg = metrics_;
  // Deltas since the last flush, as counter increments — so one flush at
  // stream end equals the old one-shot shard export, and an every-epoch
  // flusher converges to the same totals. Registration order is fixed
  // (flows, verdicts, residual, ...) to keep report output deterministic.
  reg.counter("pipeline.flows").inc(t.flows_seen - e.flows_seen);
  for (std::size_t v = 0; v < kVerdictCount; ++v) {
    reg.counter(std::string{"pipeline.verdict."} + std::string{to_string(static_cast<Verdict>(v))})
        .inc(t.verdicts[v] - e.verdicts[v]);
  }
  const auto residual = [](const AnalysisTallies& a) {
    return a.verdicts[static_cast<std::size_t>(Verdict::kNoLevelShift)] +
           a.verdicts[static_cast<std::size_t>(Verdict::kContentionSuspect)];
  };
  reg.counter("pipeline.residual_flows").inc(residual(t) - residual(e));
  reg.counter("pipeline.changepoints").inc(t.changepoints - e.changepoints);
  reg.counter("pipeline.early_exits").inc(t.early_exits - e.early_exits);
  reg.counter("pipeline.samples_scanned").inc(t.samples_scanned - e.samples_scanned);
  reg.counter("store.records_corrupt").inc(t.records_corrupt - e.records_corrupt);
  auto& hist = reg.histogram("pipeline.shift_magnitude", magnitude_bounds());
  for (std::size_t i = magnitudes_exported_; i < t.magnitudes.size(); ++i) {
    hist.observe(t.magnitudes[i]);
  }
  magnitudes_exported_ = t.magnitudes.size();
  // Snapshot the scalar watermarks (the vectors stay with tallies_).
  e.flows_seen = t.flows_seen;
  e.verdicts = t.verdicts;
  e.changepoints = t.changepoints;
  e.early_exits = t.early_exits;
  e.samples_scanned = t.samples_scanned;
  e.records_corrupt = t.records_corrupt;
}

std::size_t drain(PullSource& src, PushStage& stage, std::size_t batch_flows) {
  std::vector<store::FlowView> batch;
  std::size_t pushed = 0;
  for (;;) {
    batch.clear();
    const PullResult r = src.pull(batch, std::max<std::size_t>(1, batch_flows));
    for (std::size_t i = 0; i < r.n; ++i) stage.push(batch[i]);
    pushed += r.n;
    if (r.state != StreamState::kReady) return pushed;
  }
}

}  // namespace ccc::pipeline
