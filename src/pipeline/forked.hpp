// run_pipeline_forked — the passive pipeline fanned out over PROCESSES
// instead of threads, one task per ccfs shard.
//
// Why processes, when run_pipeline already scales over a thread pool: a
// past-RAM run. The threaded pipeline opens every shard in one address
// space up front (ShardSet), so a dataset larger than memory dies before
// the first flow is analyzed. Here the parent never opens a shard at all:
// each forked child opens ONLY its own shard (windowed-pread readers bound
// even that; see ShardOpenOptions::readahead_flows), analyzes it with
// jobs=1, and ships the aggregate result — a few KB — back over a pipe.
// The child's entire footprint returns to the OS at _exit, so peak RSS is
// O(procs * one shard window), independent of dataset size.
//
// Determinism: the unit of work is the ccfs shard, NOT a procs-dependent
// block, so the decomposition is identical for any --procs count. Child
// results are merged in shard order with exactly the associative folds
// run_pipeline's own ordered reduction uses (sums, histogram merges,
// findings-free), and the serialization is binary-exact for doubles —
// so the merged result is byte-identical for --procs 1 and --procs N.
// procs <= 1 runs the same serialize/merge path inline (no fork), which is
// what makes that claim trivially testable.
//
// Differences from the in-process result, by design:
//   - result.jobs is always 1 (each child is single-threaded).
//   - result.shards counts the children's internal 8192-flow shards, which
//     can differ from one concatenated run's count when ccfs shard sizes
//     are not multiples of shard_flows. Aggregates are unaffected.
//   - cfg.keep_findings is rejected (Error{kConfig}): per-flow findings at
//     past-RAM scale are exactly the memory cost this runner exists to
//     avoid, and shipping them through the pipe would reintroduce it.
//   - cfg.on_progress is ignored: children cannot call into the parent.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "pipeline/shard_set.hpp"

namespace ccc::pipeline {

/// run_pipeline_forked's return value: the merged pipeline result plus the
/// shard-open bookkeeping the parent never saw first-hand (children open
/// the shards under `open_opts`' degradation policy).
struct ForkedRunResult {
  PipelineResult result;
  std::size_t shards_opened{0};
  /// Failures in shard-path order; "store.shards_opened" and
  /// "pipeline.shards_failed" counters are already merged into
  /// result.metrics, mirroring the fig2 in-process bookkeeping.
  std::vector<ShardFailure> failures;
};

/// Analyzes `shard_paths` with up to `procs` forked children, one task per
/// shard. strict open/record failures in a child surface as the child's
/// rendered error wrapped in ccc::Error{kIo}; a child killed mid-shard
/// (OOM, signal) is a typed Error too, never a hang. See the header
/// comment for the determinism contract.
[[nodiscard]] ForkedRunResult run_pipeline_forked(const std::vector<std::string>& shard_paths,
                                                  const PipelineConfig& cfg,
                                                  const ShardOpenOptions& open_opts,
                                                  std::size_t procs);

}  // namespace ccc::pipeline
