// Classify + Changepoint stages of the passive pipeline — the paper's §3.1
// decision tree as per-flow pure functions over zero-copy FlowViews.
//
//   Classify:    drop app-limited / rwnd-limited / cellular / too-short
//                flows from TCPInfo aggregates alone (no series access —
//                on a columnar store this stage never faults in the
//                throughput pool pages of flows it filters).
//   Changepoint: offline level-shift search on each residual flow's series;
//                a large persistent shift marks it "contention-suspect".
//
// The optional early-exit follows TURBOTEST's observation that most of a
// flow's classification signal arrives early: a cheap CUSUM screen over
// just the first `early_exit_window_sec` of the series decides whether the
// full PELT search (and the rest of the series) is worth reading. Off by
// default — results are then byte-identical to the pre-pipeline analysis;
// switching it on trades recall on late-arriving contention for a bounded
// per-flow read. This enum/logic used to live in analysis::passive_study,
// which now re-exports it (src/analysis/passive_study.hpp).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "changepoint/workspace.hpp"
#include "mlab/ndt_record.hpp"
#include "store/flow_store.hpp"

namespace ccc::pipeline {

enum class Verdict : std::uint8_t {
  kFilteredAppLimited,
  kFilteredRwndLimited,
  kFilteredCellular,
  kFilteredShort,
  kNoLevelShift,       ///< survived filters; throughput stable
  kContentionSuspect,  ///< survived filters; persistent level shift found
};
inline constexpr std::size_t kVerdictCount = 6;

[[nodiscard]] std::string_view to_string(Verdict v);

struct ClassifyConfig {
  /// A flow counts as app-/rwnd-limited when the cumulative limited time
  /// exceeds this many seconds (the paper used "field > 0").
  double app_limited_threshold_sec{0.0};
  double rwnd_limited_threshold_sec{0.0};
  bool exclude_cellular{true};
  /// Flows shorter than this can't show multi-second dynamics.
  double min_duration_sec{2.0};
  /// A level shift counts if adjacent segment means differ by at least this
  /// fraction of the larger mean...
  double min_shift_fraction{0.25};
  /// ...and both segments persist at least this long.
  double min_segment_sec{1.0};
  /// PELT penalty scale (see detect_mean_shifts()).
  double sensitivity{1.0};

  /// TURBOTEST-style early exit (changepoint stage). Off by default so
  /// results stay byte-identical to the full search; on, a residual flow
  /// whose first `early_exit_window_sec` shows no CUSUM drift is declared
  /// shift-free without reading the rest of its series.
  bool early_exit{false};
  double early_exit_window_sec{5.0};
};

struct FlowFinding {
  std::uint64_t id{0};
  Verdict verdict{Verdict::kNoLevelShift};
  std::vector<double> shift_times_sec;   ///< accepted change points
  std::vector<double> shift_magnitudes;  ///< |mean_after/mean_before - 1|
  mlab::FlowArchetype truth{};           ///< copied from the record
  bool early_exited{false};              ///< CUSUM screen skipped the search
  std::uint32_t samples_scanned{0};      ///< series samples actually read
};

/// Classify stage alone: the aggregate-only decision tree. Returns one of
/// the kFiltered* verdicts, or kNoLevelShift meaning "residual — hand the
/// flow to the changepoint stage".
[[nodiscard]] Verdict classify_filters(const store::FlowView& flow, const ClassifyConfig& cfg);

/// Changepoint stage alone (precondition: classify_filters said residual).
[[nodiscard]] FlowFinding detect_changepoints(const store::FlowView& flow,
                                              const ClassifyConfig& cfg);

/// Workspace variant: identical result, but the log series, noise scratch,
/// cost prefixes, and PELT state all come from `ws` — zero heap allocation
/// per flow once the shard's workspace has warmed up. (The FlowFinding's own
/// shift vectors still allocate; they are the output, not scratch.)
[[nodiscard]] FlowFinding detect_changepoints(const store::FlowView& flow,
                                              const ClassifyConfig& cfg,
                                              changepoint::ChangepointWorkspace& ws);

/// Both stages composed: the per-flow unit of the pipeline.
[[nodiscard]] FlowFinding classify_flow(const store::FlowView& flow, const ClassifyConfig& cfg);
[[nodiscard]] FlowFinding classify_flow(const mlab::NdtRecord& rec, const ClassifyConfig& cfg);

}  // namespace ccc::pipeline
