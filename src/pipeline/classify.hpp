// Classify + Changepoint stages of the passive pipeline — the paper's §3.1
// decision tree as per-flow pure functions over zero-copy FlowViews.
//
//   Classify:    drop app-limited / rwnd-limited / cellular / too-short
//                flows from TCPInfo aggregates alone (no series access —
//                on a columnar store this stage never faults in the
//                throughput pool pages of flows it filters).
//   Changepoint: offline level-shift search on each residual flow's series;
//                a large persistent shift marks it "contention-suspect".
//
// The optional early-exit follows TURBOTEST's observation that most of a
// flow's classification signal arrives early: a cheap CUSUM screen over
// a prefix of the series decides whether the full PELT search (and the
// rest of the series) is worth reading. It is a first-class policy now
// (EarlyExitPolicy): off by default — results are then byte-identical to
// the pre-pipeline analysis; `fixed` screens exactly the first
// `early_exit_window_sec`; `adaptive` keeps reading while the CUSUM
// statistic sits in an uncertain band, trading bytes read against
// accuracy per flow instead of per config. This enum/logic used to live
// in analysis::passive_study, which now re-exports it
// (src/analysis/passive_study.hpp).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "changepoint/workspace.hpp"
#include "mlab/ndt_record.hpp"
#include "store/flow_store.hpp"

namespace ccc::pipeline {

enum class Verdict : std::uint8_t {
  kFilteredAppLimited,
  kFilteredRwndLimited,
  kFilteredCellular,
  kFilteredShort,
  kNoLevelShift,       ///< survived filters; throughput stable
  kContentionSuspect,  ///< survived filters; persistent level shift found
};
inline constexpr std::size_t kVerdictCount = 6;

[[nodiscard]] std::string_view to_string(Verdict v);

/// TURBOTEST-style early exit, promoted from a bool stub (PR 3) to a policy
/// (PR 7). All three policies are per-flow decisions inside the changepoint
/// stage; the classify filters always run.
enum class EarlyExitPolicy : std::uint8_t {
  /// Read and search every residual flow's full series. Byte-identical to
  /// the original offline analysis; the default.
  kOff,
  /// Screen exactly the first `early_exit_window_sec` with a CUSUM; a quiet
  /// prefix skips the full search (PR 3's `early_exit = true`).
  kFixed,
  /// Start from the fixed window but keep extending it while the CUSUM
  /// statistic sits in the uncertain band (early_exit_margin * h, h): very
  /// quiet flows exit at the minimum window, borderline flows buy accuracy
  /// with more bytes, and an alarm (or reaching the end of the series still
  /// uncertain) falls through to the full PELT search.
  kAdaptive,
};

[[nodiscard]] std::string_view to_string(EarlyExitPolicy p);
/// Parses "off" / "fixed" / "adaptive"; returns false on anything else.
[[nodiscard]] bool early_exit_policy_from_string(std::string_view s, EarlyExitPolicy& out);

struct ClassifyConfig {
  /// A flow counts as app-/rwnd-limited when the cumulative limited time
  /// exceeds this many seconds (the paper used "field > 0").
  double app_limited_threshold_sec{0.0};
  double rwnd_limited_threshold_sec{0.0};
  bool exclude_cellular{true};
  /// Flows shorter than this can't show multi-second dynamics.
  double min_duration_sec{2.0};
  /// A level shift counts if adjacent segment means differ by at least this
  /// fraction of the larger mean...
  double min_shift_fraction{0.25};
  /// ...and both segments persist at least this long.
  double min_segment_sec{1.0};
  /// PELT penalty scale (see detect_mean_shifts()).
  double sensitivity{1.0};

  /// TURBOTEST-style early exit (changepoint stage). kOff by default so
  /// results stay byte-identical to the full search; see EarlyExitPolicy.
  EarlyExitPolicy early_exit{EarlyExitPolicy::kOff};
  /// kFixed: the whole screen window. kAdaptive: the minimum window — the
  /// screen extends past it in window-sized steps while undecided.
  double early_exit_window_sec{5.0};
  /// kAdaptive only: the quiet bar, as a fraction of the alarm threshold h.
  /// A flow exits early at a checkpoint only if its peak CUSUM statistic so
  /// far stays below margin * h. Smaller margin = stricter quiet test =
  /// more bytes read and fewer missed late shifts.
  double early_exit_margin{0.5};
};

struct FlowFinding {
  std::uint64_t id{0};
  Verdict verdict{Verdict::kNoLevelShift};
  std::vector<double> shift_times_sec;   ///< accepted change points
  std::vector<double> shift_magnitudes;  ///< |mean_after/mean_before - 1|
  mlab::FlowArchetype truth{};           ///< copied from the record
  bool early_exited{false};              ///< CUSUM screen skipped the search
  std::uint32_t samples_scanned{0};      ///< series samples actually read
};

/// Classify stage alone: the aggregate-only decision tree. Returns one of
/// the kFiltered* verdicts, or kNoLevelShift meaning "residual — hand the
/// flow to the changepoint stage".
[[nodiscard]] Verdict classify_filters(const store::FlowView& flow, const ClassifyConfig& cfg);

/// Changepoint stage alone (precondition: classify_filters said residual).
/// The log series, noise scratch, cost prefixes, and PELT state all come
/// from `ws` — zero heap allocation per flow once the workspace has warmed
/// up. (The FlowFinding's own shift vectors still allocate; they are the
/// output, not scratch.) The throwaway-workspace overload was deleted in
/// PR 7: every caller goes through a workspace (or the AnalyzeStage that
/// owns one) now.
[[nodiscard]] FlowFinding detect_changepoints(const store::FlowView& flow,
                                              const ClassifyConfig& cfg,
                                              changepoint::ChangepointWorkspace& ws);

/// Bounded-memory online variant for the streaming daemon: the same
/// early-exit screen, then windowed PELT over a ring of the most recent
/// `window_samples` log-samples instead of one full-series search. Scratch
/// stays O(window_samples) regardless of series length. window_samples == 0
/// (or >= the series length) delegates to the offline search — results are
/// then byte-identical; smaller windows trade boundary-effect agreement for
/// the memory bound (the agreement suite in tests/ingest_test.cpp pins the
/// rate).
[[nodiscard]] FlowFinding detect_changepoints_streamed(const store::FlowView& flow,
                                                       const ClassifyConfig& cfg,
                                                       changepoint::ChangepointWorkspace& ws,
                                                       std::size_t window_samples);

/// Both stages composed: the per-flow unit of the pipeline (one-off calls;
/// batch consumers construct an AnalyzeStage, which reuses one workspace).
[[nodiscard]] FlowFinding classify_flow(const store::FlowView& flow, const ClassifyConfig& cfg);
[[nodiscard]] FlowFinding classify_flow(const mlab::NdtRecord& rec, const ClassifyConfig& cfg);

}  // namespace ccc::pipeline
