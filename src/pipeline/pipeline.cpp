#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "pipeline/stage.hpp"

namespace ccc::pipeline {

namespace {

struct ShardResult {
  AnalysisTallies tallies;
  telemetry::MetricRegistry metrics;
};

}  // namespace

double PipelineResult::precision() const {
  const auto denom = true_positives + false_positives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(denom);
}

double PipelineResult::recall() const {
  const auto denom = true_positives + false_negatives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(denom);
}

double PipelineResult::filtered_fraction() const {
  if (flows == 0) return 0.0;
  const std::uint64_t unfiltered =
      verdicts[static_cast<std::size_t>(Verdict::kNoLevelShift)] +
      verdicts[static_cast<std::size_t>(Verdict::kContentionSuspect)];
  return static_cast<double>(flows - unfiltered) / static_cast<double>(flows);
}

std::map<Verdict, std::size_t> PipelineResult::verdict_map() const {
  std::map<Verdict, std::size_t> out;
  for (std::size_t v = 0; v < kVerdictCount; ++v) {
    if (verdicts[v] > 0) out[static_cast<Verdict>(v)] = verdicts[v];
  }
  return out;
}

PipelineResult run_pipeline(const FlowSource& src, const PipelineConfig& cfg) {
  const std::size_t n = src.size();
  const std::size_t shard_flows = std::max<std::size_t>(1, cfg.shard_flows);
  const std::size_t n_shards = (n + shard_flows - 1) / shard_flows;

  runner::ExperimentRunner runner{{cfg.jobs, cfg.on_progress}};

  // One task per shard, each a self-contained stage-API client: a RangePull
  // over the shard's index slice drained through one AnalyzeStage (which
  // owns the shard's ChangepointWorkspace — scratch reused allocation-free
  // across the shard's flows). Workers share nothing; one flush at shard
  // end settles the shard's MetricRegistry, exactly the old per-shard
  // export. Nothing is shared until the ordered merge below.
  auto shard_results = runner.map<ShardResult>(n_shards, [&](std::size_t s) {
    const std::size_t begin = s * shard_flows;
    const std::size_t end = std::min(n, begin + shard_flows);
    StageOptions opts;
    opts.classify = cfg.classify;
    opts.keep_findings = cfg.keep_findings;
    opts.enable_telemetry = cfg.enable_telemetry;
    opts.validate_records = cfg.validate_records;
    opts.strict = cfg.strict;
    opts.index_offset = begin;
    AnalyzeStage stage{std::move(opts)};
    if (cfg.keep_findings) stage.reserve_findings(end - begin);
    RangePull pull{src, begin, end, cfg.readahead_flows};
    drain(pull, stage);
    stage.flush(s);
    return ShardResult{std::move(stage.tallies()), std::move(stage.metrics())};
  });

  // Ordered reduction: shard index order, independent of completion order.
  PipelineResult out;
  out.flows = n;
  out.shards = n_shards;
  out.jobs = runner.jobs();
  if (cfg.keep_findings) out.findings.reserve(n);
  for (auto& r : shard_results) {
    AnalysisTallies& s = r.tallies;
    for (std::size_t v = 0; v < kVerdictCount; ++v) out.verdicts[v] += s.verdicts[v];
    for (std::size_t a = 0; a < out.confusion.size(); ++a) {
      for (std::size_t v = 0; v < kVerdictCount; ++v) out.confusion[a][v] += s.confusion[a][v];
    }
    out.true_positives += s.tp;
    out.false_positives += s.fp;
    out.false_negatives += s.fn;
    out.true_negatives += s.tn;
    out.changepoints_total += s.changepoints;
    out.early_exits += s.early_exits;
    out.samples_scanned += s.samples_scanned;
    out.records_corrupt += s.records_corrupt;
    std::move(s.findings.begin(), s.findings.end(), std::back_inserter(out.findings));
    if (cfg.enable_telemetry) out.metrics.merge_from(r.metrics);
  }
  return out;
}

}  // namespace ccc::pipeline
