#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <string>

#include "util/error.hpp"

namespace ccc::pipeline {

namespace {

/// Gatekeeper for cfg.validate_records: is this FlowView safe to hand to
/// the stages? Two classes of damage get through the shard-level checks
/// (CRC off, an in-memory source fed by a hostile CSV): non-finite scalars
/// that would poison every mean downstream, and out-of-range enum bytes —
/// `truth` indexes the confusion matrix, so an unchecked byte of 200 is an
/// out-of-bounds write, not just a wrong answer.
bool record_is_sane(const store::FlowView& f) {
  if (static_cast<std::uint8_t>(f.access) > static_cast<std::uint8_t>(mlab::AccessType::kSatellite))
    return false;
  if (static_cast<std::uint8_t>(f.truth) > static_cast<std::uint8_t>(mlab::FlowArchetype::kPoliced))
    return false;
  if (!std::isfinite(f.duration_sec) || f.duration_sec < 0.0) return false;
  if (!std::isfinite(f.app_limited_sec) || !std::isfinite(f.rwnd_limited_sec)) return false;
  if (!std::isfinite(f.mean_throughput_mbps) || !std::isfinite(f.min_rtt_ms)) return false;
  if (!std::isfinite(f.snapshot_interval_sec) || f.snapshot_interval_sec <= 0.0) return false;
  return true;
}

/// Bounds for the shift-magnitude histogram. Fixed at registration (and
/// identical across shards) so shard merges are exact and two runs always
/// bucket identically. Magnitudes live in (min_shift_fraction, 1].
const std::vector<double>& magnitude_bounds() {
  static const std::vector<double> bounds = {0.25, 0.35, 0.45, 0.55, 0.65,
                                             0.75, 0.85, 0.95, 1.0};
  return bounds;
}

/// The Sink stage: everything one shard accumulates. Workers share nothing;
/// the merge below folds these in shard index order.
struct ShardSink {
  std::array<std::uint64_t, kVerdictCount> verdicts{};
  std::array<std::array<std::uint64_t, kVerdictCount>, 7> confusion{};
  std::uint64_t tp{0};
  std::uint64_t fp{0};
  std::uint64_t fn{0};
  std::uint64_t tn{0};
  std::uint64_t changepoints{0};
  std::uint64_t early_exits{0};
  std::uint64_t samples_scanned{0};
  std::uint64_t records_corrupt{0};
  std::vector<double> magnitudes;  // flushed into the histogram at shard end
  std::vector<FlowFinding> findings;

  void accumulate(FlowFinding&& f, bool truly_contended, bool keep) {
    const auto v = static_cast<std::size_t>(f.verdict);
    ++verdicts[v];
    ++confusion[static_cast<std::size_t>(f.truth)][v];
    const bool flagged = f.verdict == Verdict::kContentionSuspect;
    tp += static_cast<std::uint64_t>(flagged && truly_contended);
    fp += static_cast<std::uint64_t>(flagged && !truly_contended);
    fn += static_cast<std::uint64_t>(!flagged && truly_contended);
    tn += static_cast<std::uint64_t>(!flagged && !truly_contended);
    changepoints += f.shift_times_sec.size();
    early_exits += static_cast<std::uint64_t>(f.early_exited);
    samples_scanned += f.samples_scanned;
    magnitudes.insert(magnitudes.end(), f.shift_magnitudes.begin(), f.shift_magnitudes.end());
    if (keep) findings.push_back(std::move(f));
  }
};

struct ShardResult {
  ShardSink sink;
  telemetry::MetricRegistry metrics;
};

/// Flushes a shard's tallies into its registry once, at shard end — the
/// per-flow hot loop stays plain integer adds, no map lookups.
void export_metrics(const ShardSink& sink, std::uint64_t shard_flows,
                    telemetry::MetricRegistry& reg) {
  reg.counter("pipeline.flows").inc(shard_flows);
  for (std::size_t v = 0; v < kVerdictCount; ++v) {
    reg.counter(std::string{"pipeline.verdict."} + std::string{to_string(static_cast<Verdict>(v))})
        .inc(sink.verdicts[v]);
  }
  const std::uint64_t residual = sink.verdicts[static_cast<std::size_t>(Verdict::kNoLevelShift)] +
                                 sink.verdicts[static_cast<std::size_t>(Verdict::kContentionSuspect)];
  reg.counter("pipeline.residual_flows").inc(residual);
  reg.counter("pipeline.changepoints").inc(sink.changepoints);
  reg.counter("pipeline.early_exits").inc(sink.early_exits);
  reg.counter("pipeline.samples_scanned").inc(sink.samples_scanned);
  reg.counter("store.records_corrupt").inc(sink.records_corrupt);
  auto& hist = reg.histogram("pipeline.shift_magnitude", magnitude_bounds());
  for (const double m : sink.magnitudes) hist.observe(m);
}

}  // namespace

double PipelineResult::precision() const {
  const auto denom = true_positives + false_positives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(denom);
}

double PipelineResult::recall() const {
  const auto denom = true_positives + false_negatives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(denom);
}

double PipelineResult::filtered_fraction() const {
  if (flows == 0) return 0.0;
  const std::uint64_t unfiltered =
      verdicts[static_cast<std::size_t>(Verdict::kNoLevelShift)] +
      verdicts[static_cast<std::size_t>(Verdict::kContentionSuspect)];
  return static_cast<double>(flows - unfiltered) / static_cast<double>(flows);
}

std::map<Verdict, std::size_t> PipelineResult::verdict_map() const {
  std::map<Verdict, std::size_t> out;
  for (std::size_t v = 0; v < kVerdictCount; ++v) {
    if (verdicts[v] > 0) out[static_cast<Verdict>(v)] = verdicts[v];
  }
  return out;
}

PipelineResult run_pipeline(const FlowSource& src, const PipelineConfig& cfg) {
  const std::size_t n = src.size();
  const std::size_t shard_flows = std::max<std::size_t>(1, cfg.shard_flows);
  const std::size_t n_shards = (n + shard_flows - 1) / shard_flows;

  runner::ExperimentRunner runner{{cfg.jobs, cfg.on_progress}};

  // One task per shard: Source -> Classify -> Changepoint -> Sink, all
  // inside the worker; nothing is shared until the ordered merge below.
  auto shard_results = runner.map<ShardResult>(n_shards, [&](std::size_t s) {
    const std::size_t begin = s * shard_flows;
    const std::size_t end = std::min(n, begin + shard_flows);
    ShardResult r;
    if (cfg.keep_findings) r.sink.findings.reserve(end - begin);
    // One workspace per shard: the changepoint stage's scratch (log series,
    // cost prefixes, PELT state) grows to the shard's longest flow and is
    // then reused allocation-free. Shards share nothing, so no locking.
    changepoint::ChangepointWorkspace ws;
    // Stage the first window up front, then keep exactly one window of
    // readahead in flight: at every window boundary, hint the next one
    // while this one is being analyzed.
    const std::size_t window = cfg.readahead_flows;
    if (window > 0) src.prefetch(begin, std::min(end, begin + window));
    for (std::size_t i = begin; i < end; ++i) {
      if (window > 0 && (i - begin) % window == 0 && i + window < end) {
        src.prefetch(i + window, std::min(end, i + 2 * window));
      }
      const store::FlowView flow = src.flow(i);  // Source
      if (cfg.validate_records && !record_is_sane(flow)) {
        if (cfg.strict) {
          throw Error::corruption(
              "", "pipeline: corrupt record at flow index " + std::to_string(i) +
                      " (id " + std::to_string(flow.id) + ")");
        }
        ++r.sink.records_corrupt;
        continue;
      }
      const Verdict filter = classify_filters(flow, cfg.classify);  // Classify
      FlowFinding f;
      if (filter != Verdict::kNoLevelShift) {
        f.id = flow.id;
        f.truth = flow.truth;
        f.verdict = filter;
      } else {
        f = detect_changepoints(flow, cfg.classify, ws);  // Changepoint
      }
      const bool truly = flow.truth == mlab::FlowArchetype::kBulkContended;
      r.sink.accumulate(std::move(f), truly, cfg.keep_findings);  // Sink
    }
    if (cfg.enable_telemetry) export_metrics(r.sink, end - begin, r.metrics);
    return r;
  });

  // Ordered reduction: shard index order, independent of completion order.
  PipelineResult out;
  out.flows = n;
  out.shards = n_shards;
  out.jobs = runner.jobs();
  if (cfg.keep_findings) out.findings.reserve(n);
  for (auto& r : shard_results) {
    ShardSink& s = r.sink;
    for (std::size_t v = 0; v < kVerdictCount; ++v) out.verdicts[v] += s.verdicts[v];
    for (std::size_t a = 0; a < out.confusion.size(); ++a) {
      for (std::size_t v = 0; v < kVerdictCount; ++v) out.confusion[a][v] += s.confusion[a][v];
    }
    out.true_positives += s.tp;
    out.false_positives += s.fp;
    out.false_negatives += s.fn;
    out.true_negatives += s.tn;
    out.changepoints_total += s.changepoints;
    out.early_exits += s.early_exits;
    out.samples_scanned += s.samples_scanned;
    out.records_corrupt += s.records_corrupt;
    std::move(s.findings.begin(), s.findings.end(), std::back_inserter(out.findings));
    if (cfg.enable_telemetry) out.metrics.merge_from(r.metrics);
  }
  return out;
}

}  // namespace ccc::pipeline
