// The streaming stage interface — one analysis API under the offline
// pipeline, the legacy passive study, and the ingest daemon.
//
// PR 3's pipeline hard-wired "index a FlowSource from begin to end" into
// run_pipeline and duplicated the per-record loop in run_passive_study. A
// long-running service can't be written against that shape: its input has
// no size(), arrives in bursts, and never ends. This header splits the loop
// into the two halves every client composes:
//
//   PullSource  — "give me up to N flows"; reports kBlocked (stream idle,
//                 more may come) and kEnd (exhausted) instead of assuming a
//                 finite index space. RangePull adapts the old indexed
//                 FlowSource (and absorbs its readahead hint logic), so the
//                 offline pipeline is just a RangePull per shard; the ingest
//                 sources (spool / stdin / socket, src/ingest/) are the
//                 unbounded implementations.
//   PushStage   — "here is one flow"; flush(epoch) marks an explicit
//                 epoch/flush boundary (metrics export, shard rotation —
//                 whatever the stage owes the outside world), and
//                 backpressure() tells the driver to stop pulling until the
//                 stage drains. AnalyzeStage is the Classify+Changepoint+
//                 tally stage every client shares.
//
// Determinism contract: AnalyzeStage's tallies depend only on the sequence
// of flows pushed (never on batch sizes, pull timing, or flush placement —
// flush only exports counter deltas). That is what makes the sharded
// pipeline byte-identical at any --jobs and the daemon's wide-window replay
// byte-identical to offline fig2.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "changepoint/workspace.hpp"
#include "pipeline/classify.hpp"
#include "pipeline/source.hpp"
#include "telemetry/metrics.hpp"

namespace ccc::pipeline {

enum class StreamState : std::uint8_t {
  kReady,    ///< more flows are available now — pull again
  kBlocked,  ///< none right now, but the stream is still open (poll later)
  kEnd,      ///< exhausted — no flow will ever follow
};

struct PullResult {
  std::size_t n{0};  ///< flows appended to the batch by this pull
  StreamState state{StreamState::kEnd};
};

/// Where flows come from, stream-shaped. Implementations append up to `max`
/// FlowViews to `out` (which the caller clears or drains between pulls) and
/// say whether more can follow. Views stay valid until the next pull on the
/// same source — long enough to push them through a stage, which is the
/// only thing drivers do with a batch.
class PullSource {
 public:
  virtual ~PullSource() = default;
  virtual PullResult pull(std::vector<store::FlowView>& out, std::size_t max) = 0;
};

/// Adapter: a contiguous index range [begin, end) of an indexed FlowSource
/// as a PullSource. Owns the one-window-ahead readahead hinting that used to
/// live inline in run_pipeline: with `readahead` > 0, the first window is
/// staged up front and each window boundary crossed hints the next one, so
/// cold-cache page faults overlap with analysis. Views stay valid for the
/// backing source's lifetime (both implementations are span/mmap-backed).
class RangePull final : public PullSource {
 public:
  RangePull(const FlowSource& src, std::size_t begin, std::size_t end, std::size_t readahead)
      : src_{src}, begin_{begin}, next_{begin}, end_{end}, readahead_{readahead} {}

  PullResult pull(std::vector<store::FlowView>& out, std::size_t max) override;

 private:
  const FlowSource& src_;
  std::size_t begin_;
  std::size_t next_;
  std::size_t end_;
  std::size_t readahead_;
  bool primed_{false};
};

/// Everything the analysis stage accumulates — the per-shard sink of PR 3,
/// now the unit any client (shard worker, study adapter, daemon epoch) folds
/// from. Plain integer adds in the hot path; no telemetry map lookups.
struct AnalysisTallies {
  /// Every flow pushed, including ones dropped as corrupt. (The verdict
  /// counts exclude dropped records; "pipeline.flows" must not, to match
  /// the shard accounting the jobs-identity tests pin.)
  std::uint64_t flows_seen{0};
  std::array<std::uint64_t, kVerdictCount> verdicts{};
  /// confusion[archetype][verdict] — ground-truth breakdown.
  std::array<std::array<std::uint64_t, kVerdictCount>, 7> confusion{};
  std::uint64_t tp{0};
  std::uint64_t fp{0};
  std::uint64_t fn{0};
  std::uint64_t tn{0};
  std::uint64_t changepoints{0};
  std::uint64_t early_exits{0};
  std::uint64_t samples_scanned{0};
  std::uint64_t records_corrupt{0};
  std::vector<double> magnitudes;  ///< accepted shift magnitudes, push order
  std::vector<FlowFinding> findings;  ///< push order; kept only on request
};

struct StageOptions {
  ClassifyConfig classify{};
  /// Keep the per-flow findings list. Dominant memory cost at scale, and a
  /// daemon must never set it (unbounded growth) — opt-in.
  bool keep_findings{false};
  /// Export counter deltas into the stage's MetricRegistry on flush().
  bool enable_telemetry{true};
  /// Sanity-check records before the stages see them (finite scalars,
  /// in-range enum bytes); failures are counted and skipped...
  bool validate_records{true};
  /// ...or, under strict, thrown as ccc::Error{kCorruption}.
  bool strict{false};
  /// Changepoint search window in samples: 0 = offline full-series PELT;
  /// nonzero = bounded-memory windowed search (detect_changepoints_streamed)
  /// — the daemon's mode, where scratch must not scale with flow length.
  std::size_t window_samples{0};
  /// Added to the stream-local record index in strict error messages, so a
  /// shard worker reports the global flow index.
  std::uint64_t index_offset{0};
};

/// Where flows go, stream-shaped. push() takes exactly one record; flush()
/// marks an epoch boundary at which the stage settles external effects
/// (metric export, shard rotation, report rows). backpressure() = "stop
/// pulling until I drain" — advisory, drivers poll it between batches.
class PushStage {
 public:
  virtual ~PushStage() = default;
  virtual void push(const store::FlowView& flow) = 0;
  virtual void flush(std::uint64_t epoch) = 0;
  [[nodiscard]] virtual bool backpressure() const { return false; }
};

/// The shared analysis stage: validate → Classify (§3.1 filters) →
/// Changepoint (offline or windowed per StageOptions::window_samples) →
/// tally. Owns one ChangepointWorkspace, reused allocation-free across
/// every flow pushed. flush() exports the tallies accrued *since the last
/// flush* as counter increments (plus histogram observes), so one flush at
/// stream end reproduces the old per-shard export exactly and a daemon
/// flushing every epoch accumulates identical totals.
class AnalyzeStage final : public PushStage {
 public:
  explicit AnalyzeStage(StageOptions opts) : opts_{std::move(opts)} {}

  void push(const store::FlowView& flow) override;
  void flush(std::uint64_t epoch) override;

  [[nodiscard]] const AnalysisTallies& tallies() const { return tallies_; }
  [[nodiscard]] AnalysisTallies& tallies() { return tallies_; }
  [[nodiscard]] telemetry::MetricRegistry& metrics() { return metrics_; }
  [[nodiscard]] const telemetry::MetricRegistry& metrics() const { return metrics_; }
  [[nodiscard]] const StageOptions& options() const { return opts_; }
  void reserve_findings(std::size_t n) { tallies_.findings.reserve(n); }

 private:
  StageOptions opts_;
  changepoint::ChangepointWorkspace ws_;
  AnalysisTallies tallies_;
  telemetry::MetricRegistry metrics_;
  // Flush watermarks: scalar values already exported, so flush() can emit
  // deltas without a second accumulation pass in the hot loop.
  AnalysisTallies exported_;
  std::size_t magnitudes_exported_{0};
};

/// drain()'s default batch size. Exposed because ShardSet clamps a
/// windowed reader's window to at least this many flows: an ascending
/// batch no larger than the window slides it at most once, and the
/// double-buffered window keeps spans alive across exactly one slide —
/// together that is the whole span-safety argument for windowed scans.
inline constexpr std::size_t kDrainBatchFlows = 256;

/// Drives a PullSource through a stage until it stops being kReady: pull a
/// batch, push each flow, repeat. Returns the number of flows pushed this
/// call. Finite sources run to kEnd; a kBlocked stream returns control to
/// the caller (which owns the wait/backpressure policy — see IngestDaemon
/// for the polling client). Flush placement is also the caller's: drain()
/// never flushes.
std::size_t drain(PullSource& src, PushStage& stage, std::size_t batch_flows = kDrainBatchFlows);

}  // namespace ccc::pipeline
