// ShardSet — the pipeline's fault-tolerant shard-opening stage.
//
// A million-flow run reads dozens of ccfs shards, and at M-Lab scale some
// of them WILL be bad: torn by a crashed ingest, bit-flipped by storage, or
// plain unreadable. Before this layer, the first bad shard's exception
// killed the whole run. ShardSet opens every path and applies the run's
// degradation policy:
//
//   degrade (default)  a shard that fails to open or validate is skipped;
//                      the failure is recorded (path, category, detail),
//                      counted in the registry ("pipeline.shards_failed"),
//                      and the run proceeds on the surviving shards
//   strict             the first failure rethrows its ccc::Error — the
//                      fail-fast behaviour batch jobs with a human watching
//                      want (`--strict` in the benches)
//
// Either way "store.shards_opened" counts the healthy shards, so a report
// always states how much of the dataset was actually analyzed — a degraded
// run is distinguishable from a complete one.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "pipeline/source.hpp"
#include "telemetry/metrics.hpp"
#include "util/error.hpp"

namespace ccc::pipeline {

/// One shard the set could not open, reduced to report-friendly fields.
struct ShardFailure {
  std::string path;
  ErrorCategory category{ErrorCategory::kIo};
  std::string detail;  ///< the Error's rendered what() text
};

struct ShardOpenOptions {
  /// Rethrow the first shard's ccc::Error instead of skipping it.
  bool strict{false};
  /// Verify each shard's footer CRC at open (the corruption gate; turning
  /// it off is only sane for stores freshly written by this process).
  bool verify_crc{true};
  /// Advise the kernel each shard will be scanned front to back (see
  /// store::ReaderOptions::sequential). Set by scan-everything consumers
  /// like the passive pipeline with readahead enabled.
  bool sequential{false};
  /// Nonzero opens each shard in windowed-pread mode (see
  /// store::ReaderOptions::readahead_flows): the series pool stays on disk
  /// and is fetched this many flows at a time, bounding per-shard memory
  /// to the scalar columns plus one window. The mode for past-RAM runs.
  /// Clamped up to the pipeline's drain batch size (kDrainBatchFlows) so
  /// a batch of in-flight FlowViews never outlives its window.
  std::size_t readahead_flows{0};
};

/// Owns the readers for a list of ccfs shard paths and presents the healthy
/// subset as one concatenated FlowSource. Move-only; the source() reference
/// is valid for the lifetime of the set.
class ShardSet {
 public:
  /// Opens every path under `opts`. In degrade mode failures are collected
  /// in failures() instead of thrown. When `metrics` is non-null, bumps
  /// "store.shards_opened" per healthy shard and "pipeline.shards_failed"
  /// per skipped one.
  [[nodiscard]] static ShardSet open(const std::vector<std::string>& paths,
                                     const ShardOpenOptions& opts = {},
                                     telemetry::MetricRegistry* metrics = nullptr);

  ShardSet() = default;
  ShardSet(ShardSet&&) = default;
  ShardSet& operator=(ShardSet&&) = default;
  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  [[nodiscard]] const FlowSource& source() const { return source_; }
  [[nodiscard]] std::size_t shards_opened() const { return readers_.size(); }
  [[nodiscard]] std::size_t flows() const { return source_.size(); }
  [[nodiscard]] const std::vector<ShardFailure>& failures() const { return failures_; }

 private:
  // std::deque: FlowStoreReader addresses must stay stable because
  // StoreSource holds pointers into the container.
  std::deque<store::FlowStoreReader> readers_;
  StoreSource source_;
  std::vector<ShardFailure> failures_;
};

}  // namespace ccc::pipeline
