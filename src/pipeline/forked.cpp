#include "pipeline/forked.hpp"

#include <cstdint>
#include <cstring>
#include <utility>

#include "runner/fork_map.hpp"
#include "util/error.hpp"

namespace ccc::pipeline {

namespace {

// ------------------------------------------------------------- wire form
//
// One child result blob = the shard's open bookkeeping + the aggregate
// PipelineResult (findings-free) + its merged MetricRegistry. Host-endian
// fixed-width fields: the blob lives for one pipe hop between a parent and
// its own fork, never touches disk or another machine. Doubles are moved
// bit-for-bit (memcpy), which is what makes the forked merge byte-identical
// to the in-process one.

class Writer {
 public:
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

class Reader {
 public:
  explicit Reader(const std::string& buf) : buf_{buf} {}
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }
  double f64() {
    double v;
    raw(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (n > buf_.size() - pos_) {
      throw Error::corruption("fork_map", "forked result blob truncated", pos_);
    }
    std::string s = buf_.substr(pos_, n);
    pos_ += n;
    return s;
  }

 private:
  void raw(void* p, std::size_t n) {
    if (n > buf_.size() - pos_) {
      throw Error::corruption("fork_map", "forked result blob truncated", pos_);
    }
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  const std::string& buf_;
  std::size_t pos_{0};
};

void put_registry(Writer& w, const telemetry::MetricRegistry& reg) {
  w.u64(reg.counters().size());
  for (const auto& [name, c] : reg.counters()) {
    w.str(name);
    w.u64(c.value());
  }
  w.u64(reg.gauges().size());
  for (const auto& [name, g] : reg.gauges()) {
    w.str(name);
    w.f64(g.value());
  }
  w.u64(reg.histograms().size());
  for (const auto& [name, h] : reg.histograms()) {
    w.str(name);
    w.u64(h.bounds().size());
    for (double b : h.bounds()) w.f64(b);
    for (std::uint64_t c : h.counts()) w.u64(c);  // bounds.size() + 1 entries
    w.u64(h.count());
    w.f64(h.sum());
  }
  // Traces are deliberately absent: MetricRegistry::merge_from drops them
  // too, so the pipe carries exactly what the merge can use.
}

void get_registry(Reader& r, telemetry::MetricRegistry& reg) {
  const std::uint64_t n_counters = r.u64();
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    const std::string name = r.str();
    reg.counter(name).set(r.u64());
  }
  const std::uint64_t n_gauges = r.u64();
  for (std::uint64_t i = 0; i < n_gauges; ++i) {
    const std::string name = r.str();
    reg.gauge(name).set(r.f64());
  }
  const std::uint64_t n_hists = r.u64();
  for (std::uint64_t i = 0; i < n_hists; ++i) {
    const std::string name = r.str();
    const std::uint64_t n_bounds = r.u64();
    std::vector<double> bounds(n_bounds);
    for (auto& b : bounds) b = r.f64();
    std::vector<std::uint64_t> counts(n_bounds + 1);
    for (auto& c : counts) c = r.u64();
    const std::uint64_t count = r.u64();
    const double sum = r.f64();
    auto h = telemetry::Histogram::from_parts(std::move(bounds), std::move(counts), count, sum);
    reg.histogram(name, h.bounds()).merge(h);
  }
}

struct ShardBlob {
  std::size_t shards_opened{0};
  std::vector<ShardFailure> failures;
  PipelineResult result;
};

std::string serialize(const ShardBlob& b) {
  Writer w;
  w.u64(b.shards_opened);
  w.u64(b.failures.size());
  for (const auto& f : b.failures) {
    w.str(f.path);
    w.u64(static_cast<std::uint64_t>(f.category));
    w.str(f.detail);
  }
  const PipelineResult& res = b.result;
  w.u64(res.flows);
  w.u64(res.shards);
  for (std::uint64_t v : res.verdicts) w.u64(v);
  for (const auto& row : res.confusion) {
    for (std::uint64_t v : row) w.u64(v);
  }
  w.u64(res.true_positives);
  w.u64(res.false_positives);
  w.u64(res.false_negatives);
  w.u64(res.true_negatives);
  w.u64(res.changepoints_total);
  w.u64(res.early_exits);
  w.u64(res.samples_scanned);
  w.u64(res.records_corrupt);
  put_registry(w, res.metrics);
  return w.take();
}

ShardBlob deserialize(const std::string& blob) {
  Reader r{blob};
  ShardBlob b;
  b.shards_opened = r.u64();
  const std::uint64_t n_failures = r.u64();
  for (std::uint64_t i = 0; i < n_failures; ++i) {
    ShardFailure f;
    f.path = r.str();
    f.category = static_cast<ErrorCategory>(r.u64());
    f.detail = r.str();
    b.failures.push_back(std::move(f));
  }
  PipelineResult& res = b.result;
  res.flows = r.u64();
  res.shards = r.u64();
  for (auto& v : res.verdicts) v = r.u64();
  for (auto& row : res.confusion) {
    for (auto& v : row) v = r.u64();
  }
  res.true_positives = r.u64();
  res.false_positives = r.u64();
  res.false_negatives = r.u64();
  res.true_negatives = r.u64();
  res.changepoints_total = r.u64();
  res.early_exits = r.u64();
  res.samples_scanned = r.u64();
  res.records_corrupt = r.u64();
  get_registry(r, res.metrics);
  return b;
}

}  // namespace

ForkedRunResult run_pipeline_forked(const std::vector<std::string>& shard_paths,
                                    const PipelineConfig& cfg,
                                    const ShardOpenOptions& open_opts, std::size_t procs) {
  if (cfg.keep_findings) {
    throw Error::config("fork_map",
                        "pipeline: keep_findings is not supported in forked mode (per-flow "
                        "findings are the memory cost this runner exists to avoid)");
  }

  // One task per ccfs shard — the procs-independent decomposition that
  // makes the merged result identical for any --procs (header comment).
  const auto blobs = runner::fork_map(
      shard_paths.size(), procs, [&](std::size_t i) -> std::string {
        telemetry::MetricRegistry io_metrics;
        const auto set = ShardSet::open({shard_paths[i]}, open_opts, &io_metrics);
        ShardBlob b;
        b.shards_opened = set.shards_opened();
        b.failures = set.failures();
        if (set.shards_opened() > 0) {
          PipelineConfig child_cfg = cfg;
          child_cfg.jobs = 1;  // the process IS the parallelism unit
          child_cfg.on_progress = {};
          b.result = run_pipeline(set.source(), child_cfg);
        }
        // Fold open bookkeeping into the shard's metrics, exactly as the
        // in-process fig2 path folds its io_metrics after run_pipeline.
        if (cfg.enable_telemetry) b.result.metrics.merge_from(io_metrics);
        return serialize(b);
      });

  // Ordered reduction in shard order — the same folds as run_pipeline's.
  ForkedRunResult out;
  out.result.jobs = 1;
  for (const auto& blob : blobs) {
    ShardBlob b = deserialize(blob);
    out.shards_opened += b.shards_opened;
    for (auto& f : b.failures) out.failures.push_back(std::move(f));
    PipelineResult& res = out.result;
    const PipelineResult& s = b.result;
    res.flows += s.flows;
    res.shards += s.shards;
    for (std::size_t v = 0; v < kVerdictCount; ++v) res.verdicts[v] += s.verdicts[v];
    for (std::size_t a = 0; a < res.confusion.size(); ++a) {
      for (std::size_t v = 0; v < kVerdictCount; ++v) res.confusion[a][v] += s.confusion[a][v];
    }
    res.true_positives += s.true_positives;
    res.false_positives += s.false_positives;
    res.false_negatives += s.false_negatives;
    res.true_negatives += s.true_negatives;
    res.changepoints_total += s.changepoints_total;
    res.early_exits += s.early_exits;
    res.samples_scanned += s.samples_scanned;
    res.records_corrupt += s.records_corrupt;
    res.metrics.merge_from(s.metrics);
  }
  return out;
}

}  // namespace ccc::pipeline
