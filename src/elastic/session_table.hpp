// SessionTable: the multiplexing layer of the elasticity service. Thousands
// of concurrent probe sessions share ONE DetectorGeometry (all the trig
// tables) and stream z samples through per-session IncrementalDetectors;
// each session carries a streaming verdict state machine on top of eta.
//
// Verdict machine: every post-warmup sample produces an eta evaluation; the
// boolean (eta >= kElasticThreshold) feeds an EWMA `frac`. The session is
//   elastic    when frac >= elastic_frac   (default 0.60)
//   inelastic  when frac <= inelastic_frac (default 0.40)
//   mixed      in between — genuinely alternating cross traffic
// and warming until the detector's window first fills. Confidence is the
// distance from maximal uncertainty: 2 * |frac - 0.5|.
//
// Determinism: the table is single-threaded by design (one table per worker,
// like MetricRegistry); all state advances only on feed(), so identical feed
// sequences produce identical verdict streams at any --jobs count.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "elastic/detector.hpp"
#include "telemetry/metrics.hpp"
#include "util/units.hpp"

namespace ccc::telemetry {
class RunReport;
}  // namespace ccc::telemetry

namespace ccc::elastic {

enum class Verdict : std::uint8_t { kWarming = 0, kElastic, kInelastic, kMixed };

[[nodiscard]] std::string_view verdict_name(Verdict v);

/// Streaming classification state of one session.
struct SessionStatus {
  Verdict verdict{Verdict::kWarming};
  double eta{0.0};         ///< latest evaluation
  double frac_elastic{0.0};///< EWMA of (eta >= threshold); 0 until warm
  double confidence{0.0};  ///< 2 * |frac - 0.5|, in [0, 1]
  std::uint64_t samples{0};///< z samples absorbed
  std::uint64_t updates{0};///< verdict evaluations (post-warmup samples)
};

struct SessionTableConfig {
  DetectorConfig detector{};
  double elastic_frac{0.6};
  double inelastic_frac{0.4};
  /// EWMA step for frac_elastic. 0 = 1/window_len (one-window memory).
  double ewma_alpha{0.0};
};

/// Handle to a session. Slot-reuse safe: a freed slot's generation bumps, so
/// a stale id held across remove()/add() never aliases the new occupant.
using SessionId = std::uint64_t;

class SessionTable {
 public:
  /// `metrics` is optional; when given, the table maintains
  /// elastic.sessions_added / elastic.sessions_removed /
  /// elastic.verdict_updates counters and elastic.live_sessions plus
  /// per-verdict gauges in it.
  explicit SessionTable(const SessionTableConfig& cfg,
                        telemetry::MetricRegistry* metrics = nullptr);

  /// Creates (or revives a freed slot for) a session. O(1) amortized; the
  /// detector's rings are recycled, not reallocated.
  SessionId add_session();
  /// Frees the session's slot for reuse. Throws Error (kConfig) on a stale
  /// or unknown id.
  void remove_session(SessionId id);

  /// Streams a batch of z samples through one session, advancing its
  /// verdict once per post-warmup sample. Returns the number of verdict
  /// evaluations performed.
  std::size_t feed(SessionId id, std::span<const double> z);

  [[nodiscard]] const SessionStatus& status(SessionId id) const;
  [[nodiscard]] const IncrementalDetector& detector(SessionId id) const;
  [[nodiscard]] std::size_t live_sessions() const { return live_; }
  [[nodiscard]] std::uint64_t total_updates() const { return total_updates_; }
  [[nodiscard]] const DetectorGeometry& geometry() const { return *geometry_; }
  [[nodiscard]] const SessionTableConfig& config() const { return cfg_; }

  /// Number of live sessions currently holding each verdict. Maintained
  /// incrementally on verdict transitions (O(1) per feed, not per-slot).
  struct VerdictCounts {
    std::uint64_t warming{0};
    std::uint64_t elastic{0};
    std::uint64_t inelastic{0};
    std::uint64_t mixed{0};
  };
  [[nodiscard]] const VerdictCounts& verdict_counts() const { return counts_; }

  /// Publishes the service snapshot as `<scope>` scalars in a RunReport:
  /// live_sessions, verdict_updates, and one row per verdict count.
  void publish(telemetry::RunReport& report, const std::string& scope, Time at) const;

 private:
  struct Slot {
    IncrementalDetector detector;
    SessionStatus status{};
    std::uint32_t generation{0};
    bool live{false};

    explicit Slot(std::shared_ptr<const DetectorGeometry> geom)
        : detector{std::move(geom)} {}
  };

  [[nodiscard]] Slot& slot_for(SessionId id);
  [[nodiscard]] const Slot& slot_for(SessionId id) const;
  [[nodiscard]] std::uint64_t& count_bucket(Verdict v);
  void sync_gauges();

  SessionTableConfig cfg_;
  double alpha_;
  std::shared_ptr<const DetectorGeometry> geometry_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_{0};
  std::uint64_t total_updates_{0};
  VerdictCounts counts_;

  telemetry::Counter* sessions_added_{nullptr};
  telemetry::Counter* sessions_removed_{nullptr};
  telemetry::Counter* verdict_updates_{nullptr};
  telemetry::MetricRegistry* metrics_{nullptr};
};

}  // namespace ccc::elastic
