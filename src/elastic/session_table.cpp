#include "elastic/session_table.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "telemetry/run_report.hpp"
#include "util/error.hpp"

namespace ccc::elastic {

namespace {

constexpr std::uint64_t kSlotMask = 0xffffffffull;

std::uint32_t slot_index(SessionId id) { return static_cast<std::uint32_t>(id & kSlotMask); }
std::uint32_t generation(SessionId id) { return static_cast<std::uint32_t>(id >> 32); }
SessionId make_id(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) | slot;
}

}  // namespace

std::string_view verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kWarming: return "warming";
    case Verdict::kElastic: return "elastic";
    case Verdict::kInelastic: return "inelastic";
    case Verdict::kMixed: return "mixed";
  }
  return "unknown";
}

SessionTable::SessionTable(const SessionTableConfig& cfg, telemetry::MetricRegistry* metrics)
    : cfg_{cfg},
      alpha_{cfg.ewma_alpha > 0.0 ? cfg.ewma_alpha
                                  : 1.0 / static_cast<double>(cfg.detector.window_len)},
      geometry_{std::make_shared<const DetectorGeometry>(cfg.detector)} {
  if (!(cfg_.inelastic_frac >= 0.0 && cfg_.inelastic_frac <= cfg_.elastic_frac &&
        cfg_.elastic_frac <= 1.0)) {
    throw Error::config("elastic.session_table",
                        "need 0 <= inelastic_frac <= elastic_frac <= 1");
  }
  if (metrics != nullptr && metrics->enabled()) {
    metrics_ = metrics;
    sessions_added_ = &metrics->counter("elastic.sessions_added");
    sessions_removed_ = &metrics->counter("elastic.sessions_removed");
    verdict_updates_ = &metrics->counter("elastic.verdict_updates");
  }
}

SessionTable::Slot& SessionTable::slot_for(SessionId id) {
  return const_cast<Slot&>(std::as_const(*this).slot_for(id));
}

const SessionTable::Slot& SessionTable::slot_for(SessionId id) const {
  const std::uint32_t idx = slot_index(id);
  if (idx >= slots_.size() || !slots_[idx].live || slots_[idx].generation != generation(id)) {
    throw Error::config("elastic.session_table",
                        "stale or unknown session id " + std::to_string(id));
  }
  return slots_[idx];
}

std::uint64_t& SessionTable::count_bucket(Verdict v) {
  switch (v) {
    case Verdict::kElastic: return counts_.elastic;
    case Verdict::kInelastic: return counts_.inelastic;
    case Verdict::kMixed: return counts_.mixed;
    case Verdict::kWarming: break;
  }
  return counts_.warming;
}

SessionId SessionTable::add_session() {
  std::uint32_t idx;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
    slots_[idx].detector.reset();
    slots_[idx].status = SessionStatus{};
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back(geometry_);
  }
  slots_[idx].live = true;
  ++live_;
  ++counts_.warming;
  if (sessions_added_ != nullptr) {
    sessions_added_->inc();
    sync_gauges();
  }
  return make_id(idx, slots_[idx].generation);
}

void SessionTable::remove_session(SessionId id) {
  Slot& s = slot_for(id);
  s.live = false;
  ++s.generation;  // invalidate outstanding ids for this slot
  --live_;
  --count_bucket(s.status.verdict);
  free_slots_.push_back(slot_index(id));
  if (sessions_removed_ != nullptr) {
    sessions_removed_->inc();
    sync_gauges();
  }
}

std::size_t SessionTable::feed(SessionId id, std::span<const double> z) {
  Slot& s = slot_for(id);
  std::size_t evals = 0;
  for (const double sample : z) {
    s.detector.push(sample);
    ++s.status.samples;
    if (!s.detector.ready()) continue;

    const double eta = s.detector.eta();
    const double elastic_sample = eta >= nimbus::kElasticThreshold ? 1.0 : 0.0;
    if (s.status.updates == 0) {
      // First evaluation seeds the EWMA directly — starting from 0 would
      // report "confidently inelastic" for a window regardless of the data.
      s.status.frac_elastic = elastic_sample;
    } else {
      s.status.frac_elastic += alpha_ * (elastic_sample - s.status.frac_elastic);
    }
    s.status.eta = eta;
    ++s.status.updates;
    ++evals;

    Verdict next = Verdict::kMixed;
    if (s.status.frac_elastic >= cfg_.elastic_frac) {
      next = Verdict::kElastic;
    } else if (s.status.frac_elastic <= cfg_.inelastic_frac) {
      next = Verdict::kInelastic;
    }
    if (next != s.status.verdict) {
      --count_bucket(s.status.verdict);
      ++count_bucket(next);
      s.status.verdict = next;
    }
    s.status.confidence = 2.0 * std::abs(s.status.frac_elastic - 0.5);
  }
  total_updates_ += evals;
  if (verdict_updates_ != nullptr && evals > 0) {
    verdict_updates_->inc(evals);
    sync_gauges();
  }
  return evals;
}

const SessionStatus& SessionTable::status(SessionId id) const { return slot_for(id).status; }

const IncrementalDetector& SessionTable::detector(SessionId id) const {
  return slot_for(id).detector;
}

void SessionTable::sync_gauges() {
  if (metrics_ == nullptr) return;
  metrics_->gauge("elastic.live_sessions").set(static_cast<double>(live_));
  metrics_->gauge("elastic.verdict.warming").set(static_cast<double>(counts_.warming));
  metrics_->gauge("elastic.verdict.elastic").set(static_cast<double>(counts_.elastic));
  metrics_->gauge("elastic.verdict.inelastic").set(static_cast<double>(counts_.inelastic));
  metrics_->gauge("elastic.verdict.mixed").set(static_cast<double>(counts_.mixed));
}

void SessionTable::publish(telemetry::RunReport& report, const std::string& scope,
                           Time at) const {
  const VerdictCounts& c = counts_;
  report.add_scalar(scope, "live_sessions", static_cast<double>(live_), at);
  report.add_scalar(scope, "verdict_updates", static_cast<double>(total_updates_), at);
  report.add_scalar(scope, "verdict_warming", static_cast<double>(c.warming), at);
  report.add_scalar(scope, "verdict_elastic", static_cast<double>(c.elastic), at);
  report.add_scalar(scope, "verdict_inelastic", static_cast<double>(c.inelastic), at);
  report.add_scalar(scope, "verdict_mixed", static_cast<double>(c.mixed), at);
}

}  // namespace ccc::elastic
