#include "elastic/detector.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace ccc::elastic {

namespace {

/// Precomputed constants for one generalized sliding-DFT frequency.
DetectorGeometry::Freq make_freq(double nu, std::size_t n) {
  DetectorGeometry::Freq f;
  f.rot = {std::cos(nu), std::sin(nu)};
  const double tail_angle = nu * static_cast<double>(n);
  f.tail = {std::cos(tail_angle), -std::sin(tail_angle)};
  return f;
}

/// One slide of S(nu): S' = rot * (S - x_old + x_new * tail). Written in
/// real arithmetic so the complex multiply cannot route through the
/// __muldc3 NaN machinery on the hot path.
inline void slide(std::complex<double>& s, const DetectorGeometry::Freq& f, double x_old,
                  double x_new) {
  const double ar = s.real() - x_old + x_new * f.tail.real();
  const double ai = s.imag() + x_new * f.tail.imag();
  s = {ar * f.rot.real() - ai * f.rot.imag(), ar * f.rot.imag() + ai * f.rot.real()};
}

}  // namespace

DetectorGeometry::DetectorGeometry(const DetectorConfig& cfg) : cfg_{cfg} {
  // The offline metric returns 0 below 16 samples; a detector that can never
  // produce a meaningful eta is a configuration error, not a session state.
  if (cfg.window_len < 16) {
    throw Error::config("elastic.detector",
                        "window_len " + std::to_string(cfg.window_len) + " < 16");
  }
  if (!(cfg.sample_hz > 0.0)) {
    throw Error::config("elastic.detector", "sample_hz must be > 0");
  }
  if (!(cfg.metric.pulse_hz > 0.0)) {
    throw Error::config("elastic.detector", "metric.pulse_hz must be > 0");
  }
  if (cfg.metric.signal_halfwidth_bins < 0) {
    throw Error::config("elastic.detector", "metric.signal_halfwidth_bins must be >= 0");
  }

  const std::size_t n = cfg.window_len;
  padded_n_ = next_pow2(n);
  const std::size_t size = padded_n_ / 2 + 1;  // one-sided spectrum length
  bin_hz_ = cfg.sample_hz / static_cast<double>(padded_n_);

  // Bin placement: identical expressions to elasticity_metric / bin_for,
  // including the clamp and the above-Nyquist harmonic skip.
  auto bin_for = [&](double hz) {
    const auto idx = static_cast<std::size_t>(std::llround(hz / bin_hz_));
    return std::min(idx, size - 1);
  };
  const std::size_t fp_bin = bin_for(cfg.metric.pulse_hz);
  const std::size_t h2_bin = bin_for(2.0 * cfg.metric.pulse_hz);
  h2_in_range_ = std::llround(2.0 * cfg.metric.pulse_hz / bin_hz_) <
                 static_cast<long long>(size);
  const std::size_t floor_bin = std::max<std::size_t>(bin_for(cfg.metric.noise_floor_hz), 1);
  const auto hw = static_cast<std::size_t>(cfg.metric.signal_halfwidth_bins);

  auto near = [&](std::size_t i, std::size_t center) {
    return i + hw >= center && i <= center + hw;
  };

  // Classify every one-sided bin; track the few the metric actually reads.
  std::vector<char> tracked(size, 0);
  std::vector<char> in_signal(size, 0);
  std::vector<char> subtract(size, 0);
  // Below the drift floor: outside the noise band, so their energy must be
  // subtracted from the Parseval total.
  for (std::size_t k = 0; k < floor_bin && k < size; ++k) {
    tracked[k] = 1;
    subtract[k] = 1;
  }
  // The fp signal window (peak search).
  for (std::size_t k = fp_bin > hw ? fp_bin - hw : 0; k <= fp_bin + hw && k < size; ++k) {
    tracked[k] = 1;
    in_signal[k] = 1;
  }
  // Noise-band exclusions around fp and (when representable) 2*fp.
  noise_count_ = 0;
  for (std::size_t k = floor_bin; k < size; ++k) {
    const bool excluded = near(k, fp_bin) || (h2_in_range_ && near(k, h2_bin));
    if (excluded) {
      tracked[k] = 1;
      subtract[k] = 1;
    } else {
      ++noise_count_;
    }
  }
  // DC and Nyquist close the Parseval fold regardless of the bands above.
  tracked[0] = 1;
  tracked[size - 1] = 1;

  // Hann table (n >= 16, so the symmetric formula's denominator is safe) and
  // its energy sum.
  const double n_real = static_cast<double>(n);
  std::vector<double> hann(n);
  hann_energy_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    hann[i] =
        0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * static_cast<double>(i) / (n_real - 1.0)));
    hann_energy_ += hann[i] * hann[i];
  }

  const double theta = 2.0 * std::numbers::pi / (n_real - 1.0);
  theta_ = make_freq(theta, n);
  two_theta_ = make_freq(2.0 * theta, n);

  for (std::size_t k = 0; k < size; ++k) {
    if (!tracked[k]) continue;
    Bin b;
    b.k = static_cast<std::uint32_t>(k);
    const double omega =
        2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(padded_n_);
    b.f0 = make_freq(omega, n);
    b.fm = make_freq(omega - theta, n);
    b.fp = make_freq(omega + theta, n);
    // W_k: the window's own DC response at omega_k, subtracted per eval
    // scaled by the (moving) window mean.
    std::complex<double> w{0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      const double ang = omega * static_cast<double>(i);
      w += hann[i] * std::complex<double>{std::cos(ang), -std::sin(ang)};
    }
    b.hann_dc = w;
    b.in_signal_window = in_signal[k] != 0;
    b.subtract_from_noise = subtract[k] != 0;
    if (k == 0) dc_pos_ = bins_.size();
    if (k == size - 1) nyq_pos_ = bins_.size();
    bins_.push_back(b);
  }

  rebase_interval_ = cfg.rebase_interval > 0 ? cfg.rebase_interval : 4 * n;
}

IncrementalDetector::IncrementalDetector(std::shared_ptr<const DetectorGeometry> geom)
    : geom_{std::move(geom)} {
  assert(geom_ != nullptr);
  ring_.assign(geom_->window_len(), 0.0);
  states_.assign(geom_->bins().size(), BinState{});
}

void IncrementalDetector::reset() {
  head_ = 0;
  count_ = 0;
  filled_ = false;
  pushes_ = 0;
  rebases_ = 0;
  since_rebase_ = 0;
  std::fill(ring_.begin(), ring_.end(), 0.0);
  std::fill(states_.begin(), states_.end(), BinState{});
  p0_ = q0_ = 0.0;
  p_theta_ = p_2theta_ = q_theta_ = q_2theta_ = {};
}

void IncrementalDetector::copy_window(std::vector<double>& out) const {
  out.clear();
  if (!filled_) {
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(count_));
    return;
  }
  const std::size_t n = ring_.size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(head_ + i) % n]);
}

void IncrementalDetector::rebuild_states() {
  const auto& g = *geom_;
  const std::size_t n = ring_.size();

  // Exact generalized DFT of the window (and its square) at one frequency,
  // phasor-stepped — a fresh O(n * eps) error, resetting the slide drift.
  auto dft_at = [&](const DetectorGeometry::Freq& f, bool squared) {
    std::complex<double> acc{0.0, 0.0};
    double pr = 1.0;
    double pi = 0.0;  // e^{-j nu i}, stepped by conj(rot)
    const double cr = f.rot.real();
    const double ci = -f.rot.imag();
    for (std::size_t i = 0; i < n; ++i) {
      double x = ring_[(head_ + i) % n];
      if (squared) x *= x;
      acc += std::complex<double>{x * pr, x * pi};
      const double npr = pr * cr - pi * ci;
      pi = pr * ci + pi * cr;
      pr = npr;
    }
    return acc;
  };

  p0_ = 0.0;
  q0_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = ring_[(head_ + i) % n];
    p0_ += x;
    q0_ += x * x;
  }
  p_theta_ = dft_at(g.theta(), false);
  p_2theta_ = dft_at(g.two_theta(), false);
  q_theta_ = dft_at(g.theta(), true);
  q_2theta_ = dft_at(g.two_theta(), true);
  const auto& bins = g.bins();
  for (std::size_t b = 0; b < bins.size(); ++b) {
    states_[b].s0 = dft_at(bins[b].f0, false);
    states_[b].sm = dft_at(bins[b].fm, false);
    states_[b].sp = dft_at(bins[b].fp, false);
  }
  since_rebase_ = 0;
}

void IncrementalDetector::push(double z) {
  ++pushes_;
  const std::size_t n = ring_.size();
  if (!filled_) {
    ring_[count_++] = z;
    if (count_ == n) {
      filled_ = true;
      head_ = 0;
      rebuild_states();
    }
    return;
  }

  const double x_old = ring_[head_];
  ring_[head_] = z;
  head_ = head_ + 1 == n ? 0 : head_ + 1;

  const auto& g = *geom_;
  p0_ += z - x_old;
  q0_ += z * z - x_old * x_old;
  slide(p_theta_, g.theta(), x_old, z);
  slide(p_2theta_, g.two_theta(), x_old, z);
  slide(q_theta_, g.theta(), x_old * x_old, z * z);
  slide(q_2theta_, g.two_theta(), x_old * x_old, z * z);
  const auto& bins = g.bins();
  for (std::size_t b = 0; b < bins.size(); ++b) {
    slide(states_[b].s0, bins[b].f0, x_old, z);
    slide(states_[b].sm, bins[b].fm, x_old, z);
    slide(states_[b].sp, bins[b].fp, x_old, z);
  }

  if (++since_rebase_ >= g.rebase_interval()) {
    rebuild_states();
    ++rebases_;
  }
}

double IncrementalDetector::eta(double reference_amplitude) const {
  const auto& g = *geom_;
  const auto& cfg = g.config();

  if (!filled_) {
    // Partial window: defer to the offline metric on exactly the samples
    // absorbed so far — bit-exact with what NimbusCca's full-FFT path would
    // report at the same point.
    std::vector<double>& z = warmup_ws_.series;
    copy_window(z);
    auto mc = cfg.metric;
    mc.reference_amplitude = reference_amplitude;
    return nimbus::elasticity_metric(z, cfg.sample_hz, mc, warmup_ws_);
  }

  const std::size_t n = g.window_len();
  const double m = p0_ / static_cast<double>(n);

  // Tracked bins: X_k = 0.5 S(w) - 0.25 S(w-th) - 0.25 S(w+th) - m W_k.
  double signal = 0.0;
  double subtracted = 0.0;
  double dc_sq = 0.0;
  double nyq_sq = 0.0;
  const auto& bins = g.bins();
  for (std::size_t b = 0; b < bins.size(); ++b) {
    const auto& st = states_[b];
    const auto& bin = bins[b];
    const double re = 0.5 * st.s0.real() - 0.25 * st.sm.real() - 0.25 * st.sp.real() -
                      m * bin.hann_dc.real();
    const double im = 0.5 * st.s0.imag() - 0.25 * st.sm.imag() - 0.25 * st.sp.imag() -
                      m * bin.hann_dc.imag();
    const double mag_sq = re * re + im * im;
    if (b == g.dc_pos()) dc_sq = mag_sq;
    if (b == g.nyquist_pos()) nyq_sq = mag_sq;
    if (bin.in_signal_window) signal = std::max(signal, std::sqrt(mag_sq));
    if (bin.subtract_from_noise) subtracted += mag_sq;
  }

  // Parseval: windowed time-domain energy -> total one-sided spectral
  // energy -> noise band by subtraction of the tracked non-noise bins.
  // h^2 = 0.375 - 0.5 cos(theta i) + 0.125 cos(2 theta i) turns both energy
  // sums into three-term combinations of the shared sliding DFTs.
  const double sum_xh2 = 0.375 * p0_ - 0.5 * p_theta_.real() + 0.125 * p_2theta_.real();
  const double sum_x2h2 = 0.375 * q0_ - 0.5 * q_theta_.real() + 0.125 * q_2theta_.real();
  const double energy = sum_x2h2 - 2.0 * m * sum_xh2 + m * m * g.hann_energy();
  const double total =
      (static_cast<double>(g.padded_n()) * energy + dc_sq + nyq_sq) / 2.0;
  const double noise_sum_sq = std::max(0.0, total - subtracted);

  if (g.noise_bin_count() == 0) return 0.0;
  const double noise_rms = std::sqrt(noise_sum_sq / static_cast<double>(g.noise_bin_count()));

  // From here on: the offline metric's branches, verbatim.
  double eta;
  if (noise_rms <= 1e-12) {
    eta = signal <= 1e-12 ? 0.0 : nimbus::kElasticThreshold * 10.0;
  } else {
    eta = signal / noise_rms;
  }
  if (reference_amplitude > 0.0) {
    const double full_response = reference_amplitude * static_cast<double>(n) / 4.0;
    const double significance =
        std::min(1.0, signal / (cfg.metric.min_signal_fraction * full_response));
    eta *= significance;
  }
  return eta;
}

}  // namespace ccc::elastic
