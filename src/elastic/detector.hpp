// Incremental elasticity detection: the full-FFT `elasticity_metric`
// recomputed as O(#tracked bins) work per new z sample.
//
// The offline metric (nimbus/elasticity.cpp) reads remarkably little of the
// spectrum it pays N log N for: the fp +- halfwidth signal window, the 2*fp
// harmonic exclusion window, and an RMS over the remaining noise band. This
// detector maintains exactly those quantities with sliding recurrences:
//
//   - Per tracked spectrum bin k (omega_k = 2*pi*k/N), the Hann-windowed,
//     mean-removed DFT coefficient is a fixed linear combination of three
//     *unwindowed* generalized sliding DFTs. Writing the symmetric Hann as
//     h[i] = 0.5 - 0.25 e^{j theta i} - 0.25 e^{-j theta i}, with
//     theta = 2*pi/(n-1):
//       X_k = 0.5 S(omega_k) - 0.25 S(omega_k - theta)
//                            - 0.25 S(omega_k + theta) - m W_k
//     where S(nu) = sum_{i=0}^{n-1} x[t+i] e^{-j nu i}, m is the window
//     mean, and W_k = sum h[i] e^{-j omega_k i} is a per-geometry constant.
//     Each S slides in O(1): S' = e^{j nu} (S - x_old + x_new e^{-j nu n}).
//   - The noise band is NOT tracked bin-by-bin. Parseval gives the total
//     one-sided spectral energy from the windowed time-domain energy
//     E = sum ((x_i - m) h_i)^2, itself maintained by sliding DFTs of x and
//     x^2 at {0, theta, 2*theta} (because h^2 is a three-term cosine
//     polynomial); the noise sum is then E's total minus the explicitly
//     tracked below-floor and excluded bins.
//
// Per push that is ~3 complex recurrences per tracked bin plus six shared
// ones — roughly 70 fused multiply-adds for the default geometry — versus a
// 1024-point FFT plus an O(N) scan per window for the offline path.
//
// Floating-point drift from the endless rotations is bounded by rebasing:
// every rebase_interval pushes all states are recomputed exactly from the
// ring buffer. Equivalence contract (pinned in tests/elastic_test.cpp):
// while the window is still filling, eta() falls back to the offline metric
// and is bit-exact; once sliding, eta matches within 1e-9 relative for any
// window whose noise band carries real energy. (Bit-exactness is impossible
// there: the FFT sums the same products in a different order.) Degenerate
// all-constant windows — where the offline path sees exact zeros and takes
// its noise_rms <= 1e-12 branch — agree on the verdict but not on the last
// bits of eta, since Parseval round-off leaves ~1e-13 residues.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "nimbus/elasticity.hpp"
#include "util/fft.hpp"

namespace ccc::elastic {

struct DetectorConfig {
  /// z samples per elasticity window. Must be >= 16 (the offline metric's
  /// own floor). Defaults mirror NimbusConfig: 5 s / 9.7 ms bins.
  std::size_t window_len{515};
  /// Sample rate of the z series (1 / sample_bin).
  double sample_hz{1.0 / 0.0097};
  /// Frequency-domain geometry: pulse_hz, halfwidth, noise floor,
  /// reference amplitude (overridable per eval), significance fraction.
  nimbus::ElasticityConfig metric{};
  /// Pushes between exact state rebuilds (drift control). 0 = 4*window_len.
  std::size_t rebase_interval{0};
};

/// Everything about a detector that depends only on (window_len, sample_hz,
/// metric geometry): tracked-bin set, per-bin rotation constants, Hann DC
/// responses, the h^2 cosine-expansion constants, and the noise-band
/// bookkeeping. Immutable after construction and shared by every session
/// with the same shape — the SessionTable builds ONE of these for thousands
/// of detectors (the W_k table alone costs an O(n * #bins) trig pass).
/// Throws Error (kConfig) on an unusable configuration.
class DetectorGeometry {
 public:
  explicit DetectorGeometry(const DetectorConfig& cfg);

  /// One generalized sliding-DFT frequency nu, precomputed.
  struct Freq {
    std::complex<double> rot;   ///< e^{+j nu}: advances the window one sample
    std::complex<double> tail;  ///< e^{-j nu n}: phase of the entering sample
  };

  /// One tracked spectrum bin.
  struct Bin {
    std::uint32_t k;                ///< one-sided spectrum index, 0..N/2
    Freq f0;                        ///< omega_k
    Freq fm;                        ///< omega_k - theta
    Freq fp;                        ///< omega_k + theta
    std::complex<double> hann_dc;   ///< W_k = sum h[i] e^{-j omega_k i}
    bool in_signal_window;          ///< contributes to the fp peak search
    bool subtract_from_noise;       ///< below floor or inside an exclusion
  };

  [[nodiscard]] const DetectorConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t window_len() const { return cfg_.window_len; }
  [[nodiscard]] std::size_t padded_n() const { return padded_n_; }
  [[nodiscard]] double bin_hz() const { return bin_hz_; }
  [[nodiscard]] const std::vector<Bin>& bins() const { return bins_; }
  [[nodiscard]] std::size_t noise_bin_count() const { return noise_count_; }
  [[nodiscard]] bool h2_in_range() const { return h2_in_range_; }
  [[nodiscard]] std::size_t rebase_interval() const { return rebase_interval_; }
  [[nodiscard]] const Freq& theta() const { return theta_; }
  [[nodiscard]] const Freq& two_theta() const { return two_theta_; }
  /// sum h[i]^2 — the m^2 term of the windowed-energy expansion.
  [[nodiscard]] double hann_energy() const { return hann_energy_; }
  /// Positions of k == 0 and k == N/2 within bins() (both always tracked).
  [[nodiscard]] std::size_t dc_pos() const { return dc_pos_; }
  [[nodiscard]] std::size_t nyquist_pos() const { return nyq_pos_; }

 private:
  DetectorConfig cfg_;
  std::size_t padded_n_{0};
  double bin_hz_{0.0};
  std::vector<Bin> bins_;
  Freq theta_{};
  Freq two_theta_{};
  double hann_energy_{0.0};
  std::size_t noise_count_{0};
  bool h2_in_range_{true};
  std::size_t rebase_interval_{0};
  std::size_t dc_pos_{0};
  std::size_t nyq_pos_{0};
};

/// The streaming engine: one per probe session. Holds the sample ring plus
/// ~3 complex states per tracked bin; all geometry is shared through the
/// DetectorGeometry. Implements nimbus::ElasticityEstimator so a NimbusCca
/// can adopt it directly (attach_elasticity_estimator).
class IncrementalDetector final : public nimbus::ElasticityEstimator {
 public:
  explicit IncrementalDetector(std::shared_ptr<const DetectorGeometry> geom);

  /// Absorb one z sample: O(1) while filling, O(#tracked bins) after.
  void push(double z) override;
  /// True once window_len samples have been absorbed (sliding regime).
  [[nodiscard]] bool ready() const override { return filled_; }
  /// The elasticity metric over the current window. Before the window fills
  /// this calls the offline metric on the partial window (bit-exact with
  /// it); afterwards it evaluates the sliding states.
  [[nodiscard]] double eta(double reference_amplitude) const override;
  /// eta with the geometry's configured reference amplitude.
  [[nodiscard]] double eta() const { return eta(geom_->config().metric.reference_amplitude); }

  /// Back to empty (keeps geometry and capacity); a fresh session in place.
  void reset();

  [[nodiscard]] std::uint64_t pushes() const { return pushes_; }
  [[nodiscard]] std::uint64_t rebases() const { return rebases_; }
  [[nodiscard]] const DetectorGeometry& geometry() const { return *geom_; }
  /// The current window, oldest sample first (exactly what the offline
  /// metric would be handed). Mainly for equivalence tests and rebasing.
  void copy_window(std::vector<double>& out) const;

 private:
  struct BinState {
    std::complex<double> s0;  ///< S(omega_k)
    std::complex<double> sm;  ///< S(omega_k - theta)
    std::complex<double> sp;  ///< S(omega_k + theta)
  };

  /// Exact rebuild of every sliding state from the ring (fill + rebase).
  void rebuild_states();

  std::shared_ptr<const DetectorGeometry> geom_;
  std::vector<double> ring_;    ///< window samples; logical start at head_
  std::size_t head_{0};         ///< index of the oldest sample (once filled)
  std::size_t count_{0};        ///< samples absorbed while filling
  bool filled_{false};
  std::uint64_t pushes_{0};
  std::uint64_t rebases_{0};
  std::size_t since_rebase_{0};

  std::vector<BinState> states_;       ///< parallel to geometry().bins()
  double p0_{0.0};                     ///< sum x (window)
  double q0_{0.0};                     ///< sum x^2 (window)
  std::complex<double> p_theta_;       ///< S_x(theta)
  std::complex<double> p_2theta_;      ///< S_x(2 theta)
  std::complex<double> q_theta_;       ///< S_{x^2}(theta)
  std::complex<double> q_2theta_;      ///< S_{x^2}(2 theta)

  /// Scratch for the exact-metric fallback while filling (eta() is const;
  /// the scratch is not observable state).
  mutable SpectrumWorkspace warmup_ws_;
};

}  // namespace ccc::elastic
