#include "elastic/study.hpp"

#include <memory>
#include <utility>

#include "queue/drop_tail.hpp"
#include "queue/fq_codel.hpp"
#include "queue/pie.hpp"
#include "runner/experiment_runner.hpp"
#include "sim/variable_rate_link.hpp"
#include "telemetry/sampler.hpp"

namespace ccc::elastic {

namespace {

// Same sub-seed lanes as the sweep engine (sweep/cell.cpp), so the qdisc's
// and link's stochastic streams stay decorrelated from the scenario seed.
constexpr std::uint64_t kQdiscLane = 1;
constexpr std::uint64_t kLinkLane = 2;

std::unique_ptr<sim::Qdisc> make_cell_qdisc(PathCell cell, ByteCount capacity,
                                            std::uint64_t seed) {
  switch (cell) {
    case PathCell::kWiredDroptail:
      return std::make_unique<queue::DropTailQueue>(capacity);
    case PathCell::kMarkovFqCodel: {
      queue::FqCoDelConfig qc;
      qc.capacity_bytes = capacity;
      qc.hash_seed = runner::derive_seed(seed, kQdiscLane);
      return std::make_unique<queue::FqCoDelQueue>(qc);
    }
    case PathCell::kWifiPie: {
      queue::PieConfig qc;
      qc.capacity_bytes = capacity;
      qc.seed = runner::derive_seed(seed, kQdiscLane);
      return std::make_unique<queue::PieQueue>(qc);
    }
  }
  return std::make_unique<queue::DropTailQueue>(capacity);
}

}  // namespace

std::string_view path_cell_name(PathCell cell) {
  switch (cell) {
    case PathCell::kWiredDroptail: return "wired-droptail";
    case PathCell::kMarkovFqCodel: return "markov-fqcodel";
    case PathCell::kWifiPie: return "wifi-pie";
  }
  return "unknown";
}

ServiceScenarioResult run_service_scenario(const core::ElasticityPocConfig& cfg, int phase,
                                           PathCell cell) {
  const std::uint64_t seed = runner::derive_seed(
      cfg.seed, static_cast<std::uint64_t>(phase) * kPathCellCount +
                    static_cast<std::uint64_t>(cell));

  core::DumbbellConfig dc = core::elasticity_dumbbell(cfg, seed);
  core::DumbbellScenario net{dc, make_cell_qdisc(cell, core::dumbbell_buffer_bytes(dc), seed)};

  nimbus::NimbusCca* probe = core::add_elasticity_probe(net, cfg, nullptr);
  const Time begin = cfg.warmup;
  const Time end = cfg.warmup + cfg.phase_duration;
  core::add_elasticity_phase_traffic(net, cfg, phase, begin, end);

  // Wireless cells: the Markov rate model (plus WiFi aggregation bursts for
  // kWifiPie) drives the bottleneck for the whole run.
  std::unique_ptr<sim::VariableRateLink> vlink;
  if (cell != PathCell::kWiredDroptail) {
    sim::VariableRateLinkConfig vc;
    vc.markov.good = cfg.link_rate;
    vc.markov.bad = cfg.link_rate * 0.25;
    vc.aggregation.enabled = cell == PathCell::kWifiPie;
    vc.seed = runner::derive_seed(seed, kLinkLane);
    vlink = std::make_unique<sim::VariableRateLink>(net.scheduler(), net.bottleneck(), vc);
    vlink->start(end + Time::sec(1.0));
  }

  // The service session mirrors the probe's exact evaluation geometry: same
  // window, same sample rate, and the same (hint-pinned) reference
  // amplitude the full-FFT path recomputes per eval.
  const Rate hint = cfg.nimbus.capacity_hint.is_zero() ? cfg.link_rate : cfg.nimbus.capacity_hint;
  SessionTableConfig tc;
  tc.detector.window_len = probe->z_window_bins();
  tc.detector.sample_hz = 1.0 / cfg.nimbus.sample_bin.to_sec();
  tc.detector.metric.pulse_hz = cfg.nimbus.pulse_hz;
  tc.detector.metric.reference_amplitude = cfg.nimbus.pulse_amplitude * hint.to_bps();
  SessionTable table{tc};
  const SessionId session = table.add_session();

  // z tap -> batch buffer -> table.feed per tick: the service's real shape
  // (samples arrive continuously, the service consumes them in batches).
  std::vector<double> pending;
  probe->set_z_tap([&pending](double z) { pending.push_back(z); });

  ServiceScenarioResult r;
  r.phase = core::elasticity_phase_name(phase);
  r.cell = std::string{path_cell_name(cell)};
  std::size_t agree = 0;
  std::size_t offline_elastic_ticks = 0;
  std::size_t service_elastic_ticks = 0;

  telemetry::PeriodicSampler sampler{
      net.scheduler(), cfg.sample_interval, Time::sec(1.0), end + Time::sec(1.0),
      [&](Time) {
        table.feed(session, pending);
        pending.clear();
        const SessionStatus& st = table.status(session);
        if (st.updates == 0) return;  // service still warming
        // Both classifiers now hold the identical z window.
        const bool offline = probe->elasticity() >= nimbus::kElasticThreshold;
        const bool service = st.eta >= nimbus::kElasticThreshold;
        ++r.ticks;
        if (offline == service) ++agree;
        if (offline) ++offline_elastic_ticks;
        if (service) ++service_elastic_ticks;
      }};

  net.run_until(end);

  if (r.ticks > 0) {
    const auto t = static_cast<double>(r.ticks);
    r.agreement = static_cast<double>(agree) / t;
    r.offline_frac_elastic = static_cast<double>(offline_elastic_ticks) / t;
    r.service_frac_elastic = static_cast<double>(service_elastic_ticks) / t;
  }
  const SessionStatus& st = table.status(session);
  r.final_verdict = st.verdict;
  r.final_confidence = st.confidence;
  r.verdict_updates = st.updates;
  return r;
}

ServiceSweepResult run_service_sweep(const core::ElasticityPocConfig& cfg, unsigned jobs) {
  constexpr int kScenarios = core::kElasticityPhaseCount * kPathCellCount;
  runner::ExperimentRunner pool{{.jobs = jobs}};
  auto scenarios = pool.map<ServiceScenarioResult>(kScenarios, [&cfg](std::size_t i) {
    const int phase = static_cast<int>(i) / kPathCellCount;
    const auto cell = static_cast<PathCell>(i % kPathCellCount);
    return run_service_scenario(cfg, phase, cell);
  });

  ServiceSweepResult result;
  result.report.set_bench("fig3_service_sweep", cfg.seed);
  const Time at = cfg.warmup + cfg.phase_duration;
  double sum = 0.0;
  for (const auto& s : scenarios) {
    const std::string scope = s.phase + "/" + s.cell;
    result.report.add_scalar(scope, "agreement", s.agreement, at);
    result.report.add_scalar(scope, "ticks", static_cast<double>(s.ticks), at);
    result.report.add_scalar(scope, "offline_frac_elastic", s.offline_frac_elastic, at);
    result.report.add_scalar(scope, "service_frac_elastic", s.service_frac_elastic, at);
    result.report.add_scalar(scope, "verdict", static_cast<double>(s.final_verdict), at);
    result.report.add_scalar(scope, "confidence", s.final_confidence, at);
    result.report.add_scalar(scope, "verdict_updates", static_cast<double>(s.verdict_updates),
                             at);
    result.min_agreement = std::min(result.min_agreement, s.agreement);
    sum += s.agreement;
  }
  result.mean_agreement = scenarios.empty() ? 0.0 : sum / static_cast<double>(scenarios.size());
  result.report.add_scalar("service", "min_agreement", result.min_agreement, at);
  result.report.add_scalar("service", "mean_agreement", result.mean_agreement, at);
  result.scenarios = std::move(scenarios);
  return result;
}

}  // namespace ccc::elastic
