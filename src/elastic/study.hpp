// The elasticity service sweep: Figure 3's five cross-traffic archetypes
// replayed through the SessionTable across three path cells (wired/DropTail,
// Markov-wireless/FQ-CoDel, WiFi-burst/PIE — the PR-8 sweep-engine axes),
// scoring the streaming verdict against the offline full-FFT classifier.
//
// Each scenario runs ONE simulation with ONE Nimbus probe. The probe keeps
// its default full-FFT elasticity path (nothing attached), which *is* the
// offline classifier; a z tap mirrors every sample into a service session.
// At every sampler tick both classifiers look at the identical z window, so
// the agreement score isolates exactly the thing the service changes — the
// incremental evaluation — from everything it doesn't (traffic, path, probe).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/elasticity_study.hpp"
#include "elastic/session_table.hpp"
#include "telemetry/run_report.hpp"

namespace ccc::elastic {

/// Path cells: the qdisc x link-model corners the PR-8 grand matrix showed
/// to be the interesting edge cases for rate estimation.
enum class PathCell : std::uint8_t { kWiredDroptail = 0, kMarkovFqCodel, kWifiPie };
inline constexpr int kPathCellCount = 3;

[[nodiscard]] std::string_view path_cell_name(PathCell cell);

/// One (cross-traffic phase, path cell) scenario's score.
struct ServiceScenarioResult {
  std::string phase;   ///< cross-traffic archetype (elasticity_phase_name)
  std::string cell;    ///< path cell (path_cell_name)
  std::size_t ticks{0};              ///< agreement samples (service warm)
  double agreement{0.0};             ///< fraction of ticks both agree
  double offline_frac_elastic{0.0};  ///< offline classifier, over ticks
  double service_frac_elastic{0.0};  ///< service eta, over the same ticks
  Verdict final_verdict{Verdict::kWarming};
  double final_confidence{0.0};
  std::uint64_t verdict_updates{0};  ///< per-sample service evaluations
};

struct ServiceSweepResult {
  /// Phase-major, cell-minor: scenarios[phase * kPathCellCount + cell].
  std::vector<ServiceScenarioResult> scenarios;
  double min_agreement{1.0};
  double mean_agreement{0.0};
  /// One scalar row group per scenario (fixed order), then the sweep
  /// aggregates — byte-identical at any `jobs` count.
  telemetry::RunReport report;
};

/// Runs one scenario. Deterministic: the scenario seed derives from
/// cfg.seed and the (phase, cell) index.
[[nodiscard]] ServiceScenarioResult run_service_scenario(const core::ElasticityPocConfig& cfg,
                                                         int phase, PathCell cell);

/// The full 5 x 3 sweep fanned out over an ExperimentRunner (`jobs` = 0:
/// CCC_JOBS / hardware). cfg.phase_duration is the per-scenario run length.
[[nodiscard]] ServiceSweepResult run_service_sweep(const core::ElasticityPocConfig& cfg = {},
                                                   unsigned jobs = 0);

}  // namespace ccc::elastic
