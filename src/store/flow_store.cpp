#include "store/flow_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string_view>

namespace ccc::store {

// ---------------------------------------------------------------- crc32

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB8'8320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = make_crc_table();
  return table;
}

}  // namespace

void Crc32::update(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const auto& table = crc_table();
  std::uint32_t c = state_;
  for (std::size_t i = 0; i < len; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  state_ = c;
}

std::uint32_t crc32(const void* data, std::size_t len) {
  Crc32 c;
  c.update(data, len);
  return c.value();
}

// ---------------------------------------------------------------- writer

FlowStoreWriter::FlowStoreWriter(std::string path)
    : path_{std::move(path)}, out_{path_, std::ios::binary | std::ios::trunc} {
  if (!out_) throw std::runtime_error{"ccfs: cannot open for writing: " + path_};
  Header hdr{};
  std::memcpy(hdr.magic, kHeaderMagic, sizeof hdr.magic);
  hdr.version = kFormatVersion;
  out_.write(reinterpret_cast<const char*>(&hdr), sizeof hdr);
  pos_ = sizeof hdr;  // header excluded from the CRC (patched at finish)
}

FlowStoreWriter::~FlowStoreWriter() {
  try {
    finish();
  } catch (...) {  // destructor must not throw; callers wanting errors call finish()
  }
}

void FlowStoreWriter::write_crc(const void* data, std::size_t len) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
  crc_.update(data, len);
  pos_ += len;
}

void FlowStoreWriter::pad_to_alignment() {
  static constexpr char kZeros[kSectionAlign] = {};
  const std::size_t rem = pos_ % kSectionAlign;
  if (rem != 0) write_crc(kZeros, kSectionAlign - rem);
}

void FlowStoreWriter::append(const FlowView& flow) {
  if (finished_) throw std::runtime_error{"ccfs: append after finish: " + path_};
  // The series streams to disk immediately; only scalars are buffered.
  if (!flow.throughput_mbps.empty()) {
    write_crc(flow.throughput_mbps.data(), flow.throughput_mbps.size_bytes());
  }
  sample_count_ += flow.throughput_mbps.size();
  ids_.push_back(flow.id);
  access_.push_back(static_cast<std::uint8_t>(flow.access));
  truth_.push_back(static_cast<std::uint8_t>(flow.truth));
  duration_.push_back(flow.duration_sec);
  app_limited_.push_back(flow.app_limited_sec);
  rwnd_limited_.push_back(flow.rwnd_limited_sec);
  mean_tput_.push_back(flow.mean_throughput_mbps);
  min_rtt_.push_back(flow.min_rtt_ms);
  snap_interval_.push_back(flow.snapshot_interval_sec);
  ts_offsets_.push_back(sample_count_);
}

void FlowStoreWriter::finish() {
  if (finished_) return;
  finished_ = true;

  std::vector<DirectoryEntry> directory;
  directory.reserve(kSectionCount);
  // The pool section was streamed at [sizeof(Header), here).
  directory.push_back({static_cast<std::uint32_t>(SectionId::kTsPool), 0, sizeof(Header),
                       sample_count_ * sizeof(double)});

  const auto write_section = [&](SectionId id, const void* data, std::uint64_t bytes) {
    pad_to_alignment();
    directory.push_back({static_cast<std::uint32_t>(id), 0, pos_, bytes});
    if (bytes > 0) write_crc(data, bytes);
  };
  const std::uint64_t n = ids_.size();
  write_section(SectionId::kId, ids_.data(), n * sizeof(std::uint64_t));
  write_section(SectionId::kAccess, access_.data(), n);
  write_section(SectionId::kTruth, truth_.data(), n);
  write_section(SectionId::kDuration, duration_.data(), n * sizeof(double));
  write_section(SectionId::kAppLimited, app_limited_.data(), n * sizeof(double));
  write_section(SectionId::kRwndLimited, rwnd_limited_.data(), n * sizeof(double));
  write_section(SectionId::kMeanTput, mean_tput_.data(), n * sizeof(double));
  write_section(SectionId::kMinRtt, min_rtt_.data(), n * sizeof(double));
  write_section(SectionId::kSnapInterval, snap_interval_.data(), n * sizeof(double));
  write_section(SectionId::kTsOffsets, ts_offsets_.data(), (n + 1) * sizeof(std::uint64_t));

  pad_to_alignment();
  const std::uint64_t directory_offset = pos_;
  const auto count = static_cast<std::uint32_t>(directory.size());
  write_crc(&count, sizeof count);
  write_crc(directory.data(), directory.size() * sizeof(DirectoryEntry));

  Footer footer{};
  footer.directory_offset = directory_offset;
  footer.flow_count = n;
  footer.sample_count = sample_count_;
  footer.crc32 = crc_.value();
  footer.magic = kFooterMagic;
  out_.write(reinterpret_cast<const char*>(&footer), sizeof footer);

  // Patch the header counts (outside the CRC range by construction).
  Header hdr{};
  std::memcpy(hdr.magic, kHeaderMagic, sizeof hdr.magic);
  hdr.version = kFormatVersion;
  hdr.flow_count = n;
  hdr.sample_count = sample_count_;
  hdr.directory_offset = directory_offset;
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&hdr), sizeof hdr);
  out_.flush();
  if (!out_) throw std::runtime_error{"ccfs: write failed: " + path_};
  out_.close();
}

// ------------------------------------------------------- sharded writer

ShardedFlowStoreWriter::ShardedFlowStoreWriter(std::string base_path,
                                               std::uint64_t flows_per_shard)
    : base_path_{std::move(base_path)}, flows_per_shard_{flows_per_shard} {
  if (flows_per_shard_ == 0) {
    throw std::runtime_error{"ccfs: flows_per_shard must be positive"};
  }
}

std::string ShardedFlowStoreWriter::shard_path(std::size_t index) const {
  // base "x.ccfs" -> "x.00000.ccfs"; any other base gets ".00000.ccfs" appended.
  static constexpr std::string_view kExt = ".ccfs";
  std::string stem = base_path_;
  if (stem.size() >= kExt.size() &&
      stem.compare(stem.size() - kExt.size(), kExt.size(), kExt) == 0) {
    stem.resize(stem.size() - kExt.size());
  }
  char idx[16];
  std::snprintf(idx, sizeof idx, ".%05zu", index);
  return stem + idx + std::string{kExt};
}

void ShardedFlowStoreWriter::roll() {
  if (current_) current_->finish();
  paths_.push_back(shard_path(paths_.size()));
  current_ = std::make_unique<FlowStoreWriter>(paths_.back());
}

void ShardedFlowStoreWriter::append(const FlowView& flow) {
  if (!current_ || current_->flows() >= flows_per_shard_) roll();
  current_->append(flow);
  ++total_flows_;
}

std::vector<std::string> ShardedFlowStoreWriter::finish() {
  if (!current_) roll();  // zero appends still produce one (empty) shard
  current_->finish();
  return paths_;
}

// ---------------------------------------------------------------- reader

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw std::runtime_error{"ccfs: " + path + ": " + why};
}

}  // namespace

FlowStoreReader::FlowStoreReader(const std::string& path, bool verify_crc) : path_{path} {
  open_and_validate(path, verify_crc);
}

FlowStoreReader::~FlowStoreReader() { unmap(); }

FlowStoreReader::FlowStoreReader(FlowStoreReader&& other) noexcept { *this = std::move(other); }

FlowStoreReader& FlowStoreReader::operator=(FlowStoreReader&& other) noexcept {
  if (this == &other) return *this;
  unmap();
  path_ = std::move(other.path_);
  base_ = other.base_;
  file_bytes_ = other.file_bytes_;
  mapped_ = other.mapped_;
  heap_copy_ = std::move(other.heap_copy_);
  flow_count_ = other.flow_count_;
  sample_count_ = other.sample_count_;
  directory_ = std::move(other.directory_);
  ts_pool_ = other.ts_pool_;
  ids_ = other.ids_;
  access_ = other.access_;
  truth_ = other.truth_;
  duration_ = other.duration_;
  app_limited_ = other.app_limited_;
  rwnd_limited_ = other.rwnd_limited_;
  mean_tput_ = other.mean_tput_;
  min_rtt_ = other.min_rtt_;
  snap_interval_ = other.snap_interval_;
  ts_offsets_ = other.ts_offsets_;
  other.base_ = nullptr;
  other.mapped_ = false;
  other.file_bytes_ = 0;
  return *this;
}

void FlowStoreReader::unmap() noexcept {
  if (mapped_ && base_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(base_), file_bytes_);
  }
  base_ = nullptr;
  mapped_ = false;
}

const std::uint8_t* FlowStoreReader::section(SectionId id, std::uint64_t expect_bytes) const {
  for (const auto& e : directory_) {
    if (e.id != static_cast<std::uint32_t>(id)) continue;
    if (e.bytes != expect_bytes) fail(path_, "section size mismatch");
    if (e.offset % kSectionAlign != 0) fail(path_, "misaligned section");
    if (e.offset + e.bytes > file_bytes_) fail(path_, "section out of bounds");
    return base_ + e.offset;
  }
  fail(path_, "missing section");
}

void FlowStoreReader::open_and_validate(const std::string& path, bool verify_crc) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, "cannot open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(path, "fstat failed");
  }
  file_bytes_ = static_cast<std::size_t>(st.st_size);
  if (file_bytes_ < sizeof(Header) + sizeof(Footer)) {
    ::close(fd);
    fail(path, "truncated (shorter than header + footer)");
  }

  void* map = ::mmap(nullptr, file_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map != MAP_FAILED) {
    base_ = static_cast<const std::uint8_t*>(map);
    mapped_ = true;
    ::close(fd);
  } else {
    // Fallback: read the whole file onto the heap (same validation path).
    heap_copy_.resize(file_bytes_);
    std::size_t got = 0;
    while (got < file_bytes_) {
      const ssize_t r = ::pread(fd, heap_copy_.data() + got, file_bytes_ - got,
                                static_cast<off_t>(got));
      if (r <= 0) {
        ::close(fd);
        fail(path, "read failed");
      }
      got += static_cast<std::size_t>(r);
    }
    ::close(fd);
    base_ = heap_copy_.data();
  }

  Header hdr{};
  std::memcpy(&hdr, base_, sizeof hdr);
  if (std::memcmp(hdr.magic, kHeaderMagic, sizeof hdr.magic) != 0) fail(path, "bad magic");
  if (hdr.version != kFormatVersion) fail(path, "unsupported version");

  Footer footer{};
  std::memcpy(&footer, base_ + file_bytes_ - sizeof footer, sizeof footer);
  if (footer.magic != kFooterMagic) fail(path, "bad footer magic (torn write?)");
  flow_count_ = footer.flow_count;
  sample_count_ = footer.sample_count;
  const std::uint64_t dir_off = footer.directory_offset;
  if (dir_off < sizeof(Header) || dir_off + sizeof(std::uint32_t) > file_bytes_) {
    fail(path, "directory offset out of bounds");
  }

  std::uint32_t dir_count = 0;
  std::memcpy(&dir_count, base_ + dir_off, sizeof dir_count);
  const std::uint64_t dir_bytes =
      sizeof(std::uint32_t) + std::uint64_t{dir_count} * sizeof(DirectoryEntry);
  if (dir_count != kSectionCount || dir_off + dir_bytes + sizeof(Footer) != file_bytes_) {
    fail(path, "directory shape mismatch");
  }
  directory_.resize(dir_count);
  std::memcpy(directory_.data(), base_ + dir_off + sizeof dir_count,
              dir_count * sizeof(DirectoryEntry));

  if (verify_crc) {
    const std::uint32_t got = crc32(base_ + sizeof(Header),
                                    dir_off + dir_bytes - sizeof(Header));
    if (got != footer.crc32) fail(path, "CRC mismatch (corrupt file)");
  }

  const std::uint64_t n = flow_count_;
  const auto f64 = [&](SectionId id) {
    return std::span<const double>{
        reinterpret_cast<const double*>(section(id, n * sizeof(double))), n};
  };
  ts_pool_ = std::span<const double>{
      reinterpret_cast<const double*>(section(SectionId::kTsPool, sample_count_ * sizeof(double))),
      sample_count_};
  ids_ = std::span<const std::uint64_t>{
      reinterpret_cast<const std::uint64_t*>(section(SectionId::kId, n * sizeof(std::uint64_t))),
      n};
  access_ = std::span<const std::uint8_t>{section(SectionId::kAccess, n), n};
  truth_ = std::span<const std::uint8_t>{section(SectionId::kTruth, n), n};
  duration_ = f64(SectionId::kDuration);
  app_limited_ = f64(SectionId::kAppLimited);
  rwnd_limited_ = f64(SectionId::kRwndLimited);
  mean_tput_ = f64(SectionId::kMeanTput);
  min_rtt_ = f64(SectionId::kMinRtt);
  snap_interval_ = f64(SectionId::kSnapInterval);
  ts_offsets_ = std::span<const std::uint64_t>{
      reinterpret_cast<const std::uint64_t*>(
          section(SectionId::kTsOffsets, (n + 1) * sizeof(std::uint64_t))),
      n + 1};

  if (ts_offsets_.front() != 0 || ts_offsets_.back() != sample_count_) {
    fail(path, "ts_offsets endpoints inconsistent");
  }
  if (verify_crc) {
    for (std::size_t i = 0; i + 1 < ts_offsets_.size(); ++i) {
      if (ts_offsets_[i] > ts_offsets_[i + 1]) fail(path, "ts_offsets not monotone");
    }
  }
}

}  // namespace ccc::store
