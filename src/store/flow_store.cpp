#include "store/flow_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string_view>

#include "telemetry/metrics.hpp"
#include "util/error.hpp"

namespace ccc::store {

// ---------------------------------------------------------------- crc32

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB8'8320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = make_crc_table();
  return table;
}

std::atomic<std::uint64_t> g_finish_errors_suppressed{0};

}  // namespace

void Crc32::update(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const auto& table = crc_table();
  std::uint32_t c = state_;
  for (std::size_t i = 0; i < len; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  state_ = c;
}

std::uint32_t crc32(const void* data, std::size_t len) {
  Crc32 c;
  c.update(data, len);
  return c.value();
}

std::uint64_t finish_errors_suppressed() noexcept {
  return g_finish_errors_suppressed.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------- writer

FlowStoreWriter::FlowStoreWriter(std::string path)
    : path_{std::move(path)}, file_{faultfs::File::open_trunc(path_)} {
  Header hdr{};
  std::memcpy(hdr.magic, kHeaderMagic, sizeof hdr.magic);
  hdr.version = kFormatVersion;
  file_.write(&hdr, sizeof hdr);
  pos_ = sizeof hdr;  // header excluded from the CRC (patched at finish)
}

FlowStoreWriter::~FlowStoreWriter() {
  // The destructor must not throw, so finish() errors here have nowhere to
  // go as exceptions — that is silent data loss unless it leaves a trace.
  // Callers that need the error call finish() themselves.
  try {
    finish();
  } catch (const std::exception& e) {
    g_finish_errors_suppressed.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->counter("store.finish_errors_suppressed").inc();
    std::fprintf(stderr,
                 "ccfs: WARNING: finish() failed in ~FlowStoreWriter and the error was "
                 "suppressed (call finish() explicitly to observe it): %s\n",
                 e.what());
  } catch (...) {
    g_finish_errors_suppressed.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->counter("store.finish_errors_suppressed").inc();
    std::fprintf(stderr,
                 "ccfs: WARNING: finish() failed in ~FlowStoreWriter with an unknown "
                 "error, suppressed (call finish() explicitly to observe it): %s\n",
                 path_.c_str());
  }
}

void FlowStoreWriter::write_crc(const void* data, std::size_t len) {
  file_.write(data, len);
  crc_.update(data, len);
  pos_ += len;
}

void FlowStoreWriter::pad_to_alignment() {
  static constexpr char kZeros[kSectionAlign] = {};
  const std::size_t rem = pos_ % kSectionAlign;
  if (rem != 0) write_crc(kZeros, kSectionAlign - rem);
}

void FlowStoreWriter::append(const FlowView& flow) {
  if (finished_) throw Error::config(path_, "ccfs: append after finish");
  // The series streams to disk immediately; only scalars are buffered.
  if (!flow.throughput_mbps.empty()) {
    write_crc(flow.throughput_mbps.data(), flow.throughput_mbps.size_bytes());
  }
  sample_count_ += flow.throughput_mbps.size();
  ids_.push_back(flow.id);
  access_.push_back(static_cast<std::uint8_t>(flow.access));
  truth_.push_back(static_cast<std::uint8_t>(flow.truth));
  duration_.push_back(flow.duration_sec);
  app_limited_.push_back(flow.app_limited_sec);
  rwnd_limited_.push_back(flow.rwnd_limited_sec);
  mean_tput_.push_back(flow.mean_throughput_mbps);
  min_rtt_.push_back(flow.min_rtt_ms);
  snap_interval_.push_back(flow.snapshot_interval_sec);
  ts_offsets_.push_back(sample_count_);
}

void FlowStoreWriter::abandon() {
  if (finished_) return;
  finished_ = true;  // suppress the destructor's auto-finish: no footer
  try {
    file_.close_checked();
  } catch (...) {
    // A close error is moot — the file is already known-invalid by design.
  }
}

void FlowStoreWriter::finish() {
  if (finished_) return;
  finished_ = true;

  std::vector<DirectoryEntry> directory;
  directory.reserve(kSectionCount);
  // The pool section was streamed at [sizeof(Header), here).
  directory.push_back({static_cast<std::uint32_t>(SectionId::kTsPool), 0, sizeof(Header),
                       sample_count_ * sizeof(double)});

  const auto write_section = [&](SectionId id, const void* data, std::uint64_t bytes) {
    pad_to_alignment();
    directory.push_back({static_cast<std::uint32_t>(id), 0, pos_, bytes});
    if (bytes > 0) write_crc(data, bytes);
  };
  const std::uint64_t n = ids_.size();
  write_section(SectionId::kId, ids_.data(), n * sizeof(std::uint64_t));
  write_section(SectionId::kAccess, access_.data(), n);
  write_section(SectionId::kTruth, truth_.data(), n);
  write_section(SectionId::kDuration, duration_.data(), n * sizeof(double));
  write_section(SectionId::kAppLimited, app_limited_.data(), n * sizeof(double));
  write_section(SectionId::kRwndLimited, rwnd_limited_.data(), n * sizeof(double));
  write_section(SectionId::kMeanTput, mean_tput_.data(), n * sizeof(double));
  write_section(SectionId::kMinRtt, min_rtt_.data(), n * sizeof(double));
  write_section(SectionId::kSnapInterval, snap_interval_.data(), n * sizeof(double));
  write_section(SectionId::kTsOffsets, ts_offsets_.data(), (n + 1) * sizeof(std::uint64_t));

  pad_to_alignment();
  const std::uint64_t directory_offset = pos_;
  const auto count = static_cast<std::uint32_t>(directory.size());
  write_crc(&count, sizeof count);
  write_crc(directory.data(), directory.size() * sizeof(DirectoryEntry));

  Footer footer{};
  footer.directory_offset = directory_offset;
  footer.flow_count = n;
  footer.sample_count = sample_count_;
  footer.crc32 = crc_.value();
  footer.magic = kFooterMagic;
  file_.write(&footer, sizeof footer);

  // Patch the header counts (outside the CRC range by construction).
  Header hdr{};
  std::memcpy(hdr.magic, kHeaderMagic, sizeof hdr.magic);
  hdr.version = kFormatVersion;
  hdr.flow_count = n;
  hdr.sample_count = sample_count_;
  hdr.directory_offset = directory_offset;
  file_.write_at(0, &hdr, sizeof hdr);
  file_.close_checked();
}

// ------------------------------------------------------- sharded writer

ShardedFlowStoreWriter::ShardedFlowStoreWriter(std::string base_path,
                                               std::uint64_t flows_per_shard)
    : base_path_{std::move(base_path)}, flows_per_shard_{flows_per_shard} {
  if (flows_per_shard_ == 0) {
    throw Error::config(base_path_, "ccfs: flows_per_shard must be positive");
  }
}

std::string ShardedFlowStoreWriter::shard_path(std::size_t index) const {
  // base "x.ccfs" -> "x.00000.ccfs"; any other base gets ".00000.ccfs" appended.
  static constexpr std::string_view kExt = ".ccfs";
  std::string stem = base_path_;
  if (stem.size() >= kExt.size() &&
      stem.compare(stem.size() - kExt.size(), kExt.size(), kExt) == 0) {
    stem.resize(stem.size() - kExt.size());
  }
  char idx[16];
  std::snprintf(idx, sizeof idx, ".%05zu", index);
  return stem + idx + std::string{kExt};
}

void ShardedFlowStoreWriter::roll() {
  if (current_) {
    current_->finish();
    sealed_.push_back(current_->path());
  }
  paths_.push_back(shard_path(paths_.size()));
  current_ = std::make_unique<FlowStoreWriter>(paths_.back());
}

void ShardedFlowStoreWriter::append(const FlowView& flow) {
  if (!current_ || current_->flows() >= flows_per_shard_) roll();
  current_->append(flow);
  ++total_flows_;
}

std::optional<std::string> ShardedFlowStoreWriter::rotate() {
  if (!current_) return std::nullopt;
  current_->finish();
  sealed_.push_back(current_->path());
  current_.reset();
  return sealed_.back();
}

std::vector<std::string> ShardedFlowStoreWriter::finish() {
  if (!current_) {
    // After rotate() everything is already sealed — do not fabricate an
    // empty tail shard. Only a zero-append lifetime rolls one so that
    // finish() always has at least one shard to hand back.
    if (!paths_.empty()) return paths_;
    roll();
  }
  current_->finish();
  if (sealed_.empty() || sealed_.back() != current_->path()) {
    sealed_.push_back(current_->path());  // finish() stays idempotent
  }
  return paths_;
}

void ShardedFlowStoreWriter::abandon() {
  if (current_) current_->abandon();
  current_.reset();
}

// ---------------------------------------------------------------- reader

FlowStoreReader::FlowStoreReader(const std::string& path, const ReaderOptions& opts)
    : path_{path} {
  try {
    open_and_validate(path, opts);
  } catch (...) {
    unmap();  // a throwing constructor runs no destructor: release the mapping
    throw;
  }
}

FlowStoreReader::~FlowStoreReader() { unmap(); }

FlowStoreReader::FlowStoreReader(FlowStoreReader&& other) noexcept { *this = std::move(other); }

FlowStoreReader& FlowStoreReader::operator=(FlowStoreReader&& other) noexcept {
  if (this == &other) return *this;
  unmap();
  path_ = std::move(other.path_);
  base_ = other.base_;
  file_bytes_ = other.file_bytes_;
  mapped_ = other.mapped_;
  heap_copy_ = std::move(other.heap_copy_);
  flow_count_ = other.flow_count_;
  sample_count_ = other.sample_count_;
  directory_ = std::move(other.directory_);
  ts_pool_ = other.ts_pool_;
  ids_ = other.ids_;
  access_ = other.access_;
  truth_ = other.truth_;
  duration_ = other.duration_;
  app_limited_ = other.app_limited_;
  rwnd_limited_ = other.rwnd_limited_;
  mean_tput_ = other.mean_tput_;
  min_rtt_ = other.min_rtt_;
  snap_interval_ = other.snap_interval_;
  ts_offsets_ = other.ts_offsets_;
  readahead_flows_ = other.readahead_flows_;
  base_off_ = other.base_off_;
  pool_off_ = other.pool_off_;
  file_ = std::move(other.file_);
  win_buf_ = std::move(other.win_buf_);
  win_prev_ = std::move(other.win_prev_);
  win_first_ = other.win_first_;
  win_last_ = other.win_last_;
  other.base_ = nullptr;
  other.mapped_ = false;
  other.file_bytes_ = 0;
  other.readahead_flows_ = 0;
  other.base_off_ = 0;
  return *this;
}

void FlowStoreReader::willneed(std::size_t first, std::size_t n) const {
  if (!mapped_ || n == 0 || first >= flow_count_) return;
  const std::size_t last = std::min(first + n, flow_count_);
  // The columns are tiny and touched for every flow anyway; the series pool
  // is the bulk of the file and the part a filtered scan skips around in —
  // so that is the range worth staging.
  const std::uint64_t begin_bytes = ts_offsets_[first] * sizeof(double);
  const std::uint64_t end_bytes = ts_offsets_[last] * sizeof(double);
  if (begin_bytes == end_bytes) return;  // all-empty series
  const auto* pool = reinterpret_cast<const std::uint8_t*>(ts_pool_.data());
  const auto addr = reinterpret_cast<std::uintptr_t>(pool + begin_bytes);
  const long page = ::sysconf(_SC_PAGESIZE);
  const auto mask = static_cast<std::uintptr_t>(page > 0 ? page : 4096) - 1;
  const std::uintptr_t aligned = addr & ~mask;  // madvise wants a page start
  const std::size_t len = (end_bytes - begin_bytes) + (addr - aligned);
  (void)::madvise(reinterpret_cast<void*>(aligned), len, MADV_WILLNEED);
}

void FlowStoreReader::unmap() noexcept {
  if (mapped_ && base_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(base_), file_bytes_);
  }
  base_ = nullptr;
  mapped_ = false;
}

const std::uint8_t* FlowStoreReader::section(SectionId id, std::uint64_t expect_bytes) const {
  for (const auto& e : directory_) {
    if (e.id != static_cast<std::uint32_t>(id)) continue;
    if (e.bytes != expect_bytes) {
      throw Error::format(path_, "ccfs: section size mismatch", e.offset);
    }
    if (e.offset % kSectionAlign != 0) {
      throw Error::format(path_, "ccfs: misaligned section", e.offset);
    }
    if (e.offset + e.bytes > file_bytes_) {
      throw Error::format(path_, "ccfs: section out of bounds", e.offset);
    }
    // base_off_ is 0 in mapped mode; in windowed mode base_ holds only the
    // file tail from the first scalar section on (the pool is not resident,
    // and is never requested through here).
    if (e.offset < base_off_) {
      throw Error::format(path_, "ccfs: section not resident", e.offset);
    }
    return base_ + (e.offset - base_off_);
  }
  throw Error::format(path_, "ccfs: missing section");
}

void FlowStoreReader::open_and_validate(const std::string& path, const ReaderOptions& opts) {
  faultfs::File file = faultfs::File::open_read(path);  // throws Error{kIo}
  file_bytes_ = file.size();
  if (file_bytes_ < sizeof(Header) + sizeof(Footer)) {
    throw Error::corruption(path, "ccfs: truncated (shorter than header + footer)",
                            file_bytes_);
  }
  if (opts.sequential) {
    // Widen the kernel's readahead window for the front-to-back scan we are
    // about to do. A hint: ignore refusal (e.g. on filesystems without it).
    (void)::posix_fadvise(file.fd(), 0, 0, POSIX_FADV_SEQUENTIAL);
  }
  if (opts.readahead_flows != 0) {
    open_windowed(std::move(file), opts);
    return;
  }

  // mmap is the fast path, but mapped page reads cannot be intercepted, so
  // faultfs vetoes it when a read-fault plan targets this path — the pread
  // fallback below then exercises the injected faults.
  void* map = MAP_FAILED;
  if (faultfs::mmap_allowed(path)) {
    map = ::mmap(nullptr, file_bytes_, PROT_READ, MAP_PRIVATE, file.fd(), 0);
  }
  if (map != MAP_FAILED) {
    base_ = static_cast<const std::uint8_t*>(map);
    mapped_ = true;
    if (opts.sequential) (void)::madvise(map, file_bytes_, MADV_SEQUENTIAL);
  } else {
    // Fallback: read the whole file onto the heap (same validation path).
    heap_copy_.resize(file_bytes_);
    file.read_exact_at(0, heap_copy_.data(), file_bytes_);
    base_ = heap_copy_.data();
  }

  Header hdr{};
  std::memcpy(&hdr, base_, sizeof hdr);
  if (std::memcmp(hdr.magic, kHeaderMagic, sizeof hdr.magic) != 0) {
    throw Error::format(path, "ccfs: bad magic", 0);
  }
  if (hdr.version != kFormatVersion) {
    throw Error::format(path,
                        "ccfs: unsupported version " + std::to_string(hdr.version),
                        offsetof(Header, version));
  }

  const std::uint64_t footer_off = file_bytes_ - sizeof(Footer);
  Footer footer{};
  std::memcpy(&footer, base_ + footer_off, sizeof footer);
  if (footer.magic != kFooterMagic) {
    throw Error::corruption(path, "ccfs: bad footer magic (torn write?)", footer_off);
  }
  flow_count_ = footer.flow_count;
  sample_count_ = footer.sample_count;
  const std::uint64_t dir_off = footer.directory_offset;
  if (dir_off < sizeof(Header) || dir_off + sizeof(std::uint32_t) > file_bytes_) {
    throw Error::format(path, "ccfs: directory offset out of bounds", footer_off);
  }

  std::uint32_t dir_count = 0;
  std::memcpy(&dir_count, base_ + dir_off, sizeof dir_count);
  const std::uint64_t dir_bytes =
      sizeof(std::uint32_t) + std::uint64_t{dir_count} * sizeof(DirectoryEntry);
  if (dir_count != kSectionCount || dir_off + dir_bytes + sizeof(Footer) != file_bytes_) {
    throw Error::format(path, "ccfs: directory shape mismatch", dir_off);
  }
  directory_.resize(dir_count);
  std::memcpy(directory_.data(), base_ + dir_off + sizeof dir_count,
              dir_count * sizeof(DirectoryEntry));

  if (opts.verify_crc) {
    const std::uint32_t got = crc32(base_ + sizeof(Header),
                                    dir_off + dir_bytes - sizeof(Header));
    if (got != footer.crc32) {
      throw Error::corruption(path, "ccfs: CRC mismatch (corrupt file)", sizeof(Header));
    }
  }

  const std::uint64_t n = flow_count_;
  const auto f64 = [&](SectionId id) {
    return std::span<const double>{
        reinterpret_cast<const double*>(section(id, n * sizeof(double))), n};
  };
  ts_pool_ = std::span<const double>{
      reinterpret_cast<const double*>(section(SectionId::kTsPool, sample_count_ * sizeof(double))),
      sample_count_};
  ids_ = std::span<const std::uint64_t>{
      reinterpret_cast<const std::uint64_t*>(section(SectionId::kId, n * sizeof(std::uint64_t))),
      n};
  access_ = std::span<const std::uint8_t>{section(SectionId::kAccess, n), n};
  truth_ = std::span<const std::uint8_t>{section(SectionId::kTruth, n), n};
  duration_ = f64(SectionId::kDuration);
  app_limited_ = f64(SectionId::kAppLimited);
  rwnd_limited_ = f64(SectionId::kRwndLimited);
  mean_tput_ = f64(SectionId::kMeanTput);
  min_rtt_ = f64(SectionId::kMinRtt);
  snap_interval_ = f64(SectionId::kSnapInterval);
  ts_offsets_ = std::span<const std::uint64_t>{
      reinterpret_cast<const std::uint64_t*>(
          section(SectionId::kTsOffsets, (n + 1) * sizeof(std::uint64_t))),
      n + 1};

  if (ts_offsets_.front() != 0 || ts_offsets_.back() != sample_count_) {
    throw Error::corruption(path, "ccfs: ts_offsets endpoints inconsistent");
  }
  if (opts.verify_crc) {
    for (std::size_t i = 0; i + 1 < ts_offsets_.size(); ++i) {
      if (ts_offsets_[i] > ts_offsets_[i + 1]) {
        throw Error::corruption(path, "ccfs: ts_offsets not monotone");
      }
    }
  }
}

void FlowStoreReader::open_windowed(faultfs::File file, const ReaderOptions& opts) {
  const std::string& path = path_;
  readahead_flows_ = opts.readahead_flows;

  Header hdr{};
  file.read_exact_at(0, &hdr, sizeof hdr);
  if (std::memcmp(hdr.magic, kHeaderMagic, sizeof hdr.magic) != 0) {
    throw Error::format(path, "ccfs: bad magic", 0);
  }
  if (hdr.version != kFormatVersion) {
    throw Error::format(path, "ccfs: unsupported version " + std::to_string(hdr.version),
                        offsetof(Header, version));
  }

  const std::uint64_t footer_off = file_bytes_ - sizeof(Footer);
  Footer footer{};
  file.read_exact_at(footer_off, &footer, sizeof footer);
  if (footer.magic != kFooterMagic) {
    throw Error::corruption(path, "ccfs: bad footer magic (torn write?)", footer_off);
  }
  flow_count_ = footer.flow_count;
  sample_count_ = footer.sample_count;
  const std::uint64_t dir_off = footer.directory_offset;
  if (dir_off < sizeof(Header) || dir_off + sizeof(std::uint32_t) > file_bytes_) {
    throw Error::format(path, "ccfs: directory offset out of bounds", footer_off);
  }

  std::uint32_t dir_count = 0;
  file.read_exact_at(dir_off, &dir_count, sizeof dir_count);
  const std::uint64_t dir_bytes =
      sizeof(std::uint32_t) + std::uint64_t{dir_count} * sizeof(DirectoryEntry);
  if (dir_count != kSectionCount || dir_off + dir_bytes + sizeof(Footer) != file_bytes_) {
    throw Error::format(path, "ccfs: directory shape mismatch", dir_off);
  }
  directory_.resize(dir_count);
  file.read_exact_at(dir_off + sizeof dir_count, directory_.data(),
                     dir_count * sizeof(DirectoryEntry));

  if (opts.verify_crc) {
    // Streaming CRC: same covered range as the mapped path, fixed memory.
    Crc32 crc;
    std::vector<std::uint8_t> chunk(std::size_t{4} << 20);
    std::uint64_t off = sizeof(Header);
    const std::uint64_t end = dir_off + dir_bytes;
    while (off < end) {
      const auto len = static_cast<std::size_t>(std::min<std::uint64_t>(chunk.size(), end - off));
      file.read_exact_at(off, chunk.data(), len);
      crc.update(chunk.data(), len);
      off += len;
    }
    if (crc.value() != footer.crc32) {
      throw Error::corruption(path, "ccfs: CRC mismatch (corrupt file)", sizeof(Header));
    }
  }

  // Locate (and bounds-check) the pool section, which stays on disk; only
  // the tail from the first scalar section onward is made resident.
  pool_off_ = 0;
  bool have_pool = false;
  std::uint64_t tail_start = dir_off;
  for (const auto& e : directory_) {
    if (e.offset % kSectionAlign != 0) {
      throw Error::format(path, "ccfs: misaligned section", e.offset);
    }
    if (e.offset + e.bytes > file_bytes_) {
      throw Error::format(path, "ccfs: section out of bounds", e.offset);
    }
    if (e.id == static_cast<std::uint32_t>(SectionId::kTsPool)) {
      if (e.bytes != sample_count_ * sizeof(double)) {
        throw Error::format(path, "ccfs: section size mismatch", e.offset);
      }
      pool_off_ = e.offset;
      have_pool = true;
    } else {
      tail_start = std::min(tail_start, e.offset);
    }
  }
  if (!have_pool) throw Error::format(path, "ccfs: missing section");

  base_off_ = tail_start;
  heap_copy_.resize(static_cast<std::size_t>(file_bytes_ - tail_start));
  file.read_exact_at(tail_start, heap_copy_.data(), heap_copy_.size());
  base_ = heap_copy_.data();
  mapped_ = false;
  file_ = std::move(file);  // kept open: series() preads through it

  const std::uint64_t n = flow_count_;
  const auto f64 = [&](SectionId id) {
    return std::span<const double>{
        reinterpret_cast<const double*>(section(id, n * sizeof(double))), n};
  };
  ids_ = std::span<const std::uint64_t>{
      reinterpret_cast<const std::uint64_t*>(section(SectionId::kId, n * sizeof(std::uint64_t))),
      n};
  access_ = std::span<const std::uint8_t>{section(SectionId::kAccess, n), n};
  truth_ = std::span<const std::uint8_t>{section(SectionId::kTruth, n), n};
  duration_ = f64(SectionId::kDuration);
  app_limited_ = f64(SectionId::kAppLimited);
  rwnd_limited_ = f64(SectionId::kRwndLimited);
  mean_tput_ = f64(SectionId::kMeanTput);
  min_rtt_ = f64(SectionId::kMinRtt);
  snap_interval_ = f64(SectionId::kSnapInterval);
  ts_offsets_ = std::span<const std::uint64_t>{
      reinterpret_cast<const std::uint64_t*>(
          section(SectionId::kTsOffsets, (n + 1) * sizeof(std::uint64_t))),
      n + 1};

  if (ts_offsets_.front() != 0 || ts_offsets_.back() != sample_count_) {
    throw Error::corruption(path, "ccfs: ts_offsets endpoints inconsistent");
  }
  // Monotonicity is checked unconditionally here (the mapped path gates it
  // on verify_crc): window fetch sizes are computed from offset differences,
  // so a non-monotone pair must fail at open, not as a wild pread later.
  for (std::size_t i = 0; i + 1 < ts_offsets_.size(); ++i) {
    if (ts_offsets_[i] > ts_offsets_[i + 1]) {
      throw Error::corruption(path, "ccfs: ts_offsets not monotone");
    }
  }
}

std::span<const double> FlowStoreReader::windowed_series(std::size_t i) const {
  const std::uint64_t s0 = ts_offsets_[i];
  const std::uint64_t s1 = ts_offsets_[i + 1];
  if (i < win_first_ || i >= win_last_) {
    // Slide the window to start at flow i. A forward scan re-fetches once
    // per readahead_flows_ flows; any other access pattern is still
    // correct, just one pread per excursion.
    const std::size_t last = std::min(i + readahead_flows_, flow_count_);
    const std::uint64_t w1 = ts_offsets_[last];
    // Retire the old window into win_prev_ instead of resizing it in
    // place: spans handed out from it survive this slide, which is what
    // lets a pipeline drain batch straddle a window boundary (the
    // span-validity contract in ReaderOptions).
    std::swap(win_buf_, win_prev_);
    win_buf_.resize(static_cast<std::size_t>(w1 - s0));
    if (w1 > s0) {
      file_.read_exact_at(pool_off_ + s0 * sizeof(double), win_buf_.data(),
                          static_cast<std::size_t>(w1 - s0) * sizeof(double));
    }
    win_first_ = i;
    win_last_ = last;
  }
  const std::uint64_t w0 = ts_offsets_[win_first_];
  return std::span<const double>{win_buf_}.subspan(static_cast<std::size_t>(s0 - w0),
                                                   static_cast<std::size_t>(s1 - s0));
}

}  // namespace ccc::store
