// CSV <-> ccfs converters: the bridge between the existing mlab:: text
// workflow (synthetic exports, external tools) and the columnar store.
// Both directions stream — the CSV side row by row, the ccfs side flow by
// flow — so converting a multi-gigabyte dump needs constant memory.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "mlab/csv_io.hpp"
#include "store/flow_store.hpp"

namespace ccc::store {

/// Streams a CSV dataset (write_csv format) into `writer`. Malformed rows
/// are skipped per the csv_io contract; the returned stats say how many.
/// The caller finishes the writer (so multiple CSVs can feed one store).
mlab::CsvParseStats csv_to_ccfs(std::istream& csv, FlowStoreWriter& writer);

/// Convenience: one CSV stream -> one finished ccfs file at `path`.
/// Returns the parse stats.
mlab::CsvParseStats csv_file_to_ccfs(std::istream& csv, const std::string& path);

/// Streams every flow of `reader` back out as CSV (header included).
void ccfs_to_csv(const FlowStoreReader& reader, std::ostream& csv);

/// Writes an in-memory dataset as one finished ccfs file (tests, small
/// corpora; the scale path appends to a writer directly).
void write_store(const std::string& path, std::span<const mlab::NdtRecord> dataset);

}  // namespace ccc::store
