#include "store/convert.hpp"

#include <ostream>

namespace ccc::store {

mlab::CsvParseStats csv_to_ccfs(std::istream& csv, FlowStoreWriter& writer) {
  mlab::CsvParseStats stats;
  mlab::for_each_csv_record(
      csv, [&writer](mlab::NdtRecord&& rec) { writer.append(rec); }, &stats);
  return stats;
}

mlab::CsvParseStats csv_file_to_ccfs(std::istream& csv, const std::string& path) {
  FlowStoreWriter writer{path};
  const auto stats = csv_to_ccfs(csv, writer);
  writer.finish();
  return stats;
}

void ccfs_to_csv(const FlowStoreReader& reader, std::ostream& csv) {
  // Reuse the row serializer so the two paths cannot drift; the header line
  // comes from write_csv on an empty span.
  mlab::write_csv(csv, {});
  for (std::size_t i = 0; i < reader.size(); ++i) {
    mlab::write_csv_record(csv, reader.record(i));
  }
}

void write_store(const std::string& path, std::span<const mlab::NdtRecord> dataset) {
  FlowStoreWriter writer{path};
  for (const auto& rec : dataset) writer.append(rec);
  writer.finish();
}

}  // namespace ccc::store
