// FlowStoreWriter / FlowStoreReader — ingest and zero-copy scan of ccfs
// files (see format.hpp for the layout and the rationale).
//
// Writer: append-only and streaming. Each append writes the record's
// throughput series straight to disk and buffers only the fixed-width
// scalar columns (~74 bytes/flow), so ingesting 10^7 flows needs tens of
// megabytes of memory, not gigabytes. finish() lays down the columns,
// directory, and CRC footer.
//
// Reader: maps the file read-only and serves columns as spans into the
// mapping — no per-flow allocation, no copy. A FlowView is a handful of
// scalars plus a span over the flow's slice of the series pool; the
// pipeline's filter stages never touch the pool pages of filtered flows,
// which is what makes scans memory-bandwidth- rather than parse-bound.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mlab/ndt_record.hpp"
#include "store/format.hpp"
#include "util/faultfs.hpp"

namespace ccc::telemetry {
class MetricRegistry;
}

namespace ccc::store {

/// Process-wide count of finish() errors swallowed by ~FlowStoreWriter.
/// Nonzero means data was (possibly) lost with no exception to show for it;
/// the destructor also warns on stderr and bumps the writer's bound
/// registry ("store.finish_errors_suppressed") when one was set.
[[nodiscard]] std::uint64_t finish_errors_suppressed() noexcept;

/// A zero-copy view of one stored flow: scalar fields by value (they are
/// copied out of the columns at access time — cheap), the series as a span
/// into the reader's mapping (or into an NdtRecord for in-memory sources).
/// This is the unit the pipeline's stages operate on.
struct FlowView {
  std::uint64_t id{0};
  mlab::AccessType access{mlab::AccessType::kCable};
  mlab::FlowArchetype truth{mlab::FlowArchetype::kBulkClean};
  double duration_sec{0.0};
  double app_limited_sec{0.0};
  double rwnd_limited_sec{0.0};
  double mean_throughput_mbps{0.0};
  double min_rtt_ms{0.0};
  double snapshot_interval_sec{0.1};
  std::span<const double> throughput_mbps;

  [[nodiscard]] static FlowView from_record(const mlab::NdtRecord& rec) {
    return FlowView{rec.id,
                    rec.access,
                    rec.truth,
                    rec.duration_sec,
                    rec.app_limited_sec,
                    rec.rwnd_limited_sec,
                    rec.mean_throughput_mbps,
                    rec.min_rtt_ms,
                    rec.snapshot_interval_sec,
                    rec.throughput_mbps};
  }

  [[nodiscard]] mlab::NdtRecord to_record() const {
    mlab::NdtRecord rec;
    rec.id = id;
    rec.access = access;
    rec.truth = truth;
    rec.duration_sec = duration_sec;
    rec.app_limited_sec = app_limited_sec;
    rec.rwnd_limited_sec = rwnd_limited_sec;
    rec.mean_throughput_mbps = mean_throughput_mbps;
    rec.min_rtt_ms = min_rtt_ms;
    rec.snapshot_interval_sec = snapshot_interval_sec;
    rec.throughput_mbps.assign(throughput_mbps.begin(), throughput_mbps.end());
    return rec;
  }
};

/// Append-only single-file writer. Not thread-safe; one writer per file.
/// Throws ccc::Error (category kIo / kConfig) on failure; all file
/// operations route through faultfs for deterministic fault injection.
class FlowStoreWriter {
 public:
  explicit FlowStoreWriter(std::string path);
  ~FlowStoreWriter();

  FlowStoreWriter(const FlowStoreWriter&) = delete;
  FlowStoreWriter& operator=(const FlowStoreWriter&) = delete;

  void append(const mlab::NdtRecord& rec) { append(FlowView::from_record(rec)); }
  void append(const FlowView& flow);

  /// Writes columns, directory, and footer, then patches the header.
  /// Idempotent. The destructor calls it if the caller forgot — but the
  /// destructor MUST NOT throw, so any finish() error there is reduced to a
  /// stderr warning plus the finish_errors_suppressed() counter (and the
  /// bound registry's "store.finish_errors_suppressed"). Callers that care
  /// whether their data actually landed call finish() explicitly.
  void finish();

  /// Walks away from the file without sealing it: closes the fd, writes no
  /// directory/footer, suppresses the destructor's auto-finish. What's on
  /// disk is whatever the streamed appends already wrote — a torn shard a
  /// reader must reject. This is the in-process stand-in for SIGKILL, used
  /// by the crash-recovery tests; a daemon never calls it on purpose.
  void abandon();

  /// Optional registry for the destructor's suppressed-error counter. The
  /// registry must outlive the writer.
  void set_metrics(telemetry::MetricRegistry* reg) { metrics_ = reg; }

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t flows() const { return ids_.size(); }
  [[nodiscard]] std::uint64_t samples() const { return sample_count_; }

 private:
  void write_crc(const void* data, std::size_t len);
  void pad_to_alignment();

  std::string path_;
  faultfs::File file_;
  telemetry::MetricRegistry* metrics_{nullptr};
  bool finished_{false};
  Crc32 crc_;
  std::uint64_t pos_{0};  // current file offset (mirror of tellp)
  std::uint64_t sample_count_{0};

  // Buffered scalar columns (the series pool streams to disk directly).
  std::vector<std::uint64_t> ids_;
  std::vector<std::uint8_t> access_;
  std::vector<std::uint8_t> truth_;
  std::vector<double> duration_;
  std::vector<double> app_limited_;
  std::vector<double> rwnd_limited_;
  std::vector<double> mean_tput_;
  std::vector<double> min_rtt_;
  std::vector<double> snap_interval_;
  std::vector<std::uint64_t> ts_offsets_{0};  // N+1 entries, starts at 0
};

/// Rolls over to a fresh shard file every `flows_per_shard` appends, naming
/// shards base.00000.ccfs, base.00001.ccfs, ... (the ".ccfs" suffix of
/// `base_path` is re-applied after the shard index). The pipeline treats the
/// resulting shard list as one concatenated store (see pipeline::StoreSource).
class ShardedFlowStoreWriter {
 public:
  ShardedFlowStoreWriter(std::string base_path, std::uint64_t flows_per_shard);

  void append(const mlab::NdtRecord& rec) { append(FlowView::from_record(rec)); }
  void append(const FlowView& flow);

  /// Seals the open shard *now* — footer written, CRC valid, safe to hand to
  /// readers — and returns its path; the next append opens a fresh shard.
  /// Returns std::nullopt (and does nothing) when no shard is open. This is
  /// the log-structured rotation point a long-running daemon drives at epoch
  /// boundaries: after rotate() returns, a crash can only tear the *next*
  /// shard, never this one. (PR 3's writer only sealed shards implicitly at
  /// size-triggered rollover or in finish() — unusable from a service that
  /// must bound data-at-risk by time, not just by flow count.)
  std::optional<std::string> rotate();

  /// Finishes the open shard (if any) and returns all shard paths, in
  /// append order. Zero lifetime appends still produce one empty shard, but
  /// finish() directly after rotate() does NOT add a spurious empty tail.
  [[nodiscard]] std::vector<std::string> finish();

  /// Abandons the open shard un-sealed (see FlowStoreWriter::abandon) —
  /// crash simulation for tests. Already-rotated shards are unaffected.
  void abandon();

  [[nodiscard]] std::uint64_t flows() const { return total_flows_; }
  /// Flows appended to the current, not-yet-sealed shard (0 if none open) —
  /// what a rotation policy consults to skip empty-epoch rotations.
  [[nodiscard]] std::uint64_t open_flows() const { return current_ ? current_->flows() : 0; }
  /// Shards sealed so far (rotate() or rollover), excluding the open one.
  [[nodiscard]] const std::vector<std::string>& sealed_paths() const { return sealed_; }

 private:
  [[nodiscard]] std::string shard_path(std::size_t index) const;
  void roll();

  std::string base_path_;
  std::uint64_t flows_per_shard_;
  std::uint64_t total_flows_{0};
  std::vector<std::string> paths_;   // every shard ever created, append order
  std::vector<std::string> sealed_;  // the finished prefix of paths_
  std::unique_ptr<FlowStoreWriter> current_;
};

/// Open-time knobs for FlowStoreReader beyond the ctor's CRC flag.
struct ReaderOptions {
  /// Verify the footer CRC at open (the corruption gate).
  bool verify_crc{true};
  /// Tell the kernel the file will be scanned front to back
  /// (posix_fadvise/madvise SEQUENTIAL), which widens its readahead window.
  /// Purely a hint: refusal is silent and harmless.
  bool sequential{false};
  /// When nonzero, the series pool is never mapped or loaded whole: the
  /// reader keeps the fd open and serves series() from a sliding pread
  /// window of this many flows, re-fetched on the first access outside it.
  /// Scalar columns (a few percent of the file) are still loaded up front,
  /// and verify_crc streams the CRC in fixed-size chunks — so peak memory
  /// is bounded by the columns + one window however large the pool is,
  /// which is what lets a passive run scan datasets bigger than RAM.
  /// Unlike the mmap reader, a windowed reader is NOT safe for concurrent
  /// use: series() mutates the window. One thread (or one forked child)
  /// per reader.
  ///
  /// Span validity: a span returned by series() stays alive until the
  /// SECOND window slide after it (the window is double-buffered, so one
  /// slide retires the previous buffer, the next one reuses it). An
  /// ascending scan whose in-flight batch is no larger than the window
  /// slides at most once per batch, so every span in the batch stays
  /// valid — ShardSet clamps the window to the pipeline's drain batch
  /// size to guarantee exactly that.
  std::size_t readahead_flows{0};
};

/// Read-only, zero-copy view of one ccfs file. The whole file is mapped
/// (falling back to a heap read when mmap is unavailable) and validated:
/// magics, version, directory shape, section bounds, and — unless the
/// caller opts out — the footer CRC and ts_offsets monotonicity. Safe for
/// concurrent reads from any number of threads.
class FlowStoreReader {
 public:
  /// Throws ccc::Error on any failure: kIo when the OS refuses the file,
  /// kFormat when the structure is not a ccfs document, kCorruption when a
  /// once-valid file is provably damaged (CRC mismatch, torn footer,
  /// truncation, non-monotone offsets) — with the byte offset where known.
  explicit FlowStoreReader(const std::string& path, bool verify_crc = true)
      : FlowStoreReader{path, ReaderOptions{verify_crc, false}} {}
  FlowStoreReader(const std::string& path, const ReaderOptions& opts);
  ~FlowStoreReader();

  FlowStoreReader(FlowStoreReader&& other) noexcept;
  FlowStoreReader& operator=(FlowStoreReader&& other) noexcept;
  FlowStoreReader(const FlowStoreReader&) = delete;
  FlowStoreReader& operator=(const FlowStoreReader&) = delete;

  [[nodiscard]] std::size_t size() const { return flow_count_; }
  [[nodiscard]] std::uint64_t samples() const { return sample_count_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Whole-column access (zero-copy).
  [[nodiscard]] std::span<const std::uint64_t> ids() const { return ids_; }
  [[nodiscard]] std::span<const std::uint8_t> access() const { return access_; }
  [[nodiscard]] std::span<const std::uint8_t> truth() const { return truth_; }
  [[nodiscard]] std::span<const double> duration_sec() const { return duration_; }
  [[nodiscard]] std::span<const double> app_limited_sec() const { return app_limited_; }
  [[nodiscard]] std::span<const double> rwnd_limited_sec() const { return rwnd_limited_; }
  [[nodiscard]] std::span<const double> mean_throughput_mbps() const { return mean_tput_; }
  [[nodiscard]] std::span<const double> min_rtt_ms() const { return min_rtt_; }
  [[nodiscard]] std::span<const double> snapshot_interval_sec() const { return snap_interval_; }
  [[nodiscard]] std::span<const std::uint64_t> ts_offsets() const { return ts_offsets_; }

  /// Flow i's throughput series. Mapped mode: a span into the pool mapping,
  /// valid for the reader's lifetime. Windowed mode (readahead_flows != 0):
  /// a span into the sliding window buffer, valid until the second series()
  /// call that slides the window (see ReaderOptions::readahead_flows).
  [[nodiscard]] std::span<const double> series(std::size_t i) const {
    if (readahead_flows_ != 0) return windowed_series(i);
    return ts_pool_.subspan(ts_offsets_[i], ts_offsets_[i + 1] - ts_offsets_[i]);
  }

  /// Zero-copy per-flow view (precondition: i < size()).
  [[nodiscard]] FlowView at(std::size_t i) const {
    return FlowView{ids_[i],
                    static_cast<mlab::AccessType>(access_[i]),
                    static_cast<mlab::FlowArchetype>(truth_[i]),
                    duration_[i],
                    app_limited_[i],
                    rwnd_limited_[i],
                    mean_tput_[i],
                    min_rtt_[i],
                    snap_interval_[i],
                    series(i)};
  }

  /// Materializes flow i as an owning NdtRecord (compat with the CSV path).
  [[nodiscard]] mlab::NdtRecord record(std::size_t i) const { return at(i).to_record(); }

  /// Asks the kernel to stage the series-pool pages of flows
  /// [first, first + n) (madvise WILLNEED over the page-aligned range), so
  /// a scan's page faults overlap with the batch it is currently crunching
  /// instead of stalling it one 4 KiB fault at a time. A hint only: no-op
  /// on the heap fallback, for empty ranges, and when the kernel declines.
  void willneed(std::size_t first, std::size_t n) const;

 private:
  void open_and_validate(const std::string& path, const ReaderOptions& opts);
  void open_windowed(faultfs::File file, const ReaderOptions& opts);
  [[nodiscard]] const std::uint8_t* section(SectionId id, std::uint64_t expect_bytes) const;
  void unmap() noexcept;
  /// Windowed-mode series(): slides the pread window to cover flow i if it
  /// does not already, then returns a span into the window buffer.
  [[nodiscard]] std::span<const double> windowed_series(std::size_t i) const;

  std::string path_;
  const std::uint8_t* base_{nullptr};
  std::size_t file_bytes_{0};
  bool mapped_{false};                   // true: munmap; false: heap buffer
  std::vector<std::uint8_t> heap_copy_;  // mmap fallback / windowed columns
  // Windowed (batched-pread) mode state. base_ points into heap_copy_,
  // which holds only the file tail from the first scalar section on;
  // base_off_ is that tail's file offset (section offsets are absolute).
  std::size_t readahead_flows_{0};  // 0 = mapped mode
  std::uint64_t base_off_{0};
  std::uint64_t pool_off_{0};  // ts_pool section's file offset
  mutable faultfs::File file_; // stays open to serve window fetches
  mutable std::vector<double> win_buf_;
  mutable std::vector<double> win_prev_;  // retired window; keeps spans alive
  mutable std::size_t win_first_{0};
  mutable std::size_t win_last_{0};  // window covers flows [first, last)
  std::size_t flow_count_{0};
  std::uint64_t sample_count_{0};
  std::vector<DirectoryEntry> directory_;

  std::span<const double> ts_pool_;
  std::span<const std::uint64_t> ids_;
  std::span<const std::uint8_t> access_;
  std::span<const std::uint8_t> truth_;
  std::span<const double> duration_;
  std::span<const double> app_limited_;
  std::span<const double> rwnd_limited_;
  std::span<const double> mean_tput_;
  std::span<const double> min_rtt_;
  std::span<const double> snap_interval_;
  std::span<const std::uint64_t> ts_offsets_;
};

}  // namespace ccc::store
