// ccfs v1 — the columnar flow-record store's on-disk format.
//
// The CSV path loads every record (and its full throughput series) into
// std::vector<NdtRecord> before analysis touches anything, which tops out
// around the paper's 10^4 flows. ccfs lays the same data out as columns so a
// reader can mmap the file and hand out zero-copy spans: the pipeline's
// filter stages read only the fixed-width aggregate columns, and the
// change-point stage reads only the series of flows that survive filtering
// (a small minority — §3.1 filters ~60% of flows before the search).
//
// Layout (all integers little-endian, every section 8-byte aligned):
//
//   offset 0    Header        64 bytes: magic "ccfs.v1\0", version, counts
//                             and directory offset (counts patched at
//                             finish; duplicated in the footer)
//   offset 64   ts_pool       f64[sample_count]  all series, concatenated —
//                             streamed during ingest so the writer never
//                             buffers more than one record's series
//   ...         id            u64[N]
//   ...         access        u8[N]    (mlab::AccessType)
//   ...         truth         u8[N]    (mlab::FlowArchetype)
//   ...         duration      f64[N]
//   ...         app_limited   f64[N]
//   ...         rwnd_limited  f64[N]
//   ...         mean_tput     f64[N]
//   ...         min_rtt       f64[N]
//   ...         snap_interval f64[N]
//   ...         ts_offsets    u64[N+1] sample-index prefix: flow i's series
//                             is ts_pool[ts_offsets[i], ts_offsets[i+1])
//   ...         Directory     section table: {id, offset, bytes} per section
//   end-32      Footer        directory offset + counts (authoritative),
//                             CRC-32 of bytes [64, directory end), magic
//
// The header is written first with zeroed counts and patched after the last
// section lands, so the CRC covers everything *after* the header; the
// footer's duplicate counts are the verified ones. A torn write leaves
// either a bad footer magic or a CRC mismatch — both are detected at open.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace ccc::store {

static_assert(std::endian::native == std::endian::little,
              "ccfs v1 is defined little-endian; big-endian hosts need a swap layer");

inline constexpr char kHeaderMagic[8] = {'c', 'c', 'f', 's', '.', 'v', '1', '\0'};
inline constexpr std::uint32_t kFooterMagic = 0x4546'4343u;  // "CCFE", little-endian
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kSectionAlign = 8;

/// Section ids, in file order. Fixed by the format: readers look sections up
/// by id in the directory, so future versions may append new ids but never
/// renumber these.
enum class SectionId : std::uint32_t {
  kTsPool = 0,
  kId = 1,
  kAccess = 2,
  kTruth = 3,
  kDuration = 4,
  kAppLimited = 5,
  kRwndLimited = 6,
  kMeanTput = 7,
  kMinRtt = 8,
  kSnapInterval = 9,
  kTsOffsets = 10,
};
inline constexpr std::size_t kSectionCount = 11;

struct Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t flags;             // reserved, 0 in v1
  std::uint64_t flow_count;        // patched at finish; footer is authoritative
  std::uint64_t sample_count;      // "
  std::uint64_t directory_offset;  // "
  std::uint8_t reserved[24];
};
static_assert(sizeof(Header) == 64);

struct DirectoryEntry {
  std::uint32_t id;
  std::uint32_t reserved;
  std::uint64_t offset;  // absolute file offset, 8-byte aligned
  std::uint64_t bytes;   // payload size, excluding alignment padding
};
static_assert(sizeof(DirectoryEntry) == 24);

struct Footer {
  std::uint64_t directory_offset;
  std::uint64_t flow_count;
  std::uint64_t sample_count;
  std::uint32_t crc32;  // over bytes [sizeof(Header), directory end)
  std::uint32_t magic;  // kFooterMagic
};
static_assert(sizeof(Footer) == 32);

/// Incremental CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the same
/// polynomial zlib uses, implemented here so the store has no deps.
class Crc32 {
 public:
  void update(const void* data, std::size_t len);
  [[nodiscard]] std::uint32_t value() const { return ~state_; }

 private:
  std::uint32_t state_{0xFFFF'FFFFu};
};

[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len);

}  // namespace ccc::store
