#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ccc {

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  assert(alpha > 0.0 && lo > 0.0 && hi > lo);
  // Inverse-CDF sampling of the bounded Pareto distribution.
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(x, -1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) throw std::invalid_argument{"weighted_index: no positive weight"};
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: target landed exactly on total
}

}  // namespace ccc
