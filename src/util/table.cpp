#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ccc {

TextTable::TextTable(std::vector<std::string> header) : header_{std::move(header)} {
  if (header_.empty()) throw std::invalid_argument{"TextTable: empty header"};
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument{"TextTable: row width mismatch"};
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto cell = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (char ch : s) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cell(cells[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n' << title << '\n' << std::string(72, '=') << '\n';
}

}  // namespace ccc
