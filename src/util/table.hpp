// Plain-text table / CSV emission for bench output.
//
// Every bench binary regenerates one of the paper's figures or tables by
// printing rows; TextTable keeps that output aligned and consistent so the
// numbers are easy to diff against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ccc {

/// An in-memory table with a header row, printable as aligned text or CSV.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Formats a double with `precision` significant decimal places.
  [[nodiscard]] static std::string num(double v, int precision = 3);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Writes the table with space-padded columns and a rule under the header.
  void print(std::ostream& os) const;
  /// Writes RFC-4180-ish CSV (cells containing commas/quotes get quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used by bench binaries to delimit figures.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace ccc
