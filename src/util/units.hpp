// Strong unit types used throughout ccascope.
//
// Congestion-control code is notorious for unit bugs (bits vs bytes,
// milliseconds vs microseconds, rates vs windows). We therefore wrap time and
// rate in small value types with explicit named constructors and accessors.
// Byte counts stay as a plain signed 64-bit alias (they appear in nearly
// every expression, and bytes are the single unit we use for data volume).
#pragma once

#include <cassert>
#include <cmath>
#include <compare>
#include <cstdint>

namespace ccc {

/// Count of bytes (payload or wire bytes depending on context). Signed so
/// that differences are safe to compute.
using ByteCount = std::int64_t;

/// A point in simulated time or a duration, in integer nanoseconds.
///
/// The simulator clock is integer-nanosecond and single threaded, so Time is
/// exact and totally ordered; there is no floating-point drift in event
/// ordering. Durations and instants share this type (like std::chrono's
/// representation), with arithmetic defined for both uses.
class Time {
 public:
  constexpr Time() = default;

  /// Named constructors. Prefer these over the raw-ns constructor.
  [[nodiscard]] static constexpr Time ns(std::int64_t v) { return Time{v}; }
  [[nodiscard]] static constexpr Time us(std::int64_t v) { return Time{v * 1'000}; }
  [[nodiscard]] static constexpr Time ms(std::int64_t v) { return Time{v * 1'000'000}; }
  [[nodiscard]] static constexpr Time sec(double v) {
    return Time{static_cast<std::int64_t>(v * 1e9)};
  }
  /// The maximum representable time; used as "never" for timers.
  [[nodiscard]] static constexpr Time never() { return Time{INT64_MAX}; }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }

  [[nodiscard]] constexpr std::int64_t count_ns() const { return ns_; }
  [[nodiscard]] constexpr double to_sec() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time d) { ns_ += d.ns_; return *this; }
  constexpr Time& operator-=(Time d) { ns_ -= d.ns_; return *this; }
  [[nodiscard]] friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  [[nodiscard]] friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  [[nodiscard]] friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
  [[nodiscard]] friend constexpr Time operator*(std::int64_t k, Time a) { return a * k; }
  // int overloads resolve the int -> {int64, double} conversion ambiguity.
  [[nodiscard]] friend constexpr Time operator*(Time a, int k) { return Time{a.ns_ * k}; }
  [[nodiscard]] friend constexpr Time operator*(int k, Time a) { return Time{a.ns_ * k}; }
  [[nodiscard]] friend constexpr Time operator*(Time a, double k) {
    return Time{static_cast<std::int64_t>(static_cast<double>(a.ns_) * k)};
  }
  [[nodiscard]] friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  [[nodiscard]] friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.ns_ / k}; }

 private:
  explicit constexpr Time(std::int64_t v) : ns_{v} {}
  std::int64_t ns_{0};
};

/// A data rate. Stored as double bits-per-second: pacing and elasticity math
/// is continuous, and doubles hold exact integers up to 2^53 bps (8 Pbit/s),
/// far beyond anything we simulate.
class Rate {
 public:
  constexpr Rate() = default;

  [[nodiscard]] static constexpr Rate bps(double v) { return Rate{v}; }
  [[nodiscard]] static constexpr Rate kbps(double v) { return Rate{v * 1e3}; }
  [[nodiscard]] static constexpr Rate mbps(double v) { return Rate{v * 1e6}; }
  [[nodiscard]] static constexpr Rate gbps(double v) { return Rate{v * 1e9}; }
  /// Rate that transfers `bytes` in duration `t`.
  [[nodiscard]] static constexpr Rate bytes_per(ByteCount bytes, Time t) {
    return Rate{static_cast<double>(bytes) * 8.0 / t.to_sec()};
  }
  [[nodiscard]] static constexpr Rate zero() { return Rate{0.0}; }

  [[nodiscard]] constexpr double to_bps() const { return bps_; }
  [[nodiscard]] constexpr double to_mbps() const { return bps_ * 1e-6; }
  [[nodiscard]] constexpr double bytes_per_sec() const { return bps_ / 8.0; }
  [[nodiscard]] constexpr bool is_zero() const { return bps_ <= 0.0; }

  /// Time to serialize `bytes` at this rate. Precondition: rate > 0.
  [[nodiscard]] Time transmit_time(ByteCount bytes) const {
    assert(bps_ > 0.0);
    return Time::ns(static_cast<std::int64_t>(
        std::ceil(static_cast<double>(bytes) * 8.0 / bps_ * 1e9)));
  }
  /// Bytes delivered in duration `t` at this rate (rounded down).
  [[nodiscard]] constexpr ByteCount bytes_in(Time t) const {
    return static_cast<ByteCount>(bps_ / 8.0 * t.to_sec());
  }

  constexpr auto operator<=>(const Rate&) const = default;

  [[nodiscard]] friend constexpr Rate operator+(Rate a, Rate b) { return Rate{a.bps_ + b.bps_}; }
  [[nodiscard]] friend constexpr Rate operator-(Rate a, Rate b) { return Rate{a.bps_ - b.bps_}; }
  [[nodiscard]] friend constexpr Rate operator*(Rate a, double k) { return Rate{a.bps_ * k}; }
  [[nodiscard]] friend constexpr Rate operator*(double k, Rate a) { return a * k; }
  [[nodiscard]] friend constexpr Rate operator/(Rate a, double k) { return Rate{a.bps_ / k}; }
  [[nodiscard]] friend constexpr double operator/(Rate a, Rate b) { return a.bps_ / b.bps_; }

 private:
  explicit constexpr Rate(double v) : bps_{v} {}
  double bps_{0.0};
};

/// Bandwidth-delay product in bytes for a path of rate `r` and RTT `rtt`.
[[nodiscard]] constexpr ByteCount bdp_bytes(Rate r, Time rtt) {
  return static_cast<ByteCount>(r.bytes_per_sec() * rtt.to_sec());
}

}  // namespace ccc
