#include "util/faultfs.hpp"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

#include "util/error.hpp"

namespace ccc::faultfs {

namespace {

// Plan state. `active` is the fast-path gate (relaxed load per op); the
// mutex serializes the slow path only (plan inspection + op counting).
std::atomic<bool> g_active{false};
std::atomic<std::uint64_t> g_injected{0};
std::mutex g_mu;
FaultPlan g_plan;          // guarded by g_mu
std::uint64_t g_ops = 0;   // guarded by g_mu: matching ops seen so far
std::once_flag g_env_once;

/// Operation classes for "does this fault target this op?".
enum class OpClass : std::uint8_t { kOpen, kRead, kWrite };

bool kind_targets(FaultKind kind, OpClass op) {
  switch (kind) {
    case FaultKind::kNone: return false;
    case FaultKind::kFailOpen: return op == OpClass::kOpen;
    case FaultKind::kShortRead:
    case FaultKind::kFlipByte: return op == OpClass::kRead;
    case FaultKind::kFailWrite:
    case FaultKind::kTornWrite: return op == OpClass::kWrite;
    case FaultKind::kEintr: return op == OpClass::kRead || op == OpClass::kWrite;
  }
  return false;
}

FaultKind kind_from_string(std::string_view s) {
  if (s == "fail_open") return FaultKind::kFailOpen;
  if (s == "eintr") return FaultKind::kEintr;
  if (s == "short_read") return FaultKind::kShortRead;
  if (s == "flip_byte") return FaultKind::kFlipByte;
  if (s == "fail_write") return FaultKind::kFailWrite;
  if (s == "torn_write") return FaultKind::kTornWrite;
  return FaultKind::kNone;
}

/// Lazily installs a plan from CCC_FAULTFS ("kind@N" / "kind@N@substr").
/// A malformed value warns and is ignored — a corrupt env var must not be
/// able to change behaviour silently or kill the run.
void load_env_plan() {
  const char* env = std::getenv("CCC_FAULTFS");
  if (env == nullptr || *env == '\0') return;
  const std::string spec{env};
  const std::size_t a = spec.find('@');
  FaultPlan plan;
  bool ok = a != std::string::npos;
  if (ok) {
    plan.kind = kind_from_string(spec.substr(0, a));
    ok = plan.kind != FaultKind::kNone;
  }
  if (ok) {
    const std::size_t b = spec.find('@', a + 1);
    const std::string n = spec.substr(a + 1, b == std::string::npos ? b : b - a - 1);
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(n.c_str(), &end, 10);
    ok = !n.empty() && end != nullptr && *end == '\0' && errno == 0;
    plan.at_op = v;
    if (b != std::string::npos) plan.path_substr = spec.substr(b + 1);
  }
  if (!ok) {
    std::fprintf(stderr,
                 "faultfs: ignoring malformed CCC_FAULTFS='%s' "
                 "(want kind@N or kind@N@path-substring)\n",
                 spec.c_str());
    return;
  }
  set_plan(plan);
}

void ensure_env_loaded() { std::call_once(g_env_once, load_env_plan); }

/// Consults the plan for one operation. Returns the fault to apply now
/// (kNone almost always). Counts matching ops; records actual injections.
FaultKind consult(OpClass op, const std::string& path) {
  ensure_env_loaded();
  if (!g_active.load(std::memory_order_relaxed)) return FaultKind::kNone;
  std::lock_guard lk{g_mu};
  if (!kind_targets(g_plan.kind, op)) return FaultKind::kNone;
  if (!g_plan.path_substr.empty() && path.find(g_plan.path_substr) == std::string::npos) {
    return FaultKind::kNone;
  }
  if (g_ops++ != g_plan.at_op) return FaultKind::kNone;
  g_injected.fetch_add(1, std::memory_order_relaxed);
  return g_plan.kind;
}

}  // namespace

std::string_view to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kFailOpen: return "fail_open";
    case FaultKind::kEintr: return "eintr";
    case FaultKind::kShortRead: return "short_read";
    case FaultKind::kFlipByte: return "flip_byte";
    case FaultKind::kFailWrite: return "fail_write";
    case FaultKind::kTornWrite: return "torn_write";
  }
  return "unknown";
}

void set_plan(const FaultPlan& plan) {
  std::lock_guard lk{g_mu};
  g_plan = plan;
  g_ops = 0;
  g_injected.store(0, std::memory_order_relaxed);
  g_active.store(plan.kind != FaultKind::kNone, std::memory_order_relaxed);
}

void clear_plan() { set_plan(FaultPlan{}); }

bool plan_active() {
  ensure_env_loaded();
  return g_active.load(std::memory_order_relaxed);
}

std::uint64_t faults_injected() { return g_injected.load(std::memory_order_relaxed); }

bool mmap_allowed(const std::string& path) {
  ensure_env_loaded();
  if (!g_active.load(std::memory_order_relaxed)) return true;
  std::lock_guard lk{g_mu};
  const bool read_fault = kind_targets(g_plan.kind, OpClass::kRead);
  if (!read_fault) return true;
  return !g_plan.path_substr.empty() && path.find(g_plan.path_substr) == std::string::npos;
}

// ------------------------------------------------------------------ File

File::~File() { close_quiet(); }

File::File(File&& other) noexcept { *this = std::move(other); }

File& File::operator=(File&& other) noexcept {
  if (this == &other) return *this;
  close_quiet();
  fd_ = std::exchange(other.fd_, -1);
  path_ = std::move(other.path_);
  append_off_ = other.append_off_;
  torn_ = other.torn_;
  return *this;
}

void File::close_quiet() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

File File::open_read(const std::string& path) {
  if (consult(OpClass::kOpen, path) == FaultKind::kFailOpen) {
    throw Error::io(path, "cannot open for reading: injected EACCES");
  }
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    throw Error::io(path, std::string{"cannot open for reading: "} + std::strerror(errno));
  }
  return File{fd, path};
}

File File::open_trunc(const std::string& path) {
  if (consult(OpClass::kOpen, path) == FaultKind::kFailOpen) {
    throw Error::io(path, "cannot open for writing: injected EACCES");
  }
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    throw Error::io(path, std::string{"cannot open for writing: "} + std::strerror(errno));
  }
  return File{fd, path};
}

File File::open_append(const std::string& path) {
  if (consult(OpClass::kOpen, path) == FaultKind::kFailOpen) {
    throw Error::io(path, "cannot open for appending: injected EACCES");
  }
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    throw Error::io(path, std::string{"cannot open for appending: "} + std::strerror(errno));
  }
  File f{fd, path};
  f.append_off_ = f.size();
  return f;
}

std::uint64_t File::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    throw Error::io(path_, std::string{"fstat failed: "} + std::strerror(errno));
  }
  return static_cast<std::uint64_t>(st.st_size);
}

void File::write(const void* data, std::size_t len) {
  write_at(append_off_, data, len);
  append_off_ += len;
}

void File::write_at(std::uint64_t offset, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t done = 0;
  bool simulate_eintr = false;
  switch (consult(OpClass::kWrite, path_)) {
    case FaultKind::kFailWrite:
      throw Error::io(path_, "write failed: injected ENOSPC", offset);
    case FaultKind::kTornWrite:
      // Persist a prefix, then behave as if the machine lost power: every
      // later write on this file silently evaporates. close still succeeds.
      len = len / 2;
      torn_ = true;
      break;
    case FaultKind::kEintr:
      simulate_eintr = true;
      break;
    default:
      if (torn_) return;  // post-tear: drop silently
      break;
  }
  while (done < len) {
    if (simulate_eintr) {  // one synthetic EINTR, then carry on normally
      simulate_eintr = false;
      continue;
    }
    const ssize_t w = ::pwrite(fd_, p + done, len - done, static_cast<off_t>(offset + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      throw Error::io(path_, std::string{"write failed: "} + std::strerror(errno),
                      offset + done);
    }
    done += static_cast<std::size_t>(w);
  }
}

void File::read_exact_at(std::uint64_t offset, void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  FaultKind fault = consult(OpClass::kRead, path_);
  while (got < len) {
    std::size_t ask = len - got;
    bool skip_syscall = false;
    switch (fault) {
      case FaultKind::kShortRead:
        ask = std::max<std::size_t>(1, ask / 2);  // kernel returned less: loop resumes
        break;
      case FaultKind::kEintr:
        skip_syscall = true;  // one synthetic EINTR, then retry for real
        break;
      default:
        break;
    }
    if (skip_syscall) {
      fault = FaultKind::kNone;
      continue;
    }
    const ssize_t r = ::pread(fd_, p + got, ask, static_cast<off_t>(offset + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      throw Error::io(path_, std::string{"read failed: "} + std::strerror(errno), offset + got);
    }
    if (r == 0) {
      throw Error::io(path_, "read failed: unexpected end of file", offset + got);
    }
    got += static_cast<std::size_t>(r);
    if (fault == FaultKind::kFlipByte) {
      p[got - 1] ^= 0x40;  // corrupt the last byte delivered
    }
    fault = FaultKind::kNone;  // single-shot per operation
  }
}

void File::close_checked() {
  if (fd_ < 0) return;
  // fsync is deliberately not issued (benches write scratch stores; the
  // format's torn-write detection covers the crash window). close() errors
  // still matter: on NFS they are where ENOSPC surfaces.
  int rc = 0;
  do {
    rc = ::close(fd_);
  } while (rc != 0 && errno == EINTR);
  fd_ = -1;
  if (rc != 0) {
    throw Error::io(path_, std::string{"close failed: "} + std::strerror(errno));
  }
}

}  // namespace ccc::faultfs
