#include "util/fft.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace ccc {

std::size_t next_pow2(std::size_t n) {
  assert(n >= 1);
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  assert(is_pow2(n));
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<std::complex<double>> fft_real(std::span<const double> signal) {
  const std::size_t n = signal.empty() ? 1 : next_pow2(signal.size());
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < signal.size(); ++i) data[i] = {signal[i], 0.0};
  fft_inplace(data);
  return data;
}

std::size_t Spectrum::bin_for(double hz) const {
  assert(!magnitude.empty() && bin_hz > 0.0);
  const auto idx = static_cast<std::size_t>(std::llround(hz / bin_hz));
  return std::min(idx, magnitude.size() - 1);
}

double Spectrum::magnitude_at(double hz) const { return magnitude[bin_for(hz)]; }

Spectrum magnitude_spectrum(std::span<const double> signal, double sample_rate_hz) {
  assert(sample_rate_hz > 0.0);
  Spectrum out;
  if (signal.empty()) return out;

  // Remove DC so the (always large) mean does not leak into low bins.
  double mean = 0.0;
  for (double x : signal) mean += x;
  mean /= static_cast<double>(signal.size());

  std::vector<double> windowed(signal.size());
  const auto n_real = static_cast<double>(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) {
    const double hann =
        0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * static_cast<double>(i) / (n_real - 1.0)));
    windowed[i] = (signal[i] - mean) * (signal.size() > 1 ? hann : 1.0);
  }

  const auto spec = fft_real(windowed);
  const std::size_t n = spec.size();
  out.bin_hz = sample_rate_hz / static_cast<double>(n);
  out.magnitude.resize(n / 2 + 1);
  for (std::size_t i = 0; i < out.magnitude.size(); ++i) out.magnitude[i] = std::abs(spec[i]);
  return out;
}

}  // namespace ccc
