// faultfs — the IO layer under the flow store, with deterministic fault
// injection for robustness tests.
//
// Every file operation the ccfs writer/reader performs goes through
// faultfs::File (open, read, pread, write, patch-at-offset, close). In
// production the wrapper is a thin RAII fd with correct EINTR/short-
// read/short-write retry loops and ccc::Error diagnostics. Under test, a
// FaultPlan makes the *Nth* matching operation misbehave in a chosen way,
// so "what does a short read at exactly the directory load do?" is a unit
// test instead of a production incident.
//
// Faults and what they exercise:
//   kFailOpen    open() fails (EACCES)    -> structured kIo error surfaces
//   kEintr       one EINTR on the Nth read/write -> retry loop absorbs it;
//                the operation must still succeed (transparent)
//   kShortRead   the Nth pread returns half the bytes -> read loop resumes
//                (transparent)
//   kFlipByte    the Nth pread succeeds but one byte is flipped -> CRC /
//                structure validation must catch it (kCorruption)
//   kFailWrite   the Nth write fails (ENOSPC) -> writer throws kIo
//   kTornWrite   the Nth write persists only a prefix and every later
//                write (and the header patch) is silently dropped — a
//                crash/power-cut simulation; the reader must reject the
//                torn file at open
//
// Activation: programmatic via set_plan()/clear_plan() (tests), or the
// CCC_FAULTFS env var ("kind@N" or "kind@N@path-substring", e.g.
// CCC_FAULTFS=flip_byte@3@shard.00002) for whole-binary fault drills. The
// op counter is global and counts only operations of the kind the fault
// targets, on files matching the path substring. When any read-fault plan
// targets a path, the store reader bypasses mmap for it so reads actually
// route through pread (mmap'd page access cannot be intercepted).
//
// Inactive cost: one relaxed atomic load per operation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ccc::faultfs {

enum class FaultKind : std::uint8_t {
  kNone,
  kFailOpen,
  kEintr,
  kShortRead,
  kFlipByte,
  kFailWrite,
  kTornWrite,
};

[[nodiscard]] std::string_view to_string(FaultKind k);

struct FaultPlan {
  FaultKind kind{FaultKind::kNone};
  /// Inject at the Nth matching operation (0-based).
  std::uint64_t at_op{0};
  /// Only operations on paths containing this substring; "" = every file.
  std::string path_substr{};
};

/// Installs `plan` and resets the op / injection counters. Thread-safe.
void set_plan(const FaultPlan& plan);

/// Deactivates injection (the state tests must restore). Thread-safe.
void clear_plan();

/// True when a plan is installed (after env-var lazy load).
[[nodiscard]] bool plan_active();

/// How many faults have actually fired since set_plan(). Tests assert this
/// is nonzero so a refactor that routes IO around the shim cannot pass
/// vacuously.
[[nodiscard]] std::uint64_t faults_injected();

/// True when `path` may be mmap'd: no active read-fault plan targets it.
[[nodiscard]] bool mmap_allowed(const std::string& path);

/// RAII fd wrapper; all methods throw ccc::Error (category kIo) on real or
/// injected failure. Move-only.
class File {
 public:
  File() = default;
  ~File();
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Opens for reading / creates-truncates for writing.
  [[nodiscard]] static File open_read(const std::string& path);
  [[nodiscard]] static File open_trunc(const std::string& path);
  /// Opens (creating if absent) for writing with the append offset
  /// positioned at the current end of file — existing bytes are preserved.
  /// This is the journal-resume open: a checkpoint file keeps its completed
  /// records and new ones land after them.
  [[nodiscard]] static File open_append(const std::string& path);

  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// File size via fstat.
  [[nodiscard]] std::uint64_t size() const;

  /// Appends exactly `len` bytes at the current write offset (EINTR and
  /// short writes retried; torn-write injection may silently drop — that is
  /// the point).
  void write(const void* data, std::size_t len);

  /// Overwrites `len` bytes at absolute `offset` (the header patch). Does
  /// not move the append offset.
  void write_at(std::uint64_t offset, const void* data, std::size_t len);

  /// Reads exactly `len` bytes at absolute `offset`; throws on EOF-short
  /// files as well as on errors.
  void read_exact_at(std::uint64_t offset, void* data, std::size_t len);

  /// Flushes to the OS and closes, reporting errors (unlike ~File, which
  /// closes silently). Idempotent.
  void close_checked();

 private:
  explicit File(int fd, std::string path) : fd_{fd}, path_{std::move(path)} {}
  void close_quiet() noexcept;

  int fd_{-1};
  std::string path_;
  std::uint64_t append_off_{0};
  bool torn_{false};  ///< torn-write fired: drop every subsequent write
};

}  // namespace ccc::faultfs
