// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in ccascope (workload generators, the synthetic
// NDT dataset, jitter models) draws from an Rng seeded explicitly by the
// scenario. Two runs with the same seed produce byte-identical output; the
// simulator never reads wall-clock entropy.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/units.hpp"

namespace ccc {

/// A seeded pseudo-random source with the distributions our workloads need.
///
/// Wraps std::mt19937_64 (fixed algorithm across platforms, guaranteed by the
/// standard) so results are reproducible everywhere.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_{seed} {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() { return unit_(engine_); }
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }
  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) { return uniform() < p; }

  /// Exponential with the given mean (mean = 1/lambda). Used for poisson
  /// inter-arrival times of short flows (§3.2's "poisson arrivals" traffic).
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  /// Normal (Gaussian) with mean mu and standard deviation sigma.
  [[nodiscard]] double normal(double mu, double sigma) {
    return std::normal_distribution<double>{mu, sigma}(engine_);
  }

  /// Log-normal parameterized by the *underlying* normal's mu/sigma.
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>{mu, sigma}(engine_);
  }

  /// Bounded Pareto on [lo, hi] with shape alpha. Models heavy-tailed flow
  /// sizes ("most flows are short, most bytes are in long flows", §2.2).
  [[nodiscard]] double bounded_pareto(double alpha, double lo, double hi);

  /// Poisson-distributed count with the given mean.
  [[nodiscard]] std::int64_t poisson(double mean) {
    return std::poisson_distribution<std::int64_t>{mean}(engine_);
  }

  /// Pick an index in [0, weights.size()) with probability proportional to
  /// its weight. Precondition: at least one strictly positive weight.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights);

  /// Derive an independent child generator (for per-flow streams) so that
  /// adding draws in one component does not perturb another.
  [[nodiscard]] Rng fork() { return Rng{engine_()}; }

  /// Access the raw engine for std distributions not wrapped above.
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace ccc
