// Descriptive statistics used by the analysis pipeline and the benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ccc {

/// Streaming mean/variance/min/max over doubles (Welford's algorithm).
/// O(1) memory; suitable for per-packet accumulation inside the simulator.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  /// Mean of the samples. Precondition: !empty().
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance; 0 if fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Quantile of a sample set using linear interpolation between order
/// statistics (type-7, the numpy/R default). q in [0, 1]. Copies and sorts;
/// use Cdf for repeated queries. Precondition: non-empty input.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Convenience: the median.
[[nodiscard]] double median(std::span<const double> xs);

/// An empirical CDF built once from a sample set and queried repeatedly.
/// Also enumerates (value, cumulative-fraction) points for figure output.
class Cdf {
 public:
  /// Builds from any sample set. Precondition: non-empty.
  explicit Cdf(std::span<const double> xs);

  /// Fraction of samples <= x.
  [[nodiscard]] double fraction_at_or_below(double x) const;
  /// Inverse CDF (same interpolation as quantile()).
  [[nodiscard]] double value_at_quantile(double q) const;
  [[nodiscard]] std::size_t count() const { return sorted_.size(); }

  /// `points` evenly spaced (value, fraction) pairs suitable for plotting.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Jain's fairness index over a set of allocations (paper §1, ref [4]).
/// Returns 1.0 for perfectly equal shares, 1/n for a single-flow monopoly.
/// Precondition: non-empty, all values >= 0, at least one > 0.
[[nodiscard]] double jain_fairness_index(std::span<const double> allocations);

/// Ware et al.'s "harm" metric (paper §1/§4, ref [68]): the fractional
/// degradation a flow suffers relative to its solo performance on a
/// more-is-better metric such as throughput.
/// harm = max(0, (solo - contended) / solo). Precondition: solo > 0.
[[nodiscard]] double harm(double solo, double contended);

}  // namespace ccc
