// A small self-contained FFT, sufficient for Nimbus elasticity detection.
//
// Nimbus (paper §3.2, ref [54]) classifies cross traffic by looking at the
// frequency content of the estimated cross-traffic rate: elastic (contending)
// traffic responds to the probe's sinusoidal pulses, concentrating energy at
// the pulse frequency. The windows involved are short (a few thousand
// samples), so an in-place iterative radix-2 Cooley-Tukey transform is ample.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace ccc {

/// True iff n is a power of two (and > 0).
[[nodiscard]] constexpr bool is_pow2(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n. Precondition: n >= 1.
[[nodiscard]] std::size_t next_pow2(std::size_t n);

/// In-place iterative radix-2 FFT. Precondition: data.size() is a power of 2.
/// `inverse` computes the unscaled inverse transform (caller divides by N).
void fft_inplace(std::span<std::complex<double>> data, bool inverse = false);

/// Forward FFT of a real signal. Zero-pads to the next power of two.
/// Returns the full complex spectrum (size = padded length).
[[nodiscard]] std::vector<std::complex<double>> fft_real(std::span<const double> signal);

/// One-sided magnitude spectrum of a real signal sampled at `sample_rate_hz`,
/// after removing the mean (DC) and applying a Hann window to limit leakage.
/// Result[i] is the magnitude at frequency i * sample_rate_hz / N_padded for
/// i in [0, N_padded/2].
struct Spectrum {
  std::vector<double> magnitude;  ///< one-sided magnitudes, index 0 = DC
  double bin_hz{0.0};             ///< frequency spacing between bins

  /// Index of the bin closest to `hz`. Precondition: spectrum non-empty.
  [[nodiscard]] std::size_t bin_for(double hz) const;
  /// Magnitude at the bin closest to `hz`.
  [[nodiscard]] double magnitude_at(double hz) const;
};
[[nodiscard]] Spectrum magnitude_spectrum(std::span<const double> signal, double sample_rate_hz);

}  // namespace ccc
