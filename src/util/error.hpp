// ccc::Error — the structured error type every input/IO path throws.
//
// A bare std::runtime_error with a prose message forces callers into
// substring matching when they need to decide "retryable IO hiccup or
// corrupt data?" — and at M-Lab scale that decision is the difference
// between one skipped shard and a dead million-flow run. Error carries the
// machine-readable triple callers actually branch on:
//
//   category      io | format | corruption | config (see ErrorCategory)
//   path          the file (or flag) the error is about, "" when unknown
//   byte_offset   where in the file, kNoOffset when not meaningful
//
// plus the human-readable detail. what() renders all of it, so an Error
// that does escape to a terminal is still a useful diagnostic. Deriving
// from std::runtime_error keeps every existing `catch (std::runtime_error)`
// and EXPECT_THROW site working unchanged.
//
// Category semantics (the corruption-matrix tests pin these):
//   kIo          the OS said no: open/read/write/stat failed. The data may
//                be fine; the operation was not. Often transient.
//   kFormat      the bytes are readable but not a valid document: bad
//                magic, unsupported version, impossible section table.
//   kCorruption  the document was once valid and is now provably damaged:
//                CRC mismatch, torn footer, truncation, non-monotone
//                offsets. Retrying will not help; skipping the shard might.
//   kConfig      the caller asked for something unsatisfiable: bad flag
//                value, API misuse (append after finish). Exit code 2
//                territory in bench mains.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ccc {

enum class ErrorCategory : std::uint8_t { kIo, kFormat, kCorruption, kConfig };

[[nodiscard]] constexpr std::string_view to_string(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kIo: return "io";
    case ErrorCategory::kFormat: return "format";
    case ErrorCategory::kCorruption: return "corruption";
    case ErrorCategory::kConfig: return "config";
  }
  return "unknown";
}

class Error : public std::runtime_error {
 public:
  /// byte_offset value meaning "no offset applies" (config errors, opens).
  static constexpr std::uint64_t kNoOffset = ~std::uint64_t{0};

  Error(ErrorCategory category, std::string path, std::string detail,
        std::uint64_t byte_offset = kNoOffset)
      : std::runtime_error{render(category, path, detail, byte_offset)},
        category_{category},
        path_{std::move(path)},
        detail_{std::move(detail)},
        byte_offset_{byte_offset} {}

  [[nodiscard]] ErrorCategory category() const noexcept { return category_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// The undecorated message (what() is the rendered composite).
  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }
  [[nodiscard]] std::uint64_t byte_offset() const noexcept { return byte_offset_; }
  [[nodiscard]] bool has_byte_offset() const noexcept { return byte_offset_ != kNoOffset; }

  // Factories, so throw sites read as what went wrong, not how it is spelled.
  [[nodiscard]] static Error io(std::string path, std::string detail,
                                std::uint64_t offset = kNoOffset) {
    return Error{ErrorCategory::kIo, std::move(path), std::move(detail), offset};
  }
  [[nodiscard]] static Error format(std::string path, std::string detail,
                                    std::uint64_t offset = kNoOffset) {
    return Error{ErrorCategory::kFormat, std::move(path), std::move(detail), offset};
  }
  [[nodiscard]] static Error corruption(std::string path, std::string detail,
                                        std::uint64_t offset = kNoOffset) {
    return Error{ErrorCategory::kCorruption, std::move(path), std::move(detail), offset};
  }
  [[nodiscard]] static Error config(std::string path, std::string detail) {
    return Error{ErrorCategory::kConfig, std::move(path), std::move(detail)};
  }

 private:
  [[nodiscard]] static std::string render(ErrorCategory category, const std::string& path,
                                          const std::string& detail, std::uint64_t offset) {
    std::string out{"["};
    out += to_string(category);
    out += "] ";
    if (!path.empty()) {
      out += path;
      out += ": ";
    }
    out += detail;
    if (offset != kNoOffset) {
      out += " (byte offset ";
      out += std::to_string(offset);
      out += ")";
    }
    return out;
  }

  ErrorCategory category_;
  std::string path_;
  std::string detail_;
  std::uint64_t byte_offset_;
};

}  // namespace ccc
