#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ccc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  assert(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  assert(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  assert(n_ > 0);
  return max_;
}

namespace {

// Type-7 quantile on an already-sorted vector.
double sorted_quantile(const std::vector<double>& s, double q) {
  assert(!s.empty());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return s[lo] + (s[hi] - s[lo]) * frac;
}

}  // namespace

double quantile(std::span<const double> xs, double q) {
  std::vector<double> s{xs.begin(), xs.end()};
  std::sort(s.begin(), s.end());
  return sorted_quantile(s, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Cdf::Cdf(std::span<const double> xs) : sorted_{xs.begin(), xs.end()} {
  assert(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::fraction_at_or_below(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Cdf::value_at_quantile(double q) const { return sorted_quantile(sorted_, q); }

std::vector<std::pair<double, double>> Cdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  if (points == 0) return out;
  for (std::size_t i = 0; i < points; ++i) {
    const double q = points == 1 ? 1.0 : static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(value_at_quantile(q), q);
  }
  return out;
}

double jain_fairness_index(std::span<const double> allocations) {
  assert(!allocations.empty());
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : allocations) {
    assert(x >= 0.0);
    sum += x;
    sum_sq += x * x;
  }
  assert(sum > 0.0);
  return (sum * sum) / (static_cast<double>(allocations.size()) * sum_sq);
}

double harm(double solo, double contended) {
  assert(solo > 0.0);
  return std::max(0.0, (solo - contended) / solo);
}

}  // namespace ccc
