// Name-based CCA construction, so benches and examples can select
// algorithms from strings ("reno", "cubic", "bbr", ...).
#pragma once

#include <string_view>
#include <vector>

#include "cca/cca.hpp"

namespace ccc::core {

/// Returns a factory for the named CCA. Known names: "reno" (NewReno),
/// "cubic", "bbr", "vegas", "copa", "aimd" (Reno-parameter AIMD).
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] cca::CcaFactory make_cca_factory(std::string_view name);

/// All names make_cca_factory accepts.
[[nodiscard]] std::vector<std::string_view> known_ccas();

}  // namespace ccc::core
