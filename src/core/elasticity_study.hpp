// The Figure 3 proof-of-concept (§3.2), end to end.
//
// A Nimbus probe flow (mode switching disabled, pulses maintained) runs
// continuously on an emulated 48 Mbit/s, 100 ms-RTT DropTail link while five
// cross-traffic types take 45-second turns:
//   1. persistently backlogged NewReno     (contends  -> elastic)
//   2. persistently backlogged BBR         (contends  -> elastic)
//   3. ABR video stream                    (app-limited -> inelastic)
//   4. short flows with Poisson arrivals   (too short  -> inelastic)
//   5. constant-bitrate UDP                (clockwork  -> inelastic)
// The study reports the probe's elasticity time series and per-phase
// summaries; reproduction succeeds if phases 1-2 sit clearly above the
// elastic threshold and phases 3-5 below it.
#pragma once

#include <string>
#include <vector>

#include "core/dumbbell.hpp"
#include "nimbus/nimbus.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/sampler.hpp"
#include "util/units.hpp"

namespace ccc::core {

struct ElasticityPocConfig {
  Rate link_rate{Rate::mbps(48)};
  Time one_way_delay{Time::ms(50)};   ///< forward; reverse equal -> 100 ms RTT
  Time phase_duration{Time::sec(45.0)};
  Time warmup{Time::sec(5.0)};        ///< probe alone before phase 1
  Rate cbr_rate{Rate::mbps(12)};
  Time short_flow_interarrival{Time::ms(300)};
  Time sample_interval{Time::ms(250)};
  nimbus::NimbusConfig nimbus{};      ///< mode switching off by default
  std::uint64_t seed{0x600dcafe};
};

struct PhaseSummary {
  std::string name;
  double t_begin_sec{0.0};
  double t_end_sec{0.0};
  double median_elasticity{0.0};
  double p90_elasticity{0.0};
  /// Fraction of samples above the Nimbus elastic threshold.
  double frac_elastic{0.0};
  double probe_goodput_mbps{0.0};
};

struct ElasticityPocResult {
  telemetry::TimeSeries elasticity;       ///< (t, eta) over the whole run
  telemetry::TimeSeries probe_rate_mbps;  ///< probe base rate (diagnostics)
  std::vector<PhaseSummary> phases;
  /// Machine-readable run artifact: per-phase summary scalars followed by
  /// the full metric registry (link/qdisc/flow/CCA instruments). Row order
  /// is phase order then registry (name) order, so the parallel variant's
  /// report is byte-identical for any job count. In the parallel variant
  /// registry rows are scoped per phase and stamped with phase-local sim
  /// time; the serial variant exports its one continuous registry under
  /// scope "net".
  telemetry::RunReport report;
};

// ---- Shared building blocks ----
// Exposed so other figure-3-derived experiments (notably the elastic
// service sweep in src/elastic/study.cpp) replay the exact same probe and
// cross-traffic archetypes instead of re-deriving them.

inline constexpr int kElasticityPhaseCount = 5;

/// Canonical phase name: reno-bulk, bbr-bulk, abr-video, poisson-short,
/// cbr-udp. Precondition: 0 <= phase < kElasticityPhaseCount.
[[nodiscard]] const char* elasticity_phase_name(int phase);

/// The study's dumbbell (link, delays, 1.5x-BDP buffer, telemetry on).
[[nodiscard]] DumbbellConfig elasticity_dumbbell(const ElasticityPocConfig& cfg,
                                                 std::uint64_t seed);

/// Installs the Nimbus probe flow (capacity hint = link rate unless the
/// config overrides it) and returns a handle; `probe_idx` (optional)
/// receives the flow index for goodput accounting.
nimbus::NimbusCca* add_elasticity_probe(DumbbellScenario& net, const ElasticityPocConfig& cfg,
                                        std::size_t* probe_idx);

/// Adds phase `phase`'s cross traffic (all user 2), active on [begin, end).
void add_elasticity_phase_traffic(DumbbellScenario& net, const ElasticityPocConfig& cfg,
                                  int phase, Time begin, Time end);

/// Runs the full five-phase experiment as ONE continuous simulation (the
/// paper's literal setup: a single probe watches cross-traffic types take
/// turns). Deterministic for a given config.
[[nodiscard]] ElasticityPocResult run_elasticity_poc(const ElasticityPocConfig& cfg = {});

/// Runs the same five phases as five *independent* single-phase simulations
/// (probe + warmup + one cross-traffic type each) fanned out over a
/// runner::ExperimentRunner with `jobs` workers (0 = CCC_JOBS / hardware).
///
/// Each phase simulation is deterministic and owns its scheduler and RNG
/// (seeded via runner::derive_seed(cfg.seed, phase)), so results are
/// bit-identical for any job count. Phase windows are reported on the same
/// canonical timeline as the serial run; per-phase warmup samples (which
/// have no canonical-timeline equivalent after phase 1) are dropped from the
/// stitched time series. Versus the serial run this also removes cross-phase
/// contamination: no FFT window ever spans two traffic types.
[[nodiscard]] ElasticityPocResult run_elasticity_poc_parallel(
    const ElasticityPocConfig& cfg = {}, unsigned jobs = 0);

}  // namespace ccc::core
