#include "core/elasticity_study.hpp"

#include <memory>

#include "app/abr_video.hpp"
#include "app/bulk.hpp"
#include "app/stop_at.hpp"
#include "cca/bbr.hpp"
#include "cca/cubic.hpp"
#include "cca/new_reno.hpp"
#include "core/cca_registry.hpp"
#include "core/dumbbell.hpp"
#include "util/stats.hpp"

namespace ccc::core {

ElasticityPocResult run_elasticity_poc(const ElasticityPocConfig& cfg) {
  DumbbellConfig dc;
  dc.bottleneck_rate = cfg.link_rate;
  dc.one_way_delay = cfg.one_way_delay;
  dc.reverse_delay = cfg.one_way_delay;
  // 1.5x BDP of DropTail buffer: deep enough for BBR to become
  // window-limited when competing (its elastic regime) while keeping the
  // queue shallow enough that loss-based responses still reach the probe at
  // the pulse frequency (see EXPERIMENTS.md for this sensitivity).
  dc.buffer_bdp_multiple = 1.5;
  dc.seed = cfg.seed;
  DumbbellScenario net{dc};

  // --- the probe ---
  // The paper's testbed emulates a known 48 Mbit/s link, so the probe gets
  // the capacity as a hint (the deployed measurement study would obtain it
  // from a prior speedtest-style estimate). The windowed-max estimator
  // remains available and is ablated in bench/fig7.
  nimbus::NimbusConfig ncfg = cfg.nimbus;
  if (ncfg.capacity_hint.is_zero()) ncfg.capacity_hint = cfg.link_rate;
  auto nimbus_cc = std::make_unique<nimbus::NimbusCca>(net.scheduler(), ncfg);
  nimbus::NimbusCca* probe = nimbus_cc.get();
  const std::size_t probe_idx =
      net.add_flow(std::move(nimbus_cc), std::make_unique<app::BulkApp>(), /*user=*/1);

  // --- the five phases ---
  const Time p = cfg.phase_duration;
  const Time t0 = cfg.warmup;
  struct Phase {
    std::string name;
    Time begin;
    Time end;
  };
  std::vector<Phase> phases;
  for (int i = 0; i < 5; ++i) {
    static const char* names[] = {"reno-bulk", "bbr-bulk", "abr-video", "poisson-short",
                                  "cbr-udp"};
    phases.push_back({names[i], t0 + p * i, t0 + p * (i + 1)});
  }

  // Phase 1: backlogged NewReno.
  net.add_flow(std::make_unique<cca::NewReno>(),
               std::make_unique<app::StopAtApp>(std::make_unique<app::BulkApp>(), phases[0].end),
               /*user=*/2, phases[0].begin);
  // Phase 2: backlogged BBR.
  net.add_flow(std::make_unique<cca::Bbr>(),
               std::make_unique<app::StopAtApp>(std::make_unique<app::BulkApp>(), phases[1].end),
               /*user=*/2, phases[1].begin);
  // Phase 3: ABR video over Cubic (a realistic streaming stack). The ladder
  // tops out at HD rates (~5.8 Mbit/s), as for the single stream the paper
  // ran: demand bounded far below the 48 Mbit/s link.
  app::AbrConfig video_cfg;
  video_cfg.ladder = {Rate::mbps(0.35), Rate::mbps(0.75), Rate::mbps(1.75), Rate::mbps(3.0),
                      Rate::mbps(5.8)};
  // Server-paced chunk delivery at 2x playback, as streaming CDNs do — the
  // transport never gets a full chunk to blast at line rate.
  video_cfg.supply_rate_multiple = 2.0;
  net.add_flow(
      std::make_unique<cca::Cubic>(),
      std::make_unique<app::StopAtApp>(
          std::make_unique<app::AbrVideoApp>(net.scheduler(), video_cfg), phases[2].end),
      /*user=*/2, phases[2].begin);
  // Phase 4: Poisson short flows (Cubic, like ordinary web traffic).
  {
    flow::ShortFlowConfig sf;
    sf.user = 2;
    sf.start_at = phases[3].begin;
    sf.stop_at = phases[3].end;
    sf.mean_interarrival = cfg.short_flow_interarrival;
    net.add_short_flows(sf, make_cca_factory("cubic"));
  }
  // Phase 5: constant-bitrate UDP.
  net.add_cbr(cfg.cbr_rate, phases[4].begin, phases[4].end, /*user=*/2);

  // --- sampling ---
  ElasticityPocResult result;
  result.elasticity.name = "elasticity";
  result.probe_rate_mbps.name = "probe_base_rate_mbps";
  const Time run_end = phases.back().end + Time::sec(1.0);
  telemetry::PeriodicSampler sampler{
      net.scheduler(), cfg.sample_interval, Time::sec(1.0), run_end, [&](Time now) {
        result.elasticity.add(now, probe->elasticity());
        result.probe_rate_mbps.add(now, probe->base_rate().to_mbps());
      }};

  // --- run phase by phase, measuring probe goodput per phase ---
  net.run_until(t0);
  for (const auto& ph : phases) {
    const auto snap = net.snapshot_delivered();
    net.run_until(ph.end);
    PhaseSummary s;
    s.name = ph.name;
    s.t_begin_sec = ph.begin.to_sec();
    s.t_end_sec = ph.end.to_sec();
    s.probe_goodput_mbps = net.goodput_mbps_since(probe_idx, snap, ph.end - ph.begin);

    // Skip the first 20% of each phase when summarizing elasticity: the FFT
    // window still spans the previous phase there.
    const double skip = ph.begin.to_sec() + 0.2 * (ph.end - ph.begin).to_sec();
    const auto etas = result.elasticity.slice(skip, ph.end.to_sec());
    if (!etas.empty()) {
      s.median_elasticity = median(etas);
      s.p90_elasticity = quantile(etas, 0.9);
      std::size_t above = 0;
      for (double e : etas) {
        if (e >= nimbus::kElasticThreshold) ++above;
      }
      s.frac_elastic = static_cast<double>(above) / static_cast<double>(etas.size());
    }
    result.phases.push_back(std::move(s));
  }
  net.run_until(run_end);
  return result;
}

}  // namespace ccc::core
