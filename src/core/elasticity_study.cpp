#include "core/elasticity_study.hpp"

#include <memory>

#include "app/abr_video.hpp"
#include "app/bulk.hpp"
#include "app/stop_at.hpp"
#include "cca/bbr.hpp"
#include "cca/cubic.hpp"
#include "cca/new_reno.hpp"
#include "core/cca_registry.hpp"
#include "core/dumbbell.hpp"
#include "runner/experiment_runner.hpp"
#include "util/stats.hpp"

namespace ccc::core {

namespace {

constexpr const char* kPhaseNames[kElasticityPhaseCount] = {
    "reno-bulk", "bbr-bulk", "abr-video", "poisson-short", "cbr-udp"};

}  // namespace

const char* elasticity_phase_name(int phase) { return kPhaseNames[phase]; }

/// Builds the shared dumbbell (link + buffer sizing rationale is identical
/// for the serial and per-phase variants).
DumbbellConfig elasticity_dumbbell(const ElasticityPocConfig& cfg, std::uint64_t seed) {
  DumbbellConfig dc;
  dc.bottleneck_rate = cfg.link_rate;
  dc.one_way_delay = cfg.one_way_delay;
  dc.reverse_delay = cfg.one_way_delay;
  // 1.5x BDP of DropTail buffer: deep enough for BBR to become
  // window-limited when competing (its elastic regime) while keeping the
  // queue shallow enough that loss-based responses still reach the probe at
  // the pulse frequency (see EXPERIMENTS.md for this sensitivity).
  dc.buffer_bdp_multiple = 1.5;
  dc.seed = seed;
  // Observation only — binds the link/flow instruments so the RunReport can
  // carry sojourn/RTT histograms; has no effect on simulated dynamics.
  dc.enable_telemetry = true;
  return dc;
}

/// Installs the probe flow and returns a handle to it.
nimbus::NimbusCca* add_elasticity_probe(DumbbellScenario& net, const ElasticityPocConfig& cfg,
                                        std::size_t* probe_idx) {
  // The paper's testbed emulates a known 48 Mbit/s link, so the probe gets
  // the capacity as a hint (the deployed measurement study would obtain it
  // from a prior speedtest-style estimate). The windowed-max estimator
  // remains available and is ablated in bench/fig7.
  nimbus::NimbusConfig ncfg = cfg.nimbus;
  if (ncfg.capacity_hint.is_zero()) ncfg.capacity_hint = cfg.link_rate;
  auto nimbus_cc = std::make_unique<nimbus::NimbusCca>(net.scheduler(), ncfg);
  nimbus::NimbusCca* probe = nimbus_cc.get();
  const std::size_t idx =
      net.add_flow(std::move(nimbus_cc), std::make_unique<app::BulkApp>(), /*user=*/1);
  if (probe_idx != nullptr) *probe_idx = idx;
  return probe;
}

/// Adds phase `phase`'s cross traffic (all user 2), active on [begin, end).
void add_elasticity_phase_traffic(DumbbellScenario& net, const ElasticityPocConfig& cfg,
                                  int phase, Time begin, Time end) {
  switch (phase) {
    case 0:  // backlogged NewReno
      net.add_flow(
          std::make_unique<cca::NewReno>(),
          std::make_unique<app::StopAtApp>(std::make_unique<app::BulkApp>(), end),
          /*user=*/2, begin);
      break;
    case 1:  // backlogged BBR
      net.add_flow(std::make_unique<cca::Bbr>(),
                   std::make_unique<app::StopAtApp>(std::make_unique<app::BulkApp>(), end),
                   /*user=*/2, begin);
      break;
    case 2: {  // ABR video over Cubic (a realistic streaming stack). The
      // ladder tops out at HD rates (~5.8 Mbit/s), as for the single stream
      // the paper ran: demand bounded far below the 48 Mbit/s link.
      app::AbrConfig video_cfg;
      video_cfg.ladder = {Rate::mbps(0.35), Rate::mbps(0.75), Rate::mbps(1.75), Rate::mbps(3.0),
                          Rate::mbps(5.8)};
      // Server-paced chunk delivery at 2x playback, as streaming CDNs do —
      // the transport never gets a full chunk to blast at line rate.
      video_cfg.supply_rate_multiple = 2.0;
      net.add_flow(std::make_unique<cca::Cubic>(),
                   std::make_unique<app::StopAtApp>(
                       std::make_unique<app::AbrVideoApp>(net.scheduler(), video_cfg), end),
                   /*user=*/2, begin);
      break;
    }
    case 3: {  // Poisson short flows (Cubic, like ordinary web traffic)
      flow::ShortFlowConfig sf;
      sf.user = 2;
      sf.start_at = begin;
      sf.stop_at = end;
      sf.mean_interarrival = cfg.short_flow_interarrival;
      net.add_short_flows(sf, make_cca_factory("cubic"));
      break;
    }
    case 4:  // constant-bitrate UDP
      net.add_cbr(cfg.cbr_rate, begin, end, /*user=*/2);
      break;
    default:
      break;
  }
}

namespace {

/// Appends phase `i`'s headline scalars (canonical-timeline windows) to the
/// report — the shared row layout of the serial and parallel variants.
void report_phase_scalars(telemetry::RunReport& report, const PhaseSummary& s) {
  const Time at = Time::sec(s.t_end_sec);
  report.add_scalar(s.name, "t_begin_sec", s.t_begin_sec, at);
  report.add_scalar(s.name, "t_end_sec", s.t_end_sec, at);
  report.add_scalar(s.name, "median_elasticity", s.median_elasticity, at);
  report.add_scalar(s.name, "p90_elasticity", s.p90_elasticity, at);
  report.add_scalar(s.name, "frac_elastic", s.frac_elastic, at);
  report.add_scalar(s.name, "probe_goodput_mbps", s.probe_goodput_mbps, at);
}

/// Summarizes the probe's elasticity samples over a phase window, skipping
/// the first 20%: there the FFT window still spans what came before the
/// phase (the previous phase serially, the warmup in per-phase runs).
void summarize_phase(const telemetry::TimeSeries& etas, double begin_sec, double end_sec,
                     PhaseSummary* s) {
  const double skip = begin_sec + 0.2 * (end_sec - begin_sec);
  const auto window = etas.slice(skip, end_sec);
  if (window.empty()) return;
  s->median_elasticity = median(window);
  s->p90_elasticity = quantile(window, 0.9);
  std::size_t above = 0;
  for (double e : window) {
    if (e >= nimbus::kElasticThreshold) ++above;
  }
  s->frac_elastic = static_cast<double>(above) / static_cast<double>(window.size());
}

/// One phase as its own simulation: probe warms up alone on [0, warmup),
/// then the phase's cross traffic runs for phase_duration. Returned series
/// use the LOCAL clock; the caller shifts them onto the canonical timeline.
struct SinglePhaseResult {
  PhaseSummary summary;
  telemetry::TimeSeries elasticity;
  telemetry::TimeSeries probe_rate_mbps;
  /// This phase's registry rows (scope = phase name, phase-local time).
  telemetry::RunReport fragment;
};

SinglePhaseResult run_single_phase(const ElasticityPocConfig& cfg, int phase) {
  DumbbellScenario net{elasticity_dumbbell(cfg, runner::derive_seed(cfg.seed, phase))};
  std::size_t probe_idx = 0;
  nimbus::NimbusCca* probe = add_elasticity_probe(net, cfg, &probe_idx);

  const Time begin = cfg.warmup;
  const Time end = cfg.warmup + cfg.phase_duration;
  add_elasticity_phase_traffic(net, cfg, phase, begin, end);

  SinglePhaseResult out;
  out.elasticity.name = "elasticity";
  out.probe_rate_mbps.name = "probe_base_rate_mbps";
  telemetry::PeriodicSampler sampler{
      net.scheduler(), cfg.sample_interval, Time::sec(1.0), end + Time::sec(1.0),
      [&](Time now) {
        // Each sample runs one spectrum over the probe's z window; the
        // FFT plan and scratch buffers persist inside the probe's
        // SpectrumWorkspace, so repeated windows allocate nothing.
        out.elasticity.add(now, probe->elasticity());
        out.probe_rate_mbps.add(now, probe->base_rate().to_mbps());
      }};

  net.run_until(begin);
  const auto snap = net.snapshot_delivered();
  net.run_until(end);
  out.summary.name = kPhaseNames[phase];
  out.summary.probe_goodput_mbps = net.goodput_mbps_since(probe_idx, snap, end - begin);
  summarize_phase(out.elasticity, begin.to_sec(), end.to_sec(), &out.summary);
  net.collect_metrics();
  out.fragment.add_registry(kPhaseNames[phase], net.metrics(), end);
  return out;
}

}  // namespace

ElasticityPocResult run_elasticity_poc(const ElasticityPocConfig& cfg) {
  DumbbellScenario net{elasticity_dumbbell(cfg, cfg.seed)};
  std::size_t probe_idx = 0;
  nimbus::NimbusCca* probe = add_elasticity_probe(net, cfg, &probe_idx);

  // --- the five phases, back to back on one timeline ---
  const Time p = cfg.phase_duration;
  const Time t0 = cfg.warmup;
  struct Phase {
    Time begin;
    Time end;
  };
  std::vector<Phase> phases;
  for (int i = 0; i < kElasticityPhaseCount; ++i) {
    phases.push_back({t0 + p * i, t0 + p * (i + 1)});
    add_elasticity_phase_traffic(net, cfg, i, phases.back().begin, phases.back().end);
  }

  // --- sampling ---
  ElasticityPocResult result;
  result.elasticity.name = "elasticity";
  result.probe_rate_mbps.name = "probe_base_rate_mbps";
  const Time run_end = phases.back().end + Time::sec(1.0);
  telemetry::PeriodicSampler sampler{
      net.scheduler(), cfg.sample_interval, Time::sec(1.0), run_end, [&](Time now) {
        result.elasticity.add(now, probe->elasticity());
        result.probe_rate_mbps.add(now, probe->base_rate().to_mbps());
      }};

  // --- run phase by phase, measuring probe goodput per phase ---
  net.run_until(t0);
  for (int i = 0; i < kElasticityPhaseCount; ++i) {
    const auto& ph = phases[i];
    const auto snap = net.snapshot_delivered();
    net.run_until(ph.end);
    PhaseSummary s;
    s.name = kPhaseNames[i];
    s.t_begin_sec = ph.begin.to_sec();
    s.t_end_sec = ph.end.to_sec();
    s.probe_goodput_mbps = net.goodput_mbps_since(probe_idx, snap, ph.end - ph.begin);
    summarize_phase(result.elasticity, s.t_begin_sec, s.t_end_sec, &s);
    result.phases.push_back(std::move(s));
  }
  net.run_until(run_end);

  result.report.set_bench("fig3_elasticity_poc", cfg.seed);
  for (const auto& s : result.phases) report_phase_scalars(result.report, s);
  net.collect_metrics();
  result.report.add_registry("net", net.metrics(), run_end);
  return result;
}

ElasticityPocResult run_elasticity_poc_parallel(const ElasticityPocConfig& cfg,
                                                unsigned jobs) {
  runner::ExperimentRunner pool{{.jobs = jobs}};
  const auto singles = pool.map<SinglePhaseResult>(
      kElasticityPhaseCount, [&cfg](std::size_t i) { return run_single_phase(cfg, static_cast<int>(i)); });

  // Stitch the independent phases back onto the canonical timeline: phase i's
  // local window [warmup, warmup+p) maps to [warmup + p*i, warmup + p*(i+1)).
  ElasticityPocResult result;
  result.elasticity.name = "elasticity";
  result.probe_rate_mbps.name = "probe_base_rate_mbps";
  const double p = cfg.phase_duration.to_sec();
  const double t0 = cfg.warmup.to_sec();
  for (int i = 0; i < kElasticityPhaseCount; ++i) {
    const auto& single = singles[i];
    const double shift = p * i;
    for (std::size_t k = 0; k < single.elasticity.size(); ++k) {
      const double t = single.elasticity.t_sec[k];
      // Warmup samples beyond phase 0 would land in the previous phase's
      // canonical window; drop them.
      if (i > 0 && t < t0) continue;
      result.elasticity.t_sec.push_back(t + shift);
      result.elasticity.value.push_back(single.elasticity.value[k]);
      result.probe_rate_mbps.t_sec.push_back(t + shift);
      result.probe_rate_mbps.value.push_back(single.probe_rate_mbps.value[k]);
    }
    PhaseSummary s = single.summary;
    s.t_begin_sec = t0 + p * i;
    s.t_end_sec = t0 + p * (i + 1);
    result.phases.push_back(std::move(s));
  }

  // Rows in phase order — independent of job count, so the serialized
  // report is byte-identical for any `jobs`.
  result.report.set_bench("fig3_elasticity_poc", cfg.seed);
  for (const auto& s : result.phases) report_phase_scalars(result.report, s);
  for (int i = 0; i < kElasticityPhaseCount; ++i) result.report.append(singles[i].fragment);
  return result;
}

}  // namespace ccc::core
