#include "core/cca_registry.hpp"

#include <stdexcept>
#include <string>

#include "cca/aimd.hpp"
#include "cca/bbr.hpp"
#include "cca/copa.hpp"
#include "cca/cubic.hpp"
#include "cca/dctcp.hpp"
#include "cca/new_reno.hpp"
#include "cca/vegas.hpp"

namespace ccc::core {

cca::CcaFactory make_cca_factory(std::string_view name) {
  if (name == "reno" || name == "newreno") {
    return [] { return std::make_unique<cca::NewReno>(); };
  }
  if (name == "cubic") {
    return [] { return std::make_unique<cca::Cubic>(); };
  }
  if (name == "bbr") {
    return [] { return std::make_unique<cca::Bbr>(); };
  }
  if (name == "vegas") {
    return [] { return std::make_unique<cca::Vegas>(); };
  }
  if (name == "copa") {
    return [] { return std::make_unique<cca::Copa>(); };
  }
  if (name == "aimd") {
    return [] { return std::make_unique<cca::Aimd>(1.0, 0.5); };
  }
  if (name == "dctcp") {
    return [] { return std::make_unique<cca::Dctcp>(); };
  }
  throw std::invalid_argument{"unknown CCA: " + std::string{name}};
}

std::vector<std::string_view> known_ccas() {
  return {"reno", "cubic", "bbr", "vegas", "copa", "aimd", "dctcp"};
}

}  // namespace ccc::core
