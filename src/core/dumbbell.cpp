#include "core/dumbbell.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "queue/drop_tail.hpp"

namespace ccc::core {

void DumbbellConfig::validate() const {
  if (!(bottleneck_rate.to_bps() > 0.0)) {
    throw std::invalid_argument{"DumbbellConfig: bottleneck_rate must be positive (got " +
                                std::to_string(bottleneck_rate.to_bps()) + " bps)"};
  }
  if (one_way_delay <= Time::zero()) {
    throw std::invalid_argument{"DumbbellConfig: one_way_delay must be positive (got " +
                                std::to_string(one_way_delay.count_ns()) + " ns)"};
  }
  if (reverse_delay <= Time::zero()) {
    throw std::invalid_argument{"DumbbellConfig: reverse_delay must be positive (got " +
                                std::to_string(reverse_delay.count_ns()) + " ns)"};
  }
  if (!(buffer_bdp_multiple > 0.0)) {
    throw std::invalid_argument{"DumbbellConfig: buffer_bdp_multiple must be positive (got " +
                                std::to_string(buffer_bdp_multiple) + ")"};
  }
}

DumbbellConfig& DumbbellConfig::with_rate(Rate r) {
  bottleneck_rate = r;
  if (!(r.to_bps() > 0.0)) {
    throw std::invalid_argument{"DumbbellConfig: bottleneck_rate must be positive (got " +
                                std::to_string(r.to_bps()) + " bps)"};
  }
  return *this;
}

DumbbellConfig& DumbbellConfig::with_one_way_delay(Time d) {
  one_way_delay = d;
  if (d <= Time::zero()) {
    throw std::invalid_argument{"DumbbellConfig: one_way_delay must be positive (got " +
                                std::to_string(d.count_ns()) + " ns)"};
  }
  return *this;
}

DumbbellConfig& DumbbellConfig::with_reverse_delay(Time d) {
  reverse_delay = d;
  if (d <= Time::zero()) {
    throw std::invalid_argument{"DumbbellConfig: reverse_delay must be positive (got " +
                                std::to_string(d.count_ns()) + " ns)"};
  }
  return *this;
}

DumbbellConfig& DumbbellConfig::with_buffer_bdp_multiple(double m) {
  buffer_bdp_multiple = m;
  if (!(m > 0.0)) {
    throw std::invalid_argument{"DumbbellConfig: buffer_bdp_multiple must be positive (got " +
                                std::to_string(m) + ")"};
  }
  return *this;
}

DumbbellConfig& DumbbellConfig::with_seed(std::uint64_t s) {
  seed = s;
  return *this;
}

DumbbellConfig& DumbbellConfig::with_telemetry(bool on) {
  enable_telemetry = on;
  return *this;
}

ByteCount dumbbell_buffer_bytes(const DumbbellConfig& cfg) {
  const Time rtt = cfg.one_way_delay + cfg.reverse_delay;
  const auto bdp = bdp_bytes(cfg.bottleneck_rate, rtt);
  const auto bytes = static_cast<ByteCount>(static_cast<double>(bdp) * cfg.buffer_bdp_multiple);
  return std::max<ByteCount>(bytes, 4 * sim::kFullPacket);
}

DumbbellScenario::DumbbellScenario(DumbbellConfig cfg, std::unique_ptr<sim::Qdisc> qdisc)
    : cfg_{cfg}, rng_{cfg.seed} {
  cfg_.validate();
  if (!qdisc) {
    qdisc = std::make_unique<queue::DropTailQueue>(dumbbell_buffer_bytes(cfg_));
  }
  link_ = std::make_unique<sim::Link>(sched_, cfg_.bottleneck_rate, cfg_.one_way_delay,
                                      std::move(qdisc), demux_);
  link_sink_ = std::make_unique<sim::LinkSink>(*link_);
  metrics_.set_enabled(cfg_.enable_telemetry);
  if (cfg_.enable_telemetry) link_->bind_metrics(metrics_, "link");
}

Time DumbbellScenario::base_rtt() const {
  // Forward propagation + reverse propagation (data + ACK), excluding
  // serialization and queueing.
  return cfg_.one_way_delay + cfg_.reverse_delay;
}

std::size_t DumbbellScenario::add_flow(std::unique_ptr<cca::CongestionControl> cc,
                                       std::unique_ptr<app::App> a, sim::UserId user, Time start,
                                       ByteCount receiver_window) {
  flow::TcpFlowConfig fc;
  fc.flow_id = next_flow_id_++;
  fc.user = user;
  fc.start_at = start;
  fc.reverse_delay = cfg_.reverse_delay;
  fc.receiver_window = receiver_window;
  flows_.push_back(std::make_unique<flow::TcpFlow>(sched_, fc, std::move(cc), std::move(a),
                                                   *link_sink_, demux_));
  if (cfg_.enable_telemetry) {
    flows_.back()->sender().bind_metrics(metrics_,
                                         "flow" + std::to_string(fc.flow_id));
  }
  return flows_.size() - 1;
}

flow::ShortFlowWorkload& DumbbellScenario::add_short_flows(flow::ShortFlowConfig cfg,
                                                           cca::CcaFactory factory) {
  cfg.first_flow_id = next_short_base_;
  next_short_base_ += 1'000'000;  // room for a million arrivals per workload
  cfg.reverse_delay = cfg_.reverse_delay;
  short_workloads_.push_back(std::make_unique<flow::ShortFlowWorkload>(
      sched_, rng_, cfg, std::move(factory), *link_sink_, demux_));
  return *short_workloads_.back();
}

flow::UdpCbrSource& DumbbellScenario::add_cbr(Rate rate, Time start, Time stop,
                                              sim::UserId user) {
  const sim::FlowId id = next_cbr_id_++;
  demux_.register_flow(id, cbr_sink_);
  cbr_sources_.push_back(
      std::make_unique<flow::UdpCbrSource>(sched_, id, user, rate, start, stop, *link_sink_));
  return *cbr_sources_.back();
}

void DumbbellScenario::collect_metrics() {
  if (!cfg_.enable_telemetry) return;
  link_->export_metrics(sched_.now());
  for (const auto& f : flows_) f->sender().export_metrics(metrics_);
}

std::vector<ByteCount> DumbbellScenario::snapshot_delivered() const {
  std::vector<ByteCount> snap;
  snap.reserve(flows_.size());
  for (const auto& f : flows_) snap.push_back(f->delivered_bytes());
  return snap;
}

double DumbbellScenario::goodput_mbps_since(std::size_t idx, const std::vector<ByteCount>& snap,
                                            Time elapsed) const {
  assert(idx < flows_.size() && idx < snap.size());
  assert(elapsed > Time::zero());
  const ByteCount delta = flows_[idx]->delivered_bytes() - snap[idx];
  return static_cast<double>(delta) * 8.0 / elapsed.to_sec() / 1e6;
}

std::vector<double> DumbbellScenario::goodputs_mbps_since(const std::vector<ByteCount>& snap,
                                                          Time elapsed) const {
  std::vector<double> out;
  out.reserve(flows_.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    out.push_back(goodput_mbps_since(i, snap, elapsed));
  }
  return out;
}

}  // namespace ccc::core
