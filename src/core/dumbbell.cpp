#include "core/dumbbell.hpp"

#include <cassert>

#include "queue/drop_tail.hpp"

namespace ccc::core {

ByteCount dumbbell_buffer_bytes(const DumbbellConfig& cfg) {
  const Time rtt = cfg.one_way_delay + cfg.reverse_delay;
  const auto bdp = bdp_bytes(cfg.bottleneck_rate, rtt);
  const auto bytes = static_cast<ByteCount>(static_cast<double>(bdp) * cfg.buffer_bdp_multiple);
  return std::max<ByteCount>(bytes, 4 * sim::kFullPacket);
}

DumbbellScenario::DumbbellScenario(DumbbellConfig cfg, std::unique_ptr<sim::Qdisc> qdisc)
    : cfg_{cfg}, rng_{cfg.seed} {
  if (!qdisc) {
    qdisc = std::make_unique<queue::DropTailQueue>(dumbbell_buffer_bytes(cfg_));
  }
  link_ = std::make_unique<sim::Link>(sched_, cfg_.bottleneck_rate, cfg_.one_way_delay,
                                      std::move(qdisc), demux_);
  link_sink_ = std::make_unique<sim::LinkSink>(*link_);
}

Time DumbbellScenario::base_rtt() const {
  // Forward propagation + reverse propagation (data + ACK), excluding
  // serialization and queueing.
  return cfg_.one_way_delay + cfg_.reverse_delay;
}

std::size_t DumbbellScenario::add_flow(std::unique_ptr<cca::CongestionControl> cc,
                                       std::unique_ptr<app::App> a, sim::UserId user, Time start,
                                       ByteCount receiver_window) {
  flow::TcpFlowConfig fc;
  fc.flow_id = next_flow_id_++;
  fc.user = user;
  fc.start_at = start;
  fc.reverse_delay = cfg_.reverse_delay;
  fc.receiver_window = receiver_window;
  flows_.push_back(std::make_unique<flow::TcpFlow>(sched_, fc, std::move(cc), std::move(a),
                                                   *link_sink_, demux_));
  return flows_.size() - 1;
}

flow::ShortFlowWorkload& DumbbellScenario::add_short_flows(flow::ShortFlowConfig cfg,
                                                           cca::CcaFactory factory) {
  cfg.first_flow_id = next_short_base_;
  next_short_base_ += 1'000'000;  // room for a million arrivals per workload
  cfg.reverse_delay = cfg_.reverse_delay;
  short_workloads_.push_back(std::make_unique<flow::ShortFlowWorkload>(
      sched_, rng_, cfg, std::move(factory), *link_sink_, demux_));
  return *short_workloads_.back();
}

flow::UdpCbrSource& DumbbellScenario::add_cbr(Rate rate, Time start, Time stop,
                                              sim::UserId user) {
  const sim::FlowId id = next_cbr_id_++;
  demux_.register_flow(id, cbr_sink_);
  cbr_sources_.push_back(
      std::make_unique<flow::UdpCbrSource>(sched_, id, user, rate, start, stop, *link_sink_));
  return *cbr_sources_.back();
}

std::vector<ByteCount> DumbbellScenario::snapshot_delivered() const {
  std::vector<ByteCount> snap;
  snap.reserve(flows_.size());
  for (const auto& f : flows_) snap.push_back(f->delivered_bytes());
  return snap;
}

double DumbbellScenario::goodput_mbps_since(std::size_t idx, const std::vector<ByteCount>& snap,
                                            Time elapsed) const {
  assert(idx < flows_.size() && idx < snap.size());
  assert(elapsed > Time::zero());
  const ByteCount delta = flows_[idx]->delivered_bytes() - snap[idx];
  return static_cast<double>(delta) * 8.0 / elapsed.to_sec() / 1e6;
}

std::vector<double> DumbbellScenario::goodputs_mbps_since(const std::vector<ByteCount>& snap,
                                                          Time elapsed) const {
  std::vector<double> out;
  out.reserve(flows_.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    out.push_back(goodput_mbps_since(i, snap, elapsed));
  }
  return out;
}

}  // namespace ccc::core
