// DumbbellScenario: the canonical single-bottleneck topology every
// experiment in the paper uses, packaged as the library's main entry point.
//
//   flows' senders ──> [ qdisc | bottleneck link ] ──> demux ──> receivers
//         ^                                                         │
//         └──────────────── per-flow reverse delay ─────────────────┘
//
// The scenario owns the scheduler, bottleneck, and all traffic sources, and
// provides goodput measurement over arbitrary windows.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "app/app.hpp"
#include "cca/cca.hpp"
#include "flow/short_flow_workload.hpp"
#include "flow/tcp_flow.hpp"
#include "flow/udp_source.hpp"
#include "sim/demux.hpp"
#include "sim/link.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"

namespace ccc::core {

struct DumbbellConfig {
  Rate bottleneck_rate{Rate::mbps(48)};      // Figure 3's Mahimahi link
  Time one_way_delay{Time::ms(25)};          // forward propagation
  Time reverse_delay{Time::ms(25)};          // ACK-path propagation
  /// Bottleneck buffer, as a multiple of the BDP at (rate, 2*one_way+2*rev).
  double buffer_bdp_multiple{1.0};
  /// Seed for the scenario's RNG (short-flow arrivals and sizes).
  std::uint64_t seed{0x5eed'cafe};
  /// When true, the scenario binds its link and every flow into a
  /// MetricRegistry (see DumbbellScenario::metrics()). Off by default:
  /// disabled telemetry must cost nothing on the hot path.
  bool enable_telemetry{false};

  /// Throws std::invalid_argument naming the offending field. The scenario
  /// constructor calls this; call it earlier to fail fast at parse time.
  void validate() const;

  // Fluent setters, each validating its own field immediately.
  DumbbellConfig& with_rate(Rate r);
  DumbbellConfig& with_one_way_delay(Time d);
  DumbbellConfig& with_reverse_delay(Time d);
  DumbbellConfig& with_buffer_bdp_multiple(double m);
  DumbbellConfig& with_seed(std::uint64_t s);
  DumbbellConfig& with_telemetry(bool on = true);
};

class DumbbellScenario {
 public:
  /// Builds the bottleneck with the given qdisc (pass nullptr for a
  /// DropTail queue sized per the config).
  explicit DumbbellScenario(DumbbellConfig cfg, std::unique_ptr<sim::Qdisc> qdisc = nullptr);

  DumbbellScenario(const DumbbellScenario&) = delete;
  DumbbellScenario& operator=(const DumbbellScenario&) = delete;

  /// Adds a long-lived TCP flow. Returns its index for later lookup.
  std::size_t add_flow(std::unique_ptr<cca::CongestionControl> cc, std::unique_ptr<app::App> a,
                       sim::UserId user = 1, Time start = Time::zero(),
                       ByteCount receiver_window = 1 << 30);

  /// Adds a Poisson short-flow workload (owns it for the scenario lifetime).
  flow::ShortFlowWorkload& add_short_flows(flow::ShortFlowConfig cfg,
                                           cca::CcaFactory factory);

  /// Adds a CBR UDP source whose packets cross the bottleneck and are
  /// discarded at the far side.
  flow::UdpCbrSource& add_cbr(Rate rate, Time start, Time stop, sim::UserId user = 1);

  /// Runs the simulation to absolute time `t`.
  void run_until(Time t) { sched_.run_until(t); }

  /// Mean goodput of flow `idx` between two *calls*: snapshot() then
  /// goodput_since(idx, snapshot) after more run_until().
  [[nodiscard]] std::vector<ByteCount> snapshot_delivered() const;
  [[nodiscard]] double goodput_mbps_since(std::size_t idx,
                                          const std::vector<ByteCount>& snap,
                                          Time elapsed) const;
  /// Goodputs of all long-lived flows over the window.
  [[nodiscard]] std::vector<double> goodputs_mbps_since(const std::vector<ByteCount>& snap,
                                                        Time elapsed) const;

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] sim::Link& bottleneck() { return *link_; }
  [[nodiscard]] sim::FlowDemux& demux() { return demux_; }
  [[nodiscard]] flow::TcpFlow& flow(std::size_t idx) { return *flows_.at(idx); }
  [[nodiscard]] const flow::TcpFlow& flow(std::size_t idx) const { return *flows_.at(idx); }
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  [[nodiscard]] Time base_rtt() const;
  [[nodiscard]] const DumbbellConfig& config() const { return cfg_; }

  /// The scenario's private registry. Live instruments (sojourn/RTT
  /// histograms, cwnd traces, CCA mode timelines) stream into it during the
  /// run when cfg.enable_telemetry is set; call collect_metrics() to also
  /// mirror the snapshot-style stats before reading it.
  [[nodiscard]] telemetry::MetricRegistry& metrics() { return metrics_; }
  [[nodiscard]] const telemetry::MetricRegistry& metrics() const { return metrics_; }
  /// Mirrors link/qdisc/sender counters into metrics() as of now. No-op
  /// (and the registry stays empty) when telemetry is disabled.
  void collect_metrics();

  /// Flow ids are allocated sequentially starting here; CBR sources count up
  /// from 900000 to stay clear of TCP flows and short-flow workloads.
  static constexpr sim::FlowId kFirstFlowId = 1;

 private:
  DumbbellConfig cfg_;
  sim::Scheduler sched_;
  Rng rng_{0x5eed'cafe};
  sim::FlowDemux demux_;
  sim::NullSink cbr_sink_;
  std::unique_ptr<sim::Link> link_;
  std::unique_ptr<sim::LinkSink> link_sink_;
  std::vector<std::unique_ptr<flow::TcpFlow>> flows_;
  std::vector<std::unique_ptr<flow::ShortFlowWorkload>> short_workloads_;
  std::vector<std::unique_ptr<flow::UdpCbrSource>> cbr_sources_;
  sim::FlowId next_flow_id_{kFirstFlowId};
  sim::FlowId next_cbr_id_{900000};
  sim::FlowId next_short_base_{100000};
  telemetry::MetricRegistry metrics_;
};

/// Buffer size in bytes for a dumbbell config (exposed for tests).
[[nodiscard]] ByteCount dumbbell_buffer_bytes(const DumbbellConfig& cfg);

}  // namespace ccc::core
