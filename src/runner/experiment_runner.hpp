// ExperimentRunner: fan a sweep of independent simulations out over a
// thread pool.
//
// Every figure in the paper is a grid of *independent, deterministic*
// simulations (qdisc x CCA-mix x cross-traffic), so sweeps are
// embarrassingly parallel. Each task owns its scenario outright — its own
// Scheduler, Rng, flows — so workers share nothing and per-scenario results
// are bit-identical to a serial run regardless of the job count. Results are
// returned in input order; completion order is irrelevant to callers.
//
// Job-count resolution (first match wins):
//   1. an explicit `--jobs N` / `--jobs=N` / `-jN` command-line flag
//   2. the CCC_JOBS environment variable
//   3. std::thread::hardware_concurrency()
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace ccc::runner {

/// Called (serialized, from worker threads) after each task completes.
using ProgressFn = std::function<void(std::size_t done, std::size_t total)>;

struct RunnerOptions {
  /// Worker count; 0 means "resolve from CCC_JOBS, else hardware
  /// concurrency". 1 runs tasks inline on the calling thread.
  unsigned jobs{0};
  ProgressFn on_progress{};
};

/// Resolves a requested job count per the policy above (requested == 0
/// consults CCC_JOBS, then hardware concurrency; never returns 0).
[[nodiscard]] unsigned resolve_jobs(unsigned requested);

/// Scans argv for `--jobs N`, `--jobs=N`, `-j N` or `-jN` and returns the
/// parsed count, or `fallback` if the flag is absent or malformed.
[[nodiscard]] unsigned jobs_from_cli(int argc, char** argv, unsigned fallback = 0);

/// Derives an independent per-task seed from a base seed and task index
/// (splitmix64 finalizer). Tasks seeded this way get decorrelated RNG
/// streams that do not depend on the job count or completion order.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t task_index);

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunnerOptions opts = {});

  /// The resolved worker count.
  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Runs every task, at most jobs() at a time, and returns once all have
  /// finished. Every task runs even if some throw; the exception from the
  /// lowest-indexed failing task is rethrown afterwards (deterministic
  /// regardless of completion order — and identical to jobs=1 behaviour).
  /// Rethrow preserves the dynamic type (std::exception_ptr), so a typed
  /// ccc::Error from a worker — category, path, byte offset intact —
  /// crosses the pool boundary and reaches the bench's guarded_main.
  void run_all(const std::vector<std::function<void()>>& tasks);

  /// Maps `fn` over indices [0, n), returning results in index order.
  /// R must be default-constructible and movable.
  template <typename R>
  [[nodiscard]] std::vector<R> map(std::size_t n,
                                   const std::function<R(std::size_t)>& fn) {
    std::vector<R> out(n);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      tasks.push_back([&out, &fn, i] { out[i] = fn(i); });
    }
    run_all(tasks);
    return out;
  }

 private:
  unsigned jobs_;
  ProgressFn on_progress_;
};

}  // namespace ccc::runner
