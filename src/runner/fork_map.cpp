#include "runner/fork_map.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "util/error.hpp"

namespace ccc::runner {

namespace {

/// Wire framing on the result pipe. One frame per task, in the order the
/// worker ran them; a tag-1 frame carries a rendered error instead of a
/// result and is the last thing the child writes before _exit(1).
struct FrameHeader {
  std::uint64_t task;
  std::uint64_t len;
  std::uint32_t tag;  ///< 0 = result blob, 1 = error text
  std::uint32_t pad{0};
};
enum : std::uint32_t { kTagResult = 0, kTagError = 1 };

/// write() the whole buffer. Runs only in children; a failure means the
/// parent is gone (it threw and closed its read end), so there is nobody
/// left to report to — exit instead of looping on EPIPE.
void write_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t w = ::write(fd, p, len);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::_exit(3);
    }
    p += w;
    len -= static_cast<std::size_t>(w);
  }
}

/// read() the whole buffer; false on EOF or a read error (a dead child).
bool read_all(int fd, void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t r = ::read(fd, p, len);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    p += r;
    len -= static_cast<std::size_t>(r);
  }
  return true;
}

[[noreturn]] void child_main(int fd, std::size_t worker, std::size_t n, std::size_t stride,
                             const std::function<std::string(std::size_t)>& work) {
  if (const char* kill_env = std::getenv("CCC_FORK_MAP_KILL");
      kill_env != nullptr && std::strtoul(kill_env, nullptr, 10) == worker) {
    (void)::raise(SIGKILL);
  }
  for (std::size_t i = worker; i < n; i += stride) {
    FrameHeader hdr{};
    hdr.task = i;
    try {
      const std::string blob = work(i);
      hdr.len = blob.size();
      hdr.tag = kTagResult;
      write_all(fd, &hdr, sizeof hdr);
      write_all(fd, blob.data(), blob.size());
    } catch (const std::exception& e) {
      const std::string msg = e.what();
      hdr.len = msg.size();
      hdr.tag = kTagError;
      write_all(fd, &hdr, sizeof hdr);
      write_all(fd, msg.data(), msg.size());
      ::_exit(1);
    } catch (...) {
      static constexpr char kMsg[] = "unknown exception in fork_map task";
      hdr.len = sizeof kMsg - 1;
      hdr.tag = kTagError;
      write_all(fd, &hdr, sizeof hdr);
      write_all(fd, kMsg, sizeof kMsg - 1);
      ::_exit(1);
    }
  }
  // _exit, not exit: the child must not run the parent's atexit handlers
  // or flush stdio buffers it inherited half-full.
  ::_exit(0);
}

/// Per-child drain outcome, resolved against waitpid status afterwards.
struct ChildState {
  pid_t pid{-1};
  int fd{-1};
  bool drained{false};       ///< every expected frame arrived intact
  std::string error;         ///< tag-1 frame text, if any
  int wait_status{0};
};

}  // namespace

std::vector<std::string> fork_map(std::size_t n, std::size_t procs,
                                  const std::function<std::string(std::size_t)>& work) {
  std::vector<std::string> out(n);
  if (n == 0) return out;
  const std::size_t workers = std::min(procs == 0 ? std::size_t{1} : procs, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) out[i] = work(i);
    return out;
  }

  std::vector<ChildState> children(workers);
  for (std::size_t j = 0; j < workers; ++j) {
    int fds[2];
    if (::pipe(fds) != 0) {
      const int err = errno;
      for (std::size_t k = 0; k < j; ++k) {
        ::close(children[k].fd);
        (void)::kill(children[k].pid, SIGKILL);
        (void)::waitpid(children[k].pid, nullptr, 0);
      }
      throw Error::io("fork_map", std::string{"pipe: "} + std::strerror(err));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int err = errno;
      ::close(fds[0]);
      ::close(fds[1]);
      for (std::size_t k = 0; k < j; ++k) {
        ::close(children[k].fd);
        (void)::kill(children[k].pid, SIGKILL);
        (void)::waitpid(children[k].pid, nullptr, 0);
      }
      throw Error::io("fork_map", std::string{"fork: "} + std::strerror(err));
    }
    if (pid == 0) {
      ::close(fds[0]);
      for (std::size_t k = 0; k < j; ++k) ::close(children[k].fd);
      child_main(fds[1], j, n, workers, work);  // never returns
    }
    ::close(fds[1]);
    children[j].pid = pid;
    children[j].fd = fds[0];
  }

  // Drain child by child, in worker order. A later child that fills its
  // 64KB pipe buffer simply blocks until its turn — transfer serializes,
  // the work does not. Stop draining at the first failure; the reap loop
  // below still closes and waits on everything.
  bool any_failed = false;
  for (std::size_t j = 0; j < workers && !any_failed; ++j) {
    ChildState& c = children[j];
    std::size_t expected = 0;
    for (std::size_t i = j; i < n; i += workers) ++expected;
    std::size_t got = 0;
    while (got < expected) {
      FrameHeader hdr{};
      if (!read_all(c.fd, &hdr, sizeof hdr)) break;  // EOF: child died early
      std::string payload(hdr.len, '\0');
      if (hdr.len > 0 && !read_all(c.fd, payload.data(), payload.size())) break;
      if (hdr.tag == kTagError) {
        c.error = std::move(payload);
        break;
      }
      if (hdr.tag != kTagResult || hdr.task >= n) break;  // garbage frame
      out[hdr.task] = std::move(payload);
      ++got;
    }
    c.drained = got == expected;
    if (!c.drained) any_failed = true;
  }

  // Reap everything before reporting: closing an undrained pipe SIGPIPEs a
  // still-writing child, so no failure path can leave a child wedged.
  for (auto& c : children) {
    ::close(c.fd);
    pid_t r;
    do {
      r = ::waitpid(c.pid, &c.wait_status, 0);
    } while (r < 0 && errno == EINTR);
  }

  for (std::size_t j = 0; j < workers; ++j) {
    const ChildState& c = children[j];
    if (WIFSIGNALED(c.wait_status)) {
      throw Error::io("fork_map", "child " + std::to_string(j) + " killed by signal " +
                                      std::to_string(WTERMSIG(c.wait_status)) + " mid-shard");
    }
    if (!c.error.empty()) {
      throw Error::io("fork_map", "child " + std::to_string(j) + " failed: " + c.error);
    }
    if (!c.drained) {
      throw Error::io("fork_map",
                      "child " + std::to_string(j) + " exited without delivering its results");
    }
  }
  return out;
}

}  // namespace ccc::runner
