#include "runner/thread_pool.hpp"

#include <utility>

namespace ccc::runner {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk{mu_};
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lk{mu_};
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lk{mu_};
      cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace ccc::runner
