// A fixed-size worker pool draining a FIFO job queue.
//
// This is deliberately minimal: experiments submit closed-over thunks and
// synchronize on their own completion counters (see ExperimentRunner). The
// pool guarantees that every job submitted before destruction runs to
// completion — the destructor drains the queue and joins the workers.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ccc::runner {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(unsigned threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Finishes all queued jobs, then joins the workers.
  ~ThreadPool();

  /// Enqueues a job. Jobs start in FIFO order but may complete in any order.
  void submit(std::function<void()> job);

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_{false};
  std::vector<std::thread> workers_;
};

}  // namespace ccc::runner
