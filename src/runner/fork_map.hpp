// fork_map — fork-per-task fan-out for memory-isolated parallelism.
//
// The thread-pool runner (experiment_runner.hpp) shares one address space,
// which is the right tool when tasks are compute-bound over shared
// read-only inputs. It is the wrong tool when each task's working set must
// be RECLAIMED the moment the task finishes: a past-RAM passive run that
// opens dozens of multi-GB ccfs shards in one process accumulates page
// cache, heap high-water marks, and mmap address space until the kernel
// kills it. fork_map gives every task group its own process: a child opens
// only its own shards, and its entire footprint returns to the OS at
// _exit. Nothing is shared — no locks, no atomics, no TSan-visible state;
// the only channel is a pipe carrying each task's serialized result.
//
// Contract:
//   - Tasks are indexed [0, n). Worker j runs tasks j, j+W, j+2W, ... where
//     W = min(procs, n); results come back to the caller in TASK order, so
//     the fan-out is deterministic for any `procs` (same argument as the
//     thread runner's ordered merge).
//   - `work(i)` returns the task's result serialized as bytes. The caller
//     owns the format; fork_map only frames and transports it.
//   - procs <= 1 runs every task inline (no fork) and returns the same
//     blobs — callers get one code path whose procs=1 case is trivially
//     debuggable and sanitizer-friendly.
//   - A task that throws in a child is reported as ccc::Error{kIo} in the
//     parent, carrying the child's rendered what() text. A child that DIES
//     (signal, OOM kill) is also a typed Error — "killed by signal N" —
//     never a hang: the parent reads pipes to EOF and reaps every child.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace ccc::runner {

/// Runs `work(i)` for every i in [0, n) across up to `procs` forked
/// children and returns the n serialized results in task-index order.
/// Throws ccc::Error{kIo} if any child fails or dies; all children are
/// reaped before the throw (no zombies, no orphaned writers).
///
/// `work` must be fork-safe: it runs after fork() in a child that never
/// returns to the caller's stack (results leave via the pipe, the child
/// `_exit`s). Do not fork while other threads hold locks the work needs.
///
/// Test hook: CCC_FORK_MAP_KILL=<worker index> makes that worker raise
/// SIGKILL before producing anything — a stand-in for the OOM killer.
[[nodiscard]] std::vector<std::string> fork_map(
    std::size_t n, std::size_t procs,
    const std::function<std::string(std::size_t)>& work);

}  // namespace ccc::runner
