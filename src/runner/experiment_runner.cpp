#include "runner/experiment_runner.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "bench/cli.hpp"
#include "runner/thread_pool.hpp"

namespace ccc::runner {

namespace {

/// Parses a strictly positive integer; returns 0 on any malformed input.
unsigned parse_jobs(const char* s) {
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == nullptr || *end != '\0' || v <= 0) return 0;
  return static_cast<unsigned>(v);
}

}  // namespace

unsigned resolve_jobs(unsigned requested) {
  if (requested > 0) return requested;
  if (const unsigned env = parse_jobs(std::getenv("CCC_JOBS")); env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

unsigned jobs_from_cli(int argc, char** argv, unsigned fallback) {
  // Thin wrapper over the shared bench CLI so one grammar serves both the
  // runner and the bench binaries (non-strict parse: malformed == absent).
  const bench::Cli cli = bench::Cli::parse(argc, argv);
  return cli.jobs > 0 ? cli.jobs : fallback;
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t task_index) {
  // splitmix64 finalizer over base + index * golden-ratio increment: cheap,
  // stateless, and adjacent indices land in unrelated parts of the stream.
  std::uint64_t z = base_seed + 0x9e37'79b9'7f4a'7c15ull * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58'476d'1ce4'e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d0'49bb'1331'11ebull;
  return z ^ (z >> 31);
}

ExperimentRunner::ExperimentRunner(RunnerOptions opts)
    : jobs_{resolve_jobs(opts.jobs)}, on_progress_{std::move(opts.on_progress)} {}

void ExperimentRunner::run_all(const std::vector<std::function<void()>>& tasks) {
  const std::size_t total = tasks.size();
  if (total == 0) return;
  // One slot per task: the lowest-indexed exception wins deterministically.
  std::vector<std::exception_ptr> errors(total);

  if (jobs_ <= 1 || total == 1) {
    for (std::size_t i = 0; i < total; ++i) {
      try {
        tasks[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
      if (on_progress_) on_progress_(i + 1, total);
    }
  } else {
    const auto workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, total));
    std::mutex mu;
    std::condition_variable all_done;
    std::size_t done = 0;
    {
      ThreadPool pool{workers};
      for (std::size_t i = 0; i < total; ++i) {
        pool.submit([this, &tasks, &errors, &mu, &all_done, &done, total, i] {
          try {
            tasks[i]();
          } catch (...) {
            errors[i] = std::current_exception();
          }
          std::size_t finished;
          {
            std::lock_guard lk{mu};
            finished = ++done;
            // Progress runs under the lock so callbacks never interleave.
            if (on_progress_) on_progress_(finished, total);
          }
          if (finished == total) all_done.notify_one();
        });
      }
      std::unique_lock lk{mu};
      all_done.wait(lk, [&] { return done == total; });
    }  // joins the pool — no worker still touches errors/done after this
  }

  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace ccc::runner
