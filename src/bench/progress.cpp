#include "bench/progress.hpp"

#include <cstdio>
#include <memory>
#include <utility>

namespace ccc::bench {

runner::ProgressFn stderr_progress(std::string label, double min_interval_sec) {
  using Clock = std::chrono::steady_clock;
  struct State {
    std::string label;
    Clock::duration interval;
    Clock::time_point last{};  // epoch: the first tick always prints
  };
  // shared_ptr: ProgressFn must be copyable, and every copy must share the
  // throttle clock (the runner may copy the callback into its options).
  auto st = std::make_shared<State>();
  st->label = std::move(label);
  st->interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(min_interval_sec));
  return [st](std::size_t done, std::size_t total) {
    const auto now = Clock::now();
    if (done != total && now - st->last < st->interval) return;
    st->last = now;
    const double pct = total == 0 ? 100.0
                                  : 100.0 * static_cast<double>(done) /
                                        static_cast<double>(total);
    std::fprintf(stderr, "%s: %zu/%zu (%.1f%%)%s", st->label.c_str(), done, total,
                 pct, done == total ? "\n" : "\r");
    std::fflush(stderr);
  };
}

}  // namespace ccc::bench
