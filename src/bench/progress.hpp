// bench::stderr_progress — a throttled runner::ProgressFn for long sweeps.
//
// The runner invokes progress callbacks serialized, once per completed task
// (or pipeline shard). At millions of flows that is thousands of shards, so
// the logger rate-limits itself: it prints at most once per `min_interval`
// of wall time, plus always the final (done == total) tick so the line ends
// at 100%. Output goes to stderr — stdout stays reserved for the bench's
// tables, keeping default output byte-identical when redirected.
//
// Wall-clock throttling is presentation only; it never feeds back into the
// computation, so determinism guarantees are untouched.
#pragma once

#include <chrono>
#include <string>

#include "runner/experiment_runner.hpp"

namespace ccc::bench {

/// Builds a ProgressFn that logs "<label>: done/total (pct%)" to stderr at
/// most every `min_interval_sec` (and on the final tick). The returned
/// callable owns its state; copy it into RunnerOptions / PipelineConfig.
[[nodiscard]] runner::ProgressFn stderr_progress(std::string label,
                                                 double min_interval_sec = 1.0);

}  // namespace ccc::bench
