// bench::Cli — the one command-line contract shared by every bench binary.
//
// Before this existed each bench hand-rolled its own argv scan (or took no
// flags at all), so sweep scripts couldn't rely on a uniform interface. Now
// all benches accept:
//
//   --jobs N | --jobs=N | -j N | -jN   worker threads (0 = auto-resolve)
//   --seed N                           base RNG seed override
//   --duration S                       run length override, in seconds
//   --out PATH                         redirect the human-readable table
//   --report PATH                      machine-readable RunReport (JSONL, or
//                                      CSV when PATH ends in .csv)
//   --serial                           force the serial (jobs=1) code path
//   --input PATH                       input dataset path (bench-specific
//                                      formats; parse() only records it)
//   --scale N                          dataset scale multiplier, >= 1
//   --readahead N                      store readahead window in flows
//   --strict                           fail fast on corrupt input instead of
//                                      skip-count-and-continue
//   --grid SPEC                        scenario-grid override (sweep benches;
//                                      parse() only records the string)
//   --checkpoint PATH                  cell-completion journal path
//   --resume                           skip cells already in the journal
//   --repeat N                         run each measured scope N times and
//                                      keep the best (micro benches; parse()
//                                      only records the count)
//   --service                          route the bench through the streaming
//                                      elasticity service instead of the
//                                      offline classifier (fig3; parse()
//                                      only records the flag)
//   --procs N                          worker *processes* for the passive
//                                      pipeline (fork-per-shard-group; 1 =
//                                      in-process, the default)
//   --help | -h                        print usage and exit
//
// (--input/--scale/--readahead/--strict were hand-parsed by fig2 alone
// until PR 7; the ingest daemon needed the same surface, so they moved into
// the shared contract — every bench now gets the same strict value parsing,
// range checks, and --help text for them.)
//
// Unrecognized arguments are retained in `rest` so wrappers (notably
// google-benchmark's own flag parser in micro benches) still see them.
// Interpretation of --seed/--duration is up to the bench: parse() only
// records the values, and `seed_or`/`duration_or` supply the bench's
// defaults — so a bench run with no flags reproduces its historical output
// byte for byte.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace ccc::bench {

/// The error boundary every bench main runs inside. PRs 1-4 let a corrupt
/// input escape main() as an uncaught exception (std::terminate, core dump,
/// no usable message); guarded_main converts that into the bench exit-code
/// contract instead:
///
///   return value of `body`  passed through (0 ok / 1 shape-check fail /
///                           2 usage error, as before)
///   uncaught ccc::Error     "<bench>: error: [<category>] ..." on stderr;
///                           exit 2 for kConfig (usage territory), 1 for
///                           io/format/corruption (the run failed)
///   other std::exception    "<bench>: error: ..." on stderr; exit 1
///
/// Usage: int main(int argc, char** argv) {
///          return ccc::bench::guarded_main("fig7_...", [&] { ... });
///        }
[[nodiscard]] int guarded_main(std::string_view bench_name, const std::function<int()>& body);

class Cli {
 public:
  /// Parses argv. If `bench_name` is non-empty this is the bench's main
  /// entry: `--help` prints usage for that bench and exits 0, and a
  /// malformed flag value prints an error and exits 2. With an empty name
  /// (library callers, e.g. runner::jobs_from_cli) parsing never exits and
  /// malformed values are treated as absent.
  static Cli parse(int argc, char** argv, std::string_view bench_name = {});

  /// The usage text `--help` prints.
  static std::string usage(std::string_view bench_name);

  // Parsed flags. Zero/empty means "absent" except where a has_* flag says
  // otherwise.
  unsigned jobs{0};  ///< 0 = resolve from CCC_JOBS / hardware concurrency
  bool has_seed{false};
  std::uint64_t seed{0};
  bool has_duration{false};
  double duration_sec{0.0};
  std::string out;     ///< "" = stdout
  std::string report;  ///< "" = no machine-readable report
  bool serial{false};
  bool help{false};
  std::string input;  ///< input dataset path; "" = bench default (synthetic)
  bool has_scale{false};
  std::size_t scale{0};  ///< dataset scale multiplier; valid values are >= 1
  std::size_t readahead{0};  ///< store readahead window in flows; 0 = off
  bool strict{false};  ///< fail fast on corrupt input instead of degrading
  std::string grid;        ///< scenario-grid spec; "" = the bench's default grid
  std::string checkpoint;  ///< cell journal path; "" = no checkpointing
  bool resume{false};      ///< load the journal and skip completed cells
  std::size_t repeat{0};   ///< best-of-N repetitions; 0 = bench default
  std::size_t procs{0};    ///< pipeline worker processes; 0 = bench default (1)
  bool service{false};     ///< run the streaming-service variant (fig3)
  std::vector<std::string> rest;  ///< unrecognized argv entries, in order

  /// Range caps for the shared count flags (enforced by parse; public so
  /// benches can echo them in their own diagnostics).
  static constexpr std::uint64_t kMaxScale = 1'000'000;       // ~10^10 flows
  static constexpr std::uint64_t kMaxReadahead = 100'000'000;
  static constexpr std::uint64_t kMaxRepeat = 1'000;
  static constexpr std::uint64_t kMaxProcs = 256;

  [[nodiscard]] std::uint64_t seed_or(std::uint64_t fallback) const {
    return has_seed ? seed : fallback;
  }
  [[nodiscard]] Time duration_or(Time fallback) const {
    return has_duration ? Time::sec(duration_sec) : fallback;
  }
  [[nodiscard]] std::size_t repeat_or(std::size_t fallback) const {
    return repeat != 0 ? repeat : fallback;
  }
  [[nodiscard]] std::size_t procs_or(std::size_t fallback) const {
    return procs != 0 ? procs : fallback;
  }

  /// The stream bench tables should print to: the `--out` file when given
  /// (opened lazily, exits 2 if unopenable in bench-main mode), else
  /// std::cout.
  [[nodiscard]] std::ostream& output();

 private:
  std::string bench_name_;
  std::ofstream out_file_;
  bool out_opened_{false};
};

}  // namespace ccc::bench
