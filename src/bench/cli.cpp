#include "bench/cli.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <limits>

#include "util/error.hpp"

namespace ccc::bench {

namespace {

/// Strictly positive integer, or 0 on malformed input. Overflow counts as
/// malformed: strtol saturates at LONG_MAX with ERANGE, and truncating that
/// into an unsigned would silently accept "--jobs 99999999999999999999" as
/// some huge-but-bogus worker count.
unsigned parse_positive(const char* s) {
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (end == nullptr || *end != '\0' || v <= 0 || errno == ERANGE ||
      v > static_cast<long>(std::numeric_limits<unsigned>::max())) {
    return 0;
  }
  return static_cast<unsigned>(v);
}

bool parse_u64(const char* s, std::uint64_t& out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 0);  // 0: accept 0x...
  // ERANGE: strtoull saturates at ULLONG_MAX — an over-range seed must be
  // rejected, not silently clamped. strtoull also wraps "-1" to 2^64-1
  // without an error; a leading '-' is not a seed.
  if (end == nullptr || *end != '\0' || errno == ERANGE || *s == '-') return false;
  out = v;
  return true;
}

bool parse_seconds(const char* s, double& out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == nullptr || *end != '\0' || !(v > 0.0)) return false;
  out = v;
  return true;
}

[[noreturn]] void die(std::string_view bench_name, const std::string& msg) {
  std::cerr << bench_name << ": " << msg << "\n"
            << Cli::usage(bench_name);
  std::exit(2);
}

/// Bounded flow/scale count, the strict contract fig2 pioneered: garbage
/// ("abc", "12x"), negatives ("-3" — strtoull would silently wrap it),
/// overflow, and anything past `max` are rejected, never clamped. Returns
/// false with `err` set to the complaint (the caller decides whether that
/// dies or is treated as absent).
bool parse_count(const std::string& flag, const char* s, std::uint64_t max, std::uint64_t min,
                 std::uint64_t& out, std::string& err) {
  const std::string v = s == nullptr ? "" : s;
  const std::string want =
      " (want an integer >= " + std::to_string(min) + ")";
  if (v.empty()) {
    err = flag + " needs a value";
    return false;
  }
  if (v.front() == '-') {
    err = "invalid " + flag + " value '" + v + "'" + want;
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == v.c_str()) {
    err = "invalid " + flag + " value '" + v + "'" + want;
    return false;
  }
  if (errno == ERANGE || x > max) {
    err = flag + " value '" + v + "' out of range (max " + std::to_string(max) + ")";
    return false;
  }
  if (x < min) {
    err = flag + " must be >= " + std::to_string(min);
    return false;
  }
  out = static_cast<std::uint64_t>(x);
  return true;
}

}  // namespace

int guarded_main(std::string_view bench_name, const std::function<int()>& body) {
  try {
    return body();
  } catch (const ccc::Error& e) {
    std::cerr << bench_name << ": error: " << e.what() << "\n";
    return e.category() == ErrorCategory::kConfig ? 2 : 1;
  } catch (const std::exception& e) {
    std::cerr << bench_name << ": error: " << e.what() << "\n";
    return 1;
  }
}

std::string Cli::usage(std::string_view bench_name) {
  std::string u;
  u += "usage: ";
  u += bench_name.empty() ? "bench" : bench_name;
  u += " [options]\n";
  u +=
      "  --jobs N, -jN     worker threads for the sweep (default: CCC_JOBS,\n"
      "                    else hardware concurrency)\n"
      "  --seed N          base RNG seed (default: the bench's built-in seed)\n"
      "  --duration S      run length in seconds (default: bench-specific)\n"
      "  --out PATH        write the human-readable table to PATH\n"
      "  --report PATH     write a machine-readable RunReport; JSONL, or CSV\n"
      "                    when PATH ends in .csv\n"
      "  --serial          force the serial (jobs=1) code path\n"
      "  --input PATH      analyze an existing dataset instead of generating\n"
      "                    one (formats are bench-specific; fig2/ingestd take\n"
      "                    .csv or .ccfs)\n"
      "  --scale N         dataset scale multiplier, 1..1000000\n"
      "  --readahead N     store readahead window in flows (0 = off,\n"
      "                    max 100000000); purely a performance hint\n"
      "  --strict          fail fast on the first corrupt shard/record\n"
      "                    instead of the default skip-count-and-continue\n"
      "  --grid SPEC       scenario-grid override for sweep benches, e.g.\n"
      "                    \"cca=reno,cubic;qdisc=droptail,fq_codel;buf=0.5,2\"\n"
      "  --checkpoint PATH journal completed cells to PATH (crash-safe)\n"
      "  --resume          skip cells already recorded in --checkpoint\n"
      "  --repeat N        run each measured scope N times, report the best\n"
      "                    (micro benches; default 3, max 1000)\n"
      "  --procs N         worker processes for the passive pipeline\n"
      "                    (fork per shard group; default 1 = in-process,\n"
      "                    max 256)\n"
      "  --service         replay the scenarios through the streaming\n"
      "                    elasticity service and score verdict agreement\n"
      "                    against the offline classifier (fig3)\n"
      "  --help, -h        this text\n";
  return u;
}

Cli Cli::parse(int argc, char** argv, std::string_view bench_name) {
  Cli cli;
  cli.bench_name_ = std::string{bench_name};
  const bool strict = !bench_name.empty();

  for (int i = 1; i < argc; ++i) {
    const std::string arg{argv[i]};
    // Flags taking a value accept both "--flag V" and "--flag=V".
    auto value_of = [&](const std::string& flag) -> const char* {
      if (arg == flag && i + 1 < argc) return argv[++i];
      if (arg.rfind(flag + "=", 0) == 0) return arg.c_str() + flag.size() + 1;
      return nullptr;
    };

    if (arg == "--help" || arg == "-h") {
      cli.help = true;
    } else if (const char* v = value_of("--jobs"); v != nullptr) {
      cli.jobs = parse_positive(v);
      if (cli.jobs == 0 && strict) die(bench_name, "invalid --jobs value '" + std::string{v} + "'");
    } else if (arg == "-j" && i + 1 < argc) {
      cli.jobs = parse_positive(argv[++i]);
      if (cli.jobs == 0 && strict)
        die(bench_name, "invalid -j value '" + std::string{argv[i]} + "'");
    } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
      cli.jobs = parse_positive(arg.c_str() + 2);
      if (cli.jobs == 0 && strict) die(bench_name, "invalid -j value '" + arg.substr(2) + "'");
    } else if (const char* v = value_of("--seed"); v != nullptr) {
      cli.has_seed = parse_u64(v, cli.seed);
      if (!cli.has_seed && strict)
        die(bench_name, "invalid --seed value '" + std::string{v} + "'");
    } else if (const char* v = value_of("--duration"); v != nullptr) {
      cli.has_duration = parse_seconds(v, cli.duration_sec);
      if (!cli.has_duration && strict)
        die(bench_name, "invalid --duration value '" + std::string{v} + "' (want seconds > 0)");
    } else if (const char* v = value_of("--out"); v != nullptr) {
      cli.out = v;
    } else if (const char* v = value_of("--report"); v != nullptr) {
      cli.report = v;
    } else if (arg == "--serial") {
      cli.serial = true;
    } else if (const char* v = value_of("--input"); v != nullptr || arg == "--input") {
      // "--input" with no following value must not be silently dropped.
      if (v == nullptr || *v == '\0') {
        if (strict) die(bench_name, "--input needs a path");
      } else {
        cli.input = v;
      }
    } else if (const char* v = value_of("--scale"); v != nullptr || arg == "--scale") {
      std::uint64_t x = 0;
      std::string err;
      if (parse_count("--scale", v, kMaxScale, 1, x, err)) {
        cli.scale = static_cast<std::size_t>(x);
        cli.has_scale = true;
      } else if (strict) {
        die(bench_name, err);
      }
    } else if (const char* v = value_of("--readahead"); v != nullptr || arg == "--readahead") {
      std::uint64_t x = 0;
      std::string err;
      if (parse_count("--readahead", v, kMaxReadahead, 0, x, err)) {
        cli.readahead = static_cast<std::size_t>(x);
      } else if (strict) {
        die(bench_name, err);
      }
    } else if (arg == "--strict") {
      cli.strict = true;
    } else if (const char* v = value_of("--grid"); v != nullptr || arg == "--grid") {
      // Like --input: a present-but-valueless flag must not vanish
      // silently. The spec's content is validated by the bench's grid
      // parser (exit 2 via guarded_main on a malformed axis), not here.
      if (v == nullptr || *v == '\0') {
        if (strict) die(bench_name, "--grid needs a value");
      } else {
        cli.grid = v;
      }
    } else if (const char* v = value_of("--checkpoint"); v != nullptr || arg == "--checkpoint") {
      if (v == nullptr || *v == '\0') {
        if (strict) die(bench_name, "--checkpoint needs a path");
      } else {
        cli.checkpoint = v;
      }
    } else if (arg == "--resume") {
      cli.resume = true;
    } else if (arg == "--service") {
      cli.service = true;
    } else if (const char* v = value_of("--repeat"); v != nullptr || arg == "--repeat") {
      std::uint64_t x = 0;
      std::string err;
      if (parse_count("--repeat", v, kMaxRepeat, 1, x, err)) {
        cli.repeat = static_cast<std::size_t>(x);
      } else if (strict) {
        die(bench_name, err);
      }
    } else if (const char* v = value_of("--procs"); v != nullptr || arg == "--procs") {
      std::uint64_t x = 0;
      std::string err;
      if (parse_count("--procs", v, kMaxProcs, 1, x, err)) {
        cli.procs = static_cast<std::size_t>(x);
      } else if (strict) {
        die(bench_name, err);
      }
    } else {
      cli.rest.push_back(arg);
    }
  }

  if (cli.help && strict) {
    std::cout << usage(bench_name);
    std::exit(0);
  }
  return cli;
}

std::ostream& Cli::output() {
  if (out.empty()) return std::cout;
  if (!out_opened_) {
    out_file_.open(out);
    out_opened_ = true;
    if (!out_file_ && !bench_name_.empty()) {
      std::cerr << bench_name_ << ": cannot open --out file '" << out << "'\n";
      std::exit(2);
    }
  }
  return out_file_;
}

}  // namespace ccc::bench
