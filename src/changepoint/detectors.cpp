#include "changepoint/detectors.hpp"

#include <algorithm>
#include <cassert>

#include "changepoint/kernel.hpp"

namespace ccc::changepoint {

namespace {

/// One-time concrete-type dispatch: the search kernels in kernel.hpp are
/// templated over the cost type, so resolving CostL2 / CostNormal here (both
/// `final`) devirtualizes and inlines every cost() call in the inner loops.
/// Unknown SegmentCost subclasses fall through to the same kernels with
/// virtual dispatch — slower, identical results.
template <class Fn>
void with_concrete_cost(const SegmentCost& cost, Fn&& fn) {
  if (const auto* l2 = dynamic_cast<const CostL2*>(&cost)) {
    fn(*l2);
  } else if (const auto* normal = dynamic_cast<const CostNormal*>(&cost)) {
    fn(*normal);
  } else {
    fn(cost);
  }
}

}  // namespace

void pelt_into(const SegmentCost& cost, double penalty, std::size_t min_segment,
               ChangepointWorkspace& ws, std::vector<std::size_t>& out) {
  with_concrete_cost(cost,
                     [&](const auto& c) { detail::pelt_into(c, penalty, min_segment, ws, out); });
}

std::vector<std::size_t> pelt(const SegmentCost& cost, double penalty, std::size_t min_segment) {
  ChangepointWorkspace ws;
  std::vector<std::size_t> cps;
  pelt_into(cost, penalty, min_segment, ws, cps);
  return cps;
}

void binary_segmentation_into(const SegmentCost& cost, double penalty, std::size_t max_changes,
                              std::vector<std::size_t>& out) {
  with_concrete_cost(cost,
                     [&](const auto& c) { detail::binseg_into(c, penalty, max_changes, out); });
}

std::vector<std::size_t> binary_segmentation(const SegmentCost& cost, double penalty,
                                             std::size_t max_changes) {
  std::vector<std::size_t> cps;
  binary_segmentation_into(cost, penalty, max_changes, cps);
  return cps;
}

void sliding_window_into(const SegmentCost& cost, std::size_t half_width, double penalty,
                         ChangepointWorkspace& ws, std::vector<std::size_t>& out) {
  with_concrete_cost(cost, [&](const auto& c) {
    detail::sliding_window_into(c, half_width, penalty, ws, out);
  });
}

std::vector<std::size_t> sliding_window(const SegmentCost& cost, std::size_t half_width,
                                        double penalty) {
  ChangepointWorkspace ws;
  std::vector<std::size_t> cps;
  sliding_window_into(cost, half_width, penalty, ws, cps);
  return cps;
}

void detect_mean_shifts_into(std::span<const double> signal, double sensitivity,
                             std::size_t min_segment, ChangepointWorkspace& ws,
                             std::vector<std::size_t>& out) {
  assert(sensitivity > 0.0);
  out.clear();
  if (signal.size() < 4) return;
  ws.cost_l2.fit(signal);
  double sigma = estimate_noise_sigma(signal, ws.diffs);
  if (sigma <= 1e-12) {
    // Noise-free signal: any true level shift still has positive cost; use a
    // tiny penalty so exact steps are found without false positives.
    sigma = 1e-6;
  }
  detail::pelt_into(ws.cost_l2, bic_penalty(signal.size(), sigma) * sensitivity, min_segment, ws,
                    out);
}

std::vector<std::size_t> detect_mean_shifts(std::span<const double> signal, double sensitivity,
                                            std::size_t min_segment) {
  ChangepointWorkspace ws;
  std::vector<std::size_t> cps;
  detect_mean_shifts_into(signal, sensitivity, min_segment, ws, cps);
  return cps;
}

Cusum::Cusum(double reference_mean, double slack, double threshold)
    : mean_{reference_mean}, k_{slack}, h_{threshold} {
  assert(h_ > 0.0);
}

bool Cusum::add(double x) {
  s_pos_ = std::max(0.0, s_pos_ + (x - mean_ - k_));
  s_neg_ = std::max(0.0, s_neg_ + (mean_ - x - k_));
  const bool alarm = s_pos_ > h_ || s_neg_ > h_;
  if (alarm) {
    alarms_.push_back(i_);
    s_pos_ = 0.0;
    s_neg_ = 0.0;
  }
  ++i_;
  return alarm;
}

}  // namespace ccc::changepoint
