#include "changepoint/detectors.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ccc::changepoint {

std::vector<std::size_t> pelt(const SegmentCost& cost, double penalty,
                              std::size_t min_segment) {
  const std::size_t n = cost.n();
  const std::size_t min_seg = std::max(min_segment, cost.min_size());
  if (n < 2 * min_seg) return {};

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> f(n + 1, kInf);
  std::vector<std::size_t> prev(n + 1, 0);
  f[0] = -penalty;

  // Candidate last-change-point set, pruned per the PELT criterion.
  std::vector<std::size_t> candidates{0};

  for (std::size_t t = min_seg; t <= n; ++t) {
    double best = kInf;
    std::size_t best_s = 0;
    for (const std::size_t s : candidates) {
      if (t - s < min_seg) continue;
      const double v = f[s] + cost.cost(s, t) + penalty;
      if (v < best) {
        best = v;
        best_s = s;
      }
    }
    if (best == kInf) continue;
    f[t] = best;
    prev[t] = best_s;

    // Prune: s stays a candidate only if it could still win later.
    std::vector<std::size_t> kept;
    kept.reserve(candidates.size() + 1);
    for (const std::size_t s : candidates) {
      if (t - s < min_seg || f[s] + cost.cost(s, t) <= f[t]) kept.push_back(s);
    }
    kept.push_back(t);
    candidates = std::move(kept);
  }

  // Backtrack.
  std::vector<std::size_t> cps;
  std::size_t t = n;
  while (t > 0) {
    const std::size_t s = prev[t];
    if (s == 0) break;
    cps.push_back(s);
    t = s;
  }
  std::sort(cps.begin(), cps.end());
  return cps;
}

namespace {

/// Best single split of [lo, hi); returns (gain, index) or gain = -inf.
std::pair<double, std::size_t> best_split(const SegmentCost& cost, std::size_t lo,
                                          std::size_t hi) {
  const std::size_t min_seg = cost.min_size();
  double best_gain = -std::numeric_limits<double>::infinity();
  std::size_t best_k = 0;
  if (hi - lo < 2 * min_seg) return {best_gain, best_k};
  const double whole = cost.cost(lo, hi);
  for (std::size_t k = lo + min_seg; k + min_seg <= hi; ++k) {
    const double gain = whole - cost.cost(lo, k) - cost.cost(k, hi);
    if (gain > best_gain) {
      best_gain = gain;
      best_k = k;
    }
  }
  return {best_gain, best_k};
}

void binseg_recurse(const SegmentCost& cost, std::size_t lo, std::size_t hi, double penalty,
                    std::size_t budget, std::vector<std::size_t>& out) {
  if (budget == 0) return;
  const auto [gain, k] = best_split(cost, lo, hi);
  if (gain <= penalty) return;
  out.push_back(k);
  binseg_recurse(cost, lo, k, penalty, budget - 1, out);
  binseg_recurse(cost, k, hi, penalty, budget - 1, out);
}

}  // namespace

std::vector<std::size_t> binary_segmentation(const SegmentCost& cost, double penalty,
                                             std::size_t max_changes) {
  std::vector<std::size_t> cps;
  binseg_recurse(cost, 0, cost.n(), penalty, max_changes, cps);
  std::sort(cps.begin(), cps.end());
  return cps;
}

std::vector<std::size_t> sliding_window(const SegmentCost& cost, std::size_t half_width,
                                        double penalty) {
  const std::size_t n = cost.n();
  const std::size_t w = std::max(half_width, cost.min_size());
  std::vector<std::size_t> cps;
  if (n < 2 * w + 1) return cps;

  std::vector<double> score(n, 0.0);
  for (std::size_t i = w; i + w <= n; ++i) {
    score[i] = cost.cost(i - w, i + w) - cost.cost(i - w, i) - cost.cost(i, i + w);
  }
  // Local maxima above the penalty, suppressing neighbors within w.
  std::size_t i = w;
  while (i + w <= n) {
    if (score[i] > penalty) {
      // Walk to the local peak.
      std::size_t peak = i;
      for (std::size_t j = i; j < std::min(i + w, n - 1); ++j) {
        if (score[j] > score[peak]) peak = j;
      }
      cps.push_back(peak);
      i = peak + w;  // non-maximum suppression
    } else {
      ++i;
    }
  }
  return cps;
}

std::vector<std::size_t> detect_mean_shifts(std::span<const double> signal, double sensitivity,
                                            std::size_t min_segment) {
  assert(sensitivity > 0.0);
  if (signal.size() < 4) return {};
  CostL2 cost;
  cost.fit(signal);
  double sigma = estimate_noise_sigma(signal);
  if (sigma <= 1e-12) {
    // Noise-free signal: any true level shift still has positive cost; use a
    // tiny penalty so exact steps are found without false positives.
    sigma = 1e-6;
  }
  return pelt(cost, bic_penalty(signal.size(), sigma) * sensitivity, min_segment);
}

Cusum::Cusum(double reference_mean, double slack, double threshold)
    : mean_{reference_mean}, k_{slack}, h_{threshold} {
  assert(h_ > 0.0);
}

bool Cusum::add(double x) {
  s_pos_ = std::max(0.0, s_pos_ + (x - mean_ - k_));
  s_neg_ = std::max(0.0, s_neg_ + (mean_ - x - k_));
  const bool alarm = s_pos_ > h_ || s_neg_ > h_;
  if (alarm) {
    alarms_.push_back(i_);
    s_pos_ = 0.0;
    s_neg_ = 0.0;
  }
  ++i_;
  return alarm;
}

}  // namespace ccc::changepoint
