// Segment cost functions for offline change-point detection.
//
// Following Truong, Oudre & Vayatis's taxonomy (the paper's ref [60]), a
// change-point method = cost function + search method + penalty. These costs
// precompute prefix sums so any segment's cost is O(1), which the search
// methods (PELT, binary segmentation, sliding window) rely on.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace ccc::changepoint {

/// Cost of fitting one segment [i, j) with a constant model; lower = better.
class SegmentCost {
 public:
  virtual ~SegmentCost() = default;

  /// Binds the signal; must be called before cost(). O(n).
  virtual void fit(std::span<const double> signal) = 0;

  /// Cost of segment [i, j). Preconditions: i < j <= n, j - i >= min_size().
  [[nodiscard]] virtual double cost(std::size_t i, std::size_t j) const = 0;

  /// Smallest segment the model can score.
  [[nodiscard]] virtual std::size_t min_size() const { return 2; }

  [[nodiscard]] std::size_t n() const { return n_; }

 protected:
  std::size_t n_{0};
};

/// L2 cost: sum of squared deviations from the segment mean. Detects mean
/// shifts — the "throughput level changed" signal of §3.1.
///
/// `final`, with the segment cost defined inline: the devirtualized search
/// kernels (kernel.hpp) call cost() through a concrete reference, so the
/// whole prefix-sum expression inlines — branch-free (the clamp compiles to
/// a max instruction) — straight into the search loop.
class CostL2 final : public SegmentCost {
 public:
  void fit(std::span<const double> signal) override;
  /// Segment cost from (sum, sum of squares, length) — the formula behind
  /// cost(). Exposed so the packed PELT fast path (kernel.hpp) can evaluate
  /// candidates from unit-stride copies of the prefix values.
  [[nodiscard]] static double cost_from_sums(double sum, double sum_sq, double len) {
    return std::max(0.0, sum_sq - sum * sum / len);
  }
  [[nodiscard]] double cost(std::size_t i, std::size_t j) const override {
    assert(i < j && j <= n());
    return cost_from_sums(prefix_[j] - prefix_[i], prefix_sq_[j] - prefix_sq_[i],
                          static_cast<double>(j - i));
  }
  [[nodiscard]] std::size_t min_size() const override { return 1; }
  [[nodiscard]] const std::vector<double>& prefix() const { return prefix_; }
  [[nodiscard]] const std::vector<double>& prefix_sq() const { return prefix_sq_; }

 private:
  std::vector<double> prefix_;     // prefix sums of x
  std::vector<double> prefix_sq_;  // prefix sums of x^2
};

/// Gaussian likelihood cost with per-segment mean AND variance:
/// (j-i) * log(var_hat). Detects variance changes too (e.g. a flow moving
/// from a contended sawtooth to a smooth shaped region). Inline for the
/// same devirtualization reason as CostL2.
class CostNormal final : public SegmentCost {
 public:
  void fit(std::span<const double> signal) override;
  /// See CostL2::cost_from_sums.
  [[nodiscard]] static double cost_from_sums(double sum, double sum_sq, double len) {
    const double sse = std::max(0.0, sum_sq - sum * sum / len);
    const double var = std::max(sse / len, 1e-12);
    return len * std::log(var);
  }
  [[nodiscard]] double cost(std::size_t i, std::size_t j) const override {
    assert(i < j && j <= n());
    return cost_from_sums(prefix_[j] - prefix_[i], prefix_sq_[j] - prefix_sq_[i],
                          static_cast<double>(j - i));
  }
  [[nodiscard]] std::size_t min_size() const override { return 3; }
  [[nodiscard]] const std::vector<double>& prefix() const { return prefix_; }
  [[nodiscard]] const std::vector<double>& prefix_sq() const { return prefix_sq_; }

 private:
  std::vector<double> prefix_;
  std::vector<double> prefix_sq_;
};

/// BIC-style penalty for a signal of length n with noise scale sigma:
/// the conventional default when the number of changes is unknown.
[[nodiscard]] double bic_penalty(std::size_t n, double sigma);

/// Robust noise-scale estimate from first differences (median absolute
/// deviation of diff / (sqrt(2) * 0.6745)); insensitive to the level shifts
/// we are trying to find. Returns 0 for signals shorter than 3.
[[nodiscard]] double estimate_noise_sigma(std::span<const double> signal);

/// Allocation-free variant: `scratch` holds the |diff| working buffer and is
/// reused across calls (the pipeline threads one per shard).
[[nodiscard]] double estimate_noise_sigma(std::span<const double> signal,
                                          std::vector<double>& scratch);

}  // namespace ccc::changepoint
