// Segment cost functions for offline change-point detection.
//
// Following Truong, Oudre & Vayatis's taxonomy (the paper's ref [60]), a
// change-point method = cost function + search method + penalty. These costs
// precompute prefix sums so any segment's cost is O(1), which the search
// methods (PELT, binary segmentation, sliding window) rely on.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ccc::changepoint {

/// Cost of fitting one segment [i, j) with a constant model; lower = better.
class SegmentCost {
 public:
  virtual ~SegmentCost() = default;

  /// Binds the signal; must be called before cost(). O(n).
  virtual void fit(std::span<const double> signal) = 0;

  /// Cost of segment [i, j). Preconditions: i < j <= n, j - i >= min_size().
  [[nodiscard]] virtual double cost(std::size_t i, std::size_t j) const = 0;

  /// Smallest segment the model can score.
  [[nodiscard]] virtual std::size_t min_size() const { return 2; }

  [[nodiscard]] std::size_t n() const { return n_; }

 protected:
  std::size_t n_{0};
};

/// L2 cost: sum of squared deviations from the segment mean. Detects mean
/// shifts — the "throughput level changed" signal of §3.1.
class CostL2 final : public SegmentCost {
 public:
  void fit(std::span<const double> signal) override;
  [[nodiscard]] double cost(std::size_t i, std::size_t j) const override;
  [[nodiscard]] std::size_t min_size() const override { return 1; }

 private:
  std::vector<double> prefix_;     // prefix sums of x
  std::vector<double> prefix_sq_;  // prefix sums of x^2
};

/// Gaussian likelihood cost with per-segment mean AND variance:
/// (j-i) * log(var_hat). Detects variance changes too (e.g. a flow moving
/// from a contended sawtooth to a smooth shaped region).
class CostNormal final : public SegmentCost {
 public:
  void fit(std::span<const double> signal) override;
  [[nodiscard]] double cost(std::size_t i, std::size_t j) const override;
  [[nodiscard]] std::size_t min_size() const override { return 3; }

 private:
  std::vector<double> prefix_;
  std::vector<double> prefix_sq_;
};

/// BIC-style penalty for a signal of length n with noise scale sigma:
/// the conventional default when the number of changes is unknown.
[[nodiscard]] double bic_penalty(std::size_t n, double sigma);

/// Robust noise-scale estimate from first differences (median absolute
/// deviation of diff / (sqrt(2) * 0.6745)); insensitive to the level shifts
/// we are trying to find. Returns 0 for signals shorter than 3.
[[nodiscard]] double estimate_noise_sigma(std::span<const double> signal);

}  // namespace ccc::changepoint
