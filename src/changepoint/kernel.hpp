// Devirtualized search kernels — the hot inner loops of PELT, binary
// segmentation, and the sliding window, templated over a CONCRETE cost type.
//
// The public API in detectors.hpp takes `const SegmentCost&` and stays the
// stable entry point; detectors.cpp dispatches each call here after a
// one-time dynamic_cast to the concrete cost (CostL2 / CostNormal — both
// `final`, so cost.cost(i, j) devirtualizes and the prefix-sum arithmetic
// inlines straight into the search loop). Unknown SegmentCost subclasses
// instantiate the same templates with virtual dispatch — slower, identical
// results.
//
// Two invariants the optimizations must not break (the golden-output tests
// pin them):
//  * cost(s, t) is a pure function, so evaluating it ONCE per (s, t) and
//    reusing the value in both the minimize and the prune pass (the seed
//    code evaluated it twice) yields bit-identical segmentations.
//  * all comparisons run in the seed code's candidate order, so FP
//    tie-breaking is unchanged.
#pragma once

#include <algorithm>
#include <cassert>
#include <concepts>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "changepoint/workspace.hpp"

namespace ccc::changepoint::detail {

/// Costs whose segment cost is a pure function of (sum, sum_sq, len) over
/// prefix sums — CostL2 and CostNormal. For these, PELT runs a packed fast
/// path: the per-candidate loads become unit-stride array sweeps.
template <class Cost>
concept PrefixSumCost = requires(const Cost& c) {
  { Cost::cost_from_sums(0.0, 0.0, 1.0) } -> std::convertible_to<double>;
  { c.prefix() } -> std::convertible_to<const std::vector<double>&>;
  { c.prefix_sq() } -> std::convertible_to<const std::vector<double>&>;
};

/// PELT with fused minimize+prune and in-place candidate compaction — the
/// generic (possibly virtual-dispatch) path for unknown cost types.
///
/// Feasibility note (the former silent `best == kInf` path): f[t] stays at
/// +inf whenever every surviving candidate is younger than min_seg — e.g.
/// right after a prune removed all old candidates. That is legitimate
/// transient state: such a t is NOT appended to the candidate set (so no
/// later step ever reads a non-finite f[s]; asserted below), and if f[n]
/// itself is unreachable the backtrack stops at prev[n] == 0 and reports
/// "no change points". The degenerate min_segment > n/2 case exits via the
/// n < 2 * min_seg guard before the loop.
template <class Cost>
void pelt_into_generic(const Cost& cost, double penalty, std::size_t min_segment,
                       ChangepointWorkspace& ws, std::vector<std::size_t>& out) {
  out.clear();
  const std::size_t n = cost.n();
  const std::size_t min_seg = std::max(min_segment, cost.min_size());
  if (n < 2 * min_seg) return;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto& f = ws.f;
  auto& prev = ws.prev;
  auto& cand = ws.candidates;
  auto& cand_cost = ws.candidate_cost;
  f.assign(n + 1, kInf);
  prev.assign(n + 1, 0);
  f[0] = -penalty;
  cand.clear();
  cand.push_back(0);

  for (std::size_t t = min_seg; t <= n; ++t) {
    const std::size_t m = cand.size();
    cand_cost.resize(m);
    double best = kInf;
    std::size_t best_s = 0;
    for (std::size_t idx = 0; idx < m; ++idx) {
      const std::size_t s = cand[idx];
      assert(f[s] < kInf);           // only reachable prefixes become candidates
      if (t - s < min_seg) continue;  // too young to close a segment
      const double c = cost.cost(s, t);  // evaluated once per (s, t)
      cand_cost[idx] = c;
      const double v = f[s] + c + penalty;
      if (v < best) {
        best = v;
        best_s = s;
      }
    }
    if (best == kInf) continue;  // every candidate too young; see note above
    f[t] = best;
    prev[t] = best_s;

    // Prune, compacting in place: s survives iff it could still win later.
    // Young candidates short-circuit before reading their (unset) cache slot.
    std::size_t w = 0;
    for (std::size_t idx = 0; idx < m; ++idx) {
      const std::size_t s = cand[idx];
      if (t - s < min_seg || f[s] + cand_cost[idx] <= f[t]) cand[w++] = s;
    }
    cand.resize(w);
    cand.push_back(t);
  }

  // Backtrack.
  std::size_t t = n;
  while (t > 0) {
    const std::size_t s = prev[t];
    if (s == 0) break;
    out.push_back(s);
    t = s;
  }
  std::sort(out.begin(), out.end());
}

/// Packed PELT for prefix-sum costs: bit-identical to pelt_into_generic —
/// every FP operation runs on the same values in the same order — but each
/// candidate's (f, prefix, prefix_sq, index) lives in parallel unit-stride
/// arrays maintained across steps. The minimize loop is then a flat
/// branch-free sweep: no gathers through f[]/prefix[] by candidate index,
/// no per-candidate age check (candidates are sorted, so the too-young ones
/// are a suffix located once per step), and independent divisions the
/// hardware can pipeline. On the ~100-sample pipeline flows this roughly
/// halves PELT's per-eval cost.
template <class Cost>
  requires PrefixSumCost<Cost>
void pelt_into_packed(const Cost& cost, double penalty, std::size_t min_segment,
                      ChangepointWorkspace& ws, std::vector<std::size_t>& out) {
  out.clear();
  const std::size_t n = cost.n();
  const std::size_t min_seg = std::max(min_segment, cost.min_size());
  if (n < 2 * min_seg) return;

  const std::vector<double>& p = cost.prefix();
  const std::vector<double>& p2 = cost.prefix_sq();
  auto& prev = ws.prev;
  auto& cand = ws.candidates;     // s, ascending (appended in t order)
  auto& cc = ws.candidate_cost;   // cost(s, t) this step
  auto& cf = ws.cand_f;           // f[s]
  auto& cp = ws.cand_p;           // prefix[s]
  auto& cp2 = ws.cand_p2;         // prefix_sq[s]
  auto& csd = ws.cand_sd;         // (double)s
  auto& cv = ws.cand_v;           // f[s] + cost + penalty this step
  prev.assign(n + 1, 0);
  // Worst case keeps every index as a candidate, so sizing everything to
  // n + 1 up front (a) removes all per-step resize/push_back paths and (b)
  // keeps .data() stable, letting the sweep run over hoisted __restrict
  // pointers — no per-step runtime aliasing checks for the vectorizer.
  cand.resize(n + 1);
  cf.resize(n + 1);
  cp.resize(n + 1);
  cp2.resize(n + 1);
  csd.resize(n + 1);
  cc.resize(n + 1);
  cv.resize(n + 1);
  std::size_t m = 1;  // live candidate count
  cand[0] = 0;
  cf[0] = -penalty;  // f[0]
  cp[0] = p[0];
  cp2[0] = p2[0];
  csd[0] = 0.0;
  std::size_t* __restrict cand_d = cand.data();
  double* __restrict cf_d = cf.data();
  double* __restrict cp_d = cp.data();
  double* __restrict cp2_d = cp2.data();
  double* __restrict csd_d = csd.data();
  double* __restrict cc_d = cc.data();
  double* __restrict cv_d = cv.data();
  const double* __restrict p_d = p.data();
  const double* __restrict p2_d = p2.data();

  for (std::size_t t = min_seg; t <= n; ++t) {
    // Candidates are sorted, so those too young to close a segment
    // (s > t - min_seg) form a suffix — at most min_seg - 1 entries.
    const std::size_t s_max = t - min_seg;
    std::size_t m_old = m;
    while (m_old > 0 && cand_d[m_old - 1] > s_max) --m_old;
    if (m_old == 0) continue;  // every candidate too young (kInf in the generic path)

    // Minimize: flat elementwise sweep over the packed arrays. Same values,
    // same order as f[s] + cost.cost(s, t) + penalty in the generic path —
    // td - csd[i] is exact for integer-valued doubles, so it equals
    // (double)(t - s).
    const double pt = p_d[t];
    const double p2t = p2_d[t];
    const double td = static_cast<double>(t);
    for (std::size_t i = 0; i < m_old; ++i) {
      const double c =
          Cost::cost_from_sums(pt - cp_d[i], p2t - cp2_d[i], td - csd_d[i]);
      cc_d[i] = c;
      cv_d[i] = cf_d[i] + c + penalty;
    }
    // First strict minimum — the same winner the generic path's running
    // `v < best` comparison picks. Two phases: the min VALUE is
    // order-independent (no NaNs, and round-to-nearest addition cannot
    // produce -0.0 here), so it reduces pairwise in SIMD; the first index
    // attaining that value is exactly the index the sequential strict-<
    // scan returns.
    double best;
    std::size_t best_i;
#if defined(__SSE2__)
    {
      __m128d vmin = _mm_set1_pd(cv_d[0]);
      std::size_t i = 0;
      for (; i + 2 <= m_old; i += 2) vmin = _mm_min_pd(vmin, _mm_loadu_pd(cv_d + i));
      double lanes[2];
      _mm_storeu_pd(lanes, vmin);
      best = std::min(lanes[0], lanes[1]);
      if (i < m_old) best = std::min(best, cv_d[i]);
      const __m128d vbest = _mm_set1_pd(best);
      best_i = m_old - 1;  // fallback: an odd tail element must be the min
      for (i = 0; i + 2 <= m_old; i += 2) {
        const int eq = _mm_movemask_pd(_mm_cmpeq_pd(_mm_loadu_pd(cv_d + i), vbest));
        if (eq != 0) {
          best_i = i + (((eq & 1) != 0) ? 0 : 1);
          break;
        }
      }
    }
#else
    best = cv_d[0];
    best_i = 0;
    for (std::size_t i = 1; i < m_old; ++i) {
      if (cv_d[i] < best) {
        best = cv_d[i];
        best_i = i;
      }
    }
#endif
    const double ft = best;  // f[t]
    prev[t] = cand_d[best_i];

    // Prune, compacting every packed array in place; the young suffix
    // survives unconditionally (the `t - s < min_seg` clause). Candidates
    // up to the first pruned one keep their slots, so when nothing is
    // pruned — the common case on noisy flows, where every candidate stays
    // within `penalty` of the optimum — no array is touched at all.
    std::size_t keep = 0;
#if defined(__SSE2__)
    {
      // Pairwise scan for the first pruned candidate; addpd/cmpgt are the
      // same IEEE add and compare the scalar loop performs.
      const __m128d vft = _mm_set1_pd(ft);
      while (keep + 2 <= m_old) {
        const __m128d w2 =
            _mm_add_pd(_mm_loadu_pd(cf_d + keep), _mm_loadu_pd(cc_d + keep));
        if (_mm_movemask_pd(_mm_cmpgt_pd(w2, vft)) != 0) break;
        keep += 2;
      }
    }
#endif
    while (keep < m_old && cf_d[keep] + cc_d[keep] <= ft) ++keep;
    if (keep < m_old) {
      std::size_t w = keep;
      for (std::size_t i = keep + 1; i < m_old; ++i) {
        if (cf_d[i] + cc_d[i] <= ft) {
          cand_d[w] = cand_d[i];
          cf_d[w] = cf_d[i];
          cp_d[w] = cp_d[i];
          cp2_d[w] = cp2_d[i];
          csd_d[w] = csd_d[i];
          ++w;
        }
      }
      for (std::size_t i = m_old; i < m; ++i) {
        cand_d[w] = cand_d[i];
        cf_d[w] = cf_d[i];
        cp_d[w] = cp_d[i];
        cp2_d[w] = cp2_d[i];
        csd_d[w] = csd_d[i];
        ++w;
      }
      m = w;
    }
    cand_d[m] = t;
    cf_d[m] = ft;
    cp_d[m] = pt;
    cp2_d[m] = p2t;
    csd_d[m] = td;
    ++m;
  }

  // Backtrack.
  std::size_t t = n;
  while (t > 0) {
    const std::size_t s = prev[t];
    if (s == 0) break;
    out.push_back(s);
    t = s;
  }
  std::sort(out.begin(), out.end());
}

/// Entry point: packed fast path for prefix-sum costs, generic otherwise.
template <class Cost>
void pelt_into(const Cost& cost, double penalty, std::size_t min_segment,
               ChangepointWorkspace& ws, std::vector<std::size_t>& out) {
  if constexpr (PrefixSumCost<Cost>) {
    pelt_into_packed(cost, penalty, min_segment, ws, out);
  } else {
    pelt_into_generic(cost, penalty, min_segment, ws, out);
  }
}

/// Best single split of [lo, hi); returns (gain, index) or gain = -inf.
template <class Cost>
std::pair<double, std::size_t> best_split(const Cost& cost, std::size_t lo, std::size_t hi) {
  const std::size_t min_seg = cost.min_size();
  double best_gain = -std::numeric_limits<double>::infinity();
  std::size_t best_k = 0;
  if (hi - lo < 2 * min_seg) return {best_gain, best_k};
  const double whole = cost.cost(lo, hi);
  for (std::size_t k = lo + min_seg; k + min_seg <= hi; ++k) {
    const double gain = whole - cost.cost(lo, k) - cost.cost(k, hi);
    if (gain > best_gain) {
      best_gain = gain;
      best_k = k;
    }
  }
  return {best_gain, best_k};
}

template <class Cost>
void binseg_recurse(const Cost& cost, std::size_t lo, std::size_t hi, double penalty,
                    std::size_t budget, std::vector<std::size_t>& out) {
  if (budget == 0) return;
  const auto [gain, k] = best_split(cost, lo, hi);
  if (gain <= penalty) return;
  out.push_back(k);
  binseg_recurse(cost, lo, k, penalty, budget - 1, out);
  binseg_recurse(cost, k, hi, penalty, budget - 1, out);
}

template <class Cost>
void binseg_into(const Cost& cost, double penalty, std::size_t max_changes,
                 std::vector<std::size_t>& out) {
  out.clear();
  binseg_recurse(cost, 0, cost.n(), penalty, max_changes, out);
  std::sort(out.begin(), out.end());
}

template <class Cost>
void sliding_window_into(const Cost& cost, std::size_t half_width, double penalty,
                         ChangepointWorkspace& ws, std::vector<std::size_t>& out) {
  out.clear();
  const std::size_t n = cost.n();
  const std::size_t w = std::max(half_width, cost.min_size());
  if (n < 2 * w + 1) return;

  auto& score = ws.score;
  score.assign(n, 0.0);
  for (std::size_t i = w; i + w <= n; ++i) {
    score[i] = cost.cost(i - w, i + w) - cost.cost(i - w, i) - cost.cost(i, i + w);
  }
  // Local maxima above the penalty, suppressing neighbors within w.
  std::size_t i = w;
  while (i + w <= n) {
    if (score[i] > penalty) {
      // Walk to the local peak.
      std::size_t peak = i;
      for (std::size_t j = i; j < std::min(i + w, n - 1); ++j) {
        if (score[j] > score[peak]) peak = j;
      }
      out.push_back(peak);
      i = peak + w;  // non-maximum suppression
    } else {
      ++i;
    }
  }
}

}  // namespace ccc::changepoint::detail
