#include "changepoint/cost.hpp"

#include <algorithm>
#include <cmath>

namespace ccc::changepoint {

namespace {

void build_prefixes(std::span<const double> x, std::vector<double>& p, std::vector<double>& p2) {
  p.assign(x.size() + 1, 0.0);
  p2.assign(x.size() + 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    p[i + 1] = p[i] + x[i];
    p2[i + 1] = p2[i] + x[i] * x[i];
  }
}

}  // namespace

// cost() for both models lives inline in cost.hpp so the devirtualized
// search kernels can inline it; only fit() (cold, once per signal) is here.

void CostL2::fit(std::span<const double> signal) {
  n_ = signal.size();
  build_prefixes(signal, prefix_, prefix_sq_);
}

void CostNormal::fit(std::span<const double> signal) {
  n_ = signal.size();
  build_prefixes(signal, prefix_, prefix_sq_);
}

double bic_penalty(std::size_t n, double sigma) {
  return 2.0 * sigma * sigma * std::log(static_cast<double>(std::max<std::size_t>(n, 2)));
}

double estimate_noise_sigma(std::span<const double> signal, std::vector<double>& scratch) {
  if (signal.size() < 3) return 0.0;
  scratch.clear();
  scratch.reserve(signal.size() - 1);
  for (std::size_t i = 1; i < signal.size(); ++i) {
    scratch.push_back(std::abs(signal[i] - signal[i - 1]));
  }
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(scratch.size() / 2),
                   scratch.end());
  const double mad = scratch[scratch.size() / 2];
  return mad / (std::sqrt(2.0) * 0.6745);
}

double estimate_noise_sigma(std::span<const double> signal) {
  std::vector<double> scratch;
  return estimate_noise_sigma(signal, scratch);
}

}  // namespace ccc::changepoint
