#include "changepoint/cost.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ccc::changepoint {

namespace {

void build_prefixes(std::span<const double> x, std::vector<double>& p, std::vector<double>& p2) {
  p.assign(x.size() + 1, 0.0);
  p2.assign(x.size() + 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    p[i + 1] = p[i] + x[i];
    p2[i + 1] = p2[i] + x[i] * x[i];
  }
}

/// Sum of squared deviations from the mean of [i, j), via prefix sums.
double sse(const std::vector<double>& p, const std::vector<double>& p2, std::size_t i,
           std::size_t j) {
  const double n = static_cast<double>(j - i);
  const double sum = p[j] - p[i];
  const double sum_sq = p2[j] - p2[i];
  return std::max(0.0, sum_sq - sum * sum / n);
}

}  // namespace

void CostL2::fit(std::span<const double> signal) {
  n_ = signal.size();
  build_prefixes(signal, prefix_, prefix_sq_);
}

double CostL2::cost(std::size_t i, std::size_t j) const {
  assert(i < j && j <= n_);
  return sse(prefix_, prefix_sq_, i, j);
}

void CostNormal::fit(std::span<const double> signal) {
  n_ = signal.size();
  build_prefixes(signal, prefix_, prefix_sq_);
}

double CostNormal::cost(std::size_t i, std::size_t j) const {
  assert(i < j && j <= n_);
  const double n = static_cast<double>(j - i);
  const double var = std::max(sse(prefix_, prefix_sq_, i, j) / n, 1e-12);
  return n * std::log(var);
}

double bic_penalty(std::size_t n, double sigma) {
  return 2.0 * sigma * sigma * std::log(static_cast<double>(std::max<std::size_t>(n, 2)));
}

double estimate_noise_sigma(std::span<const double> signal) {
  if (signal.size() < 3) return 0.0;
  std::vector<double> diffs;
  diffs.reserve(signal.size() - 1);
  for (std::size_t i = 1; i < signal.size(); ++i) {
    diffs.push_back(std::abs(signal[i] - signal[i - 1]));
  }
  std::nth_element(diffs.begin(), diffs.begin() + static_cast<std::ptrdiff_t>(diffs.size() / 2),
                   diffs.end());
  const double mad = diffs[diffs.size() / 2];
  return mad / (std::sqrt(2.0) * 0.6745);
}

}  // namespace ccc::changepoint
