// Offline and online change-point search methods (Truong et al., ref [60]).
//
// All offline methods return the sorted interior change points: indices k
// such that segments split as [0,k1), [k1,k2), ..., [km, n). An empty result
// means "no level change" — which, in the paper's §3.1 analysis, is evidence
// a flow did NOT experience contention during its lifetime.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "changepoint/cost.hpp"
#include "changepoint/workspace.hpp"

namespace ccc::changepoint {

/// PELT (Pruned Exact Linear Time): exact minimizer of
///   sum(segment costs) + penalty * (#segments)
/// with pruning that keeps the expected runtime linear.
/// `min_segment` (if > cost.min_size()) forbids shorter segments.
[[nodiscard]] std::vector<std::size_t> pelt(const SegmentCost& cost, double penalty,
                                            std::size_t min_segment = 0);

/// Greedy binary segmentation: recursively split at the best point while the
/// cost reduction exceeds `penalty`. Approximate but simple; the classic
/// baseline search method.
[[nodiscard]] std::vector<std::size_t> binary_segmentation(const SegmentCost& cost,
                                                           double penalty,
                                                           std::size_t max_changes = 32);

/// Sliding-window discrepancy: score each index by
///   cost(i-w, i+w) - cost(i-w, i) - cost(i, i+w)
/// and report local maxima above `penalty`. Cheap, online-friendly, less
/// precise near segment edges.
[[nodiscard]] std::vector<std::size_t> sliding_window(const SegmentCost& cost,
                                                      std::size_t half_width, double penalty);

/// Convenience: fit CostL2 on `signal`, pick a BIC penalty from the robust
/// noise estimate scaled by `sensitivity` (1.0 = default; smaller = more
/// change points), and run PELT with a minimum segment of `min_segment`
/// samples. This is the configuration the passive pipeline (§3.1) uses.
[[nodiscard]] std::vector<std::size_t> detect_mean_shifts(std::span<const double> signal,
                                                          double sensitivity = 1.0,
                                                          std::size_t min_segment = 3);

// ---------------------------------------------------------------------------
// Workspace variants: bit-identical results with zero per-call heap
// allocation once the workspace buffers have warmed up. The passive pipeline
// constructs one ChangepointWorkspace per shard and threads it through every
// flow; the convenience wrappers above allocate a throwaway workspace.
// ---------------------------------------------------------------------------

/// PELT into a caller-owned output vector, using `ws` for the DP state.
void pelt_into(const SegmentCost& cost, double penalty, std::size_t min_segment,
               ChangepointWorkspace& ws, std::vector<std::size_t>& out);

/// Binary segmentation into a caller-owned output vector.
void binary_segmentation_into(const SegmentCost& cost, double penalty, std::size_t max_changes,
                              std::vector<std::size_t>& out);

/// Sliding-window discrepancy into a caller-owned output vector; `ws` holds
/// the per-index score buffer.
void sliding_window_into(const SegmentCost& cost, std::size_t half_width, double penalty,
                         ChangepointWorkspace& ws, std::vector<std::size_t>& out);

/// detect_mean_shifts with every buffer (cost prefixes, sigma scratch, PELT
/// state, output) drawn from `ws`.
void detect_mean_shifts_into(std::span<const double> signal, double sensitivity,
                             std::size_t min_segment, ChangepointWorkspace& ws,
                             std::vector<std::size_t>& out);

/// Online CUSUM detector for upward/downward mean shifts. Feed samples one
/// at a time; alarms report the sample index at which the cumulative drift
/// exceeded the threshold.
class Cusum {
 public:
  /// `reference_mean`: the in-control mean. `slack`: allowance k (per-sample
  /// drift ignored). `threshold`: alarm level h. Typical: k = 0.5 sigma,
  /// h = 5 sigma.
  Cusum(double reference_mean, double slack, double threshold);

  /// Processes one sample; returns true if this sample raised an alarm
  /// (the statistic resets afterwards).
  bool add(double x);

  [[nodiscard]] const std::vector<std::size_t>& alarms() const { return alarms_; }
  [[nodiscard]] double positive_stat() const { return s_pos_; }
  [[nodiscard]] double negative_stat() const { return s_neg_; }

 private:
  double mean_;
  double k_;
  double h_;
  double s_pos_{0.0};
  double s_neg_{0.0};
  std::size_t i_{0};
  std::vector<std::size_t> alarms_;
};

}  // namespace ccc::changepoint
