// ChangepointWorkspace — reusable scratch for the search kernels.
//
// The million-flow passive pipeline (§3.1 at scale) runs one change-point
// search per residual flow; allocating the PELT state (f/prev/candidate
// arrays), the cost prefix sums, and the log-transformed series per flow
// dominated the detection stage's cost. A workspace owns all of those
// buffers: each shard constructs ONE and threads it through every flow, so
// the buffers grow to the longest series the shard sees and are then reused
// allocation-free (assign()/clear() on a vector never shrinks capacity).
//
// A workspace is plain mutable state — not thread-safe, but shards share
// nothing, so one workspace per shard (or per thread) is the whole story.
// Results are identical with or without a workspace: the kernels compute
// the same values in the same order either way.
#pragma once

#include <cstddef>
#include <vector>

#include "changepoint/cost.hpp"

namespace ccc::changepoint {

struct ChangepointWorkspace {
  // --- PELT state (pelt_into) ---
  std::vector<double> f;                   ///< optimal cost to each prefix
  std::vector<std::size_t> prev;           ///< backtracking links
  std::vector<std::size_t> candidates;     ///< pruned last-change-point set
  std::vector<double> candidate_cost;      ///< cost(s, t) cache, one eval per step

  // Packed per-candidate state for the prefix-sum fast path: each
  // candidate's f value, prefix sums, and index-as-double live in parallel
  // unit-stride arrays, so the minimize loop is a flat branch-free sweep
  // (no gathers through f[]/prefix[] by candidate index).
  std::vector<double> cand_f;              ///< f[s] per candidate
  std::vector<double> cand_p;              ///< prefix[s] per candidate
  std::vector<double> cand_p2;             ///< prefix_sq[s] per candidate
  std::vector<double> cand_sd;             ///< (double)s per candidate
  std::vector<double> cand_v;              ///< f[s] + cost + penalty per step

  // --- sliding-window state ---
  std::vector<double> score;               ///< per-index discrepancy scores

  // --- detect_mean_shifts / pipeline detection stage ---
  CostL2 cost_l2;                          ///< prefix-sum buffers, refit per flow
  std::vector<double> diffs;               ///< estimate_noise_sigma scratch
  std::vector<double> log_series;          ///< log-transformed throughput series
  std::vector<std::size_t> cps;            ///< change-point output buffer
  std::vector<std::size_t> bounds;         ///< segment boundaries incl. 0 and n
};

}  // namespace ccc::changepoint
