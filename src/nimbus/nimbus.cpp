#include "nimbus/nimbus.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

#include "telemetry/metrics.hpp"

namespace ccc::nimbus {

NimbusCca::NimbusCca(const sim::Scheduler& sched, NimbusConfig cfg)
    : sched_{sched}, cfg_{cfg}, base_rate_{cfg.initial_rate} {
  assert(cfg_.pulse_hz > 0.0);
  assert(cfg_.pulse_amplitude > 0.0 && cfg_.pulse_amplitude < 1.0);
  assert(cfg_.sample_bin > Time::zero());
  max_bins_ = static_cast<std::size_t>(cfg_.fft_window / cfg_.sample_bin);
  competitive_rate_bps_ = base_rate_.to_bps();
}

Rate NimbusCca::capacity_estimate() const {
  if (!cfg_.capacity_hint.is_zero()) return cfg_.capacity_hint;
  Rate best = base_rate_;  // never estimate below what we're sending
  for (const auto& [when, r] : rout_window_) best = std::max(best, r);
  return best;
}

Rate NimbusCca::pulsed_rate(Time now) const {
  const Rate rate = mode_ == Mode::kDelay ? base_rate_ : Rate::bps(competitive_rate_bps_);
  // Asymmetric, mean-neutral pulse at fp (as in Nimbus): a strong half-sine
  // up-pulse for the first quarter period, then a shallow (1/3-amplitude)
  // half-sine down-pulse over the remaining three quarters. The sharp
  // up-pulse perturbs elastic cross traffic hard; the gentle compensation
  // avoids draining the standing queue (which would invalidate the
  // cross-traffic estimator). Amplitude is sized by the capacity estimate,
  // not the probe's own rate, so the perturbation stays meaningful even when
  // the probe holds a small share.
  const double period = 1.0 / cfg_.pulse_hz;
  const double s = std::fmod(now.to_sec(), period);
  const double amp = cfg_.pulse_amplitude * capacity_estimate().to_bps();
  double add = 0.0;
  if (s < period / 4.0) {
    add = amp * std::sin(std::numbers::pi * s / (period / 4.0));
  } else {
    add = -(amp / 3.0) * std::sin(std::numbers::pi * (s - period / 4.0) / (3.0 * period / 4.0));
  }
  const double pulsed = rate.to_bps() + add;
  return Rate::bps(std::max(pulsed, cfg_.min_rate.to_bps() * 0.25));
}

Rate NimbusCca::pacing_rate() const { return pulsed_rate(sched_.now()); }

ByteCount NimbusCca::cwnd_bytes() const {
  // Window cap: 2x the estimated BDP at the *pulsed peak* rate so pacing —
  // not the window — shapes transmission, while bounding queue blowup.
  const Time rtt = min_rtt_ == Time::never() ? Time::ms(100) : min_rtt_;
  const Rate peak = capacity_estimate() * (1.0 + cfg_.pulse_amplitude);
  const auto bdp = static_cast<ByteCount>(peak.bytes_per_sec() * rtt.to_sec());
  return std::max<ByteCount>(2 * bdp, 4 * cfg_.mss);
}

void NimbusCca::push_z(double z_bps, double z_control_bps) {
  last_z_bps_ = z_bps;
  z_series_.push_back(z_bps);
  if (z_tap_) z_tap_(z_bps);
  if (estimator_) estimator_->push(z_bps);
  z_ewma_bps_ =
      0.95 * z_ewma_bps_ + 0.05 * std::clamp(z_control_bps, 0.0, capacity_estimate().to_bps());
  while (z_series_.size() > max_bins_) z_series_.pop_front();
}

void NimbusCca::finalize_bin(std::int64_t next_bin) {
  const double bin_sec = cfg_.sample_bin.to_sec();
  double z = last_z_bps_;       // default: hold (bin had no usable data)
  double z_ctrl = z_ewma_bps_;  // default: hold the control estimate too

  if (cur_bin_bytes_ > 0 && prev_bin_last_ack_ > Time::zero() &&
      cur_bin_last_ack_ > prev_bin_last_ack_) {
    // Send/receive dilation over this bin's packets:
    //   rin  = bytes / bin width (send spacing)
    //   rout = bytes / ACK-arrival span (receive spacing)
    //   z    = mu * rin/rout - rin = mu * span/width - bytes/width.
    const double recv_span = (cur_bin_last_ack_ - prev_bin_last_ack_).to_sec();
    const double mu = capacity_estimate().to_bps();
    const double rin = static_cast<double>(cur_bin_bytes_) * 8.0 / bin_sec;
    const double rout = static_cast<double>(cur_bin_bytes_) * 8.0 / recv_span;
    // Estimator validity: the bottleneck must have stayed busy while this
    // bin's packets crossed it. A drained queue shows up as per-bin RTTs
    // collapsing to the path minimum; such bins would read the degenerate
    // mu - rin (our own pulse shape) instead of cross traffic, so they are
    // recorded as z = 0 — an idle link carries no contending traffic.
    const bool link_busy =
        queue_delay_ewma_sec_ > 0.25 * cfg_.target_queue_delay.to_sec();
    const bool bin_drained =
        cur_bin_min_rtt_ != Time::never() && min_rtt_ != Time::never() &&
        (cur_bin_min_rtt_ - min_rtt_).to_sec() < 0.2 * cfg_.target_queue_delay.to_sec();
    if (link_busy && !bin_drained && rout > 1.0) {
      z = std::clamp(mu * rin / rout - rin, 0.0, 2.0 * mu);
      z_ctrl = z;
    } else {
      // FFT series: an un-backlogged link means nothing is contending; but
      // for the *controller*, mu - rin is a tight cross-traffic bound right
      // at the drain point (feeding 0 instead would slam the base rate to
      // mu and set up a relaxation oscillation).
      z = 0.0;
      z_ctrl = std::max(mu - rin, 0.0);
    }
    // Receive-rate maxima feed the capacity estimator (10 s window).
    rout_window_.emplace_back(cur_bin_last_ack_, Rate::bps(rout));
    while (!rout_window_.empty() &&
           cur_bin_last_ack_ - rout_window_.front().first > Time::sec(10)) {
      rout_window_.pop_front();
    }
  }
  push_z(z, z_ctrl);
  // Fill any fully-skipped bins (idle probe) with the held values.
  for (std::int64_t k = cur_bin_ + 1; k < next_bin; ++k) push_z(last_z_bps_, z_ewma_bps_);

  if (cur_bin_bytes_ > 0) prev_bin_last_ack_ = cur_bin_last_ack_;
  cur_bin_bytes_ = 0;
  cur_bin_min_rtt_ = Time::never();
}

void NimbusCca::account_delivery(const cca::AckEvent& ev) {
  if (ev.acked_sent_at == Time::zero() || ev.newly_acked_bytes <= 0) return;
  const std::int64_t bin = ev.acked_sent_at.count_ns() / cfg_.sample_bin.count_ns();
  if (cur_bin_ < 0) {
    cur_bin_ = bin;
    prev_bin_last_ack_ = ev.now;  // bootstrap the receive-span chain
    return;
  }
  if (bin > cur_bin_) {
    finalize_bin(bin);
    cur_bin_ = bin;
  }
  // Out-of-order (recovery) deliveries just fold into the current bin.
  cur_bin_bytes_ += ev.newly_acked_bytes;
  cur_bin_last_ack_ = std::max(cur_bin_last_ack_, ev.now);
  if (ev.rtt_sample > Time::zero()) cur_bin_min_rtt_ = std::min(cur_bin_min_rtt_, ev.rtt_sample);
}

double NimbusCca::elasticity() const {
  // Opt-in streaming engine: once it holds a full window it answers directly
  // (O(#bins) state already maintained by push_z). Before that — and always,
  // when no estimator is attached — the full-FFT path below runs unchanged.
  if (estimator_ != nullptr && estimator_->ready()) {
    return estimator_->eta(cfg_.pulse_amplitude * capacity_estimate().to_bps());
  }
  // Linearize the deque into the workspace's staging buffer; the spectrum
  // scratch inside fft_ws_ is likewise reused across windows.
  std::vector<double>& z = fft_ws_.series;
  z.assign(z_series_.begin(), z_series_.end());
  ElasticityConfig ec;
  ec.pulse_hz = cfg_.pulse_hz;
  // A fully-elastic cross flow would answer the pulses nearly 1:1; require a
  // meaningful fraction of that before calling the path elastic.
  ec.reference_amplitude = cfg_.pulse_amplitude * capacity_estimate().to_bps();
  return elasticity_metric(z, 1.0 / cfg_.sample_bin.to_sec(), ec, fft_ws_);
}

void NimbusCca::run_delay_controller(Time now) {
  if (srtt_ == Time::zero() || min_rtt_ == Time::never()) return;
  if (now - last_control_ < std::max(min_rtt_, Time::ms(10))) return;
  last_control_ = now;

  const double target = cfg_.target_queue_delay.to_sec();
  const double mu = capacity_estimate().to_bps();

  // Nimbus delay-mode control law: aim for the link's spare capacity
  // (mu - zhat) plus a correction that regulates the standing queue to the
  // target. Keeping a small positive standing queue is what validates the
  // cross-traffic estimator (the link must stay busy through the shallow
  // down-pulse). The queue estimate is a slow EWMA so the controller does
  // not chase — and thereby re-inject — the pulse frequency itself.
  const double max_step = 0.02 * mu;
  double next;
  if (queue_delay_ewma_sec_ < 0.1 * target) {
    // No standing queue: the link has spare capacity and z is unobservable
    // (the mu - z law becomes a fixed point at the current rate). Probe
    // upward gently until a queue forms; small steps keep the crossing into
    // the regulated regime smooth instead of oscillatory.
    next = base_rate_.to_bps() + 0.005 * mu;
  } else {
    const double correction =
        cfg_.delay_gain * (target - queue_delay_ewma_sec_) / std::max(min_rtt_.to_sec(), 1e-3);
    const double target_base = (mu - z_ewma_bps_) + correction * mu;
    // Slew-rate-limit the base: the feedback path (queue EWMA + one RTT)
    // lags several hundred ms, and an integrating plant under delayed
    // proportional control limit-cycles unless steps stay small.
    next = base_rate_.to_bps() +
           std::clamp(target_base - base_rate_.to_bps(), -max_step, max_step);
  }
  next = std::clamp(next, cfg_.min_rate.to_bps(), mu * 1.2);
  base_rate_ = Rate::bps(next);

  // TCP-competitive mode: additive increase of one MSS per RTT.
  if (mode_ == Mode::kTcpCompetitive) {
    competitive_rate_bps_ += static_cast<double>(cfg_.mss) * 8.0 / min_rtt_.to_sec() *
                             (min_rtt_.to_sec() / std::max(srtt_.to_sec(), 1e-3));
    competitive_rate_bps_ = std::clamp(competitive_rate_bps_, cfg_.min_rate.to_bps(), mu * 1.5);
  }
}

void NimbusCca::bind_metrics(telemetry::MetricRegistry& reg, const std::string& prefix) {
  mode_transitions_ = &reg.counter(prefix + ".mode_transitions");
  mode_trace_ = &reg.trace(prefix + ".mode", Time::zero());
  mode_trace_->record(Time::zero(), static_cast<double>(mode_));
}

void NimbusCca::update_mode(Time now) {
  if (!cfg_.enable_mode_switching) return;
  if (now - last_mode_eval_ < cfg_.fft_window) return;  // one decision per window
  last_mode_eval_ = now;
  const bool elastic = elasticity() >= kElasticThreshold;
  const Mode before = mode_;
  if (elastic && mode_ == Mode::kDelay) {
    mode_ = Mode::kTcpCompetitive;
    competitive_rate_bps_ = base_rate_.to_bps();
  } else if (!elastic && mode_ == Mode::kTcpCompetitive) {
    mode_ = Mode::kDelay;
    base_rate_ = Rate::bps(competitive_rate_bps_);
  }
  if (mode_ != before && mode_transitions_ != nullptr) {
    mode_transitions_->inc();
    mode_trace_->record(now, static_cast<double>(mode_));
  }
}

void NimbusCca::on_ack(const cca::AckEvent& ev) {
  if (ev.rtt_sample > Time::zero()) {
    min_rtt_ = std::min(min_rtt_, ev.rtt_sample);
    srtt_ = srtt_ == Time::zero() ? ev.rtt_sample
                                  : Time::ns(static_cast<std::int64_t>(
                                        0.875 * static_cast<double>(srtt_.count_ns()) +
                                        0.125 * static_cast<double>(ev.rtt_sample.count_ns())));
    // Time-weighted queue-delay EWMA with a multi-pulse-period time constant
    // (per-ack weighting would track the ack rate and follow the pulses).
    const double d = std::max((ev.rtt_sample - min_rtt_).to_sec(), 0.0);
    const double dt = (ev.now - last_delay_update_).to_sec();
    last_delay_update_ = ev.now;
    const double w = 1.0 - std::exp(-dt / cfg_.queue_delay_tau.to_sec());
    queue_delay_ewma_sec_ += w * (d - queue_delay_ewma_sec_);
  }
  account_delivery(ev);
  run_delay_controller(ev.now);
  update_mode(ev.now);
}

void NimbusCca::on_loss(const cca::LossEvent& ev) {
  if (mode_ == Mode::kTcpCompetitive) {
    competitive_rate_bps_ = std::max(competitive_rate_bps_ / 2.0, cfg_.min_rate.to_bps());
  }
  (void)ev;  // delay mode: the controller already responds to queue growth
}

void NimbusCca::on_rto(Time /*now*/) {
  base_rate_ = cfg_.min_rate;
  competitive_rate_bps_ = cfg_.min_rate.to_bps();
}

}  // namespace ccc::nimbus
