// Nimbus: the mode-switching, elasticity-detecting CCA the paper proposes to
// repurpose as an Internet-wide contention measurement probe (§3.2).
//
// Components, as in Goyal et al.:
//   1. A delay-based base controller that keeps the bottleneck just busy
//      (small standing queue) — necessary for the cross-traffic estimator to
//      be valid.
//   2. Sinusoidal rate pulses at fp (mean-neutral) overlaid on the base rate.
//   3. A cross-traffic rate estimator  z = mu * rin/rout - rin  sampled on a
//      fixed grid, fed to the FFT elasticity metric.
//   4. A mode switcher (delay mode <-> TCP-competitive mode). The paper's
//      measurement methodology runs with mode switching DISABLED (the
//      default here), keeping the pulses and reporting elasticity.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "cca/cca.hpp"
#include "nimbus/elasticity.hpp"
#include "sim/scheduler.hpp"

namespace ccc::telemetry {
class Counter;
class Trace;
}  // namespace ccc::telemetry

namespace ccc::nimbus {

struct NimbusConfig {
  double pulse_hz{5.0};
  /// Pulse amplitude as a fraction of the estimated capacity.
  double pulse_amplitude{0.25};
  /// Width of one z(t) sample bin. Deliberately NOT a divisor of the pulse
  /// period: with commensurate sampling (e.g. 10 ms bins, 200 ms period) the
  /// per-bin packet-count rounding repeats exactly once per pulse and forges
  /// a spurious tone at fp; an incommensurate width spreads that rounding
  /// error across the spectrum where it belongs.
  Time sample_bin{Time::us(9700)};
  /// FFT window over which elasticity is computed.
  Time fft_window{Time::sec(5.0)};
  /// Target standing queueing delay for the delay-mode controller.
  Time target_queue_delay{Time::ms(15)};
  /// Proportional gain of the delay controller (per RTT).
  double delay_gain{0.1};
  /// Time constant of the queue-delay estimate. Must average over at least a
  /// couple of pulse periods, or the controller chases (and re-injects) the
  /// pulses themselves.
  Time queue_delay_tau{Time::ms(250)};
  /// If set (> 0), use this as the capacity estimate instead of the
  /// windowed-max receive rate (the emulated-link case where mu is known).
  Rate capacity_hint{Rate::zero()};
  /// Paper §3.2: "use Nimbus but disable mode-switching". Enable only to
  /// study the full CCA.
  bool enable_mode_switching{false};
  ByteCount mss{sim::kMss};
  /// Floor on the probe's base rate. A measurement probe must keep enough
  /// packets flowing to feed its estimator even when elastic cross traffic
  /// squeezes it (delay-mode control yields readily).
  Rate min_rate{Rate::mbps(2.0)};
  Rate initial_rate{Rate::mbps(4.0)};
};

class NimbusCca : public cca::CongestionControl {
 public:
  NimbusCca(const sim::Scheduler& sched, NimbusConfig cfg = {});

  void on_ack(const cca::AckEvent& ev) override;
  void on_loss(const cca::LossEvent& ev) override;
  void on_rto(Time now) override;
  [[nodiscard]] ByteCount cwnd_bytes() const override;
  [[nodiscard]] Rate pacing_rate() const override;
  [[nodiscard]] std::string_view name() const override { return "nimbus"; }

  /// Elasticity over the most recent FFT window; the probe's measurement.
  [[nodiscard]] double elasticity() const;
  /// True if the latest elasticity crosses the Nimbus threshold.
  [[nodiscard]] bool cross_traffic_elastic() const { return elasticity() >= kElasticThreshold; }

  [[nodiscard]] Rate capacity_estimate() const;
  [[nodiscard]] Rate base_rate() const { return base_rate_; }
  [[nodiscard]] Time min_rtt() const { return min_rtt_; }
  /// Smoothed cross-traffic rate estimate (the controller's view of z).
  [[nodiscard]] Rate cross_traffic_estimate() const { return Rate::bps(z_ewma_bps_); }
  /// Smoothed standing queueing delay estimate.
  [[nodiscard]] Time queue_delay_estimate() const { return Time::sec(queue_delay_ewma_sec_); }
  enum class Mode { kDelay, kTcpCompetitive };
  [[nodiscard]] Mode mode() const { return mode_; }

  /// The rate the pulse generator commands at absolute time `now` — exposed
  /// for tests of pulse shape and mean-neutrality.
  [[nodiscard]] Rate pulsed_rate(Time now) const;

  /// Length of the z(t) window elasticity() evaluates, in sample bins — the
  /// window_len a streaming estimator must be built with to agree with the
  /// full-FFT path.
  [[nodiscard]] std::size_t z_window_bins() const { return max_bins_; }

  /// Observation tap: called with every z sample as it enters the series
  /// (after any hold-fill for skipped bins). Pure observation — attaching a
  /// tap never changes the CCA's behavior. Pass nullptr to detach.
  void set_z_tap(std::function<void(double)> tap) { z_tap_ = std::move(tap); }

  /// Opt into a streaming elasticity engine: the estimator is fed every z
  /// sample, and once it reports ready(), elasticity() asks it instead of
  /// running the full-FFT metric. Detached (the default, or est == nullptr),
  /// the full-FFT path runs unchanged. Mode switching is off by default, so
  /// attaching an estimator does not alter the probe's dynamics; with mode
  /// switching enabled the estimator's eta drives the switcher. The pointer
  /// is non-owning and must outlive the CCA or be detached first.
  void attach_elasticity_estimator(ElasticityEstimator* est) { estimator_ = est; }

  /// Registers `<prefix>.mode_transitions` (counter) and `<prefix>.mode`
  /// (timeline, values = Mode enum) in `reg`.
  void bind_metrics(telemetry::MetricRegistry& reg, const std::string& prefix) override;

 private:
  void account_delivery(const cca::AckEvent& ev);
  void finalize_bin(std::int64_t next_bin);
  void push_z(double z_bps, double z_control_bps);
  void run_delay_controller(Time now);
  void update_mode(Time now);

  const sim::Scheduler& sched_;
  NimbusConfig cfg_;

  // Path model.
  Time min_rtt_{Time::never()};
  Time srtt_{Time::zero()};
  double queue_delay_ewma_sec_{0.0};  ///< slow (multi-pulse-period) queue estimate
  Time last_delay_update_{Time::zero()};
  double z_ewma_bps_{0.0};            ///< smoothed cross-traffic estimate
  std::deque<std::pair<Time, Rate>> rout_window_;  ///< (when, rate) for mu estimate

  // Rate control.
  Rate base_rate_;
  Time last_control_{Time::zero()};
  Mode mode_{Mode::kDelay};
  Time last_mode_eval_{Time::zero()};

  // TCP-competitive mode state (AIMD on rate).
  double competitive_rate_bps_{0.0};

  // Telemetry (null unless bind_metrics was called; hot paths gate on that).
  telemetry::Counter* mode_transitions_{nullptr};
  telemetry::Trace* mode_trace_{nullptr};

  // z(t) sampling: deliveries are binned by the *send* time of the acked
  // packets, so rin (bytes/bin-width in send time) and rout (bytes over the
  // matching span of ACK arrivals) describe the SAME packets. This
  // send/receive dilation is what makes the estimator phase-correct: pairing
  // the currently-commanded rate with the currently-delivered rate would lag
  // by a queueing delay and imprint the probe's own pulses onto z.
  std::int64_t cur_bin_{-1};       ///< send-time bin index being accumulated
  ByteCount cur_bin_bytes_{0};
  Time cur_bin_min_rtt_{Time::never()};  ///< drained-bin detector input
  Time cur_bin_last_ack_{Time::zero()};
  Time prev_bin_last_ack_{Time::zero()};
  double last_z_bps_{0.0};         ///< zero-order hold for empty bins
  std::deque<double> z_series_;    ///< one entry per sample bin
  std::size_t max_bins_{0};
  std::function<void(double)> z_tap_;           ///< observation-only z stream
  ElasticityEstimator* estimator_{nullptr};     ///< opt-in streaming engine
  /// Spectrum scratch reused across elasticity windows (elasticity() is
  /// const; the scratch is not observable state).
  mutable SpectrumWorkspace fft_ws_;
};

}  // namespace ccc::nimbus
