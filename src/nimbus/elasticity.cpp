#include "nimbus/elasticity.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

namespace ccc::nimbus {

double elasticity_metric(std::span<const double> z, double sample_hz,
                         const ElasticityConfig& cfg) {
  SpectrumWorkspace ws;
  return elasticity_metric(z, sample_hz, cfg, ws);
}

double elasticity_metric(std::span<const double> z, double sample_hz,
                         const ElasticityConfig& cfg, SpectrumWorkspace& ws) {
  if (z.size() < 16 || sample_hz <= 0.0) return 0.0;

  const Spectrum& spec = magnitude_spectrum(z, sample_hz, ws);
  if (spec.magnitude.size() < 8) return 0.0;

  const std::size_t fp_bin = spec.bin_for(cfg.pulse_hz);
  const std::size_t h2_bin = spec.bin_for(2.0 * cfg.pulse_hz);
  // bin_for clamps above-Nyquist frequencies onto the last bin. For the 2*fp
  // harmonic (sample_hz < 4*pulse_hz) that would alias its exclusion window
  // onto the top of the spectrum and wrongly drop the highest noise bins
  // from the RMS — skip the exclusion entirely when the harmonic is out of
  // range.
  const bool h2_in_range =
      std::llround(2.0 * cfg.pulse_hz / spec.bin_hz) <
      static_cast<long long>(spec.magnitude.size());
  const std::size_t floor_bin = std::max<std::size_t>(spec.bin_for(cfg.noise_floor_hz), 1);
  const auto hw = static_cast<std::size_t>(cfg.signal_halfwidth_bins);

  auto near = [&](std::size_t i, std::size_t center) {
    return i + hw >= center && i <= center + hw;
  };

  // Signal: peak magnitude in the leakage window around fp.
  double signal = 0.0;
  for (std::size_t i = fp_bin > hw ? fp_bin - hw : 0;
       i <= fp_bin + hw && i < spec.magnitude.size(); ++i) {
    signal = std::max(signal, spec.magnitude[i]);
  }

  // Noise: RMS of all bins above the drift floor, excluding the fp and 2*fp
  // leakage windows.
  double sum_sq = 0.0;
  std::size_t n = 0;
  for (std::size_t i = floor_bin; i < spec.magnitude.size(); ++i) {
    if (near(i, fp_bin) || (h2_in_range && near(i, h2_bin))) continue;
    sum_sq += spec.magnitude[i] * spec.magnitude[i];
    ++n;
  }
  if (n == 0) return 0.0;
  const double noise_rms = std::sqrt(sum_sq / static_cast<double>(n));
  double eta;
  if (noise_rms <= 1e-12) {
    // A perfectly flat z (e.g. pure CBR cross traffic with an exact capacity
    // estimate) has no noise and no signal: report inelastic.
    eta = signal <= 1e-12 ? 0.0 : kElasticThreshold * 10.0;
  } else {
    eta = signal / noise_rms;
  }

  if (cfg.reference_amplitude > 0.0) {
    // Hann-windowed pure tone of amplitude a over n samples peaks at ~a*n/4;
    // scale eta down when the measured peak is a small fraction of the
    // reference response.
    const double full_response =
        cfg.reference_amplitude * static_cast<double>(z.size()) / 4.0;
    const double significance =
        std::min(1.0, signal / (cfg.min_signal_fraction * full_response));
    eta *= significance;
  }
  return eta;
}

}  // namespace ccc::nimbus
