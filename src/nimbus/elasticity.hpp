// The elasticity metric (Nimbus, SIGCOMM '22 — paper §3.2).
//
// A probe flow modulates its sending rate with sinusoidal pulses at a known
// frequency fp. If cross traffic on the bottleneck is *elastic* (its CCAs
// react to short-term changes in available bandwidth — i.e. it CONTENDS),
// the estimated cross-traffic rate z(t) picks up energy at fp. If the cross
// traffic is inelastic (CBR, chunked video, short flows), z(t) has no
// preferential energy at fp. The metric is therefore a frequency-domain
// signal-to-noise ratio at the pulse frequency.
#pragma once

#include <span>

#include "util/fft.hpp"

namespace ccc::nimbus {

struct ElasticityConfig {
  double pulse_hz{5.0};
  /// Bins on each side of fp (and its 2nd harmonic) treated as signal —
  /// accounts for Hann-window leakage.
  int signal_halfwidth_bins{2};
  /// Noise band lower edge: ignore slow drift below this frequency.
  double noise_floor_hz{1.0};
  /// Optional absolute significance floor. When > 0, the peak at fp must
  /// amount to at least min_signal_fraction of the response a fully-elastic
  /// cross flow would produce (a tone of this amplitude, in z's units);
  /// weaker peaks — e.g. residual estimator quantization on an otherwise
  /// silent path — attenuate the reported elasticity proportionally.
  double reference_amplitude{0.0};
  double min_signal_fraction{0.1};
};

/// Computes the elasticity of a cross-traffic-rate series `z` sampled at
/// `sample_hz`. Returns a dimensionless SNR: ~0-1.5 for inelastic cross
/// traffic, >> 2 when the cross traffic chases the pulses.
/// Returns 0 for degenerate inputs (too short, or an all-constant series).
[[nodiscard]] double elasticity_metric(std::span<const double> z, double sample_hz,
                                       const ElasticityConfig& cfg = {});

/// Workspace variant: identical value, but the spectrum scratch (windowed
/// copy, FFT buffer, Hann table) comes from `ws` — zero heap allocation per
/// window once warmed up. The elasticity study and NimbusCca call this once
/// per FFT window for an entire run.
[[nodiscard]] double elasticity_metric(std::span<const double> z, double sample_hz,
                                       const ElasticityConfig& cfg, SpectrumWorkspace& ws);

/// Classification threshold used by Nimbus's mode switcher; we expose it so
/// benches and the detector agree on one constant.
inline constexpr double kElasticThreshold = 2.0;

/// Streaming replacement engine for `elasticity_metric`: an implementation
/// consumes every z sample as it is produced and answers eta on demand
/// without recomputing the whole window. NimbusCca can have one attached
/// (attach_elasticity_estimator); the elastic service's IncrementalDetector
/// implements it. The reference amplitude is supplied at evaluation time
/// because it tracks the (moving) capacity estimate, not the window.
class ElasticityEstimator {
 public:
  virtual ~ElasticityEstimator() = default;
  /// Feed one z sample (bits/sec, the same series elasticity_metric sees).
  virtual void push(double z) = 0;
  /// True once a full window of samples has been absorbed.
  [[nodiscard]] virtual bool ready() const = 0;
  /// The elasticity metric over the current window.
  [[nodiscard]] virtual double eta(double reference_amplitude) const = 0;
};

}  // namespace ccc::nimbus
