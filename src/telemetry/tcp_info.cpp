#include "telemetry/tcp_info.hpp"

namespace ccc::telemetry {

FlowMonitor::FlowMonitor(sim::Scheduler& sched, const flow::TcpSender& sender, Time start,
                         Time stop, Time snapshot_interval, Time poll_interval)
    : sender_{sender},
      poll_interval_{poll_interval},
      poller_{sched, poll_interval, start, stop, [this](Time now) { poll(now); }},
      snapshotter_{sched, snapshot_interval, start + snapshot_interval, stop,
                   [this](Time now) { snapshot(now); }} {}

void FlowMonitor::poll(Time now) {
  (void)now;
  // Integrate the sender's current blocking reason over the poll interval —
  // the same integral the kernel keeps for tcpi_busy_time & friends.
  const double dt = poll_interval_.to_sec();
  switch (sender_.current_limit()) {
    case flow::SendLimit::kApp:
      app_limited_sec_ += dt;
      break;
    case flow::SendLimit::kRwnd:
      rwnd_limited_sec_ += dt;
      break;
    case flow::SendLimit::kCca:
      cca_limited_sec_ += dt;
      break;
    case flow::SendLimit::kNone:
    case flow::SendLimit::kDone:
      break;
  }
}

void FlowMonitor::snapshot(Time now) {
  TcpInfoSnapshot s;
  s.t_sec = now.to_sec();
  s.bytes_acked = sender_.delivered_bytes();
  const double dt = s.t_sec - last_snapshot_t_;
  if (dt > 0.0) {
    s.throughput_mbps =
        static_cast<double>(s.bytes_acked - last_snapshot_bytes_) * 8.0 / dt / 1e6;
  }
  s.srtt_ms = sender_.srtt().to_ms();
  s.min_rtt_ms = sender_.min_rtt() == Time::never() ? 0.0 : sender_.min_rtt().to_ms();
  s.cwnd_bytes = sender_.cc().cwnd_bytes();
  s.app_limited_sec = app_limited_sec_;
  s.rwnd_limited_sec = rwnd_limited_sec_;
  s.cca_limited_sec = cca_limited_sec_;
  s.retransmissions = sender_.stats().retransmissions;
  last_snapshot_bytes_ = s.bytes_acked;
  last_snapshot_t_ = s.t_sec;
  snapshots_.push_back(s);
}

std::vector<double> FlowMonitor::throughput_series_mbps() const {
  std::vector<double> out;
  out.reserve(snapshots_.size());
  for (const auto& s : snapshots_) out.push_back(s.throughput_mbps);
  return out;
}

}  // namespace ccc::telemetry
