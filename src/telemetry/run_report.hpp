// RunReport: the machine-readable artifact every bench emits alongside its
// human-readable figure output.
//
// A report is an ordered list of ReportRows plus (bench, seed) metadata.
// Rows are appended in a deterministic order — scopes in task order,
// metrics within a scope in registry (name) order — so serializing the same
// run twice, at any `--jobs` count, yields byte-identical output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/sink.hpp"
#include "util/units.hpp"

namespace ccc::telemetry {

class RunReport {
 public:
  RunReport() = default;
  explicit RunReport(std::string bench_name, std::uint64_t seed = 0)
      : bench_{std::move(bench_name)}, seed_{seed} {}

  [[nodiscard]] const std::string& bench() const { return bench_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  void set_bench(std::string bench_name, std::uint64_t seed) {
    bench_ = std::move(bench_name);
    seed_ = seed;
  }

  /// Adds one headline value (a table cell a bench would print).
  void add_scalar(const std::string& scope, const std::string& name, double value,
                  Time at = Time::zero());

  /// Flattens a registry into rows: counters and gauges one row each,
  /// histograms as per-bucket rows plus _count/_sum, traces one row per
  /// point (at the point's own sim time). `at` stamps the non-trace rows.
  void add_registry(const std::string& scope, const MetricRegistry& reg, Time at);

  /// Appends another report's rows verbatim (fan-out merge, in task order).
  void append(const RunReport& fragment);

  [[nodiscard]] const std::vector<ReportRow>& rows() const { return rows_; }

  /// Streams meta + all rows into a sink.
  void write(Sink& sink) const;

  /// Serializes through a JsonlSink into a string (tests; byte-compare).
  [[nodiscard]] std::string to_jsonl() const;

  /// Emits through a sink chosen by `path`: "" -> NullSink (the report code
  /// path always runs), "*.csv" -> CsvSink, anything else -> JsonlSink.
  /// Returns false if the file could not be opened.
  ///
  /// Every emitted report ends with one extra machine-environment row,
  /// scope "process" / name "peak_rss_bytes" (getrusage MAXRSS), so memory
  /// ceilings show up in the same artifact as the numbers they explain. The
  /// row is streamed at emit time only — rows() and to_jsonl() never see it,
  /// keeping the determinism pins (which byte-compare those) intact; report
  /// consumers that diff runs should filter scope "process".
  bool emit(const std::string& path) const;

 private:
  std::string bench_;
  std::uint64_t seed_{0};
  std::vector<ReportRow> rows_;
};

}  // namespace ccc::telemetry
