#include "telemetry/sink.hpp"

#include <cstdio>

namespace ccc::telemetry {

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

namespace {

/// Escapes the few JSON-special characters that can appear in metric or
/// scope names (quotes and backslashes; names never contain control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void JsonlSink::meta(const std::string& bench, std::uint64_t seed) {
  os_ << "{\"schema\":\"ccc.report.v1\",\"bench\":\"" << json_escape(bench)
      << "\",\"seed\":" << seed << "}\n";
}

void JsonlSink::row(const ReportRow& r) {
  os_ << "{\"scope\":\"" << json_escape(r.scope) << "\",\"name\":\"" << json_escape(r.name)
      << "\",\"kind\":\"" << r.kind << "\",\"t\":" << format_value(r.t_sec)
      << ",\"value\":" << format_value(r.value) << "}\n";
}

void CsvSink::meta(const std::string& bench, std::uint64_t seed) {
  os_ << "# bench=" << bench << " seed=" << seed << " schema=ccc.report.v1\n"
      << "scope,name,kind,t_sec,value\n";
}

void CsvSink::row(const ReportRow& r) {
  os_ << r.scope << ',' << r.name << ',' << r.kind << ',' << format_value(r.t_sec) << ','
      << format_value(r.value) << '\n';
}

}  // namespace ccc::telemetry
