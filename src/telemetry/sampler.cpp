#include "telemetry/sampler.hpp"

#include <cassert>

namespace ccc::telemetry {

PeriodicSampler::PeriodicSampler(sim::Scheduler& sched, Time interval, Time start, Time stop,
                                 std::function<void(Time)> fn)
    : sched_{sched}, interval_{interval}, stop_{stop}, fn_{std::move(fn)} {
  assert(interval_ > Time::zero());
  assert(fn_ != nullptr);
  sched_.schedule_member_fire_at<&PeriodicSampler::tick>(start, this);
}

void PeriodicSampler::tick() {
  const Time now = sched_.now();
  if (now >= stop_) return;
  fn_(now);
  sched_.schedule_member_fire_after<&PeriodicSampler::tick>(interval_, this);
}

double TimeSeries::mean_in(double from_sec, double to_sec) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < t_sec.size(); ++i) {
    if (t_sec[i] >= from_sec && t_sec[i] < to_sec) {
      sum += value[i];
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::vector<double> TimeSeries::slice(double from_sec, double to_sec) const {
  std::vector<double> out;
  for (std::size_t i = 0; i < t_sec.size(); ++i) {
    if (t_sec[i] >= from_sec && t_sec[i] < to_sec) out.push_back(value[i]);
  }
  return out;
}

}  // namespace ccc::telemetry
