// TCPInfo-style flow instrumentation.
//
// M-Lab's NDT archives per-flow TCPInfo snapshots; the paper's passive
// analysis (§3.1) keys on AppLimited / RWndLimited time and throughput
// evolution. FlowMonitor produces exactly those measurements for simulated
// flows, letting integration tests validate the passive pipeline against
// ground truth the real M-Lab data lacks.
#pragma once

#include <memory>
#include <vector>

#include "flow/tcp_sender.hpp"
#include "telemetry/sampler.hpp"

namespace ccc::telemetry {

/// One snapshot, mirroring the NDT TCPInfo fields the paper's analysis uses.
struct TcpInfoSnapshot {
  double t_sec{0.0};
  ByteCount bytes_acked{0};
  double throughput_mbps{0.0};  ///< over the interval since last snapshot
  double srtt_ms{0.0};
  double min_rtt_ms{0.0};
  ByteCount cwnd_bytes{0};
  double app_limited_sec{0.0};   ///< cumulative (the NDT AppLimited field)
  double rwnd_limited_sec{0.0};  ///< cumulative (the NDT RWndLimited field)
  double cca_limited_sec{0.0};   ///< cumulative time the cwnd was binding
  std::uint64_t retransmissions{0};
};

/// Attaches to one sender: polls at a fine interval to integrate limit
/// durations, and records a snapshot every `snapshot_interval`.
class FlowMonitor {
 public:
  FlowMonitor(sim::Scheduler& sched, const flow::TcpSender& sender, Time start, Time stop,
              Time snapshot_interval = Time::ms(100), Time poll_interval = Time::ms(5));

  FlowMonitor(const FlowMonitor&) = delete;
  FlowMonitor& operator=(const FlowMonitor&) = delete;

  [[nodiscard]] const std::vector<TcpInfoSnapshot>& snapshots() const { return snapshots_; }
  /// Throughput series (Mbps per snapshot interval) — the input the
  /// change-point stage of the passive pipeline expects.
  [[nodiscard]] std::vector<double> throughput_series_mbps() const;

  [[nodiscard]] double app_limited_sec() const { return app_limited_sec_; }
  [[nodiscard]] double rwnd_limited_sec() const { return rwnd_limited_sec_; }
  [[nodiscard]] double cca_limited_sec() const { return cca_limited_sec_; }

 private:
  void poll(Time now);
  void snapshot(Time now);

  const flow::TcpSender& sender_;
  Time poll_interval_;

  double app_limited_sec_{0.0};
  double rwnd_limited_sec_{0.0};
  double cca_limited_sec_{0.0};
  ByteCount last_snapshot_bytes_{0};
  double last_snapshot_t_{0.0};
  std::vector<TcpInfoSnapshot> snapshots_;

  PeriodicSampler poller_;
  PeriodicSampler snapshotter_;
};

}  // namespace ccc::telemetry
