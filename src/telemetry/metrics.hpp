// MetricRegistry: the run-wide observability core (counters, gauges,
// fixed-bucket histograms, and sim-time traces).
//
// Design rules, in service of the paper's measurement methodology (§3):
//   - Registries are PER SCENARIO. An ExperimentRunner fan-out gives every
//     task its own registry, so instrumentation needs no locking and results
//     are bit-identical for any `--jobs` count.
//   - Every exported value is keyed by *simulated* time, never wall time, so
//     reports are deterministic across machines and job counts.
//   - Hot paths pay a single pointer-null check when telemetry is disabled:
//     components hold raw instrument pointers that stay nullptr until a
//     registry is bound, and increments are plain uint64_t adds.
//
// Header-only on purpose: sim/, queue/, flow/, and cca/ include this without
// taking a link dependency on ccc_telemetry (which itself links ccc_flow).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace ccc::telemetry {

/// Monotone event count. `set()` exists for snapshot-style export, where a
/// component mirrors an internally maintained uint64_t (e.g. QdiscStats)
/// into the registry at collection time instead of paying per-event cost.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  void set(std::uint64_t v) { v_ = v; }
  [[nodiscard]] std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_{0};
};

/// Point-in-time value (utilization, backlog, srtt, ...).
class Gauge {
 public:
  void set(double v) { v_ = v; }
  [[nodiscard]] double value() const { return v_; }

 private:
  double v_{0.0};
};

/// Fixed-bucket histogram: counts per upper bound plus an overflow bucket.
/// Bounds are fixed at registration so two runs always bucket identically.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds) : bounds_{std::move(upper_bounds)} {
    std::sort(bounds_.begin(), bounds_.end());
    counts_.assign(bounds_.size() + 1, 0);  // +1: overflow
  }

  void observe(double v) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    ++count_;
    sum_ += v;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// counts()[i] observes <= bounds()[i]; counts().back() is the overflow.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Linear-interpolated quantile estimate from the bucket counts (the
  /// overflow bucket is attributed to the largest bound).
  [[nodiscard]] double quantile(double q) const {
    if (count_ == 0) return 0.0;
    const double target = q * static_cast<double>(count_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      cum += counts_[i];
      if (static_cast<double>(cum) >= target) {
        return i < bounds_.size() ? bounds_[i] : bounds_.back();
      }
    }
    return bounds_.empty() ? 0.0 : bounds_.back();
  }

  /// Folds another histogram's observations into this one. The bounds must
  /// be identical — per-shard instruments are registered with the same
  /// fixed bounds precisely so shard merges are exact (no re-bucketing).
  /// Returns false (and merges nothing) on a bounds mismatch.
  bool merge(const Histogram& other) {
    if (other.bounds_ != bounds_) return false;
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    return true;
  }

  /// Rebuilds a histogram from its exported parts — the accessors' inverse,
  /// for results that crossed a process boundary (runner::fork_map). The
  /// counts vector must be bounds.size()+1 long (overflow included); a
  /// wrong length is normalized to empty counts rather than trusted.
  [[nodiscard]] static Histogram from_parts(std::vector<double> bounds,
                                            std::vector<std::uint64_t> counts,
                                            std::uint64_t count, double sum) {
    Histogram h{std::move(bounds)};
    if (counts.size() == h.counts_.size()) h.counts_ = std::move(counts);
    h.count_ = count;
    h.sum_ = sum;
    return h;
  }

  /// Geometric bucket bounds: n bounds starting at `first`, each `factor`
  /// apart. The standard latency-histogram shape.
  [[nodiscard]] static std::vector<double> geometric_bounds(double first, double factor, int n) {
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(n));
    double b = first;
    for (int i = 0; i < n; ++i) {
      out.push_back(b);
      b *= factor;
    }
    return out;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_{0};
  double sum_{0.0};
};

/// A sim-time-stamped series of samples (cwnd trace, mode timeline, ...).
/// `min_interval` downsamples at the source so per-ACK recording stays
/// bounded; sampling is sim-clock driven, hence deterministic.
class Trace {
 public:
  explicit Trace(Time min_interval = Time::zero()) : interval_{min_interval} {}

  void record(Time t, double v) {
    if (!points_.empty() && t < next_due_) return;
    next_due_ = t + interval_;
    points_.emplace_back(t.to_sec(), v);
  }

  [[nodiscard]] const std::vector<std::pair<double, double>>& points() const { return points_; }

 private:
  Time interval_;
  Time next_due_{Time::zero()};
  std::vector<std::pair<double, double>> points_;
};

/// Owns all instruments for one scenario/run. Lookup happens at bind time
/// (never on hot paths); iteration order is the metric-name order, which is
/// what makes report output deterministic.
class MetricRegistry {
 public:
  /// When disabled (the default construction state is enabled; scenarios
  /// decide), components should skip binding so their instrument pointers
  /// stay null and hot paths pay only the null check.
  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram{std::move(upper_bounds)}).first;
    }
    return it->second;
  }
  Trace& trace(const std::string& name, Time min_interval = Time::zero()) {
    auto it = traces_.find(name);
    if (it == traces_.end()) it = traces_.emplace(name, Trace{min_interval}).first;
    return it->second;
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const { return histograms_; }
  [[nodiscard]] const std::map<std::string, Trace>& traces() const { return traces_; }

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size() + traces_.size();
  }

  /// Folds another registry into this one — the fan-out reduction for
  /// per-shard registries (pipeline shards, parallel sweeps). Merging in
  /// shard order yields the same totals at any `--jobs` count. Semantics:
  /// counters sum; gauges take the incoming value (last shard wins — use
  /// counters for anything that must aggregate); histograms merge when the
  /// bounds match and are adopted wholesale when this registry lacks the
  /// name. Traces are NOT merged: per-shard time axes are unrelated, so
  /// concatenation would fabricate a timeline.
  void merge_from(const MetricRegistry& other) {
    for (const auto& [name, c] : other.counters()) counters_[name].inc(c.value());
    for (const auto& [name, g] : other.gauges()) gauges_[name].set(g.value());
    for (const auto& [name, h] : other.histograms()) {
      const auto it = histograms_.find(name);
      if (it == histograms_.end()) {
        histograms_.emplace(name, h);
      } else {
        it->second.merge(h);
      }
    }
  }

 private:
  bool enabled_{true};
  // std::map: node stability (components hold references) + sorted export.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, Trace> traces_;
};

}  // namespace ccc::telemetry
