#include "telemetry/run_report.hpp"

#include <sys/resource.h>

#include <fstream>
#include <sstream>

namespace ccc::telemetry {

namespace {
/// Peak resident set of this process, in bytes (Linux reports ru_maxrss in
/// KiB). 0.0 when the kernel refuses — the row is advisory, never fatal.
double peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_maxrss) * 1024.0;
}
}  // namespace

void RunReport::add_scalar(const std::string& scope, const std::string& name, double value,
                           Time at) {
  rows_.push_back({scope, name, "scalar", at.to_sec(), value});
}

void RunReport::add_registry(const std::string& scope, const MetricRegistry& reg, Time at) {
  const double t = at.to_sec();
  for (const auto& [name, c] : reg.counters()) {
    rows_.push_back({scope, name, "counter", t, static_cast<double>(c.value())});
  }
  for (const auto& [name, g] : reg.gauges()) {
    rows_.push_back({scope, name, "gauge", t, g.value()});
  }
  for (const auto& [name, h] : reg.histograms()) {
    const auto& bounds = h.bounds();
    const auto& counts = h.counts();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      rows_.push_back({scope, name + ".le_" + format_value(bounds[i]), "hist_bucket", t,
                       static_cast<double>(counts[i])});
    }
    rows_.push_back({scope, name + ".overflow", "hist_bucket", t,
                     static_cast<double>(counts.back())});
    rows_.push_back({scope, name + ".count", "hist_count", t, static_cast<double>(h.count())});
    rows_.push_back({scope, name + ".sum", "hist_sum", t, h.sum()});
  }
  for (const auto& [name, tr] : reg.traces()) {
    for (const auto& [pt_t, pt_v] : tr.points()) {
      rows_.push_back({scope, name, "trace", pt_t, pt_v});
    }
  }
}

void RunReport::append(const RunReport& fragment) {
  rows_.insert(rows_.end(), fragment.rows_.begin(), fragment.rows_.end());
}

void RunReport::write(Sink& sink) const {
  sink.meta(bench_, seed_);
  for (const auto& r : rows_) sink.row(r);
}

std::string RunReport::to_jsonl() const {
  std::ostringstream os;
  JsonlSink sink{os};
  write(sink);
  return os.str();
}

bool RunReport::emit(const std::string& path) const {
  // The peak-RSS row is streamed here, not stored in rows_: emit() is the
  // only per-run surface, while rows()/to_jsonl() feed byte-identity pins
  // that must not see a machine-dependent value.
  const ReportRow rss_row{"process", "peak_rss_bytes", "scalar", 0.0, peak_rss_bytes()};
  if (path.empty()) {
    NullSink sink;
    write(sink);
    sink.row(rss_row);
    return true;
  }
  std::ofstream os{path};
  if (!os) return false;
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    CsvSink sink{os};
    write(sink);
    sink.row(rss_row);
  } else {
    JsonlSink sink{os};
    write(sink);
    sink.row(rss_row);
  }
  return os.good();
}

}  // namespace ccc::telemetry
