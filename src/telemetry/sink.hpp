// Pluggable report sinks: where RunReport rows go.
//
// A sink consumes a flat stream of (scope, name, kind, t, value) rows. All
// formatting is locale-independent and value-deterministic, so two runs that
// produce the same rows produce byte-identical files — the property the
// `--jobs 1` vs `--jobs 8` acceptance test pins down.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace ccc::telemetry {

/// One exported observation. `t_sec` is SIMULATED time (see metrics.hpp);
/// `kind` is one of: counter, gauge, hist_bucket, hist_count, hist_sum,
/// trace, scalar.
struct ReportRow {
  std::string scope;  ///< which sub-run (phase, sweep cell); "" for run-wide
  std::string name;   ///< metric name, e.g. "qdisc.dropped_packets"
  std::string kind;
  double t_sec{0.0};
  double value{0.0};
};

/// Formats a double with up to 12 significant digits, no locale, no
/// trailing-zero noise ("48" not "48.000000"). Shared by all sinks.
[[nodiscard]] std::string format_value(double v);

class Sink {
 public:
  virtual ~Sink() = default;

  /// Report header: called once, before any row.
  virtual void meta(const std::string& bench, std::uint64_t seed) = 0;
  virtual void row(const ReportRow& r) = 0;
};

/// One JSON object per line; the schema documented in DESIGN.md.
class JsonlSink final : public Sink {
 public:
  explicit JsonlSink(std::ostream& os) : os_{os} {}
  void meta(const std::string& bench, std::uint64_t seed) override;
  void row(const ReportRow& r) override;

 private:
  std::ostream& os_;
};

/// Header + one row per line: scope,name,kind,t_sec,value.
class CsvSink final : public Sink {
 public:
  explicit CsvSink(std::ostream& os) : os_{os} {}
  void meta(const std::string& bench, std::uint64_t seed) override;
  void row(const ReportRow& r) override;

 private:
  std::ostream& os_;
};

/// Swallows everything. The default sink, so the report path is always
/// exercised even when no `--report` file was requested.
class NullSink final : public Sink {
 public:
  void meta(const std::string&, std::uint64_t) override {}
  void row(const ReportRow&) override {}
};

}  // namespace ccc::telemetry
