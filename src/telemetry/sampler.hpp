// Periodic sampling utilities: the simulator-side analogue of reading
// TCP_INFO / tracing a qdisc at fixed intervals.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/units.hpp"

namespace ccc::telemetry {

/// Invokes a callback every `interval` from `start` until `stop` (inclusive
/// of start, exclusive of stop). Keep it alive for as long as sampling
/// should continue; it owns no other resources.
class PeriodicSampler {
 public:
  PeriodicSampler(sim::Scheduler& sched, Time interval, Time start, Time stop,
                  std::function<void(Time)> fn);

  PeriodicSampler(const PeriodicSampler&) = delete;
  PeriodicSampler& operator=(const PeriodicSampler&) = delete;

 private:
  void tick();

  sim::Scheduler& sched_;
  Time interval_;
  Time stop_;
  std::function<void(Time)> fn_;
};

/// A named (time, value) series accumulated during a run; the unit of data
/// the benches print and the change-point detectors consume.
struct TimeSeries {
  std::string name;
  std::vector<double> t_sec;
  std::vector<double> value;

  void add(Time t, double v) {
    t_sec.push_back(t.to_sec());
    value.push_back(v);
  }
  [[nodiscard]] std::size_t size() const { return value.size(); }

  /// Mean of values with t in [from, to).
  [[nodiscard]] double mean_in(double from_sec, double to_sec) const;
  /// Values with t in [from, to).
  [[nodiscard]] std::vector<double> slice(double from_sec, double to_sec) const;
};

}  // namespace ccc::telemetry
