#include "analysis/tslp.hpp"

#include <algorithm>

namespace ccc::analysis {

TslpProber::TslpProber(sim::Scheduler& sched, TslpConfig cfg, sim::PacketSink& out,
                       sim::FlowDemux& demux)
    : sched_{sched}, cfg_{cfg}, out_{out} {
  demux.register_flow(cfg_.flow_id, *this);
  sched_.schedule_member_fire_at<&TslpProber::emit>(cfg_.start, this);
}

void TslpProber::emit() {
  const Time now = sched_.now();
  if (now >= cfg_.stop) return;
  sim::Packet probe;
  probe.flow = cfg_.flow_id;
  probe.size_bytes = cfg_.probe_bytes;
  probe.payload_bytes = cfg_.probe_bytes - sim::kHeaderBytes;
  probe.sent_at = now;
  ++sent_;
  out_.deliver(probe);
  sched_.schedule_member_fire_after<&TslpProber::emit>(cfg_.interval, this);
}

void TslpProber::deliver(const sim::Packet& pkt) {
  samples_.emplace_back(sched_.now(), sched_.now() - pkt.sent_at);
}

telemetry::TimeSeries TslpProber::queueing_delay_ms() const {
  telemetry::TimeSeries ts;
  ts.name = "tslp_queueing_delay_ms";
  if (samples_.empty()) return ts;
  Time base = Time::never();
  for (const auto& [when, owd] : samples_) base = std::min(base, owd);
  for (const auto& [when, owd] : samples_) ts.add(when, (owd - base).to_ms());
  return ts;
}

double TslpProber::congested_fraction(Time threshold) const {
  if (samples_.empty()) return 0.0;
  Time base = Time::never();
  for (const auto& [when, owd] : samples_) base = std::min(base, owd);
  std::size_t over = 0;
  for (const auto& [when, owd] : samples_) {
    if (owd - base > threshold) ++over;
  }
  return static_cast<double>(over) / static_cast<double>(samples_.size());
}

}  // namespace ccc::analysis
