// The paper's §3.1 passive-measurement pipeline, as an executable artifact.
//
// Input: NDT flow records. Steps (exactly the paper's):
//   1. drop flows with AppLimited  > threshold  (cannot contend),
//   2. drop flows with RWndLimited > threshold  (cannot contend),
//   3. drop flows from cellular clients         (isolated by the RAN),
//   4. drop flows too short to exhibit dynamics,
//   5. run offline change-point detection on each survivor's throughput
//      series; a large, persistent level shift marks the flow
//      "contention-suspect".
//
// Because our synthetic dataset carries ground truth, the report also scores
// the pipeline — quantifying the paper's own caveat that passive analysis
// "cannot conclusively determine the presence (or absence) of CCA
// contention" (policing and ABR rate steps alias as contention).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "mlab/ndt_record.hpp"

namespace ccc::analysis {

enum class Verdict : std::uint8_t {
  kFilteredAppLimited,
  kFilteredRwndLimited,
  kFilteredCellular,
  kFilteredShort,
  kNoLevelShift,        ///< survived filters; throughput stable
  kContentionSuspect,   ///< survived filters; persistent level shift found
};

[[nodiscard]] std::string_view to_string(Verdict v);

struct PassiveConfig {
  /// A flow counts as app-/rwnd-limited when the cumulative limited time
  /// exceeds this many seconds (the paper used "field > 0").
  double app_limited_threshold_sec{0.0};
  double rwnd_limited_threshold_sec{0.0};
  bool exclude_cellular{true};
  /// Flows shorter than this can't show multi-second dynamics.
  double min_duration_sec{2.0};
  /// A level shift counts if adjacent segment means differ by at least this
  /// fraction of the larger mean...
  double min_shift_fraction{0.25};
  /// ...and both segments persist at least this long.
  double min_segment_sec{1.0};
  /// PELT penalty scale (see detect_mean_shifts()).
  double sensitivity{1.0};
};

struct FlowFinding {
  std::uint64_t id{0};
  Verdict verdict{Verdict::kNoLevelShift};
  std::vector<double> shift_times_sec;       ///< accepted change points
  std::vector<double> shift_magnitudes;      ///< |mean_after/mean_before - 1|
  mlab::FlowArchetype truth{};               ///< copied from the record
};

struct StudyReport {
  std::vector<FlowFinding> findings;
  std::map<Verdict, std::size_t> verdict_counts;

  // Scoring of the final "contention-suspect" verdict against ground truth.
  std::size_t true_positives{0};   ///< suspect & truly contended
  std::size_t false_positives{0};  ///< suspect & not contended
  std::size_t false_negatives{0};  ///< truly contended but not flagged
  std::size_t true_negatives{0};

  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
  /// Fraction of all flows the filters removed before change-point search.
  [[nodiscard]] double filtered_fraction() const;
  [[nodiscard]] std::size_t total() const { return findings.size(); }
};

/// Classifies a single record (the per-flow unit of the pipeline).
[[nodiscard]] FlowFinding classify_flow(const mlab::NdtRecord& rec, const PassiveConfig& cfg);

/// Runs the full study over a dataset.
[[nodiscard]] StudyReport run_passive_study(std::span<const mlab::NdtRecord> dataset,
                                            const PassiveConfig& cfg = {});

}  // namespace ccc::analysis
