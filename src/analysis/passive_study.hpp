// The paper's §3.1 passive-measurement pipeline, as an executable artifact.
//
// Input: NDT flow records. Steps (exactly the paper's):
//   1. drop flows with AppLimited  > threshold  (cannot contend),
//   2. drop flows with RWndLimited > threshold  (cannot contend),
//   3. drop flows from cellular clients         (isolated by the RAN),
//   4. drop flows too short to exhibit dynamics,
//   5. run offline change-point detection on each survivor's throughput
//      series; a large, persistent level shift marks the flow
//      "contention-suspect".
//
// Because our synthetic dataset carries ground truth, the report also scores
// the pipeline — quantifying the paper's own caveat that passive analysis
// "cannot conclusively determine the presence (or absence) of CCA
// contention" (policing and ABR rate steps alias as contention).
//
// This header is now a thin compatibility facade: the per-flow decision
// tree and change-point stages live in src/pipeline/ (which also shards
// them over a thread pool for the millions-of-flows path; see
// pipeline::run_pipeline). run_passive_study() here is a serial, in-memory,
// findings-preserving client of the stage API (pipeline/stage.hpp) — the
// same AnalyzeStage the sharded pipeline and the ingest daemon drive — so
// its results, and the seed fig2 output, are unchanged. The duplicated
// direct-call loop this file once carried is gone; deprecation notes live
// in DESIGN.md ("Streaming ingest").
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "mlab/ndt_record.hpp"
#include "pipeline/classify.hpp"

namespace ccc::analysis {

// Re-exports: the pipeline owns the §3.1 taxonomy and per-flow logic now.
using Verdict = pipeline::Verdict;
using PassiveConfig = pipeline::ClassifyConfig;
using FlowFinding = pipeline::FlowFinding;
using pipeline::classify_flow;
using pipeline::to_string;

struct StudyReport {
  std::vector<FlowFinding> findings;
  std::map<Verdict, std::size_t> verdict_counts;

  // Scoring of the final "contention-suspect" verdict against ground truth.
  std::size_t true_positives{0};   ///< suspect & truly contended
  std::size_t false_positives{0};  ///< suspect & not contended
  std::size_t false_negatives{0};  ///< truly contended but not flagged
  std::size_t true_negatives{0};

  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
  /// Fraction of all flows the filters removed before change-point search.
  [[nodiscard]] double filtered_fraction() const;
  [[nodiscard]] std::size_t total() const { return findings.size(); }
};

/// Runs the full study over a dataset (serial, in-memory, per-flow findings
/// kept — the paper-scale path; use pipeline::run_pipeline directly for
/// sharded at-scale runs).
[[nodiscard]] StudyReport run_passive_study(std::span<const mlab::NdtRecord> dataset,
                                            const PassiveConfig& cfg = {});

}  // namespace ccc::analysis
