// Bridge from live simulated flows to NDT records.
//
// The synthetic dataset generator (src/mlab) fabricates records
// statistically; this bridge instead builds a record from an actual
// simulated flow's TCPInfo telemetry — the validation path that closes the
// loop: simulate a known condition (contention, policing, app limits), emit
// the record M-Lab would have stored, and check what the passive pipeline
// concludes about it.
#pragma once

#include "mlab/ndt_record.hpp"
#include "telemetry/tcp_info.hpp"

namespace ccc::analysis {

/// Builds an NDT record from a monitored flow. `truth` is attached for
/// scoring; `access` defaults to a wired client.
[[nodiscard]] mlab::NdtRecord make_ndt_record(const telemetry::FlowMonitor& monitor,
                                              std::uint64_t id, mlab::FlowArchetype truth,
                                              mlab::AccessType access = mlab::AccessType::kCable);

}  // namespace ccc::analysis
