// Time-Series Latency Probes (TSLP), after Dhamdhere et al. (paper §4).
//
// TSLP sends tiny TTL-limited probes at a fixed cadence and watches the
// queueing-delay differential across a link; sustained elevated delay marks
// the link "congested". The paper's §4 point — which bench/fig10 reproduces —
// is that TSLP detects *queueing* but cannot discriminate between two
// long-running flows contending (CCA dynamics at work) and an aggregate of
// short/app-limited flows overwhelming the link (no CCA interaction at all).
// Only the active elasticity probe (§3.2) separates those cases.
#pragma once

#include <vector>

#include "sim/demux.hpp"
#include "sim/packet.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/sampler.hpp"
#include "util/units.hpp"

namespace ccc::analysis {

struct TslpConfig {
  sim::FlowId flow_id{990000};
  Time interval{Time::ms(100)};  ///< probe cadence (TSLP uses sparse probes)
  Time start{Time::zero()};
  Time stop{Time::sec(60.0)};
  ByteCount probe_bytes{64};
};

/// One-way delay prober: emits probes into the data path and receives them
/// back via the scenario's demux (register handled internally).
class TslpProber : public sim::PacketSink {
 public:
  /// `out` is the head of the data path; `demux` the far-end router.
  TslpProber(sim::Scheduler& sched, TslpConfig cfg, sim::PacketSink& out,
             sim::FlowDemux& demux);

  TslpProber(const TslpProber&) = delete;
  TslpProber& operator=(const TslpProber&) = delete;

  void deliver(const sim::Packet& pkt) override;

  /// (time, queueing delay ms) samples: one-way delay minus the minimum
  /// observed (the TSLP baseline-subtraction step).
  [[nodiscard]] telemetry::TimeSeries queueing_delay_ms() const;

  /// Dhamdhere-style congestion inference: fraction of samples whose
  /// queueing delay exceeds `threshold` — the link is called congested when
  /// this fraction is large.
  [[nodiscard]] double congested_fraction(Time threshold = Time::ms(5)) const;

  [[nodiscard]] std::size_t probes_sent() const { return sent_; }
  [[nodiscard]] std::size_t probes_received() const { return samples_.size(); }
  /// Probes dropped in-network (themselves a congestion signal).
  [[nodiscard]] std::size_t probes_lost() const { return sent_ - samples_.size(); }

 private:
  void emit();

  sim::Scheduler& sched_;
  TslpConfig cfg_;
  sim::PacketSink& out_;
  std::size_t sent_{0};
  std::vector<std::pair<Time, Time>> samples_;  // (arrival, one-way delay)
};

}  // namespace ccc::analysis
