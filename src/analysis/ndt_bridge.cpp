#include "analysis/ndt_bridge.hpp"

namespace ccc::analysis {

mlab::NdtRecord make_ndt_record(const telemetry::FlowMonitor& monitor, std::uint64_t id,
                                mlab::FlowArchetype truth, mlab::AccessType access) {
  mlab::NdtRecord rec;
  rec.id = id;
  rec.truth = truth;
  rec.access = access;
  rec.app_limited_sec = monitor.app_limited_sec();
  rec.rwnd_limited_sec = monitor.rwnd_limited_sec();
  rec.throughput_mbps = monitor.throughput_series_mbps();

  const auto& snaps = monitor.snapshots();
  if (!snaps.empty()) {
    rec.duration_sec = snaps.back().t_sec - snaps.front().t_sec + 0.1;
    rec.min_rtt_ms = snaps.back().min_rtt_ms;
    if (snaps.size() >= 2) {
      rec.snapshot_interval_sec = snaps[1].t_sec - snaps[0].t_sec;
    }
    double sum = 0.0;
    for (double x : rec.throughput_mbps) sum += x;
    rec.mean_throughput_mbps =
        rec.throughput_mbps.empty() ? 0.0
                                    : sum / static_cast<double>(rec.throughput_mbps.size());
  }
  return rec;
}

}  // namespace ccc::analysis
