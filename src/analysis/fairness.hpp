// Allocation fairness summaries for contention experiments (E1, E4, E6).
#pragma once

#include <span>
#include <vector>

#include "util/stats.hpp"

namespace ccc::analysis {

/// Summary of one bandwidth-allocation outcome across flows.
struct AllocationSummary {
  std::vector<double> shares_mbps;
  double jain{0.0};
  double min_share{0.0};
  double max_share{0.0};
  /// max/min ratio; 1.0 = perfectly even, large = skewed/starved.
  double spread_ratio{0.0};
  double total_mbps{0.0};
};

/// Builds the summary from per-flow goodputs (Mbps). Precondition: at least
/// one positive share.
[[nodiscard]] AllocationSummary summarize_allocation(std::span<const double> goodputs_mbps);

/// Ware-style harm of each flow vs its solo baseline: harm[i] =
/// max(0, (solo[i] - contended[i]) / solo[i]). Sizes must match.
[[nodiscard]] std::vector<double> harm_vector(std::span<const double> solo,
                                              std::span<const double> contended);

/// Starvation check used by the sub-packet-BDP experiment (E6): a flow is
/// starved in a window if its share is below `fraction` of the fair share.
[[nodiscard]] std::size_t count_starved(std::span<const double> shares, double fraction = 0.1);

}  // namespace ccc::analysis
