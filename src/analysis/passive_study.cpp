#include "analysis/passive_study.hpp"

#include "pipeline/stage.hpp"

namespace ccc::analysis {

double StudyReport::precision() const {
  const auto denom = true_positives + false_positives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(denom);
}

double StudyReport::recall() const {
  const auto denom = true_positives + false_negatives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(denom);
}

double StudyReport::filtered_fraction() const {
  if (findings.empty()) return 0.0;
  std::size_t filtered = 0;
  for (const auto& [v, c] : verdict_counts) {
    if (v != Verdict::kNoLevelShift && v != Verdict::kContentionSuspect) filtered += c;
  }
  return static_cast<double>(filtered) / static_cast<double>(findings.size());
}

StudyReport run_passive_study(std::span<const mlab::NdtRecord> dataset,
                              const PassiveConfig& cfg) {
  // A direct stage-API client: the whole dataset drained serially through
  // one AnalyzeStage. Same per-record sequence as the sharded pipeline at
  // shard_flows = n, so results (and the seed fig2 output) are unchanged —
  // this used to duplicate the per-flow loop, then wrap run_pipeline; now
  // it is the minimal client of the one analysis API.
  pipeline::StageOptions opts;
  opts.classify = cfg;
  opts.keep_findings = true;
  opts.enable_telemetry = false;
  pipeline::AnalyzeStage stage{std::move(opts)};
  stage.reserve_findings(dataset.size());
  const pipeline::MemorySource src{dataset};
  pipeline::RangePull pull{src, 0, dataset.size(), 0};
  pipeline::drain(pull, stage);

  pipeline::AnalysisTallies& t = stage.tallies();
  StudyReport report;
  report.findings = std::move(t.findings);
  for (std::size_t v = 0; v < pipeline::kVerdictCount; ++v) {
    if (t.verdicts[v] > 0) report.verdict_counts[static_cast<Verdict>(v)] = t.verdicts[v];
  }
  report.true_positives = static_cast<std::size_t>(t.tp);
  report.false_positives = static_cast<std::size_t>(t.fp);
  report.false_negatives = static_cast<std::size_t>(t.fn);
  report.true_negatives = static_cast<std::size_t>(t.tn);
  return report;
}

}  // namespace ccc::analysis
