#include "analysis/passive_study.hpp"

#include <algorithm>
#include <cmath>

#include "changepoint/detectors.hpp"

namespace ccc::analysis {

std::string_view to_string(Verdict v) {
  switch (v) {
    case Verdict::kFilteredAppLimited: return "filtered-app-limited";
    case Verdict::kFilteredRwndLimited: return "filtered-rwnd-limited";
    case Verdict::kFilteredCellular: return "filtered-cellular";
    case Verdict::kFilteredShort: return "filtered-short";
    case Verdict::kNoLevelShift: return "no-level-shift";
    case Verdict::kContentionSuspect: return "contention-suspect";
  }
  return "unknown";
}

double StudyReport::precision() const {
  const auto denom = true_positives + false_positives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(denom);
}

double StudyReport::recall() const {
  const auto denom = true_positives + false_negatives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(denom);
}

double StudyReport::filtered_fraction() const {
  if (findings.empty()) return 0.0;
  std::size_t filtered = 0;
  for (const auto& [v, c] : verdict_counts) {
    if (v != Verdict::kNoLevelShift && v != Verdict::kContentionSuspect) filtered += c;
  }
  return static_cast<double>(filtered) / static_cast<double>(findings.size());
}

FlowFinding classify_flow(const mlab::NdtRecord& rec, const PassiveConfig& cfg) {
  FlowFinding f;
  f.id = rec.id;
  f.truth = rec.truth;

  if (rec.app_limited_sec > cfg.app_limited_threshold_sec) {
    f.verdict = Verdict::kFilteredAppLimited;
    return f;
  }
  if (rec.rwnd_limited_sec > cfg.rwnd_limited_threshold_sec) {
    f.verdict = Verdict::kFilteredRwndLimited;
    return f;
  }
  if (cfg.exclude_cellular && (rec.access == mlab::AccessType::kCellular ||
                               rec.access == mlab::AccessType::kSatellite)) {
    f.verdict = Verdict::kFilteredCellular;
    return f;
  }
  if (rec.duration_sec < cfg.min_duration_sec ||
      rec.throughput_mbps.size() < static_cast<std::size_t>(4)) {
    f.verdict = Verdict::kFilteredShort;
    return f;
  }

  // Change-point search on the *log* throughput series: rate noise is
  // multiplicative (a fixed coefficient of variation), so the log transform
  // stabilizes the variance and a single penalty suits high and low levels
  // alike; level shifts stay steps under the transform.
  std::vector<double> log_tput;
  log_tput.reserve(rec.throughput_mbps.size());
  for (double x : rec.throughput_mbps) log_tput.push_back(std::log(std::max(x, 1e-3)));
  const double dt = rec.snapshot_interval_sec;
  const auto min_seg = static_cast<std::size_t>(std::ceil(cfg.min_segment_sec / dt));
  // The persistence requirement goes into the search itself: PELT then finds
  // the best segmentation at the granularity we care about instead of
  // shattering gradual transitions into sub-threshold fragments.
  const auto cps = changepoint::detect_mean_shifts(log_tput, cfg.sensitivity, min_seg);

  // Evaluate each change point: segment boundaries are [0, cps..., n).
  std::vector<std::size_t> bounds{0};
  bounds.insert(bounds.end(), cps.begin(), cps.end());
  bounds.push_back(rec.throughput_mbps.size());

  auto seg_mean = [&](std::size_t a, std::size_t b) {
    double s = 0.0;
    for (std::size_t i = a; i < b; ++i) s += rec.throughput_mbps[i];
    return s / static_cast<double>(b - a);
  };

  for (std::size_t k = 1; k + 1 < bounds.size(); ++k) {
    const std::size_t a = bounds[k - 1];
    const std::size_t b = bounds[k];
    const std::size_t c = bounds[k + 1];
    if (b - a < min_seg || c - b < min_seg) continue;  // transient, not a level
    const double before = seg_mean(a, b);
    const double after = seg_mean(b, c);
    const double larger = std::max(before, after);
    if (larger <= 0.0) continue;
    const double shift = std::abs(after - before) / larger;
    if (shift >= cfg.min_shift_fraction) {
      f.shift_times_sec.push_back(static_cast<double>(b) * dt);
      f.shift_magnitudes.push_back(shift);
    }
  }

  f.verdict = f.shift_times_sec.empty() ? Verdict::kNoLevelShift : Verdict::kContentionSuspect;
  return f;
}

StudyReport run_passive_study(std::span<const mlab::NdtRecord> dataset,
                              const PassiveConfig& cfg) {
  StudyReport report;
  report.findings.reserve(dataset.size());
  for (const auto& rec : dataset) {
    FlowFinding f = classify_flow(rec, cfg);
    ++report.verdict_counts[f.verdict];
    const bool flagged = f.verdict == Verdict::kContentionSuspect;
    const bool truly = rec.truth_contended();
    if (flagged && truly) ++report.true_positives;
    if (flagged && !truly) ++report.false_positives;
    if (!flagged && truly) ++report.false_negatives;
    if (!flagged && !truly) ++report.true_negatives;
    report.findings.push_back(std::move(f));
  }
  return report;
}

}  // namespace ccc::analysis
