#include "analysis/passive_study.hpp"

#include "pipeline/pipeline.hpp"

namespace ccc::analysis {

double StudyReport::precision() const {
  const auto denom = true_positives + false_positives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(denom);
}

double StudyReport::recall() const {
  const auto denom = true_positives + false_negatives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(denom);
}

double StudyReport::filtered_fraction() const {
  if (findings.empty()) return 0.0;
  std::size_t filtered = 0;
  for (const auto& [v, c] : verdict_counts) {
    if (v != Verdict::kNoLevelShift && v != Verdict::kContentionSuspect) filtered += c;
  }
  return static_cast<double>(filtered) / static_cast<double>(findings.size());
}

StudyReport run_passive_study(std::span<const mlab::NdtRecord> dataset,
                              const PassiveConfig& cfg) {
  pipeline::MemorySource src{dataset};
  pipeline::PipelineConfig pcfg;
  pcfg.classify = cfg;
  pcfg.jobs = 1;  // the compat path stays serial; results don't depend on it
  pcfg.shard_flows = dataset.empty() ? 1 : dataset.size();
  pcfg.keep_findings = true;
  pcfg.enable_telemetry = false;
  auto res = pipeline::run_pipeline(src, pcfg);

  StudyReport report;
  report.findings = std::move(res.findings);
  for (const auto& [v, c] : res.verdict_map()) report.verdict_counts[v] = c;
  report.true_positives = static_cast<std::size_t>(res.true_positives);
  report.false_positives = static_cast<std::size_t>(res.false_positives);
  report.false_negatives = static_cast<std::size_t>(res.false_negatives);
  report.true_negatives = static_cast<std::size_t>(res.true_negatives);
  return report;
}

}  // namespace ccc::analysis
