#include "analysis/fairness.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ccc::analysis {

AllocationSummary summarize_allocation(std::span<const double> goodputs_mbps) {
  assert(!goodputs_mbps.empty());
  AllocationSummary s;
  s.shares_mbps.assign(goodputs_mbps.begin(), goodputs_mbps.end());
  s.jain = jain_fairness_index(goodputs_mbps);
  s.min_share = *std::min_element(goodputs_mbps.begin(), goodputs_mbps.end());
  s.max_share = *std::max_element(goodputs_mbps.begin(), goodputs_mbps.end());
  s.spread_ratio = s.min_share > 0.0 ? s.max_share / s.min_share
                                     : std::numeric_limits<double>::infinity();
  for (double g : goodputs_mbps) s.total_mbps += g;
  return s;
}

std::vector<double> harm_vector(std::span<const double> solo,
                                std::span<const double> contended) {
  assert(solo.size() == contended.size());
  std::vector<double> out;
  out.reserve(solo.size());
  for (std::size_t i = 0; i < solo.size(); ++i) out.push_back(harm(solo[i], contended[i]));
  return out;
}

std::size_t count_starved(std::span<const double> shares, double fraction) {
  if (shares.empty()) return 0;
  double total = 0.0;
  for (double s : shares) total += s;
  const double fair = total / static_cast<double>(shares.size());
  std::size_t starved = 0;
  for (double s : shares) {
    if (s < fraction * fair) ++starved;
  }
  return starved;
}

}  // namespace ccc::analysis
