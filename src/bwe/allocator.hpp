// BwE-style hierarchical, demand-aware bandwidth allocation (paper §2.1).
//
// "At the largest scale, hyperscalers deploy private WANs ... Google uses
// BwE to allocate bandwidth in its private WAN. BwE integrates with
// applications that report their bandwidth demand to centrally determine
// bandwidth allocations across the entire network. This isolates
// applications from each other and eliminates inter-flow contention."
//
// This module implements the allocation core: entities form a weighted tree
// (org -> service -> task), each leaf reports a demand, and capacity is
// divided by *weighted progressive filling* (weighted max-min fairness with
// demand caps): a leaf never receives more than it asked for, and spare
// capacity recursively falls to still-hungry siblings in weight proportion.
// A companion Enforcer (enforcer.hpp) applies the result to simulated flows
// as pacing caps — the "host-based bandwidth allocation" of ref [20].
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace ccc::bwe {

using EntityId = std::uint32_t;
inline constexpr EntityId kRootEntity = 0;

/// The weighted demand tree and its water-filling solver.
class Allocator {
 public:
  Allocator();

  /// Adds an entity under `parent` with proportional `weight` (> 0).
  /// Throws std::invalid_argument on unknown parent or bad weight.
  EntityId add_entity(EntityId parent, double weight, std::string name = {});

  /// Reports a leaf's current demand (Rate::zero() = nothing to send).
  /// Interior entities aggregate their children; setting a demand on an
  /// interior entity throws.
  void set_demand(EntityId leaf, Rate demand);

  /// Solves the allocation for `capacity` and stores the result; retrieve
  /// per-entity grants with allocation_of(). Work-conserving up to the
  /// total demand: sum(grants) == min(capacity, sum(demands)).
  void solve(Rate capacity);

  /// The granted rate from the most recent solve() (zero before any solve).
  [[nodiscard]] Rate allocation_of(EntityId entity) const;
  /// Aggregate demand under an entity.
  [[nodiscard]] Rate demand_of(EntityId entity) const;
  [[nodiscard]] const std::string& name_of(EntityId entity) const;
  [[nodiscard]] std::size_t entity_count() const { return entities_.size(); }
  [[nodiscard]] bool is_leaf(EntityId entity) const;

 private:
  struct Entity {
    EntityId parent{kRootEntity};
    double weight{1.0};
    std::string name;
    std::vector<EntityId> children;
    Rate demand{Rate::zero()};      // leaves: reported; interior: unused
    Rate allocation{Rate::zero()};  // last solve() result
  };

  /// Weighted progressive filling of `capacity` among `node`'s children,
  /// recursing to the leaves.
  void fill(EntityId node, Rate capacity);
  [[nodiscard]] Rate subtree_demand(EntityId node) const;

  std::vector<Entity> entities_;
};

}  // namespace ccc::bwe
