// The BwE control loop: periodically collect demands, solve, push grants.
//
// BwE runs as a hierarchy of brokers on a multi-second cadence; this
// in-simulation enforcer condenses that loop: every `period` it reads each
// leaf's demand estimator, solves the weighted water-filling allocation for
// the managed capacity, and installs the grants as pacing caps on the
// registered flows.
#pragma once

#include <functional>
#include <vector>

#include "bwe/allocator.hpp"
#include "bwe/capped_cca.hpp"
#include "sim/scheduler.hpp"

namespace ccc::bwe {

class Enforcer {
 public:
  /// Estimates a leaf's current demand (e.g. from app backlog or a recent
  /// send-rate measurement).
  using DemandFn = std::function<Rate()>;

  /// `headroom` scales the managed capacity (BwE deliberately allocates
  /// slightly under the physical rate so queues stay short).
  Enforcer(sim::Scheduler& sched, Allocator& alloc, Rate capacity,
           Time period = Time::ms(500), double headroom = 0.95);

  Enforcer(const Enforcer&) = delete;
  Enforcer& operator=(const Enforcer&) = delete;

  /// Binds a leaf entity to a flow's cap and its demand estimator.
  /// `cca` must outlive the enforcer.
  void bind(EntityId leaf, CappedCca& cca, DemandFn demand);

  /// Starts the periodic control loop at absolute time `at`.
  void start(Time at);

  /// Runs one collect-solve-install round immediately.
  void run_round();

  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

 private:
  void on_round_fire();

  struct Binding {
    EntityId leaf;
    CappedCca* cca;
    DemandFn demand;
  };

  sim::Scheduler& sched_;
  Allocator& alloc_;
  Rate capacity_;
  Time period_;
  double headroom_;
  std::vector<Binding> bindings_;
  std::uint64_t rounds_{0};
};

}  // namespace ccc::bwe
