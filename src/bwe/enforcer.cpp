#include "bwe/enforcer.hpp"

#include <cassert>

namespace ccc::bwe {

Enforcer::Enforcer(sim::Scheduler& sched, Allocator& alloc, Rate capacity, Time period,
                   double headroom)
    : sched_{sched}, alloc_{alloc}, capacity_{capacity}, period_{period}, headroom_{headroom} {
  assert(capacity_.to_bps() > 0.0);
  assert(period_ > Time::zero());
  assert(headroom_ > 0.0 && headroom_ <= 1.0);
}

void Enforcer::bind(EntityId leaf, CappedCca& cca, DemandFn demand) {
  assert(alloc_.is_leaf(leaf));
  bindings_.push_back({leaf, &cca, std::move(demand)});
}

void Enforcer::run_round() {
  ++rounds_;
  for (const auto& b : bindings_) alloc_.set_demand(b.leaf, b.demand());
  alloc_.solve(capacity_ * headroom_);
  for (const auto& b : bindings_) b.cca->set_cap(alloc_.allocation_of(b.leaf));
}

void Enforcer::start(Time at) {
  sched_.schedule_member_fire_at<&Enforcer::on_round_fire>(at, this);
}

void Enforcer::on_round_fire() {
  run_round();
  start(sched_.now() + period_);
}

}  // namespace ccc::bwe
