// A rate-cap decorator around any CCA: the enforcement half of BwE.
//
// BwE's grants are enforced at the hosts (ref [20], EyeQ-style): each task's
// transport may use its own CCA for loss recovery and burst control, but its
// sending rate is clamped to the centrally granted allocation. The decorator
// forwards every event to the wrapped CCA and clamps its outputs.
#pragma once

#include <algorithm>
#include <memory>

#include "cca/cca.hpp"

namespace ccc::bwe {

class CappedCca : public cca::CongestionControl {
 public:
  /// Takes ownership of `inner`. The cap starts unlimited.
  explicit CappedCca(std::unique_ptr<cca::CongestionControl> inner)
      : inner_{std::move(inner)} {}

  /// Applies a new grant. Rate::zero() means "no cap".
  void set_cap(Rate cap) { cap_ = cap; }
  [[nodiscard]] Rate cap() const { return cap_; }

  void on_ack(const cca::AckEvent& ev) override {
    if (ev.rtt_sample > Time::zero()) srtt_hint_ = ev.rtt_sample;
    inner_->on_ack(ev);
  }
  void on_loss(const cca::LossEvent& ev) override { inner_->on_loss(ev); }
  void on_rto(Time now) override { inner_->on_rto(now); }
  void on_idle_restart(Time now) override { inner_->on_idle_restart(now); }

  [[nodiscard]] ByteCount cwnd_bytes() const override {
    const ByteCount inner_cwnd = inner_->cwnd_bytes();
    if (cap_.is_zero()) return inner_cwnd;
    // Window equivalent of the cap: 1.5x BDP at the capped rate keeps the
    // pipe full without letting a burst defeat the pacing clamp.
    const auto cap_wnd = static_cast<ByteCount>(cap_.bytes_per_sec() *
                                                srtt_hint_.to_sec() * 1.5);
    return std::clamp<ByteCount>(cap_wnd, sim::kMss, inner_cwnd);
  }

  [[nodiscard]] Rate pacing_rate() const override {
    const Rate inner_rate = inner_->pacing_rate();
    if (cap_.is_zero()) return inner_rate;
    if (inner_rate.is_zero()) return cap_;  // unpaced CCA: the cap paces it
    return std::min(inner_rate, cap_);
  }

  [[nodiscard]] std::string_view name() const override { return "bwe-capped"; }
  [[nodiscard]] bool wants_ecn() const override { return inner_->wants_ecn(); }
  [[nodiscard]] const cca::CongestionControl& inner() const { return *inner_; }

 private:
  std::unique_ptr<cca::CongestionControl> inner_;
  Rate cap_{Rate::zero()};
  Time srtt_hint_{Time::ms(100)};
};

}  // namespace ccc::bwe
