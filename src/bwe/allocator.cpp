#include "bwe/allocator.hpp"

#include <algorithm>
#include <stdexcept>

namespace ccc::bwe {

Allocator::Allocator() {
  entities_.push_back(Entity{});
  entities_[kRootEntity].name = "root";
}

EntityId Allocator::add_entity(EntityId parent, double weight, std::string name) {
  if (parent >= entities_.size()) throw std::invalid_argument{"bwe: unknown parent"};
  if (weight <= 0.0) throw std::invalid_argument{"bwe: weight must be positive"};
  if (!entities_[parent].demand.is_zero()) {
    throw std::invalid_argument{"bwe: parent already reports leaf demand"};
  }
  const auto id = static_cast<EntityId>(entities_.size());
  Entity e;
  e.parent = parent;
  e.weight = weight;
  e.name = name.empty() ? "entity-" + std::to_string(id) : std::move(name);
  entities_.push_back(std::move(e));
  entities_[parent].children.push_back(id);
  return id;
}

bool Allocator::is_leaf(EntityId entity) const {
  return entity < entities_.size() && entities_[entity].children.empty();
}

void Allocator::set_demand(EntityId leaf, Rate demand) {
  if (leaf >= entities_.size()) throw std::invalid_argument{"bwe: unknown entity"};
  if (!entities_[leaf].children.empty()) {
    throw std::invalid_argument{"bwe: demand belongs on leaves"};
  }
  entities_[leaf].demand = demand;
}

Rate Allocator::subtree_demand(EntityId node) const {
  const Entity& e = entities_[node];
  if (e.children.empty()) return e.demand;
  Rate total = Rate::zero();
  for (EntityId c : e.children) total = total + subtree_demand(c);
  return total;
}

Rate Allocator::demand_of(EntityId entity) const {
  if (entity >= entities_.size()) return Rate::zero();
  return subtree_demand(entity);
}

void Allocator::fill(EntityId node, Rate capacity) {
  Entity& e = entities_[node];
  e.allocation = std::min(capacity, subtree_demand(node));
  if (e.children.empty()) return;

  // Weighted progressive filling: grant each unsatisfied child its weighted
  // share of the remaining capacity; children whose demand is met drop out
  // and their spare share re-divides among the rest. Terminates in at most
  // |children| rounds (each round satisfies at least one child or ends).
  Rate remaining = e.allocation;
  std::vector<EntityId> hungry = e.children;
  std::vector<Rate> granted(entities_.size(), Rate::zero());
  for (EntityId c : e.children) granted[c] = Rate::zero();

  while (!hungry.empty() && remaining.to_bps() > 1.0) {
    double weight_sum = 0.0;
    for (EntityId c : hungry) weight_sum += entities_[c].weight;
    std::vector<EntityId> still_hungry;
    Rate next_remaining = remaining;
    for (EntityId c : hungry) {
      const Rate fair = remaining * (entities_[c].weight / weight_sum);
      const Rate want = subtree_demand(c) - granted[c];
      if (want <= fair) {
        granted[c] = granted[c] + want;
        next_remaining = next_remaining - want;
      } else {
        granted[c] = granted[c] + fair;
        next_remaining = next_remaining - fair;
        still_hungry.push_back(c);
      }
    }
    if (still_hungry.size() == hungry.size()) {
      // Nobody was satisfied this round: the weighted shares are final.
      remaining = Rate::zero();
    } else {
      remaining = next_remaining;
    }
    hungry = std::move(still_hungry);
  }

  for (EntityId c : e.children) fill(c, granted[c]);
}

void Allocator::solve(Rate capacity) {
  if (capacity.to_bps() < 0.0) throw std::invalid_argument{"bwe: negative capacity"};
  fill(kRootEntity, capacity);
}

Rate Allocator::allocation_of(EntityId entity) const {
  if (entity >= entities_.size()) return Rate::zero();
  return entities_[entity].allocation;
}

const std::string& Allocator::name_of(EntityId entity) const {
  static const std::string kUnknown = "?";
  return entity < entities_.size() ? entities_[entity].name : kUnknown;
}

}  // namespace ccc::bwe
