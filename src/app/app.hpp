// Application traffic models.
//
// The paper's argument (§2.2) hinges on *applications*, not CCAs, limiting
// most flows: video is chunked and bounded, most flows are short, and only
// persistently backlogged sources can contend. These models supply bytes to
// a transport sender; whether a flow is "app-limited" is an emergent
// property of the model's supply vs. the path's capacity.
#pragma once

#include <functional>

#include "util/units.hpp"

namespace ccc::app {

/// A source of bytes for one transport connection.
///
/// The sender pulls: it asks bytes_available() and consumes what it sends.
/// Models that produce data over time (video chunks, CBR) call the notify
/// hook so a blocked sender re-polls immediately.
class App {
 public:
  virtual ~App() = default;

  /// Called once when the owning flow starts transmitting.
  virtual void on_start(Time now) { (void)now; }

  /// Bytes currently queued and ready to send.
  [[nodiscard]] virtual ByteCount bytes_available(Time now) = 0;

  /// The sender transmitted `n` fresh bytes (retransmissions don't consume).
  /// Precondition: n <= bytes_available(now).
  virtual void consume(ByteCount n, Time now) = 0;

  /// Cumulative in-order bytes the *receiver* has gotten (ABR models use
  /// this to time chunk completion and fill the playback buffer).
  virtual void on_delivered(ByteCount total_bytes, Time now) {
    (void)total_bytes;
    (void)now;
  }

  /// True once the app will never produce more data (lets short flows end).
  [[nodiscard]] virtual bool finished(Time now) const {
    (void)now;
    return false;
  }

  /// Hook the transport installs; implementations call it whenever
  /// bytes_available() may have become positive.
  void set_data_ready_hook(std::function<void()> hook) { data_ready_ = std::move(hook); }

 protected:
  void notify_data_ready() {
    if (data_ready_) data_ready_();
  }

 private:
  std::function<void()> data_ready_;
};

}  // namespace ccc::app
