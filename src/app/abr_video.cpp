#include "app/abr_video.hpp"

#include <algorithm>
#include <cassert>

namespace ccc::app {

AbrVideoApp::AbrVideoApp(sim::Scheduler& sched, AbrConfig cfg)
    : sched_{sched}, cfg_{std::move(cfg)} {
  assert(!cfg_.ladder.empty());
  assert(std::is_sorted(cfg_.ladder.begin(), cfg_.ladder.end()));
  assert(cfg_.safety_factor > 0.0 && cfg_.safety_factor <= 1.0);
}

void AbrVideoApp::on_start(Time now) {
  started_ = true;
  last_drain_ = now;
  maybe_request_chunk(now);
}

void AbrVideoApp::drain_playback(Time now) const {
  if (now <= last_drain_) return;
  const double elapsed = (now - last_drain_).to_sec();
  if (buffer_sec_ >= elapsed) {
    buffer_sec_ -= elapsed;
  } else {
    rebuffer_seconds_ += elapsed - buffer_sec_;  // stalled for the remainder
    buffer_sec_ = 0.0;
  }
  last_drain_ = now;
}

double AbrVideoApp::buffer_seconds(Time now) const {
  drain_playback(now);
  return buffer_sec_;
}

void AbrVideoApp::pick_bitrate() {
  if (recent_tput_bps_.empty()) {
    ladder_idx_ = 0;  // conservative start
    return;
  }
  // Harmonic mean of recent chunk throughputs — robust to one fast chunk.
  double inv_sum = 0.0;
  for (double t : recent_tput_bps_) inv_sum += 1.0 / std::max(t, 1.0);
  const double est = static_cast<double>(recent_tput_bps_.size()) / inv_sum;
  const double budget = est * cfg_.safety_factor;

  std::size_t pick = 0;
  for (std::size_t i = 0; i < cfg_.ladder.size(); ++i) {
    if (cfg_.ladder[i].to_bps() <= budget) pick = i;
  }
  if (pick > ladder_idx_) ++upswitches_;
  if (pick < ladder_idx_) ++downswitches_;
  ladder_idx_ = pick;
}

void AbrVideoApp::maybe_request_chunk(Time now) {
  drain_playback(now);
  if (chunk_in_flight_) return;
  if (buffer_sec_ + cfg_.chunk_duration.to_sec() > cfg_.max_buffer.to_sec()) {
    // Buffer full: idle (this is precisely the app-limited "off" period),
    // retry when one chunk's worth of playback has drained.
    sched_.schedule_member_fire_after<&AbrVideoApp::on_buffer_retry>(cfg_.chunk_duration, this);
    return;
  }
  pick_bitrate();
  chunk_bytes_ = std::max<ByteCount>(cfg_.ladder[ladder_idx_].bytes_in(cfg_.chunk_duration), 1);
  pending_ = chunk_bytes_;
  total_requested_ += chunk_bytes_;
  chunk_in_flight_ = true;
  chunk_request_time_ = now;
  supply_accrued_ = 0.0;
  last_supply_accrual_ = now;
  if (cfg_.supply_rate_multiple > 0.0 && !supply_notifier_armed_) arm_supply_notifier();
  notify_data_ready();
}

void AbrVideoApp::on_buffer_retry() { maybe_request_chunk(sched_.now()); }

ByteCount AbrVideoApp::bytes_available(Time now) {
  if (cfg_.supply_rate_multiple <= 0.0) return pending_;
  // Server-paced supply: release chunk bytes at bitrate x multiple.
  if (now > last_supply_accrual_) {
    supply_accrued_ += cfg_.ladder[ladder_idx_].bytes_per_sec() * cfg_.supply_rate_multiple *
                       (now - last_supply_accrual_).to_sec();
    last_supply_accrual_ = now;
  }
  return std::min<ByteCount>(pending_, static_cast<ByteCount>(supply_accrued_));
}

void AbrVideoApp::arm_supply_notifier() {
  supply_notifier_armed_ = true;
  sched_.schedule_member_fire_after<&AbrVideoApp::on_supply_fire>(Time::ms(10), this);
}

void AbrVideoApp::on_supply_fire() {
  supply_notifier_armed_ = false;
  if (!chunk_in_flight_) return;
  notify_data_ready();
  arm_supply_notifier();
}

void AbrVideoApp::consume(ByteCount n, Time /*now*/) {
  assert(n <= pending_);
  pending_ -= n;
  supply_accrued_ -= static_cast<double>(n);
}

void AbrVideoApp::on_delivered(ByteCount total_bytes, Time now) {
  // The connection carries only chunk bytes, so the current chunk completes
  // exactly when the receiver's cumulative total reaches total_requested_.
  if (!chunk_in_flight_ || total_bytes < total_requested_) return;

  drain_playback(now);
  buffer_sec_ += cfg_.chunk_duration.to_sec();
  ++chunks_done_;
  const double fetch_sec = std::max((now - chunk_request_time_).to_sec(), 1e-6);
  recent_tput_bps_.push_back(static_cast<double>(chunk_bytes_) * 8.0 / fetch_sec);
  if (recent_tput_bps_.size() > static_cast<std::size_t>(cfg_.estimate_window)) {
    recent_tput_bps_.erase(recent_tput_bps_.begin());
  }
  chunk_in_flight_ = false;
  pending_ = 0;
  maybe_request_chunk(now);
}

}  // namespace ccc::app
