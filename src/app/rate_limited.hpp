// A source that produces data at a bounded rate — the generic
// "application-limited flow" of §2.2 (e.g. a 25 Mbit/s game stream on a
// 100 Mbit/s link can never contend). Bytes accrue continuously; the sender
// drains whatever has accrued.
#pragma once

#include <limits>

#include "app/app.hpp"
#include "sim/scheduler.hpp"
#include "util/units.hpp"

namespace ccc::app {

class RateLimitedApp : public App {
 public:
  /// Produces at `rate` forever (or until `total_bytes` if bounded).
  /// `notify_period` controls how often a blocked sender is poked; the
  /// accrual itself is continuous and exact.
  RateLimitedApp(sim::Scheduler& sched, Rate rate,
                 ByteCount total_bytes = std::numeric_limits<ByteCount>::max() / 2,
                 Time notify_period = Time::ms(5));

  void on_start(Time now) override;
  [[nodiscard]] ByteCount bytes_available(Time now) override;
  void consume(ByteCount n, Time now) override;
  [[nodiscard]] bool finished(Time now) const override;

  [[nodiscard]] Rate rate() const { return rate_; }

 private:
  void accrue(Time now);
  void arm_notify();
  void on_notify_fire();

  sim::Scheduler& sched_;
  Rate rate_;
  ByteCount budget_remaining_;
  Time notify_period_;
  Time started_{Time::never()};
  Time last_accrual_{Time::zero()};
  double accrued_{0.0};  ///< fractional bytes produced but not yet consumed
};

}  // namespace ccc::app
