// Adaptive-bitrate (ABR) video: the traffic class the paper says carries
// most Internet bytes yet cannot contend (§2.2) — its demand is bounded by
// the bitrate ladder, and when the path tightens, the ABR controller lowers
// the bitrate *before* CCA dynamics matter. One of Figure 3's inelastic
// cross-traffic types.
//
// Model: a chunked HTTP-style stream. The client keeps a playback buffer of
// up to `max_buffer` seconds; whenever the buffer has room it requests the
// next `chunk_duration` seconds of video at a ladder bitrate chosen from the
// throughput of recent chunks (harmonic mean, with a safety factor) — the
// classic throughput-based ABR rule.
#pragma once

#include <vector>

#include "app/app.hpp"
#include "sim/scheduler.hpp"
#include "util/units.hpp"

namespace ccc::app {

struct AbrConfig {
  /// Bitrate ladder, ascending (default: a 240p..4K-ish ladder).
  std::vector<Rate> ladder{Rate::mbps(0.35), Rate::mbps(0.75), Rate::mbps(1.75),
                           Rate::mbps(3.0),  Rate::mbps(5.8),  Rate::mbps(12.0),
                           Rate::mbps(24.0)};
  Time chunk_duration{Time::sec(2.0)};
  Time max_buffer{Time::sec(30.0)};
  /// Fraction of estimated throughput the picker is allowed to use.
  double safety_factor{0.8};
  /// Chunks in the harmonic-mean throughput estimate.
  int estimate_window{3};
  /// If > 0, the server paces each chunk's bytes into the transport at
  /// (chunk bitrate x this multiple) instead of dumping the whole chunk at
  /// once — the common streaming-server behaviour (e.g. ~2x playback rate).
  /// 0 = unpaced (whole chunk offered immediately).
  double supply_rate_multiple{0.0};
};

class AbrVideoApp : public App {
 public:
  AbrVideoApp(sim::Scheduler& sched, AbrConfig cfg = {});

  void on_start(Time now) override;
  [[nodiscard]] ByteCount bytes_available(Time now) override;
  void consume(ByteCount n, Time now) override;
  void on_delivered(ByteCount total_bytes, Time now) override;
  [[nodiscard]] bool finished(Time now) const override {
    (void)now;
    return false;  // live/endless stream
  }

  // --- QoE/telemetry accessors (read by benches and tests) ---
  [[nodiscard]] Rate current_bitrate() const { return cfg_.ladder[ladder_idx_]; }
  [[nodiscard]] double buffer_seconds(Time now) const;
  [[nodiscard]] int downswitches() const { return downswitches_; }
  [[nodiscard]] int upswitches() const { return upswitches_; }
  [[nodiscard]] double rebuffer_seconds() const { return rebuffer_seconds_; }
  [[nodiscard]] std::int64_t chunks_fetched() const { return chunks_done_; }

 private:
  void maybe_request_chunk(Time now);
  void on_buffer_retry();
  void pick_bitrate();
  void drain_playback(Time now) const;
  void arm_supply_notifier();
  void on_supply_fire();

  sim::Scheduler& sched_;
  AbrConfig cfg_;
  std::size_t ladder_idx_{0};

  ByteCount pending_{0};            ///< bytes of the current chunk not yet sent
  ByteCount chunk_bytes_{0};        ///< size of the in-flight chunk
  ByteCount total_requested_{0};    ///< cumulative bytes of all requested chunks
  Time chunk_request_time_{Time::zero()};
  double supply_accrued_{0.0};      ///< paced-supply bytes released so far
  Time last_supply_accrual_{Time::zero()};
  bool supply_notifier_armed_{false};
  bool chunk_in_flight_{false};
  std::int64_t chunks_done_{0};

  std::vector<double> recent_tput_bps_;
  int upswitches_{0};
  int downswitches_{0};

  // Playback model (mutable: draining is a function of observation time).
  mutable double buffer_sec_{0.0};
  mutable Time last_drain_{Time::zero()};
  mutable double rebuffer_seconds_{0.0};
  bool started_{false};
};

}  // namespace ccc::app
