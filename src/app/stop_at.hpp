// StopAtApp: bounds any traffic model to a time window.
//
// Figure 3 runs each cross-traffic type "for 45 seconds"; this wrapper makes
// an otherwise endless source (bulk backlog, live video) go quiet — and its
// flow complete — at the phase boundary.
#pragma once

#include <memory>
#include <utility>

#include "app/app.hpp"

namespace ccc::app {

class StopAtApp : public App {
 public:
  /// Wraps `inner`; after `stop_at` the app reports no data and finished.
  StopAtApp(std::unique_ptr<App> inner, Time stop_at)
      : inner_{std::move(inner)}, stop_at_{stop_at} {
    inner_->set_data_ready_hook([this] { notify_data_ready(); });
  }

  void on_start(Time now) override { inner_->on_start(now); }

  [[nodiscard]] ByteCount bytes_available(Time now) override {
    return now >= stop_at_ ? 0 : inner_->bytes_available(now);
  }

  void consume(ByteCount n, Time now) override { inner_->consume(n, now); }

  void on_delivered(ByteCount total_bytes, Time now) override {
    inner_->on_delivered(total_bytes, now);
  }

  [[nodiscard]] bool finished(Time now) const override {
    return now >= stop_at_ || inner_->finished(now);
  }

 private:
  std::unique_ptr<App> inner_;
  Time stop_at_;
};

}  // namespace ccc::app
