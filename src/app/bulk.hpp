// Persistently-backlogged and fixed-size sources.
#pragma once

#include <limits>

#include "app/app.hpp"

namespace ccc::app {

/// A source with `total_bytes` to send (use kUnbounded for an infinite
/// backlog — the "persistently backlogged connection" of §2.3 and the two
/// contending flows of Figure 3). Never app-limited until it completes.
class BulkApp : public App {
 public:
  static constexpr ByteCount kUnbounded = std::numeric_limits<ByteCount>::max() / 2;

  explicit BulkApp(ByteCount total_bytes = kUnbounded) : remaining_{total_bytes} {}

  [[nodiscard]] ByteCount bytes_available(Time /*now*/) override { return remaining_; }

  void consume(ByteCount n, Time /*now*/) override { remaining_ -= n; }

  [[nodiscard]] bool finished(Time /*now*/) const override { return remaining_ <= 0; }

  [[nodiscard]] ByteCount remaining() const { return remaining_; }

 private:
  ByteCount remaining_;
};

}  // namespace ccc::app
