#include "app/rate_limited.hpp"

#include <algorithm>
#include <cassert>

namespace ccc::app {

RateLimitedApp::RateLimitedApp(sim::Scheduler& sched, Rate rate, ByteCount total_bytes,
                               Time notify_period)
    : sched_{sched}, rate_{rate}, budget_remaining_{total_bytes}, notify_period_{notify_period} {
  assert(rate_.to_bps() > 0.0);
}

void RateLimitedApp::on_start(Time now) {
  started_ = now;
  last_accrual_ = now;
  arm_notify();
}

void RateLimitedApp::arm_notify() {
  // Periodically poke the sender: data accrues continuously but the sender
  // only polls on events.
  sched_.schedule_member_fire_after<&RateLimitedApp::on_notify_fire>(notify_period_, this);
}

void RateLimitedApp::on_notify_fire() {
  if (finished(sched_.now())) return;
  notify_data_ready();
  arm_notify();
}

void RateLimitedApp::accrue(Time now) {
  if (started_ == Time::never() || now <= last_accrual_) return;
  accrued_ += rate_.bytes_per_sec() * (now - last_accrual_).to_sec();
  last_accrual_ = now;
}

ByteCount RateLimitedApp::bytes_available(Time now) {
  accrue(now);
  return std::min(static_cast<ByteCount>(accrued_), budget_remaining_);
}

void RateLimitedApp::consume(ByteCount n, Time now) {
  accrue(now);
  assert(static_cast<double>(n) <= accrued_ + 1.0);
  accrued_ -= static_cast<double>(n);
  budget_remaining_ -= n;
}

bool RateLimitedApp::finished(Time /*now*/) const { return budget_remaining_ <= 0; }

}  // namespace ccc::app
