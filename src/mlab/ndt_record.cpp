#include "mlab/ndt_record.hpp"

namespace ccc::mlab {

std::string_view to_string(FlowArchetype a) {
  switch (a) {
    case FlowArchetype::kAppLimitedStreaming: return "app-limited-streaming";
    case FlowArchetype::kAppLimitedConstant: return "app-limited-constant";
    case FlowArchetype::kShortFlow: return "short-flow";
    case FlowArchetype::kRwndLimited: return "rwnd-limited";
    case FlowArchetype::kBulkClean: return "bulk-clean";
    case FlowArchetype::kBulkContended: return "bulk-contended";
    case FlowArchetype::kPoliced: return "policed";
  }
  return "unknown";
}

std::string_view to_string(AccessType a) {
  switch (a) {
    case AccessType::kFiber: return "fiber";
    case AccessType::kCable: return "cable";
    case AccessType::kDsl: return "dsl";
    case AccessType::kCellular: return "cellular";
    case AccessType::kSatellite: return "satellite";
  }
  return "unknown";
}

}  // namespace ccc::mlab
