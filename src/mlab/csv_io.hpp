// CSV serialization for NDT datasets.
//
// Lets the synthetic corpus (or records bridged from simulations) be
// exported for external analysis and re-imported — the workflow a user of a
// real M-Lab dump would follow with this toolkit. Real-world dumps are
// messy, so the parser accepts CRLF line endings, RFC-4180-style quoted
// fields (with "" escapes), and trailing blank lines; malformed data rows
// are counted and skipped rather than aborting the whole load (a BigQuery
// export with one truncated row should not discard the other 9,983).
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <span>
#include <vector>

#include "mlab/ndt_record.hpp"

namespace ccc::telemetry {
class MetricRegistry;
}

namespace ccc::mlab {

/// What the parser saw: every data row is either parsed or skipped.
struct CsvParseStats {
  std::size_t rows_seen{0};     ///< non-blank data rows (header excluded)
  std::size_t rows_parsed{0};   ///< rows that produced a record
  std::size_t rows_skipped{0};  ///< malformed rows, counted and dropped
};

/// Writes a dataset as CSV with a header row. The throughput series is
/// serialized as a ';'-separated list inside one field.
void write_csv(std::ostream& os, std::span<const NdtRecord> dataset);

/// Writes one data row (no header) — the streaming-export building block.
void write_csv_record(std::ostream& os, const NdtRecord& rec);

/// Streaming parse: invokes `fn` once per well-formed data row, in file
/// order, without materializing the dataset (the ccfs ingest path at
/// millions of flows). Malformed rows — bad shape, garbage or over-range
/// numerics (a 400-digit field), unknown enums — are tallied in `stats`
/// (optional) and skipped; no parse failure aborts the load. Throws
/// ccc::Error{kFormat} only if the header row is wrong (that is a
/// different-file problem, not a bad-row problem). Exceptions from `fn`
/// itself always propagate.
void for_each_csv_record(std::istream& is, const std::function<void(NdtRecord&&)>& fn,
                         CsvParseStats* stats = nullptr);

/// Reads a dataset written by write_csv. Malformed data rows are skipped
/// (and counted in `stats` when given); a missing/wrong header throws.
[[nodiscard]] std::vector<NdtRecord> read_csv(std::istream& is, CsvParseStats* stats = nullptr);

/// As above, but reports parse tallies into `reg`'s counters
/// ("csv.rows_seen", "csv.rows_parsed", "csv.rows_malformed_skipped") so
/// ingest jobs surface data-quality problems through the standard
/// telemetry channel instead of a side channel.
[[nodiscard]] std::vector<NdtRecord> read_csv(std::istream& is,
                                              telemetry::MetricRegistry& reg);

/// The exact header row write_csv emits and the stream parsers demand.
[[nodiscard]] std::string_view csv_header();

/// Parses one data row (header excluded) into `out`; returns false on a
/// malformed row — same accept/skip judgment as for_each_csv_record, but
/// row-granular. This is the building block for line-at-a-time stream
/// sources (the ingest daemon's stdin/socket inputs), which see one record
/// per network read rather than a whole istream. Blank lines are malformed
/// here: stream sources have no trailing-blank-line convention to honor.
[[nodiscard]] bool parse_csv_row(const std::string& line, NdtRecord& out);

/// Enum parsing helpers (exposed for tests).
[[nodiscard]] FlowArchetype archetype_from_string(std::string_view s);
[[nodiscard]] AccessType access_from_string(std::string_view s);

}  // namespace ccc::mlab
