// CSV serialization for NDT datasets.
//
// Lets the synthetic corpus (or records bridged from simulations) be
// exported for external analysis and re-imported — the workflow a user of a
// real M-Lab dump would follow with this toolkit.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "mlab/ndt_record.hpp"

namespace ccc::mlab {

/// Writes a dataset as CSV with a header row. The throughput series is
/// serialized as a ';'-separated list inside one field.
void write_csv(std::ostream& os, std::span<const NdtRecord> dataset);

/// Reads a dataset written by write_csv. Throws std::runtime_error on
/// malformed input (wrong column count, unparsable numbers, unknown enums).
[[nodiscard]] std::vector<NdtRecord> read_csv(std::istream& is);

/// Enum parsing helpers (exposed for tests).
[[nodiscard]] FlowArchetype archetype_from_string(std::string_view s);
[[nodiscard]] AccessType access_from_string(std::string_view s);

}  // namespace ccc::mlab
