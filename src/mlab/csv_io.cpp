#include "mlab/csv_io.hpp"

#include <array>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "telemetry/metrics.hpp"
#include "util/error.hpp"

namespace ccc::mlab {

namespace {
constexpr std::string_view kHeader =
    "id,access,truth,duration_sec,app_limited_sec,rwnd_limited_sec,mean_throughput_mbps,"
    "min_rtt_ms,snapshot_interval_sec,throughput_mbps";

/// Splits one CSV line into cells, honoring RFC-4180 quoting: a field that
/// starts with '"' runs to the matching close quote, with "" as an escaped
/// quote and commas inside taken literally. Returns false on an
/// unterminated quote (the row counts as malformed).
bool split_csv_line(const std::string& line, std::vector<std::string>& cells) {
  cells.clear();
  std::string cell;
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (true) {
    cell.clear();
    if (i < n && line[i] == '"') {
      ++i;
      bool closed = false;
      while (i < n) {
        if (line[i] == '"') {
          if (i + 1 < n && line[i + 1] == '"') {  // escaped quote
            cell.push_back('"');
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          cell.push_back(line[i++]);
        }
      }
      if (!closed) return false;
      // Lenient: any unquoted tail before the comma is taken literally.
      while (i < n && line[i] != ',') cell.push_back(line[i++]);
    } else {
      while (i < n && line[i] != ',') cell.push_back(line[i++]);
    }
    cells.push_back(cell);
    if (i >= n) return true;
    ++i;  // skip the comma; a trailing comma yields a final empty cell
  }
}

/// Strict double parse: the whole cell must be consumed. Throws
/// std::invalid_argument / std::out_of_range (e.g. a 400-digit field) like
/// the std helpers; the caller's catch turns any of it into a skipped row.
double parse_double(const std::string& s) {
  std::size_t pos = 0;
  const double v = std::stod(s, &pos);
  if (pos != s.size()) throw std::invalid_argument{"trailing characters"};
  return v;
}

std::uint64_t parse_u64(const std::string& s) {
  // stoull happily wraps "-1" to 2^64-1 with no exception — a sign bit in
  // an id column must be a malformed row, not a silently huge id.
  if (!s.empty() && s.front() == '-') throw std::invalid_argument{"negative id"};
  std::size_t pos = 0;
  const std::uint64_t v = std::stoull(s, &pos);
  if (pos != s.size()) throw std::invalid_argument{"trailing characters"};
  return v;
}

/// Parses one split row into a record; throws on any malformed cell.
NdtRecord parse_row(const std::vector<std::string>& cells) {
  NdtRecord r;
  r.id = parse_u64(cells[0]);
  r.access = access_from_string(cells[1]);
  r.truth = archetype_from_string(cells[2]);
  r.duration_sec = parse_double(cells[3]);
  r.app_limited_sec = parse_double(cells[4]);
  r.rwnd_limited_sec = parse_double(cells[5]);
  r.mean_throughput_mbps = parse_double(cells[6]);
  r.min_rtt_ms = parse_double(cells[7]);
  r.snapshot_interval_sec = parse_double(cells[8]);
  const std::string& series = cells[9];
  std::size_t start = 0;
  while (start <= series.size() && !series.empty()) {
    const std::size_t end = series.find(';', start);
    const std::size_t stop = end == std::string::npos ? series.size() : end;
    if (stop > start) r.throughput_mbps.push_back(parse_double(series.substr(start, stop - start)));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return r;
}

}  // namespace

std::string_view csv_header() { return kHeader; }

bool parse_csv_row(const std::string& line, NdtRecord& out) {
  if (line.empty()) return false;
  std::vector<std::string> cells;
  if (!split_csv_line(line, cells)) return false;
  if (cells.size() == 9) cells.emplace_back();  // empty series field
  if (cells.size() != 10) return false;
  try {
    out = parse_row(cells);
  } catch (const std::exception&) {
    // Same single-handler judgment as for_each_csv_record: any malformed
    // cell (garbage, over-range numeric, unknown enum) skips the row.
    return false;
  }
  return true;
}

FlowArchetype archetype_from_string(std::string_view s) {
  static constexpr std::array all = {
      FlowArchetype::kAppLimitedStreaming, FlowArchetype::kAppLimitedConstant,
      FlowArchetype::kShortFlow,           FlowArchetype::kRwndLimited,
      FlowArchetype::kBulkClean,           FlowArchetype::kBulkContended,
      FlowArchetype::kPoliced};
  for (auto a : all) {
    if (to_string(a) == s) return a;
  }
  throw Error::format("", "unknown archetype: " + std::string{s});
}

AccessType access_from_string(std::string_view s) {
  static constexpr std::array all = {AccessType::kFiber, AccessType::kCable, AccessType::kDsl,
                                     AccessType::kCellular, AccessType::kSatellite};
  for (auto a : all) {
    if (to_string(a) == s) return a;
  }
  throw Error::format("", "unknown access type: " + std::string{s});
}

void write_csv_record(std::ostream& os, const NdtRecord& r) {
  os << r.id << ',' << to_string(r.access) << ',' << to_string(r.truth) << ','
     << r.duration_sec << ',' << r.app_limited_sec << ',' << r.rwnd_limited_sec << ','
     << r.mean_throughput_mbps << ',' << r.min_rtt_ms << ',' << r.snapshot_interval_sec
     << ',';
  for (std::size_t i = 0; i < r.throughput_mbps.size(); ++i) {
    if (i > 0) os << ';';
    os << r.throughput_mbps[i];
  }
  os << '\n';
}

void write_csv(std::ostream& os, std::span<const NdtRecord> dataset) {
  os << kHeader << '\n';
  for (const auto& r : dataset) write_csv_record(os, r);
}

void for_each_csv_record(std::istream& is, const std::function<void(NdtRecord&&)>& fn,
                         CsvParseStats* stats) {
  std::string line;
  if (!std::getline(is, line)) return;  // empty input: no header, no rows
  if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF export
  if (line != kHeader) throw Error::format("", "csv: unexpected header", 0);

  CsvParseStats local;
  std::vector<std::string> cells;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // blank separators / trailing blank lines
    ++local.rows_seen;
    bool ok = split_csv_line(line, cells);
    if (ok && cells.size() == 9) cells.emplace_back();  // empty series field
    ok = ok && cells.size() == 10;
    NdtRecord rec;
    if (ok) {
      try {
        rec = parse_row(cells);
      } catch (const std::exception&) {
        // Any malformed cell — invalid_argument (garbage), out_of_range (a
        // 400-digit field), runtime_error (unknown enum) — is the same
        // outcome: this row is skipped and counted, the load continues. An
        // enumerated catch list here once missed classes of parse failure;
        // one handler cannot.
        ok = false;
      }
    }
    if (ok) {
      ++local.rows_parsed;
      fn(std::move(rec));  // outside the catch: callback errors propagate
    } else {
      ++local.rows_skipped;
    }
  }
  if (stats != nullptr) *stats = local;
}

std::vector<NdtRecord> read_csv(std::istream& is, CsvParseStats* stats) {
  std::vector<NdtRecord> out;
  for_each_csv_record(is, [&out](NdtRecord&& r) { out.push_back(std::move(r)); }, stats);
  return out;
}

std::vector<NdtRecord> read_csv(std::istream& is, telemetry::MetricRegistry& reg) {
  CsvParseStats stats;
  auto out = read_csv(is, &stats);
  reg.counter("csv.rows_seen").inc(stats.rows_seen);
  reg.counter("csv.rows_parsed").inc(stats.rows_parsed);
  reg.counter("csv.rows_malformed_skipped").inc(stats.rows_skipped);
  return out;
}

}  // namespace ccc::mlab
