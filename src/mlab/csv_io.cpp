#include "mlab/csv_io.hpp"

#include <array>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ccc::mlab {

namespace {
constexpr std::string_view kHeader =
    "id,access,truth,duration_sec,app_limited_sec,rwnd_limited_sec,mean_throughput_mbps,"
    "min_rtt_ms,snapshot_interval_sec,throughput_mbps";
}  // namespace

FlowArchetype archetype_from_string(std::string_view s) {
  static constexpr std::array all = {
      FlowArchetype::kAppLimitedStreaming, FlowArchetype::kAppLimitedConstant,
      FlowArchetype::kShortFlow,           FlowArchetype::kRwndLimited,
      FlowArchetype::kBulkClean,           FlowArchetype::kBulkContended,
      FlowArchetype::kPoliced};
  for (auto a : all) {
    if (to_string(a) == s) return a;
  }
  throw std::runtime_error{"unknown archetype: " + std::string{s}};
}

AccessType access_from_string(std::string_view s) {
  static constexpr std::array all = {AccessType::kFiber, AccessType::kCable, AccessType::kDsl,
                                     AccessType::kCellular, AccessType::kSatellite};
  for (auto a : all) {
    if (to_string(a) == s) return a;
  }
  throw std::runtime_error{"unknown access type: " + std::string{s}};
}

void write_csv(std::ostream& os, std::span<const NdtRecord> dataset) {
  os << kHeader << '\n';
  for (const auto& r : dataset) {
    os << r.id << ',' << to_string(r.access) << ',' << to_string(r.truth) << ','
       << r.duration_sec << ',' << r.app_limited_sec << ',' << r.rwnd_limited_sec << ','
       << r.mean_throughput_mbps << ',' << r.min_rtt_ms << ',' << r.snapshot_interval_sec
       << ',';
    for (std::size_t i = 0; i < r.throughput_mbps.size(); ++i) {
      if (i > 0) os << ';';
      os << r.throughput_mbps[i];
    }
    os << '\n';
  }
}

std::vector<NdtRecord> read_csv(std::istream& is) {
  std::vector<NdtRecord> out;
  std::string line;
  if (!std::getline(is, line)) return out;
  if (line != kHeader) throw std::runtime_error{"csv: unexpected header"};

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells;
    std::stringstream ss{line};
    std::string cell;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    if (cells.size() == 9) cells.emplace_back();  // empty throughput series
    if (cells.size() != 10) {
      throw std::runtime_error{"csv: expected 10 columns, got " +
                               std::to_string(cells.size())};
    }
    NdtRecord r;
    try {
      r.id = std::stoull(cells[0]);
      r.access = access_from_string(cells[1]);
      r.truth = archetype_from_string(cells[2]);
      r.duration_sec = std::stod(cells[3]);
      r.app_limited_sec = std::stod(cells[4]);
      r.rwnd_limited_sec = std::stod(cells[5]);
      r.mean_throughput_mbps = std::stod(cells[6]);
      r.min_rtt_ms = std::stod(cells[7]);
      r.snapshot_interval_sec = std::stod(cells[8]);
      std::stringstream ts{cells[9]};
      std::string v;
      while (std::getline(ts, v, ';')) {
        if (!v.empty()) r.throughput_mbps.push_back(std::stod(v));
      }
    } catch (const std::invalid_argument&) {
      throw std::runtime_error{"csv: unparsable number in: " + line};
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace ccc::mlab
