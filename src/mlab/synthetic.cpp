#include "mlab/synthetic.hpp"

#include <algorithm>
#include <cmath>

namespace ccc::mlab {

namespace {

/// Draws a plausible access-link capacity (Mbps) for a non-cellular client,
/// loosely following broadband plan tiers.
double draw_capacity_mbps(Rng& rng) {
  static const double tiers[] = {10, 25, 50, 100, 200, 300, 500, 940};
  static const std::vector<double> weights = {0.05, 0.10, 0.15, 0.30, 0.18, 0.12, 0.07, 0.03};
  return tiers[rng.weighted_index(weights)];
}

void fill_noise(std::vector<double>& v, double mean, double cv, Rng& rng) {
  for (double& x : v) {
    x = std::max(0.05, mean * (1.0 + rng.normal(0.0, cv)));
  }
}

}  // namespace

NdtRecord generate_record(FlowArchetype archetype, const SyntheticConfig& cfg, Rng& rng,
                          std::uint64_t id) {
  NdtRecord rec;
  rec.id = id;
  rec.truth = archetype;
  rec.snapshot_interval_sec = cfg.snapshot_interval_sec;
  rec.duration_sec = cfg.test_duration_sec;

  // Access type.
  const double u = rng.uniform();
  if (u < cfg.frac_cellular) {
    rec.access = AccessType::kCellular;
  } else if (u < cfg.frac_cellular + cfg.frac_satellite) {
    rec.access = AccessType::kSatellite;
  } else {
    static const AccessType wired[] = {AccessType::kFiber, AccessType::kCable, AccessType::kDsl};
    rec.access = wired[rng.uniform_int(0, 2)];
  }

  const double cap = draw_capacity_mbps(rng);
  rec.min_rtt_ms = rng.lognormal(std::log(20.0), 0.6);
  const auto n_snaps = static_cast<std::size_t>(rec.duration_sec / rec.snapshot_interval_sec);
  rec.throughput_mbps.assign(n_snaps, 0.0);

  switch (archetype) {
    case FlowArchetype::kAppLimitedStreaming: {
      // ABR ladder steps: starts low, converges to the sustainable rung,
      // with on/off chunking visible as moderate extra variance.
      static const double ladder[] = {0.35, 0.75, 1.75, 3.0, 5.8, 12.0, 24.0};
      std::size_t rung = 0;
      const double budget = std::min(cap * 0.8, 24.0);
      std::size_t target = 0;
      for (std::size_t i = 0; i < std::size(ladder); ++i) {
        if (ladder[i] <= budget) target = i;
      }
      for (std::size_t i = 0; i < n_snaps; ++i) {
        if (rung < target && i > 0 && i % 15 == 0) ++rung;  // ~1.5 s per upswitch
        rec.throughput_mbps[i] =
            std::max(0.05, ladder[rung] * (1.0 + rng.normal(0.0, 3 * cfg.noise_cv)));
      }
      rec.app_limited_sec = rec.duration_sec * rng.uniform(0.6, 0.95);
      break;
    }
    case FlowArchetype::kAppLimitedConstant: {
      const double rate = std::min(cap, 30.0) * rng.uniform(0.2, 0.8);
      fill_noise(rec.throughput_mbps, rate, cfg.noise_cv, rng);
      rec.app_limited_sec = rec.duration_sec * rng.uniform(0.7, 0.98);
      break;
    }
    case FlowArchetype::kShortFlow: {
      // Finishes in a handful of snapshots (initial-window + a few RTTs).
      rec.duration_sec = rng.uniform(0.05, 1.2);
      const auto k = std::max<std::size_t>(
          1, static_cast<std::size_t>(rec.duration_sec / rec.snapshot_interval_sec));
      rec.throughput_mbps.assign(k, 0.0);
      fill_noise(rec.throughput_mbps, cap * rng.uniform(0.05, 0.4), 3 * cfg.noise_cv, rng);
      rec.app_limited_sec = rec.duration_sec * rng.uniform(0.2, 0.8);
      break;
    }
    case FlowArchetype::kRwndLimited: {
      // Throughput pinned at rwnd/RTT, typically well under capacity.
      const double pinned = cap * rng.uniform(0.15, 0.5);
      fill_noise(rec.throughput_mbps, pinned, cfg.noise_cv, rng);
      rec.rwnd_limited_sec = rec.duration_sec * rng.uniform(0.5, 0.95);
      break;
    }
    case FlowArchetype::kBulkClean: {
      // Sole occupant: holds ~capacity with loss-sawtooth ripple.
      fill_noise(rec.throughput_mbps, cap * rng.uniform(0.85, 0.97), 1.5 * cfg.noise_cv, rng);
      break;
    }
    case FlowArchetype::kBulkContended: {
      // A competing backlogged flow arrives (and possibly leaves): the
      // flow's share steps between ~full and ~1/2 (or ~1/3) of capacity.
      const double solo = cap * rng.uniform(0.85, 0.97);
      const int competitors = rng.chance(0.3) ? 2 : 1;
      const double shared = solo / (1.0 + competitors);
      const auto arrive = static_cast<std::size_t>(
          static_cast<double>(n_snaps) * rng.uniform(0.15, 0.55));
      std::size_t depart = n_snaps;
      if (rng.chance(0.4)) {
        depart = arrive + static_cast<std::size_t>(static_cast<double>(n_snaps - arrive) *
                                                   rng.uniform(0.4, 0.9));
      }
      for (std::size_t i = 0; i < n_snaps; ++i) {
        const double level = (i >= arrive && i < depart) ? shared : solo;
        // Contention adds sawtooth variance on top of the level.
        rec.throughput_mbps[i] =
            std::max(0.05, level * (1.0 + rng.normal(0.0, 2.5 * cfg.noise_cv)));
      }
      break;
    }
    case FlowArchetype::kPoliced: {
      // Token bucket: initial burst at capacity until tokens run dry, then a
      // hard flat policed rate — the classic Flach et al. signature, which a
      // naive level-shift detector cannot distinguish from contention.
      const double policed = cap * rng.uniform(0.2, 0.5);
      const auto burst_end = static_cast<std::size_t>(
          static_cast<double>(n_snaps) * rng.uniform(0.08, 0.25));
      for (std::size_t i = 0; i < n_snaps; ++i) {
        const double level = i < burst_end ? cap * 0.95 : policed;
        rec.throughput_mbps[i] =
            std::max(0.05, level * (1.0 + rng.normal(0.0, cfg.noise_cv)));
      }
      break;
    }
  }

  // Cellular/satellite access adds strong capacity variation on top.
  if (rec.access == AccessType::kCellular || rec.access == AccessType::kSatellite) {
    double walk = 1.0;
    for (double& x : rec.throughput_mbps) {
      walk = std::clamp(walk * std::exp(rng.normal(0.0, 0.08)), 0.4, 1.6);
      x *= walk;
    }
  }

  double sum = 0.0;
  for (double x : rec.throughput_mbps) sum += x;
  rec.mean_throughput_mbps =
      rec.throughput_mbps.empty() ? 0.0 : sum / static_cast<double>(rec.throughput_mbps.size());
  return rec;
}

void generate_dataset_stream(const SyntheticConfig& cfg, Rng& rng,
                             const std::function<void(NdtRecord&&)>& fn,
                             std::uint64_t first_id) {
  const std::vector<double> weights = {
      cfg.frac_app_limited_streaming, cfg.frac_app_limited_constant, cfg.frac_short,
      cfg.frac_rwnd_limited,          cfg.frac_bulk_clean,           cfg.frac_bulk_contended,
      cfg.frac_policed};
  static const FlowArchetype archetypes[] = {
      FlowArchetype::kAppLimitedStreaming, FlowArchetype::kAppLimitedConstant,
      FlowArchetype::kShortFlow,           FlowArchetype::kRwndLimited,
      FlowArchetype::kBulkClean,           FlowArchetype::kBulkContended,
      FlowArchetype::kPoliced};

  for (std::size_t i = 0; i < cfg.n_flows; ++i) {
    const FlowArchetype a = archetypes[rng.weighted_index(weights)];
    fn(generate_record(a, cfg, rng, first_id + i));
  }
}

std::vector<NdtRecord> generate_dataset(const SyntheticConfig& cfg, Rng& rng) {
  std::vector<NdtRecord> out;
  out.reserve(cfg.n_flows);
  generate_dataset_stream(cfg, rng, [&out](NdtRecord&& rec) { out.push_back(std::move(rec)); });
  return out;
}

}  // namespace ccc::mlab
