// NDT (Network Diagnostic Test) flow records, modeled on the M-Lab schema
// the paper queried (§3.1): per-flow TCPInfo aggregates plus periodic
// throughput snapshots over the flow's lifetime.
//
// The real dataset is a BigQuery archive we cannot reach from this repo;
// src/mlab/synthetic.hpp generates statistically comparable records WITH
// ground-truth labels, which lets the analysis pipeline report
// precision/recall — something the paper itself could not do.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ccc::mlab {

/// Client access-network type, inferred by M-Lab from client metadata; the
/// paper's analysis excludes cellular clients (isolation is built in there).
enum class AccessType : std::uint8_t {
  kFiber,
  kCable,
  kDsl,
  kCellular,
  kSatellite,
};

/// Ground-truth archetype of a synthetic flow (absent from real M-Lab data).
enum class FlowArchetype : std::uint8_t {
  kAppLimitedStreaming,  ///< chunked ABR video: bounded demand, on/off
  kAppLimitedConstant,   ///< constant app rate below capacity (game stream)
  kShortFlow,            ///< fits in (or near) the initial window
  kRwndLimited,          ///< receiver window pins throughput
  kBulkClean,            ///< backlogged, sole occupant of its bottleneck
  kBulkContended,        ///< backlogged, genuinely contends with cross flows
  kPoliced,              ///< token-bucket policed mid-flow (aliases contention!)
};

[[nodiscard]] std::string_view to_string(FlowArchetype a);
[[nodiscard]] std::string_view to_string(AccessType a);

/// One NDT measurement row.
struct NdtRecord {
  std::uint64_t id{0};
  AccessType access{AccessType::kCable};
  double duration_sec{10.0};

  // TCPInfo aggregates (the fields §3.1 filters on).
  double app_limited_sec{0.0};   ///< time spent application-limited
  double rwnd_limited_sec{0.0};  ///< time spent receiver-window-limited
  double mean_throughput_mbps{0.0};
  double min_rtt_ms{0.0};

  /// Throughput snapshots at a fixed cadence (default 100 ms), Mbps.
  std::vector<double> throughput_mbps;
  double snapshot_interval_sec{0.1};

  /// Ground truth (synthetic datasets only; never read by the pipeline).
  FlowArchetype truth{FlowArchetype::kBulkClean};

  /// Whether the archetype truly involves inter-flow CCA contention.
  [[nodiscard]] bool truth_contended() const { return truth == FlowArchetype::kBulkContended; }
};

}  // namespace ccc::mlab
