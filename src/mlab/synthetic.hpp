// Synthetic NDT dataset generator.
//
// Substitution for the M-Lab BigQuery archive (see DESIGN.md): we generate
// the same record shape with archetype fractions set from the measurement
// literature the paper cites — most flows short [26], most traffic
// app-limited [33: <40% of traffic neither app- nor host- nor
// receiver-limited], cellular a large minority [32]. Each record carries its
// ground-truth archetype so the passive pipeline's verdicts can be scored.
#pragma once

#include <functional>
#include <vector>

#include "mlab/ndt_record.hpp"
#include "util/rng.hpp"

namespace ccc::mlab {

/// Mix and shape parameters for the synthetic population.
struct SyntheticConfig {
  std::size_t n_flows{9984};  ///< the paper's June-2023 query size

  // Archetype mix (normalized internally). Defaults follow Araújo et al.'s
  // finding that >60% of traffic is app/host/receiver-limited, plus typical
  // NDT short-flow and cellular populations.
  double frac_app_limited_streaming{0.30};
  double frac_app_limited_constant{0.12};
  double frac_short{0.22};
  double frac_rwnd_limited{0.14};
  double frac_bulk_clean{0.12};
  double frac_bulk_contended{0.06};
  double frac_policed{0.04};

  double frac_cellular{0.25};   ///< of all flows, tagged cellular access
  double frac_satellite{0.02};

  double test_duration_sec{10.0};     ///< NDT7 runs ~10 s
  double snapshot_interval_sec{0.1};
  /// Relative throughput noise (std/mean) for stable regions.
  double noise_cv{0.06};
};

/// Generates a labeled dataset. Deterministic for a given (config, seed).
[[nodiscard]] std::vector<NdtRecord> generate_dataset(const SyntheticConfig& cfg, Rng& rng);

/// Streaming variant: hands each record to `fn` instead of materializing a
/// vector, so a 10^7-flow population (fig2 --scale) can feed a store writer
/// in constant memory. Record ids run [first_id, first_id + n_flows); with
/// first_id = 0 the record stream is identical to generate_dataset's.
void generate_dataset_stream(const SyntheticConfig& cfg, Rng& rng,
                             const std::function<void(NdtRecord&&)>& fn,
                             std::uint64_t first_id = 0);

/// Generates a single record of the given archetype (exposed for unit tests
/// of the pipeline's per-archetype behaviour).
[[nodiscard]] NdtRecord generate_record(FlowArchetype archetype, const SyntheticConfig& cfg,
                                        Rng& rng, std::uint64_t id = 0);

}  // namespace ccc::mlab
