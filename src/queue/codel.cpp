#include "queue/codel.hpp"

#include <cassert>
#include <cmath>

namespace ccc::queue {

CoDelQueue::CoDelQueue(ByteCount capacity_bytes, Time target, Time interval)
    : capacity_bytes_{capacity_bytes}, target_{target}, interval_{interval} {
  assert(capacity_bytes_ > 0);
  assert(Time::zero() < target_ && target_ < interval_);
}

bool CoDelQueue::enqueue(const sim::Packet& pkt, Time now) {
  ++stats_.enqueued_packets;  // offered (see QdiscStats contract)
  if (backlog_bytes_ + pkt.size_bytes > capacity_bytes_) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += pkt.size_bytes;
    return false;
  }
  fifo_.push_back({pkt, now});
  backlog_bytes_ += pkt.size_bytes;
  return true;
}

std::optional<CoDelQueue::Timestamped> CoDelQueue::pop_head() {
  if (fifo_.empty()) return std::nullopt;
  Timestamped head = fifo_.front();
  fifo_.pop_front();
  backlog_bytes_ -= head.pkt.size_bytes;
  return head;
}

Time CoDelQueue::control_law(Time t) const {
  // interval / sqrt(count): drop faster the longer the queue misbehaves.
  return t + interval_ * (1.0 / std::sqrt(static_cast<double>(count_ == 0 ? 1 : count_)));
}

std::optional<sim::Packet> CoDelQueue::dequeue(Time now) {
  auto head = pop_head();
  if (!head) {
    dropping_ = false;
    return std::nullopt;
  }

  // should_drop: has sojourn exceeded target continuously for an interval?
  auto sojourn_ok = [&](const Timestamped& ts) { return (now - ts.enqueued_at) < target_; };
  auto should_drop = [&](const Timestamped& ts) -> bool {
    if (sojourn_ok(ts) || backlog_bytes_ < sim::kFullPacket) {
      first_above_time_ = Time::zero();
      return false;
    }
    if (first_above_time_ == Time::zero()) {
      first_above_time_ = now + interval_;
      return false;
    }
    return now >= first_above_time_;
  };

  // ECN-capable packets are CE-marked instead of dropped (RFC 8289 §3;
  // the state machine advances identically either way).
  auto mark = [&](Timestamped& ts) {
    ts.pkt.ecn_marked = true;
    ++stats_.ecn_marked_packets;
  };

  if (dropping_) {
    if (!should_drop(*head)) {
      dropping_ = false;
      ++stats_.dequeued_packets;
      return head->pkt;
    }
    while (dropping_ && now >= drop_next_) {
      ++count_;
      if (head->pkt.ecn_capable) {
        mark(*head);
        drop_next_ = control_law(drop_next_);
        break;  // marked packets are still delivered
      }
      ++stats_.dropped_packets;
      stats_.dropped_bytes += head->pkt.size_bytes;
      head = pop_head();
      if (!head || !should_drop(*head)) {
        dropping_ = false;
        break;
      }
      drop_next_ = control_law(drop_next_);
    }
    if (!head) return std::nullopt;
    ++stats_.dequeued_packets;
    return head->pkt;
  }

  if (should_drop(*head)) {
    // Enter dropping state. RFC 8289: if we recently exited dropping state,
    // resume the drop rate rather than restarting from 1.
    dropping_ = true;
    count_ = (count_ > 2 && count_ - last_count_ < count_ / 16) ? count_ - 2 : 1;
    last_count_ = count_;
    drop_next_ = control_law(now);
    if (head->pkt.ecn_capable) {
      mark(*head);
    } else {
      ++stats_.dropped_packets;
      stats_.dropped_bytes += head->pkt.size_bytes;
      head = pop_head();
      if (!head) return std::nullopt;
    }
  }
  ++stats_.dequeued_packets;
  return head->pkt;
}

Time CoDelQueue::next_ready(Time now) const {
  return fifo_.empty() ? Time::never() : now;
}

}  // namespace ccc::queue
