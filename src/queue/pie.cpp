#include "queue/pie.hpp"

#include <algorithm>
#include <cassert>

namespace ccc::queue {

PieQueue::PieQueue(PieConfig cfg) : cfg_{cfg}, rng_{cfg.seed} {
  assert(cfg_.capacity_bytes > 0);
  assert(cfg_.target > Time::zero());
  assert(cfg_.t_update > Time::zero());
  burst_allowance_ = cfg_.max_burst;
}

void PieQueue::maybe_update(Time now) {
  if (!started_) {
    started_ = true;
    next_update_ = now + cfg_.t_update;
    return;
  }
  while (now >= next_update_) {
    // Queueing-delay estimate: backlog over the measured drain rate
    // (RFC 8033 §5.2). Before the first full measurement cycle completes
    // there is no rate yet; leave the estimate at zero — burst allowance
    // covers exactly this startup window.
    if (avg_drain_bytes_per_sec_ > 0.0) {
      qdelay_ = Time::sec(static_cast<double>(backlog_bytes_) / avg_drain_bytes_per_sec_);
    } else {
      qdelay_ = Time::zero();
    }

    if (burst_allowance_ > Time::zero()) {
      burst_allowance_ =
          burst_allowance_ > cfg_.t_update ? burst_allowance_ - cfg_.t_update : Time::zero();
    }

    // PI control law with the RFC's auto-tuning: gains scale down while the
    // probability is small so tiny queues are not over-punished.
    double scale = 1.0;
    if (drop_prob_ < 0.000001) {
      scale = 1.0 / 2048;
    } else if (drop_prob_ < 0.00001) {
      scale = 1.0 / 512;
    } else if (drop_prob_ < 0.0001) {
      scale = 1.0 / 128;
    } else if (drop_prob_ < 0.001) {
      scale = 1.0 / 32;
    } else if (drop_prob_ < 0.01) {
      scale = 1.0 / 8;
    } else if (drop_prob_ < 0.1) {
      scale = 1.0 / 2;
    }
    double p = cfg_.alpha * scale * (qdelay_ - cfg_.target).to_sec() +
               cfg_.beta * scale * (qdelay_ - qdelay_old_).to_sec();
    drop_prob_ = std::clamp(drop_prob_ + p, 0.0, 1.0);

    // Exponential decay when the queue is idle (RFC 8033 §5.2 step 7).
    if (qdelay_ == Time::zero() && qdelay_old_ == Time::zero()) {
      drop_prob_ *= 0.98;
    }
    qdelay_old_ = qdelay_;
    next_update_ += cfg_.t_update;
  }
}

bool PieQueue::should_early_drop(const sim::Packet& pkt, Time now) {
  (void)pkt;
  (void)now;
  if (burst_allowance_ > Time::zero()) return false;
  // RFC 8033 §5.1 safeguards: never early-drop when the controller has no
  // real signal yet or the queue is trivially small.
  if (qdelay_old_ < cfg_.target / 2 && drop_prob_ < 0.2) return false;
  if (backlog_bytes_ <= 2 * sim::kFullPacket) return false;
  return rng_.uniform() < drop_prob_;
}

bool PieQueue::enqueue(const sim::Packet& pkt, Time now) {
  ++stats_.enqueued_packets;  // offered (see QdiscStats contract)
  maybe_update(now);

  if (backlog_bytes_ + pkt.size_bytes > cfg_.capacity_bytes) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += pkt.size_bytes;
    return false;
  }
  if (drop_prob_ > 0.0 && should_early_drop(pkt, now)) {
    // Below mark_ecnth, ECN-capable packets take a CE mark instead of the
    // drop — the controller advances identically either way.
    if (pkt.ecn_capable && drop_prob_ < cfg_.mark_ecnth) {
      sim::Packet marked = pkt;
      marked.ecn_marked = true;
      ++stats_.ecn_marked_packets;
      fifo_.push_back({marked, now});
      backlog_bytes_ += marked.size_bytes;
      return true;
    }
    ++stats_.dropped_packets;
    stats_.dropped_bytes += pkt.size_bytes;
    return false;
  }
  fifo_.push_back({pkt, now});
  backlog_bytes_ += pkt.size_bytes;
  return true;
}

std::optional<sim::Packet> PieQueue::dequeue(Time now) {
  maybe_update(now);
  if (fifo_.empty()) return std::nullopt;
  Timestamped head = fifo_.front();
  fifo_.pop_front();
  backlog_bytes_ -= head.pkt.size_bytes;
  ++stats_.dequeued_packets;

  // Departure-rate measurement (RFC 8033 §5.2): once at least DQ_THRESHOLD
  // bytes have drained in a cycle, fold bytes/elapsed into the average.
  if (dq_count_ == 0) dq_start_ = now;
  dq_count_ += head.pkt.size_bytes;
  if (dq_count_ >= kDqThreshold && now > dq_start_) {
    const double rate = static_cast<double>(dq_count_) / (now - dq_start_).to_sec();
    avg_drain_bytes_per_sec_ = avg_drain_bytes_per_sec_ == 0.0
                                   ? rate
                                   : 0.9 * avg_drain_bytes_per_sec_ + 0.1 * rate;
    dq_count_ = 0;
  }
  return head.pkt;
}

Time PieQueue::next_ready(Time now) const {
  return fifo_.empty() ? Time::never() : now;
}

}  // namespace ccc::queue
