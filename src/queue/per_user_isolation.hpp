// Per-user isolation: the qdisc that models an access ISP's subscriber
// enforcement (paper §2.1).
//
// Each user (subscriber) gets a token-bucket contract — the rate they pay
// for — and a dedicated queue; the scheduler round-robins across users whose
// heads conform. Flows *within* one user still share that user's FIFO, which
// is exactly the paper's point: operator isolation is per-user, so the only
// surviving venue for CCA contention is among a single user's own flows.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "queue/token_bucket.hpp"
#include "sim/qdisc.hpp"

namespace ccc::queue {

class PerUserIsolation : public sim::Qdisc {
 public:
  /// `default_contract`: rate applied to users with no explicit plan.
  /// `burst_bytes`: token-bucket burst per user.
  /// `per_user_capacity_bytes`: buffer each user's queue may hold.
  PerUserIsolation(Rate default_contract, ByteCount burst_bytes,
                   ByteCount per_user_capacity_bytes);

  /// Assigns a specific contracted rate to one user (their "plan").
  void set_contract(sim::UserId user, Rate rate);

  bool enqueue(const sim::Packet& pkt, Time now) override;
  std::optional<sim::Packet> dequeue(Time now) override;
  [[nodiscard]] Time next_ready(Time now) const override;
  [[nodiscard]] ByteCount backlog_bytes() const override { return backlog_bytes_; }
  [[nodiscard]] std::size_t backlog_packets() const override { return backlog_packets_; }

 private:
  struct UserQueue {
    explicit UserQueue(TokenBucket tb) : bucket{std::move(tb)} {}
    TokenBucket bucket;
    std::deque<sim::Packet> pkts;
    ByteCount bytes{0};
  };

  UserQueue& queue_for(sim::UserId user);

  Rate default_contract_;
  ByteCount burst_;
  ByteCount per_user_capacity_;
  ByteCount backlog_bytes_{0};
  std::size_t backlog_packets_{0};
  std::unordered_map<sim::UserId, Rate> contracts_;
  mutable std::unordered_map<sim::UserId, UserQueue> users_;  // buckets refill in next_ready
  std::deque<sim::UserId> rr_order_;
};

}  // namespace ccc::queue
