// CoDel (Controlled Delay) AQM, per Nichols & Jacobson / RFC 8289.
//
// AQM keeps standing queues short without per-flow state. In the isolation
// ablation (E1) CoDel represents "modern default home-router queueing":
// it controls delay but, unlike FQ, does not by itself isolate flows, so
// CCA contention still determines shares under CoDel.
#pragma once

#include <deque>

#include "sim/qdisc.hpp"

namespace ccc::queue {

class CoDelQueue : public sim::Qdisc {
 public:
  /// `target`: acceptable standing sojourn time (RFC default 5 ms).
  /// `interval`: sliding window in which target must be met (default 100 ms).
  CoDelQueue(ByteCount capacity_bytes, Time target = Time::ms(5), Time interval = Time::ms(100));

  bool enqueue(const sim::Packet& pkt, Time now) override;
  std::optional<sim::Packet> dequeue(Time now) override;
  [[nodiscard]] Time next_ready(Time now) const override;
  [[nodiscard]] ByteCount backlog_bytes() const override { return backlog_bytes_; }
  [[nodiscard]] std::size_t backlog_packets() const override { return fifo_.size(); }

 private:
  struct Timestamped {
    sim::Packet pkt;
    Time enqueued_at;
  };

  /// Pops the head; returns nullopt if empty. Updates backlog accounting.
  std::optional<Timestamped> pop_head();
  /// CoDel control law: next drop time after `count` consecutive drops.
  [[nodiscard]] Time control_law(Time t) const;

  ByteCount capacity_bytes_;
  Time target_;
  Time interval_;
  ByteCount backlog_bytes_{0};
  std::deque<Timestamped> fifo_;

  // Dropping-state machine (RFC 8289 pseudocode variables).
  bool dropping_{false};
  std::uint32_t count_{0};
  std::uint32_t last_count_{0};
  Time first_above_time_{Time::zero()};
  Time drop_next_{Time::zero()};
};

}  // namespace ccc::queue
