// Token-bucket primitives: shaping and policing.
//
// These model the operator mechanisms the paper says dominate allocations
// (§2.1): *shaping* queues a user's excess traffic and releases it at the
// contracted rate (the common "you bought 100 Mbit/s" enforcement); a
// *policer* instead drops excess immediately (Flach et al. found policing on
// 7% of paths). §5.2 also notes that token-bucket burst allowances create
// jitter, which the jitter bench measures.
#pragma once

#include <deque>
#include <memory>

#include "sim/qdisc.hpp"

namespace ccc::queue {

/// The token-bucket accounting itself, shared by shaper and policer.
/// Tokens are in bytes, accrue at `rate`, and cap at `burst_bytes`.
class TokenBucket {
 public:
  /// Starts full. Preconditions: rate > 0, burst >= one full packet.
  TokenBucket(Rate rate, ByteCount burst_bytes);

  /// Accrues tokens up to `now`.
  void refill(Time now);
  /// True if `bytes` tokens are available right now (after refill).
  [[nodiscard]] bool conforms(ByteCount bytes, Time now);
  /// Consumes tokens (may drive the bucket negative if forced=true — not
  /// used by default; shapers only consume when conforming).
  void consume(ByteCount bytes);
  /// Earliest time at which `bytes` tokens will be available.
  [[nodiscard]] Time available_at(ByteCount bytes, Time now);

  [[nodiscard]] Rate rate() const { return rate_; }
  [[nodiscard]] double tokens() const { return tokens_; }

 private:
  Rate rate_;
  ByteCount burst_;
  double tokens_;  // fractional tokens avoid quantization at low rates
  Time last_refill_{Time::zero()};
};

/// Shaper: FIFO + token bucket on the dequeue side. Holds packets until
/// tokens accrue; drops only on buffer overflow.
class TokenBucketShaper : public sim::Qdisc {
 public:
  TokenBucketShaper(Rate rate, ByteCount burst_bytes, ByteCount capacity_bytes);

  bool enqueue(const sim::Packet& pkt, Time now) override;
  std::optional<sim::Packet> dequeue(Time now) override;
  [[nodiscard]] Time next_ready(Time now) const override;
  [[nodiscard]] ByteCount backlog_bytes() const override { return backlog_bytes_; }
  [[nodiscard]] std::size_t backlog_packets() const override { return fifo_.size(); }

 private:
  mutable TokenBucket bucket_;  // refill() mutates during const next_ready()
  ByteCount capacity_bytes_;
  ByteCount backlog_bytes_{0};
  std::deque<sim::Packet> fifo_;
};

/// Policer: token bucket on the *enqueue* side; non-conforming packets are
/// dropped immediately, conforming ones pass into an inner qdisc.
class Policer : public sim::Qdisc {
 public:
  /// Takes ownership of `inner`. Precondition: inner non-null.
  Policer(Rate rate, ByteCount burst_bytes, std::unique_ptr<sim::Qdisc> inner);

  bool enqueue(const sim::Packet& pkt, Time now) override;
  std::optional<sim::Packet> dequeue(Time now) override;
  [[nodiscard]] Time next_ready(Time now) const override;
  [[nodiscard]] ByteCount backlog_bytes() const override { return inner_->backlog_bytes(); }
  [[nodiscard]] std::size_t backlog_packets() const override { return inner_->backlog_packets(); }

  /// Packets dropped by the policer itself (excludes inner-qdisc drops).
  [[nodiscard]] std::uint64_t policed_drops() const { return policed_drops_; }

 private:
  /// Re-derives the combined policer+inner ledger (stats() rolls both up so
  /// the QdiscStats conservation contract holds at this layer too).
  void sync_stats();

  TokenBucket bucket_;
  std::unique_ptr<sim::Qdisc> inner_;
  std::uint64_t policed_drops_{0};
  ByteCount policed_bytes_{0};
};

}  // namespace ccc::queue
