#include "queue/sfq.hpp"

#include <cassert>

namespace ccc::queue {

namespace {
// splitmix64: a fast, well-mixed 64-bit hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

SfqQueue::SfqQueue(ByteCount capacity_bytes, std::uint32_t buckets, std::uint64_t perturb_seed,
                   ByteCount quantum_bytes)
    : buckets_{buckets},
      seed_{perturb_seed},
      inner_{capacity_bytes,
             [this](const sim::Packet& p) { return std::uint64_t{bucket_of(p.flow)}; },
             quantum_bytes} {
  assert(buckets_ > 0);
}

std::uint32_t SfqQueue::bucket_of(sim::FlowId flow) const {
  return static_cast<std::uint32_t>(mix64(flow ^ seed_) % buckets_);
}

bool SfqQueue::enqueue(const sim::Packet& pkt, Time now) {
  const bool admitted = inner_.enqueue(pkt, now);
  stats_ = inner_.stats();
  return admitted;
}

std::optional<sim::Packet> SfqQueue::dequeue(Time now) {
  auto pkt = inner_.dequeue(now);
  stats_ = inner_.stats();
  return pkt;
}

Time SfqQueue::next_ready(Time now) const { return inner_.next_ready(now); }

ByteCount SfqQueue::backlog_bytes() const { return inner_.backlog_bytes(); }

std::size_t SfqQueue::backlog_packets() const { return inner_.backlog_packets(); }

}  // namespace ccc::queue
