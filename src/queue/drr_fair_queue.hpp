// Deficit-round-robin fair queueing (Demers/Keshav/Shenker via Shreedhar &
// Varghese's DRR approximation).
//
// The paper's central §2.1 claim is that "a universal deployment of fair
// queueing would entirely eliminate the role of CCA dynamics in determining
// bandwidth allocations." This qdisc is how we test that claim: keyed
// per-flow it isolates flows from each other; keyed per-user it models
// operator isolation that still allows one user's flows to contend.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/qdisc.hpp"

namespace ccc::queue {

/// What a fair queue treats as one "queue".
enum class FairnessKey {
  kPerFlow,  ///< isolate individual flows (ideal FQ)
  kPerUser,  ///< isolate subscribers; a user's own flows share one queue (§2.1)
};

class DrrFairQueue : public sim::Qdisc {
 public:
  /// Maps a packet to the sub-queue it belongs to.
  using KeyFn = std::function<std::uint64_t(const sim::Packet&)>;

  /// `capacity_bytes`: shared buffer across all sub-queues; when exceeded the
  /// longest sub-queue's tail is dropped (buffer stealing, as in fq_codel).
  /// `quantum_bytes`: DRR quantum, typically one MTU.
  DrrFairQueue(ByteCount capacity_bytes, FairnessKey key, ByteCount quantum_bytes = 1514);

  /// Same, with an arbitrary classification function (used by SFQ to key on
  /// a hash bucket). Precondition: key_fn is callable.
  DrrFairQueue(ByteCount capacity_bytes, KeyFn key_fn, ByteCount quantum_bytes = 1514);

  bool enqueue(const sim::Packet& pkt, Time now) override;
  std::optional<sim::Packet> dequeue(Time now) override;
  [[nodiscard]] Time next_ready(Time now) const override;
  [[nodiscard]] ByteCount backlog_bytes() const override { return backlog_bytes_; }
  [[nodiscard]] std::size_t backlog_packets() const override { return backlog_packets_; }

  /// Number of distinct sub-queues currently backlogged.
  [[nodiscard]] std::size_t active_queues() const { return active_.size(); }

 private:
  struct SubQueue {
    std::deque<sim::Packet> pkts;
    ByteCount bytes{0};
    ByteCount deficit{0};
    bool active{false};
  };

  [[nodiscard]] std::uint64_t key_of(const sim::Packet& pkt) const;
  void drop_from_longest();

  ByteCount capacity_bytes_;
  KeyFn key_fn_;
  ByteCount quantum_;
  ByteCount backlog_bytes_{0};
  std::size_t backlog_packets_{0};
  std::unordered_map<std::uint64_t, SubQueue> queues_;
  std::deque<std::uint64_t> active_;  // round-robin order of backlogged keys
};

}  // namespace ccc::queue
