// DropTail: the plain FIFO queue with tail drop.
//
// This is the discipline under which CCA contention *can* express itself
// (paper §2.1): with a shared FIFO, the bandwidth split between backlogged
// flows is whatever their CCA dynamics produce. Every contention experiment
// uses DropTail as the "no operator intervention" baseline.
#pragma once

#include <deque>

#include "sim/qdisc.hpp"

namespace ccc::queue {

class DropTailQueue : public sim::Qdisc {
 public:
  /// `capacity_bytes`: maximum backlog; arrivals beyond it are dropped.
  /// `ecn_threshold_bytes`: if > 0, ECN-capable packets arriving while the
  /// backlog exceeds this are CE-marked (the classic step-marking AQM that
  /// DCTCP assumes). Precondition: capacity_bytes > 0.
  explicit DropTailQueue(ByteCount capacity_bytes, ByteCount ecn_threshold_bytes = 0);

  bool enqueue(const sim::Packet& pkt, Time now) override;
  std::optional<sim::Packet> dequeue(Time now) override;
  [[nodiscard]] Time next_ready(Time now) const override;
  [[nodiscard]] ByteCount backlog_bytes() const override { return backlog_bytes_; }
  [[nodiscard]] std::size_t backlog_packets() const override { return fifo_.size(); }

  [[nodiscard]] ByteCount capacity_bytes() const { return capacity_bytes_; }

 private:
  ByteCount capacity_bytes_;
  ByteCount ecn_threshold_;
  ByteCount backlog_bytes_{0};
  std::deque<sim::Packet> fifo_;
};

}  // namespace ccc::queue
