// FQ-CoDel (FlowQueue-CoDel), per Hoeiland-Joergensen et al. / RFC 8290.
//
// The combination the paper's §2.1 operator argument leans on hardest in
// practice: stochastic per-flow queues (DRR over a hashed bucket set, with
// the new/old-queue priority trick that gives sparse flows a head start)
// where EACH queue runs its own CoDel sojourn controller. It both isolates
// flows AND keeps standing queues short — Linux's default qdisc since 2016
// and the baseline AQM of the BBRv3/WiFi study the sweep matrix replays.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <vector>

#include "sim/qdisc.hpp"

namespace ccc::queue {

struct FqCoDelConfig {
  /// Shared buffer across all sub-queues; when exceeded, packets are dropped
  /// from the head of the currently fattest queue (buffer stealing, RFC 8290
  /// §4.1 / Linux fq_codel_drop).
  ByteCount capacity_bytes{0};
  std::uint32_t n_queues{1024};    ///< hash buckets (Linux default)
  ByteCount quantum_bytes{1514};   ///< DRR quantum, one MTU
  Time target{Time::ms(5)};        ///< CoDel target sojourn
  Time interval{Time::ms(100)};    ///< CoDel interval
  std::uint64_t hash_seed{0};      ///< salts the flow->bucket hash
};

class FqCoDelQueue : public sim::Qdisc {
 public:
  explicit FqCoDelQueue(FqCoDelConfig cfg);
  /// Convenience: defaults with the given shared buffer.
  explicit FqCoDelQueue(ByteCount capacity_bytes)
      : FqCoDelQueue{FqCoDelConfig{.capacity_bytes = capacity_bytes}} {}

  bool enqueue(const sim::Packet& pkt, Time now) override;
  std::optional<sim::Packet> dequeue(Time now) override;
  [[nodiscard]] Time next_ready(Time now) const override;
  [[nodiscard]] ByteCount backlog_bytes() const override { return backlog_bytes_; }
  [[nodiscard]] std::size_t backlog_packets() const override { return backlog_packets_; }

  /// Distinct buckets currently backlogged (telemetry / tests).
  [[nodiscard]] std::size_t active_queues() const {
    return new_queues_.size() + old_queues_.size();
  }
  [[nodiscard]] std::uint32_t bucket_of(sim::FlowId flow) const;

 private:
  struct Timestamped {
    sim::Packet pkt;
    Time enqueued_at;
  };

  /// One hashed sub-queue: its FIFO, DRR deficit, and a private CoDel
  /// dropping-state machine (RFC 8290 §4.2: "each queue runs CoDel").
  struct SubQueue {
    std::deque<Timestamped> fifo;
    ByteCount bytes{0};
    ByteCount deficit{0};
    bool on_list{false};  ///< linked into new_queues_ or old_queues_
    // CoDel state (same variables as CoDelQueue; per-queue here).
    bool dropping{false};
    std::uint32_t count{0};
    std::uint32_t last_count{0};
    Time first_above_time{Time::zero()};
    Time drop_next{Time::zero()};
  };

  /// CoDel head-of-queue processing for one sub-queue: drops/marks per the
  /// control law and returns the packet to hand to DRR, or nullopt if the
  /// queue drained entirely. Updates the shared stats ledger.
  std::optional<sim::Packet> codel_dequeue(SubQueue& q, Time now);
  [[nodiscard]] Time control_law(Time t, std::uint32_t count) const;
  std::optional<Timestamped> pop_head(SubQueue& q);
  /// Buffer stealing: drop one packet from the head of the fattest queue.
  void drop_from_fattest(Time now);

  FqCoDelConfig cfg_;
  std::vector<SubQueue> queues_;
  std::list<std::uint32_t> new_queues_;  ///< sparse-flow priority list
  std::list<std::uint32_t> old_queues_;
  ByteCount backlog_bytes_{0};
  std::size_t backlog_packets_{0};
};

}  // namespace ccc::queue
