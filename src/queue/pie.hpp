// PIE (Proportional Integral controller Enhanced), per Pan et al. /
// RFC 8033.
//
// The cable-modem AQM (DOCSIS 3.1 mandates a PIE variant): instead of
// CoDel's head-of-queue sojourn test it maintains a drop PROBABILITY,
// updated every t_update by a PI controller on the estimated queueing
// delay, and applies it at enqueue. Completes the AQM axis of the sweep
// matrix (DropTail / CoDel / FQ-CoDel / PIE) so contention outcomes can be
// compared across the deployed-AQM spectrum.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/qdisc.hpp"
#include "util/rng.hpp"

namespace ccc::queue {

struct PieConfig {
  ByteCount capacity_bytes{0};
  Time target{Time::ms(15)};        ///< QDELAY_REF (RFC 8033 default)
  Time t_update{Time::ms(15)};      ///< control-law update period
  double alpha{0.125};              ///< proportional gain, 1/s
  double beta{1.25};                ///< integral gain, 1/s
  Time max_burst{Time::ms(150)};    ///< initial burst allowance
  /// Below this drop probability, ECN-capable packets are marked instead of
  /// dropped (RFC 8033 §5.1 mark_ecnth).
  double mark_ecnth{0.1};
  /// Seed for the enqueue-time random drop decision. Runs with equal seeds
  /// are byte-identical; the sweep derives it from the cell seed.
  std::uint64_t seed{0x9e3779b9};
};

class PieQueue : public sim::Qdisc {
 public:
  explicit PieQueue(PieConfig cfg);
  explicit PieQueue(ByteCount capacity_bytes)
      : PieQueue{PieConfig{.capacity_bytes = capacity_bytes}} {}

  bool enqueue(const sim::Packet& pkt, Time now) override;
  std::optional<sim::Packet> dequeue(Time now) override;
  [[nodiscard]] Time next_ready(Time now) const override;
  [[nodiscard]] ByteCount backlog_bytes() const override { return backlog_bytes_; }
  [[nodiscard]] std::size_t backlog_packets() const override { return fifo_.size(); }

  /// Current drop probability (telemetry / tests).
  [[nodiscard]] double drop_probability() const { return drop_prob_; }
  /// Current queueing-delay estimate.
  [[nodiscard]] Time qdelay_estimate() const { return qdelay_; }

 private:
  struct Timestamped {
    sim::Packet pkt;
    Time enqueued_at;
  };

  /// Runs the periodic control-law update(s) owed as of `now`. Called
  /// lazily from enqueue/dequeue — qdiscs are not clock-driven objects.
  void maybe_update(Time now);
  /// The RFC 8033 §5.1 early-drop decision for an arriving packet.
  [[nodiscard]] bool should_early_drop(const sim::Packet& pkt, Time now);

  PieConfig cfg_;
  Rng rng_;
  std::deque<Timestamped> fifo_;
  ByteCount backlog_bytes_{0};

  double drop_prob_{0.0};
  Time qdelay_{Time::zero()};      ///< latest delay estimate
  Time qdelay_old_{Time::zero()};  ///< previous estimate (integral term)
  Time burst_allowance_{Time::zero()};
  Time next_update_{Time::zero()};
  bool started_{false};

  // Departure-rate estimation (RFC 8033 §5.2): bytes drained since the
  // measurement cycle began over the cycle's wall time.
  Time dq_start_{Time::zero()};
  ByteCount dq_count_{0};
  double avg_drain_bytes_per_sec_{0.0};
  static constexpr ByteCount kDqThreshold = 16 * 1024;  // RFC DQ_THRESHOLD
};

}  // namespace ccc::queue
