#include "queue/token_bucket.hpp"

#include <cassert>
#include <cmath>

namespace ccc::queue {

TokenBucket::TokenBucket(Rate rate, ByteCount burst_bytes)
    : rate_{rate}, burst_{burst_bytes}, tokens_{static_cast<double>(burst_bytes)} {
  assert(rate_.to_bps() > 0.0);
  assert(burst_ > 0);
}

void TokenBucket::refill(Time now) {
  if (now <= last_refill_) return;
  tokens_ += rate_.bytes_per_sec() * (now - last_refill_).to_sec();
  tokens_ = std::min(tokens_, static_cast<double>(burst_));
  last_refill_ = now;
}

bool TokenBucket::conforms(ByteCount bytes, Time now) {
  refill(now);
  return tokens_ >= static_cast<double>(bytes);
}

void TokenBucket::consume(ByteCount bytes) { tokens_ -= static_cast<double>(bytes); }

Time TokenBucket::available_at(ByteCount bytes, Time now) {
  refill(now);
  const double deficit = static_cast<double>(bytes) - tokens_;
  if (deficit <= 0.0) return now;
  // +1 ns: Time::sec truncates toward zero, so without the bump the caller
  // could poll at the returned instant and find the tokens still a hair
  // short, spinning forever.
  return now + Time::sec(deficit / rate_.bytes_per_sec()) + Time::ns(1);
}

TokenBucketShaper::TokenBucketShaper(Rate rate, ByteCount burst_bytes, ByteCount capacity_bytes)
    : bucket_{rate, burst_bytes}, capacity_bytes_{capacity_bytes} {
  assert(capacity_bytes_ > 0);
}

bool TokenBucketShaper::enqueue(const sim::Packet& pkt, Time /*now*/) {
  ++stats_.enqueued_packets;  // offered (see QdiscStats contract)
  if (backlog_bytes_ + pkt.size_bytes > capacity_bytes_) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += pkt.size_bytes;
    return false;
  }
  fifo_.push_back(pkt);
  backlog_bytes_ += pkt.size_bytes;
  return true;
}

std::optional<sim::Packet> TokenBucketShaper::dequeue(Time now) {
  if (fifo_.empty()) return std::nullopt;
  const sim::Packet& head = fifo_.front();
  if (!bucket_.conforms(head.size_bytes, now)) return std::nullopt;
  bucket_.consume(head.size_bytes);
  sim::Packet pkt = head;
  fifo_.pop_front();
  backlog_bytes_ -= pkt.size_bytes;
  ++stats_.dequeued_packets;
  return pkt;
}

Time TokenBucketShaper::next_ready(Time now) const {
  if (fifo_.empty()) return Time::never();
  return bucket_.available_at(fifo_.front().size_bytes, now);
}

Policer::Policer(Rate rate, ByteCount burst_bytes, std::unique_ptr<sim::Qdisc> inner)
    : bucket_{rate, burst_bytes}, inner_{std::move(inner)} {
  assert(inner_ != nullptr);
}

void Policer::sync_stats() {
  // The policer's ledger folds the inner qdisc's in, so every packet offered
  // to the policer is accounted exactly once: policed drop, inner drop
  // (at admission or later, e.g. a CoDel head drop), dequeue, or backlog.
  const sim::QdiscStats& in = inner_->stats();
  stats_.dequeued_packets = in.dequeued_packets;
  stats_.dropped_packets = policed_drops_ + in.dropped_packets;
  stats_.dropped_bytes = policed_bytes_ + in.dropped_bytes;
  stats_.ecn_marked_packets = in.ecn_marked_packets;
}

bool Policer::enqueue(const sim::Packet& pkt, Time now) {
  ++stats_.enqueued_packets;  // offered (see QdiscStats contract)
  bool admitted = false;
  if (bucket_.conforms(pkt.size_bytes, now)) {
    bucket_.consume(pkt.size_bytes);
    admitted = inner_->enqueue(pkt, now);
  } else {
    ++policed_drops_;
    policed_bytes_ += pkt.size_bytes;
  }
  sync_stats();
  return admitted;
}

std::optional<sim::Packet> Policer::dequeue(Time now) {
  auto pkt = inner_->dequeue(now);
  sync_stats();
  return pkt;
}

Time Policer::next_ready(Time now) const { return inner_->next_ready(now); }

}  // namespace ccc::queue
