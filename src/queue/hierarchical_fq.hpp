// Hierarchical weighted fair queueing — an executable "Recursive Congestion
// Shares" prototype (paper §5.3, ref [77]).
//
// The paper's closing argument: if CCA dynamics no longer set bandwidth
// allocations, the Internet needs a new model, and it proposes shares that
// follow the network's *economic arrangements* recursively — an ISP divides
// a link among customers by what they pay, a customer divides its share
// among its services, and so on. This qdisc realizes that model: classes
// form a weight-annotated tree; at every level, service divides among
// backlogged children in weight proportion, and unused share falls through
// to busy siblings (work conservation).
//
// The scheduler is hierarchical Start-time Fair Queueing (Goyal et al.):
// each interior node serves the active child with the smallest virtual start
// tag, and a child consuming service L advances its tags by L/weight. SFQ's
// tag algebra is robust to the rapid empty/refill churn closed-loop TCP
// traffic produces — deficit-round-robin variants leak or gift service on
// every churn event, which measurably skews class shares.
//
// Leaves are selected per packet by a classifier function, so the same tree
// can encode ISP->subscriber->app, org->site->flow, or any other recursive
// economic arrangement. Each leaf also owns a private buffer budget sized by
// its end-to-end share: one class's burst can never evict another's packets.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/qdisc.hpp"

namespace ccc::queue {

/// Identifies a class (interior or leaf) in the share tree.
using ClassId = std::uint32_t;
inline constexpr ClassId kRootClass = 0;

class HierarchicalFairQueue : public sim::Qdisc {
 public:
  /// Maps a packet to the leaf class that owns it. Packets mapping to an
  /// unknown or non-leaf class are dropped (and counted).
  using Classifier = std::function<ClassId(const sim::Packet&)>;

  /// `capacity_bytes`: total buffer, divided among leaves in proportion to
  /// their end-to-end weight shares.
  HierarchicalFairQueue(ByteCount capacity_bytes, Classifier classifier);

  /// Adds a class under `parent` with proportional `weight` (> 0).
  /// The root (kRootClass) always exists. Returns the new class id.
  /// Throws std::invalid_argument on unknown parent or non-positive weight.
  ClassId add_class(ClassId parent, double weight, std::string name = {});

  bool enqueue(const sim::Packet& pkt, Time now) override;
  std::optional<sim::Packet> dequeue(Time now) override;
  [[nodiscard]] Time next_ready(Time now) const override;
  [[nodiscard]] ByteCount backlog_bytes() const override { return backlog_bytes_; }
  [[nodiscard]] std::size_t backlog_packets() const override { return backlog_packets_; }

  /// Bytes dequeued per class (includes descendants' traffic for interior
  /// classes) — the observable the RCS bench reports.
  [[nodiscard]] ByteCount bytes_served(ClassId cls) const;
  /// Packets whose classifier result named no known leaf.
  [[nodiscard]] std::uint64_t unclassified_drops() const { return unclassified_drops_; }
  [[nodiscard]] const std::string& class_name(ClassId cls) const;
  /// A leaf's end-to-end weight share (product of weight fractions on its
  /// path) — also the fraction of the buffer it owns.
  [[nodiscard]] double leaf_share(ClassId leaf) const;

 private:
  struct Node {
    ClassId parent{kRootClass};
    double weight{1.0};
    std::string name;
    std::vector<ClassId> children;
    bool is_leaf{true};  // until a child is added

    // SFQ state. As a server: vtime. As a child: [start, finish) tags of the
    // service quantum in progress.
    double vtime{0.0};
    double start{0.0};
    double finish{0.0};
    bool active{false};
    std::vector<ClassId> active_children;

    ByteCount backlog{0};  ///< bytes in this subtree
    ByteCount served{0};

    // Leaf-only FIFO and its cached buffer budget (0 = stale).
    std::deque<sim::Packet> fifo;
    ByteCount budget{0};
  };

  /// Walks up from `leaf`, activating each inactive node in its parent's
  /// active set with a resynchronized start tag.
  void activate_path(ClassId leaf);
  /// Min-start-tag selection from `node` down to a leaf; kRootClass if none.
  /// Pure: mutates nothing (stale children are skipped, not retired).
  [[nodiscard]] ClassId select_leaf(ClassId node) const;
  [[nodiscard]] ByteCount leaf_budget(ClassId leaf);

  ByteCount capacity_bytes_;
  Classifier classifier_;
  ByteCount backlog_bytes_{0};
  std::size_t backlog_packets_{0};
  std::uint64_t unclassified_drops_{0};
  std::vector<Node> nodes_;  // index == ClassId
};

}  // namespace ccc::queue
