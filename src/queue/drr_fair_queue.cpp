#include "queue/drr_fair_queue.hpp"

#include <algorithm>
#include <cassert>

namespace ccc::queue {

DrrFairQueue::DrrFairQueue(ByteCount capacity_bytes, FairnessKey key, ByteCount quantum_bytes)
    : DrrFairQueue{capacity_bytes,
                   key == FairnessKey::kPerFlow
                       ? KeyFn{[](const sim::Packet& p) { return std::uint64_t{p.flow}; }}
                       : KeyFn{[](const sim::Packet& p) { return std::uint64_t{p.user}; }},
                   quantum_bytes} {}

DrrFairQueue::DrrFairQueue(ByteCount capacity_bytes, KeyFn key_fn, ByteCount quantum_bytes)
    : capacity_bytes_{capacity_bytes}, key_fn_{std::move(key_fn)}, quantum_{quantum_bytes} {
  assert(capacity_bytes_ > 0 && quantum_ > 0);
  assert(key_fn_ != nullptr);
}

std::uint64_t DrrFairQueue::key_of(const sim::Packet& pkt) const { return key_fn_(pkt); }

bool DrrFairQueue::enqueue(const sim::Packet& pkt, Time /*now*/) {
  auto& q = queues_[key_of(pkt)];
  q.pkts.push_back(pkt);
  q.bytes += pkt.size_bytes;
  backlog_bytes_ += pkt.size_bytes;
  ++backlog_packets_;
  ++stats_.enqueued_packets;  // offered == admitted here: DRR evicts after admitting
  if (!q.active) {
    q.active = true;
    active_.push_back(key_of(pkt));
  }
  bool admitted = true;
  while (backlog_bytes_ > capacity_bytes_) {
    drop_from_longest();
    admitted = false;  // conservatively report pressure (the drop may have hit us)
  }
  return admitted;
}

void DrrFairQueue::drop_from_longest() {
  // Find the longest sub-queue by bytes and drop its tail packet. This keeps
  // a flooding flow from starving well-behaved ones of buffer space.
  std::uint64_t victim = 0;
  ByteCount longest = -1;
  for (const auto& [key, q] : queues_) {
    if (q.bytes > longest) {
      longest = q.bytes;
      victim = key;
    }
  }
  auto& q = queues_.at(victim);
  assert(!q.pkts.empty());
  const sim::Packet dropped = q.pkts.back();
  q.pkts.pop_back();
  q.bytes -= dropped.size_bytes;
  backlog_bytes_ -= dropped.size_bytes;
  --backlog_packets_;
  ++stats_.dropped_packets;
  stats_.dropped_bytes += dropped.size_bytes;
  // If the victim queue emptied, it will be lazily removed from active_ in
  // dequeue(); leaving the stale key is harmless.
}

std::optional<sim::Packet> DrrFairQueue::dequeue(Time /*now*/) {
  while (!active_.empty()) {
    const std::uint64_t key = active_.front();
    auto it = queues_.find(key);
    if (it == queues_.end() || it->second.pkts.empty()) {
      // Stale entry left by drop_from_longest(); retire it.
      if (it != queues_.end()) it->second.active = false;
      active_.pop_front();
      continue;
    }
    SubQueue& q = it->second;
    if (q.deficit < q.pkts.front().size_bytes) {
      // Out of deficit: replenish and move to the back of the rotation.
      q.deficit += quantum_;
      active_.pop_front();
      active_.push_back(key);
      continue;
    }
    sim::Packet pkt = q.pkts.front();
    q.pkts.pop_front();
    q.bytes -= pkt.size_bytes;
    q.deficit -= pkt.size_bytes;
    backlog_bytes_ -= pkt.size_bytes;
    --backlog_packets_;
    ++stats_.dequeued_packets;
    if (q.pkts.empty()) {
      // Per DRR: an emptied queue forfeits its deficit and leaves the list.
      q.deficit = 0;
      q.active = false;
      active_.pop_front();
    }
    return pkt;
  }
  return std::nullopt;
}

Time DrrFairQueue::next_ready(Time now) const {
  return backlog_packets_ == 0 ? Time::never() : now;
}

}  // namespace ccc::queue
