#include "queue/fq_codel.hpp"

#include <cassert>
#include <cmath>

namespace ccc::queue {

namespace {
// splitmix64 finalizer — the same flow->bucket mix SFQ uses.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

FqCoDelQueue::FqCoDelQueue(FqCoDelConfig cfg) : cfg_{cfg}, queues_(cfg.n_queues) {
  assert(cfg_.capacity_bytes > 0);
  assert(cfg_.n_queues > 0);
  assert(cfg_.quantum_bytes > 0);
  assert(Time::zero() < cfg_.target && cfg_.target < cfg_.interval);
}

std::uint32_t FqCoDelQueue::bucket_of(sim::FlowId flow) const {
  return static_cast<std::uint32_t>(mix64(flow ^ cfg_.hash_seed) % cfg_.n_queues);
}

std::optional<FqCoDelQueue::Timestamped> FqCoDelQueue::pop_head(SubQueue& q) {
  if (q.fifo.empty()) return std::nullopt;
  Timestamped head = q.fifo.front();
  q.fifo.pop_front();
  q.bytes -= head.pkt.size_bytes;
  backlog_bytes_ -= head.pkt.size_bytes;
  --backlog_packets_;
  return head;
}

void FqCoDelQueue::drop_from_fattest(Time now) {
  (void)now;
  SubQueue* fattest = nullptr;
  for (auto& q : queues_) {
    if (!q.fifo.empty() && (fattest == nullptr || q.bytes > fattest->bytes)) fattest = &q;
  }
  if (fattest == nullptr) return;
  auto victim = pop_head(*fattest);
  ++stats_.dropped_packets;
  stats_.dropped_bytes += victim->pkt.size_bytes;
  // A queue emptied by stealing stays on its DRR list; dequeue() unlinks
  // empty queues when it reaches them, keeping list handling in one place.
}

bool FqCoDelQueue::enqueue(const sim::Packet& pkt, Time now) {
  ++stats_.enqueued_packets;  // offered (see QdiscStats contract)
  SubQueue& q = queues_[bucket_of(pkt.flow)];
  q.fifo.push_back({pkt, now});
  q.bytes += pkt.size_bytes;
  backlog_bytes_ += pkt.size_bytes;
  ++backlog_packets_;
  if (!q.on_list) {
    // A newly-active queue enters the new-queue list with a fresh quantum:
    // the sparse-flow fast path (RFC 8290 §1.3).
    q.on_list = true;
    q.deficit = cfg_.quantum_bytes;
    new_queues_.push_back(static_cast<std::uint32_t>(&q - queues_.data()));
  }
  // Buffer stealing instead of tail drop: the arriving packet is admitted
  // and the fattest queue pays. (May evict the packet just added if its own
  // queue is the fattest.)
  while (backlog_bytes_ > cfg_.capacity_bytes) drop_from_fattest(now);
  return true;
}

Time FqCoDelQueue::control_law(Time t, std::uint32_t count) const {
  return t + cfg_.interval * (1.0 / std::sqrt(static_cast<double>(count == 0 ? 1 : count)));
}

std::optional<sim::Packet> FqCoDelQueue::codel_dequeue(SubQueue& q, Time now) {
  auto head = pop_head(q);
  if (!head) {
    q.dropping = false;
    return std::nullopt;
  }

  auto sojourn_ok = [&](const Timestamped& ts) { return (now - ts.enqueued_at) < cfg_.target; };
  auto should_drop = [&](const Timestamped& ts) -> bool {
    // The standing-queue test uses THIS queue's backlog: one bulk flow must
    // not put a sparse flow's queue into dropping state (contrast plain
    // CoDel, where all flows share one sojourn controller).
    if (sojourn_ok(ts) || q.bytes < sim::kFullPacket) {
      q.first_above_time = Time::zero();
      return false;
    }
    if (q.first_above_time == Time::zero()) {
      q.first_above_time = now + cfg_.interval;
      return false;
    }
    return now >= q.first_above_time;
  };
  auto mark = [&](Timestamped& ts) {
    ts.pkt.ecn_marked = true;
    ++stats_.ecn_marked_packets;
  };

  if (q.dropping) {
    if (!should_drop(*head)) {
      q.dropping = false;
      return head->pkt;
    }
    while (q.dropping && now >= q.drop_next) {
      ++q.count;
      if (head->pkt.ecn_capable) {
        mark(*head);
        q.drop_next = control_law(q.drop_next, q.count);
        break;  // marked packets are still delivered
      }
      ++stats_.dropped_packets;
      stats_.dropped_bytes += head->pkt.size_bytes;
      head = pop_head(q);
      if (!head || !should_drop(*head)) {
        q.dropping = false;
        break;
      }
      q.drop_next = control_law(q.drop_next, q.count);
    }
    if (!head) return std::nullopt;
    return head->pkt;
  }

  if (should_drop(*head)) {
    q.dropping = true;
    q.count = (q.count > 2 && q.count - q.last_count < q.count / 16) ? q.count - 2 : 1;
    q.last_count = q.count;
    q.drop_next = control_law(now, q.count);
    if (head->pkt.ecn_capable) {
      mark(*head);
    } else {
      ++stats_.dropped_packets;
      stats_.dropped_bytes += head->pkt.size_bytes;
      head = pop_head(q);
      if (!head) return std::nullopt;
    }
  }
  return head->pkt;
}

std::optional<sim::Packet> FqCoDelQueue::dequeue(Time now) {
  // RFC 8290 §4.2: serve new queues first; an exhausted or emptied new queue
  // migrates to the old-queue list rather than straight out (so a sparse
  // flow that sends again immediately does not re-enter the priority list).
  for (;;) {
    const bool from_new = !new_queues_.empty();
    auto& list = from_new ? new_queues_ : old_queues_;
    if (list.empty()) return std::nullopt;
    const std::uint32_t idx = list.front();
    SubQueue& q = queues_[idx];

    if (q.deficit <= 0) {
      q.deficit += cfg_.quantum_bytes;
      list.pop_front();
      old_queues_.push_back(idx);
      continue;
    }
    auto pkt = codel_dequeue(q, now);
    if (!pkt) {
      // Queue drained (possibly via CoDel drops). New->old keeps a returning
      // sparse flow honest; an empty old queue leaves the scheduler.
      list.pop_front();
      if (from_new) {
        old_queues_.push_back(idx);
      } else {
        q.on_list = false;
      }
      continue;
    }
    q.deficit -= pkt->size_bytes;
    ++stats_.dequeued_packets;
    return pkt;
  }
}

Time FqCoDelQueue::next_ready(Time now) const {
  return backlog_packets_ == 0 ? Time::never() : now;
}

}  // namespace ccc::queue
