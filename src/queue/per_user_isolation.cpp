#include "queue/per_user_isolation.hpp"

#include <cassert>

namespace ccc::queue {

PerUserIsolation::PerUserIsolation(Rate default_contract, ByteCount burst_bytes,
                                   ByteCount per_user_capacity_bytes)
    : default_contract_{default_contract},
      burst_{burst_bytes},
      per_user_capacity_{per_user_capacity_bytes} {
  assert(default_contract_.to_bps() > 0.0);
  assert(burst_ > 0 && per_user_capacity_ > 0);
}

void PerUserIsolation::set_contract(sim::UserId user, Rate rate) {
  assert(rate.to_bps() > 0.0);
  contracts_[user] = rate;
  // If the user's queue already exists its bucket keeps the old rate; in our
  // scenarios contracts are set before traffic starts, so assert that.
  assert(!users_.contains(user) && "set_contract must precede the user's first packet");
}

PerUserIsolation::UserQueue& PerUserIsolation::queue_for(sim::UserId user) {
  auto it = users_.find(user);
  if (it == users_.end()) {
    const auto c = contracts_.find(user);
    const Rate rate = c == contracts_.end() ? default_contract_ : c->second;
    it = users_.emplace(user, UserQueue{TokenBucket{rate, burst_}}).first;
    rr_order_.push_back(user);
  }
  return it->second;
}

bool PerUserIsolation::enqueue(const sim::Packet& pkt, Time /*now*/) {
  ++stats_.enqueued_packets;  // offered (see QdiscStats contract)
  UserQueue& q = queue_for(pkt.user);
  if (q.bytes + pkt.size_bytes > per_user_capacity_) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += pkt.size_bytes;
    return false;
  }
  q.pkts.push_back(pkt);
  q.bytes += pkt.size_bytes;
  backlog_bytes_ += pkt.size_bytes;
  ++backlog_packets_;
  return true;
}

std::optional<sim::Packet> PerUserIsolation::dequeue(Time now) {
  // One full rotation over users, starting at the round-robin cursor; serve
  // the first user whose head packet conforms to their contract.
  for (std::size_t scanned = 0; scanned < rr_order_.size(); ++scanned) {
    const sim::UserId user = rr_order_.front();
    rr_order_.pop_front();
    rr_order_.push_back(user);
    UserQueue& q = users_.at(user);
    if (q.pkts.empty()) continue;
    if (!q.bucket.conforms(q.pkts.front().size_bytes, now)) continue;
    sim::Packet pkt = q.pkts.front();
    q.bucket.consume(pkt.size_bytes);
    q.pkts.pop_front();
    q.bytes -= pkt.size_bytes;
    backlog_bytes_ -= pkt.size_bytes;
    --backlog_packets_;
    ++stats_.dequeued_packets;
    return pkt;
  }
  return std::nullopt;
}

Time PerUserIsolation::next_ready(Time now) const {
  Time earliest = Time::never();
  for (auto& [user, q] : users_) {
    if (q.pkts.empty()) continue;
    const Time t = q.bucket.available_at(q.pkts.front().size_bytes, now);
    earliest = std::min(earliest, t);
  }
  return earliest;
}

}  // namespace ccc::queue
