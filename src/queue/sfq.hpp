// Stochastic fair queueing: DRR over a fixed number of hash buckets.
//
// Real home routers and OS qdiscs rarely keep exact per-flow state; SFQ
// hashes flows into a bounded set of buckets and fair-queues the buckets.
// Colliding flows share a bucket (and thus still contend) — this lets the
// isolation ablation (E1) show the gap between ideal FQ and deployable FQ.
#pragma once

#include <cstdint>
#include <memory>

#include "queue/drr_fair_queue.hpp"
#include "sim/qdisc.hpp"

namespace ccc::queue {

class SfqQueue : public sim::Qdisc {
 public:
  /// `buckets`: number of hash buckets (e.g. 1024 in Linux sfq; small values
  /// provoke collisions on purpose in tests). `perturb_seed` salts the hash.
  SfqQueue(ByteCount capacity_bytes, std::uint32_t buckets, std::uint64_t perturb_seed = 0,
           ByteCount quantum_bytes = 1514);

  bool enqueue(const sim::Packet& pkt, Time now) override;
  std::optional<sim::Packet> dequeue(Time now) override;
  [[nodiscard]] Time next_ready(Time now) const override;
  [[nodiscard]] ByteCount backlog_bytes() const override;
  [[nodiscard]] std::size_t backlog_packets() const override;

  /// The bucket a flow id maps to (exposed for collision tests).
  [[nodiscard]] std::uint32_t bucket_of(sim::FlowId flow) const;

 private:
  std::uint32_t buckets_;
  std::uint64_t seed_;
  DrrFairQueue inner_;  // keyed per-flow; we rewrite flow -> bucket before insert
};

}  // namespace ccc::queue
