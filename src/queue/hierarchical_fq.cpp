#include "queue/hierarchical_fq.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace ccc::queue {

HierarchicalFairQueue::HierarchicalFairQueue(ByteCount capacity_bytes, Classifier classifier)
    : capacity_bytes_{capacity_bytes}, classifier_{std::move(classifier)} {
  assert(capacity_bytes_ > 0);
  assert(classifier_ != nullptr);
  nodes_.push_back(Node{});  // the root
  nodes_[kRootClass].name = "root";
}

ClassId HierarchicalFairQueue::add_class(ClassId parent, double weight, std::string name) {
  if (parent >= nodes_.size()) throw std::invalid_argument{"hfq: unknown parent class"};
  if (!nodes_[parent].fifo.empty()) {
    throw std::invalid_argument{"hfq: parent already carries leaf traffic"};
  }
  if (weight <= 0.0) throw std::invalid_argument{"hfq: weight must be positive"};
  const auto id = static_cast<ClassId>(nodes_.size());
  Node node;
  node.parent = parent;
  node.weight = weight;
  node.name = name.empty() ? "class-" + std::to_string(id) : std::move(name);
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  nodes_[parent].is_leaf = false;
  // Topology changed: every cached leaf budget is stale.
  for (auto& n : nodes_) n.budget = 0;
  return id;
}

double HierarchicalFairQueue::leaf_share(ClassId leaf) const {
  double share = 1.0;
  for (ClassId n = leaf; n != kRootClass; n = nodes_[n].parent) {
    double sibling_weights = 0.0;
    for (ClassId s : nodes_[nodes_[n].parent].children) sibling_weights += nodes_[s].weight;
    share *= nodes_[n].weight / sibling_weights;
  }
  return share;
}

ByteCount HierarchicalFairQueue::leaf_budget(ClassId leaf) {
  Node& node = nodes_[leaf];
  if (node.budget == 0) {
    node.budget = std::max<ByteCount>(
        static_cast<ByteCount>(static_cast<double>(capacity_bytes_) * leaf_share(leaf)),
        4 * 1514);
  }
  return node.budget;
}

ByteCount HierarchicalFairQueue::bytes_served(ClassId cls) const {
  return cls < nodes_.size() ? nodes_[cls].served : 0;
}

const std::string& HierarchicalFairQueue::class_name(ClassId cls) const {
  static const std::string kUnknown = "?";
  return cls < nodes_.size() ? nodes_[cls].name : kUnknown;
}

void HierarchicalFairQueue::activate_path(ClassId leaf) {
  // Walk to the root, inserting each inactive node into its parent's active
  // set. SFQ resync: a (re)activating child starts no earlier than the
  // server's current virtual time — it can neither claim credit from its
  // idle period nor be starved for past overuse.
  for (ClassId n = leaf; n != kRootClass; n = nodes_[n].parent) {
    Node& node = nodes_[n];
    if (node.active) break;  // ancestors are active by induction
    Node& parent = nodes_[node.parent];
    node.start = std::max(parent.vtime, node.finish);
    node.finish = node.start;  // no service charged yet this activation
    node.active = true;
    parent.active_children.push_back(n);
  }
}

bool HierarchicalFairQueue::enqueue(const sim::Packet& pkt, Time /*now*/) {
  ++stats_.enqueued_packets;  // offered (see QdiscStats contract)
  const ClassId cls = classifier_(pkt);
  if (cls == kRootClass || cls >= nodes_.size() || !nodes_[cls].is_leaf) {
    ++unclassified_drops_;
    ++stats_.dropped_packets;
    stats_.dropped_bytes += pkt.size_bytes;
    return false;
  }
  // Per-leaf tail drop against the leaf's private buffer budget: classes
  // cannot evict each other's packets, so closed-loop flows in one class
  // never see loss caused by a burst in another.
  if (nodes_[cls].backlog + pkt.size_bytes > leaf_budget(cls)) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += pkt.size_bytes;
    return false;
  }
  nodes_[cls].fifo.push_back(pkt);
  for (ClassId n = cls;; n = nodes_[n].parent) {
    nodes_[n].backlog += pkt.size_bytes;
    if (n == kRootClass) break;
  }
  backlog_bytes_ += pkt.size_bytes;
  ++backlog_packets_;
  activate_path(cls);
  return true;
}

ClassId HierarchicalFairQueue::select_leaf(ClassId node_id) const {
  const Node& node = nodes_[node_id];
  if (node.is_leaf) return node.fifo.empty() ? kRootClass : node_id;

  ClassId best = kRootClass;
  double best_start = std::numeric_limits<double>::infinity();
  for (ClassId c : node.active_children) {
    const Node& child = nodes_[c];
    if (child.backlog <= 0) continue;  // stale entry; retired on dequeue
    if (child.start < best_start) {
      best_start = child.start;
      best = c;
    }
  }
  if (best == kRootClass) return kRootClass;
  return select_leaf(best);
}

std::optional<sim::Packet> HierarchicalFairQueue::dequeue(Time /*now*/) {
  const ClassId leaf = select_leaf(kRootClass);
  if (leaf == kRootClass) return std::nullopt;

  Node& l = nodes_[leaf];
  sim::Packet pkt = l.fifo.front();
  l.fifo.pop_front();

  // Charge the packet along the path: SFQ tag advance at every (server,
  // child) edge, plus backlog/served accounting; retire emptied nodes.
  for (ClassId n = leaf;; n = nodes_[n].parent) {
    Node& node = nodes_[n];
    node.backlog -= pkt.size_bytes;
    node.served += pkt.size_bytes;
    if (n == kRootClass) break;
    Node& parent = nodes_[node.parent];
    parent.vtime = std::max(parent.vtime, node.start);
    node.finish = node.start + static_cast<double>(pkt.size_bytes) / node.weight;
    node.start = node.finish;
    if (node.backlog <= 0) {
      node.active = false;
      auto& siblings = parent.active_children;
      siblings.erase(std::find(siblings.begin(), siblings.end(), n));
    }
  }
  backlog_bytes_ -= pkt.size_bytes;
  --backlog_packets_;
  ++stats_.dequeued_packets;
  return pkt;
}

Time HierarchicalFairQueue::next_ready(Time now) const {
  return backlog_packets_ == 0 ? Time::never() : now;
}

}  // namespace ccc::queue
