#include "queue/drop_tail.hpp"

#include <cassert>

namespace ccc::queue {

DropTailQueue::DropTailQueue(ByteCount capacity_bytes, ByteCount ecn_threshold_bytes)
    : capacity_bytes_{capacity_bytes}, ecn_threshold_{ecn_threshold_bytes} {
  assert(capacity_bytes_ > 0);
}

bool DropTailQueue::enqueue(const sim::Packet& pkt, Time /*now*/) {
  ++stats_.enqueued_packets;  // offered (see QdiscStats contract)
  if (backlog_bytes_ + pkt.size_bytes > capacity_bytes_) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += pkt.size_bytes;
    return false;
  }
  fifo_.push_back(pkt);
  if (ecn_threshold_ > 0 && pkt.ecn_capable && backlog_bytes_ >= ecn_threshold_) {
    fifo_.back().ecn_marked = true;
    ++stats_.ecn_marked_packets;
  }
  backlog_bytes_ += pkt.size_bytes;
  return true;
}

std::optional<sim::Packet> DropTailQueue::dequeue(Time /*now*/) {
  if (fifo_.empty()) return std::nullopt;
  sim::Packet pkt = fifo_.front();
  fifo_.pop_front();
  backlog_bytes_ -= pkt.size_bytes;
  ++stats_.dequeued_packets;
  return pkt;
}

Time DropTailQueue::next_ready(Time now) const {
  return fifo_.empty() ? Time::never() : now;
}

}  // namespace ccc::queue
