// DCTCP (Alizadeh et al., SIGCOMM '10): ECN-proportional congestion control.
//
// The paper's §2.3 datacenter discussion cites DCTCP as the classic example
// of a cloud provider choosing its own bandwidth-allocation mechanism inside
// a single administrative domain. DCTCP reduces the window in proportion to
// the *fraction* of ECN-marked bytes (alpha), keeping queues a few packets
// deep — contention resolved by an in-network signal, not loss.
#pragma once

#include "cca/cca.hpp"

namespace ccc::cca {

class Dctcp : public CongestionControl {
 public:
  /// `g`: EWMA gain for the marked-fraction estimate (RFC 8257 suggests
  /// 1/16).
  explicit Dctcp(ByteCount initial_cwnd = kInitialWindowBytes, ByteCount mss = sim::kMss,
                 double g = 1.0 / 16.0);

  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  void on_rto(Time now) override;
  void on_idle_restart(Time now) override;
  [[nodiscard]] ByteCount cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] std::string_view name() const override { return "dctcp"; }
  [[nodiscard]] bool wants_ecn() const override { return true; }

  /// Current marked-fraction estimate alpha in [0, 1].
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  void end_observation_window(Time now);

  ByteCount mss_;
  double g_;
  ByteCount cwnd_;
  ByteCount ssthresh_;
  double alpha_{0.0};

  // Per-window (one RTT of ACKed bytes) mark accounting.
  ByteCount window_acked_{0};
  ByteCount window_marked_{0};
  ByteCount window_target_{0};  ///< bytes to observe before updating alpha
  bool cut_this_window_{false};
  ByteCount ca_acc_{0};
};

}  // namespace ccc::cca
