#include "cca/vegas.hpp"

#include <algorithm>
#include <limits>

namespace ccc::cca {

Vegas::Vegas(ByteCount initial_cwnd, ByteCount mss, double alpha_pkts, double beta_pkts)
    : mss_{mss},
      alpha_{alpha_pkts},
      beta_{beta_pkts},
      cwnd_{initial_cwnd},
      ssthresh_{std::numeric_limits<ByteCount>::max()} {}

void Vegas::on_ack(const AckEvent& ev) {
  if (ev.rtt_sample > Time::zero()) {
    base_rtt_ = std::min(base_rtt_, ev.rtt_sample);
    srtt_ = srtt_ == Time::zero() ? ev.rtt_sample
                                  : Time::ns(static_cast<std::int64_t>(
                                        0.875 * static_cast<double>(srtt_.count_ns()) +
                                        0.125 * static_cast<double>(ev.rtt_sample.count_ns())));
  }
  if (ev.in_recovery || base_rtt_ == Time::never() || srtt_ == Time::zero()) return;

  // Adjust once per RTT, as Vegas specifies.
  if (ev.now - last_adjust_ < srtt_) return;
  last_adjust_ = ev.now;

  // diff = (expected - actual) * BaseRTT, in packets: how many of our
  // packets are sitting in queues.
  const double cwnd_pkts = static_cast<double>(cwnd_) / static_cast<double>(mss_);
  const double expected = cwnd_pkts / base_rtt_.to_sec();
  const double actual = cwnd_pkts / srtt_.to_sec();
  const double diff_pkts = (expected - actual) * base_rtt_.to_sec();

  if (cwnd_ < ssthresh_) {
    // Vegas slow start: double only every other RTT, and exit when diff
    // exceeds one packet (we're starting to queue).
    if (diff_pkts > 1.0) {
      ssthresh_ = cwnd_;
    } else {
      cwnd_ += cwnd_;
      return;
    }
  }

  if (diff_pkts < alpha_) {
    cwnd_ += mss_;  // too little presence in the queue: speed up
  } else if (diff_pkts > beta_) {
    cwnd_ = std::max<ByteCount>(cwnd_ - mss_, 2 * mss_);  // backing off
  }
  // else: in the [alpha, beta] band — hold.
}

void Vegas::on_loss(const LossEvent& /*ev*/) {
  // Vegas halves like Reno on loss (it predates ECN; loss is still binding).
  cwnd_ = std::max<ByteCount>(cwnd_ / 2, 2 * mss_);
  ssthresh_ = cwnd_;
}

void Vegas::on_rto(Time /*now*/) {
  ssthresh_ = std::max<ByteCount>(cwnd_ / 2, 2 * mss_);
  cwnd_ = mss_;
}

}  // namespace ccc::cca
