#include "cca/bbr.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace ccc::cca {

Bbr::Bbr(ByteCount initial_cwnd, ByteCount mss) : mss_{mss}, initial_cwnd_{initial_cwnd} {}

void Bbr::bind_metrics(telemetry::MetricRegistry& reg, const std::string& prefix) {
  mode_transitions_ = &reg.counter(prefix + ".mode_transitions");
  mode_trace_ = &reg.trace(prefix + ".mode", Time::zero());
  mode_trace_->record(Time::zero(), static_cast<double>(state_));
}

void Bbr::enter_state(State next, Time now) {
  if (next == state_) return;
  state_ = next;
  if (mode_transitions_ != nullptr) {
    mode_transitions_->inc();
    mode_trace_->record(now, static_cast<double>(next));
  }
}

Rate Bbr::btlbw() const {
  Rate best = Rate::zero();
  for (const auto& [round, r] : bw_samples_) best = std::max(best, r);
  return best;
}

ByteCount Bbr::bdp_with_gain(double gain) const {
  if (min_rtt_ == Time::never() || btlbw().is_zero()) return initial_cwnd_;
  const auto bdp = static_cast<ByteCount>(btlbw().bytes_per_sec() * min_rtt_.to_sec() * gain);
  return std::max<ByteCount>(bdp, 4 * mss_);
}

ByteCount Bbr::cwnd_bytes() const {
  if (state_ == State::kProbeRtt) return 4 * mss_;
  if (!filled_pipe_ && btlbw().is_zero()) return initial_cwnd_;
  return bdp_with_gain(kCwndGain);
}

Rate Bbr::pacing_rate() const {
  const Rate bw = btlbw();
  if (bw.is_zero()) {
    // No model yet: pace the initial window over a nominal 1 ms to avoid a
    // burst, i.e. effectively unpaced early startup.
    return Rate::zero();
  }
  return bw * pacing_gain_;
}

void Bbr::start_round(Time now) {
  ++round_;
  round_started_ = now;
}

void Bbr::update_model(const AckEvent& ev) {
  // RTT model.
  if (ev.rtt_sample > Time::zero()) {
    srtt_ = srtt_ == Time::zero() ? ev.rtt_sample
                                  : Time::ns(static_cast<std::int64_t>(
                                        0.875 * static_cast<double>(srtt_.count_ns()) +
                                        0.125 * static_cast<double>(ev.rtt_sample.count_ns())));
    if (ev.rtt_sample <= min_rtt_ || min_rtt_ == Time::never() ||
        (ev.now - min_rtt_stamp_) > Time::sec(kMinRttExpirySec)) {
      min_rtt_ = ev.rtt_sample;
      min_rtt_stamp_ = ev.now;
    }
  }

  // Packet-timed rounds, approximated by one smoothed RTT per round.
  if (srtt_ > Time::zero() && ev.now - round_started_ >= srtt_) start_round(ev.now);

  // Bandwidth model: windowed max over the last kBwFilterRounds rounds.
  // App-limited samples only count if they beat the current estimate
  // (they prove at least that much capacity exists).
  if (!ev.delivery_rate.is_zero() && (!ev.app_limited || ev.delivery_rate > btlbw())) {
    bw_samples_.emplace_back(round_, ev.delivery_rate);
  }
  while (!bw_samples_.empty() && bw_samples_.front().first + kBwFilterRounds < round_) {
    bw_samples_.pop_front();
  }
}

void Bbr::advance_probe_bw_phase(Time now) {
  if (min_rtt_ == Time::never()) return;
  if (now - cycle_stamp_ < min_rtt_) return;
  cycle_stamp_ = now;
  cycle_idx_ = (cycle_idx_ + 1) % 8;
  pacing_gain_ = kCycleGains[cycle_idx_];
}

void Bbr::advance_state_machine(const AckEvent& ev) {
  switch (state_) {
    case State::kStartup: {
      // Full-pipe detection: bandwidth stopped growing >= 25% for 3
      // consecutive rounds. Evaluate once per round.
      static constexpr double kGrowthThresh = 1.25;
      if (round_ == last_full_bw_round_) break;
      last_full_bw_round_ = round_;
      const Rate bw = btlbw();
      if (bw.is_zero()) break;
      if (bw > full_bw_ * kGrowthThresh) {
        full_bw_ = bw;
        full_bw_rounds_ = 0;
      } else {
        ++full_bw_rounds_;
        if (full_bw_rounds_ >= 3) {
          filled_pipe_ = true;
          enter_state(State::kDrain, ev.now);
          pacing_gain_ = kDrainGain;
        }
      }
      break;
    }
    case State::kDrain:
      if (ev.inflight_bytes <= bdp_with_gain(1.0)) {
        enter_state(State::kProbeBw, ev.now);
        cycle_idx_ = 0;
        cycle_stamp_ = ev.now;
        pacing_gain_ = kCycleGains[cycle_idx_];
      }
      break;
    case State::kProbeBw:
      advance_probe_bw_phase(ev.now);
      // Periodically revisit min RTT: if the estimate is stale, dip.
      if (ev.now - min_rtt_stamp_ > Time::sec(kMinRttExpirySec)) {
        enter_state(State::kProbeRtt, ev.now);
        probe_rtt_done_ = ev.now + std::max(Time::ms(200), srtt_);
        pacing_gain_ = 1.0;
      }
      break;
    case State::kProbeRtt:
      if (ev.now >= probe_rtt_done_) {
        min_rtt_stamp_ = ev.now;  // refreshed by draining the queue
        enter_state(filled_pipe_ ? State::kProbeBw : State::kStartup, ev.now);
        if (state_ == State::kProbeBw) {
          cycle_idx_ = 0;
          cycle_stamp_ = ev.now;
          pacing_gain_ = kCycleGains[cycle_idx_];
        } else {
          pacing_gain_ = kStartupGain;
        }
      }
      break;
  }
}

void Bbr::on_ack(const AckEvent& ev) {
  inflight_hint_ = ev.inflight_bytes;
  update_model(ev);
  advance_state_machine(ev);
}

void Bbr::on_loss(const LossEvent& /*ev*/) {
  // BBRv1 deliberately does not reduce its window on loss: its model, not
  // loss, dictates the sending rate. (This is the root of its unfairness to
  // loss-based CCAs, reproduced in E4.)
}

void Bbr::on_rto(Time now) {
  // Like deployed BBR, keep the path model across a timeout — one lost
  // window says nothing about the bottleneck bandwidth. Restart the cautious
  // startup ramp only if the pipe was never filled.
  if (!filled_pipe_) {
    enter_state(State::kStartup, now);
    pacing_gain_ = kStartupGain;
  }
}

}  // namespace ccc::cca
