#include "cca/copa.hpp"

#include <algorithm>
#include <cmath>

namespace ccc::cca {

Copa::Copa(ByteCount initial_cwnd, ByteCount mss, double delta)
    : mss_{mss}, delta_{delta}, cwnd_{initial_cwnd} {}

Time Copa::min_rtt() const {
  Time best = Time::never();
  for (const auto& [when, rtt] : rtt_window_) best = std::min(best, rtt);
  return best;
}

Time Copa::standing_rtt() const {
  Time best = Time::never();
  for (const auto& [when, rtt] : standing_window_) best = std::min(best, rtt);
  return best;
}

Time Copa::queueing_delay() const {
  const Time mr = min_rtt();
  const Time sr = standing_rtt();
  if (mr == Time::never() || sr == Time::never()) return Time::zero();
  return sr - mr;
}

void Copa::expire(Time now) {
  while (!rtt_window_.empty() && now - rtt_window_.front().first > Time::sec(10)) {
    rtt_window_.pop_front();
  }
  const Time half_srtt = srtt_ / 2;
  while (!standing_window_.empty() &&
         now - standing_window_.front().first > std::max(half_srtt, Time::ms(1))) {
    standing_window_.pop_front();
  }
}

void Copa::on_ack(const AckEvent& ev) {
  if (ev.rtt_sample > Time::zero()) {
    srtt_ = srtt_ == Time::zero() ? ev.rtt_sample
                                  : Time::ns(static_cast<std::int64_t>(
                                        0.875 * static_cast<double>(srtt_.count_ns()) +
                                        0.125 * static_cast<double>(ev.rtt_sample.count_ns())));
    rtt_window_.emplace_back(ev.now, ev.rtt_sample);
    standing_window_.emplace_back(ev.now, ev.rtt_sample);
  }
  expire(ev.now);
  if (srtt_ == Time::zero()) return;

  const double cwnd_pkts = static_cast<double>(cwnd_) / static_cast<double>(mss_);
  const Time d = queueing_delay();
  // Target rate 1/(delta*d) pkts/s; infinite while no queue has formed.
  const double current_rate = cwnd_pkts / standing_rtt().to_sec();
  const bool should_increase =
      d <= Time::zero() || current_rate < 1.0 / (delta_ * d.to_sec());

  if (in_slow_start_) {
    if (should_increase) {
      cwnd_ += ev.newly_acked_bytes;  // double per RTT
      return;
    }
    in_slow_start_ = false;
  }

  // Velocity update, once per RTT: doubles after 3 consistent RTTs.
  if (ev.now - last_direction_check_ >= srtt_) {
    last_direction_check_ = ev.now;
    if (should_increase == direction_up_) {
      if (++same_direction_rtts_ >= 3) velocity_ = std::min(velocity_ * 2.0, 65536.0);
    } else {
      direction_up_ = should_increase;
      same_direction_rtts_ = 0;
      velocity_ = 1.0;
    }
  }

  // Per-ACK window adjustment of v/(delta*cwnd) packets.
  const double step_pkts = velocity_ / (delta_ * cwnd_pkts) *
                           (static_cast<double>(ev.newly_acked_bytes) / static_cast<double>(mss_));
  const auto step_bytes = static_cast<ByteCount>(step_pkts * static_cast<double>(mss_));
  if (should_increase) {
    cwnd_ += std::max<ByteCount>(step_bytes, 1);
  } else {
    cwnd_ = std::max<ByteCount>(cwnd_ - std::max<ByteCount>(step_bytes, 1), 2 * mss_);
  }
}

Rate Copa::pacing_rate() const {
  if (srtt_ == Time::zero()) return Rate::zero();
  // Pace the window over one RTT with slight headroom to keep ACK clocking.
  return Rate::bytes_per(cwnd_, srtt_) * 2.0;
}

void Copa::on_loss(const LossEvent& /*ev*/) {
  // Default (delay) mode: loss is not a first-class signal; the delay loop
  // already backs off. Mirror the reference implementation's mild response.
}

void Copa::on_rto(Time /*now*/) {
  cwnd_ = std::max<ByteCount>(cwnd_ / 2, 2 * mss_);
  in_slow_start_ = false;
}

}  // namespace ccc::cca
