// Generic AIMD(a, b): the Chiu-Jain increase/decrease family (paper §2.1's
// historical starting point). Parameterizable so property tests can sweep
// the (a, b) space and verify Chiu-Jain convergence-to-fairness on a shared
// DropTail bottleneck — and its absence for non-AIMD settings.
#pragma once

#include "cca/cca.hpp"

namespace ccc::cca {

class Aimd : public CongestionControl {
 public:
  /// `increase_pkts`: additive increase per RTT, in packets (Reno: 1).
  /// `decrease_factor`: multiplicative decrease on loss (Reno: 0.5), in
  /// (0, 1); the window is multiplied by (1 - decrease_factor).
  /// `slow_start`: whether to begin with exponential growth.
  Aimd(double increase_pkts, double decrease_factor,
       ByteCount initial_cwnd = kInitialWindowBytes, ByteCount mss = sim::kMss,
       bool slow_start = true);

  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  void on_rto(Time now) override;
  [[nodiscard]] ByteCount cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] std::string_view name() const override { return "aimd"; }

 private:
  double a_;
  double b_;
  ByteCount mss_;
  ByteCount cwnd_;
  ByteCount ssthresh_;
  double acc_pkts_{0.0};
};

}  // namespace ccc::cca
