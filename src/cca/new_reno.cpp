#include "cca/new_reno.hpp"

#include <algorithm>
#include <limits>

namespace ccc::cca {

NewReno::NewReno(ByteCount initial_cwnd, ByteCount mss)
    : mss_{mss}, cwnd_{initial_cwnd}, ssthresh_{std::numeric_limits<ByteCount>::max()} {}

void NewReno::on_ack(const AckEvent& ev) {
  if (ev.in_recovery) return;  // window frozen until recovery completes
  if (in_slow_start()) {
    // Slow start: cwnd grows by the bytes ACKed (doubling per RTT).
    cwnd_ += ev.newly_acked_bytes;
    cwnd_ = std::min(cwnd_, std::max(ssthresh_, cwnd_));  // growth may overshoot into CA
  } else {
    // Congestion avoidance via appropriate byte counting (RFC 3465):
    // one MSS of growth per cwnd bytes ACKed.
    ca_acc_ += ev.newly_acked_bytes;
    if (ca_acc_ >= cwnd_) {
      ca_acc_ -= cwnd_;
      cwnd_ += mss_;
    }
  }
}

void NewReno::on_loss(const LossEvent& ev) {
  // Multiplicative decrease: halve, floor at 2 MSS (RFC 5681).
  ssthresh_ = std::max<ByteCount>(ev.inflight_bytes / 2, 2 * mss_);
  cwnd_ = ssthresh_;
  ca_acc_ = 0;
}

void NewReno::on_idle_restart(Time /*now*/) {
  // RFC 2861: after an idle period the old window is stale; restart from the
  // initial window (ssthresh retained, so growth resumes via slow start).
  cwnd_ = std::min(cwnd_, kInitialWindowBytes);
  ca_acc_ = 0;
}

void NewReno::on_rto(Time /*now*/) {
  ssthresh_ = std::max<ByteCount>(cwnd_ / 2, 2 * mss_);
  cwnd_ = mss_;  // restart from one segment, in slow start
  ca_acc_ = 0;
}

}  // namespace ccc::cca
