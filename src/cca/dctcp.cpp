#include "cca/dctcp.hpp"

#include <algorithm>
#include <limits>

namespace ccc::cca {

Dctcp::Dctcp(ByteCount initial_cwnd, ByteCount mss, double g)
    : mss_{mss},
      g_{g},
      cwnd_{initial_cwnd},
      ssthresh_{std::numeric_limits<ByteCount>::max()},
      window_target_{initial_cwnd} {}

void Dctcp::end_observation_window(Time /*now*/) {
  if (window_acked_ <= 0) return;
  const double frac =
      static_cast<double>(window_marked_) / static_cast<double>(window_acked_);
  alpha_ = (1.0 - g_) * alpha_ + g_ * frac;

  if (window_marked_ > 0 && !cut_this_window_) {
    // DCTCP's proportional decrease: cwnd *= (1 - alpha/2), once per window.
    cwnd_ = std::max<ByteCount>(
        static_cast<ByteCount>(static_cast<double>(cwnd_) * (1.0 - alpha_ / 2.0)), 2 * mss_);
    ssthresh_ = cwnd_;
  }
  window_acked_ = 0;
  window_marked_ = 0;
  window_target_ = cwnd_;
  cut_this_window_ = false;
}

void Dctcp::on_ack(const AckEvent& ev) {
  window_acked_ += ev.newly_acked_bytes;
  if (ev.ecn_echo) window_marked_ += ev.newly_acked_bytes;
  if (window_acked_ >= window_target_) end_observation_window(ev.now);

  if (ev.in_recovery) return;
  if (cwnd_ < ssthresh_ && !ev.ecn_echo) {
    cwnd_ += ev.newly_acked_bytes;  // slow start until the first mark
    return;
  }
  if (ev.ecn_echo) ssthresh_ = std::min(ssthresh_, cwnd_);
  // Congestion avoidance: one MSS per window of ACKed bytes.
  ca_acc_ += ev.newly_acked_bytes;
  if (ca_acc_ >= cwnd_) {
    ca_acc_ -= cwnd_;
    cwnd_ += mss_;
  }
}

void Dctcp::on_loss(const LossEvent& ev) {
  // Loss still halves, as in standard TCP (RFC 8257 §3.4).
  cwnd_ = std::max<ByteCount>(ev.inflight_bytes / 2, 2 * mss_);
  ssthresh_ = cwnd_;
  cut_this_window_ = true;
  ca_acc_ = 0;
}

void Dctcp::on_idle_restart(Time /*now*/) {
  cwnd_ = std::min(cwnd_, kInitialWindowBytes);
  ca_acc_ = 0;
}

void Dctcp::on_rto(Time /*now*/) {
  ssthresh_ = std::max<ByteCount>(cwnd_ / 2, 2 * mss_);
  cwnd_ = mss_;
  ca_acc_ = 0;
}

}  // namespace ccc::cca
