#include "cca/aimd.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ccc::cca {

Aimd::Aimd(double increase_pkts, double decrease_factor, ByteCount initial_cwnd, ByteCount mss,
           bool slow_start)
    : a_{increase_pkts},
      b_{decrease_factor},
      mss_{mss},
      cwnd_{initial_cwnd},
      ssthresh_{slow_start ? std::numeric_limits<ByteCount>::max() : initial_cwnd} {
  assert(a_ > 0.0);
  assert(b_ > 0.0 && b_ < 1.0);
}

void Aimd::on_ack(const AckEvent& ev) {
  if (ev.in_recovery) return;
  if (cwnd_ < ssthresh_) {
    cwnd_ += ev.newly_acked_bytes;
    return;
  }
  // a packets of growth per cwnd bytes ACKed == a packets per RTT.
  acc_pkts_ += a_ * static_cast<double>(ev.newly_acked_bytes) / static_cast<double>(cwnd_);
  if (acc_pkts_ >= 1.0) {
    acc_pkts_ -= 1.0;
    cwnd_ += mss_;
  }
}

void Aimd::on_loss(const LossEvent& /*ev*/) {
  cwnd_ = std::max<ByteCount>(static_cast<ByteCount>(static_cast<double>(cwnd_) * (1.0 - b_)),
                              2 * mss_);
  ssthresh_ = cwnd_;
  acc_pkts_ = 0.0;
}

void Aimd::on_rto(Time /*now*/) {
  ssthresh_ = std::max<ByteCount>(cwnd_ / 2, 2 * mss_);
  cwnd_ = mss_;
  acc_pkts_ = 0.0;
}

}  // namespace ccc::cca
