// TCP Vegas (Brakmo & Peterson 1994): the original delay-based CCA.
//
// Included as the classic example of the delay-based family the paper's §5.1
// says future CCAs should resemble once fairness pressure is gone — and as
// the textbook victim of loss-based contention, which the E1/E4 ablations
// quantify (Vegas starves under DropTail vs Reno, thrives under FQ).
#pragma once

#include "cca/cca.hpp"

namespace ccc::cca {

class Vegas : public CongestionControl {
 public:
  /// alpha/beta: target band for "extra packets in the network"
  /// (classic values 2 and 4 segments).
  explicit Vegas(ByteCount initial_cwnd = kInitialWindowBytes, ByteCount mss = sim::kMss,
                 double alpha_pkts = 2.0, double beta_pkts = 4.0);

  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  void on_rto(Time now) override;
  [[nodiscard]] ByteCount cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] std::string_view name() const override { return "vegas"; }

  /// The current BaseRTT estimate (min RTT seen).
  [[nodiscard]] Time base_rtt() const { return base_rtt_; }

 private:
  ByteCount mss_;
  double alpha_;
  double beta_;
  ByteCount cwnd_;
  ByteCount ssthresh_;
  Time base_rtt_{Time::never()};
  Time srtt_{Time::zero()};
  Time last_adjust_{Time::zero()};
};

}  // namespace ccc::cca
