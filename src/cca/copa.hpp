// Copa (Arun & Balakrishnan, NSDI '18): practical delay-based control.
//
// The paper (§3.2) names Copa as the other mode-switching CCA besides
// Nimbus; §5.1 points to it as the style of CCA that matters in a
// post-contention Internet. We implement Copa's default (delay) mode: steer
// the sending rate toward 1/(delta * queueing-delay) with a velocity term.
// (Copa's TCP-competitive mode switch is intentionally not engaged in any
// experiment, matching the paper's use of mode-switching CCAs as probes.)
#pragma once

#include <deque>

#include "cca/cca.hpp"

namespace ccc::cca {

class Copa : public CongestionControl {
 public:
  /// `delta`: aggressiveness; 0.5 targets ~2 packets of queue per flow.
  explicit Copa(ByteCount initial_cwnd = kInitialWindowBytes, ByteCount mss = sim::kMss,
                double delta = 0.5);

  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  void on_rto(Time now) override;
  [[nodiscard]] ByteCount cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] Rate pacing_rate() const override;
  [[nodiscard]] std::string_view name() const override { return "copa"; }

  [[nodiscard]] Time queueing_delay() const;

 private:
  /// Min RTT over the whole 10 s window (propagation estimate).
  [[nodiscard]] Time min_rtt() const;
  /// Min RTT over the last srtt/2 (standing queue estimate).
  [[nodiscard]] Time standing_rtt() const;
  void expire(Time now);

  ByteCount mss_;
  double delta_;
  ByteCount cwnd_;
  double velocity_{1.0};
  bool direction_up_{true};
  int same_direction_rtts_{0};
  Time last_direction_check_{Time::zero()};
  bool in_slow_start_{true};

  Time srtt_{Time::zero()};
  std::deque<std::pair<Time, Time>> rtt_window_;       // (when, rtt), 10 s
  std::deque<std::pair<Time, Time>> standing_window_;  // (when, rtt), srtt/2
};

}  // namespace ccc::cca
