// TCP CUBIC (RFC 9438): the Linux default since 2.6.19 and therefore the
// CCA most real "contending" flows run. Used as the loss-based baseline in
// the BBR-vs-loss-based experiment (E4, reproducing Ware et al.'s finding
// that the paper cites in §1).
#pragma once

#include "cca/cca.hpp"

namespace ccc::cca {

class Cubic : public CongestionControl {
 public:
  /// Standard constants: C = 0.4, beta = 0.7 (RFC 9438 §4).
  explicit Cubic(ByteCount initial_cwnd = kInitialWindowBytes, ByteCount mss = sim::kMss,
                 double c = 0.4, double beta = 0.7);

  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  void on_rto(Time now) override;
  void on_idle_restart(Time now) override;
  [[nodiscard]] ByteCount cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] std::string_view name() const override { return "cubic"; }

  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  /// Recomputes the cubic window target at elapsed time t since the epoch.
  [[nodiscard]] double cubic_window_pkts(double t_sec) const;

  ByteCount mss_;
  double c_;
  double beta_;
  ByteCount cwnd_;
  ByteCount ssthresh_;

  // Epoch state (reset on each congestion event).
  bool epoch_valid_{false};
  Time epoch_start_{Time::zero()};
  double w_max_pkts_{0.0};   ///< window (packets) just before the last reduction
  double k_sec_{0.0};        ///< time at which the cubic curve regains w_max
  double w_est_pkts_{0.0};   ///< TCP-friendly (Reno-tracking) estimate
  Time last_rtt_{Time::ms(100)};  ///< latest RTT sample, for the friendly region
};

}  // namespace ccc::cca
