// The congestion-control algorithm (CCA) interface.
//
// The paper's hypothesis is about what CCA dynamics do (or don't) determine;
// reproducing it requires faithful implementations of the CCAs its
// experiments use (§3.2 runs Reno and BBR cross traffic; §1 discusses Cubic,
// TFRC-era AIMD, and BBR's aggression; §3.2's tool builds on Nimbus, which
// lives in src/nimbus on top of this interface).
//
// Division of labor: the TcpSender (src/flow) handles sequencing, loss
// *detection* (dupacks, RTO), retransmission, and pacing enforcement. CCAs
// see only semantic events — ACKed bytes with RTT/delivery-rate samples,
// entry into loss recovery, RTO — and expose a congestion window and an
// optional pacing rate.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "sim/packet.hpp"
#include "util/units.hpp"

namespace ccc::telemetry {
class MetricRegistry;
}  // namespace ccc::telemetry

namespace ccc::cca {

/// Delivered-data event, reported once per cumulative ACK advance.
struct AckEvent {
  Time now{Time::zero()};
  ByteCount newly_acked_bytes{0};
  /// RTT sample from the ACKed packet's echoed timestamp; zero() if none.
  Time rtt_sample{Time::zero()};
  /// Transmit timestamp of the (first) segment this ACK newly covered;
  /// zero() if unknown. Lets rate-based CCAs bin deliveries by *send* time
  /// (Nimbus's cross-traffic estimator needs send/receive dilation over the
  /// same packets).
  Time acked_sent_at{Time::zero()};
  /// Smoothed delivery-rate sample (receiver-counter based); zero() if none.
  Rate delivery_rate{Rate::zero()};
  /// Bytes still in flight after this ACK was processed.
  ByteCount inflight_bytes{0};
  /// True while the sender is in fast recovery (window growth should pause).
  bool in_recovery{false};
  /// True if the ACKed data was sent while the application had no more data
  /// queued (sample is not evidence of path capacity — BBR discards these).
  bool app_limited{false};
  /// ECN congestion-experienced echo.
  bool ecn_echo{false};
};

/// Loss event, reported once per recovery episode (not once per lost packet)
/// — mirrors TCP's one-multiplicative-decrease-per-window rule.
struct LossEvent {
  Time now{Time::zero()};
  ByteCount lost_bytes{0};
  ByteCount inflight_bytes{0};
};

/// Abstract CCA. Implementations are single-flow state machines; the sender
/// owns exactly one and drives it from its ACK-processing path.
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual void on_ack(const AckEvent& ev) = 0;
  virtual void on_loss(const LossEvent& ev) = 0;
  /// Retransmission timeout: the strongest congestion signal.
  virtual void on_rto(Time now) = 0;
  /// The connection idled for at least one RTO with nothing in flight; the
  /// window no longer reflects current path state (RFC 2861 cwnd
  /// validation). Window-based CCAs should restart near the initial window.
  virtual void on_idle_restart(Time now) { (void)now; }

  /// Current congestion window. The sender enforces
  /// inflight <= min(cwnd_bytes(), receiver_window).
  [[nodiscard]] virtual ByteCount cwnd_bytes() const = 0;

  /// Pacing rate, or Rate::zero() for pure window/ACK-clocked operation.
  [[nodiscard]] virtual Rate pacing_rate() const { return Rate::zero(); }

  /// Human-readable algorithm name (appears in telemetry and benches).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// True if this CCA negotiates ECN (the sender then marks its packets
  /// ECN-capable and AQMs may CE-mark instead of dropping them).
  [[nodiscard]] virtual bool wants_ecn() const { return false; }

  /// Hooks the CCA into a per-scenario metric registry under `prefix`
  /// (e.g. "flow3.cca"). Mode-switching CCAs (BBR, Nimbus) register a
  /// mode-transition counter and timeline; the default is a no-op, and
  /// unbound CCAs must pay nothing on their ACK path.
  virtual void bind_metrics(telemetry::MetricRegistry& reg, const std::string& prefix) {
    (void)reg;
    (void)prefix;
  }
};

/// Factory signature used by scenario builders to stamp out per-flow CCAs.
using CcaFactory = std::function<std::unique_ptr<CongestionControl>()>;

/// Initial window: RFC 6928's 10 segments, which the paper leans on when it
/// notes most short flows "fit within the initial congestion window" (§2.2).
inline constexpr ByteCount kInitialWindowBytes = 10 * sim::kMss;

}  // namespace ccc::cca
