// BBR (v1-style): model-based congestion control.
//
// BBR estimates the bottleneck bandwidth (windowed-max of delivery-rate
// samples) and the path's min RTT, paces at gain * btlbw, and caps inflight
// at cwnd_gain * BDP. Like deployed BBRv1 it does not back off on packet
// loss, which is what makes it claim a fixed, often super-fair share against
// loss-based flows — the behaviour the paper cites (§1, ref [2]) and that
// experiment E4 reproduces. BBR is also one of Figure 3's two elastic
// cross-traffic types.
#pragma once

#include <deque>

#include "cca/cca.hpp"

namespace ccc::telemetry {
class Counter;
class Trace;
}  // namespace ccc::telemetry

namespace ccc::cca {

class Bbr : public CongestionControl {
 public:
  explicit Bbr(ByteCount initial_cwnd = kInitialWindowBytes, ByteCount mss = sim::kMss);

  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  void on_rto(Time now) override;
  [[nodiscard]] ByteCount cwnd_bytes() const override;
  [[nodiscard]] Rate pacing_rate() const override;
  [[nodiscard]] std::string_view name() const override { return "bbr"; }

  enum class State { kStartup, kDrain, kProbeBw, kProbeRtt };
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] Rate btlbw() const;
  [[nodiscard]] Time min_rtt() const { return min_rtt_; }

  /// Registers `<prefix>.mode_transitions` (counter) and `<prefix>.mode`
  /// (state timeline, values = State enum) in `reg`.
  void bind_metrics(telemetry::MetricRegistry& reg, const std::string& prefix) override;

 private:
  void update_model(const AckEvent& ev);
  void advance_state_machine(const AckEvent& ev);
  /// All state transitions funnel through here so bound metrics see them.
  void enter_state(State next, Time now);
  void advance_probe_bw_phase(Time now);
  [[nodiscard]] ByteCount bdp_with_gain(double gain) const;
  void start_round(Time now);

  static constexpr double kStartupGain = 2.885;  // 2/ln2
  static constexpr double kDrainGain = 1.0 / 2.885;
  static constexpr double kCwndGain = 2.0;
  static constexpr int kBwFilterRounds = 10;
  static constexpr std::int64_t kMinRttExpirySec = 10;

  ByteCount mss_;
  State state_{State::kStartup};

  // Bottleneck-bandwidth windowed max filter: (round index, sample).
  std::deque<std::pair<std::uint64_t, Rate>> bw_samples_;
  std::uint64_t round_{0};
  Time round_started_{Time::zero()};
  Time srtt_{Time::zero()};

  Time min_rtt_{Time::never()};
  Time min_rtt_stamp_{Time::zero()};
  Time probe_rtt_done_{Time::never()};

  // Startup full-pipe detection.
  Rate full_bw_{Rate::zero()};
  int full_bw_rounds_{0};
  std::uint64_t last_full_bw_round_{0};
  bool filled_pipe_{false};

  // ProbeBW gain cycle.
  static constexpr double kCycleGains[8] = {1.25, 0.75, 1, 1, 1, 1, 1, 1};
  int cycle_idx_{0};
  Time cycle_stamp_{Time::zero()};

  double pacing_gain_{kStartupGain};
  ByteCount initial_cwnd_;
  ByteCount inflight_hint_{0};  ///< latest inflight from ACK events (for drain exit)

  // Telemetry (null unless bind_metrics was called; hot paths gate on that).
  telemetry::Counter* mode_transitions_{nullptr};
  telemetry::Trace* mode_trace_{nullptr};
};

}  // namespace ccc::cca
