#include "cca/cubic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ccc::cca {

Cubic::Cubic(ByteCount initial_cwnd, ByteCount mss, double c, double beta)
    : mss_{mss},
      c_{c},
      beta_{beta},
      cwnd_{initial_cwnd},
      ssthresh_{std::numeric_limits<ByteCount>::max()} {}

double Cubic::cubic_window_pkts(double t_sec) const {
  const double d = t_sec - k_sec_;
  return c_ * d * d * d + w_max_pkts_;
}

void Cubic::on_ack(const AckEvent& ev) {
  if (ev.rtt_sample > Time::zero()) last_rtt_ = ev.rtt_sample;
  if (ev.in_recovery) return;

  if (in_slow_start()) {
    cwnd_ += ev.newly_acked_bytes;
    return;
  }

  if (!epoch_valid_) {
    // First CA ack after a congestion event (or after leaving slow start
    // without one): start a cubic epoch from the current window.
    epoch_valid_ = true;
    epoch_start_ = ev.now;
    const double w_pkts = static_cast<double>(cwnd_) / static_cast<double>(mss_);
    if (w_max_pkts_ < w_pkts) w_max_pkts_ = w_pkts;
    k_sec_ = std::cbrt(w_max_pkts_ * (1.0 - beta_) / c_);
    w_est_pkts_ = w_pkts;
  }

  const double t = (ev.now - epoch_start_).to_sec();
  const double rtt = std::max(last_rtt_.to_sec(), 1e-6);

  // TCP-friendly region (RFC 9438 §4.3): emulate Reno's growth so CUBIC is
  // never less aggressive than Reno on short-RTT paths.
  const double alpha = 3.0 * (1.0 - beta_) / (1.0 + beta_);
  w_est_pkts_ += alpha * static_cast<double>(ev.newly_acked_bytes) /
                 (static_cast<double>(cwnd_) / static_cast<double>(mss_)) /
                 static_cast<double>(mss_);

  // Concave/convex region: aim the window at the cubic curve one RTT ahead.
  const double w_cubic_next = cubic_window_pkts(t + rtt);
  const double w_pkts = static_cast<double>(cwnd_) / static_cast<double>(mss_);
  double target = w_pkts;
  if (w_cubic_next > w_pkts) {
    // Spread the remaining distance across the ACKs of one window.
    target = w_pkts + (w_cubic_next - w_pkts) *
                          (static_cast<double>(ev.newly_acked_bytes) /
                           static_cast<double>(std::max<ByteCount>(cwnd_, mss_)));
  }
  target = std::max(target, w_est_pkts_);
  cwnd_ = std::max<ByteCount>(static_cast<ByteCount>(target * static_cast<double>(mss_)),
                              2 * mss_);
}

void Cubic::on_loss(const LossEvent& /*ev*/) {
  const double w_pkts = static_cast<double>(cwnd_) / static_cast<double>(mss_);
  // Fast convergence (RFC 9438 §4.6): if this loss came before regaining the
  // previous w_max, release bandwidth by remembering a lower peak.
  w_max_pkts_ = w_pkts < w_max_pkts_ ? w_pkts * (2.0 - beta_) / 2.0 : w_pkts;
  cwnd_ = std::max<ByteCount>(static_cast<ByteCount>(w_pkts * beta_ * static_cast<double>(mss_)),
                              2 * mss_);
  ssthresh_ = cwnd_;
  epoch_valid_ = false;
}

void Cubic::on_idle_restart(Time /*now*/) {
  // RFC 2861 cwnd validation; also reset the cubic epoch so growth restarts
  // from the (smaller) current window rather than an ancient curve.
  cwnd_ = std::min(cwnd_, kInitialWindowBytes);
  epoch_valid_ = false;
}

void Cubic::on_rto(Time /*now*/) {
  const double w_pkts = static_cast<double>(cwnd_) / static_cast<double>(mss_);
  w_max_pkts_ = w_pkts < w_max_pkts_ ? w_pkts * (2.0 - beta_) / 2.0 : w_pkts;
  ssthresh_ = std::max<ByteCount>(static_cast<ByteCount>(static_cast<double>(cwnd_) * beta_),
                                  2 * mss_);
  cwnd_ = mss_;
  epoch_valid_ = false;
}

}  // namespace ccc::cca
