// TCP NewReno (RFC 5681/6582): slow start, congestion avoidance, one
// multiplicative decrease per recovery episode. The canonical loss-based CCA
// the paper's fairness discussion (TFRC, Floyd & Fall) is anchored on, and
// one of the two contending cross-traffic types in Figure 3.
#pragma once

#include "cca/cca.hpp"

namespace ccc::cca {

class NewReno : public CongestionControl {
 public:
  explicit NewReno(ByteCount initial_cwnd = kInitialWindowBytes, ByteCount mss = sim::kMss);

  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  void on_rto(Time now) override;
  void on_idle_restart(Time now) override;
  [[nodiscard]] ByteCount cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] std::string_view name() const override { return "newreno"; }

  [[nodiscard]] ByteCount ssthresh_bytes() const { return ssthresh_; }
  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  ByteCount mss_;
  ByteCount cwnd_;
  ByteCount ssthresh_;
  ByteCount ca_acc_{0};  ///< byte-counting accumulator for CA growth
};

}  // namespace ccc::cca
