// Queueing-discipline interface.
//
// A Qdisc sits between a link's input and its transmitter. The choice of
// qdisc is the central experimental variable of this reproduction: the paper
// (§2.1) argues that operator-deployed queueing/shaping — not CCA dynamics —
// determines bandwidth allocations. Concrete disciplines live in src/queue.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/packet.hpp"
#include "util/units.hpp"

namespace ccc::sim {

/// Byte/packet counters every qdisc maintains; read by telemetry and benches.
///
/// Accounting contract (enforced by the cross-qdisc conservation test):
///   - `enqueued_packets` counts every packet OFFERED to enqueue(), whether
///     admitted or tail-dropped.
///   - every drop — at admission or later (CoDel head drops, policer
///     rejections) — is counted exactly once in `dropped_packets`.
/// Hence at any instant:
///   enqueued_packets == dequeued_packets + dropped_packets + backlog_packets()
struct QdiscStats {
  std::uint64_t enqueued_packets{0};
  std::uint64_t dequeued_packets{0};
  std::uint64_t dropped_packets{0};
  std::uint64_t ecn_marked_packets{0};
  ByteCount dropped_bytes{0};
};

/// Abstract queueing discipline.
///
/// Contract: enqueue() may drop (internally, updating stats) or admit the
/// packet; dequeue() returns the next packet to serialize, or nullopt when
/// the qdisc has nothing eligible *now* (a shaper may hold bytes for later —
/// see next_ready()). All calls carry `now` because shapers are clock-driven.
class Qdisc {
 public:
  virtual ~Qdisc() = default;

  /// Offers a packet. Returns true if admitted, false if dropped.
  virtual bool enqueue(const Packet& pkt, Time now) = 0;

  /// Removes and returns the next packet eligible for transmission at `now`.
  virtual std::optional<Packet> dequeue(Time now) = 0;

  /// Earliest time a currently-queued packet becomes eligible, or
  /// Time::never() if the queue is empty. Work-conserving qdiscs return
  /// `now` whenever non-empty; shapers return the token-availability time.
  [[nodiscard]] virtual Time next_ready(Time now) const = 0;

  /// Total bytes currently queued (for queue-depth telemetry).
  [[nodiscard]] virtual ByteCount backlog_bytes() const = 0;
  /// Total packets currently queued.
  [[nodiscard]] virtual std::size_t backlog_packets() const = 0;

  [[nodiscard]] const QdiscStats& stats() const { return stats_; }

 protected:
  QdiscStats stats_;
};

}  // namespace ccc::sim
