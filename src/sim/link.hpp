// Point-to-point link: rate serialization + propagation delay + a qdisc.
//
// This is the simulator's stand-in for the paper's Mahimahi-emulated link
// (§3.2: 48 Mbit/s, 100 ms). Packets offered to send() pass through the
// link's qdisc, are serialized at the link rate, then arrive at the
// destination sink one propagation delay later.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "sim/packet.hpp"
#include "sim/qdisc.hpp"
#include "sim/scheduler.hpp"
#include "util/units.hpp"

namespace ccc::telemetry {
class Histogram;
class MetricRegistry;
}  // namespace ccc::telemetry

namespace ccc::sim {

/// Link-level counters for utilization accounting in the benches.
struct LinkStats {
  std::uint64_t packets_sent{0};
  ByteCount bytes_sent{0};
  Time busy_time{Time::zero()};  ///< total time spent serializing
};

/// A unidirectional link. Not copyable/movable: endpoints hold pointers to it
/// and it schedules callbacks capturing `this`.
class Link {
 public:
  /// Constructs a link transmitting at `rate` with one-way propagation delay
  /// `prop_delay`, queueing through `qdisc`, delivering into `dst`.
  /// `dst` must outlive the link. Preconditions: rate > 0, qdisc non-null.
  Link(Scheduler& sched, Rate rate, Time prop_delay, std::unique_ptr<Qdisc> qdisc,
       PacketSink& dst);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Offers a packet to the link (enters the qdisc; may be dropped there).
  void send(const Packet& pkt);

  /// Changes the transmission rate. Models variable-capacity links
  /// (cellular/WiFi/satellite, paper §2.3/§5.1). Bits already serialized
  /// stay sent; the remainder of the packet currently on the wire continues
  /// at the new rate (the completion event is re-planned). Pinning the
  /// in-flight packet to its dequeue-time rate instead resonates with
  /// periodic rate schedules: a frame whose low-rate serialization time is a
  /// multiple of the schedule period finishes at the same phase it started,
  /// locking every subsequent dequeue into the low-rate window.
  void set_rate(Rate rate);
  [[nodiscard]] Rate rate() const { return rate_; }
  [[nodiscard]] Time prop_delay() const { return prop_delay_; }

  [[nodiscard]] const Qdisc& qdisc() const { return *qdisc_; }
  [[nodiscard]] Qdisc& qdisc() { return *qdisc_; }
  [[nodiscard]] const LinkStats& stats() const { return stats_; }

  /// Average utilization over the interval [Time::zero(), now].
  [[nodiscard]] double utilization(Time now) const;

  /// Optional tap invoked for every packet the moment it finishes
  /// serializing (i.e. the instant it occupies the bottleneck). Used by
  /// telemetry to sample per-flow link shares.
  void set_tx_tap(std::function<void(const Packet&, Time)> tap) { tx_tap_ = std::move(tap); }

  /// Binds this link to a metric registry: live queue-sojourn histogram
  /// (`prefix + ".sojourn_ms"`) plus tx/utilization/qdisc counters refreshed
  /// by export_metrics(). Unbound links pay only a null-pointer check.
  void bind_metrics(telemetry::MetricRegistry& reg, const std::string& prefix = "link");

  /// Mirrors LinkStats/QdiscStats and the utilization/backlog gauges into
  /// the bound registry. No-op when bind_metrics() was never called.
  void export_metrics(Time now);

 private:
  void maybe_start_tx();
  /// `packed` = (plan epoch << 32) | packet handle; see tx_epoch_.
  void on_tx_complete(std::uint64_t packed);

  Scheduler& sched_;
  Rate rate_;
  Time prop_delay_;
  std::unique_ptr<Qdisc> qdisc_;
  /// The propagation pipe's SoA in-flight batch (event engine v3): arrival
  /// times are tx-complete time + a fixed prop_delay_, hence monotonic.
  Scheduler::BatchId batch_;
  bool busy_{false};
  EventId wake_event_{0};
  /// In-flight serialization plan. Completion events are fire-and-forget
  /// (hot path: no cancellation slab), so a mid-flight set_rate cannot
  /// cancel the pending completion — instead each (re)plan bumps tx_epoch_
  /// and schedules a fresh completion carrying its epoch; a firing whose
  /// epoch is stale was superseded and is ignored. Fixed-rate links never
  /// re-plan and see exactly one event per packet, as before.
  std::uint32_t tx_epoch_{0};
  PacketPool::Handle tx_handle_{0};
  Time tx_end_{Time::zero()};        ///< planned completion instant
  Time tx_replan_at_{Time::zero()};  ///< when tx_remaining_bits_ was current
  double tx_remaining_bits_{0.0};
  LinkStats stats_;
  std::function<void(const Packet&, Time)> tx_tap_;
  telemetry::MetricRegistry* metrics_{nullptr};
  telemetry::Histogram* sojourn_hist_{nullptr};
  std::string metric_prefix_;
};

/// A fixed-delay, infinite-capacity pipe. Used for uncongested segments,
/// most commonly the ACK return path (reverse-path congestion is out of
/// scope for every experiment in the paper).
class DelayLine : public PacketSink {
 public:
  DelayLine(Scheduler& sched, Time delay, PacketSink& dst)
      : sched_{sched}, delay_{delay}, batch_{sched.register_delivery_batch(dst)} {}

  void deliver(const Packet& pkt) override {
    // The in-flight record rides in the delay line's SoA batch (event engine
    // v3): no per-packet scheduler entry, and a same-time arrival run reaches
    // the destination as one deliver_batch() call. Fixed delay + monotonic
    // clock keeps the batch's append order time-sorted.
    sched_.schedule_deliver_batch_after(delay_, batch_, pkt);
  }

  void deliver_batch(const Packet* const* pkts, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) sched_.schedule_deliver_batch_after(delay_, batch_, *pkts[i]);
  }

  /// Re-points the downstream sink (used when wiring scenarios). Applies to
  /// packets still in flight — the same fire-time binding the pre-batch
  /// trampoline had.
  void set_dst(PacketSink& dst) { sched_.rebind_delivery_batch(batch_, dst); }

 private:
  Scheduler& sched_;
  Time delay_;
  Scheduler::BatchId batch_;
};

/// Adapts a Link into a PacketSink so links can be chained behind
/// demultiplexers or delay lines.
class LinkSink : public PacketSink {
 public:
  explicit LinkSink(Link& link) : link_{link} {}
  void deliver(const Packet& pkt) override { link_.send(pkt); }

 private:
  Link& link_;
};

}  // namespace ccc::sim
