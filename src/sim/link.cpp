#include "sim/link.hpp"

#include <cassert>

namespace ccc::sim {

Link::Link(Scheduler& sched, Rate rate, Time prop_delay, std::unique_ptr<Qdisc> qdisc,
           PacketSink& dst)
    : sched_{sched}, rate_{rate}, prop_delay_{prop_delay}, qdisc_{std::move(qdisc)}, dst_{dst} {
  assert(rate_.to_bps() > 0.0);
  assert(qdisc_ != nullptr);
}

void Link::send(const Packet& pkt) {
  qdisc_->enqueue(pkt, sched_.now());
  maybe_start_tx();
}

void Link::set_rate(Rate rate) {
  assert(rate.to_bps() > 0.0);
  rate_ = rate;
}

double Link::utilization(Time now) const {
  if (now <= Time::zero()) return 0.0;
  return stats_.busy_time / now;
}

void Link::maybe_start_tx() {
  if (busy_) return;
  const Time now = sched_.now();
  const Time ready = qdisc_->next_ready(now);
  if (ready == Time::never()) return;  // nothing queued

  if (ready > now) {
    // Shaper holding bytes: wake up when the head packet becomes eligible.
    // Re-arm only if the new wake time is sooner than a pending one.
    sched_.cancel(wake_event_);
    wake_event_ = sched_.schedule_at(ready, [this] { maybe_start_tx(); });
    return;
  }

  auto pkt = qdisc_->dequeue(now);
  if (!pkt) return;  // qdisc changed its mind (e.g. CoDel dropped the head)

  busy_ = true;
  const Time tx_time = rate_.transmit_time(pkt->size_bytes);
  stats_.busy_time += tx_time;
  sched_.schedule_after(tx_time, [this, p = *pkt] { on_tx_complete(p); });
}

void Link::on_tx_complete(Packet pkt) {
  busy_ = false;
  ++stats_.packets_sent;
  stats_.bytes_sent += pkt.size_bytes;
  if (tx_tap_) tx_tap_(pkt, sched_.now());

  // Propagation: the packet arrives at the destination prop_delay later.
  sched_.schedule_after(prop_delay_, [this, pkt] { dst_.deliver(pkt); });

  maybe_start_tx();
}

}  // namespace ccc::sim
