#include "sim/link.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "telemetry/metrics.hpp"

namespace ccc::sim {

Link::Link(Scheduler& sched, Rate rate, Time prop_delay, std::unique_ptr<Qdisc> qdisc,
           PacketSink& dst)
    : sched_{sched},
      rate_{rate},
      prop_delay_{prop_delay},
      qdisc_{std::move(qdisc)},
      batch_{sched.register_delivery_batch(dst)} {
  assert(rate_.to_bps() > 0.0);
  assert(qdisc_ != nullptr);
}

void Link::send(const Packet& pkt) {
  if (sojourn_hist_ != nullptr) {
    // Stamp the enqueue instant so the dequeue side can observe the sojourn.
    Packet stamped = pkt;
    stamped.enqueued_at = sched_.now();
    qdisc_->enqueue(stamped, sched_.now());
  } else {
    qdisc_->enqueue(pkt, sched_.now());
  }
  maybe_start_tx();
}

void Link::set_rate(Rate rate) {
  assert(rate.to_bps() > 0.0);
  if (busy_ && rate.to_bps() != rate_.to_bps()) {
    // Re-plan the serializing packet: credit the bits sent at the old rate
    // since the last plan, then finish the remainder at the new rate. See
    // the header comment for why the in-flight packet must not stay pinned
    // to its dequeue-time rate.
    const Time now = sched_.now();
    tx_remaining_bits_ =
        std::max(0.0, tx_remaining_bits_ - rate_.to_bps() * (now - tx_replan_at_).to_sec());
    tx_replan_at_ = now;
    const Time remaining = Time::ns(
        static_cast<std::int64_t>(std::ceil(tx_remaining_bits_ / rate.to_bps() * 1e9)));
    stats_.busy_time += (now + remaining) - tx_end_;
    tx_end_ = now + remaining;
    ++tx_epoch_;
    sched_.schedule_fire_at(
        tx_end_,
        [](void* ctx, std::uint64_t arg) { static_cast<Link*>(ctx)->on_tx_complete(arg); },
        this, (std::uint64_t{tx_epoch_} << 32) | tx_handle_);
  }
  rate_ = rate;
}

double Link::utilization(Time now) const {
  if (now <= Time::zero()) return 0.0;
  return stats_.busy_time / now;
}

void Link::bind_metrics(telemetry::MetricRegistry& reg, const std::string& prefix) {
  metrics_ = &reg;
  metric_prefix_ = prefix;
  // 0.05 ms .. ~1.7 s in 16 geometric buckets: spans sub-ms datacenter
  // sojourns through multi-second bufferbloat.
  sojourn_hist_ = &reg.histogram(prefix + ".qdisc.sojourn_ms",
                                 telemetry::Histogram::geometric_bounds(0.05, 2.0, 16));
}

void Link::export_metrics(Time now) {
  if (metrics_ == nullptr) return;
  auto& m = *metrics_;
  const std::string& p = metric_prefix_;
  m.counter(p + ".tx_packets").set(stats_.packets_sent);
  m.counter(p + ".tx_bytes").set(static_cast<std::uint64_t>(stats_.bytes_sent));
  m.gauge(p + ".utilization").set(utilization(now));
  const QdiscStats& qs = qdisc_->stats();
  m.counter(p + ".qdisc.enqueued_packets").set(qs.enqueued_packets);
  m.counter(p + ".qdisc.dequeued_packets").set(qs.dequeued_packets);
  m.counter(p + ".qdisc.dropped_packets").set(qs.dropped_packets);
  m.counter(p + ".qdisc.ecn_marked_packets").set(qs.ecn_marked_packets);
  m.counter(p + ".qdisc.dropped_bytes").set(static_cast<std::uint64_t>(qs.dropped_bytes));
  m.gauge(p + ".qdisc.backlog_bytes").set(static_cast<double>(qdisc_->backlog_bytes()));
  m.gauge(p + ".qdisc.backlog_packets").set(static_cast<double>(qdisc_->backlog_packets()));
}

void Link::maybe_start_tx() {
  if (busy_) return;
  const Time now = sched_.now();
  const Time ready = qdisc_->next_ready(now);
  if (ready == Time::never()) return;  // nothing queued

  if (ready > now) {
    // Shaper holding bytes: wake up when the head packet becomes eligible.
    // Re-arm only if the new wake time is sooner than a pending one.
    sched_.cancel(wake_event_);
    wake_event_ = sched_.schedule_member_at<&Link::maybe_start_tx>(ready, this);
    return;
  }

  auto pkt = qdisc_->dequeue(now);
  if (!pkt) return;  // qdisc changed its mind (e.g. CoDel dropped the head)

  if (sojourn_hist_ != nullptr && pkt->enqueued_at > Time::zero()) {
    sojourn_hist_->observe((now - pkt->enqueued_at).to_ms());
  }

  busy_ = true;
  const Time tx_time = rate_.transmit_time(pkt->size_bytes);
  stats_.busy_time += tx_time;
  // The serializing packet lives in the scheduler's arena, not a closure
  // capture; its 4-byte handle rides through the typed event's arg (packed
  // under the plan epoch so a mid-flight set_rate can supersede the event).
  const PacketPool::Handle h = sched_.packets().acquire(*pkt);
  tx_handle_ = h;
  tx_remaining_bits_ = static_cast<double>(pkt->size_bytes) * 8.0;
  tx_replan_at_ = now;
  tx_end_ = now + tx_time;
  ++tx_epoch_;
  sched_.schedule_fire_after(
      tx_time,
      [](void* ctx, std::uint64_t arg) { static_cast<Link*>(ctx)->on_tx_complete(arg); },
      this, (std::uint64_t{tx_epoch_} << 32) | h);
}

void Link::on_tx_complete(std::uint64_t packed) {
  if (!busy_ || static_cast<std::uint32_t>(packed >> 32) != tx_epoch_) {
    return;  // superseded by a set_rate re-plan (or by the packet after it)
  }
  busy_ = false;
  const auto h = static_cast<PacketPool::Handle>(packed & 0xffffffffu);
  const Packet& pkt = sched_.packets().get(h);
  ++stats_.packets_sent;
  stats_.bytes_sent += pkt.size_bytes;
  if (tx_tap_) tx_tap_(pkt, sched_.now());

  // Propagation: the packet arrives at the destination prop_delay later.
  // Ownership of the arena slot moves into the link's delivery batch — no
  // copy, no per-packet scheduler entry (event engine v3).
  sched_.schedule_deliver_batch_handle_after(prop_delay_, batch_, h);

  maybe_start_tx();
}

}  // namespace ccc::sim
