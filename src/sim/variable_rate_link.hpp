// VariableRateLink: wireless-style capacity variation for a Link.
//
// The paper's links are clean wired bottlenecks; its §2 operator argument,
// though, has to survive the links people actually sit behind. This driver
// gives a Link a time-varying service rate from one of three models:
//
//   - trace replay: a piecewise-constant RatePoint schedule (Mahimahi-style;
//     the square-wave / random-walk presets the variability bench uses);
//   - a two-state Markov channel: good/bad rates with exponentially
//     distributed dwell times, the classic Gilbert-Elliott abstraction of
//     rate adaptation + interference on an 802.11 link;
//   - "wifi": the Markov channel plus MAC frame-aggregation gating — within
//     a dwell the link alternates a full-rate TXOP burst (an A-MPDU worth of
//     airtime) with a near-stalled contention gap, which is what produces
//     the bursty, jittery arrivals AQMs on WiFi have to cope with.
//
// Everything is scheduled as deterministic simulator events from a per-link
// seed: equal seeds give byte-identical runs at any thread count, the
// invariant every sweep and figure pins.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/link.hpp"
#include "sim/rate_trace.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace ccc::sim {

/// Two-state Markov (Gilbert-Elliott) channel-rate model.
struct MarkovRateModel {
  Rate good{Rate::mbps(48)};
  Rate bad{Rate::mbps(12)};
  Time mean_good{Time::ms(800)};  ///< mean dwell in the good state
  Time mean_bad{Time::ms(200)};   ///< mean dwell in the bad state
};

/// MAC-style frame-aggregation gating layered on the Markov rates.
struct FrameAggregation {
  bool enabled{false};
  Time txop{Time::ms(3)};           ///< burst: link serves at the state rate
  Time gap{Time::ms(1)};            ///< contention stall between bursts
  Rate stall_rate{Rate::kbps(64)};  ///< residual rate during the gap (>0:
                                    ///< Link forbids a zero service rate)
};

struct VariableRateLinkConfig {
  MarkovRateModel markov;
  FrameAggregation aggregation;
  std::uint64_t seed{0x11aa5eedULL};
};

/// Drives Link::set_rate() with the configured model until `until`, then
/// goes quiet (the link keeps its last rate). The link must outlive this
/// object, and this object must outlive the simulation run.
class VariableRateLink {
 public:
  VariableRateLink(Scheduler& sched, Link& link, VariableRateLinkConfig cfg);

  VariableRateLink(const VariableRateLink&) = delete;
  VariableRateLink& operator=(const VariableRateLink&) = delete;

  /// Starts the model at the scheduler's current time. Call once.
  void start(Time until);

  /// Markov state transitions taken so far (tests / telemetry).
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }
  /// Whether the channel is currently in the good state.
  [[nodiscard]] bool in_good_state() const { return good_; }

  // --- trace presets (the rate_trace generators, routed through one API) ---

  /// Replays an explicit schedule (sorted by time) onto the link.
  static void replay(Scheduler& sched, Link& link, const std::vector<RatePoint>& trace);
  /// Square wave between lo and hi, toggling every half_period until end.
  static void square_wave(Scheduler& sched, Link& link, Rate lo, Rate hi, Time half_period,
                          Time end);
  /// Bounded multiplicative random walk (see rate_trace.hpp) from `rng`.
  static void random_walk(Scheduler& sched, Link& link, Rng& rng, Rate start, Rate lo, Rate hi,
                          double sigma, Time step, Time end);

 private:
  void on_transition();  ///< Markov dwell expiry
  void on_toggle();      ///< aggregation burst/gap boundary
  void apply_rate();
  [[nodiscard]] Time dwell(Time mean);

  Scheduler& sched_;
  Link& link_;
  VariableRateLinkConfig cfg_;
  Rng rng_;
  Time until_{Time::zero()};
  bool good_{true};
  bool burst_{true};  ///< aggregation phase: true = TXOP, false = gap
  std::uint64_t transitions_{0};
};

}  // namespace ccc::sim
