#include "sim/rate_trace.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ccc::sim {

void apply_rate_trace(Scheduler& sched, Link& link, const std::vector<RatePoint>& trace) {
  for (const auto& pt : trace) {
    if (pt.at < sched.now()) continue;
    // Typed event: the rate rides through the 8-byte arg (a bit_cast
    // double), so a long trace schedules no closures at all.
    sched.schedule_fire_at(
        pt.at,
        [](void* ctx, std::uint64_t arg) {
          static_cast<Link*>(ctx)->set_rate(Rate::bps(std::bit_cast<double>(arg)));
        },
        &link, std::bit_cast<std::uint64_t>(pt.rate.to_bps()));
  }
}

std::vector<RatePoint> square_wave_trace(Rate lo, Rate hi, Time half_period, Time end) {
  std::vector<RatePoint> trace;
  bool high = true;
  for (Time t = Time::zero(); t <= end; t += half_period) {
    trace.push_back({t, high ? hi : lo});
    high = !high;
  }
  return trace;
}

std::vector<RatePoint> random_walk_trace(Rng& rng, Rate start, Rate lo, Rate hi, double sigma,
                                         Time step, Time end) {
  std::vector<RatePoint> trace;
  double bps = start.to_bps();
  for (Time t = Time::zero(); t <= end; t += step) {
    trace.push_back({t, Rate::bps(bps)});
    bps *= std::exp(rng.normal(0.0, sigma));
    bps = std::clamp(bps, lo.to_bps(), hi.to_bps());
  }
  return trace;
}

}  // namespace ccc::sim
