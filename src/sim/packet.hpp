// The packet model shared by the simulator, qdiscs, and endpoints.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/units.hpp"

namespace ccc::sim {

/// Identifies a transport flow end to end. Assigned by the scenario builder;
/// 0 is reserved for "no flow" (e.g. synthetic background packets).
using FlowId = std::uint32_t;

/// Identifies the *user* (subscriber) a flow belongs to. Operator isolation
/// mechanisms (paper §2.1) act per user, not per flow, so qdiscs that model
/// them key on this field.
using UserId = std::uint32_t;

/// One simulated packet. Data and ACK packets share this struct; `is_ack`
/// discriminates. We simulate at packet granularity but do not model byte
/// contents — only the header fields congestion control and queueing need.
struct Packet {
  FlowId flow{0};
  UserId user{0};
  ByteCount size_bytes{0};  ///< wire size, including an assumed header

  bool is_ack{false};

  // --- data packet fields ---
  std::int64_t seq{0};          ///< first payload byte carried
  ByteCount payload_bytes{0};   ///< payload length (seq..seq+payload)
  Time sent_at{Time::zero()};   ///< transmit timestamp (echoed in ACKs)
  bool is_retransmission{false};

  // --- ACK fields ---
  std::int64_t ack_seq{0};            ///< cumulative: all bytes < ack_seq received
  Time echo_sent_at{Time::zero()};    ///< sent_at of the packet being ACKed
  ByteCount receiver_window{0};       ///< flow-control window advertised by receiver
  std::int64_t delivered_bytes{0};    ///< receiver's in-order delivered counter
  /// Total distinct payload bytes that have ARRIVED (in-order + buffered
  /// out-of-order). Monotone and arrival-paced, so ACK spacing of this
  /// counter is the ground-truth delivery rate even during loss recovery.
  std::int64_t received_total{0};
  bool ece{false};                    ///< ECN echo (for ECN-capable qdiscs)

  /// SACK blocks (RFC 2018): received-but-not-cumulative byte ranges
  /// [start, end). Real TCP fits ~3 in the options space.
  struct SackRange {
    std::int64_t start{0};
    std::int64_t end{0};
  };
  static constexpr int kMaxSack = 3;
  SackRange sack[kMaxSack]{};
  int n_sack{0};

  // --- network marks ---
  bool ecn_capable{false};  ///< transport is ECN-capable (ECT)
  bool ecn_marked{false};   ///< CE mark applied by a qdisc

  // --- telemetry ---
  /// Stamped by an instrumented Link when the packet enters its qdisc;
  /// zero() when telemetry is off. Sojourn = dequeue time - enqueued_at.
  Time enqueued_at{Time::zero()};
};

/// Conventional sizes (Ethernet-ish MTU; 40-byte TCP/IP header abstraction).
inline constexpr ByteCount kHeaderBytes = 40;
inline constexpr ByteCount kMss = 1448;                     ///< payload per full packet
inline constexpr ByteCount kFullPacket = kMss + kHeaderBytes;
inline constexpr ByteCount kAckBytes = kHeaderBytes;

/// Receiver interface: anything that can accept a packet at a point in time.
/// Links deliver into sinks; endpoints and demultiplexers implement this.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(const Packet& pkt) = 0;

  /// Bulk hook for a same-time delivery run (event engine v3): the scheduler
  /// hands over every packet a delivery batch has due at one instant in one
  /// call, in (time, seq) order. The default preserves per-packet semantics
  /// exactly; sinks on hot paths override it to touch their state once per
  /// run instead of once per packet.
  virtual void deliver_batch(const Packet* const* pkts, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) deliver(*pkts[i]);
  }
};

}  // namespace ccc::sim
