// Trace-driven variable link capacity.
//
// The paper (§2.3, §5.1) argues future CCAs should target bandwidth
// *variability* (cellular/satellite links) rather than contention. This
// driver replays a piecewise-constant rate schedule onto a Link, in the
// spirit of Mahimahi's packet-delivery traces, and supports simple synthetic
// patterns (square wave, random walk) for the variability benches.
#pragma once

#include <vector>

#include "sim/link.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace ccc::sim {

/// One step of a rate schedule: hold `rate` starting at absolute time `at`.
struct RatePoint {
  Time at{Time::zero()};
  Rate rate{Rate::zero()};
};

/// Applies a rate schedule to a link by scheduling set_rate() calls.
/// The schedule must be sorted by time; points in the past are ignored.
void apply_rate_trace(Scheduler& sched, Link& link, const std::vector<RatePoint>& trace);

/// Builds a square-wave schedule oscillating between lo and hi every
/// `half_period`, from t=0 to `end`. Models coarse cellular capacity swings.
[[nodiscard]] std::vector<RatePoint> square_wave_trace(Rate lo, Rate hi, Time half_period,
                                                       Time end);

/// Builds a bounded multiplicative random-walk schedule: every `step` the
/// rate is multiplied by exp(N(0, sigma)), clamped to [lo, hi].
[[nodiscard]] std::vector<RatePoint> random_walk_trace(Rng& rng, Rate start, Rate lo, Rate hi,
                                                       double sigma, Time step, Time end);

}  // namespace ccc::sim
