// PacketPool — an arena for packets that are "on the wire".
//
// The event engine's delivery path (Link serialization, propagation,
// DelayLine pipes) used to round-trip every packet through std::function
// closures: each hop copied the ~170-byte Packet into a heap-allocated
// capture, then copied it again into the next hop's capture. The pool
// replaces that with one slab-resident copy per wire traversal: the sender
// acquires a handle, the typed deliver event carries the 4-byte handle, and
// the scheduler hands sinks a reference into the slab.
//
// Storage is a std::deque so slots never move: a sink reading the delivered
// packet may itself acquire new handles (an ACK turned around into a reverse
// link) without invalidating the reference it was handed. Freed slots go on
// an intrusive free list and are reused LIFO, so steady-state simulations
// allocate nothing — the deque grows to the high-water mark of in-flight
// packets (roughly the sum of BDPs) and stays there.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/packet.hpp"

namespace ccc::sim {

/// Slab of reusable Packet slots addressed by 4-byte handles. Single
/// threaded, like the scheduler that owns it.
class PacketPool {
 public:
  using Handle = std::uint32_t;

  /// Copies `pkt` into a slot (reusing a freed one if possible) and returns
  /// its handle. The slot stays valid until release().
  Handle acquire(const Packet& pkt) {
    Handle h;
    if (!free_.empty()) {
      h = free_.back();
      free_.pop_back();
      slots_[h] = pkt;
    } else {
      h = static_cast<Handle>(slots_.size());
      slots_.push_back(pkt);
    }
    ++live_;
    return h;
  }

  /// The packet behind `h`. References stay valid across acquire() — deque
  /// storage never relocates — but not across release() of the same handle.
  [[nodiscard]] const Packet& get(Handle h) const { return slots_[h]; }
  [[nodiscard]] Packet& get(Handle h) { return slots_[h]; }

  /// Returns the slot to the free list. `h` must be live.
  void release(Handle h) {
    free_.push_back(h);
    --live_;
  }

  /// Currently-acquired slots (in-flight packets).
  [[nodiscard]] std::size_t live() const { return live_; }
  /// High-water mark: total slots ever created.
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  std::deque<Packet> slots_;
  std::vector<Handle> free_;
  std::size_t live_{0};
};

}  // namespace ccc::sim
