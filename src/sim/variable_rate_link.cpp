#include "sim/variable_rate_link.hpp"

#include <algorithm>
#include <cassert>

namespace ccc::sim {

VariableRateLink::VariableRateLink(Scheduler& sched, Link& link, VariableRateLinkConfig cfg)
    : sched_{sched}, link_{link}, cfg_{cfg}, rng_{cfg.seed} {
  assert(cfg_.markov.good.to_bps() > 0.0 && cfg_.markov.bad.to_bps() > 0.0);
  assert(cfg_.markov.mean_good > Time::zero() && cfg_.markov.mean_bad > Time::zero());
  if (cfg_.aggregation.enabled) {
    assert(cfg_.aggregation.txop > Time::zero() && cfg_.aggregation.gap > Time::zero());
    assert(cfg_.aggregation.stall_rate.to_bps() > 0.0);
  }
}

Time VariableRateLink::dwell(Time mean) {
  // Exponential dwell, floored at 1 ms so a tiny draw cannot flood the
  // scheduler with transitions.
  const double sec = std::max(0.001, rng_.exponential(mean.to_sec()));
  return Time::sec(sec);
}

void VariableRateLink::apply_rate() {
  const Rate state_rate = good_ ? cfg_.markov.good : cfg_.markov.bad;
  if (cfg_.aggregation.enabled && !burst_) {
    link_.set_rate(cfg_.aggregation.stall_rate);
  } else {
    link_.set_rate(state_rate);
  }
}

void VariableRateLink::start(Time until) {
  until_ = until;
  good_ = true;
  burst_ = true;
  apply_rate();
  const Time first = sched_.now() + dwell(cfg_.markov.mean_good);
  if (first < until_) {
    sched_.schedule_member_fire_at<&VariableRateLink::on_transition>(first, this);
  }
  if (cfg_.aggregation.enabled) {
    const Time toggle = sched_.now() + cfg_.aggregation.txop;
    if (toggle < until_) {
      sched_.schedule_member_fire_at<&VariableRateLink::on_toggle>(toggle, this);
    }
  }
}

void VariableRateLink::on_transition() {
  good_ = !good_;
  ++transitions_;
  apply_rate();
  const Time next =
      sched_.now() + dwell(good_ ? cfg_.markov.mean_good : cfg_.markov.mean_bad);
  if (next < until_) {
    sched_.schedule_member_fire_at<&VariableRateLink::on_transition>(next, this);
  }
}

void VariableRateLink::on_toggle() {
  burst_ = !burst_;
  apply_rate();
  const Time next = sched_.now() + (burst_ ? cfg_.aggregation.txop : cfg_.aggregation.gap);
  if (next < until_) {
    sched_.schedule_member_fire_at<&VariableRateLink::on_toggle>(next, this);
  }
}

void VariableRateLink::replay(Scheduler& sched, Link& link, const std::vector<RatePoint>& trace) {
  apply_rate_trace(sched, link, trace);
}

void VariableRateLink::square_wave(Scheduler& sched, Link& link, Rate lo, Rate hi,
                                   Time half_period, Time end) {
  apply_rate_trace(sched, link, square_wave_trace(lo, hi, half_period, end));
}

void VariableRateLink::random_walk(Scheduler& sched, Link& link, Rng& rng, Rate start, Rate lo,
                                   Rate hi, double sigma, Time step, Time end) {
  apply_rate_trace(sched, link, random_walk_trace(rng, start, lo, hi, sigma, step, end));
}

}  // namespace ccc::sim
