// Discrete-event scheduler: the heart of the ccascope network simulator.
//
// The simulator is single threaded and driven entirely by this event queue.
// Components schedule callbacks at absolute times; ties are broken by
// insertion order so runs are fully deterministic.
//
// Event engine v2 (see DESIGN.md "Event engine v2" for the full argument):
//
//  * Typed event records. The time-ordered entries carry their payload
//    inline as a small tagged union — a raw function pointer + context for
//    timer/wake events (kCall), a sink pointer + PacketPool handle for
//    packet deliveries (kDeliver), and a slab-resident std::function only as
//    the generic fallback (kClosure). The common paths (link delivery,
//    RTO/pacing timers) therefore allocate nothing and dispatch through a
//    switch, not type erasure.
//
//  * A hierarchical timer wheel (4 levels x 64 slots, ~1 ms ticks) sits in
//    front of the binary heap and absorbs the cancellation-heavy timers:
//    an RTO that is re-armed on every ACK is pushed into a bucket in O(1)
//    and, once cancelled, is dropped in place — it never touches the heap.
//    Entries the cursor reaches spill into the heap *before* their due time,
//    so all firing still goes through the single (time, seq) heap order and
//    the FIFO tie-break — and with it bit-identical experiment output — is
//    preserved exactly.
//
//  * Cancellation still works through the slab: cancellable events hold a
//    generation-counted slot; a stale id never aliases a newer event.
//    Fire-and-forget deliveries skip the slab entirely (slot == kNoSlot).
//
// Cancelled events are lazily dropped when popped or cascaded; if too many
// accumulate (long-lived retransmission timers that ACKs keep disarming),
// the heap — or the wheel — is compacted in place so neither grows
// unboundedly.
//
// Event engine v3 adds per-sink delivery batches (see DESIGN.md "Event
// engine v3"): a component whose arrivals are time-monotonic — a Link's
// propagation pipe, a DelayLine — registers a batch and appends its
// in-flight packets to a struct-of-arrays queue (parallel arrival-time /
// seq / arena-handle vectors) instead of pushing one scheduler entry per
// packet. The queue *is* a sorted run, so the scheduler merges its front
// against the heap/ready/wheel fronts in pop_next() and, when the batch is
// globally earliest, synthesizes one kDeliverBatch dispatch that drains
// every delivery up to the next non-batch event — same-time runs go to the
// sink as a single deliver_batch() call. Every delivery keeps its unique
// (time, seq) key, so the firing order is bit-identical to one-entry-per-
// packet scheduling; only the bookkeeping is amortized.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/packet.hpp"
#include "sim/packet_pool.hpp"
#include "util/units.hpp"

namespace ccc::sim {

/// Identifies a scheduled event so it can be cancelled (e.g. a retransmission
/// timer disarmed by an ACK). Packed as (generation << 32) | slot: the slab
/// slot is reused after the event fires or is cancelled, but its generation
/// counter is bumped on every release, so a stale id never aliases a newer
/// event scheduled into the same slot.
using EventId = std::uint64_t;

/// Payload of a typed (kCall) event: called as fn(ctx, arg). The common
/// timer shape is fn = a captureless-lambda trampoline, ctx = the component,
/// arg = optional small payload (a PacketPool handle, a bit_cast double).
using RawCallback = void (*)(void* ctx, std::uint64_t arg);

/// A time-ordered event queue with cancellation.
///
/// Events at equal times fire in the order they were scheduled (FIFO), which
/// makes packet orderings — and therefore whole experiments — reproducible.
class Scheduler {
 public:
  /// Current simulated time. Starts at zero.
  [[nodiscard]] Time now() const { return now_; }

  /// The packet arena used by typed deliver events (and by Link for the
  /// packet currently serializing).
  [[nodiscard]] PacketPool& packets() { return pool_; }
  [[nodiscard]] const PacketPool& packets() const { return pool_; }

  /// Schedules `fn` to run at absolute time `at` (generic-closure fallback;
  /// prefer the typed schedule_call/schedule_member forms on hot paths).
  /// Precondition: at >= now() (the past cannot be scheduled).
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` after now.
  EventId schedule_after(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Typed, allocation-free form: schedules fn(ctx, arg) at `at`.
  /// Cancellable like any closure event. Precondition: at >= now().
  EventId schedule_call_at(Time at, RawCallback fn, void* ctx, std::uint64_t arg = 0);
  EventId schedule_call_after(Time delay, RawCallback fn, void* ctx, std::uint64_t arg = 0) {
    return schedule_call_at(now_ + delay, fn, ctx, arg);
  }

  /// Sugar for the dominant timer shape: a nullary member function on a
  /// component, e.g. schedule_member_at<&TcpSender::on_rto_fire>(t, this).
  /// Compiles to a captureless trampoline — no allocation, no type erasure.
  template <auto MemFn, class T>
  EventId schedule_member_at(Time at, T* obj) {
    return schedule_call_at(
        at, [](void* ctx, std::uint64_t) { (static_cast<T*>(ctx)->*MemFn)(); }, obj);
  }
  template <auto MemFn, class T>
  EventId schedule_member_after(Time delay, T* obj) {
    return schedule_member_at<MemFn>(now_ + delay, obj);
  }

  /// Fire-and-forget typed event: like schedule_call_at but not cancellable,
  /// so it skips the cancellation slab entirely (no slot, no generation, no
  /// EventId). The cheapest way to run a callback later; use it for the many
  /// timers whose ids are discarded — transmit completions, delay lines,
  /// periodic self-rescheduling ticks.
  void schedule_fire_at(Time at, RawCallback fn, void* ctx, std::uint64_t arg = 0);
  void schedule_fire_after(Time delay, RawCallback fn, void* ctx, std::uint64_t arg = 0) {
    schedule_fire_at(now_ + delay, fn, ctx, arg);
  }

  /// Member-function sugar for schedule_fire_at (not cancellable).
  template <auto MemFn, class T>
  void schedule_member_fire_at(Time at, T* obj) {
    schedule_fire_at(
        at, [](void* ctx, std::uint64_t) { (static_cast<T*>(ctx)->*MemFn)(); }, obj);
  }
  template <auto MemFn, class T>
  void schedule_member_fire_after(Time delay, T* obj) {
    schedule_member_fire_at<MemFn>(now_ + delay, obj);
  }

  /// Fire-and-forget packet delivery: copies `pkt` into the arena and hands
  /// `sink` a reference to that copy at time `at`. Not cancellable (nothing
  /// in the simulator cancels an in-flight packet), which is what lets it
  /// skip the cancellation slab entirely.
  void schedule_deliver_at(Time at, PacketSink& sink, const Packet& pkt) {
    schedule_deliver_handle_at(at, sink, pool_.acquire(pkt));
  }
  void schedule_deliver_after(Time delay, PacketSink& sink, const Packet& pkt) {
    schedule_deliver_at(now_ + delay, sink, pkt);
  }

  /// As above but transfers ownership of an already-acquired handle — the
  /// scheduler releases it after delivery. Used by Link to move the packet
  /// it serialized straight into propagation without another copy.
  void schedule_deliver_handle_at(Time at, PacketSink& sink, PacketPool::Handle h);
  void schedule_deliver_handle_after(Time delay, PacketSink& sink, PacketPool::Handle h) {
    schedule_deliver_handle_at(now_ + delay, sink, h);
  }

  // ---- delivery batches (event engine v3) ----

  /// Identifies one per-sink in-flight batch (see the header comment).
  using BatchId = std::uint32_t;

  /// Registers a struct-of-arrays in-flight batch delivering into `sink`.
  /// One per monotonic producer (a Link's propagation pipe, a DelayLine);
  /// batches are never unregistered — components live for the whole run.
  [[nodiscard]] BatchId register_delivery_batch(PacketSink& sink);

  /// Re-points a batch at a different sink. Applies to everything still in
  /// flight — the batch analogue of DelayLine::set_dst()'s fire-time
  /// dst-read semantics.
  void rebind_delivery_batch(BatchId id, PacketSink& sink);

  /// Fire-and-forget packet delivery through a batch: like
  /// schedule_deliver_at, but the in-flight record lives in the batch's
  /// parallel arrays instead of a heap/wheel entry. Appends must be
  /// time-monotonic per batch (true for any fixed-delay pipe fed by a
  /// monotonic clock); an out-of-order append falls back to a regular
  /// per-event entry bound to the batch's current sink.
  void schedule_deliver_batch_at(Time at, BatchId id, const Packet& pkt) {
    schedule_deliver_batch_handle_at(at, id, pool_.acquire(pkt));
  }
  void schedule_deliver_batch_after(Time delay, BatchId id, const Packet& pkt) {
    schedule_deliver_batch_at(now_ + delay, id, pkt);
  }
  void schedule_deliver_batch_handle_at(Time at, BatchId id, PacketPool::Handle h);
  void schedule_deliver_batch_handle_after(Time delay, BatchId id, PacketPool::Handle h) {
    schedule_deliver_batch_handle_at(now_ + delay, id, h);
  }

  /// Deliveries currently queued in batch `id` (tests / introspection).
  [[nodiscard]] std::size_t batch_in_flight(BatchId id) const {
    const DeliveryBatch& q = batches_[id];
    return q.at.size() - q.head;
  }

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled
  /// or unknown id is a harmless no-op (timers race with the events that
  /// disarm them).
  void cancel(EventId id);

  /// Runs events until the queue is empty or simulated time would exceed
  /// `end`; leaves now() == end (events exactly at `end` do fire).
  void run_until(Time end);

  /// Runs a single event if one is pending. Returns false if queue empty.
  bool run_one();

  /// Number of events executed since construction (for perf benches).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  /// Number of live (non-cancelled) pending events.
  [[nodiscard]] std::size_t pending() const { return live_; }
  /// Heap records including not-yet-collected cancelled ones and the
  /// unconsumed part of the spilled ready batch (tests use this to verify
  /// compaction keeps near-term storage bounded under cancel churn).
  [[nodiscard]] std::size_t heap_entries() const {
    return heap_.size() + (ready_.size() - ready_pos_);
  }
  /// Wheel-resident records, including not-yet-swept cancelled ones (tests
  /// use this to verify cancel churn stays bounded without touching the
  /// heap).
  [[nodiscard]] std::size_t wheel_entries() const { return wheel_size_; }

 private:
  enum class Kind : std::uint8_t { kClosure, kCall, kDeliver, kDeliverBatch };

  /// Sentinel slot for fire-and-forget entries that carry no cancellation
  /// state (kDeliver). Such entries are always live.
  static constexpr std::uint32_t kNoSlot = 0xffff'ffffu;

  /// A slab slot holding one cancellable event's identity (and, for kClosure
  /// events, its callback). `gen` counts how many times the slot has been
  /// released; an EventId or queue entry carrying an older generation is
  /// stale. (Wrap after 2^32 releases of a single slot is beyond any
  /// simulation we run.) `loc` remembers where the entry currently sits —
  /// kLocHeap, kLocReady, or (level << 8 | bucket) — so cancel() knows which
  /// structure accumulated the stale record.
  struct Slot {
    std::function<void()> fn;
    std::uint32_t gen{1};
    std::uint16_t loc{kLocHeap};
    bool armed{false};
  };
  static constexpr std::uint16_t kLocHeap = 0xffff;
  static constexpr std::uint16_t kLocReady = 0xfffe;

  struct Entry {
    Time at;
    std::uint64_t seq;   // global schedule order: FIFO tie-break at equal times
    std::uint32_t slot;  // kNoSlot for fire-and-forget deliveries
    std::uint32_t gen;
    union {
      struct {
        RawCallback fn;
        void* ctx;
        std::uint64_t arg;
      } call;  // kCall
      struct {
        PacketSink* sink;
        PacketPool::Handle handle;
      } deliver;  // kDeliver
      struct {
        std::uint32_t id;
      } batch;  // kDeliverBatch — synthesized by pop_next, never stored
    } u{};
    Kind kind{Kind::kClosure};
  };
  // std::push_heap/pop_heap build a max-heap w.r.t. the comparator, so
  // "later" as less-than puts the earliest (and lowest-seq) entry at front.
  // Stateless functors (not free functions): passing a function pointer to
  // the heap algorithms makes every comparison an indirect call.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  static constexpr Later later{};
  // Ascending (time, seq): the ready batch's sort order and the merge order
  // between the batch front and the heap front. seq is unique, so this is a
  // strict total order identical to the firing order.
  struct Earlier {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    }
  };
  static constexpr Earlier earlier{};

  // ---- timer wheel geometry ----
  // Ticks are 2^20 ns (~1.05 ms): RTTs, RTOs and pacing gaps all span many
  // ticks, while same-tick events (sub-ms chains) go straight to the heap.
  // 4 levels x 64 slots cover [2, 64^4) ticks ≈ 4.9 simulated hours; longer
  // timers overflow to the heap.
  static constexpr int kTickBits = 20;
  static constexpr int kSlotBits = 6;
  static constexpr int kLevels = 4;
  static constexpr std::uint64_t kSlotsPerLevel = 1ull << kSlotBits;
  static constexpr std::uint64_t kSlotMask = kSlotsPerLevel - 1;
  static constexpr std::uint64_t kMinWheelTicks = 2;  // below: heap (due "now")
  static constexpr std::uint64_t kMaxWheelTicks = 1ull << (kSlotBits * kLevels);

  [[nodiscard]] static std::uint64_t tick_of(Time t) {
    return static_cast<std::uint64_t>(t.count_ns()) >> kTickBits;
  }
  [[nodiscard]] static std::uint16_t wheel_loc(int level, std::uint64_t bucket) {
    return static_cast<std::uint16_t>((static_cast<unsigned>(level) << 8) | bucket);
  }

  [[nodiscard]] static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }
  [[nodiscard]] bool is_live(const Entry& e) const {
    if (e.slot == kNoSlot) return true;
    const Slot& s = slots_[e.slot];
    return s.armed && s.gen == e.gen;
  }

  /// Allocates a slab slot for a cancellable event and returns its index.
  std::uint32_t acquire_slot();
  /// Moves the callback out of a live slot and returns the slot to the free
  /// list (bumping its generation so stale ids/entries cannot alias it).
  std::function<void()> release_slot(std::uint32_t slot);
  /// As above but destroys the callback (if any) in place instead of
  /// returning it — cancel() and the kCall fire path discard it anyway, and
  /// skipping the std::function round-trip matters at RTO-churn rates.
  void release_slot_discard(std::uint32_t slot);

  /// Routes an entry to the wheel (cancellable, far enough out) or the heap.
  void place(const Entry& e);
  /// Pushes an entry onto the heap and records its location.
  void push_heap_entry(const Entry& e);
  /// Ensures every wheel entry with tick < target has been spilled into the
  /// heap, advancing the cursor to target.
  void catch_up_wheel(std::uint64_t target);
  /// Smallest tick >= the cursor at which a bucket must spill or cascade;
  /// `limit` if none below it. Precondition: wheel_size_ > 0.
  [[nodiscard]] std::uint64_t next_wheel_tick(std::uint64_t limit) const;
  /// Spills/cascades every bucket due exactly at tick t (cursor == t).
  void process_tick(std::uint64_t t);
  /// Re-places a level>=1 bucket's entries one level down (or into the heap).
  void cascade(int level, std::uint64_t bucket);
  /// Drops cancelled entries from every bucket (wheel analogue of compact()).
  void sweep_wheel();

  /// Pops the globally-earliest live event (ready batch, heap and wheel all
  /// considered) into `out`. Returns false if there is none at or before
  /// `limit`.
  bool pop_next(Entry& out, Time limit);
  /// Pops the front heap entry (the earliest).
  void pop_front();
  /// Rebuilds the heap without stale (cancelled) entries.
  void compact();
  /// Executes one entry: advances the clock and dispatches on kind.
  /// `limit` bounds how far a kDeliverBatch dispatch may drain (run_until's
  /// end time, or Time::never() from run_one).
  void dispatch(const Entry& e, Time limit);

  // ---- delivery-batch internals (event engine v3) ----

  /// One per-sink struct-of-arrays in-flight queue. The parallel vectors are
  /// a sorted-by-(at, seq) run: appends are time-monotonic (enforced at
  /// schedule time; violators fall back to per-event entries) and seq is
  /// globally increasing, so [head, size) is always in firing order.
  struct DeliveryBatch {
    PacketSink* sink{nullptr};
    std::vector<Time> at;
    std::vector<std::uint64_t> seq;
    std::vector<PacketPool::Handle> handle;
    std::size_t head{0};
  };
  static constexpr std::uint32_t kNoBatch = 0xffff'ffffu;

  /// Recomputes batch_min_ (the id of the batch with the earliest front, by
  /// (at, seq); kNoBatch when all are empty). O(#batches); called only when
  /// the current minimum's front changes, not per append.
  void recompute_batch_min();
  /// Drains batch `id` up to (exclusive) the earliest non-batch event or
  /// `limit`, delivering same-time runs through one deliver_batch() call.
  /// With single_step set, delivers exactly the front run's first element
  /// (run_one's one-event contract).
  void dispatch_batch(std::uint32_t id, Time limit, bool single_step);

  Time now_{Time::zero()};
  std::uint64_t next_seq_{1};
  std::uint64_t executed_{0};
  std::size_t live_{0};   // armed slots + pending fire-and-forget entries
  std::size_t stale_{0};  // cancelled entries still sitting in the heap
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  PacketPool pool_;

  // Wheel state. wheel_tick_ is the cursor: every bucket entry has
  // tick(at) >= wheel_tick_, and all spills/cascades for earlier ticks have
  // happened. occupied_[l] is a bitmask of non-empty buckets at level l.
  std::uint64_t wheel_tick_{0};
  std::size_t wheel_size_{0};
  std::size_t wheel_stale_{0};  // cancelled entries still sitting in buckets
  std::uint64_t occupied_[kLevels]{};
  std::vector<Entry> wheel_[kLevels][kSlotsPerLevel];
  std::vector<Entry> cascade_scratch_;
  // Memoized next_wheel_tick(∞): the earliest tick at which the wheel does
  // any work (level-0 spill or cascade). pop_next and the batch drain's
  // bound recompute consult the wheel once per event, so the occupied-bitmap
  // scan is cached here — inserts tighten it (min), processing a tick
  // invalidates it. Removals may leave it conservatively early, which costs
  // at most one empty process_tick step and is never wrong.
  mutable std::uint64_t wheel_next_{0};
  mutable bool wheel_next_valid_{false};

  // The ready batch: a spilled level-0 bucket, sorted ascending by
  // (time, seq) and consumed from the front in O(1) — the calendar-queue
  // move that keeps a 10k-packet in-flight window out of the binary heap.
  // Entries scheduled after the spill (same-tick arrivals) land in the heap
  // and are merged in by comparing actual (time, seq) keys, so the firing
  // order is exactly the heap-only order.
  std::vector<Entry> ready_;
  std::size_t ready_pos_{0};
  std::size_t ready_stale_{0};  // cancelled entries still in the batch

  // Delivery batches. batch_live_ counts queued batch deliveries (they are
  // part of live_ too); batch_min_ caches which batch currently owns the
  // earliest front so pop_next pays O(1) on the no-batch/quiet path.
  std::vector<DeliveryBatch> batches_;
  std::size_t batch_live_{0};
  std::uint32_t batch_min_{kNoBatch};
  // Scratch for dispatch_batch: the run's handles and packet pointers are
  // copied out before delivery so a sink that appends (and reallocates the
  // SoA vectors) mid-callback cannot invalidate what we are iterating.
  std::vector<PacketPool::Handle> drain_handles_;
  std::vector<const Packet*> drain_pkts_;
};

}  // namespace ccc::sim
