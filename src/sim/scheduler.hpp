// Discrete-event scheduler: the heart of the ccascope network simulator.
//
// The simulator is single threaded and driven entirely by this event queue.
// Components schedule callbacks at absolute times; ties are broken by
// insertion order so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/units.hpp"

namespace ccc::sim {

/// Identifies a scheduled event so it can be cancelled (e.g. a retransmission
/// timer disarmed by an ACK).
using EventId = std::uint64_t;

/// A time-ordered event queue with cancellation.
///
/// Events at equal times fire in the order they were scheduled (FIFO), which
/// makes packet orderings — and therefore whole experiments — reproducible.
class Scheduler {
 public:
  /// Current simulated time. Starts at zero.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at`.
  /// Precondition: at >= now() (the past cannot be scheduled).
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` after now.
  EventId schedule_after(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op (timers race with the events that disarm them).
  void cancel(EventId id);

  /// Runs events until the queue is empty or simulated time would exceed
  /// `end`; leaves now() == end (events exactly at `end` do fire).
  void run_until(Time end);

  /// Runs a single event if one is pending. Returns false if queue empty.
  bool run_one();

  /// Number of events executed since construction (for perf benches).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  /// Number of live (non-cancelled) pending events.
  [[nodiscard]] std::size_t pending() const { return pending_callbacks_.size(); }

 private:
  struct Entry {
    Time at;
    EventId id;
    // Min-heap by (time, id): id grows monotonically, giving FIFO tie-break.
    [[nodiscard]] bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  Time now_{Time::zero()};
  EventId next_id_{1};
  std::uint64_t executed_{0};
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> pending_callbacks_;
};

}  // namespace ccc::sim
