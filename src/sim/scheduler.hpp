// Discrete-event scheduler: the heart of the ccascope network simulator.
//
// The simulator is single threaded and driven entirely by this event queue.
// Components schedule callbacks at absolute times; ties are broken by
// insertion order so runs are fully deterministic.
//
// Hot-path design: callbacks live in a slab (a vector of reusable slots with
// an intrusive free list) instead of a hash map, and the time-ordered heap
// stores plain {time, seq, slot, gen} records. Scheduling, cancelling and
// firing therefore cost O(log n) heap work plus O(1) slab indexing — no hash
// lookups and no per-event node allocation. Cancelled events are lazily
// dropped when popped; if too many accumulate (long-lived retransmission
// timers that ACKs keep disarming), the heap is compacted in place so it
// cannot grow unboundedly.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/units.hpp"

namespace ccc::sim {

/// Identifies a scheduled event so it can be cancelled (e.g. a retransmission
/// timer disarmed by an ACK). Packed as (generation << 32) | slot: the slab
/// slot is reused after the event fires or is cancelled, but its generation
/// counter is bumped on every release, so a stale id never aliases a newer
/// event scheduled into the same slot.
using EventId = std::uint64_t;

/// A time-ordered event queue with cancellation.
///
/// Events at equal times fire in the order they were scheduled (FIFO), which
/// makes packet orderings — and therefore whole experiments — reproducible.
class Scheduler {
 public:
  /// Current simulated time. Starts at zero.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at`.
  /// Precondition: at >= now() (the past cannot be scheduled).
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` after now.
  EventId schedule_after(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled
  /// or unknown id is a harmless no-op (timers race with the events that
  /// disarm them).
  void cancel(EventId id);

  /// Runs events until the queue is empty or simulated time would exceed
  /// `end`; leaves now() == end (events exactly at `end` do fire).
  void run_until(Time end);

  /// Runs a single event if one is pending. Returns false if queue empty.
  bool run_one();

  /// Number of events executed since construction (for perf benches).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  /// Number of live (non-cancelled) pending events.
  [[nodiscard]] std::size_t pending() const { return live_; }
  /// Heap records including not-yet-collected cancelled ones (tests use this
  /// to verify compaction keeps the heap bounded under cancel churn).
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }

 private:
  /// A slab slot holding one event's callback. `gen` counts how many times
  /// the slot has been released; an EventId or heap entry carrying an older
  /// generation is stale. (Wrap after 2^32 releases of a single slot is
  /// beyond any simulation we run.)
  struct Slot {
    std::function<void()> fn;
    std::uint32_t gen{1};
    bool armed{false};
  };

  struct Entry {
    Time at;
    std::uint64_t seq;   // global schedule order: FIFO tie-break at equal times
    std::uint32_t slot;
    std::uint32_t gen;
  };
  // std::push_heap/pop_heap build a max-heap w.r.t. the comparator, so
  // "later" as less-than puts the earliest (and lowest-seq) entry at front.
  static bool later(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }

  [[nodiscard]] static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }
  [[nodiscard]] bool is_live(const Entry& e) const {
    const Slot& s = slots_[e.slot];
    return s.armed && s.gen == e.gen;
  }

  /// Moves the callback out of a live slot and returns the slot to the free
  /// list (bumping its generation so stale ids/entries cannot alias it).
  std::function<void()> release_slot(std::uint32_t slot);
  /// Pops the front heap entry (the earliest).
  void pop_front();
  /// Rebuilds the heap without stale (cancelled) entries.
  void compact();

  Time now_{Time::zero()};
  std::uint64_t next_seq_{1};
  std::uint64_t executed_{0};
  std::size_t live_{0};   // armed slots == live heap entries
  std::size_t stale_{0};  // cancelled entries still sitting in the heap
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace ccc::sim
