// Flow demultiplexer: routes packets arriving off a shared link to the
// per-flow endpoint that owns them (the "home router / host" of a scenario).
#pragma once

#include <unordered_map>

#include "sim/packet.hpp"

namespace ccc::sim {

/// Routes by FlowId. Packets for unregistered flows are counted and dropped
/// (e.g. a short flow whose endpoint already finished and deregistered).
class FlowDemux : public PacketSink {
 public:
  /// Registers `sink` as the destination for `flow`. Overwrites any previous
  /// registration. `sink` must outlive its registration.
  void register_flow(FlowId flow, PacketSink& sink) { routes_[flow] = &sink; }

  /// Removes a flow's route; subsequent packets for it are dropped.
  void deregister_flow(FlowId flow) { routes_.erase(flow); }

  void deliver(const Packet& pkt) override {
    if (auto it = routes_.find(pkt.flow); it != routes_.end()) {
      it->second->deliver(pkt);
    } else {
      ++unroutable_;
    }
  }

  [[nodiscard]] std::uint64_t unroutable_packets() const { return unroutable_; }

 private:
  std::unordered_map<FlowId, PacketSink*> routes_;
  std::uint64_t unroutable_{0};
};

/// A sink that discards everything (a traffic blackhole; useful for CBR
/// background traffic whose receiver does not respond).
class NullSink : public PacketSink {
 public:
  void deliver(const Packet& pkt) override {
    ++packets_;
    bytes_ += pkt.size_bytes;
  }
  [[nodiscard]] std::uint64_t packets() const { return packets_; }
  [[nodiscard]] ByteCount bytes() const { return bytes_; }

 private:
  std::uint64_t packets_{0};
  ByteCount bytes_{0};
};

}  // namespace ccc::sim
