#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace ccc::sim {

namespace {
/// Wheel level whose span covers `delta` ticks.
/// Precondition: kMinWheelTicks <= delta < kMaxWheelTicks.
int level_for(std::uint64_t delta) {
  if (delta < 64) return 0;
  if (delta < 64 * 64) return 1;
  if (delta < 64 * 64 * 64) return 2;
  return 3;
}
}  // namespace

std::uint32_t Scheduler::acquire_slot() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].armed = true;
  ++live_;
  return slot;
}

std::function<void()> Scheduler::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  std::function<void()> fn;
  if (s.fn) {  // kCall slots never set fn; skip the type-erased move for them
    fn = std::move(s.fn);
    s.fn = nullptr;  // drop the moved-from shell so captures are destroyed
  }
  s.armed = false;
  ++s.gen;
  free_slots_.push_back(slot);
  --live_;
  return fn;
}

void Scheduler::release_slot_discard(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.fn) s.fn = nullptr;  // a cancelled closure's captures die here
  s.armed = false;
  ++s.gen;
  free_slots_.push_back(slot);
  --live_;
}

void Scheduler::push_heap_entry(const Entry& e) {
  if (e.slot != kNoSlot) slots_[e.slot].loc = kLocHeap;
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), later);
}

void Scheduler::place(const Entry& e) {
  // Every far-enough event goes through a bucket: cancellable events because
  // a cancelled bucket entry dies in place without touching the heap, and
  // deliveries (slot == kNoSlot) because parking a bandwidth-delay window of
  // in-flight packets in buckets keeps the binary heap down to the current
  // tick's worth of events — the difference between O(log 10k) and O(log 100)
  // per operation in a busy dumbbell.
  const std::uint64_t tick = tick_of(e.at);
  const std::uint64_t delta = tick - wheel_tick_;  // at >= now implies tick >= cursor - 1
  if (delta >= kMinWheelTicks && delta < kMaxWheelTicks &&
      static_cast<std::int64_t>(delta) > 0) {
    const int level = level_for(delta);
    const std::uint64_t bucket = (tick >> (kSlotBits * level)) & kSlotMask;
    wheel_[level][bucket].push_back(e);
    occupied_[level] |= 1ull << bucket;
    if (e.slot != kNoSlot) slots_[e.slot].loc = wheel_loc(level, bucket);
    ++wheel_size_;
    if (wheel_next_valid_) {
      // Keep the memoized next-work tick exact: a level-0 entry acts at its
      // own tick, a higher-level one when the cursor enters its block
      // (which is strictly ahead of the cursor — delta >= 64^level puts the
      // target in a later block, so no wrap ambiguity here).
      const std::uint64_t action =
          level == 0 ? tick : (tick >> (kSlotBits * level)) << (kSlotBits * level);
      if (action < wheel_next_) wheel_next_ = action;
    }
    return;
  }
  push_heap_entry(e);
}

EventId Scheduler::schedule_at(Time at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  Entry e;
  e.at = at;
  e.seq = next_seq_++;
  e.slot = slot;
  e.gen = s.gen;
  e.kind = Kind::kClosure;
  place(e);
  return make_id(slot, s.gen);
}

EventId Scheduler::schedule_call_at(Time at, RawCallback fn, void* ctx, std::uint64_t arg) {
  assert(at >= now_ && "cannot schedule into the past");
  const std::uint32_t slot = acquire_slot();
  Entry e;
  e.at = at;
  e.seq = next_seq_++;
  e.slot = slot;
  e.gen = slots_[slot].gen;
  e.kind = Kind::kCall;
  e.u.call = {fn, ctx, arg};
  place(e);
  return make_id(slot, e.gen);
}

void Scheduler::schedule_fire_at(Time at, RawCallback fn, void* ctx, std::uint64_t arg) {
  assert(at >= now_ && "cannot schedule into the past");
  Entry e;
  e.at = at;
  e.seq = next_seq_++;
  e.slot = kNoSlot;
  e.gen = 0;
  e.kind = Kind::kCall;
  e.u.call = {fn, ctx, arg};
  ++live_;
  place(e);
}

void Scheduler::schedule_deliver_handle_at(Time at, PacketSink& sink, PacketPool::Handle h) {
  assert(at >= now_ && "cannot schedule into the past");
  Entry e;
  e.at = at;
  e.seq = next_seq_++;
  e.slot = kNoSlot;
  e.gen = 0;
  e.kind = Kind::kDeliver;
  e.u.deliver = {&sink, h};
  ++live_;
  place(e);
}

Scheduler::BatchId Scheduler::register_delivery_batch(PacketSink& sink) {
  const auto id = static_cast<BatchId>(batches_.size());
  batches_.emplace_back();
  batches_.back().sink = &sink;
  return id;
}

void Scheduler::rebind_delivery_batch(BatchId id, PacketSink& sink) {
  batches_[id].sink = &sink;
}

void Scheduler::schedule_deliver_batch_handle_at(Time at, BatchId id, PacketPool::Handle h) {
  assert(at >= now_ && "cannot schedule into the past");
  DeliveryBatch& q = batches_[id];
  if (q.head == q.at.size()) {
    if (q.head != 0) {
      // Empty again: reset the consumed prefix so a steady-state pipe reuses
      // the same few slots instead of growing the vectors forever.
      q.at.clear();
      q.seq.clear();
      q.handle.clear();
      q.head = 0;
    }
  } else if (at < q.at.back()) {
    // Out-of-order append: keep [head, size) a sorted run by routing this
    // delivery through a regular per-event entry. Note the sink is captured
    // *now* — a later rebind_delivery_batch() won't redirect it; the
    // monotonic producers (Link, DelayLine) never take this path.
    schedule_deliver_handle_at(at, *q.sink, h);
    return;
  }
  const std::uint64_t seq = next_seq_++;
  const bool was_empty = q.at.empty();
  q.at.push_back(at);
  q.seq.push_back(seq);
  q.handle.push_back(h);
  ++live_;
  ++batch_live_;
  if (was_empty) {
    // A new front appeared; it displaces the cached minimum only if strictly
    // earlier (its seq is the newest, so equal times lose the tie-break).
    // Appends to a non-empty batch never change that batch's front. During a
    // dispatch_batch drain the cached minimum may point at a batch consumed
    // empty (it is recomputed when the drain finishes) — treat that as
    // displaced too, never read its front.
    if (batch_min_ == kNoBatch) {
      batch_min_ = id;
    } else {
      const DeliveryBatch& m = batches_[batch_min_];
      if (m.head == m.at.size() || at < m.at[m.head]) batch_min_ = id;
    }
  }
}

void Scheduler::recompute_batch_min() {
  batch_min_ = kNoBatch;
  if (batch_live_ == 0) return;
  Time best = Time::zero();
  std::uint64_t best_seq = 0;
  for (std::uint32_t b = 0; b < batches_.size(); ++b) {
    const DeliveryBatch& q = batches_[b];
    if (q.head == q.at.size()) continue;
    const Time qa = q.at[q.head];
    const std::uint64_t qs = q.seq[q.head];
    if (batch_min_ == kNoBatch || qa < best || (qa == best && qs < best_seq)) {
      batch_min_ = b;
      best = qa;
      best_seq = qs;
    }
  }
}

void Scheduler::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffff'ffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (!s.armed || s.gen != gen) return;  // already fired/cancelled, or reused
  const std::uint16_t loc = s.loc;
  release_slot_discard(slot);
  // The heap or a wheel bucket still holds this event's entry; it is now
  // stale and will be dropped lazily when popped or cascaded — unless stale
  // entries start to dominate, in which case we compact in place so
  // disarmed timers cannot grow either structure forever. (Eager swap-remove
  // from the wheel bucket was tried and measured slower: the lazy path
  // touches one hot counter where removal touches the bucket's entry array.)
  if (loc == kLocHeap) {
    if (++stale_ >= 64 && stale_ > heap_.size() / 2) compact();
  } else if (loc == kLocReady) {
    ++ready_stale_;  // the batch drains within its tick; dropped at pop
  } else {
    if (++wheel_stale_ >= 64 && wheel_stale_ * 2 > wheel_size_) sweep_wheel();
  }
}

void Scheduler::compact() {
  std::erase_if(heap_, [this](const Entry& e) { return !is_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), later);
  stale_ = 0;
}

void Scheduler::sweep_wheel() {
  for (int l = 0; l < kLevels; ++l) {
    std::uint64_t occ = occupied_[l];
    while (occ != 0) {
      const int b = std::countr_zero(occ);
      occ &= occ - 1;
      auto& bucket = wheel_[l][b];
      wheel_size_ -= std::erase_if(bucket, [this](const Entry& e) { return !is_live(e); });
      if (bucket.empty()) occupied_[l] &= ~(1ull << b);
    }
  }
  wheel_stale_ = 0;
}

std::uint64_t Scheduler::next_wheel_tick(std::uint64_t limit) const {
  // The scan result is memoized in wheel_next_ (see the member comment):
  // hot callers — pop_next and the batch drain's bound recompute — hit the
  // cache, and only a processed tick or a cursor jump past the cached value
  // forces a rescan.
  if (wheel_next_valid_ && wheel_next_ >= wheel_tick_) return std::min(limit, wheel_next_);
  std::uint64_t best = UINT64_MAX;
  // Level 0 buckets spill at their own tick.
  if (occupied_[0] != 0) {
    const unsigned cur = static_cast<unsigned>(wheel_tick_ & kSlotMask);
    const std::uint64_t rot = std::rotr(occupied_[0], static_cast<int>(cur));
    best = std::min(best, wheel_tick_ + static_cast<std::uint64_t>(std::countr_zero(rot)));
  }
  // Level l>=1 buckets cascade when the cursor enters their block (a
  // multiple of 64^l). Distance 0 is ambiguous: with the cursor exactly at
  // the block start the entering cascade is still pending (the bucket holds
  // current-wrap entries), while a cursor strictly inside the block has
  // already cascaded it — anything left there is a full wrap away.
  for (int l = 1; l < kLevels; ++l) {
    if (occupied_[l] == 0) continue;
    const int shift = kSlotBits * l;
    const std::uint64_t block = wheel_tick_ >> shift;
    const unsigned cur = static_cast<unsigned>(block & kSlotMask);
    const std::uint64_t rot = std::rotr(occupied_[l], static_cast<int>(cur));
    std::uint64_t d = static_cast<std::uint64_t>(std::countr_zero(rot));
    if (d == 0 && wheel_tick_ != (block << shift)) d = kSlotsPerLevel;
    best = std::min(best, (block + d) << shift);
  }
  wheel_next_ = best;
  wheel_next_valid_ = true;
  return std::min(limit, best);
}

void Scheduler::cascade(int level, std::uint64_t bucket) {
  auto& b = wheel_[level][bucket];
  occupied_[level] &= ~(1ull << bucket);
  if (b.empty()) return;
  wheel_size_ -= b.size();
  cascade_scratch_.clear();
  cascade_scratch_.swap(b);  // entries may re-place into this same bucket
  for (const Entry& e : cascade_scratch_) {
    if (!is_live(e)) {
      --wheel_stale_;
      continue;
    }
    place(e);
  }
}

void Scheduler::process_tick(std::uint64_t t) {
  // This tick's work is being consumed; the memoized next-work tick must be
  // rediscovered by the next scan (cascades re-place into an invalid hint,
  // which place() deliberately leaves untouched).
  wheel_next_valid_ = false;
  // Entering a new block at any level cascades that level's bucket first
  // (highest level first so entries can fall several levels in one tick).
  for (int l = kLevels - 1; l >= 1; --l) {
    const int shift = kSlotBits * l;
    if ((t & ((1ull << shift) - 1)) == 0) cascade(l, (t >> shift) & kSlotMask);
  }
  // Spill the level-0 bucket due at this tick into the ready batch: sort it
  // once by (time, seq) and consume from the front in O(1), instead of
  // paying a heap push *and* pop per entry. Batches append in tick order and
  // each batch's times lie within its tick, so the whole batch stays
  // globally sorted; events scheduled after the spill land in the heap and
  // pop_next() merges the two fronts by the same (time, seq) key — the
  // firing order (and the FIFO tie-break) is exactly the heap-only order.
  auto& b = wheel_[0][t & kSlotMask];
  occupied_[0] &= ~(1ull << (t & kSlotMask));
  if (b.empty()) return;
  wheel_size_ -= b.size();
  const auto batch_start = static_cast<std::ptrdiff_t>(ready_.size());
  for (const Entry& e : b) {
    if (!is_live(e)) {
      --wheel_stale_;
      continue;
    }
    if (e.slot != kNoSlot) slots_[e.slot].loc = kLocReady;
    ready_.push_back(e);
  }
  b.clear();
  std::sort(ready_.begin() + batch_start, ready_.end(), earlier);
}

void Scheduler::catch_up_wheel(std::uint64_t target) {
  while (wheel_tick_ < target) {
    if (wheel_size_ == 0) {
      wheel_tick_ = target;
      return;
    }
    const std::uint64_t next = next_wheel_tick(target);
    if (next >= target) {
      wheel_tick_ = target;
      return;
    }
    wheel_tick_ = next;  // placements during process_tick see the new cursor
    process_tick(next);
    wheel_tick_ = next + 1;
  }
}

bool Scheduler::pop_next(Entry& out, Time limit) {
  for (;;) {
    // Drop stale (cancelled) entries at either front without executing.
    while (!heap_.empty() && !is_live(heap_.front())) {
      pop_front();
      --stale_;
    }
    while (ready_pos_ < ready_.size() && !is_live(ready_[ready_pos_])) {
      ++ready_pos_;
      --ready_stale_;
    }
    if (ready_pos_ != 0 && ready_pos_ == ready_.size()) {
      ready_.clear();  // keeps capacity for the next spill
      ready_pos_ = 0;
    }
    // Anything in the wheel due before the earliest known event (or the
    // limit) must spill first, or we would fire out of order.
    if (wheel_size_ > 0) {
      Time horizon = limit;
      if (!heap_.empty() && heap_.front().at < horizon) horizon = heap_.front().at;
      if (ready_pos_ < ready_.size() && ready_[ready_pos_].at < horizon) {
        horizon = ready_[ready_pos_].at;
      }
      if (batch_min_ != kNoBatch) {
        const DeliveryBatch& q = batches_[batch_min_];
        if (q.at[q.head] < horizon) horizon = q.at[q.head];
      }
      std::uint64_t target = tick_of(horizon) + 1;
      if (target > wheel_tick_) {
        // A bare limit (nothing queued near-term) can lie far past the next
        // wheel event; stepping the cursor straight there would strand it in
        // the future and divert every later timer to the heap. Stop just
        // past the first tick where the wheel actually does work, then
        // re-evaluate with the fresh fronts.
        target = std::min(target, next_wheel_tick(target) + 1);
        if (target > wheel_tick_) {
          catch_up_wheel(target);
          continue;  // spilled entries may now be the earliest
        }
      }
    }
    const bool have_ready = ready_pos_ < ready_.size();
    const bool have_heap = !heap_.empty();
    const bool take_ready =
        have_ready && (!have_heap || earlier(ready_[ready_pos_], heap_.front()));
    const Entry* front =
        have_ready || have_heap ? (take_ready ? &ready_[ready_pos_] : &heap_.front()) : nullptr;
    // Merge the batch minimum's front in by the same (time, seq) key. When it
    // wins, synthesize a kDeliverBatch dispatch — the queue itself is
    // consumed by dispatch_batch(), nothing is popped here.
    if (batch_min_ != kNoBatch) {
      const DeliveryBatch& q = batches_[batch_min_];
      const Time qa = q.at[q.head];
      const std::uint64_t qs = q.seq[q.head];
      if (front == nullptr || qa < front->at || (qa == front->at && qs < front->seq)) {
        if (qa > limit) return false;
        out.at = qa;
        out.seq = qs;
        out.slot = kNoSlot;
        out.gen = 0;
        out.kind = Kind::kDeliverBatch;
        out.u.batch.id = batch_min_;
        return true;
      }
    }
    if (front == nullptr || front->at > limit) return false;
    out = *front;
    if (take_ready) {
      ++ready_pos_;
    } else {
      pop_front();
    }
    return true;
  }
}

void Scheduler::pop_front() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  heap_.pop_back();
}

void Scheduler::dispatch(const Entry& e, Time limit) {
  if (e.kind == Kind::kDeliverBatch) {
    // Advances the clock and the executed/live counters per delivery itself.
    dispatch_batch(e.u.batch.id, limit, /*single_step=*/false);
    return;
  }
  now_ = e.at;
  ++executed_;
  switch (e.kind) {
    case Kind::kDeliver: {
      --live_;
      const PacketPool::Handle h = e.u.deliver.handle;
      // The deque-backed pool keeps this reference valid even if the sink
      // acquires new handles (e.g. an ACK turned around into a send).
      e.u.deliver.sink->deliver(pool_.get(h));
      pool_.release(h);
      break;
    }
    case Kind::kCall:
      if (e.slot != kNoSlot) {
        release_slot_discard(e.slot);  // before the call: it may re-arm the same timer
      } else {
        --live_;  // fire-and-forget: no slot to release
      }
      e.u.call.fn(e.u.call.ctx, e.u.call.arg);
      break;
    case Kind::kClosure: {
      auto fn = release_slot(e.slot);  // the callback may reschedule itself
      fn();
      break;
    }
    case Kind::kDeliverBatch:
      break;  // handled above
  }
}

void Scheduler::dispatch_batch(std::uint32_t id, Time limit, bool single_step) {
  // Which structure owns the current bound. Only a heap-owned bound can be
  // fused (fired inline below); the others hand control back to pop_next.
  enum class Src : std::uint8_t { kLimit, kHeap, kReady, kWheel, kBatch };
  Time bt = limit;
  std::uint64_t bs = 0;
  Src src = Src::kLimit;
  std::uint64_t bound_mark = 0;
  bool have_bound = false;
  for (;;) {
    // Re-fetched every iteration: a sink may register a new batch (growing
    // batches_) or append to this one (growing the SoA vectors) mid-drain.
    DeliveryBatch& q = batches_[id];
    if (q.head == q.at.size()) break;
    if (q.head >= 1024 && q.head * 2 >= q.at.size()) {
      // Compact the consumed prefix so a relay chain that keeps a handful of
      // packets in flight forever doesn't grow the vectors without bound.
      const auto n = static_cast<std::ptrdiff_t>(q.head);
      q.at.erase(q.at.begin(), q.at.begin() + n);
      q.seq.erase(q.seq.begin(), q.seq.begin() + n);
      q.handle.erase(q.handle.begin(), q.handle.begin() + n);
      q.head = 0;
    }
    // Exclusive bound (bt, bs): the earliest event that is *not* ours. Valid
    // until a sink callback schedules something — every schedule_* bumps
    // next_seq_, so an unchanged next_seq_ means an unchanged bound (cancels
    // don't bump it, but a cancelled front only leaves the bound
    // conservative — we hand back to pop_next early — never wrong).
    if (!have_bound || next_seq_ != bound_mark) {
      bt = limit;
      bs = UINT64_MAX;
      src = Src::kLimit;
      if (!heap_.empty()) {
        const Entry& e = heap_.front();
        if (e.at < bt || (e.at == bt && e.seq < bs)) {
          bt = e.at;
          bs = e.seq;
          src = Src::kHeap;
        }
      }
      if (ready_pos_ < ready_.size()) {
        const Entry& e = ready_[ready_pos_];
        if (e.at < bt || (e.at == bt && e.seq < bs)) {
          bt = e.at;
          bs = e.seq;
          src = Src::kReady;
        }
      }
      // Nothing in the wheel can fire before the cursor's tick — when that
      // is already past the bound's tick (the common case: pop_next caught
      // the wheel up through the batch front's tick before dispatching us),
      // the whole scan is skipped. Otherwise bound at the next tick the
      // wheel does work (seq 0 — conservative) and let pop_next spill it.
      if (wheel_size_ > 0 && wheel_tick_ <= tick_of(bt)) {
        const std::uint64_t lim_tick = tick_of(bt) + 1;
        const std::uint64_t wt = next_wheel_tick(lim_tick);
        if (wt < lim_tick) {
          const Time wtime = Time::ns(static_cast<std::int64_t>(wt << kTickBits));
          if (wtime < bt) {
            bt = wtime;
            bs = 0;
            src = Src::kWheel;
          } else if (wtime == bt) {
            bs = 0;
            src = Src::kWheel;
          }
        }
      }
      for (std::uint32_t b = 0; b < batches_.size(); ++b) {
        if (b == id) continue;
        const DeliveryBatch& ob = batches_[b];
        if (ob.head == ob.at.size()) continue;
        const Time oa = ob.at[ob.head];
        if (oa < bt || (oa == bt && ob.seq[ob.head] < bs)) {
          bt = oa;
          bs = ob.seq[ob.head];
          src = Src::kBatch;
        }
      }
      bound_mark = next_seq_;
      have_bound = true;
    }
    const std::size_t begin = q.head;
    const Time t = q.at[begin];
    if (!(t < bt || (t == bt && q.seq[begin] < bs))) {
      // The next event is not ours. When it is the live heap front — in a
      // busy sim deliveries and timers interleave tightly — fire it inline
      // and keep draining: bouncing through pop_next costs more than the
      // event itself. Ready/wheel/other-batch fronts are rarer; hand those
      // back to pop_next's full merge (and run_one must stop regardless).
      if (single_step || src != Src::kHeap || heap_.empty()) break;
      const Entry e = heap_.front();
      if (e.at != bt || e.seq != bs) {
        have_bound = false;  // front changed under us (e.g. a compact)
        continue;
      }
      if (!is_live(e)) {
        pop_front();
        --stale_;
        have_bound = false;
        continue;
      }
      pop_front();
      dispatch(e, limit);  // never kDeliverBatch: those are never stored
      have_bound = false;  // the callback may have scheduled or consumed
      continue;
    }
    // The whole same-time run is ours: seqs in a batch are increasing, so
    // once the front beats (bt, bs) every same-time element with smaller seq
    // than bs does too — and ties at bs are impossible (seq is unique).
    std::size_t end = begin + 1;
    if (!single_step) {
      while (end < q.at.size() && q.at[end] == t && (t < bt || q.seq[end] < bs)) ++end;
    }
    const std::size_t run = end - begin;
    now_ = t;
    if (wheel_size_ == 0 && tick_of(t) > wheel_tick_) wheel_tick_ = tick_of(t);
    executed_ += run;
    live_ -= run;
    batch_live_ -= run;
    q.head = end;  // consumed before delivery: sinks observe a popped queue
    PacketSink* const sink = q.sink;
    if (run == 1) {
      const PacketPool::Handle h = q.handle[begin];
      sink->deliver(pool_.get(h));
      pool_.release(h);
    } else {
      // Copy the run out first: the sink may append to this very batch and
      // reallocate the SoA vectors mid-callback. Handles stay valid (the
      // deque-backed pool never moves slots) until released below.
      drain_handles_.assign(q.handle.begin() + static_cast<std::ptrdiff_t>(begin),
                            q.handle.begin() + static_cast<std::ptrdiff_t>(end));
      drain_pkts_.clear();
      for (const PacketPool::Handle h : drain_handles_) drain_pkts_.push_back(&pool_.get(h));
      sink->deliver_batch(drain_pkts_.data(), run);
      for (const PacketPool::Handle h : drain_handles_) pool_.release(h);
    }
    if (single_step) break;
  }
  recompute_batch_min();
}

bool Scheduler::run_one() {
  Entry e;
  if (!pop_next(e, Time::never())) return false;
  if (e.kind == Kind::kDeliverBatch) {
    // One event only: deliver exactly the front element, not the whole run.
    dispatch_batch(e.u.batch.id, Time::never(), /*single_step=*/true);
    return true;
  }
  dispatch(e, Time::never());
  return true;
}

void Scheduler::run_until(Time end) {
  assert(end >= now_);
  Entry e;
  while (pop_next(e, end)) dispatch(e, end);
  now_ = end;
}

}  // namespace ccc::sim
