#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ccc::sim {

EventId Scheduler::schedule_at(Time at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.armed = true;
  heap_.push_back(Entry{at, next_seq_++, slot, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), later);
  ++live_;
  return make_id(slot, s.gen);
}

std::function<void()> Scheduler::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  auto fn = std::move(s.fn);
  s.fn = nullptr;  // drop any moved-from shell so captures are destroyed
  s.armed = false;
  ++s.gen;
  free_slots_.push_back(slot);
  --live_;
  return fn;
}

void Scheduler::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffff'ffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (!s.armed || s.gen != gen) return;  // already fired/cancelled, or reused
  release_slot(slot);
  // The heap still holds this event's entry; it is now stale and will be
  // dropped lazily when popped — unless stale entries start to dominate, in
  // which case we rebuild the heap so disarmed timers cannot grow it forever.
  if (++stale_ >= 64 && stale_ > heap_.size() / 2) compact();
}

void Scheduler::compact() {
  std::erase_if(heap_, [this](const Entry& e) { return !is_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), later);
  stale_ = 0;
}

void Scheduler::pop_front() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  heap_.pop_back();
}

bool Scheduler::run_one() {
  while (!heap_.empty()) {
    const Entry top = heap_.front();
    pop_front();
    if (!is_live(top)) {
      --stale_;
      continue;
    }
    auto fn = release_slot(top.slot);  // the callback may reschedule itself
    now_ = top.at;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(Time end) {
  assert(end >= now_);
  while (!heap_.empty()) {
    // Peek past stale (cancelled) entries without executing.
    const Entry& top = heap_.front();
    if (!is_live(top)) {
      pop_front();
      --stale_;
      continue;
    }
    if (top.at > end) break;
    run_one();
  }
  now_ = end;
}

}  // namespace ccc::sim
