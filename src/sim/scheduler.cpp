#include "sim/scheduler.hpp"

#include <cassert>

namespace ccc::sim {

EventId Scheduler::schedule_at(Time at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  const EventId id = next_id_++;
  heap_.push(Entry{at, id});
  pending_callbacks_.emplace(id, std::move(fn));
  return id;
}

void Scheduler::cancel(EventId id) { pending_callbacks_.erase(id); }

bool Scheduler::run_one() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    auto it = pending_callbacks_.find(top.id);
    if (it == pending_callbacks_.end()) continue;  // cancelled: skip
    // Move the callback out before erasing so it may reschedule itself.
    auto fn = std::move(it->second);
    pending_callbacks_.erase(it);
    now_ = top.at;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(Time end) {
  assert(end >= now_);
  while (!heap_.empty()) {
    // Peek past cancelled entries without executing.
    const Entry top = heap_.top();
    if (!pending_callbacks_.contains(top.id)) {
      heap_.pop();
      continue;
    }
    if (top.at > end) break;
    run_one();
  }
  now_ = end;
}

}  // namespace ccc::sim
