#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace ccc::sim {

namespace {
/// Wheel level whose span covers `delta` ticks.
/// Precondition: kMinWheelTicks <= delta < kMaxWheelTicks.
int level_for(std::uint64_t delta) {
  if (delta < 64) return 0;
  if (delta < 64 * 64) return 1;
  if (delta < 64 * 64 * 64) return 2;
  return 3;
}
}  // namespace

std::uint32_t Scheduler::acquire_slot() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].armed = true;
  ++live_;
  return slot;
}

std::function<void()> Scheduler::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  std::function<void()> fn;
  if (s.fn) {  // kCall slots never set fn; skip the type-erased move for them
    fn = std::move(s.fn);
    s.fn = nullptr;  // drop the moved-from shell so captures are destroyed
  }
  s.armed = false;
  ++s.gen;
  free_slots_.push_back(slot);
  --live_;
  return fn;
}

void Scheduler::push_heap_entry(const Entry& e) {
  if (e.slot != kNoSlot) slots_[e.slot].loc = kLocHeap;
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), later);
}

void Scheduler::place(const Entry& e) {
  // Every far-enough event goes through a bucket: cancellable events because
  // a cancelled bucket entry dies in place without touching the heap, and
  // deliveries (slot == kNoSlot) because parking a bandwidth-delay window of
  // in-flight packets in buckets keeps the binary heap down to the current
  // tick's worth of events — the difference between O(log 10k) and O(log 100)
  // per operation in a busy dumbbell.
  const std::uint64_t tick = tick_of(e.at);
  const std::uint64_t delta = tick - wheel_tick_;  // at >= now implies tick >= cursor - 1
  if (delta >= kMinWheelTicks && delta < kMaxWheelTicks &&
      static_cast<std::int64_t>(delta) > 0) {
    const int level = level_for(delta);
    const std::uint64_t bucket = (tick >> (kSlotBits * level)) & kSlotMask;
    wheel_[level][bucket].push_back(e);
    occupied_[level] |= 1ull << bucket;
    if (e.slot != kNoSlot) slots_[e.slot].loc = wheel_loc(level, bucket);
    ++wheel_size_;
    return;
  }
  push_heap_entry(e);
}

EventId Scheduler::schedule_at(Time at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  Entry e;
  e.at = at;
  e.seq = next_seq_++;
  e.slot = slot;
  e.gen = s.gen;
  e.kind = Kind::kClosure;
  place(e);
  return make_id(slot, s.gen);
}

EventId Scheduler::schedule_call_at(Time at, RawCallback fn, void* ctx, std::uint64_t arg) {
  assert(at >= now_ && "cannot schedule into the past");
  const std::uint32_t slot = acquire_slot();
  Entry e;
  e.at = at;
  e.seq = next_seq_++;
  e.slot = slot;
  e.gen = slots_[slot].gen;
  e.kind = Kind::kCall;
  e.u.call = {fn, ctx, arg};
  place(e);
  return make_id(slot, e.gen);
}

void Scheduler::schedule_fire_at(Time at, RawCallback fn, void* ctx, std::uint64_t arg) {
  assert(at >= now_ && "cannot schedule into the past");
  Entry e;
  e.at = at;
  e.seq = next_seq_++;
  e.slot = kNoSlot;
  e.gen = 0;
  e.kind = Kind::kCall;
  e.u.call = {fn, ctx, arg};
  ++live_;
  place(e);
}

void Scheduler::schedule_deliver_handle_at(Time at, PacketSink& sink, PacketPool::Handle h) {
  assert(at >= now_ && "cannot schedule into the past");
  Entry e;
  e.at = at;
  e.seq = next_seq_++;
  e.slot = kNoSlot;
  e.gen = 0;
  e.kind = Kind::kDeliver;
  e.u.deliver = {&sink, h};
  ++live_;
  place(e);
}

void Scheduler::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffff'ffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (!s.armed || s.gen != gen) return;  // already fired/cancelled, or reused
  const std::uint16_t loc = s.loc;
  release_slot(slot);
  // The heap or a wheel bucket still holds this event's entry; it is now
  // stale and will be dropped lazily when popped or cascaded — unless stale
  // entries start to dominate, in which case we compact in place so
  // disarmed timers cannot grow either structure forever.
  if (loc == kLocHeap) {
    if (++stale_ >= 64 && stale_ > heap_.size() / 2) compact();
  } else if (loc == kLocReady) {
    ++ready_stale_;  // the batch drains within its tick; dropped at pop
  } else {
    if (++wheel_stale_ >= 64 && wheel_stale_ * 2 > wheel_size_) sweep_wheel();
  }
}

void Scheduler::compact() {
  std::erase_if(heap_, [this](const Entry& e) { return !is_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), later);
  stale_ = 0;
}

void Scheduler::sweep_wheel() {
  for (int l = 0; l < kLevels; ++l) {
    std::uint64_t occ = occupied_[l];
    while (occ != 0) {
      const int b = std::countr_zero(occ);
      occ &= occ - 1;
      auto& bucket = wheel_[l][b];
      wheel_size_ -= std::erase_if(bucket, [this](const Entry& e) { return !is_live(e); });
      if (bucket.empty()) occupied_[l] &= ~(1ull << b);
    }
  }
  wheel_stale_ = 0;
}

std::uint64_t Scheduler::next_wheel_tick(std::uint64_t limit) const {
  std::uint64_t best = limit;
  // Level 0 buckets spill at their own tick.
  if (occupied_[0] != 0) {
    const unsigned cur = static_cast<unsigned>(wheel_tick_ & kSlotMask);
    const std::uint64_t rot = std::rotr(occupied_[0], static_cast<int>(cur));
    best = std::min(best, wheel_tick_ + static_cast<std::uint64_t>(std::countr_zero(rot)));
  }
  // Level l>=1 buckets cascade when the cursor enters their block (a
  // multiple of 64^l). Distance 0 is ambiguous: with the cursor exactly at
  // the block start the entering cascade is still pending (the bucket holds
  // current-wrap entries), while a cursor strictly inside the block has
  // already cascaded it — anything left there is a full wrap away.
  for (int l = 1; l < kLevels; ++l) {
    if (occupied_[l] == 0) continue;
    const int shift = kSlotBits * l;
    const std::uint64_t block = wheel_tick_ >> shift;
    const unsigned cur = static_cast<unsigned>(block & kSlotMask);
    const std::uint64_t rot = std::rotr(occupied_[l], static_cast<int>(cur));
    std::uint64_t d = static_cast<std::uint64_t>(std::countr_zero(rot));
    if (d == 0 && wheel_tick_ != (block << shift)) d = kSlotsPerLevel;
    best = std::min(best, (block + d) << shift);
  }
  return best;
}

void Scheduler::cascade(int level, std::uint64_t bucket) {
  auto& b = wheel_[level][bucket];
  occupied_[level] &= ~(1ull << bucket);
  if (b.empty()) return;
  wheel_size_ -= b.size();
  cascade_scratch_.clear();
  cascade_scratch_.swap(b);  // entries may re-place into this same bucket
  for (const Entry& e : cascade_scratch_) {
    if (!is_live(e)) {
      --wheel_stale_;
      continue;
    }
    place(e);
  }
}

void Scheduler::process_tick(std::uint64_t t) {
  // Entering a new block at any level cascades that level's bucket first
  // (highest level first so entries can fall several levels in one tick).
  for (int l = kLevels - 1; l >= 1; --l) {
    const int shift = kSlotBits * l;
    if ((t & ((1ull << shift) - 1)) == 0) cascade(l, (t >> shift) & kSlotMask);
  }
  // Spill the level-0 bucket due at this tick into the ready batch: sort it
  // once by (time, seq) and consume from the front in O(1), instead of
  // paying a heap push *and* pop per entry. Batches append in tick order and
  // each batch's times lie within its tick, so the whole batch stays
  // globally sorted; events scheduled after the spill land in the heap and
  // pop_next() merges the two fronts by the same (time, seq) key — the
  // firing order (and the FIFO tie-break) is exactly the heap-only order.
  auto& b = wheel_[0][t & kSlotMask];
  occupied_[0] &= ~(1ull << (t & kSlotMask));
  if (b.empty()) return;
  wheel_size_ -= b.size();
  const auto batch_start = static_cast<std::ptrdiff_t>(ready_.size());
  for (const Entry& e : b) {
    if (!is_live(e)) {
      --wheel_stale_;
      continue;
    }
    if (e.slot != kNoSlot) slots_[e.slot].loc = kLocReady;
    ready_.push_back(e);
  }
  b.clear();
  std::sort(ready_.begin() + batch_start, ready_.end(), earlier);
}

void Scheduler::catch_up_wheel(std::uint64_t target) {
  while (wheel_tick_ < target) {
    if (wheel_size_ == 0) {
      wheel_tick_ = target;
      return;
    }
    const std::uint64_t next = next_wheel_tick(target);
    if (next >= target) {
      wheel_tick_ = target;
      return;
    }
    wheel_tick_ = next;  // placements during process_tick see the new cursor
    process_tick(next);
    wheel_tick_ = next + 1;
  }
}

bool Scheduler::pop_next(Entry& out, Time limit) {
  for (;;) {
    // Drop stale (cancelled) entries at either front without executing.
    while (!heap_.empty() && !is_live(heap_.front())) {
      pop_front();
      --stale_;
    }
    while (ready_pos_ < ready_.size() && !is_live(ready_[ready_pos_])) {
      ++ready_pos_;
      --ready_stale_;
    }
    if (ready_pos_ != 0 && ready_pos_ == ready_.size()) {
      ready_.clear();  // keeps capacity for the next spill
      ready_pos_ = 0;
    }
    // Anything in the wheel due before the earliest known event (or the
    // limit) must spill first, or we would fire out of order.
    if (wheel_size_ > 0) {
      Time horizon = limit;
      if (!heap_.empty() && heap_.front().at < horizon) horizon = heap_.front().at;
      if (ready_pos_ < ready_.size() && ready_[ready_pos_].at < horizon) {
        horizon = ready_[ready_pos_].at;
      }
      std::uint64_t target = tick_of(horizon) + 1;
      if (target > wheel_tick_) {
        // A bare limit (nothing queued near-term) can lie far past the next
        // wheel event; stepping the cursor straight there would strand it in
        // the future and divert every later timer to the heap. Stop just
        // past the first tick where the wheel actually does work, then
        // re-evaluate with the fresh fronts.
        target = std::min(target, next_wheel_tick(target) + 1);
        if (target > wheel_tick_) {
          catch_up_wheel(target);
          continue;  // spilled entries may now be the earliest
        }
      }
    }
    const bool have_ready = ready_pos_ < ready_.size();
    const bool have_heap = !heap_.empty();
    if (!have_ready && !have_heap) return false;
    const bool take_ready =
        have_ready && (!have_heap || earlier(ready_[ready_pos_], heap_.front()));
    const Entry& front = take_ready ? ready_[ready_pos_] : heap_.front();
    if (front.at > limit) return false;
    out = front;
    if (take_ready) {
      ++ready_pos_;
    } else {
      pop_front();
    }
    return true;
  }
}

void Scheduler::pop_front() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  heap_.pop_back();
}

void Scheduler::dispatch(const Entry& e) {
  now_ = e.at;
  ++executed_;
  switch (e.kind) {
    case Kind::kDeliver: {
      --live_;
      const PacketPool::Handle h = e.u.deliver.handle;
      // The deque-backed pool keeps this reference valid even if the sink
      // acquires new handles (e.g. an ACK turned around into a send).
      e.u.deliver.sink->deliver(pool_.get(h));
      pool_.release(h);
      break;
    }
    case Kind::kCall:
      if (e.slot != kNoSlot) {
        release_slot(e.slot);  // before the call: it may re-arm the same timer
      } else {
        --live_;  // fire-and-forget: no slot to release
      }
      e.u.call.fn(e.u.call.ctx, e.u.call.arg);
      break;
    case Kind::kClosure: {
      auto fn = release_slot(e.slot);  // the callback may reschedule itself
      fn();
      break;
    }
  }
}

bool Scheduler::run_one() {
  Entry e;
  if (!pop_next(e, Time::never())) return false;
  dispatch(e);
  return true;
}

void Scheduler::run_until(Time end) {
  assert(end >= now_);
  Entry e;
  while (pop_next(e, end)) dispatch(e);
  now_ = end;
}

}  // namespace ccc::sim
