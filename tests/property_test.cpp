// Property-based and parameterized sweeps over the library's invariants.
//
// These are deliberately structured as TEST_P sweeps: each instantiation
// checks one invariant over a family of configurations rather than a single
// hand-picked case.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "analysis/fairness.hpp"
#include "app/bulk.hpp"
#include "cca/aimd.hpp"
#include "core/cca_registry.hpp"
#include "core/dumbbell.hpp"
#include "queue/codel.hpp"
#include "queue/drop_tail.hpp"
#include "queue/drr_fair_queue.hpp"
#include "queue/per_user_isolation.hpp"
#include "queue/sfq.hpp"
#include "queue/token_bucket.hpp"
#include "util/rng.hpp"

namespace ccc {
namespace {

// ---------------------------------------------------------------------------
// Invariant 1: every qdisc conserves packets — enqueued == dequeued + dropped
// + backlog, bytes included, under a randomized open-loop workload.
// ---------------------------------------------------------------------------

using QdiscFactory = std::function<std::unique_ptr<sim::Qdisc>()>;

struct QdiscCase {
  std::string name;
  QdiscFactory make;
};

class QdiscConservation : public ::testing::TestWithParam<int> {
 public:
  static std::vector<QdiscCase> cases() {
    return {
        {"droptail", [] { return std::make_unique<queue::DropTailQueue>(50'000); }},
        {"droptail_ecn",
         [] { return std::make_unique<queue::DropTailQueue>(50'000, 20'000); }},
        {"codel", [] { return std::make_unique<queue::CoDelQueue>(50'000); }},
        {"drr_flow",
         [] {
           return std::make_unique<queue::DrrFairQueue>(50'000, queue::FairnessKey::kPerFlow);
         }},
        {"drr_user",
         [] {
           return std::make_unique<queue::DrrFairQueue>(50'000, queue::FairnessKey::kPerUser);
         }},
        {"sfq", [] { return std::make_unique<queue::SfqQueue>(50'000, 8, 3); }},
        {"tbf", [] { return std::make_unique<queue::TokenBucketShaper>(Rate::mbps(10), 5'000,
                                                                       50'000); }},
        {"policer",
         [] {
           return std::make_unique<queue::Policer>(
               Rate::mbps(10), 5'000, std::make_unique<queue::DropTailQueue>(50'000));
         }},
        {"per_user",
         [] {
           return std::make_unique<queue::PerUserIsolation>(Rate::mbps(10), 5'000, 50'000);
         }},
    };
  }
};

TEST_P(QdiscConservation, PacketsNeitherCreatedNorLeaked) {
  const auto c = cases()[static_cast<std::size_t>(GetParam())];
  auto q = c.make();
  Rng rng{static_cast<std::uint64_t>(GetParam()) + 99};

  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  ByteCount bytes_offered = 0;
  ByteCount bytes_delivered = 0;
  Time now = Time::zero();

  for (int step = 0; step < 5000; ++step) {
    now += Time::us(rng.uniform_int(10, 300));
    // Random bursts of enqueues from random flows/users.
    const int burst = static_cast<int>(rng.uniform_int(0, 3));
    for (int b = 0; b < burst; ++b) {
      sim::Packet p;
      p.flow = static_cast<sim::FlowId>(rng.uniform_int(1, 6));
      p.user = static_cast<sim::UserId>(rng.uniform_int(1, 3));
      p.size_bytes = rng.uniform_int(80, 1500);
      p.ecn_capable = rng.chance(0.5);
      ++offered;
      bytes_offered += p.size_bytes;
      q->enqueue(p, now);
    }
    // Drain opportunistically.
    if (rng.chance(0.7)) {
      const Time ready = q->next_ready(now);
      if (ready != Time::never() && ready <= now) {
        if (auto pkt = q->dequeue(now)) {
          ++delivered;
          bytes_delivered += pkt->size_bytes;
        }
      }
    }
  }
  // Final drain (advance time so shapers release everything).
  for (int i = 0; i < 200'000 && q->backlog_packets() > 0; ++i) {
    const Time ready = q->next_ready(now);
    ASSERT_NE(ready, Time::never()) << c.name << ": backlog but never ready";
    now = std::max(now, ready);
    if (auto pkt = q->dequeue(now)) {
      ++delivered;
      bytes_delivered += pkt->size_bytes;
    }
  }

  const auto& st = q->stats();
  EXPECT_EQ(q->backlog_packets(), 0u) << c.name;
  EXPECT_EQ(q->backlog_bytes(), 0) << c.name;
  EXPECT_EQ(offered, delivered + st.dropped_packets) << c.name;
  EXPECT_EQ(bytes_offered, bytes_delivered + st.dropped_bytes) << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllQdiscs, QdiscConservation, ::testing::Range(0, 9),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return QdiscConservation::cases()[static_cast<std::size_t>(
                                                                 info.param)]
                               .name;
                         });

// ---------------------------------------------------------------------------
// Invariant 2: every registered CCA, running solo on a clean dumbbell,
// achieves reasonable utilization and eventually completes a bounded
// transfer exactly (every byte delivered once, in order).
// ---------------------------------------------------------------------------

class CcaSolo : public ::testing::TestWithParam<std::string> {};

TEST_P(CcaSolo, FillsACleanLink) {
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(20);
  cfg.one_way_delay = Time::ms(15);
  cfg.reverse_delay = Time::ms(15);
  cfg.buffer_bdp_multiple = 2.0;
  core::DumbbellScenario net{cfg};
  net.add_flow(core::make_cca_factory(GetParam())(), std::make_unique<app::BulkApp>());
  net.run_until(Time::sec(5.0));
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(25.0));
  const double mbps = net.goodput_mbps_since(0, snap, Time::sec(20.0));
  // Delay-based CCAs idle a little headroom; loss-based ones saturate.
  EXPECT_GT(mbps, 13.0) << GetParam();
  EXPECT_LT(mbps, 20.5) << GetParam();
}

TEST_P(CcaSolo, CompletesABoundedTransferExactly) {
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(20);
  cfg.one_way_delay = Time::ms(15);
  cfg.reverse_delay = Time::ms(15);
  cfg.buffer_bdp_multiple = 0.5;  // shallow: force loss recovery to engage
  core::DumbbellScenario net{cfg};
  const ByteCount size = 3'000'000;
  net.add_flow(core::make_cca_factory(GetParam())(), std::make_unique<app::BulkApp>(size));
  net.run_until(Time::sec(60.0));
  EXPECT_TRUE(net.flow(0).sender().completed()) << GetParam();
  EXPECT_EQ(net.flow(0).delivered_bytes(), size) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Registry, CcaSolo,
                         ::testing::Values("reno", "cubic", "bbr", "vegas", "copa", "aimd",
                                           "dctcp"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// ---------------------------------------------------------------------------
// Invariant 3 (Chiu-Jain): two AIMD flows with equal parameters converge to
// a fair share on a shared DropTail bottleneck, across the (a, b) space.
// ---------------------------------------------------------------------------

struct AimdParams {
  double a;
  double b;
};

class ChiuJainConvergence : public ::testing::TestWithParam<AimdParams> {};

TEST_P(ChiuJainConvergence, EqualAimdFlowsConvergeToFairness) {
  const auto [a, b] = GetParam();
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(30);
  cfg.one_way_delay = Time::ms(15);
  cfg.reverse_delay = Time::ms(15);
  cfg.buffer_bdp_multiple = 1.0;
  core::DumbbellScenario net{cfg};
  for (int i = 0; i < 2; ++i) {
    net.add_flow(std::make_unique<cca::Aimd>(a, b), std::make_unique<app::BulkApp>(),
                 static_cast<sim::UserId>(i + 1),
                 Time::sec(i * 2.0));  // staggered start: must still converge
  }
  // Convergence time scales like 1/b (gentler decreases redistribute
  // bandwidth more slowly), so measure over a long window.
  net.run_until(Time::sec(25.0));
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(85.0));
  const auto g = net.goodputs_mbps_since(snap, Time::sec(60.0));
  EXPECT_GT(jain_fairness_index(g), 0.9) << "a=" << a << " b=" << b << " -> " << g[0] << "/"
                                         << g[1];
  EXPECT_GT(g[0] + g[1], 23.0) << "link badly underutilized";
}

INSTANTIATE_TEST_SUITE_P(ParamSpace, ChiuJainConvergence,
                         ::testing::Values(AimdParams{1.0, 0.5}, AimdParams{0.5, 0.5},
                                           AimdParams{2.0, 0.5}, AimdParams{1.0, 0.25},
                                           AimdParams{1.0, 0.7}, AimdParams{0.5, 0.125}));

// ---------------------------------------------------------------------------
// Invariant 4: data integrity through a lossy path. Whatever the drop rate,
// a bounded transfer completes with every byte delivered exactly once.
// ---------------------------------------------------------------------------

class LossyDelivery : public ::testing::TestWithParam<double> {};

TEST_P(LossyDelivery, AllBytesDeliveredDespitePolicerDrops) {
  // A policer with a tiny burst drops aggressively and non-uniformly.
  const double policed_mbps = GetParam();
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(20);
  cfg.one_way_delay = Time::ms(15);
  cfg.reverse_delay = Time::ms(15);
  auto pol = std::make_unique<queue::Policer>(
      Rate::mbps(policed_mbps), 6'000,
      std::make_unique<queue::DropTailQueue>(core::dumbbell_buffer_bytes(cfg)));
  core::DumbbellScenario net{cfg, std::move(pol)};
  const ByteCount size = 2'000'000;
  net.add_flow(core::make_cca_factory("cubic")(), std::make_unique<app::BulkApp>(size));
  net.run_until(Time::sec(120.0));
  ASSERT_TRUE(net.flow(0).sender().completed()) << policed_mbps << " Mbit/s policer";
  EXPECT_EQ(net.flow(0).delivered_bytes(), size);
  // The policer must actually have dropped something for the test to bite.
  EXPECT_GT(net.bottleneck().qdisc().stats().dropped_packets, 0u);
}

INSTANTIATE_TEST_SUITE_P(DropRates, LossyDelivery, ::testing::Values(2.0, 5.0, 10.0));

// ---------------------------------------------------------------------------
// Invariant 5: N equal Reno flows split a FIFO bottleneck fairly for any N.
// ---------------------------------------------------------------------------

class RenoFairSplit : public ::testing::TestWithParam<int> {};

TEST_P(RenoFairSplit, JainCloseToOne) {
  const int n = GetParam();
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(40);
  cfg.one_way_delay = Time::ms(20);
  cfg.reverse_delay = Time::ms(20);
  cfg.buffer_bdp_multiple = 1.0;
  core::DumbbellScenario net{cfg};
  for (int i = 0; i < n; ++i) {
    net.add_flow(core::make_cca_factory("reno")(), std::make_unique<app::BulkApp>());
  }
  net.run_until(Time::sec(10.0));
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(50.0));
  const auto g = net.goodputs_mbps_since(snap, Time::sec(40.0));
  EXPECT_GT(jain_fairness_index(g), 0.85) << "n=" << n;
  double total = 0.0;
  for (double x : g) total += x;
  EXPECT_GT(total, 34.0) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(FlowCounts, RenoFairSplit, ::testing::Values(2, 3, 5, 8));

}  // namespace
}  // namespace ccc
