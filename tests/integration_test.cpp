// Integration tests: whole-system behaviours that the paper's argument
// rests on, each run as a miniature version of a bench experiment.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/fairness.hpp"
#include "app/bulk.hpp"
#include "app/stop_at.hpp"
#include "cca/bbr.hpp"
#include "cca/cubic.hpp"
#include "cca/new_reno.hpp"
#include "cca/vegas.hpp"
#include "core/cca_registry.hpp"
#include "core/dumbbell.hpp"
#include "core/elasticity_study.hpp"
#include "nimbus/nimbus.hpp"
#include "queue/drr_fair_queue.hpp"
#include "queue/per_user_isolation.hpp"
#include "queue/token_bucket.hpp"

namespace ccc {
namespace {

core::DumbbellConfig net40() {
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(40);
  cfg.one_way_delay = Time::ms(20);
  cfg.reverse_delay = Time::ms(20);
  cfg.buffer_bdp_multiple = 2.0;
  return cfg;
}

ByteCount buf40() { return core::dumbbell_buffer_bytes(net40()); }

// --- §2.1: fair queueing removes CCA identity from the outcome ---

TEST(Integration, FqEqualizesMismatchedCcas) {
  core::DumbbellScenario net{net40(), std::make_unique<queue::DrrFairQueue>(
                                          buf40(), queue::FairnessKey::kPerFlow)};
  net.add_flow(std::make_unique<cca::Bbr>(), std::make_unique<app::BulkApp>());
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>());
  net.add_flow(std::make_unique<cca::Vegas>(), std::make_unique<app::BulkApp>());
  net.run_until(Time::sec(10.0));
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(40.0));
  const auto g = net.goodputs_mbps_since(snap, Time::sec(30.0));
  const auto s = analysis::summarize_allocation(g);
  EXPECT_GT(s.jain, 0.95) << g[0] << " " << g[1] << " " << g[2];
}

TEST(Integration, DropTailLetsBbrDominateReno) {
  // The §1 / ref [2] behaviour: BBR takes far more than its fair share from
  // loss-based flows in a FIFO queue — most pronounced at shallow buffers,
  // where loss-based flows keep cutting while BBR ignores the drops.
  auto cfg = net40();
  cfg.buffer_bdp_multiple = 1.0;
  core::DumbbellScenario net{cfg};
  net.add_flow(std::make_unique<cca::Bbr>(), std::make_unique<app::BulkApp>());
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>());
  net.run_until(Time::sec(10.0));
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(40.0));
  const auto g = net.goodputs_mbps_since(snap, Time::sec(30.0));
  EXPECT_GT(g[0], g[1] * 1.5) << "bbr=" << g[0] << " reno=" << g[1];
}

TEST(Integration, VegasStarvesUnderDropTailButNotFq) {
  double vegas_droptail = 0.0;
  double vegas_fq = 0.0;
  {
    core::DumbbellScenario net{net40()};
    net.add_flow(std::make_unique<cca::Vegas>(), std::make_unique<app::BulkApp>());
    net.add_flow(std::make_unique<cca::Cubic>(), std::make_unique<app::BulkApp>());
    net.run_until(Time::sec(10.0));
    const auto snap = net.snapshot_delivered();
    net.run_until(Time::sec(30.0));
    vegas_droptail = net.goodputs_mbps_since(snap, Time::sec(20.0))[0];
  }
  {
    core::DumbbellScenario net{net40(), std::make_unique<queue::DrrFairQueue>(
                                            buf40(), queue::FairnessKey::kPerFlow)};
    net.add_flow(std::make_unique<cca::Vegas>(), std::make_unique<app::BulkApp>());
    net.add_flow(std::make_unique<cca::Cubic>(), std::make_unique<app::BulkApp>());
    net.run_until(Time::sec(10.0));
    const auto snap = net.snapshot_delivered();
    net.run_until(Time::sec(30.0));
    vegas_fq = net.goodputs_mbps_since(snap, Time::sec(20.0))[0];
  }
  EXPECT_GT(vegas_fq, vegas_droptail * 1.5)
      << "droptail=" << vegas_droptail << " fq=" << vegas_fq;
  EXPECT_GT(vegas_fq, 15.0);  // ~half of 40 Mbit/s
}

// --- §2.1: per-user shaping pins each user to their contract ---

TEST(Integration, PerUserContractsBindRegardlessOfFlowCount) {
  // Per-user buffer of ~100 ms at the contracted rate (a realistic shaper
  // depth; anything much deeper puts sojourn times past the min RTO).
  const ByteCount per_user_buf = bdp_bytes(Rate::mbps(10), Time::ms(100));
  auto iso = std::make_unique<queue::PerUserIsolation>(Rate::mbps(10), 30'000, per_user_buf);
  iso->set_contract(1, Rate::mbps(10));
  iso->set_contract(2, Rate::mbps(10));
  core::DumbbellScenario net{net40(), std::move(iso)};
  // User 1 opens three flows, user 2 one: both still get ~10 Mbit/s total.
  net.add_flow(std::make_unique<cca::Cubic>(), std::make_unique<app::BulkApp>(), 1);
  net.add_flow(std::make_unique<cca::Cubic>(), std::make_unique<app::BulkApp>(), 1);
  net.add_flow(std::make_unique<cca::Cubic>(), std::make_unique<app::BulkApp>(), 1);
  net.add_flow(std::make_unique<cca::Cubic>(), std::make_unique<app::BulkApp>(), 2);
  net.run_until(Time::sec(10.0));
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(50.0));
  const auto g = net.goodputs_mbps_since(snap, Time::sec(40.0));
  const double user1 = g[0] + g[1] + g[2];
  const double user2 = g[3];
  EXPECT_NEAR(user1, 10.0, 2.0);
  EXPECT_NEAR(user2, 10.0, 2.0);
}

// --- §3.2: the elasticity probe classifies cross traffic correctly ---

TEST(Integration, ElasticityHighAgainstBackloggedReno) {
  core::DumbbellConfig dc;
  dc.bottleneck_rate = Rate::mbps(48);
  dc.one_way_delay = Time::ms(50);
  dc.reverse_delay = Time::ms(50);
  dc.buffer_bdp_multiple = 1.5;
  core::DumbbellScenario net{dc};
  nimbus::NimbusConfig ncfg;
  ncfg.capacity_hint = dc.bottleneck_rate;
  auto nim = std::make_unique<nimbus::NimbusCca>(net.scheduler(), ncfg);
  auto* probe = nim.get();
  net.add_flow(std::move(nim), std::make_unique<app::BulkApp>());
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>(), 2,
               Time::sec(5.0));
  net.run_until(Time::sec(25.0));
  EXPECT_GE(probe->elasticity(), nimbus::kElasticThreshold)
      << "eta=" << probe->elasticity();
}

TEST(Integration, ElasticityLowAgainstCbr) {
  core::DumbbellConfig dc;
  dc.bottleneck_rate = Rate::mbps(48);
  dc.one_way_delay = Time::ms(50);
  dc.reverse_delay = Time::ms(50);
  dc.buffer_bdp_multiple = 1.5;
  core::DumbbellScenario net{dc};
  nimbus::NimbusConfig ncfg;
  ncfg.capacity_hint = dc.bottleneck_rate;
  auto nim = std::make_unique<nimbus::NimbusCca>(net.scheduler(), ncfg);
  auto* probe = nim.get();
  net.add_flow(std::move(nim), std::make_unique<app::BulkApp>());
  net.add_cbr(Rate::mbps(12), Time::sec(5.0), Time::sec(25.0), 2);
  net.run_until(Time::sec(25.0));
  EXPECT_LT(probe->elasticity(), nimbus::kElasticThreshold)
      << "eta=" << probe->elasticity();
}

// --- E3 in miniature: the full five-phase study with short phases ---

TEST(Integration, ElasticityPocOrdersPhasesCorrectly) {
  core::ElasticityPocConfig cfg;
  // Shorter than the paper's 45 s phases, but long enough for the probe's
  // ramp and each cross flow's startup transient to clear.
  cfg.phase_duration = Time::sec(30.0);
  cfg.warmup = Time::sec(10.0);
  const auto result = core::run_elasticity_poc(cfg);
  ASSERT_EQ(result.phases.size(), 5u);
  const auto& reno = result.phases[0];
  const auto& bbr = result.phases[1];
  const auto& video = result.phases[2];
  const auto& shortf = result.phases[3];
  const auto& cbr = result.phases[4];
  // Elastic phases dominate inelastic ones.
  const double min_elastic = std::min(reno.median_elasticity, bbr.median_elasticity);
  const double max_inelastic = std::max({video.median_elasticity, shortf.median_elasticity,
                                         cbr.median_elasticity});
  EXPECT_GT(min_elastic, max_inelastic)
      << "reno=" << reno.median_elasticity << " bbr=" << bbr.median_elasticity
      << " video=" << video.median_elasticity << " short=" << shortf.median_elasticity
      << " cbr=" << cbr.median_elasticity;
}

}  // namespace
}  // namespace ccc
