// The elasticity service: incremental-vs-offline equivalence contracts,
// SessionTable lifecycle isolation, and the service sweep's determinism and
// accuracy pins (DESIGN.md "Elasticity service").
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "elastic/detector.hpp"
#include "elastic/session_table.hpp"
#include "elastic/study.hpp"
#include "nimbus/elasticity.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ccc::elastic {
namespace {

constexpr double kSampleHz = 100.0;
constexpr double kPulseHz = 5.0;

DetectorConfig test_detector(std::size_t window = 64) {
  DetectorConfig dc;
  dc.window_len = window;
  dc.sample_hz = kSampleHz;
  dc.metric.pulse_hz = kPulseHz;
  return dc;
}

/// The micro-bench's pulse series: DC + in-band tone + Gaussian noise.
std::vector<double> pulse_series(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / kSampleHz;
    z[i] = 10.0 + 3.0 * std::sin(2.0 * 3.14159265358979323846 * kPulseHz * t) +
           rng.normal(0.0, 1.0);
  }
  return z;
}

// ------------------------------------------------- equivalence contracts

TEST(IncrementalDetector, WarmupIsBitExactWithOfflineMetric) {
  const DetectorConfig dc = test_detector();
  IncrementalDetector det{std::make_shared<DetectorGeometry>(dc)};
  const auto z = pulse_series(dc.window_len - 1, 7);
  // While the window is still filling, eta() runs the offline metric on the
  // partial window — the values must be IDENTICAL, not merely close.
  for (std::size_t i = 0; i < z.size(); ++i) {
    det.push(z[i]);
    ASSERT_FALSE(det.ready());
    const std::vector<double> prefix(z.begin(), z.begin() + static_cast<long>(i) + 1);
    const double offline = nimbus::elasticity_metric(prefix, dc.sample_hz, dc.metric);
    ASSERT_EQ(det.eta(), offline) << "at sample " << i;
  }
}

TEST(IncrementalDetector, SlidingMatchesOfflineWithinTolerance) {
  // Post-warmup the incremental path evaluates sliding recurrences; the FFT
  // sums the same products in a different order, so the contract is 1e-9
  // relative, checked continuously across several rebase cycles (the
  // geometry rebases every 4 * window_len pushes).
  const DetectorConfig dc = test_detector();
  auto geom = std::make_shared<DetectorGeometry>(dc);
  IncrementalDetector det{geom};
  const std::size_t total = dc.window_len * 10;
  const auto z = pulse_series(total, 11);
  std::vector<double> window;
  std::size_t checked = 0;
  for (std::size_t i = 0; i < total; ++i) {
    det.push(z[i]);
    if (!det.ready()) continue;
    det.copy_window(window);
    const double offline = nimbus::elasticity_metric(window, dc.sample_hz, dc.metric);
    const double inc = det.eta();
    ASSERT_NEAR(inc, offline, 1e-9 * std::max(1.0, std::abs(offline)))
        << "at sample " << i << " (rebases so far: " << det.rebases() << ")";
    ++checked;
  }
  EXPECT_EQ(checked, total - dc.window_len + 1);
  EXPECT_GE(det.rebases(), 2u);  // the loop really crossed rebase boundaries
}

TEST(IncrementalDetector, ConstantSeriesAgreesOnVerdict) {
  // All-constant windows hit the offline metric's exact-zero noise branch;
  // Parseval bookkeeping leaves ~1e-13 residues, so the documented contract
  // is verdict agreement, not value equality.
  const DetectorConfig dc = test_detector();
  IncrementalDetector det{std::make_shared<DetectorGeometry>(dc)};
  std::vector<double> window(dc.window_len, 42.0);
  for (double v : window) det.push(v);
  ASSERT_TRUE(det.ready());
  const double offline = nimbus::elasticity_metric(window, dc.sample_hz, dc.metric);
  EXPECT_EQ(det.eta() >= nimbus::kElasticThreshold, offline >= nimbus::kElasticThreshold);
}

TEST(IncrementalDetector, ResetMakesAFreshSession) {
  const DetectorConfig dc = test_detector();
  IncrementalDetector det{std::make_shared<DetectorGeometry>(dc)};
  const auto z = pulse_series(dc.window_len * 2, 3);
  for (double v : z) det.push(v);
  ASSERT_TRUE(det.ready());
  det.reset();
  EXPECT_FALSE(det.ready());
  EXPECT_EQ(det.pushes(), 0u);
  // Replay from empty: the detector must behave exactly like a new one.
  IncrementalDetector fresh{std::make_shared<DetectorGeometry>(dc)};
  for (double v : z) {
    det.push(v);
    fresh.push(v);
  }
  EXPECT_EQ(det.eta(), fresh.eta());
}

// ------------------------------------------------- SessionTable lifecycle

TEST(SessionTable, EvictionAndReAddIsolateState) {
  SessionTableConfig tc;
  tc.detector = test_detector();
  SessionTable table{tc};
  const SessionId a = table.add_session();
  const auto z = pulse_series(tc.detector.window_len * 2, 5);
  table.feed(a, z);
  ASSERT_GT(table.status(a).updates, 0u);

  table.remove_session(a);
  EXPECT_EQ(table.live_sessions(), 0u);
  EXPECT_THROW((void)table.status(a), Error);  // stale id must not alias

  // The freed slot is recycled, but the new occupant starts from scratch.
  const SessionId b = table.add_session();
  EXPECT_NE(a, b);
  EXPECT_THROW(table.remove_session(a), Error);
  const SessionStatus& st = table.status(b);
  EXPECT_EQ(st.verdict, Verdict::kWarming);
  EXPECT_EQ(st.samples, 0u);
  EXPECT_EQ(st.updates, 0u);

  // And its verdict stream replays exactly like a never-recycled session.
  table.feed(b, z);
  SessionTable pristine{tc};
  const SessionId c = pristine.add_session();
  pristine.feed(c, z);
  EXPECT_EQ(table.status(b).eta, pristine.status(c).eta);
  EXPECT_EQ(table.status(b).frac_elastic, pristine.status(c).frac_elastic);
  EXPECT_EQ(table.status(b).verdict, pristine.status(c).verdict);
}

TEST(SessionTable, VerdictCountsTrackTransitions) {
  SessionTableConfig tc;
  tc.detector = test_detector();
  SessionTable table{tc};
  const SessionId a = table.add_session();
  (void)table.add_session();
  EXPECT_EQ(table.verdict_counts().warming, 2u);
  table.feed(a, pulse_series(tc.detector.window_len * 2, 9));
  EXPECT_EQ(table.verdict_counts().warming + table.verdict_counts().elastic +
                table.verdict_counts().inelastic + table.verdict_counts().mixed,
            2u);
  EXPECT_EQ(table.verdict_counts().warming, 1u);  // a graduated, b still warm
}

// ------------------------------------------------- service sweep contracts

/// Fast sweep config: 257-bin windows fill in ~2.6 s of the 10 s phase, so
/// every scenario scores real agreement ticks in a few seconds of wall time.
core::ElasticityPocConfig sweep_config() {
  core::ElasticityPocConfig cfg;
  cfg.seed = 42;
  cfg.phase_duration = Time::sec(10.0);
  cfg.warmup = Time::sec(2.0);
  cfg.nimbus.fft_window = Time::sec(2.5);
  return cfg;
}

TEST(ServiceSweep, VerdictStreamIsByteIdenticalAcrossJobs) {
  const core::ElasticityPocConfig cfg = sweep_config();
  const ServiceSweepResult serial = run_service_sweep(cfg, 1);
  const ServiceSweepResult parallel = run_service_sweep(cfg, 4);
  EXPECT_EQ(serial.report.to_jsonl(), parallel.report.to_jsonl());
  EXPECT_EQ(serial.min_agreement, parallel.min_agreement);
}

TEST(ServiceSweep, StreamingVerdictAgreesWithOfflineClassifier) {
  // The PR's accuracy floor: across all five cross-traffic archetypes and
  // all three path cells, the streaming verdict must agree with the offline
  // full-FFT classifier on >= 97% of warm ticks (EXPERIMENTS.md table).
  const ServiceSweepResult sweep = run_service_sweep(sweep_config(), 0);
  ASSERT_EQ(sweep.scenarios.size(),
            static_cast<std::size_t>(core::kElasticityPhaseCount * kPathCellCount));
  for (const auto& s : sweep.scenarios) {
    EXPECT_GT(s.ticks, 0u) << s.phase << "/" << s.cell << ": service never warmed";
    EXPECT_GE(s.agreement, 0.97) << s.phase << "/" << s.cell;
  }
  EXPECT_GE(sweep.min_agreement, 0.97);
}

}  // namespace
}  // namespace ccc::elastic
