// Unit tests for util: units, rng, stats, fft, table.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <sstream>
#include <vector>

#include "util/fft.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace ccc {
namespace {

// ---------- units ----------

TEST(Units, TimeConversionsRoundTrip) {
  EXPECT_EQ(Time::ms(5).count_ns(), 5'000'000);
  EXPECT_EQ(Time::us(7).count_ns(), 7'000);
  EXPECT_DOUBLE_EQ(Time::sec(1.5).to_sec(), 1.5);
  EXPECT_DOUBLE_EQ(Time::ms(250).to_ms(), 250.0);
}

TEST(Units, TimeArithmeticAndOrdering) {
  const Time a = Time::ms(10);
  const Time b = Time::ms(3);
  EXPECT_EQ((a + b).count_ns(), Time::ms(13).count_ns());
  EXPECT_EQ((a - b).count_ns(), Time::ms(7).count_ns());
  EXPECT_LT(b, a);
  EXPECT_EQ(a * 3, Time::ms(30));
  EXPECT_DOUBLE_EQ(a / b, 10.0 / 3.0);
  EXPECT_EQ(a / 2, Time::ms(5));
}

TEST(Units, TimeNeverIsLargest) {
  EXPECT_GT(Time::never(), Time::sec(1e9));
}

TEST(Units, RateTransmitTime) {
  // 1500 bytes at 12 Mbit/s = 1 ms.
  const Rate r = Rate::mbps(12);
  EXPECT_EQ(r.transmit_time(1500).count_ns(), 1'000'000);
}

TEST(Units, RateBytesIn) {
  EXPECT_EQ(Rate::mbps(8).bytes_in(Time::sec(1.0)), 1'000'000);
}

TEST(Units, RateBytesPer) {
  const Rate r = Rate::bytes_per(1'000'000, Time::sec(1.0));
  EXPECT_DOUBLE_EQ(r.to_mbps(), 8.0);
}

TEST(Units, BdpBytes) {
  // 48 Mbit/s * 100 ms = 600,000 bytes.
  EXPECT_EQ(bdp_bytes(Rate::mbps(48), Time::ms(100)), 600'000);
}

TEST(Units, RateArithmetic) {
  EXPECT_DOUBLE_EQ((Rate::mbps(10) + Rate::mbps(5)).to_mbps(), 15.0);
  EXPECT_DOUBLE_EQ((Rate::mbps(10) * 0.5).to_mbps(), 5.0);
  EXPECT_DOUBLE_EQ(Rate::mbps(10) / Rate::mbps(5), 2.0);
}

// ---------- rng ----------

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(3.0, 5.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng{7};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    saw_lo |= v == 1;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng rng{11};
  RunningStats st;
  for (int i = 0; i < 20000; ++i) st.add(rng.exponential(0.5));
  EXPECT_NEAR(st.mean(), 0.5, 0.02);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng{13};
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.bounded_pareto(1.2, 10.0, 1000.0);
    EXPECT_GE(x, 10.0 * 0.999);
    EXPECT_LE(x, 1000.0 * 1.001);
  }
}

TEST(Rng, BoundedParetoIsHeavyTailed) {
  Rng rng{13};
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.bounded_pareto(1.2, 1.0, 1e6));
  // Median far below mean for a heavy tail.
  RunningStats st;
  for (double x : xs) st.add(x);
  EXPECT_LT(median(xs), st.mean() / 3.0);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng{17};
  const std::vector<double> w{0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(Rng, WeightedIndexThrowsOnAllZero) {
  Rng rng{17};
  EXPECT_THROW((void)rng.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, ForkIsIndependent) {
  Rng a{99};
  Rng child = a.fork();
  // Child draws do not change the parent's subsequent sequence relative to a
  // clone that forked identically.
  Rng b{99};
  Rng child2 = b.fork();
  (void)child2;
  for (int i = 0; i < 10; ++i) (void)child.uniform();
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

// ---------- stats ----------

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Stats, CdfFractionAndInverse) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const Cdf cdf{xs};
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(50.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1000.0), 1.0);
  EXPECT_NEAR(cdf.value_at_quantile(0.25), 25.75, 1e-9);
}

TEST(Stats, CdfCurveIsMonotone) {
  std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  const auto curve = Cdf{xs}.curve(11);
  ASSERT_EQ(curve.size(), 11u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
}

TEST(Stats, JainIndexExtremes) {
  EXPECT_DOUBLE_EQ(jain_fairness_index(std::vector<double>{1, 1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index(std::vector<double>{4, 0, 0, 0}), 0.25);
}

TEST(Stats, JainIndexScaleInvariant) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{10, 20, 30};
  EXPECT_DOUBLE_EQ(jain_fairness_index(a), jain_fairness_index(b));
}

TEST(Stats, HarmMetric) {
  EXPECT_DOUBLE_EQ(harm(10.0, 5.0), 0.5);
  EXPECT_DOUBLE_EQ(harm(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(harm(10.0, 12.0), 0.0);  // improvement is not harm
}

// ---------- fft ----------

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(500), 512u);
}

TEST(Fft, ForwardInverseRoundTrip) {
  std::vector<std::complex<double>> data(16);
  Rng rng{3};
  for (auto& c : data) c = {rng.uniform(), 0.0};
  auto copy = data;
  fft_inplace(copy);
  fft_inplace(copy, /*inverse=*/true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(copy[i].real() / 16.0, data[i].real(), 1e-9);
  }
}

TEST(Fft, DetectsPureTone) {
  // 8 Hz tone sampled at 64 Hz for 4 seconds.
  const double fs = 64.0;
  std::vector<double> sig;
  for (int i = 0; i < 256; ++i) {
    sig.push_back(std::sin(2.0 * std::numbers::pi * 8.0 * static_cast<double>(i) / fs));
  }
  const auto spec = magnitude_spectrum(sig, fs);
  const auto peak_bin = spec.bin_for(8.0);
  for (std::size_t i = 1; i < spec.magnitude.size(); ++i) {
    if (i >= peak_bin - 1 && i <= peak_bin + 1) continue;
    EXPECT_LT(spec.magnitude[i], spec.magnitude[peak_bin] * 0.2)
        << "leak at bin " << i;
  }
}

TEST(Fft, SpectrumRemovesDc) {
  std::vector<double> sig(128, 42.0);  // pure DC
  const auto spec = magnitude_spectrum(sig, 10.0);
  for (double m : spec.magnitude) EXPECT_NEAR(m, 0.0, 1e-9);
}

TEST(Fft, BinForClampsToNyquist) {
  std::vector<double> sig(64, 0.0);
  sig[3] = 1.0;
  const auto spec = magnitude_spectrum(sig, 10.0);
  EXPECT_EQ(spec.bin_for(1e9), spec.magnitude.size() - 1);
}

// ---------- table ----------

TEST(Table, AlignedOutputContainsCells) {
  TextTable t{{"name", "value"}};
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvQuotesSpecials) {
  TextTable t{{"a"}};
  t.add_row({"x,y"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

}  // namespace
}  // namespace ccc
