// Tests for the TCP endpoints: delivery, loss recovery, RTO, pacing,
// app/rwnd-limited behaviour. These run small end-to-end simulations on a
// single dumbbell.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk.hpp"
#include "app/rate_limited.hpp"
#include "cca/bbr.hpp"
#include "cca/new_reno.hpp"
#include "core/cca_registry.hpp"
#include "core/dumbbell.hpp"
#include "flow/udp_source.hpp"
#include "queue/drop_tail.hpp"

namespace ccc::flow {
namespace {

core::DumbbellConfig small_net() {
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(10);
  cfg.one_way_delay = Time::ms(10);
  cfg.reverse_delay = Time::ms(10);
  cfg.buffer_bdp_multiple = 1.0;
  return cfg;
}

TEST(TcpFlow, DeliversAllBytesOfAShortFlow) {
  core::DumbbellScenario net{small_net()};
  const ByteCount size = 50'000;
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>(size));
  net.run_until(Time::sec(5.0));
  EXPECT_EQ(net.flow(0).delivered_bytes(), size);
  EXPECT_TRUE(net.flow(0).sender().completed());
}

TEST(TcpFlow, CompletionCallbackFires) {
  core::DumbbellScenario net{small_net()};
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>(10'000));
  Time done = Time::never();
  net.flow(0).sender().set_on_complete([&](Time t) { done = t; });
  net.run_until(Time::sec(5.0));
  EXPECT_LT(done, Time::sec(1.0));
  EXPECT_GT(done, Time::ms(20));  // at least one RTT
}

TEST(TcpFlow, SingleFlowSaturatesLink) {
  core::DumbbellScenario net{small_net()};
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>());
  net.run_until(Time::sec(2.0));
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(10.0));
  const double mbps = net.goodput_mbps_since(0, snap, Time::sec(8.0));
  EXPECT_GT(mbps, 8.5);   // >85% of the 10 Mbit/s link
  EXPECT_LT(mbps, 10.1);  // and never above it
}

TEST(TcpFlow, RttMeasuredAboveBase) {
  core::DumbbellScenario net{small_net()};
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>());
  net.run_until(Time::sec(5.0));
  const Time min_rtt = net.flow(0).sender().min_rtt();
  // Base RTT: 10 ms + 10 ms prop + ~1.2 ms serialization.
  EXPECT_GE(min_rtt, Time::ms(20));
  EXPECT_LE(min_rtt, Time::ms(30));
}

TEST(TcpFlow, LossRecoveryRetransmits) {
  auto cfg = small_net();
  cfg.buffer_bdp_multiple = 0.4;  // shallow buffer forces drops
  core::DumbbellScenario net{cfg};
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>());
  net.run_until(Time::sec(10.0));
  const auto& st = net.flow(0).sender().stats();
  EXPECT_GT(st.recovery_episodes, 0u);
  EXPECT_GT(st.retransmissions, 0u);
  // Despite drops, goodput remains solid (recovery works).
  const double mbps =
      static_cast<double>(net.flow(0).delivered_bytes()) * 8.0 / 10.0 / 1e6;
  EXPECT_GT(mbps, 6.0);
}

TEST(TcpFlow, ReceiverWindowCapsThroughput) {
  core::DumbbellScenario net{small_net()};
  // rwnd = 16 packets; base RTT ~21 ms -> cap ~= 16*1448*8/0.021 = 8.8 Mbit/s
  // on a 10 Mbit/s link... use a smaller window for a clear gap.
  const ByteCount rwnd = 8 * 1448;
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>(), 1,
               Time::zero(), rwnd);
  net.run_until(Time::sec(2.0));
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(10.0));
  const double mbps = net.goodput_mbps_since(0, snap, Time::sec(8.0));
  // Window-limited throughput = rwnd / RTT, clearly below link rate.
  EXPECT_LT(mbps, 6.0);
  EXPECT_GT(mbps, 2.0);
  EXPECT_EQ(net.flow(0).sender().current_limit(), SendLimit::kRwnd);
}

TEST(TcpFlow, AppLimitedFlowReportsAppLimit) {
  core::DumbbellScenario net{small_net()};
  auto app = std::make_unique<app::RateLimitedApp>(net.scheduler(), Rate::mbps(2));
  net.add_flow(std::make_unique<cca::NewReno>(), std::move(app));
  net.run_until(Time::sec(5.0));
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(10.0));
  const double mbps = net.goodput_mbps_since(0, snap, Time::sec(5.0));
  EXPECT_NEAR(mbps, 2.0, 0.3);
  EXPECT_EQ(net.flow(0).sender().current_limit(), SendLimit::kApp);
}

TEST(TcpFlow, TwoRenoFlowsShareFairly) {
  core::DumbbellScenario net{small_net()};
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>());
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>());
  net.run_until(Time::sec(5.0));  // warmup
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(30.0));
  const auto goodputs = net.goodputs_mbps_since(snap, Time::sec(25.0));
  EXPECT_NEAR(goodputs[0] + goodputs[1], 9.7, 0.8);
  EXPECT_NEAR(goodputs[0] / goodputs[1], 1.0, 0.4);
}

TEST(TcpFlow, PacedSenderSmoothsBursts) {
  core::DumbbellScenario net{small_net()};
  net.add_flow(std::make_unique<cca::Bbr>(), std::make_unique<app::BulkApp>());
  net.run_until(Time::sec(3.0));
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(10.0));
  const double mbps = net.goodput_mbps_since(0, snap, Time::sec(7.0));
  EXPECT_GT(mbps, 8.0);
  // BBR keeps the standing queue modest relative to a loss-based filler.
  EXPECT_LT(net.bottleneck().qdisc().backlog_bytes(),
            core::dumbbell_buffer_bytes(small_net()));
}

TEST(TcpFlow, RtoFiresWhenAllAcksLost) {
  // A 1-packet buffer plus a competing blast can black-hole a window; easier:
  // bound the app and inject the flow into a dead demux (no receiver) — the
  // sender must hit RTO and back off without crashing.
  sim::Scheduler sched;
  sim::FlowDemux demux;  // no registration: packets vanish
  sim::NullSink hole;
  auto link = sim::Link{sched, Rate::mbps(10), Time::ms(5),
                        std::make_unique<queue::DropTailQueue>(1 << 20), demux};
  auto sink = sim::LinkSink{link};
  app::BulkApp bulk{100'000};
  SenderConfig cfg;
  cfg.flow_id = 1;
  TcpSender sender{sched, cfg, std::make_unique<cca::NewReno>(), bulk, sink};
  sender.start(Time::zero());
  sched.run_until(Time::sec(10.0));
  // First expiry is absorbed by a tail-loss probe; subsequent ones are real
  // RTOs with exponential backoff.
  EXPECT_GE(sender.stats().tail_probes, 1u);
  EXPECT_GE(sender.stats().rto_events, 2u);
  EXPECT_FALSE(sender.completed());
  (void)hole;
}

TEST(UdpCbr, EmitsAtConfiguredRate) {
  sim::Scheduler sched;
  sim::NullSink sink;
  UdpCbrSource cbr{sched, 9, 1, Rate::mbps(12), Time::zero(), Time::sec(10.0), sink};
  sched.run_until(Time::sec(10.0));
  const double mbps = static_cast<double>(sink.bytes()) * 8.0 / 10.0 / 1e6;
  EXPECT_NEAR(mbps, 12.0, 0.2);
}

TEST(UdpCbr, StopsAtDeadline) {
  sim::Scheduler sched;
  sim::NullSink sink;
  UdpCbrSource cbr{sched, 9, 1, Rate::mbps(12), Time::sec(1.0), Time::sec(2.0), sink};
  sched.run_until(Time::sec(10.0));
  const auto n = cbr.packets_emitted();
  // 12 Mbit/s for 1 s at 1488-byte packets ~= 1008 packets.
  EXPECT_NEAR(static_cast<double>(n), 1008.0, 20.0);
}

TEST(ShortFlowWorkload, FlowsArriveAndComplete) {
  core::DumbbellScenario net{small_net()};
  ShortFlowConfig cfg;
  cfg.stop_at = Time::sec(20.0);
  cfg.mean_interarrival = Time::ms(250);
  auto& wl = net.add_short_flows(cfg, core::make_cca_factory("cubic"));
  net.run_until(Time::sec(40.0));
  // ~80 arrivals expected; nearly all should complete by t=40 s.
  EXPECT_GT(wl.flows_started(), 40u);
  EXPECT_GT(wl.flows_completed(), wl.flows_started() * 9 / 10);
  EXPECT_FALSE(wl.completion_times_sec().empty());
  EXPECT_GT(wl.bytes_delivered(), 0);
}

TEST(ShortFlowWorkload, DeterministicForSameSeed) {
  auto run_once = [] {
    core::DumbbellScenario net{small_net()};
    ShortFlowConfig cfg;
    cfg.stop_at = Time::sec(10.0);
    auto& wl = net.add_short_flows(cfg, core::make_cca_factory("cubic"));
    net.run_until(Time::sec(15.0));
    return std::pair{wl.flows_started(), wl.bytes_delivered()};
  };
  EXPECT_EQ(run_once(), run_once());
}


TEST(TcpFlow, DelayedAcksHalveAckTraffic) {
  // A lossless bounded transfer (fits in slow start before any overshoot):
  // the delayed-ACK receiver must emit roughly one ACK per two packets.
  auto run_once = [](Time delayed) {
    auto cfg = small_net();
    cfg.buffer_bdp_multiple = 4.0;
    core::DumbbellScenario net{cfg};
    flow::TcpFlowConfig fc;
    fc.flow_id = 1;
    fc.reverse_delay = Time::ms(10);
    fc.delayed_ack = delayed;
    // Wire manually through the scenario primitives to reach the config
    // (DumbbellScenario::add_flow does not expose delayed_ack).
    sim::LinkSink link_sink{net.bottleneck()};
    flow::TcpFlow f{net.scheduler(), fc, core::make_cca_factory("cubic")(),
                    std::make_unique<app::BulkApp>(200'000), link_sink, net.demux()};
    net.run_until(Time::sec(5.0));
    EXPECT_TRUE(f.sender().completed());
    EXPECT_EQ(f.delivered_bytes(), 200'000);
    EXPECT_EQ(f.sender().stats().retransmissions, 0u);
    EXPECT_EQ(f.receiver().packets_received(), 139u);  // 200 KB / MSS, lossless
    return f.receiver().acks_sent();
  };
  const auto quick = run_once(Time::zero());
  const auto delayed = run_once(Time::ms(40));
  EXPECT_EQ(quick, 139u);  // quickack: one ACK per packet
  EXPECT_LT(delayed, quick * 3 / 4) << "quick=" << quick << " delayed=" << delayed;
  EXPECT_GT(delayed, quick / 3);
}

TEST(TcpFlow, IdleRestartCollapsesStaleWindow) {
  // An app that sends a big burst, goes idle for seconds, then resumes: the
  // CCA window must restart near the initial window rather than blasting the
  // stale one.
  core::DumbbellScenario net{small_net()};
  class BurstyApp : public app::App {
   public:
    explicit BurstyApp(sim::Scheduler& sched) : sched_{sched} {}
    void on_start(Time /*now*/) override {
      // Wake the (by then idle) sender when the second phase begins.
      sched_.schedule_at(Time::sec(6.0), [this] { notify_data_ready(); });
    }
    ByteCount bytes_available(Time now) override {
      // 2 MB burst at t=0, silence once it drains, resume at 6s.
      if (now < Time::sec(6.0)) return first_remaining_;
      return 1'000'000'000;
    }
    void consume(ByteCount n, Time now) override {
      if (now < Time::sec(6.0)) first_remaining_ -= n;
    }

   private:
    sim::Scheduler& sched_;
    ByteCount first_remaining_{2'000'000};
  };
  net.add_flow(core::make_cca_factory("cubic")(),
               std::make_unique<BurstyApp>(net.scheduler()));
  net.run_until(Time::sec(5.9));
  // First phase filled the window well past the initial window.
  EXPECT_GT(net.flow(0).sender().cc().cwnd_bytes(), cca::kInitialWindowBytes);
  // Sample immediately after the resume notification, before slow start has
  // had an RTT to regrow: the stale window must have been collapsed.
  net.run_until(Time::sec(6.0) + Time::ms(5));
  EXPECT_LE(net.flow(0).sender().cc().cwnd_bytes(), cca::kInitialWindowBytes + 2 * 1448);
  net.run_until(Time::sec(12.0));
  // And the flow still ramps back up to fill the link afterwards.
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(16.0));
  EXPECT_GT(net.goodput_mbps_since(0, snap, Time::sec(4.0)), 7.0);
}

}  // namespace
}  // namespace ccc::flow
