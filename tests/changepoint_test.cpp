// Unit + property tests for change-point detection.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "changepoint/cost.hpp"
#include "changepoint/detectors.hpp"
#include "util/rng.hpp"

namespace ccc::changepoint {
namespace {

std::vector<double> steps(const std::vector<std::pair<std::size_t, double>>& segments,
                          double noise, Rng& rng) {
  std::vector<double> x;
  for (const auto& [len, level] : segments) {
    for (std::size_t i = 0; i < len; ++i) x.push_back(level + rng.normal(0.0, noise));
  }
  return x;
}

bool has_cp_near(const std::vector<std::size_t>& cps, std::size_t where, std::size_t tol) {
  for (auto c : cps) {
    if (c + tol >= where && c <= where + tol) return true;
  }
  return false;
}

// ---------- costs ----------

TEST(CostL2, ZeroForConstantSegment) {
  CostL2 cost;
  const std::vector<double> x(50, 3.0);
  cost.fit(x);
  EXPECT_NEAR(cost.cost(0, 50), 0.0, 1e-9);
  EXPECT_NEAR(cost.cost(10, 30), 0.0, 1e-9);
}

TEST(CostL2, SplitsReduceCostAcrossAStep) {
  CostL2 cost;
  std::vector<double> x(40, 1.0);
  for (std::size_t i = 20; i < 40; ++i) x[i] = 5.0;
  cost.fit(x);
  EXPECT_GT(cost.cost(0, 40), cost.cost(0, 20) + cost.cost(20, 40) + 1.0);
}

TEST(CostL2, MatchesDirectComputation) {
  Rng rng{1};
  std::vector<double> x;
  for (int i = 0; i < 30; ++i) x.push_back(rng.uniform(0, 10));
  CostL2 cost;
  cost.fit(x);
  // Direct SSE on [5, 25).
  double mean = 0.0;
  for (int i = 5; i < 25; ++i) mean += x[i];
  mean /= 20.0;
  double sse = 0.0;
  for (int i = 5; i < 25; ++i) sse += (x[i] - mean) * (x[i] - mean);
  EXPECT_NEAR(cost.cost(5, 25), sse, 1e-9);
}

TEST(CostNormal, PrefersSplittingVarianceChange) {
  Rng rng{2};
  std::vector<double> x;
  for (int i = 0; i < 100; ++i) x.push_back(rng.normal(5.0, 0.1));
  for (int i = 0; i < 100; ++i) x.push_back(rng.normal(5.0, 3.0));  // same mean!
  CostNormal cost;
  cost.fit(x);
  EXPECT_GT(cost.cost(0, 200), cost.cost(0, 100) + cost.cost(100, 200) + 10.0);
}

TEST(NoiseSigma, EstimatesNoiseNotSteps) {
  Rng rng{3};
  // Big step, small noise: sigma estimate must reflect the noise.
  const auto x = steps({{100, 10.0}, {100, 50.0}}, 0.5, rng);
  EXPECT_NEAR(estimate_noise_sigma(x), 0.5, 0.2);
}

// ---------- PELT ----------

TEST(Pelt, FindsSingleStep) {
  Rng rng{4};
  const auto x = steps({{60, 10.0}, {60, 20.0}}, 0.5, rng);
  CostL2 cost;
  cost.fit(x);
  const auto cps = pelt(cost, bic_penalty(x.size(), 0.5));
  ASSERT_FALSE(cps.empty());
  EXPECT_TRUE(has_cp_near(cps, 60, 3)) << "got " << cps[0];
}

TEST(Pelt, FindsMultipleSteps) {
  Rng rng{5};
  const auto x = steps({{50, 5.0}, {50, 15.0}, {50, 8.0}}, 0.4, rng);
  CostL2 cost;
  cost.fit(x);
  const auto cps = pelt(cost, bic_penalty(x.size(), 0.4));
  EXPECT_TRUE(has_cp_near(cps, 50, 3));
  EXPECT_TRUE(has_cp_near(cps, 100, 3));
}

TEST(Pelt, NoFalsePositivesOnStationaryNoise) {
  Rng rng{6};
  const auto x = steps({{300, 10.0}}, 1.0, rng);
  CostL2 cost;
  cost.fit(x);
  const auto cps = pelt(cost, bic_penalty(x.size(), estimate_noise_sigma(x)));
  EXPECT_TRUE(cps.empty());
}

TEST(Pelt, EmptyOnTinySignal) {
  CostL2 cost;
  cost.fit(std::vector<double>{1.0, 2.0});
  EXPECT_TRUE(pelt(cost, 1.0).empty());
}

TEST(DetectMeanShifts, EndToEndHelper) {
  Rng rng{7};
  const auto x = steps({{80, 40.0}, {80, 18.0}}, 1.0, rng);
  const auto cps = detect_mean_shifts(x);
  ASSERT_FALSE(cps.empty());
  EXPECT_TRUE(has_cp_near(cps, 80, 4));
}

TEST(DetectMeanShifts, SensitivityControlsDetections) {
  Rng rng{8};
  // Modest step at index 100.
  const auto x = steps({{100, 10.0}, {100, 12.0}}, 1.0, rng);
  const auto strict = detect_mean_shifts(x, 8.0);
  const auto loose = detect_mean_shifts(x, 0.3);
  EXPECT_LE(strict.size(), loose.size());
}

// Property sweep: PELT localizes a single step across magnitudes and
// positions.
struct StepCase {
  std::size_t before;
  std::size_t after;
  double delta;
};

class PeltLocalization : public ::testing::TestWithParam<StepCase> {};

TEST_P(PeltLocalization, LocalizesWithinTolerance) {
  const auto& p = GetParam();
  Rng rng{42};
  const auto x = steps({{p.before, 10.0}, {p.after, 10.0 + p.delta}}, 0.5, rng);
  const auto cps = detect_mean_shifts(x);
  ASSERT_FALSE(cps.empty()) << "missed step of " << p.delta;
  EXPECT_TRUE(has_cp_near(cps, p.before, 4));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PeltLocalization,
                         ::testing::Values(StepCase{40, 40, 5.0}, StepCase{40, 40, -5.0},
                                           StepCase{30, 90, 3.0}, StepCase{90, 30, 3.0},
                                           StepCase{60, 60, 10.0}, StepCase{25, 25, 4.0}));

// ---------- binary segmentation ----------

TEST(BinSeg, AgreesWithPeltOnCleanSteps) {
  Rng rng{9};
  const auto x = steps({{50, 5.0}, {50, 25.0}}, 0.3, rng);
  CostL2 cost;
  cost.fit(x);
  const double pen = bic_penalty(x.size(), 0.3);
  const auto a = pelt(cost, pen);
  const auto b = binary_segmentation(cost, pen);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_NEAR(static_cast<double>(a[0]), static_cast<double>(b[0]), 3.0);
}

TEST(BinSeg, RespectsMaxChanges) {
  Rng rng{10};
  const auto x = steps({{30, 1.0}, {30, 9.0}, {30, 1.0}, {30, 9.0}, {30, 1.0}}, 0.2, rng);
  CostL2 cost;
  cost.fit(x);
  const auto cps = binary_segmentation(cost, 1.0, /*max_changes=*/1);
  EXPECT_LE(cps.size(), 1u);
}

// ---------- sliding window ----------

TEST(SlidingWindow, FindsStepWithCoarseLocalization) {
  Rng rng{11};
  const auto x = steps({{80, 10.0}, {80, 25.0}}, 0.5, rng);
  CostL2 cost;
  cost.fit(x);
  const auto cps = sliding_window(cost, 20, bic_penalty(x.size(), 0.5));
  ASSERT_FALSE(cps.empty());
  EXPECT_TRUE(has_cp_near(cps, 80, 10));
}

TEST(SlidingWindow, QuietOnStationarySignal) {
  Rng rng{12};
  const auto x = steps({{200, 10.0}}, 0.5, rng);
  CostL2 cost;
  cost.fit(x);
  EXPECT_TRUE(sliding_window(cost, 20, bic_penalty(x.size(), 0.5)).empty());
}

// ---------- CUSUM ----------

TEST(Cusum, AlarmsAfterMeanShift) {
  Rng rng{13};
  // k = 0.5 sigma, h = 10 sigma: long in-control ARL, detection delay
  // ~ h/(shift - k) = 4 samples for a 3-sigma shift.
  Cusum det{10.0, 0.5, 10.0};
  bool alarmed = false;
  std::size_t alarm_at = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    const double x = (i < 100 ? 10.0 : 13.0) + rng.normal(0.0, 1.0);
    if (det.add(x) && !alarmed) {
      alarmed = true;
      alarm_at = i;
    }
  }
  ASSERT_TRUE(alarmed);
  EXPECT_GE(alarm_at, 100u);
  EXPECT_LE(alarm_at, 120u);  // quick detection
}

TEST(Cusum, QuietInControl) {
  Rng rng{14};
  Cusum det{10.0, 1.0, 8.0};
  for (std::size_t i = 0; i < 500; ++i) det.add(10.0 + rng.normal(0.0, 1.0));
  EXPECT_TRUE(det.alarms().empty());
}

TEST(Cusum, DetectsDownwardShiftToo) {
  Cusum det{10.0, 0.5, 4.0};
  bool alarmed = false;
  for (std::size_t i = 0; i < 50; ++i) alarmed |= det.add(6.0);
  EXPECT_TRUE(alarmed);
}

// ---------- degenerate inputs ----------
// Real NDT exports contain zero-sample flows, one-sample flows, and series
// shorter than any plausible segment; every search method must answer "no
// change points" rather than crash or fabricate splits.

TEST(EdgeCases, EmptySeriesHasNoChangePoints) {
  const std::vector<double> x;
  CostL2 cost;
  cost.fit(x);
  EXPECT_TRUE(pelt(cost, 1.0).empty());
  EXPECT_TRUE(binary_segmentation(cost, 1.0).empty());
  EXPECT_TRUE(sliding_window(cost, 5, 1.0).empty());
  EXPECT_TRUE(detect_mean_shifts(x).empty());
}

TEST(EdgeCases, SinglePointSeriesHasNoChangePoints) {
  const std::vector<double> x{42.0};
  CostL2 cost;
  cost.fit(x);
  EXPECT_TRUE(pelt(cost, 1.0).empty());
  EXPECT_TRUE(binary_segmentation(cost, 1.0).empty());
  EXPECT_TRUE(sliding_window(cost, 5, 1.0).empty());
  EXPECT_TRUE(detect_mean_shifts(x).empty());
}

TEST(EdgeCases, ConstantSeriesHasNoChangePoints) {
  const std::vector<double> x(200, 7.5);
  CostL2 cost;
  cost.fit(x);
  EXPECT_TRUE(pelt(cost, 1.0).empty());
  EXPECT_TRUE(binary_segmentation(cost, 1.0).empty());
  EXPECT_TRUE(sliding_window(cost, 5, 1.0).empty());
  // The BIC penalty divides by the noise estimate; a zero-variance series
  // must not turn that into splits everywhere (or a NaN penalty).
  EXPECT_TRUE(detect_mean_shifts(x).empty());
}

TEST(EdgeCases, SeriesShorterThanMinSegmentHasNoChangePoints) {
  // A hard step, but both sides are shorter than the minimum segment:
  // the constraint must win over the cost reduction.
  std::vector<double> x{1.0, 1.0, 9.0, 9.0};
  CostL2 cost;
  cost.fit(x);
  EXPECT_TRUE(pelt(cost, 0.001, /*min_segment=*/5).empty());
  EXPECT_TRUE(detect_mean_shifts(x, 1.0, /*min_segment=*/5).empty());
}

// ---------- minimum-segment feasibility ----------
// When min_segment exceeds n/2 no interior split admits two valid segments;
// pelt() must report "no change points" (not crash, not fabricate a split,
// not leave infinities visible). Regression for the silent `best == kInf`
// path: f[t] may legitimately stay unset while every candidate is younger
// than min_segment, and the backtrack must still terminate cleanly.

TEST(PeltFeasibility, MinSegmentOverHalfLengthFindsNothing) {
  std::vector<double> x;
  for (int i = 0; i < 40; ++i) x.push_back(i < 20 ? 1.0 : 9.0);  // blatant step
  CostL2 cost;
  cost.fit(x);
  EXPECT_TRUE(pelt(cost, 0.001, /*min_segment=*/21).empty());
  EXPECT_TRUE(pelt(cost, 0.001, /*min_segment=*/40).empty());
  EXPECT_TRUE(pelt(cost, 0.001, /*min_segment=*/1000).empty());
}

TEST(PeltFeasibility, MinSegmentExactlyHalfAllowsOnlyTheMidpoint) {
  std::vector<double> x;
  for (int i = 0; i < 40; ++i) x.push_back(i < 20 ? 1.0 : 9.0);
  CostL2 cost;
  cost.fit(x);
  const auto cps = pelt(cost, 0.001, /*min_segment=*/20);
  ASSERT_EQ(cps.size(), 1u);
  EXPECT_EQ(cps[0], 20u);
}

// ---------- golden outputs ----------
// Exact change-point indices pinned on fixed synthetic signals BEFORE the
// kernel optimizations (devirtualized search, fused minimize+prune,
// workspace reuse) so a rewrite cannot silently change results. The
// optimized kernels evaluate cost(s, t) once per step in the same FP order
// as the seed code, so these must stay bit-for-bit identical.

std::vector<double> golden_step() {
  Rng rng{101};
  std::vector<double> x;
  for (int i = 0; i < 120; ++i) x.push_back((i < 60 ? 10.0 : 16.0) + rng.normal(0.0, 0.5));
  return x;
}

std::vector<double> golden_ramp() {
  Rng rng{202};
  std::vector<double> x;
  for (int i = 0; i < 150; ++i)
    x.push_back(5.0 + 0.1 * static_cast<double>(i) + rng.normal(0.0, 0.4));
  return x;
}

std::vector<double> golden_noise() {
  Rng rng{303};
  std::vector<double> x;
  for (int i = 0; i < 200; ++i) x.push_back(20.0 + rng.normal(0.0, 1.0));
  return x;
}

std::vector<double> golden_varshift() {
  Rng rng{404};
  std::vector<double> x;
  for (int i = 0; i < 100; ++i) x.push_back(8.0 + rng.normal(0.0, 0.2));
  for (int i = 0; i < 100; ++i) x.push_back(8.0 + rng.normal(0.0, 2.5));
  return x;
}

using Cps = std::vector<std::size_t>;

TEST(Golden, StepSignal) {
  const auto x = golden_step();
  CostL2 cost;
  cost.fit(x);
  const double pen = bic_penalty(x.size(), 0.5);
  EXPECT_EQ(pelt(cost, pen), (Cps{60}));
  EXPECT_EQ(binary_segmentation(cost, pen), (Cps{60}));
  EXPECT_EQ(sliding_window(cost, 15, pen), (Cps{60}));
  EXPECT_EQ(detect_mean_shifts(x), (Cps{60}));
}

TEST(Golden, RampSignal) {
  // A ramp has no true step; the searches tile it into quasi-stationary
  // pieces. The exact tiling is what we pin.
  const auto x = golden_ramp();
  CostL2 cost;
  cost.fit(x);
  const double pen = bic_penalty(x.size(), 0.4);
  EXPECT_EQ(pelt(cost, pen, /*min_segment=*/10),
            (Cps{10, 22, 36, 48, 58, 68, 81, 92, 103, 115, 126, 137}));
  EXPECT_EQ(binary_segmentation(cost, pen, /*max_changes=*/8),
            (Cps{10, 22, 36, 48, 58, 68, 76, 81, 92, 103, 115, 123, 133, 146}));
  EXPECT_EQ(sliding_window(cost, 20, pen), (Cps{22, 58, 81, 103, 126}));
}

TEST(Golden, StationaryNoise) {
  const auto x = golden_noise();
  CostL2 cost;
  cost.fit(x);
  const double pen = bic_penalty(x.size(), estimate_noise_sigma(x));
  EXPECT_EQ(pelt(cost, pen), Cps{});
  EXPECT_EQ(binary_segmentation(cost, pen), Cps{});
  EXPECT_EQ(sliding_window(cost, 20, pen), Cps{});
}

TEST(Golden, VarianceShift) {
  // Same mean both halves; only CostNormal can see the boundary.
  const auto x = golden_varshift();
  CostNormal cost;
  cost.fit(x);
  const double pen = 2.0 * std::log(200.0);
  EXPECT_EQ(pelt(cost, pen), (Cps{101}));
  EXPECT_EQ(binary_segmentation(cost, pen), (Cps{101}));
  EXPECT_EQ(sliding_window(cost, 25, pen), (Cps{100}));
}

// ---------- packed kernel / workspace equivalence ----------

/// A SegmentCost the dispatcher cannot recognize: forwards to CostL2 through
/// the virtual interface, so the search runs the generic (unpacked) kernel.
/// Comparing against plain CostL2 pins packed == generic exactly.
class OpaqueL2 : public SegmentCost {
 public:
  void fit(std::span<const double> signal) override {
    inner_.fit(signal);
    n_ = signal.size();
  }
  [[nodiscard]] double cost(std::size_t i, std::size_t j) const override {
    return inner_.cost(i, j);
  }
  [[nodiscard]] std::size_t min_size() const override { return inner_.min_size(); }

 private:
  CostL2 inner_;
};

TEST(WorkspaceEquivalence, PackedPeltMatchesGenericKernel) {
  for (const auto& x : {golden_step(), golden_ramp(), golden_noise(), golden_varshift()}) {
    const double sigma = std::max(estimate_noise_sigma(x), 1e-6);
    const double pen = bic_penalty(x.size(), sigma);
    CostL2 packed;
    packed.fit(x);
    OpaqueL2 generic;
    generic.fit(x);
    for (const std::size_t min_seg : {1u, 3u, 10u}) {
      EXPECT_EQ(pelt(packed, pen, min_seg), pelt(generic, pen, min_seg))
          << "n=" << x.size() << " min_seg=" << min_seg;
    }
  }
}

TEST(WorkspaceEquivalence, DetectMeanShiftsIntoIdenticalWithDirtyWorkspace) {
  // One workspace reused across signals of different lengths and shapes must
  // reproduce the fresh-allocation results exactly.
  ChangepointWorkspace ws;
  for (const auto& x : {golden_ramp(), golden_step(), golden_noise(), golden_varshift()}) {
    const auto fresh = detect_mean_shifts(x, 1.0, 3);
    detect_mean_shifts_into(x, 1.0, 3, ws, ws.cps);
    EXPECT_EQ(fresh, ws.cps) << "n=" << x.size();
  }
}

TEST(WorkspaceEquivalence, SlidingWindowIntoIdenticalWithDirtyWorkspace) {
  ChangepointWorkspace ws;
  std::vector<std::size_t> out;
  for (const auto& x : {golden_step(), golden_ramp()}) {
    CostL2 cost;
    cost.fit(x);
    const double pen = bic_penalty(x.size(), std::max(estimate_noise_sigma(x), 1e-6));
    sliding_window_into(cost, 20, pen, ws, out);
    EXPECT_EQ(sliding_window(cost, 20, pen), out) << "n=" << x.size();
  }
}

}  // namespace
}  // namespace ccc::changepoint
