// Robustness suite: the corruption matrix, the faultfs fault-injection
// drills, and the degrade-vs-strict policy tests.
//
// The contract under test (DESIGN.md "Error handling & fault injection"):
// no corrupt or unreadable input may crash, hang, or silently produce a
// wrong answer. Every failure surfaces as a typed ccc::Error (strict) or a
// counted skip (degrade). The corruption matrix earns the "every" in that
// sentence: it byte-flips and truncates each section of a golden ccfs file
// and asserts the reader's verdict for each.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "mlab/synthetic.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/shard_set.hpp"
#include "store/convert.hpp"
#include "store/flow_store.hpp"
#include "store/format.hpp"
#include "telemetry/metrics.hpp"
#include "util/error.hpp"
#include "util/faultfs.hpp"

namespace ccc {
namespace {

namespace fs = std::filesystem;

/// A unique scratch path, removed (with shard siblings) on destruction.
class TempPath {
 public:
  explicit TempPath(const std::string& stem) {
    static int counter = 0;
    path_ = (fs::temp_directory_path() /
             (stem + "." + std::to_string(::getpid()) + "." + std::to_string(counter++)))
                .string();
  }
  ~TempPath() {
    std::error_code ec;
    for (const auto& e : fs::directory_iterator(fs::path(path_).parent_path(), ec)) {
      const auto name = e.path().filename().string();
      if (name.rfind(fs::path(path_).filename().string(), 0) == 0) fs::remove(e.path(), ec);
    }
  }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

/// Restores the no-fault state even when an assertion bails out of a test.
struct PlanGuard {
  explicit PlanGuard(faultfs::FaultKind kind, std::uint64_t at_op,
                     std::string path_substr = {}) {
    faultfs::set_plan({kind, at_op, std::move(path_substr)});
  }
  ~PlanGuard() { faultfs::clear_plan(); }
};

std::vector<mlab::NdtRecord> make_dataset(std::size_t n, std::uint64_t seed = 7) {
  mlab::SyntheticConfig cfg;
  cfg.n_flows = n;
  Rng rng{seed};
  return mlab::generate_dataset(cfg, rng);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f{path, std::ios::binary};
  return {std::istreambuf_iterator<char>{f}, std::istreambuf_iterator<char>{}};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream f{path, std::ios::binary | std::ios::trunc};
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

/// Opens `path` expecting a typed failure; returns the Error's category.
/// ADD_FAILUREs (rather than crashing the binary) if no ccc::Error comes out.
ErrorCategory category_of_open_failure(const std::string& path, const std::string& what_case) {
  try {
    store::FlowStoreReader r{path};
    ADD_FAILURE() << what_case << ": reader accepted a damaged file";
  } catch (const Error& e) {
    return e.category();
  } catch (const std::exception& e) {
    ADD_FAILURE() << what_case << ": untyped exception escaped: " << e.what();
  }
  return ErrorCategory::kConfig;  // sentinel no valid case maps to
}

// ---------------------------------------------------------------- ccc::Error

TEST(Error, RendersCategoryPathAndOffset) {
  const Error e = Error::corruption("/data/x.ccfs", "crc mismatch", 64);
  EXPECT_EQ(e.category(), ErrorCategory::kCorruption);
  EXPECT_EQ(e.path(), "/data/x.ccfs");
  EXPECT_EQ(e.detail(), "crc mismatch");
  EXPECT_TRUE(e.has_byte_offset());
  EXPECT_EQ(e.byte_offset(), 64u);
  EXPECT_STREQ(e.what(), "[corruption] /data/x.ccfs: crc mismatch (byte offset 64)");
}

TEST(Error, OffsetlessAndPathlessFormsRenderClean) {
  const Error e = Error::config("", "bad flag");
  EXPECT_FALSE(e.has_byte_offset());
  EXPECT_STREQ(e.what(), "[config] bad flag");
}

TEST(Error, IsCatchableAsRuntimeError) {
  // The whole refactor leans on this: pre-existing EXPECT_THROW(...,
  // std::runtime_error) sites must keep passing.
  EXPECT_THROW(throw Error::io("f", "x"), std::runtime_error);
}

// ------------------------------------------------------- the corruption matrix

TEST(CorruptionMatrix, ByteFlipInEverySectionIsDetected) {
  TempPath golden{"robust_matrix.ccfs"};
  store::write_store(golden.str(), make_dataset(64));
  const std::vector<std::uint8_t> pristine = read_file(golden.str());
  ASSERT_GE(pristine.size(), sizeof(store::Header) + sizeof(store::Footer));

  store::Footer footer{};
  std::memcpy(&footer, pristine.data() + pristine.size() - sizeof footer, sizeof footer);
  ASSERT_EQ(footer.magic, store::kFooterMagic);

  // Flip targets: one byte inside every directory-listed section, plus the
  // header magic, the header version, the directory itself, and the footer.
  struct Target {
    std::string name;
    std::size_t offset;
  };
  std::vector<Target> targets{
      {"header.magic", 0},
      {"header.version", offsetof(store::Header, version)},
      {"directory", static_cast<std::size_t>(footer.directory_offset) + 8},
      {"footer.magic", pristine.size() - 4},
      {"footer.crc", pristine.size() - 8},
  };
  // On disk the directory section is a u32 entry count followed by the
  // packed entries; copy them out (the count makes them 4-byte aligned).
  std::vector<store::DirectoryEntry> dir(store::kSectionCount);
  std::memcpy(dir.data(),
              pristine.data() + footer.directory_offset + sizeof(std::uint32_t),
              store::kSectionCount * sizeof(store::DirectoryEntry));
  for (std::size_t s = 0; s < store::kSectionCount; ++s) {
    if (dir[s].bytes == 0) continue;  // nothing to flip (all series empty)
    targets.push_back({"section." + std::to_string(dir[s].id),
                       static_cast<std::size_t>(dir[s].offset + dir[s].bytes / 2)});
  }

  TempPath mutant{"robust_matrix_mut.ccfs"};
  for (const auto& t : targets) {
    ASSERT_LT(t.offset, pristine.size()) << t.name;
    auto bytes = pristine;
    bytes[t.offset] ^= 0x40;
    write_file(mutant.str(), bytes);
    const ErrorCategory cat = category_of_open_failure(mutant.str(), "flip " + t.name);
    // A flip is never an OS failure and never the caller's fault; which of
    // format/corruption it is depends on what the byte broke.
    EXPECT_TRUE(cat == ErrorCategory::kFormat || cat == ErrorCategory::kCorruption)
        << "flip " << t.name << " produced category " << to_string(cat);
  }

  // Flips confined to CRC-covered payload (pool/columns/offsets) must be
  // called corruption specifically — the document was valid and now is not.
  for (std::size_t s = 0; s < store::kSectionCount; ++s) {
    if (dir[s].bytes == 0) continue;
    auto bytes = pristine;
    bytes[dir[s].offset + dir[s].bytes / 2] ^= 0x01;
    write_file(mutant.str(), bytes);
    EXPECT_EQ(category_of_open_failure(mutant.str(), "payload flip"),
              ErrorCategory::kCorruption)
        << "section " << dir[s].id;
  }
}

TEST(CorruptionMatrix, TruncationAtEveryBoundaryIsDetected) {
  TempPath golden{"robust_trunc.ccfs"};
  store::write_store(golden.str(), make_dataset(64));
  const std::vector<std::uint8_t> pristine = read_file(golden.str());

  store::Footer footer{};
  std::memcpy(&footer, pristine.data() + pristine.size() - sizeof footer, sizeof footer);

  const std::vector<std::size_t> cuts{
      0,                                                  // empty file
      10,                                                 // inside the header
      sizeof(store::Header),                              // header only
      sizeof(store::Header) + 1,                          // one pool byte
      static_cast<std::size_t>(footer.directory_offset),  // directory gone
      pristine.size() - sizeof(store::Footer),            // footer gone
      pristine.size() - 1,                                // last byte gone
  };
  TempPath mutant{"robust_trunc_mut.ccfs"};
  for (const std::size_t cut : cuts) {
    auto bytes = pristine;
    bytes.resize(cut);
    write_file(mutant.str(), bytes);
    const ErrorCategory cat =
        category_of_open_failure(mutant.str(), "truncate to " + std::to_string(cut));
    EXPECT_TRUE(cat == ErrorCategory::kFormat || cat == ErrorCategory::kCorruption)
        << "truncate to " << cut << " produced category " << to_string(cat);
  }
}

TEST(CorruptionMatrix, VerifyCrcOffStillRejectsStructuralDamage) {
  TempPath golden{"robust_nocrc.ccfs"};
  store::write_store(golden.str(), make_dataset(16));
  auto bytes = read_file(golden.str());
  bytes[0] ^= 0x40;  // header magic: structural, not CRC-covered
  write_file(golden.str(), bytes);
  EXPECT_THROW((store::FlowStoreReader{golden.str(), /*verify_crc=*/false}), Error);
}

// --------------------------------------------------- degrade vs strict policy

TEST(ShardSet, DegradeSkipsCorruptShardAndCounts) {
  TempPath good{"robust_good.ccfs"};
  TempPath bad{"robust_bad.ccfs"};
  const auto dataset = make_dataset(128);
  store::write_store(good.str(), dataset);
  store::write_store(bad.str(), dataset);
  auto bytes = read_file(bad.str());
  bytes[bytes.size() / 2] ^= 0x40;
  write_file(bad.str(), bytes);

  telemetry::MetricRegistry reg;
  const auto shards =
      pipeline::ShardSet::open({bad.str(), good.str()}, {.strict = false}, &reg);
  EXPECT_EQ(shards.shards_opened(), 1u);
  EXPECT_EQ(shards.flows(), dataset.size());
  ASSERT_EQ(shards.failures().size(), 1u);
  EXPECT_EQ(shards.failures()[0].path, bad.str());
  EXPECT_EQ(shards.failures()[0].category, ErrorCategory::kCorruption);
  EXPECT_EQ(reg.counter("pipeline.shards_failed").value(), 1u);
  EXPECT_EQ(reg.counter("store.shards_opened").value(), 1u);

  // The degraded run proceeds on the surviving shard and yields sane totals.
  const auto res = pipeline::run_pipeline(shards.source(), {});
  EXPECT_EQ(res.flows, dataset.size());
}

TEST(ShardSet, StrictRethrowsTheTypedError) {
  TempPath bad{"robust_strict.ccfs"};
  store::write_store(bad.str(), make_dataset(32));
  auto bytes = read_file(bad.str());
  bytes[bytes.size() / 2] ^= 0x40;
  write_file(bad.str(), bytes);

  try {
    const auto shards = pipeline::ShardSet::open({bad.str()}, {.strict = true});
    FAIL() << "strict open accepted a corrupt shard";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kCorruption);
  }
}

TEST(ShardSet, MissingFileIsAnIoFailure) {
  telemetry::MetricRegistry reg;
  const auto shards =
      pipeline::ShardSet::open({"/nonexistent/robust.ccfs"}, {.strict = false}, &reg);
  EXPECT_EQ(shards.shards_opened(), 0u);
  ASSERT_EQ(shards.failures().size(), 1u);
  EXPECT_EQ(shards.failures()[0].category, ErrorCategory::kIo);
  EXPECT_EQ(reg.counter("pipeline.shards_failed").value(), 1u);
}

// ----------------------------------------------- pipeline record validation

TEST(PipelineValidation, CorruptEnumByteIsCountedNotCrashed) {
  auto dataset = make_dataset(50);
  // A truth byte of 200 would index the 7-row confusion matrix out of
  // bounds if it reached the sink; validation must stop it at the source.
  dataset[10].truth = static_cast<mlab::FlowArchetype>(200);
  dataset[20].access = static_cast<mlab::AccessType>(99);
  dataset[30].mean_throughput_mbps = std::numeric_limits<double>::quiet_NaN();
  const pipeline::MemorySource src{dataset};

  const auto res = pipeline::run_pipeline(src, {});
  EXPECT_EQ(res.records_corrupt, 3u);
  EXPECT_EQ(res.metrics.counters().at("store.records_corrupt").value(), 3u);
  std::uint64_t classified = 0;
  for (const auto v : res.verdicts) classified += v;
  EXPECT_EQ(classified, dataset.size() - 3);
}

TEST(PipelineValidation, StrictThrowsTypedCorruption) {
  auto dataset = make_dataset(20);
  dataset[5].truth = static_cast<mlab::FlowArchetype>(200);
  const pipeline::MemorySource src{dataset};
  pipeline::PipelineConfig cfg;
  cfg.strict = true;
  try {
    (void)pipeline::run_pipeline(src, cfg);
    FAIL() << "strict pipeline accepted a corrupt record";
  } catch (const Error& e) {
    // The typed error crosses the worker pool (runner rethrows via
    // exception_ptr), category intact.
    EXPECT_EQ(e.category(), ErrorCategory::kCorruption);
  }
}

TEST(PipelineValidation, OptOutRestoresOldBehaviourForSaneData) {
  const auto dataset = make_dataset(64);
  const pipeline::MemorySource src{dataset};
  pipeline::PipelineConfig cfg;
  cfg.validate_records = false;
  const auto res = pipeline::run_pipeline(src, cfg);
  EXPECT_EQ(res.records_corrupt, 0u);
  EXPECT_EQ(res.flows, dataset.size());
}

// ------------------------------------------------------------ faultfs drills

TEST(FaultFs, EintrOnWriteAndReadIsTransparent) {
  TempPath p{"robust_eintr.ccfs"};
  const auto dataset = make_dataset(40);
  {
    PlanGuard plan{faultfs::FaultKind::kEintr, 2, fs::path(p.str()).filename().string()};
    store::write_store(p.str(), dataset);
    EXPECT_GT(faultfs::faults_injected(), 0u) << "fault plan never fired (vacuous test)";
  }
  {
    PlanGuard plan{faultfs::FaultKind::kEintr, 0, fs::path(p.str()).filename().string()};
    store::FlowStoreReader r{p.str()};
    EXPECT_EQ(r.size(), dataset.size());
    EXPECT_GT(faultfs::faults_injected(), 0u);
  }
}

TEST(FaultFs, ShortReadIsTransparent) {
  TempPath p{"robust_short.ccfs"};
  const auto dataset = make_dataset(40);
  store::write_store(p.str(), dataset);
  PlanGuard plan{faultfs::FaultKind::kShortRead, 0, fs::path(p.str()).filename().string()};
  // The plan targets reads on this path, so the reader must bypass mmap and
  // route through pread — where the retry loop absorbs the short read.
  EXPECT_FALSE(faultfs::mmap_allowed(p.str()));
  store::FlowStoreReader r{p.str()};
  EXPECT_EQ(r.size(), dataset.size());
  EXPECT_EQ(r.at(0).id, dataset[0].id);
  EXPECT_GT(faultfs::faults_injected(), 0u);
}

TEST(FaultFs, FlippedReadByteIsCaughtAsCorruption) {
  TempPath p{"robust_flip.ccfs"};
  store::write_store(p.str(), make_dataset(40));
  PlanGuard plan{faultfs::FaultKind::kFlipByte, 0, fs::path(p.str()).filename().string()};
  try {
    store::FlowStoreReader r{p.str()};
    FAIL() << "reader accepted a byte flipped in transit";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kCorruption);
  }
  EXPECT_GT(faultfs::faults_injected(), 0u);
}

TEST(FaultFs, FailedOpenIsAnIoError) {
  TempPath p{"robust_failopen.ccfs"};
  store::write_store(p.str(), make_dataset(8));
  PlanGuard plan{faultfs::FaultKind::kFailOpen, 0, fs::path(p.str()).filename().string()};
  try {
    store::FlowStoreReader r{p.str()};
    FAIL() << "open should have been denied";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kIo);
    EXPECT_EQ(e.path(), p.str());
  }
}

TEST(FaultFs, FailedWriteSurfacesAsIoFromTheWriter) {
  TempPath p{"robust_failwrite.ccfs"};
  PlanGuard plan{faultfs::FaultKind::kFailWrite, 1, fs::path(p.str()).filename().string()};
  try {
    store::FlowStoreWriter w{p.str()};
    for (const auto& rec : make_dataset(8)) w.append(rec);
    w.finish();
    FAIL() << "injected ENOSPC never surfaced";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kIo);
  }
  EXPECT_GT(faultfs::faults_injected(), 0u);
}

TEST(FaultFs, TornWriteIsRejectedAtOpen) {
  TempPath p{"robust_torn.ccfs"};
  {
    // Tear mid-pool: the writer "succeeds" (power-cut semantics — nothing
    // to report at write time), leaving a file the reader must reject.
    PlanGuard plan{faultfs::FaultKind::kTornWrite, 5, fs::path(p.str()).filename().string()};
    store::write_store(p.str(), make_dataset(64));
    EXPECT_GT(faultfs::faults_injected(), 0u);
  }
  try {
    store::FlowStoreReader r{p.str()};
    FAIL() << "reader accepted a torn file";
  } catch (const Error& e) {
    EXPECT_TRUE(e.category() == ErrorCategory::kCorruption ||
                e.category() == ErrorCategory::kFormat)
        << to_string(e.category());
  }
}

TEST(FaultFs, KindNamesRoundTrip) {
  using faultfs::FaultKind;
  EXPECT_EQ(faultfs::to_string(FaultKind::kNone), "none");
  EXPECT_EQ(faultfs::to_string(FaultKind::kFailOpen), "fail_open");
  EXPECT_EQ(faultfs::to_string(FaultKind::kEintr), "eintr");
  EXPECT_EQ(faultfs::to_string(FaultKind::kShortRead), "short_read");
  EXPECT_EQ(faultfs::to_string(FaultKind::kFlipByte), "flip_byte");
  EXPECT_EQ(faultfs::to_string(FaultKind::kFailWrite), "fail_write");
  EXPECT_EQ(faultfs::to_string(FaultKind::kTornWrite), "torn_write");
}

// ------------------------------------------------- writer destructor contract

TEST(WriterDestructor, SuppressedFinishErrorIsCountedAndWarned) {
  TempPath p{"robust_dtor.ccfs"};
  telemetry::MetricRegistry reg;
  const std::uint64_t before = store::finish_errors_suppressed();
  {
    // Let construction and appends succeed, then fail a finish-time write;
    // the destructor must swallow the error (never std::terminate) and
    // leave an audit trail in both counters.
    store::FlowStoreWriter w{p.str()};
    w.set_metrics(&reg);
    for (const auto& rec : make_dataset(4)) w.append(rec);
    faultfs::set_plan({faultfs::FaultKind::kFailWrite, 6,
                       fs::path(p.str()).filename().string()});
  }
  faultfs::clear_plan();
  EXPECT_EQ(store::finish_errors_suppressed(), before + 1);
  EXPECT_EQ(reg.counter("store.finish_errors_suppressed").value(), 1u);
}

TEST(WriterDestructor, ExplicitFinishSeesTheErrorInstead) {
  TempPath p{"robust_dtor2.ccfs"};
  const std::uint64_t before = store::finish_errors_suppressed();
  {
    store::FlowStoreWriter w{p.str()};
    for (const auto& rec : make_dataset(4)) w.append(rec);
    PlanGuard plan{faultfs::FaultKind::kFailWrite, 6,
                   fs::path(p.str()).filename().string()};
    EXPECT_THROW(w.finish(), Error);
  }
  // finish() already threw to the caller; the destructor retries (finish is
  // idempotent-on-failure from its start), fails again on the real fd state
  // or succeeds — either way the *caller* was told, so the strict accounting
  // we pin is just: no crash, and the process-wide counter only grows.
  EXPECT_GE(store::finish_errors_suppressed(), before);
}

TEST(WriterApiMisuse, AppendAfterFinishIsConfigError) {
  TempPath p{"robust_misuse.ccfs"};
  store::FlowStoreWriter w{p.str()};
  w.append(make_dataset(1)[0]);
  w.finish();
  try {
    w.append(make_dataset(1)[0]);
    FAIL() << "append after finish was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kConfig);
  }
}

}  // namespace
}  // namespace ccc
