// Tests for the Recursive-Congestion-Shares qdisc (hierarchical weighted FQ,
// §5.3) and the BwE-style allocator/enforcer (§2.1).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "app/bulk.hpp"
#include "bwe/allocator.hpp"
#include "bwe/capped_cca.hpp"
#include "bwe/enforcer.hpp"
#include "cca/cubic.hpp"
#include "core/cca_registry.hpp"
#include "core/dumbbell.hpp"
#include "queue/hierarchical_fq.hpp"

namespace ccc {
namespace {

sim::Packet pkt(sim::FlowId flow, ByteCount size = 1000) {
  sim::Packet p;
  p.flow = flow;
  p.size_bytes = size;
  return p;
}

// ---------- HierarchicalFairQueue ----------

TEST(Hfq, WeightedSplitBetweenTwoLeaves) {
  // root -> {a: weight 3, b: weight 1}: service splits 3:1 by bytes.
  queue::HierarchicalFairQueue q{1 << 22, [](const sim::Packet& p) {
                                   return static_cast<queue::ClassId>(p.flow);
                                 }};
  const auto a = q.add_class(queue::kRootClass, 3.0, "a");
  const auto b = q.add_class(queue::kRootClass, 1.0, "b");
  ASSERT_EQ(a, 1u);
  ASSERT_EQ(b, 2u);
  for (int i = 0; i < 400; ++i) {
    q.enqueue(pkt(a), Time::zero());
    q.enqueue(pkt(b), Time::zero());
  }
  // Serve 200 packets' worth.
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(q.dequeue(Time::zero()).has_value());
  const double ratio = static_cast<double>(q.bytes_served(a)) /
                       static_cast<double>(q.bytes_served(b));
  EXPECT_NEAR(ratio, 3.0, 0.4);
}

TEST(Hfq, RecursiveSharesFollowTheTree) {
  // ISP link: customer X pays 2x customer Y. X runs two services (3:1),
  // Y runs one. All backlogged: X gets 2/3 (split 3:1 inside), Y gets 1/3.
  queue::HierarchicalFairQueue q{1 << 22, [](const sim::Packet& p) {
                                   return static_cast<queue::ClassId>(p.flow);
                                 }};
  const auto x = q.add_class(queue::kRootClass, 2.0, "X");
  const auto y = q.add_class(queue::kRootClass, 1.0, "Y");
  const auto x1 = q.add_class(x, 3.0, "X.video");
  const auto x2 = q.add_class(x, 1.0, "X.backup");
  const auto y1 = q.add_class(y, 1.0, "Y.web");
  for (int i = 0; i < 600; ++i) {
    q.enqueue(pkt(x1), Time::zero());
    q.enqueue(pkt(x2), Time::zero());
    q.enqueue(pkt(y1), Time::zero());
  }
  for (int i = 0; i < 600; ++i) ASSERT_TRUE(q.dequeue(Time::zero()).has_value());
  const double total = static_cast<double>(q.bytes_served(queue::kRootClass));
  EXPECT_NEAR(q.bytes_served(x) / total, 2.0 / 3.0, 0.05);
  EXPECT_NEAR(q.bytes_served(y) / total, 1.0 / 3.0, 0.05);
  EXPECT_NEAR(static_cast<double>(q.bytes_served(x1)) / q.bytes_served(x2), 3.0, 0.5);
}

TEST(Hfq, UnusedShareFallsThrough) {
  // Y idle: X gets the full link rate (work conservation). X's *buffer*
  // budget is still its weight share (1/4 here), so stay within it.
  queue::HierarchicalFairQueue q{1 << 20, [](const sim::Packet& p) {
                                   return static_cast<queue::ClassId>(p.flow);
                                 }};
  const auto x = q.add_class(queue::kRootClass, 1.0, "X");
  q.add_class(queue::kRootClass, 3.0, "Y");  // bigger weight but no traffic
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(q.enqueue(pkt(x), Time::zero()));
  }
  int served = 0;
  while (q.dequeue(Time::zero()).has_value()) ++served;
  EXPECT_EQ(served, 50);
}

TEST(Hfq, LeafBudgetTracksWeightShare) {
  queue::HierarchicalFairQueue q{100'000, [](const sim::Packet& p) {
                                   return static_cast<queue::ClassId>(p.flow);
                                 }};
  const auto big = q.add_class(queue::kRootClass, 4.0, "big");
  const auto small = q.add_class(queue::kRootClass, 1.0, "small");
  EXPECT_NEAR(q.leaf_share(big), 0.8, 1e-9);
  EXPECT_NEAR(q.leaf_share(small), 0.2, 1e-9);
  // big can buffer ~80 KB; small only ~20 KB.
  int big_admitted = 0;
  int small_admitted = 0;
  for (int i = 0; i < 100; ++i) {
    big_admitted += q.enqueue(pkt(big), Time::zero());
    small_admitted += q.enqueue(pkt(small), Time::zero());
  }
  EXPECT_NEAR(big_admitted, 80, 2);
  EXPECT_NEAR(small_admitted, 20, 2);
}

TEST(Hfq, UnknownClassIsDropped) {
  queue::HierarchicalFairQueue q{1 << 22, [](const sim::Packet&) {
                                   return static_cast<queue::ClassId>(42);
                                 }};
  EXPECT_FALSE(q.enqueue(pkt(1), Time::zero()));
  EXPECT_EQ(q.unclassified_drops(), 1u);
}

TEST(Hfq, InteriorClassRejectsTraffic) {
  queue::HierarchicalFairQueue q{1 << 22, [](const sim::Packet& p) {
                                   return static_cast<queue::ClassId>(p.flow);
                                 }};
  const auto x = q.add_class(queue::kRootClass, 1.0);
  q.add_class(x, 1.0);  // x becomes interior
  EXPECT_FALSE(q.enqueue(pkt(x), Time::zero()));
  EXPECT_EQ(q.unclassified_drops(), 1u);
}

TEST(Hfq, BufferStealingProtectsLightLeaves) {
  queue::HierarchicalFairQueue q{10'000, [](const sim::Packet& p) {
                                   return static_cast<queue::ClassId>(p.flow);
                                 }};
  const auto a = q.add_class(queue::kRootClass, 1.0);
  const auto b = q.add_class(queue::kRootClass, 1.0);
  for (int i = 0; i < 50; ++i) q.enqueue(pkt(a), Time::zero());  // flood
  q.enqueue(pkt(b), Time::zero());
  int b_survived = 0;
  while (auto p = q.dequeue(Time::zero())) b_survived += p->flow == b;
  EXPECT_EQ(b_survived, 1);
}

TEST(Hfq, ConservesPacketsUnderChurn) {
  queue::HierarchicalFairQueue q{40'000, [](const sim::Packet& p) {
                                   return static_cast<queue::ClassId>(p.flow);
                                 }};
  const auto x = q.add_class(queue::kRootClass, 2.0);
  std::vector<queue::ClassId> leaves{q.add_class(x, 1.0), q.add_class(x, 2.0),
                                     q.add_class(queue::kRootClass, 1.0)};
  Rng rng{5};
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  for (int step = 0; step < 20000; ++step) {
    if (rng.chance(0.6)) {
      const auto leaf = leaves[static_cast<std::size_t>(rng.uniform_int(0, 2))];
      q.enqueue(pkt(leaf, rng.uniform_int(100, 1500)), Time::zero());
      ++offered;
    }
    if (rng.chance(0.5) && q.dequeue(Time::zero()).has_value()) ++delivered;
  }
  while (q.dequeue(Time::zero()).has_value()) ++delivered;
  EXPECT_EQ(offered, delivered + q.stats().dropped_packets);
  EXPECT_EQ(q.backlog_packets(), 0u);
  EXPECT_EQ(q.backlog_bytes(), 0);
}

TEST(Hfq, RejectsBadConfiguration) {
  queue::HierarchicalFairQueue q{1 << 20, [](const sim::Packet& p) {
                                   return static_cast<queue::ClassId>(p.flow);
                                 }};
  EXPECT_THROW((void)q.add_class(99, 1.0), std::invalid_argument);
  EXPECT_THROW((void)q.add_class(queue::kRootClass, 0.0), std::invalid_argument);
  EXPECT_THROW((void)q.add_class(queue::kRootClass, -1.0), std::invalid_argument);
}

// ---------- BwE allocator ----------

TEST(BweAllocator, SplitsByWeightWhenAllHungry) {
  bwe::Allocator a;
  const auto s1 = a.add_entity(bwe::kRootEntity, 3.0, "prod");
  const auto s2 = a.add_entity(bwe::kRootEntity, 1.0, "batch");
  a.set_demand(s1, Rate::mbps(1000));
  a.set_demand(s2, Rate::mbps(1000));
  a.solve(Rate::mbps(100));
  EXPECT_NEAR(a.allocation_of(s1).to_mbps(), 75.0, 0.5);
  EXPECT_NEAR(a.allocation_of(s2).to_mbps(), 25.0, 0.5);
}

TEST(BweAllocator, DemandCapsAndSpareRedistribution) {
  bwe::Allocator a;
  const auto s1 = a.add_entity(bwe::kRootEntity, 1.0);
  const auto s2 = a.add_entity(bwe::kRootEntity, 1.0);
  const auto s3 = a.add_entity(bwe::kRootEntity, 1.0);
  a.set_demand(s1, Rate::mbps(10));   // asks far below its fair share
  a.set_demand(s2, Rate::mbps(500));
  a.set_demand(s3, Rate::mbps(500));
  a.solve(Rate::mbps(100));
  EXPECT_NEAR(a.allocation_of(s1).to_mbps(), 10.0, 0.1);  // never above demand
  EXPECT_NEAR(a.allocation_of(s2).to_mbps(), 45.0, 0.5);  // spare re-divides
  EXPECT_NEAR(a.allocation_of(s3).to_mbps(), 45.0, 0.5);
}

TEST(BweAllocator, HierarchyAllocatesRecursively) {
  bwe::Allocator a;
  const auto org1 = a.add_entity(bwe::kRootEntity, 2.0, "org1");
  const auto org2 = a.add_entity(bwe::kRootEntity, 1.0, "org2");
  const auto t11 = a.add_entity(org1, 1.0);
  const auto t12 = a.add_entity(org1, 1.0);
  const auto t21 = a.add_entity(org2, 1.0);
  for (auto t : {t11, t12, t21}) a.set_demand(t, Rate::mbps(1000));
  a.solve(Rate::mbps(90));
  EXPECT_NEAR(a.allocation_of(org1).to_mbps(), 60.0, 0.5);
  EXPECT_NEAR(a.allocation_of(t11).to_mbps(), 30.0, 0.5);
  EXPECT_NEAR(a.allocation_of(t12).to_mbps(), 30.0, 0.5);
  EXPECT_NEAR(a.allocation_of(t21).to_mbps(), 30.0, 0.5);
}

TEST(BweAllocator, WorkConservingUpToDemand) {
  bwe::Allocator a;
  const auto s1 = a.add_entity(bwe::kRootEntity, 1.0);
  const auto s2 = a.add_entity(bwe::kRootEntity, 1.0);
  a.set_demand(s1, Rate::mbps(20));
  a.set_demand(s2, Rate::mbps(30));
  a.solve(Rate::mbps(100));
  // Total demand below capacity: everyone gets exactly their demand.
  EXPECT_NEAR(a.allocation_of(s1).to_mbps(), 20.0, 0.1);
  EXPECT_NEAR(a.allocation_of(s2).to_mbps(), 30.0, 0.1);
  EXPECT_NEAR(a.allocation_of(bwe::kRootEntity).to_mbps(), 50.0, 0.2);
}

TEST(BweAllocator, RejectsBadUsage) {
  bwe::Allocator a;
  const auto s1 = a.add_entity(bwe::kRootEntity, 1.0);
  const auto child = a.add_entity(s1, 1.0);
  (void)child;
  EXPECT_THROW(a.set_demand(s1, Rate::mbps(1)), std::invalid_argument);  // interior
  EXPECT_THROW((void)a.add_entity(999, 1.0), std::invalid_argument);
  EXPECT_THROW((void)a.add_entity(bwe::kRootEntity, -2.0), std::invalid_argument);
}

// ---------- CappedCca + Enforcer end to end ----------

TEST(BweEnforcer, CapsPinFlowThroughput) {
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(50);
  cfg.one_way_delay = Time::ms(10);
  cfg.reverse_delay = Time::ms(10);
  core::DumbbellScenario net{cfg};

  bwe::Allocator alloc;
  const auto prod = alloc.add_entity(bwe::kRootEntity, 3.0, "prod");
  const auto batch = alloc.add_entity(bwe::kRootEntity, 1.0, "batch");

  auto cc1 = std::make_unique<bwe::CappedCca>(core::make_cca_factory("cubic")());
  auto cc2 = std::make_unique<bwe::CappedCca>(core::make_cca_factory("cubic")());
  auto* cap1 = cc1.get();
  auto* cap2 = cc2.get();
  net.add_flow(std::move(cc1), std::make_unique<app::BulkApp>(), 1);
  net.add_flow(std::move(cc2), std::make_unique<app::BulkApp>(), 2);

  bwe::Enforcer enforcer{net.scheduler(), alloc, cfg.bottleneck_rate};
  // Both report saturated demand.
  enforcer.bind(prod, *cap1, [] { return Rate::mbps(1000); });
  enforcer.bind(batch, *cap2, [] { return Rate::mbps(1000); });
  enforcer.start(Time::zero());

  net.run_until(Time::sec(5.0));
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(25.0));
  const auto g = net.goodputs_mbps_since(snap, Time::sec(20.0));
  // Weighted 3:1 split of the 95%-headroom capacity, with identical CCAs —
  // the allocation is the *policy's*, not the contention outcome (which
  // would be 1:1).
  EXPECT_NEAR(g[0] / (g[0] + g[1]), 0.75, 0.05) << g[0] << "/" << g[1];
  EXPECT_GT(enforcer.rounds(), 40u);
}

TEST(BweEnforcer, IdleDemandFreesCapacityForSiblings) {
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(50);
  cfg.one_way_delay = Time::ms(10);
  cfg.reverse_delay = Time::ms(10);
  core::DumbbellScenario net{cfg};

  bwe::Allocator alloc;
  const auto a = alloc.add_entity(bwe::kRootEntity, 1.0);
  const auto b = alloc.add_entity(bwe::kRootEntity, 1.0);

  auto cc1 = std::make_unique<bwe::CappedCca>(core::make_cca_factory("cubic")());
  auto cc2 = std::make_unique<bwe::CappedCca>(core::make_cca_factory("cubic")());
  auto* cap1 = cc1.get();
  auto* cap2 = cc2.get();
  net.add_flow(std::move(cc1), std::make_unique<app::BulkApp>(), 1);
  net.add_flow(std::move(cc2), std::make_unique<app::BulkApp>(), 2);

  bwe::Enforcer enforcer{net.scheduler(), alloc, cfg.bottleneck_rate};
  enforcer.bind(a, *cap1, [] { return Rate::mbps(1000); });
  enforcer.bind(b, *cap2, [] { return Rate::mbps(5); });  // mostly idle
  enforcer.start(Time::zero());

  net.run_until(Time::sec(5.0));
  const auto snap = net.snapshot_delivered();
  net.run_until(Time::sec(20.0));
  const auto g = net.goodputs_mbps_since(snap, Time::sec(15.0));
  EXPECT_GT(g[0], 38.0);          // hungry flow gets nearly everything
  EXPECT_NEAR(g[1], 5.0, 1.0);    // idle one pinned at its demand
}

}  // namespace
}  // namespace ccc
