// Tests for samplers and TCPInfo-style flow monitoring.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk.hpp"
#include "app/rate_limited.hpp"
#include "cca/new_reno.hpp"
#include "core/dumbbell.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/tcp_info.hpp"

namespace ccc::telemetry {
namespace {

TEST(PeriodicSampler, FiresAtInterval) {
  sim::Scheduler sched;
  std::vector<double> times;
  PeriodicSampler s{sched, Time::ms(100), Time::zero(), Time::sec(1.0),
                    [&](Time t) { times.push_back(t.to_sec()); }};
  sched.run_until(Time::sec(2.0));
  ASSERT_EQ(times.size(), 10u);  // 0.0 .. 0.9
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_NEAR(times[9], 0.9, 1e-9);
}

TEST(TimeSeries, MeanAndSlice) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.add(Time::sec(i), static_cast<double>(i));
  EXPECT_DOUBLE_EQ(ts.mean_in(0.0, 5.0), 2.0);
  EXPECT_EQ(ts.slice(3.0, 6.0).size(), 3u);
  EXPECT_DOUBLE_EQ(ts.mean_in(100.0, 200.0), 0.0);
}

core::DumbbellConfig small_net() {
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(10);
  cfg.one_way_delay = Time::ms(10);
  cfg.reverse_delay = Time::ms(10);
  return cfg;
}

TEST(FlowMonitor, ThroughputSeriesTracksGoodput) {
  core::DumbbellScenario net{small_net()};
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>());
  FlowMonitor mon{net.scheduler(), net.flow(0).sender(), Time::zero(), Time::sec(10.0)};
  net.run_until(Time::sec(10.0));
  const auto series = mon.throughput_series_mbps();
  ASSERT_GT(series.size(), 50u);
  // Steady state (second half) should track the 10 Mbit/s link.
  double mean = 0.0;
  std::size_t n = 0;
  for (std::size_t i = series.size() / 2; i < series.size(); ++i) {
    mean += series[i];
    ++n;
  }
  mean /= static_cast<double>(n);
  EXPECT_GT(mean, 8.0);
  EXPECT_LT(mean, 10.5);
}

TEST(FlowMonitor, AppLimitedTimeDominatesForSlowApp) {
  core::DumbbellScenario net{small_net()};
  auto app = std::make_unique<app::RateLimitedApp>(net.scheduler(), Rate::mbps(1));
  net.add_flow(std::make_unique<cca::NewReno>(), std::move(app));
  FlowMonitor mon{net.scheduler(), net.flow(0).sender(), Time::zero(), Time::sec(10.0)};
  net.run_until(Time::sec(10.0));
  EXPECT_GT(mon.app_limited_sec(), 5.0);
  EXPECT_LT(mon.rwnd_limited_sec(), 1.0);
}

TEST(FlowMonitor, RwndLimitedTimeDominatesForSmallWindow) {
  core::DumbbellScenario net{small_net()};
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>(), 1,
               Time::zero(), /*receiver_window=*/6 * 1448);
  FlowMonitor mon{net.scheduler(), net.flow(0).sender(), Time::zero(), Time::sec(10.0)};
  net.run_until(Time::sec(10.0));
  EXPECT_GT(mon.rwnd_limited_sec(), 5.0);
  EXPECT_LT(mon.app_limited_sec(), 1.0);
}

TEST(FlowMonitor, SnapshotsCarryRttAndCwnd) {
  core::DumbbellScenario net{small_net()};
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>());
  FlowMonitor mon{net.scheduler(), net.flow(0).sender(), Time::zero(), Time::sec(5.0)};
  net.run_until(Time::sec(5.0));
  ASSERT_FALSE(mon.snapshots().empty());
  const auto& last = mon.snapshots().back();
  EXPECT_GT(last.srtt_ms, 15.0);
  EXPECT_GT(last.cwnd_bytes, 0);
  EXPECT_GT(last.bytes_acked, 0);
}

}  // namespace
}  // namespace ccc::telemetry
