// Tests for the observability layer: metric registry, sinks, RunReport,
// scenario instrumentation — plus the original samplers and TCPInfo-style
// flow monitoring.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "app/bulk.hpp"
#include "app/rate_limited.hpp"
#include "cca/bbr.hpp"
#include "cca/new_reno.hpp"
#include "core/dumbbell.hpp"
#include "core/elasticity_study.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/tcp_info.hpp"

namespace ccc::telemetry {
namespace {

TEST(PeriodicSampler, FiresAtInterval) {
  sim::Scheduler sched;
  std::vector<double> times;
  PeriodicSampler s{sched, Time::ms(100), Time::zero(), Time::sec(1.0),
                    [&](Time t) { times.push_back(t.to_sec()); }};
  sched.run_until(Time::sec(2.0));
  ASSERT_EQ(times.size(), 10u);  // 0.0 .. 0.9
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_NEAR(times[9], 0.9, 1e-9);
}

TEST(TimeSeries, MeanAndSlice) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.add(Time::sec(i), static_cast<double>(i));
  EXPECT_DOUBLE_EQ(ts.mean_in(0.0, 5.0), 2.0);
  EXPECT_EQ(ts.slice(3.0, 6.0).size(), 3u);
  EXPECT_DOUBLE_EQ(ts.mean_in(100.0, 200.0), 0.0);
}

core::DumbbellConfig small_net() {
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(10);
  cfg.one_way_delay = Time::ms(10);
  cfg.reverse_delay = Time::ms(10);
  return cfg;
}

TEST(FlowMonitor, ThroughputSeriesTracksGoodput) {
  core::DumbbellScenario net{small_net()};
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>());
  FlowMonitor mon{net.scheduler(), net.flow(0).sender(), Time::zero(), Time::sec(10.0)};
  net.run_until(Time::sec(10.0));
  const auto series = mon.throughput_series_mbps();
  ASSERT_GT(series.size(), 50u);
  // Steady state (second half) should track the 10 Mbit/s link.
  double mean = 0.0;
  std::size_t n = 0;
  for (std::size_t i = series.size() / 2; i < series.size(); ++i) {
    mean += series[i];
    ++n;
  }
  mean /= static_cast<double>(n);
  EXPECT_GT(mean, 8.0);
  EXPECT_LT(mean, 10.5);
}

TEST(FlowMonitor, AppLimitedTimeDominatesForSlowApp) {
  core::DumbbellScenario net{small_net()};
  auto app = std::make_unique<app::RateLimitedApp>(net.scheduler(), Rate::mbps(1));
  net.add_flow(std::make_unique<cca::NewReno>(), std::move(app));
  FlowMonitor mon{net.scheduler(), net.flow(0).sender(), Time::zero(), Time::sec(10.0)};
  net.run_until(Time::sec(10.0));
  EXPECT_GT(mon.app_limited_sec(), 5.0);
  EXPECT_LT(mon.rwnd_limited_sec(), 1.0);
}

TEST(FlowMonitor, RwndLimitedTimeDominatesForSmallWindow) {
  core::DumbbellScenario net{small_net()};
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>(), 1,
               Time::zero(), /*receiver_window=*/6 * 1448);
  FlowMonitor mon{net.scheduler(), net.flow(0).sender(), Time::zero(), Time::sec(10.0)};
  net.run_until(Time::sec(10.0));
  EXPECT_GT(mon.rwnd_limited_sec(), 5.0);
  EXPECT_LT(mon.app_limited_sec(), 1.0);
}

TEST(FlowMonitor, SnapshotsCarryRttAndCwnd) {
  core::DumbbellScenario net{small_net()};
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>());
  FlowMonitor mon{net.scheduler(), net.flow(0).sender(), Time::zero(), Time::sec(5.0)};
  net.run_until(Time::sec(5.0));
  ASSERT_FALSE(mon.snapshots().empty());
  const auto& last = mon.snapshots().back();
  EXPECT_GT(last.srtt_ms, 15.0);
  EXPECT_GT(last.cwnd_bytes, 0);
  EXPECT_GT(last.bytes_acked, 0);
}

// ---------- MetricRegistry ----------

TEST(MetricRegistry, InstrumentsAreStableAndNamed) {
  MetricRegistry reg;
  Counter& c = reg.counter("a.count");
  c.inc();
  c.inc(2);
  // Second lookup returns the same instrument (node stability).
  EXPECT_EQ(&reg.counter("a.count"), &c);
  EXPECT_EQ(reg.counter("a.count").value(), 3u);

  reg.gauge("b.util").set(0.5);
  EXPECT_DOUBLE_EQ(reg.gauge("b.util").value(), 0.5);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricRegistry, ExportOrderIsNameSorted) {
  MetricRegistry reg;
  reg.counter("z");
  reg.counter("a");
  reg.counter("m");
  std::vector<std::string> names;
  for (const auto& [name, c] : reg.counters()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "m", "z"}));
}

TEST(Histogram, BucketsAndQuantiles) {
  Histogram h{{1.0, 10.0, 100.0}};
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (bound is inclusive)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  ASSERT_EQ(h.counts().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.0);
  // Overflow mass is attributed to the largest bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 100.0);
}

TEST(Histogram, GeometricBounds) {
  const auto b = Histogram::geometric_bounds(0.5, 2.0, 4);
  EXPECT_EQ(b, (std::vector<double>{0.5, 1.0, 2.0, 4.0}));
}

TEST(Trace, MinIntervalDownsamples) {
  Trace tr{Time::ms(10)};
  tr.record(Time::ms(0), 1.0);
  tr.record(Time::ms(5), 2.0);   // within 10 ms of the last kept point
  tr.record(Time::ms(10), 3.0);  // due again
  tr.record(Time::ms(12), 4.0);
  ASSERT_EQ(tr.points().size(), 2u);
  EXPECT_DOUBLE_EQ(tr.points()[0].second, 1.0);
  EXPECT_DOUBLE_EQ(tr.points()[1].second, 3.0);
}

// ---------- Sinks ----------

TEST(JsonlSink, ExactRowFormat) {
  std::ostringstream os;
  JsonlSink sink{os};
  sink.meta("bench_x", 42);
  sink.row({"phase1", "qdisc.drops", "counter", 1.5, 7.0});
  EXPECT_EQ(os.str(),
            "{\"schema\":\"ccc.report.v1\",\"bench\":\"bench_x\",\"seed\":42}\n"
            "{\"scope\":\"phase1\",\"name\":\"qdisc.drops\",\"kind\":\"counter\","
            "\"t\":1.5,\"value\":7}\n");
}

TEST(CsvSink, ExactRowFormat) {
  std::ostringstream os;
  CsvSink sink{os};
  sink.meta("bench_x", 42);
  sink.row({"s", "n", "gauge", 0.25, 0.125});
  EXPECT_EQ(os.str(),
            "# bench=bench_x seed=42 schema=ccc.report.v1\n"
            "scope,name,kind,t_sec,value\n"
            "s,n,gauge,0.25,0.125\n");
}

TEST(Sinks, FormatValueIsLocaleFreeAndCompact) {
  EXPECT_EQ(format_value(48.0), "48");
  EXPECT_EQ(format_value(0.1), "0.1");
  EXPECT_EQ(format_value(1e-9), "1e-09");
}

// ---------- RunReport ----------

TEST(RunReport, RegistryFlattensDeterministically) {
  MetricRegistry reg;
  reg.counter("b.count").inc(3);
  reg.counter("a.count").inc(1);
  reg.gauge("g.util").set(0.75);
  reg.histogram("h.ms", {1.0, 2.0}).observe(1.5);
  reg.trace("t.cwnd").record(Time::ms(500), 10.0);

  RunReport rep{"t", 1};
  rep.add_registry("net", reg, Time::sec(2.0));
  const std::string first = rep.to_jsonl();

  // Same registry, same call -> byte-identical serialization.
  RunReport rep2{"t", 1};
  rep2.add_registry("net", reg, Time::sec(2.0));
  EXPECT_EQ(first, rep2.to_jsonl());

  // Counters come out name-sorted; the trace row is stamped with the
  // point's own sim time, not the collection time.
  ASSERT_GE(rep.rows().size(), 7u);
  EXPECT_EQ(rep.rows()[0].name, "a.count");
  EXPECT_EQ(rep.rows()[1].name, "b.count");
  bool saw_trace = false;
  for (const auto& r : rep.rows()) {
    if (r.kind == "trace") {
      saw_trace = true;
      EXPECT_DOUBLE_EQ(r.t_sec, 0.5);
    } else {
      EXPECT_DOUBLE_EQ(r.t_sec, 2.0);
    }
  }
  EXPECT_TRUE(saw_trace);
}

TEST(RunReport, AppendPreservesFragmentOrder) {
  RunReport a{"bench", 0};
  a.add_scalar("p1", "x", 1.0);
  RunReport frag;
  frag.add_scalar("p2", "y", 2.0);
  a.append(frag);
  ASSERT_EQ(a.rows().size(), 2u);
  EXPECT_EQ(a.rows()[0].scope, "p1");
  EXPECT_EQ(a.rows()[1].scope, "p2");
}

TEST(RunReport, EmitSelectsSinkByPath) {
  RunReport rep{"t", 9};
  rep.add_scalar("s", "v", 3.0);
  // "" -> NullSink: succeeds, writes nothing.
  EXPECT_TRUE(rep.emit(""));
  // Unopenable path -> false.
  EXPECT_FALSE(rep.emit("/nonexistent-dir/x.jsonl"));

  const std::string jsonl = "/tmp/ccc_report_test.jsonl";
  const std::string csv = "/tmp/ccc_report_test.csv";
  ASSERT_TRUE(rep.emit(jsonl));
  ASSERT_TRUE(rep.emit(csv));
  auto slurp = [](const std::string& p) {
    std::ifstream f{p};
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
  };
  EXPECT_NE(slurp(jsonl).find("\"schema\":\"ccc.report.v1\""), std::string::npos);
  EXPECT_NE(slurp(csv).find("scope,name,kind,t_sec,value"), std::string::npos);
  std::remove(jsonl.c_str());
  std::remove(csv.c_str());
}

// ---------- Scenario instrumentation ----------

TEST(DumbbellTelemetry, DisabledByDefaultAndCostFree) {
  core::DumbbellScenario net{small_net()};
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>());
  net.run_until(Time::sec(2.0));
  net.collect_metrics();
  EXPECT_FALSE(net.metrics().enabled());
  EXPECT_EQ(net.metrics().size(), 0u);  // nothing bound, nothing exported
}

TEST(DumbbellTelemetry, InstrumentsLinkQdiscAndFlows) {
  auto cfg = small_net().with_telemetry(true);
  core::DumbbellScenario net{cfg};
  net.add_flow(std::make_unique<cca::NewReno>(), std::make_unique<app::BulkApp>());
  net.run_until(Time::sec(5.0));
  net.collect_metrics();

  MetricRegistry& m = net.metrics();
  EXPECT_GT(m.counter("link.tx_packets").value(), 0u);
  EXPECT_GT(m.counter("link.qdisc.enqueued_packets").value(), 0u);
  // Conservation holds in the exported view too.
  EXPECT_EQ(m.counter("link.qdisc.enqueued_packets").value(),
            m.counter("link.qdisc.dequeued_packets").value() +
                m.counter("link.qdisc.dropped_packets").value() +
                static_cast<std::uint64_t>(m.gauge("link.qdisc.backlog_packets").value()));
  // Live instruments populated on the hot path.
  EXPECT_GT(m.histograms().at("link.qdisc.sojourn_ms").count(), 0u);
  EXPECT_GT(m.histograms().at("flow1.rtt_ms").count(), 0u);
  EXPECT_FALSE(m.traces().at("flow1.cwnd_bytes").points().empty());
  // Snapshot counters mirror SenderStats.
  EXPECT_EQ(m.counter("flow1.bytes_acked").value(),
            net.flow(0).sender().stats().bytes_acked);
}

TEST(DumbbellTelemetry, BbrModeTransitionsAreTraced) {
  auto cfg = small_net().with_telemetry(true);
  core::DumbbellScenario net{cfg};
  net.add_flow(std::make_unique<cca::Bbr>(), std::make_unique<app::BulkApp>());
  net.run_until(Time::sec(10.0));
  net.collect_metrics();
  const MetricRegistry& m = net.metrics();
  // Startup -> Drain -> ProbeBW at minimum.
  EXPECT_GE(m.counters().at("flow1.cca.mode_transitions").value(), 2u);
  const auto& pts = m.traces().at("flow1.cca.mode").points();
  ASSERT_GE(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].second, 0.0);  // kStartup at t=0
}

// ---------- DumbbellConfig validation ----------

TEST(DumbbellConfig, FluentSettersCompose) {
  const auto cfg = core::DumbbellConfig{}
                       .with_rate(Rate::mbps(20))
                       .with_one_way_delay(Time::ms(5))
                       .with_reverse_delay(Time::ms(7))
                       .with_buffer_bdp_multiple(3.0)
                       .with_seed(99)
                       .with_telemetry(true);
  EXPECT_DOUBLE_EQ(cfg.bottleneck_rate.to_bps(), Rate::mbps(20).to_bps());
  EXPECT_EQ(cfg.one_way_delay, Time::ms(5));
  EXPECT_EQ(cfg.reverse_delay, Time::ms(7));
  EXPECT_DOUBLE_EQ(cfg.buffer_bdp_multiple, 3.0);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_TRUE(cfg.enable_telemetry);
  cfg.validate();  // must not throw
}

TEST(DumbbellConfig, ValidateRejectsNonPositiveFields) {
  // Fluent setters fail fast on the offending field...
  EXPECT_THROW(core::DumbbellConfig{}.with_rate(Rate::mbps(0)), std::invalid_argument);
  EXPECT_THROW(core::DumbbellConfig{}.with_one_way_delay(Time::zero()), std::invalid_argument);
  EXPECT_THROW(core::DumbbellConfig{}.with_reverse_delay(Time::zero()), std::invalid_argument);
  EXPECT_THROW(core::DumbbellConfig{}.with_buffer_bdp_multiple(0.0), std::invalid_argument);
  // ...and validate() catches direct field assignment.
  core::DumbbellConfig bad;
  bad.buffer_bdp_multiple = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  // The scenario constructor enforces validation too.
  EXPECT_THROW(core::DumbbellScenario{bad}, std::invalid_argument);
}

// ---------- fig3 report determinism across job counts ----------

TEST(ElasticityPocReport, ByteIdenticalAcrossJobCounts) {
  core::ElasticityPocConfig cfg;
  cfg.phase_duration = Time::sec(3.0);
  cfg.warmup = Time::sec(1.0);
  const auto serial_jobs = core::run_elasticity_poc_parallel(cfg, 1);
  const auto parallel_jobs = core::run_elasticity_poc_parallel(cfg, 8);
  const std::string a = serial_jobs.report.to_jsonl();
  const std::string b = parallel_jobs.report.to_jsonl();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "--jobs 1 and --jobs 8 reports must be byte-identical";
  // The report carries real instrumentation, not just headline scalars.
  EXPECT_NE(a.find("link.qdisc.sojourn_ms"), std::string::npos);
  EXPECT_NE(a.find("\"kind\":\"scalar\""), std::string::npos);
}

}  // namespace
}  // namespace ccc::telemetry
