// Tests for the TSLP prober (§4) and the sim -> NDT record bridge.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/ndt_bridge.hpp"
#include "analysis/passive_study.hpp"
#include "analysis/tslp.hpp"
#include "app/bulk.hpp"
#include "app/rate_limited.hpp"
#include "app/stop_at.hpp"
#include "cca/cubic.hpp"
#include "core/dumbbell.hpp"
#include "telemetry/tcp_info.hpp"

namespace ccc {
namespace {

core::DumbbellConfig net20() {
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(20);
  cfg.one_way_delay = Time::ms(10);
  cfg.reverse_delay = Time::ms(10);
  return cfg;
}

// ---------- TSLP ----------

TEST(Tslp, QuietLinkReadsUncongested) {
  core::DumbbellScenario net{net20()};
  sim::LinkSink sink{net.bottleneck()};
  analysis::TslpConfig cfg;
  cfg.stop = Time::sec(20.0);
  analysis::TslpProber tslp{net.scheduler(), cfg, sink, net.demux()};
  net.run_until(Time::sec(21.0));
  EXPECT_GT(tslp.probes_received(), 150u);
  EXPECT_EQ(tslp.probes_lost(), 0u);
  EXPECT_LT(tslp.congested_fraction(), 0.05);
}

TEST(Tslp, BackloggedLinkReadsCongested) {
  core::DumbbellScenario net{net20()};
  sim::LinkSink sink{net.bottleneck()};
  analysis::TslpConfig cfg;
  cfg.stop = Time::sec(20.0);
  analysis::TslpProber tslp{net.scheduler(), cfg, sink, net.demux()};
  net.add_flow(std::make_unique<cca::Cubic>(), std::make_unique<app::BulkApp>(), 2);
  net.run_until(Time::sec(21.0));
  EXPECT_GT(tslp.congested_fraction(), 0.4);
  // The delay series reflects the standing queue in milliseconds.
  const auto ts = tslp.queueing_delay_ms();
  ASSERT_FALSE(ts.value.empty());
  EXPECT_GT(ts.mean_in(5.0, 20.0), 5.0);
}

TEST(Tslp, ProbeLossCountsAsSignal) {
  // Saturate a tiny-buffered link: some probes drop.
  auto cfg = net20();
  cfg.buffer_bdp_multiple = 0.1;
  core::DumbbellScenario net{cfg};
  sim::LinkSink sink{net.bottleneck()};
  analysis::TslpConfig tcfg;
  tcfg.stop = Time::sec(20.0);
  tcfg.interval = Time::ms(20);
  analysis::TslpProber tslp{net.scheduler(), tcfg, sink, net.demux()};
  net.add_flow(std::make_unique<cca::Cubic>(), std::make_unique<app::BulkApp>(), 2);
  net.run_until(Time::sec(21.0));
  EXPECT_GT(tslp.probes_sent(), 900u);
  // Either probes vanish into the full buffer or the delay signal is strong;
  // both are the congestion signatures TSLP relies on.
  EXPECT_TRUE(tslp.probes_lost() > 0 || tslp.congested_fraction() > 0.5)
      << "lost=" << tslp.probes_lost() << " frac=" << tslp.congested_fraction();
}

// ---------- NDT bridge: sim -> record -> pipeline, ground truth known ----------

TEST(NdtBridge, AppLimitedSimFlowIsFilteredByPipeline) {
  core::DumbbellScenario net{net20()};
  auto app = std::make_unique<app::RateLimitedApp>(net.scheduler(), Rate::mbps(3));
  net.add_flow(std::make_unique<cca::Cubic>(), std::move(app));
  telemetry::FlowMonitor mon{net.scheduler(), net.flow(0).sender(), Time::zero(),
                             Time::sec(10.0)};
  net.run_until(Time::sec(10.0));
  const auto rec = analysis::make_ndt_record(mon, 1, mlab::FlowArchetype::kAppLimitedConstant);
  EXPECT_GT(rec.app_limited_sec, 3.0);
  const auto f = analysis::classify_flow(rec, analysis::PassiveConfig{});
  EXPECT_EQ(f.verdict, analysis::Verdict::kFilteredAppLimited);
}

TEST(NdtBridge, RwndLimitedSimFlowIsFilteredByPipeline) {
  core::DumbbellScenario net{net20()};
  net.add_flow(std::make_unique<cca::Cubic>(), std::make_unique<app::BulkApp>(), 1,
               Time::zero(), /*receiver_window=*/8 * 1448);
  telemetry::FlowMonitor mon{net.scheduler(), net.flow(0).sender(), Time::zero(),
                             Time::sec(10.0)};
  net.run_until(Time::sec(10.0));
  const auto rec = analysis::make_ndt_record(mon, 2, mlab::FlowArchetype::kRwndLimited);
  const auto f = analysis::classify_flow(rec, analysis::PassiveConfig{});
  EXPECT_EQ(f.verdict, analysis::Verdict::kFilteredRwndLimited);
}

TEST(NdtBridge, ContendedSimFlowIsFlaggedByPipeline) {
  // A bulk flow whose competitor arrives mid-test: the pipeline must detect
  // the level shift on the record built from *simulated* telemetry.
  core::DumbbellScenario net{net20()};
  net.add_flow(std::make_unique<cca::Cubic>(), std::make_unique<app::BulkApp>());
  telemetry::FlowMonitor mon{net.scheduler(), net.flow(0).sender(), Time::zero(),
                             Time::sec(30.0)};
  // The competitor shows up at t=10 and stays; the flow's share then has
  // time to settle at ~half before the test ends (TCP convergence is a ramp,
  // not a step, so both levels need room to persist).
  net.add_flow(std::make_unique<cca::Cubic>(),
               std::make_unique<app::StopAtApp>(std::make_unique<app::BulkApp>(),
                                                Time::sec(30.0)),
               2, Time::sec(10.0));
  net.run_until(Time::sec(30.0));
  const auto rec = analysis::make_ndt_record(mon, 3, mlab::FlowArchetype::kBulkContended);
  analysis::PassiveConfig pcfg;
  pcfg.min_duration_sec = 2.0;
  const auto f = analysis::classify_flow(rec, pcfg);
  EXPECT_EQ(f.verdict, analysis::Verdict::kContentionSuspect);
  ASSERT_FALSE(f.shift_times_sec.empty());
  // TCP convergence is gradual, so the detected persistent level boundary
  // may land anywhere in the transition; it must at least postdate the
  // competitor's arrival.
  EXPECT_GE(f.shift_times_sec.front(), 9.0);
  EXPECT_LE(f.shift_times_sec.front(), 28.0);
}

TEST(NdtBridge, CleanSoloSimFlowIsNotFlagged) {
  core::DumbbellScenario net{net20()};
  net.add_flow(std::make_unique<cca::Cubic>(), std::make_unique<app::BulkApp>());
  telemetry::FlowMonitor mon{net.scheduler(), net.flow(0).sender(), Time::zero(),
                             Time::sec(16.0)};
  net.run_until(Time::sec(16.0));
  const auto rec = analysis::make_ndt_record(mon, 4, mlab::FlowArchetype::kBulkClean);
  analysis::PassiveConfig pcfg;
  pcfg.min_duration_sec = 2.0;
  const auto f = analysis::classify_flow(rec, pcfg);
  EXPECT_EQ(f.verdict, analysis::Verdict::kNoLevelShift)
      << analysis::to_string(f.verdict);
}

TEST(NdtBridge, RecordCarriesPlausibleMetadata) {
  core::DumbbellScenario net{net20()};
  net.add_flow(std::make_unique<cca::Cubic>(), std::make_unique<app::BulkApp>());
  telemetry::FlowMonitor mon{net.scheduler(), net.flow(0).sender(), Time::zero(),
                             Time::sec(10.0)};
  net.run_until(Time::sec(10.0));
  const auto rec = analysis::make_ndt_record(mon, 5, mlab::FlowArchetype::kBulkClean);
  EXPECT_NEAR(rec.duration_sec, 10.0, 0.5);
  EXPECT_NEAR(rec.min_rtt_ms, 21.0, 3.0);
  EXPECT_GT(rec.mean_throughput_mbps, 15.0);
  EXPECT_NEAR(rec.snapshot_interval_sec, 0.1, 0.01);
}

}  // namespace
}  // namespace ccc
