// Tests for ECN marking in qdiscs and the DCTCP CCA (§2.3's datacenter
// mechanism).
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk.hpp"
#include "cca/dctcp.hpp"
#include "cca/new_reno.hpp"
#include "core/dumbbell.hpp"
#include "queue/codel.hpp"
#include "queue/drop_tail.hpp"
#include "util/stats.hpp"

namespace ccc {
namespace {

sim::Packet ect_pkt(ByteCount size) {
  sim::Packet p;
  p.flow = 1;
  p.size_bytes = size;
  p.ecn_capable = true;
  return p;
}

// ---------- qdisc ECN marking ----------

TEST(EcnMarking, DropTailMarksAboveThreshold) {
  queue::DropTailQueue q{100'000, /*ecn_threshold=*/5'000};
  // Below threshold: no marks.
  q.enqueue(ect_pkt(1500), Time::zero());
  EXPECT_EQ(q.stats().ecn_marked_packets, 0u);
  // Fill past the threshold: subsequent ECT packets are CE-marked.
  for (int i = 0; i < 4; ++i) q.enqueue(ect_pkt(1500), Time::zero());
  EXPECT_GT(q.stats().ecn_marked_packets, 0u);
  // Marked packets are still delivered, not dropped.
  EXPECT_EQ(q.stats().dropped_packets, 0u);
  int marked = 0;
  while (auto p = q.dequeue(Time::zero())) marked += p->ecn_marked;
  EXPECT_GT(marked, 0);
}

TEST(EcnMarking, DropTailIgnoresNonEctPackets) {
  queue::DropTailQueue q{100'000, 2'000};
  sim::Packet p;
  p.flow = 1;
  p.size_bytes = 1500;
  p.ecn_capable = false;
  for (int i = 0; i < 10; ++i) q.enqueue(p, Time::zero());
  EXPECT_EQ(q.stats().ecn_marked_packets, 0u);
}

TEST(EcnMarking, CoDelMarksInsteadOfDropping) {
  queue::CoDelQueue q{1 << 22};
  // Build a persistent standing queue of ECT packets.
  Time now = Time::zero();
  std::uint64_t delivered = 0;
  std::uint64_t marked = 0;
  for (int step = 0; step < 4000; ++step) {
    now = Time::ms(step);
    q.enqueue(ect_pkt(1000), now);
    if (step % 2 == 0) {
      if (auto p = q.dequeue(now)) {
        ++delivered;
        marked += p->ecn_marked;
      }
    }
  }
  EXPECT_GT(q.stats().ecn_marked_packets, 0u);
  EXPECT_EQ(q.stats().dropped_packets, 0u);  // all pain delivered as marks
  EXPECT_GT(marked, 0u);
}

// ---------- DCTCP unit behaviour ----------

cca::AckEvent mk_ack(Time now, ByteCount bytes, bool ece) {
  cca::AckEvent ev;
  ev.now = now;
  ev.newly_acked_bytes = bytes;
  ev.rtt_sample = Time::ms(1);
  ev.ecn_echo = ece;
  return ev;
}

TEST(Dctcp, SlowStartsUntilFirstMark) {
  cca::Dctcp cc;
  const ByteCount start = cc.cwnd_bytes();
  cc.on_ack(mk_ack(Time::ms(1), start, false));
  EXPECT_EQ(cc.cwnd_bytes(), 2 * start);
}

TEST(Dctcp, AlphaTracksMarkedFraction) {
  cca::Dctcp cc{10 * sim::kMss, sim::kMss, /*g=*/0.5};
  // Several windows with ~50% of bytes marked: alpha approaches 0.5.
  Time t = Time::zero();
  for (int w = 0; w < 12; ++w) {
    for (int i = 0; i < 20; ++i) {
      t += Time::us(100);
      cc.on_ack(mk_ack(t, sim::kMss, i % 2 == 0));
    }
  }
  EXPECT_NEAR(cc.alpha(), 0.5, 0.15);
}

TEST(Dctcp, FullMarkingHalvesLikeReno) {
  cca::Dctcp cc{40 * sim::kMss, sim::kMss, /*g=*/1.0};
  // One full window of 100%-marked ACKs: alpha -> 1, cwnd *= 1/2.
  Time t = Time::zero();
  const ByteCount before = cc.cwnd_bytes();
  ByteCount acked = 0;
  while (acked < before + sim::kMss) {
    t += Time::us(50);
    cc.on_ack(mk_ack(t, sim::kMss, true));
    acked += sim::kMss;
  }
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()), static_cast<double>(before) / 2.0,
              2.0 * sim::kMss);
}

TEST(Dctcp, SparseMarkingCutsGently) {
  cca::Dctcp cc{40 * sim::kMss, sim::kMss, /*g=*/1.0};
  Time t = Time::zero();
  const ByteCount before = cc.cwnd_bytes();
  // 10% of bytes marked over one window: cut ~= alpha/2 = 5%.
  ByteCount acked = 0;
  int i = 0;
  while (acked < before + sim::kMss) {
    t += Time::us(50);
    cc.on_ack(mk_ack(t, sim::kMss, (i++ % 10) == 0));
    acked += sim::kMss;
  }
  EXPECT_GT(cc.cwnd_bytes(), static_cast<ByteCount>(0.85 * before));
  EXPECT_LT(cc.cwnd_bytes(), before + sim::kMss);
}

TEST(Dctcp, WantsEcn) {
  cca::Dctcp cc;
  EXPECT_TRUE(cc.wants_ecn());
  cca::NewReno reno;
  EXPECT_FALSE(reno.wants_ecn());
}

// ---------- end to end ----------

TEST(Dctcp, KeepsQueueNearMarkingThreshold) {
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(400);
  cfg.one_way_delay = Time::us(50);
  cfg.reverse_delay = Time::us(50);
  const ByteCount kThreshold = 20 * sim::kFullPacket;
  auto q = std::make_unique<queue::DropTailQueue>(200 * sim::kFullPacket, kThreshold);
  core::DumbbellScenario net{cfg, std::move(q)};
  for (int i = 0; i < 4; ++i) {
    net.add_flow(std::make_unique<cca::Dctcp>(), std::make_unique<app::BulkApp>());
  }
  net.run_until(Time::ms(500));
  const auto snap = net.snapshot_delivered();
  // Sample queue depth over the steady state.
  std::vector<double> depth;
  for (int i = 0; i < 200; ++i) {
    net.run_until(Time::ms(500 + 5 * (i + 1)));
    depth.push_back(static_cast<double>(net.bottleneck().qdisc().backlog_packets()));
  }
  const auto g = net.goodputs_mbps_since(snap, Time::ms(1000));
  double total = 0.0;
  for (double x : g) total += x;
  EXPECT_GT(total, 350.0);  // high utilization
  EXPECT_LT(median(depth), 40.0);  // queue pinned near K, far below the buffer
  EXPECT_EQ(net.bottleneck().qdisc().stats().dropped_packets, 0u);
  EXPECT_GT(net.bottleneck().qdisc().stats().ecn_marked_packets, 0u);
}

TEST(Dctcp, EndToEndEcnEchoPath) {
  // The full loop: sender marks ECT, queue CE-marks, receiver echoes ECE,
  // DCTCP's alpha rises above zero.
  core::DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::mbps(100);
  cfg.one_way_delay = Time::us(100);
  cfg.reverse_delay = Time::us(100);
  auto q = std::make_unique<queue::DropTailQueue>(200 * sim::kFullPacket,
                                                  10 * sim::kFullPacket);
  core::DumbbellScenario net{cfg, std::move(q)};
  net.add_flow(std::make_unique<cca::Dctcp>(), std::make_unique<app::BulkApp>());
  net.run_until(Time::ms(400));
  const auto* cc = dynamic_cast<const cca::Dctcp*>(&net.flow(0).sender().cc());
  ASSERT_NE(cc, nullptr);
  EXPECT_GT(cc->alpha(), 0.0);
  EXPECT_GT(net.bottleneck().qdisc().stats().ecn_marked_packets, 0u);
}

}  // namespace
}  // namespace ccc
