// Tests for bench::Cli, the shared command-line contract of every bench
// binary. All cases run in non-strict (library) mode, where parsing never
// exits the process; the strict-mode exit behaviour (--help -> 0, malformed
// value -> 2) is exercised end to end by the bench binaries themselves.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/cli.hpp"

namespace ccc::bench {
namespace {

/// argv helper: parse() wants char**, tests want initializer lists.
Cli parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string prog = "bench";
  argv.push_back(prog.data());
  for (auto& a : args) argv.push_back(a.data());
  return Cli::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchCli, JobsAcceptsAllSpellings) {
  EXPECT_EQ(parse({"--jobs", "8"}).jobs, 8u);
  EXPECT_EQ(parse({"--jobs=12"}).jobs, 12u);
  EXPECT_EQ(parse({"-j4"}).jobs, 4u);
  EXPECT_EQ(parse({"-j", "2"}).jobs, 2u);
  EXPECT_EQ(parse({}).jobs, 0u);  // absent -> auto-resolve
}

TEST(BenchCli, MalformedValuesAreAbsentInLibraryMode) {
  EXPECT_EQ(parse({"--jobs=-1"}).jobs, 0u);
  EXPECT_EQ(parse({"--jobs", "zero"}).jobs, 0u);
  EXPECT_FALSE(parse({"--seed", "12x"}).has_seed);
  EXPECT_FALSE(parse({"--duration", "-3"}).has_duration);
}

TEST(BenchCli, SeedAcceptsDecimalAndHex) {
  const Cli dec = parse({"--seed", "42"});
  EXPECT_TRUE(dec.has_seed);
  EXPECT_EQ(dec.seed, 42u);
  const Cli hex = parse({"--seed=0xdeadbeef"});
  EXPECT_TRUE(hex.has_seed);
  EXPECT_EQ(hex.seed, 0xdeadbeefu);
  EXPECT_EQ(parse({}).seed_or(7), 7u);
  EXPECT_EQ(dec.seed_or(7), 42u);
}

TEST(BenchCli, DurationIsSeconds) {
  const Cli cli = parse({"--duration", "2.5"});
  ASSERT_TRUE(cli.has_duration);
  EXPECT_DOUBLE_EQ(cli.duration_sec, 2.5);
  EXPECT_EQ(cli.duration_or(Time::sec(9.0)), Time::sec(2.5));
  EXPECT_EQ(parse({}).duration_or(Time::sec(9.0)), Time::sec(9.0));
}

TEST(BenchCli, OutReportAndSerialFlags) {
  const Cli cli = parse({"--out", "/tmp/t.txt", "--report=/tmp/r.jsonl", "--serial"});
  EXPECT_EQ(cli.out, "/tmp/t.txt");
  EXPECT_EQ(cli.report, "/tmp/r.jsonl");
  EXPECT_TRUE(cli.serial);
  EXPECT_FALSE(cli.help);
}

TEST(BenchCli, UnrecognizedArgsPassThroughInOrder) {
  const Cli cli =
      parse({"--benchmark_filter=Sched", "--jobs", "3", "positional", "--benchmark_list_tests"});
  EXPECT_EQ(cli.jobs, 3u);
  EXPECT_EQ(cli.rest, (std::vector<std::string>{"--benchmark_filter=Sched", "positional",
                                                "--benchmark_list_tests"}));
}

TEST(BenchCli, HelpIsRecordedNotActedOnInLibraryMode) {
  EXPECT_TRUE(parse({"--help"}).help);
  EXPECT_TRUE(parse({"-h"}).help);
}

TEST(BenchCli, DuplicateFlagsLastOneWins) {
  EXPECT_EQ(parse({"--jobs", "2", "--jobs", "6"}).jobs, 6u);
  EXPECT_EQ(parse({"-j4", "--jobs=9"}).jobs, 9u);
  const Cli cli = parse({"--seed", "1", "--seed=17"});
  EXPECT_TRUE(cli.has_seed);
  EXPECT_EQ(cli.seed, 17u);
  EXPECT_EQ(parse({"--out", "a.txt", "--out=b.txt"}).out, "b.txt");
}

TEST(BenchCli, JobsGarbageInEverySpellingIsAbsent) {
  // Glued and spaced forms must agree on what is garbage.
  EXPECT_EQ(parse({"-jbogus"}).jobs, 0u);
  EXPECT_EQ(parse({"-j", "bogus"}).jobs, 0u);
  EXPECT_EQ(parse({"--jobs=bogus"}).jobs, 0u);
  EXPECT_EQ(parse({"-j0"}).jobs, 0u);
  EXPECT_EQ(parse({"-j", "-4"}).jobs, 0u);
  EXPECT_EQ(parse({"--jobs=4x"}).jobs, 0u);
}

TEST(BenchCli, JobsOverflowIsMalformedNotTruncated) {
  // strtol saturates with ERANGE; truncating LONG_MAX into unsigned used to
  // accept this as a huge bogus worker count.
  EXPECT_EQ(parse({"--jobs", "99999999999999999999"}).jobs, 0u);
  EXPECT_EQ(parse({"-j99999999999999999999"}).jobs, 0u);
  EXPECT_EQ(parse({"--jobs", "4294967296"}).jobs, 0u);  // UINT_MAX + 1
}

TEST(BenchCli, SeedOverflowAndNegativeAreMalformed) {
  // strtoull saturates over-range values and silently wraps "-1" to
  // 2^64-1; both must read as "no seed given", not a garbage seed.
  EXPECT_FALSE(parse({"--seed", "99999999999999999999999"}).has_seed);
  EXPECT_FALSE(parse({"--seed=-1"}).has_seed);
  // The full range itself stays valid.
  const Cli max = parse({"--seed", "18446744073709551615"});
  EXPECT_TRUE(max.has_seed);
  EXPECT_EQ(max.seed, ~std::uint64_t{0});
}

TEST(BenchCli, UsageMentionsEveryFlag) {
  const std::string u = Cli::usage("fig0");
  for (const char* flag :
       {"--jobs", "--seed", "--duration", "--out", "--report", "--serial", "--help"}) {
    EXPECT_NE(u.find(flag), std::string::npos) << flag;
  }
  EXPECT_NE(u.find("fig0"), std::string::npos);
}

}  // namespace
}  // namespace ccc::bench
