// Tests for bench::Cli, the shared command-line contract of every bench
// binary. All cases run in non-strict (library) mode, where parsing never
// exits the process; the strict-mode exit behaviour (--help -> 0, malformed
// value -> 2) is exercised end to end by the bench binaries themselves.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/cli.hpp"

namespace ccc::bench {
namespace {

/// argv helper: parse() wants char**, tests want initializer lists.
Cli parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string prog = "bench";
  argv.push_back(prog.data());
  for (auto& a : args) argv.push_back(a.data());
  return Cli::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchCli, JobsAcceptsAllSpellings) {
  EXPECT_EQ(parse({"--jobs", "8"}).jobs, 8u);
  EXPECT_EQ(parse({"--jobs=12"}).jobs, 12u);
  EXPECT_EQ(parse({"-j4"}).jobs, 4u);
  EXPECT_EQ(parse({"-j", "2"}).jobs, 2u);
  EXPECT_EQ(parse({}).jobs, 0u);  // absent -> auto-resolve
}

TEST(BenchCli, MalformedValuesAreAbsentInLibraryMode) {
  EXPECT_EQ(parse({"--jobs=-1"}).jobs, 0u);
  EXPECT_EQ(parse({"--jobs", "zero"}).jobs, 0u);
  EXPECT_FALSE(parse({"--seed", "12x"}).has_seed);
  EXPECT_FALSE(parse({"--duration", "-3"}).has_duration);
}

TEST(BenchCli, SeedAcceptsDecimalAndHex) {
  const Cli dec = parse({"--seed", "42"});
  EXPECT_TRUE(dec.has_seed);
  EXPECT_EQ(dec.seed, 42u);
  const Cli hex = parse({"--seed=0xdeadbeef"});
  EXPECT_TRUE(hex.has_seed);
  EXPECT_EQ(hex.seed, 0xdeadbeefu);
  EXPECT_EQ(parse({}).seed_or(7), 7u);
  EXPECT_EQ(dec.seed_or(7), 42u);
}

TEST(BenchCli, DurationIsSeconds) {
  const Cli cli = parse({"--duration", "2.5"});
  ASSERT_TRUE(cli.has_duration);
  EXPECT_DOUBLE_EQ(cli.duration_sec, 2.5);
  EXPECT_EQ(cli.duration_or(Time::sec(9.0)), Time::sec(2.5));
  EXPECT_EQ(parse({}).duration_or(Time::sec(9.0)), Time::sec(9.0));
}

TEST(BenchCli, OutReportAndSerialFlags) {
  const Cli cli = parse({"--out", "/tmp/t.txt", "--report=/tmp/r.jsonl", "--serial"});
  EXPECT_EQ(cli.out, "/tmp/t.txt");
  EXPECT_EQ(cli.report, "/tmp/r.jsonl");
  EXPECT_TRUE(cli.serial);
  EXPECT_FALSE(cli.service);
  EXPECT_FALSE(cli.help);
}

TEST(BenchCli, ServiceFlagIsABoolean) {
  EXPECT_TRUE(parse({"--service"}).service);
  // A value-carrying spelling is not a recognized flag: it passes through.
  const Cli cli = parse({"--service=on"});
  EXPECT_FALSE(cli.service);
  EXPECT_EQ(cli.rest, (std::vector<std::string>{"--service=on"}));
}

TEST(BenchCli, UnrecognizedArgsPassThroughInOrder) {
  const Cli cli =
      parse({"--benchmark_filter=Sched", "--jobs", "3", "positional", "--benchmark_list_tests"});
  EXPECT_EQ(cli.jobs, 3u);
  EXPECT_EQ(cli.rest, (std::vector<std::string>{"--benchmark_filter=Sched", "positional",
                                                "--benchmark_list_tests"}));
}

TEST(BenchCli, HelpIsRecordedNotActedOnInLibraryMode) {
  EXPECT_TRUE(parse({"--help"}).help);
  EXPECT_TRUE(parse({"-h"}).help);
}

TEST(BenchCli, DuplicateFlagsLastOneWins) {
  EXPECT_EQ(parse({"--jobs", "2", "--jobs", "6"}).jobs, 6u);
  EXPECT_EQ(parse({"-j4", "--jobs=9"}).jobs, 9u);
  const Cli cli = parse({"--seed", "1", "--seed=17"});
  EXPECT_TRUE(cli.has_seed);
  EXPECT_EQ(cli.seed, 17u);
  EXPECT_EQ(parse({"--out", "a.txt", "--out=b.txt"}).out, "b.txt");
}

TEST(BenchCli, JobsGarbageInEverySpellingIsAbsent) {
  // Glued and spaced forms must agree on what is garbage.
  EXPECT_EQ(parse({"-jbogus"}).jobs, 0u);
  EXPECT_EQ(parse({"-j", "bogus"}).jobs, 0u);
  EXPECT_EQ(parse({"--jobs=bogus"}).jobs, 0u);
  EXPECT_EQ(parse({"-j0"}).jobs, 0u);
  EXPECT_EQ(parse({"-j", "-4"}).jobs, 0u);
  EXPECT_EQ(parse({"--jobs=4x"}).jobs, 0u);
}

TEST(BenchCli, JobsOverflowIsMalformedNotTruncated) {
  // strtol saturates with ERANGE; truncating LONG_MAX into unsigned used to
  // accept this as a huge bogus worker count.
  EXPECT_EQ(parse({"--jobs", "99999999999999999999"}).jobs, 0u);
  EXPECT_EQ(parse({"-j99999999999999999999"}).jobs, 0u);
  EXPECT_EQ(parse({"--jobs", "4294967296"}).jobs, 0u);  // UINT_MAX + 1
}

TEST(BenchCli, SeedOverflowAndNegativeAreMalformed) {
  // strtoull saturates over-range values and silently wraps "-1" to
  // 2^64-1; both must read as "no seed given", not a garbage seed.
  EXPECT_FALSE(parse({"--seed", "99999999999999999999999"}).has_seed);
  EXPECT_FALSE(parse({"--seed=-1"}).has_seed);
  // The full range itself stays valid.
  const Cli max = parse({"--seed", "18446744073709551615"});
  EXPECT_TRUE(max.has_seed);
  EXPECT_EQ(max.seed, ~std::uint64_t{0});
}

TEST(BenchCli, UsageMentionsEveryFlag) {
  const std::string u = Cli::usage("fig0");
  for (const char* flag : {"--jobs", "--seed", "--duration", "--out", "--report", "--serial",
                           "--service", "--input", "--scale", "--readahead", "--strict",
                           "--grid", "--checkpoint", "--resume", "--help"}) {
    EXPECT_NE(u.find(flag), std::string::npos) << flag;
  }
  EXPECT_NE(u.find("fig0"), std::string::npos);
}

// ---------- the shared dataset flags (--input/--scale/--readahead/--strict) ----------

TEST(BenchCli, DatasetFlagsBothSpellings) {
  const Cli spaced = parse({"--input", "d.ccfs", "--scale", "3", "--readahead", "4096"});
  EXPECT_EQ(spaced.input, "d.ccfs");
  EXPECT_TRUE(spaced.has_scale);
  EXPECT_EQ(spaced.scale, 3u);
  EXPECT_EQ(spaced.readahead, 4096u);
  EXPECT_FALSE(spaced.strict);

  const Cli glued = parse({"--input=d.csv", "--scale=2", "--readahead=128", "--strict"});
  EXPECT_EQ(glued.input, "d.csv");
  EXPECT_TRUE(glued.has_scale);
  EXPECT_EQ(glued.scale, 2u);
  EXPECT_EQ(glued.readahead, 128u);
  EXPECT_TRUE(glued.strict);

  const Cli absent = parse({});
  EXPECT_TRUE(absent.input.empty());
  EXPECT_FALSE(absent.has_scale);
  EXPECT_EQ(absent.readahead, 0u);
  EXPECT_FALSE(absent.strict);
}

TEST(BenchCli, DatasetFlagsDuplicateLastOneWins) {
  const Cli cli = parse({"--scale", "2", "--scale=5", "--input", "a.csv", "--input=b.ccfs",
                         "--readahead=64", "--readahead", "256"});
  EXPECT_EQ(cli.scale, 5u);
  EXPECT_EQ(cli.input, "b.ccfs");
  EXPECT_EQ(cli.readahead, 256u);
}

TEST(BenchCli, ScaleGarbageZeroAndOverflowAreAbsentInLibraryMode) {
  EXPECT_FALSE(parse({"--scale", "abc"}).has_scale);
  EXPECT_FALSE(parse({"--scale=4x"}).has_scale);
  EXPECT_FALSE(parse({"--scale", "-2"}).has_scale);
  EXPECT_FALSE(parse({"--scale", "0"}).has_scale);  // valid values are >= 1
  // Over the documented cap and over uint64 range both read as absent.
  EXPECT_FALSE(parse({"--scale", "1000001"}).has_scale);
  EXPECT_FALSE(parse({"--scale", "99999999999999999999999"}).has_scale);
  // The cap itself is valid.
  const Cli max = parse({"--scale", "1000000"});
  EXPECT_TRUE(max.has_scale);
  EXPECT_EQ(max.scale, Cli::kMaxScale);
}

TEST(BenchCli, ReadaheadGarbageAndOverflowAreAbsentInLibraryMode) {
  EXPECT_EQ(parse({"--readahead", "lots"}).readahead, 0u);
  EXPECT_EQ(parse({"--readahead=-1"}).readahead, 0u);
  EXPECT_EQ(parse({"--readahead", "100000001"}).readahead, 0u);  // over cap
  EXPECT_EQ(parse({"--readahead", "99999999999999999999999"}).readahead, 0u);
  EXPECT_EQ(parse({"--readahead", "100000000"}).readahead, Cli::kMaxReadahead);
  EXPECT_EQ(parse({"--readahead", "0"}).readahead, 0u);  // 0 = off is valid
}

TEST(BenchCli, DanglingDatasetFlagsAreAbsentNotCrashes) {
  // A flag at argv's end with no value: absent in library mode (bench-main
  // mode exits 2; fig2's CLI smoke covers that path end to end).
  EXPECT_TRUE(parse({"--input"}).input.empty());
  EXPECT_FALSE(parse({"--scale"}).has_scale);
  EXPECT_EQ(parse({"--readahead"}).readahead, 0u);
}

// ---------- the sweep flags (--grid/--checkpoint/--resume) ----------

TEST(BenchCli, SweepFlagsBothSpellings) {
  const Cli spaced = parse({"--grid", "cca=reno;buf=1", "--checkpoint", "ck.bin", "--resume"});
  EXPECT_EQ(spaced.grid, "cca=reno;buf=1");
  EXPECT_EQ(spaced.checkpoint, "ck.bin");
  EXPECT_TRUE(spaced.resume);

  const Cli glued = parse({"--grid=qdisc=codel,pie", "--checkpoint=/tmp/j.bin"});
  EXPECT_EQ(glued.grid, "qdisc=codel,pie");
  EXPECT_EQ(glued.checkpoint, "/tmp/j.bin");
  EXPECT_FALSE(glued.resume);

  const Cli absent = parse({});
  EXPECT_TRUE(absent.grid.empty());
  EXPECT_TRUE(absent.checkpoint.empty());
  EXPECT_FALSE(absent.resume);
}

TEST(BenchCli, SweepFlagsDuplicateLastOneWins) {
  const Cli cli = parse({"--grid", "cca=reno", "--grid=cca=bbr", "--checkpoint=a.bin",
                         "--checkpoint", "b.bin"});
  EXPECT_EQ(cli.grid, "cca=bbr");
  EXPECT_EQ(cli.checkpoint, "b.bin");
}

TEST(BenchCli, DanglingSweepFlagsAreAbsentNotCrashes) {
  // --grid's *content* is deliberately not validated here: only the sweep
  // bench knows the axis vocabulary, so GridSpec::parse rejects it there
  // (exit 2 via guarded_main). Cli only polices flag/value shape.
  EXPECT_TRUE(parse({"--grid"}).grid.empty());
  EXPECT_TRUE(parse({"--checkpoint"}).checkpoint.empty());
}

TEST(BenchCli, SweepFlagsDoNotLeakIntoRest) {
  const Cli cli = parse({"--resume", "--grid", "cca=reno", "keep", "--checkpoint=c.bin"});
  EXPECT_EQ(cli.rest, (std::vector<std::string>{"keep"}));
}

TEST(BenchCli, DatasetFlagsDoNotLeakIntoRest) {
  const Cli cli = parse({"--strict", "--scale", "2", "keepme", "--input=x.csv", "--bogus"});
  EXPECT_EQ(cli.rest, (std::vector<std::string>{"keepme", "--bogus"}));
}

}  // namespace
}  // namespace ccc::bench
