// Unit tests for the elasticity metric and the Nimbus CCA mechanics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "nimbus/elasticity.hpp"
#include "nimbus/nimbus.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace ccc::nimbus {
namespace {

constexpr double kFs = 100.0;  // 10 ms bins

std::vector<double> tone_plus_noise(double tone_hz, double tone_amp, double noise_amp,
                                    std::size_t n, Rng& rng) {
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / kFs;
    z[i] = 10.0 + tone_amp * std::sin(2.0 * std::numbers::pi * tone_hz * t) +
           noise_amp * rng.normal(0.0, 1.0);
  }
  return z;
}

TEST(ElasticityMetric, HighForResponsiveCrossTraffic) {
  Rng rng{1};
  const auto z = tone_plus_noise(5.0, 4.0, 0.5, 500, rng);
  EXPECT_GT(elasticity_metric(z, kFs), kElasticThreshold);
}

TEST(ElasticityMetric, LowForWhiteNoise) {
  Rng rng{2};
  const auto z = tone_plus_noise(5.0, 0.0, 1.0, 500, rng);
  EXPECT_LT(elasticity_metric(z, kFs), kElasticThreshold);
}

TEST(ElasticityMetric, LowForConstantSeries) {
  const std::vector<double> z(500, 12.0);
  EXPECT_DOUBLE_EQ(elasticity_metric(z, kFs), 0.0);
}

TEST(ElasticityMetric, LowForOffFrequencyTone) {
  Rng rng{3};
  // Strong tone at 1.7 Hz: energy, but not at the pulse frequency.
  const auto z = tone_plus_noise(1.7, 4.0, 0.5, 500, rng);
  EXPECT_LT(elasticity_metric(z, kFs), kElasticThreshold);
}

TEST(ElasticityMetric, DegenerateInputsReturnZero) {
  EXPECT_DOUBLE_EQ(elasticity_metric(std::vector<double>{}, kFs), 0.0);
  EXPECT_DOUBLE_EQ(elasticity_metric(std::vector<double>(5, 1.0), kFs), 0.0);
  EXPECT_DOUBLE_EQ(elasticity_metric(std::vector<double>(100, 1.0), 0.0), 0.0);
}

TEST(ElasticityMetric, ScalesWithToneToNoiseRatio) {
  Rng rng1{4};
  Rng rng2{4};
  const auto strong = tone_plus_noise(5.0, 8.0, 1.0, 500, rng1);
  const auto weak = tone_plus_noise(5.0, 1.0, 1.0, 500, rng2);
  EXPECT_GT(elasticity_metric(strong, kFs), elasticity_metric(weak, kFs));
}


TEST(ElasticityMetric, AboveNyquistHarmonicDoesNotMaskTopNoiseBins) {
  // With sample_hz < 4 * pulse_hz the 2*fp harmonic lies above Nyquist;
  // bin_for clamps it to the last bin, which used to alias the harmonic's
  // exclusion window onto the top of the spectrum and drop legitimate noise
  // bins from the RMS. The metric must now match a reference computation
  // that excludes only the fp window.
  Rng rng{21};
  const double fs = 16.0;  // pulse at 5 Hz -> 2*fp = 10 Hz > Nyquist (8 Hz)
  std::vector<double> z(512);
  for (std::size_t i = 0; i < z.size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    z[i] = 10.0 + 2.0 * std::sin(2.0 * std::numbers::pi * 5.0 * t) + rng.normal(0.0, 0.8);
  }

  const ElasticityConfig cfg;
  const double eta = elasticity_metric(z, fs, cfg);

  // Reference: same signal/noise definitions, fp exclusion only.
  const Spectrum spec = magnitude_spectrum(z, fs);
  const std::size_t fp_bin = spec.bin_for(cfg.pulse_hz);
  const std::size_t floor_bin = std::max<std::size_t>(spec.bin_for(cfg.noise_floor_hz), 1);
  const auto hw = static_cast<std::size_t>(cfg.signal_halfwidth_bins);
  double signal = 0.0;
  for (std::size_t i = fp_bin > hw ? fp_bin - hw : 0;
       i <= fp_bin + hw && i < spec.magnitude.size(); ++i) {
    signal = std::max(signal, spec.magnitude[i]);
  }
  double sum_sq = 0.0;
  std::size_t n = 0;
  for (std::size_t i = floor_bin; i < spec.magnitude.size(); ++i) {
    if (i + hw >= fp_bin && i <= fp_bin + hw) continue;
    sum_sq += spec.magnitude[i] * spec.magnitude[i];
    ++n;
  }
  ASSERT_GT(n, 0u);
  const double expected = signal / std::sqrt(sum_sq / static_cast<double>(n));
  EXPECT_DOUBLE_EQ(eta, expected);

  // The harmonic exclusion still applies when 2*fp is representable.
  const std::size_t h2_bin = spec.bin_for(2.0 * cfg.pulse_hz);
  EXPECT_EQ(h2_bin, spec.magnitude.size() - 1);  // clamped — the bug trigger
}

// Parameterized sweep: the metric's response is monotone in tone amplitude
// and robustly below threshold for amplitude 0 across noise seeds.
struct ToneCase {
  double amp;
  std::uint64_t seed;
  bool expect_elastic;
};

class ElasticitySweep : public ::testing::TestWithParam<ToneCase> {};

TEST_P(ElasticitySweep, ThresholdsCorrectly) {
  const auto& p = GetParam();
  Rng rng{p.seed};
  const auto z = tone_plus_noise(5.0, p.amp, 1.0, 500, rng);
  const double eta = elasticity_metric(z, kFs);
  if (p.expect_elastic) {
    EXPECT_GT(eta, kElasticThreshold) << "amp=" << p.amp << " seed=" << p.seed;
  } else {
    EXPECT_LT(eta, kElasticThreshold) << "amp=" << p.amp << " seed=" << p.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AmpAndSeed, ElasticitySweep,
    ::testing::Values(ToneCase{0.0, 11, false}, ToneCase{0.0, 12, false},
                      ToneCase{0.0, 13, false},
                      ToneCase{6.0, 11, true}, ToneCase{6.0, 12, true},
                      ToneCase{6.0, 13, true}, ToneCase{12.0, 11, true},
                      ToneCase{12.0, 14, true}));

// ---------- NimbusCca mechanics ----------

cca::AckEvent mk_ack(Time now, ByteCount bytes, Time rtt) {
  cca::AckEvent ev;
  ev.now = now;
  ev.newly_acked_bytes = bytes;
  ev.rtt_sample = rtt;
  ev.inflight_bytes = 10 * sim::kMss;
  return ev;
}

TEST(NimbusCca, PulsedRateIsMeanNeutralOverOnePeriod) {
  sim::Scheduler sched;
  NimbusConfig cfg;
  cfg.capacity_hint = Rate::mbps(48);
  cfg.initial_rate = Rate::mbps(24);  // high enough that no clipping occurs
  NimbusCca cc{sched, cfg};
  // Average the commanded rate over exactly one pulse period: the strong
  // quarter-period up-pulse and shallow three-quarter down-pulse cancel.
  const double period = 1.0 / cfg.pulse_hz;
  double sum = 0.0;
  const int steps = 4000;
  for (int i = 0; i < steps; ++i) {
    sum += cc.pulsed_rate(Time::sec(period * i / steps)).to_bps();
  }
  EXPECT_NEAR(sum / steps, cc.base_rate().to_bps(), cc.base_rate().to_bps() * 0.02);
}

TEST(NimbusCca, PulseAmplitudeMatchesConfig) {
  sim::Scheduler sched;
  NimbusConfig cfg;
  cfg.capacity_hint = Rate::mbps(40);
  cfg.pulse_amplitude = 0.25;
  cfg.initial_rate = Rate::mbps(24);
  NimbusCca cc{sched, cfg};
  double lo = 1e18;
  double hi = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double r = cc.pulsed_rate(Time::ms(i)).to_bps();
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  // Asymmetric pulse: peak = base + A, trough = base - A/3, with
  // A = 0.25 * 40 Mbit/s = 10 Mbit/s -> peak-to-peak = 4A/3 = 13.33 Mbit/s.
  EXPECT_NEAR((hi - lo) / 1e6, 13.33, 0.7);
  EXPECT_NEAR((hi - cc.base_rate().to_bps()) / 1e6, 10.0, 0.5);
}

TEST(NimbusCca, CapacityHintOverridesEstimate) {
  sim::Scheduler sched;
  NimbusConfig cfg;
  cfg.capacity_hint = Rate::mbps(48);
  NimbusCca cc{sched, cfg};
  EXPECT_DOUBLE_EQ(cc.capacity_estimate().to_mbps(), 48.0);
}

TEST(NimbusCca, DelayControllerBacksOffWhenQueueDeep) {
  sim::Scheduler sched;
  NimbusConfig cfg;
  cfg.capacity_hint = Rate::mbps(48);
  cfg.initial_rate = Rate::mbps(40);
  NimbusCca cc{sched, cfg};
  // min RTT 50 ms, then persistent 150 ms: deep queue, rate must drop.
  Time t = Time::ms(50);
  cc.on_ack(mk_ack(t, sim::kMss, Time::ms(50)));
  const double before = cc.base_rate().to_bps();
  for (int i = 0; i < 100; ++i) {
    t += Time::ms(50);
    cc.on_ack(mk_ack(t, sim::kMss, Time::ms(150)));
  }
  EXPECT_LT(cc.base_rate().to_bps(), before);
}

TEST(NimbusCca, DelayControllerRampsWhenIdle) {
  sim::Scheduler sched;
  NimbusConfig cfg;
  cfg.capacity_hint = Rate::mbps(48);
  cfg.initial_rate = Rate::mbps(2);
  NimbusCca cc{sched, cfg};
  Time t = Time::ms(50);
  const double before = cc.base_rate().to_bps();
  for (int i = 0; i < 100; ++i) {
    t += Time::ms(50);
    cc.on_ack(mk_ack(t, sim::kMss, Time::ms(50)));  // rtt == min: queue empty
  }
  EXPECT_GT(cc.base_rate().to_bps(), before);
}

TEST(NimbusCca, ModeSwitchingDisabledByDefault) {
  sim::Scheduler sched;
  NimbusCca cc{sched};
  EXPECT_EQ(cc.mode(), NimbusCca::Mode::kDelay);
  // Even with many acks, mode stays kDelay when disabled.
  Time t = Time::ms(50);
  for (int i = 0; i < 2000; ++i) {
    t += Time::ms(10);
    cc.on_ack(mk_ack(t, sim::kMss, Time::ms(55)));
  }
  EXPECT_EQ(cc.mode(), NimbusCca::Mode::kDelay);
}

TEST(NimbusCca, CwndCapsInflight) {
  sim::Scheduler sched;
  NimbusConfig cfg;
  cfg.capacity_hint = Rate::mbps(48);
  NimbusCca cc{sched, cfg};
  Time t = Time::ms(100);
  cc.on_ack(mk_ack(t, sim::kMss, Time::ms(100)));
  // cwnd ~= 2 * peak-rate BDP = 2 * 1.25 * 48 Mbit/s * 100 ms = 1.5 MB.
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()), 1.5e6, 2e5);
}


TEST(NimbusCca, ModeSwitchingEngagesAgainstElasticTraffic) {
  // With switching ENABLED (the full Nimbus CCA, not the measurement
  // configuration), sustained elastic cross traffic must flip the probe
  // into TCP-competitive mode.
  sim::Scheduler sched;
  NimbusConfig cfg;
  cfg.capacity_hint = Rate::mbps(48);
  cfg.enable_mode_switching = true;
  NimbusCca cc{sched, cfg};
  // Feed synthetic acks whose receive spans oscillate at the pulse
  // frequency, as elastic cross traffic would cause: bins alternate between
  // compressed and dilated service.
  // Establish the path floor first so later samples read as a standing
  // queue (the estimator treats no-queue bins as idle-link, z = 0).
  {
    cca::AckEvent floor;
    floor.now = Time::ms(60);
    floor.newly_acked_bytes = sim::kMss;
    floor.rtt_sample = Time::ms(60);
    floor.acked_sent_at = Time::ms(1);
    floor.inflight_bytes = 20 * sim::kMss;
    cc.on_ack(floor);
  }
  Time t = Time::ms(100);
  Time send_time = Time::ms(5);
  while (t < Time::sec(14.0)) {
    cca::AckEvent ev;
    // Drive the response in *send-time* coordinates: the z series is binned
    // by the send times of the acked packets.
    const double phase =
        std::sin(2.0 * std::numbers::pi * cfg.pulse_hz * send_time.to_sec());
    const Time gap = Time::us(static_cast<std::int64_t>(400.0 * (1.0 + 0.8 * phase)));
    t += gap;
    send_time += Time::us(400);
    ev.now = t;
    ev.newly_acked_bytes = sim::kMss;
    ev.rtt_sample = Time::ms(75);  // 15 ms above the floor: link busy
    ev.acked_sent_at = send_time;
    ev.inflight_bytes = 20 * sim::kMss;
    cc.on_ack(ev);
  }
  EXPECT_GE(cc.elasticity(), kElasticThreshold);
  EXPECT_EQ(cc.mode(), NimbusCca::Mode::kTcpCompetitive);
}

TEST(NimbusCca, ModeSwitchingReturnsToDelayModeWhenCalm) {
  sim::Scheduler sched;
  NimbusConfig cfg;
  cfg.capacity_hint = Rate::mbps(48);
  cfg.enable_mode_switching = true;
  NimbusCca cc{sched, cfg};
  // Perfectly steady delivery: z is flat, elasticity ~0, mode stays kDelay
  // through many evaluation windows.
  {
    cca::AckEvent floor;
    floor.now = Time::ms(60);
    floor.newly_acked_bytes = sim::kMss;
    floor.rtt_sample = Time::ms(60);
    floor.acked_sent_at = Time::ms(1);
    floor.inflight_bytes = 20 * sim::kMss;
    cc.on_ack(floor);
  }
  Time t = Time::ms(100);
  Time send_time = Time::ms(5);
  while (t < Time::sec(14.0)) {
    cca::AckEvent ev;
    t += Time::us(400);
    send_time += Time::us(400);
    ev.now = t;
    ev.newly_acked_bytes = sim::kMss;
    ev.rtt_sample = Time::ms(75);  // steady standing queue, steady service
    ev.acked_sent_at = send_time;
    ev.inflight_bytes = 20 * sim::kMss;
    cc.on_ack(ev);
  }
  EXPECT_LT(cc.elasticity(), kElasticThreshold);
  EXPECT_EQ(cc.mode(), NimbusCca::Mode::kDelay);
}

TEST(NimbusCca, LossHalvesCompetitiveRateOnly) {
  sim::Scheduler sched;
  NimbusConfig cfg;
  cfg.capacity_hint = Rate::mbps(48);
  NimbusCca cc{sched, cfg};
  const double base_before = cc.base_rate().to_bps();
  cca::LossEvent ev;
  ev.now = Time::ms(10);
  ev.lost_bytes = sim::kMss;
  cc.on_loss(ev);
  // Delay mode ignores individual losses entirely.
  EXPECT_DOUBLE_EQ(cc.base_rate().to_bps(), base_before);
}

TEST(NimbusCca, RtoResetsToFloorRate) {
  sim::Scheduler sched;
  NimbusConfig cfg;
  cfg.capacity_hint = Rate::mbps(48);
  cfg.initial_rate = Rate::mbps(30);
  NimbusCca cc{sched, cfg};
  cc.on_rto(Time::ms(100));
  EXPECT_DOUBLE_EQ(cc.base_rate().to_bps(), cfg.min_rate.to_bps());
}

TEST(ElasticityMetric, WorkspaceOverloadIdenticalEvenWhenDirty) {
  // The per-window workspace path must produce the same bits as a fresh
  // computation, even when the workspace was last used on a different
  // window length (every scratch buffer resized and overwritten).
  Rng rng{9};
  SpectrumWorkspace ws;
  ElasticityConfig cfg;
  cfg.reference_amplitude = 2.0;  // exercise the significance-scaling branch
  for (const std::size_t len : {500u, 128u, 500u, 2000u}) {
    const auto z = tone_plus_noise(5.0, 3.0, 0.8, len, rng);
    const double fresh = elasticity_metric(z, kFs, cfg);
    const double reused = elasticity_metric(z, kFs, cfg, ws);
    EXPECT_EQ(fresh, reused) << "len=" << len;
  }
}

}  // namespace
}  // namespace ccc::nimbus
