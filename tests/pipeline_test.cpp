// Tests for the sharded passive-analysis pipeline (src/pipeline/).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <mutex>
#include <sstream>

#include "analysis/passive_study.hpp"
#include "mlab/synthetic.hpp"
#include "pipeline/pipeline.hpp"
#include "store/convert.hpp"
#include "telemetry/run_report.hpp"

namespace ccc::pipeline {
namespace {

namespace fs = std::filesystem;

std::vector<mlab::NdtRecord> make_dataset(std::size_t n, std::uint64_t seed = 99) {
  mlab::SyntheticConfig cfg;
  cfg.n_flows = n;
  Rng rng{seed};
  return mlab::generate_dataset(cfg, rng);
}

/// Serializes everything determinism promises: aggregates + merged metrics.
std::string fingerprint(const PipelineResult& r) {
  telemetry::RunReport report{"pipeline_test", 0};
  for (const auto& [v, c] : r.verdict_map()) {
    report.add_scalar("verdicts", std::string{to_string(v)}, static_cast<double>(c));
  }
  report.add_scalar("score", "tp", static_cast<double>(r.true_positives));
  report.add_scalar("score", "fp", static_cast<double>(r.false_positives));
  report.add_scalar("score", "fn", static_cast<double>(r.false_negatives));
  report.add_scalar("score", "tn", static_cast<double>(r.true_negatives));
  report.add_scalar("totals", "changepoints", static_cast<double>(r.changepoints_total));
  report.add_scalar("totals", "samples_scanned", static_cast<double>(r.samples_scanned));
  report.add_registry("pipeline", r.metrics, Time::zero());
  return report.to_jsonl();
}

TEST(Pipeline, MatchesLegacyPassiveStudy) {
  const auto dataset = make_dataset(2000);
  const auto legacy = analysis::run_passive_study(dataset);

  MemorySource src{dataset};
  PipelineConfig cfg;
  cfg.jobs = 1;
  cfg.shard_flows = 256;
  cfg.keep_findings = true;
  const auto res = run_pipeline(src, cfg);

  EXPECT_EQ(res.verdict_map(), legacy.verdict_counts);
  EXPECT_EQ(res.true_positives, legacy.true_positives);
  EXPECT_EQ(res.false_positives, legacy.false_positives);
  EXPECT_EQ(res.false_negatives, legacy.false_negatives);
  EXPECT_EQ(res.true_negatives, legacy.true_negatives);
  EXPECT_DOUBLE_EQ(res.filtered_fraction(), legacy.filtered_fraction());
  ASSERT_EQ(res.findings.size(), legacy.findings.size());
  for (std::size_t i = 0; i < res.findings.size(); ++i) {
    EXPECT_EQ(res.findings[i].id, legacy.findings[i].id);
    EXPECT_EQ(res.findings[i].verdict, legacy.findings[i].verdict);
    EXPECT_EQ(res.findings[i].shift_times_sec, legacy.findings[i].shift_times_sec);
  }
}

// The acceptance pin: classification counts, change-point totals, and the
// merged telemetry registry are byte-identical between --jobs 1 and
// --jobs 8 (ordered shard reduction; shared-nothing workers).
TEST(Pipeline, ReportByteIdenticalAcrossJobCounts) {
  const auto dataset = make_dataset(20000, 20230601);
  MemorySource src{dataset};

  PipelineConfig serial;
  serial.jobs = 1;
  serial.shard_flows = 1024;
  PipelineConfig wide = serial;
  wide.jobs = 8;

  const auto a = run_pipeline(src, serial);
  const auto b = run_pipeline(src, wide);
  EXPECT_EQ(a.jobs, 1u);
  EXPECT_EQ(b.jobs, 8u);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.confusion, b.confusion);
  EXPECT_EQ(a.changepoints_total, b.changepoints_total);
}

TEST(Pipeline, FindingsOrderIndependentOfJobs) {
  const auto dataset = make_dataset(3000);
  MemorySource src{dataset};
  PipelineConfig cfg;
  cfg.shard_flows = 128;
  cfg.keep_findings = true;
  cfg.jobs = 1;
  const auto a = run_pipeline(src, cfg);
  cfg.jobs = 8;
  const auto b = run_pipeline(src, cfg);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].id, b.findings[i].id);
    EXPECT_EQ(a.findings[i].verdict, b.findings[i].verdict);
  }
  // Findings arrive in dataset order.
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].id, dataset[i].id);
  }
}

TEST(Pipeline, StoreBackedRunMatchesMemoryBackedRun) {
  const auto dataset = make_dataset(4000);
  const auto tmp = (fs::temp_directory_path() /
                    ("pipeline_store." + std::to_string(::getpid()) + ".ccfs"))
                       .string();

  store::ShardedFlowStoreWriter writer{tmp, 1500};
  for (const auto& r : dataset) writer.append(r);
  const auto paths = writer.finish();
  ASSERT_EQ(paths.size(), 3u);

  std::vector<store::FlowStoreReader> readers;
  StoreSource store_src;
  readers.reserve(paths.size());
  for (const auto& p : paths) {
    readers.emplace_back(p);
    store_src.add(readers.back());
  }
  ASSERT_EQ(store_src.size(), dataset.size());

  MemorySource mem_src{dataset};
  PipelineConfig cfg;
  cfg.jobs = 4;
  cfg.shard_flows = 512;
  const auto from_store = run_pipeline(store_src, cfg);
  const auto from_mem = run_pipeline(mem_src, cfg);
  EXPECT_EQ(fingerprint(from_store), fingerprint(from_mem));

  std::error_code ec;
  for (const auto& p : paths) fs::remove(p, ec);
}

// Readahead is madvise advice only: any window (off, small, larger than a
// shard) must leave every aggregate and the merged telemetry registry
// byte-identical. Runs against a real mmapped store so the willneed path
// (page-aligned advice over the shard-mapped sample pool) is exercised.
TEST(Pipeline, ReadaheadWindowDoesNotChangeResults) {
  const auto dataset = make_dataset(4000, 77);
  const auto tmp = (fs::temp_directory_path() /
                    ("pipeline_readahead." + std::to_string(::getpid()) + ".ccfs"))
                       .string();
  store::ShardedFlowStoreWriter writer{tmp, 1500};
  for (const auto& r : dataset) writer.append(r);
  const auto paths = writer.finish();

  std::vector<store::FlowStoreReader> readers;
  StoreSource src;
  readers.reserve(paths.size());
  for (const auto& p : paths) {
    readers.emplace_back(p, store::ReaderOptions{true, true});
    src.add(readers.back());
  }

  PipelineConfig cfg;
  cfg.jobs = 4;
  cfg.shard_flows = 512;
  const auto baseline = run_pipeline(src, cfg);
  for (const std::size_t window : {std::size_t{1}, std::size_t{64}, std::size_t{100'000}}) {
    cfg.readahead_flows = window;
    const auto res = run_pipeline(src, cfg);
    EXPECT_EQ(fingerprint(res), fingerprint(baseline)) << "window " << window;
  }

  std::error_code ec;
  for (const auto& p : paths) fs::remove(p, ec);
}

TEST(Pipeline, EmptySourceYieldsEmptyResult) {
  MemorySource src{std::span<const mlab::NdtRecord>{}};
  const auto res = run_pipeline(src, {});
  EXPECT_EQ(res.flows, 0u);
  EXPECT_EQ(res.shards, 0u);
  EXPECT_EQ(res.changepoints_total, 0u);
  EXPECT_DOUBLE_EQ(res.filtered_fraction(), 0.0);
}

TEST(Pipeline, TelemetryCountersMatchAggregates) {
  const auto dataset = make_dataset(5000);
  MemorySource src{dataset};
  PipelineConfig cfg;
  cfg.shard_flows = 777;  // deliberately non-divisible
  cfg.jobs = 3;
  const auto res = run_pipeline(src, cfg);
  const auto& c = res.metrics.counters();
  EXPECT_EQ(c.at("pipeline.flows").value(), res.flows);
  EXPECT_EQ(c.at("pipeline.changepoints").value(), res.changepoints_total);
  EXPECT_EQ(c.at("pipeline.samples_scanned").value(), res.samples_scanned);
  std::uint64_t verdict_sum = 0;
  for (std::size_t v = 0; v < kVerdictCount; ++v) {
    verdict_sum += c.at(std::string{"pipeline.verdict."} +
                        std::string{to_string(static_cast<Verdict>(v))})
                       .value();
  }
  EXPECT_EQ(verdict_sum, res.flows);
  // The shift-magnitude histogram saw exactly the accepted shifts.
  EXPECT_EQ(res.metrics.histograms().at("pipeline.shift_magnitude").count(),
            res.changepoints_total);
}

TEST(Pipeline, ProgressCallbackReportsEveryShardOnce) {
  const auto dataset = make_dataset(1000);
  MemorySource src{dataset};
  PipelineConfig cfg;
  cfg.shard_flows = 100;
  cfg.jobs = 4;
  std::mutex mu;
  std::vector<std::size_t> seen;
  cfg.on_progress = [&](std::size_t done, std::size_t total) {
    std::lock_guard lk{mu};
    EXPECT_EQ(total, 10u);
    seen.push_back(done);
  };
  (void)run_pipeline(src, cfg);
  ASSERT_EQ(seen.size(), 10u);
  // Completion counts are serialized and strictly increasing 1..total.
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

// ---------------- early exit (TURBOTEST-style) ----------------

TEST(EarlyExit, OffByDefaultAndResultsUnchanged) {
  ClassifyConfig cfg;
  EXPECT_EQ(cfg.early_exit, EarlyExitPolicy::kOff);
  const auto dataset = make_dataset(2000, 5);
  MemorySource src{dataset};
  PipelineConfig with_default;
  with_default.jobs = 2;
  const auto res = run_pipeline(src, with_default);
  EXPECT_EQ(res.early_exits, 0u);
}

TEST(EarlyExit, SkipsFlatFlowsAndStillCatchesEarlyShifts) {
  mlab::SyntheticConfig scfg;
  Rng rng{123};
  // A flat clean-bulk flow: the screen should exit without a full search.
  auto flat = mlab::generate_record(mlab::FlowArchetype::kBulkClean, scfg, rng, 1);
  flat.access = mlab::AccessType::kCable;
  // A policed flow steps down inside the first quarter of the test — well
  // within the 5 s screen window, so the full search must still run.
  auto stepped = mlab::generate_record(mlab::FlowArchetype::kPoliced, scfg, rng, 2);
  stepped.access = mlab::AccessType::kCable;

  ClassifyConfig cfg;
  cfg.early_exit = EarlyExitPolicy::kFixed;
  const auto f_flat = classify_flow(flat, cfg);
  EXPECT_TRUE(f_flat.early_exited);
  EXPECT_EQ(f_flat.verdict, Verdict::kNoLevelShift);
  // Early exit reads only the screen window, not the whole series.
  EXPECT_LT(f_flat.samples_scanned, flat.throughput_mbps.size());

  const auto f_stepped = classify_flow(stepped, cfg);
  EXPECT_FALSE(f_stepped.early_exited);
  EXPECT_EQ(f_stepped.verdict, Verdict::kContentionSuspect);

  // Without early exit both flows get the full treatment, same verdicts.
  ClassifyConfig full;
  EXPECT_EQ(classify_flow(flat, full).verdict, Verdict::kNoLevelShift);
  EXPECT_EQ(classify_flow(stepped, full).verdict, Verdict::kContentionSuspect);
}

TEST(EarlyExit, ReducesSamplesScannedAtScale) {
  const auto dataset = make_dataset(3000, 9);
  MemorySource src{dataset};
  PipelineConfig full;
  full.jobs = 2;
  PipelineConfig screened = full;
  screened.classify.early_exit = EarlyExitPolicy::kFixed;
  const auto a = run_pipeline(src, full);
  const auto b = run_pipeline(src, screened);
  EXPECT_GT(b.early_exits, 0u);
  EXPECT_LT(b.samples_scanned, a.samples_scanned);
  EXPECT_EQ(b.metrics.counters().at("pipeline.early_exits").value(), b.early_exits);
}

}  // namespace
}  // namespace ccc::pipeline
